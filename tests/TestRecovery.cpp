//===- tests/TestRecovery.cpp - Recoverable compilation tests --------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of recoverable compilation: whole-module snapshots (cloneModule /
/// Module::takeContentsFrom), per-pass rollback and quarantine with OMP180
/// remarks, recoverable fatal errors, -opt-bisect-limit semantics, the
/// automatic bisection driver (driver/Bisect.h), the compile-report
/// recovery section (schema v2), and the Error/Expected plumbing of the
/// no-abort error paths.
///
//===----------------------------------------------------------------------===//

#include "analysis/MapInference.h"
#include "analysis/OMPLint.h"
#include "driver/Bisect.h"
#include "driver/CompileReport.h"
#include "driver/Pipeline.h"
#include "frontend/OMPCodeGen.h"
#include "ir/AsmWriter.h"
#include "ir/Verifier.h"
#include "rtl/DeviceRTL.h"
#include "support/CommandLine.h"
#include "support/Error.h"
#include "support/ErrorHandling.h"
#include "support/raw_ostream.h"
#include "transforms/Cloning.h"
#include "workloads/Harness.h"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace ompgpu;

namespace {

/// Builds the quickstart-style SPMD saxpy kernel into \p M so every
/// pipeline phase has something to chew on.
static void buildSaxpy(Module &M, CodeGenScheme Scheme) {
  IRContext &Ctx = M.getContext();
  OMPCodeGen CG(M, {Scheme, /*CudaMode=*/false});
  Type *F64 = Ctx.getDoubleTy();
  TargetRegionBuilder TRB(CG, "saxpy",
                          {F64, Ctx.getPtrTy(), Ctx.getInt32Ty()},
                          ExecMode::SPMD, 4, 32);
  Argument *A = TRB.getParam(0);
  Argument *X = TRB.getParam(1);
  Argument *N = TRB.getParam(2);
  std::vector<TargetRegionBuilder::Capture> Caps = {{A, false, "a"},
                                                    {X, false, "x"}};
  TRB.emitDistributeParallelFor(
      N, Caps,
      [&](IRBuilder &B, Value *I,
          const TargetRegionBuilder::CaptureMap &Map) {
        Value *P = B.createGEP(F64, Map.at(X), {I});
        Value *V = B.createLoad(F64, P);
        B.createStore(B.createFMul(Map.at(A), V), P);
      });
  TRB.finalize();
}

/// A deliberately IR-corrupting pass body: an empty basic block violates
/// the verifier's "block lacks a terminator" rule.
static bool corruptModule(Module &M) {
  M.kernels().front()->createBlock("orphan");
  return true;
}

/// A structurally valid but lint-dirty pass body: a new function whose
/// team-shared allocation is stored through but never freed (OMP202). The
/// verifier accepts the module, so only LintEach can catch this pass.
static bool injectLeakyFunction(Module &M) {
  IRContext &Ctx = M.getContext();
  Function *Alloc = M.getOrInsertFunction(
      "__kmpc_alloc_shared",
      Ctx.getFunctionTy(Ctx.getPtrTy(), {Ctx.getInt64Ty()}));
  Function *F =
      M.createFunction("leaky", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  Value *Frame = B.createCall(Alloc, {Ctx.getInt64(8)}, "frame");
  B.createStore(B.getDouble(1.0), Frame);
  B.createRetVoid();
  return true;
}

//===----------------------------------------------------------------------===//
// Whole-module snapshot: cloneModule + clear/takeContentsFrom
//===----------------------------------------------------------------------===//

TEST(CloneModule, CloneIsVerifierCleanAndHashIdentical) {
  IRContext Ctx;
  Module M(Ctx, "clone-src");
  buildSaxpy(M, CodeGenScheme::Simplified13);
  ASSERT_FALSE(verifyModule(M));

  std::unique_ptr<Module> Clone = cloneModule(M);
  std::string Err;
  EXPECT_FALSE(verifyModule(*Clone, &Err)) << Err;
  EXPECT_EQ(M.functions().size(), Clone->functions().size());
  EXPECT_EQ(M.globals().size(), Clone->globals().size());
  // Names, bodies, and attributes carry over, so the textual forms (and
  // hence the fingerprints) must match exactly.
  EXPECT_EQ(hashModule(M), hashModule(*Clone));

  // Deep copy: corrupting the clone must not affect the original.
  corruptModule(*Clone);
  EXPECT_TRUE(verifyModule(*Clone));
  EXPECT_FALSE(verifyModule(M));
}

TEST(CloneModule, SnapshotRestoreRoundTrip) {
  IRContext Ctx;
  Module M(Ctx, "restore");
  buildSaxpy(M, CodeGenScheme::Simplified13);
  uint64_t Before = hashModule(M);

  std::unique_ptr<Module> Snapshot = cloneModule(M);
  corruptModule(M);
  ASSERT_TRUE(verifyModule(M));
  ASSERT_NE(hashModule(M), Before);

  M.clear();
  EXPECT_TRUE(M.functions().empty());
  EXPECT_TRUE(M.globals().empty());
  M.takeContentsFrom(*Snapshot);
  EXPECT_FALSE(verifyModule(M));
  EXPECT_EQ(hashModule(M), Before);
  // The snapshot gave up its contents.
  EXPECT_TRUE(Snapshot->functions().empty());
  // Reparenting happened: every function names M as its parent again.
  for (Function *F : M.functions())
    EXPECT_EQ(F->getParent(), &M);
}

//===----------------------------------------------------------------------===//
// Recoverable fatal errors
//===----------------------------------------------------------------------===//

TEST(FatalErrorRecovery, ScopeTurnsAbortIntoException) {
  EXPECT_FALSE(FatalErrorRecoveryScope::active());
  {
    FatalErrorRecoveryScope Scope;
    EXPECT_TRUE(FatalErrorRecoveryScope::active());
    EXPECT_THROW(reportFatalError("recoverable boom"),
                 RecoverableFatalError);
    try {
      reportFatalError("with message");
    } catch (const RecoverableFatalError &E) {
      EXPECT_STREQ(E.what(), "with message");
    }
  }
  EXPECT_FALSE(FatalErrorRecoveryScope::active());
}

//===----------------------------------------------------------------------===//
// Pipeline rollback + quarantine + OMP180
//===----------------------------------------------------------------------===//

TEST(Recovery, CorruptingPassIsRolledBackAndQuarantined) {
  IRContext Ctx;
  Module M(Ctx, "recover");
  buildSaxpy(M, CodeGenScheme::Simplified13);

  PipelineOptions P = makeDevPipeline();
  P.Instrument.Recover = true;
  // The same misbehaving pass appears twice: the first invocation rolls
  // back and quarantines it, the second must be skipped outright.
  P.ExtraPasses.push_back({"corruptor", corruptModule});
  P.ExtraPasses.push_back({"corruptor", corruptModule});

  CompileResult CR = optimizeDeviceModule(M, P);

  // The pipeline terminates with verifier-clean IR despite the sabotage.
  EXPECT_FALSE(CR.VerifyFailed) << CR.VerifyError;
  std::string Err;
  EXPECT_FALSE(verifyModule(M, &Err)) << Err;
  EXPECT_TRUE(CR.FirstCorruptPass.empty())
      << "rolled-back corruption must not be attributed as surviving";

  EXPECT_TRUE(CR.RecoveryEnabled);
  ASSERT_EQ(CR.Recoveries.size(), 1u);
  EXPECT_EQ(CR.Recoveries[0].PassName, "corruptor");
  EXPECT_EQ(CR.Recoveries[0].Kind, "verify-fail");
  EXPECT_FALSE(CR.Recoveries[0].Message.empty());
  ASSERT_EQ(CR.QuarantinedPasses.size(), 1u);
  EXPECT_EQ(CR.QuarantinedPasses[0], "corruptor");

  // Execution records: first invocation rolled back, second skipped.
  std::vector<const PassExecution *> Corruptor;
  for (const PassExecution &E : CR.Passes)
    if (E.Name == "corruptor")
      Corruptor.push_back(&E);
  ASSERT_EQ(Corruptor.size(), 2u);
  EXPECT_TRUE(Corruptor[0]->RolledBack);
  EXPECT_FALSE(Corruptor[0]->changed());
  EXPECT_TRUE(Corruptor[1]->Skipped);
  EXPECT_EQ(Corruptor[1]->SkipReason, "quarantined");

  // One OMP180 remark per rollback, naming the pass.
  unsigned OMP180Count = 0;
  for (const Remark &R : CR.Remarks.remarks())
    if (R.Id == RemarkId::OMP180) {
      ++OMP180Count;
      EXPECT_TRUE(R.Missed);
      EXPECT_NE(R.Message.find("corruptor"), std::string::npos);
    }
  EXPECT_EQ(OMP180Count, 1u);
}

TEST(Recovery, RollbackRestoresExactPrePassIR) {
  // Two identically built kernels: one compiled normally, one compiled
  // with a corrupting extra pass under recovery. The final IR must match.
  IRContext CtxA, CtxB;
  // Same module name on purpose: the printed module header is part of the
  // fingerprint, and only the IR itself should be compared.
  Module A(CtxA, "m"), B(CtxB, "m");
  buildSaxpy(A, CodeGenScheme::Simplified13);
  buildSaxpy(B, CodeGenScheme::Simplified13);

  PipelineOptions PA = makeDevPipeline();
  PipelineOptions PB = makeDevPipeline();
  PB.Instrument.Recover = true;
  PB.ExtraPasses.push_back({"corruptor", corruptModule});

  CompileResult RA = optimizeDeviceModule(A, PA);
  CompileResult RB = optimizeDeviceModule(B, PB);
  ASSERT_FALSE(RA.VerifyFailed);
  ASSERT_FALSE(RB.VerifyFailed);
  EXPECT_EQ(hashModule(A), hashModule(B))
      << "a rolled-back pass must leave no trace in the final IR";
}

TEST(Recovery, LintingPassIsRolledBackAndQuarantined) {
  IRContext Ctx;
  Module M(Ctx, "lint-recover");
  buildSaxpy(M, CodeGenScheme::Simplified13);

  PipelineOptions P = makeDevPipeline();
  P.RunLint = true;
  P.Instrument.LintEach = true;
  P.Instrument.Recover = true;
  // Twice again: the first invocation rolls back on the lint finding and
  // quarantines the pass, the second must be skipped.
  P.ExtraPasses.push_back({"leak-injector", injectLeakyFunction});
  P.ExtraPasses.push_back({"leak-injector", injectLeakyFunction});

  CompileResult CR = optimizeDeviceModule(M, P);

  EXPECT_FALSE(CR.VerifyFailed) << CR.VerifyError;
  // The rollback erased the leak: the injected function is gone and the
  // final lint stage ran clean.
  EXPECT_EQ(nullptr, M.getFunction("leaky"));
  EXPECT_TRUE(CR.LintRan);
  EXPECT_TRUE(CR.LintFindings.empty());
  EXPECT_TRUE(CR.FirstLintFailPass.empty())
      << "rolled-back lint violations must not be attributed as surviving";

  ASSERT_EQ(CR.Recoveries.size(), 1u);
  EXPECT_EQ(CR.Recoveries[0].PassName, "leak-injector");
  EXPECT_EQ(CR.Recoveries[0].Kind, "lint-fail");
  EXPECT_NE(CR.Recoveries[0].Message.find("OMP202"), std::string::npos);
  ASSERT_EQ(CR.QuarantinedPasses.size(), 1u);
  EXPECT_EQ(CR.QuarantinedPasses[0], "leak-injector");

  std::vector<const PassExecution *> Injector;
  for (const PassExecution &E : CR.Passes)
    if (E.Name == "leak-injector")
      Injector.push_back(&E);
  ASSERT_EQ(Injector.size(), 2u);
  EXPECT_TRUE(Injector[0]->LintFailed);
  EXPECT_TRUE(Injector[0]->RolledBack);
  EXPECT_TRUE(Injector[1]->Skipped);
  EXPECT_EQ(Injector[1]->SkipReason, "quarantined");

  unsigned OMP180Count = 0;
  for (const Remark &R : CR.Remarks.remarks())
    if (R.Id == RemarkId::OMP180) {
      ++OMP180Count;
      EXPECT_TRUE(R.Missed);
      EXPECT_NE(R.Message.find("failed the device-IR lint"),
                std::string::npos);
    }
  EXPECT_EQ(OMP180Count, 1u);
}

TEST(Recovery, LintEachAttributesFirstDirtyPassWithoutRecovery) {
  IRContext Ctx;
  Module M(Ctx, "lint-attr");
  buildSaxpy(M, CodeGenScheme::Simplified13);

  PipelineOptions P = makeDevPipeline();
  P.RunLint = true;
  P.Instrument.LintEach = true;
  P.ExtraPasses.push_back({"leak-injector", injectLeakyFunction});

  CompileResult CR = optimizeDeviceModule(M, P);
  EXPECT_FALSE(CR.VerifyFailed) << CR.VerifyError;
  EXPECT_EQ(CR.FirstLintFailPass, "leak-injector");
  EXPECT_NE(CR.FirstLintError.find("OMP202"), std::string::npos);
  EXPECT_TRUE(CR.Recoveries.empty());
  // Without recovery the leak survives into the final module, so the
  // required omp-lint stage reports it too.
  EXPECT_TRUE(CR.LintRan);
  ASSERT_FALSE(CR.LintFindings.empty());
  EXPECT_EQ(LintKind::AllocFreePairing, CR.LintFindings.front().Kind);
}

TEST(Recovery, FatalErrorInPassIsRecovered) {
  IRContext Ctx;
  Module M(Ctx, "fatal");
  buildSaxpy(M, CodeGenScheme::Simplified13);

  PipelineOptions P = makeDevPipeline();
  P.Instrument.Recover = true;
  P.ExtraPasses.push_back({"fatal-pass", [](Module &) -> bool {
                             reportFatalError("synthetic pass failure");
                             return true;
                           }});

  CompileResult CR = optimizeDeviceModule(M, P);
  EXPECT_FALSE(CR.VerifyFailed) << CR.VerifyError;
  EXPECT_FALSE(verifyModule(M));
  ASSERT_EQ(CR.Recoveries.size(), 1u);
  EXPECT_EQ(CR.Recoveries[0].PassName, "fatal-pass");
  EXPECT_EQ(CR.Recoveries[0].Kind, "fatal-error");
  EXPECT_EQ(CR.Recoveries[0].Message, "synthetic pass failure");
  ASSERT_EQ(CR.QuarantinedPasses.size(), 1u);
  EXPECT_EQ(CR.QuarantinedPasses[0], "fatal-pass");
}

TEST(Recovery, ExceptionInPassIsRecovered) {
  IRContext Ctx;
  Module M(Ctx, "throwing");
  buildSaxpy(M, CodeGenScheme::Simplified13);

  PipelineOptions P = makeDevPipeline();
  P.Instrument.Recover = true;
  P.ExtraPasses.push_back({"throwing-pass", [](Module &M2) -> bool {
                             corruptModule(M2); // damage, then die
                             throw std::runtime_error("pass blew up");
                           }});

  CompileResult CR = optimizeDeviceModule(M, P);
  EXPECT_FALSE(CR.VerifyFailed) << CR.VerifyError;
  EXPECT_FALSE(verifyModule(M));
  ASSERT_EQ(CR.Recoveries.size(), 1u);
  EXPECT_EQ(CR.Recoveries[0].Kind, "exception");
  EXPECT_EQ(CR.Recoveries[0].Message, "pass blew up");
}

TEST(Recovery, EveryPipelinePresetSurvivesACorruptingPass) {
  // The acceptance bar: injecting a corrupting pass into any evaluation
  // preset still yields a verifier-clean module and a compile-report whose
  // recovery section names the quarantined pass.
  PipelineOptions Presets[] = {makeLLVM12Pipeline(), makeDevNoOptPipeline(),
                               makeDevPipeline(), makeCUDAPipeline()};
  for (PipelineOptions &P : Presets) {
    SCOPED_TRACE(P.Name);
    IRContext Ctx;
    Module M(Ctx, "preset");
    buildSaxpy(M, P.Scheme);

    P.Instrument.Recover = true;
    P.ExtraPasses.push_back({"corruptor", corruptModule});
    CompileResult CR = optimizeDeviceModule(M, P);

    EXPECT_FALSE(CR.VerifyFailed) << CR.VerifyError;
    EXPECT_FALSE(verifyModule(M));
    ASSERT_EQ(CR.QuarantinedPasses.size(), 1u);
    EXPECT_EQ(CR.QuarantinedPasses[0], "corruptor");

    json::Value Report = buildCompileReport(P, CR);
    json::Value Parsed;
    std::string Error;
    ASSERT_TRUE(json::parse(Report.str(), Parsed, &Error)) << Error;
    EXPECT_EQ(Parsed.at("schema_version").asInt(),
              (int64_t)CompileReportSchemaVersion);
    const json::Value &Rec = Parsed.at("recovery");
    EXPECT_TRUE(Rec.at("enabled").asBool());
    ASSERT_EQ(Rec.at("events").size(), 1u);
    EXPECT_EQ(Rec.at("events")[0].at("pass").asString(), "corruptor");
    EXPECT_EQ(Rec.at("events")[0].at("kind").asString(), "verify-fail");
    ASSERT_EQ(Rec.at("quarantined_passes").size(), 1u);
    EXPECT_EQ(Rec.at("quarantined_passes")[0].asString(), "corruptor");
  }
}

TEST(Recovery, HarnessRunsSabotagedPipelineEndToEnd) {
  // End to end: a recovery-enabled compile with an injected corruptor must
  // still produce a launchable, correct kernel (the harness re-resolves
  // the kernel after the module contents were swapped by a rollback).
  std::unique_ptr<Workload> W = createXSBench(ProblemSize::Small);
  PipelineOptions P = makeDevPipeline();
  P.Instrument.Recover = true;
  P.ExtraPasses.push_back({"corruptor", corruptModule});

  WorkloadRunResult R = runWorkload(*W, P);
  EXPECT_TRUE(R.Stats.ok()) << R.Stats.Trap;
  EXPECT_TRUE(R.Checked);
  EXPECT_TRUE(R.Correct);
  ASSERT_EQ(R.Compile.QuarantinedPasses.size(), 1u);
  EXPECT_EQ(R.Compile.QuarantinedPasses[0], "corruptor");
}

//===----------------------------------------------------------------------===//
// -opt-bisect-limit
//===----------------------------------------------------------------------===//

TEST(OptBisect, LimitZeroSkipsEverySkippableExecution) {
  IRContext Ctx;
  Module M(Ctx, "bisect0");
  buildSaxpy(M, CodeGenScheme::Simplified13);

  PipelineOptions P = makeDevPipeline();
  P.Instrument.OptBisectLimit = 0;
  P.Instrument.VerifyEach = true;
  CompileResult CR = optimizeDeviceModule(M, P);

  EXPECT_FALSE(CR.VerifyFailed) << CR.VerifyError;
  ASSERT_FALSE(CR.Passes.empty());
  for (const PassExecution &E : CR.Passes) {
    if (E.Name == LinkDeviceRTLPassName || E.Name == MapInferencePassName ||
        E.Name == OMPLintPassName) {
      // Required stages (lowering, map inference, final lint) always run
      // and consume no bisect index.
      EXPECT_FALSE(E.Skipped);
      EXPECT_EQ(E.BisectIndex, 0u);
    } else {
      EXPECT_TRUE(E.Skipped) << E.Name;
      EXPECT_EQ(E.SkipReason, "opt-bisect") << E.Name;
    }
  }
}

TEST(OptBisect, IndicesAreContiguousAndDeterministic) {
  auto Compile = [](CompileResult &Out) {
    IRContext Ctx;
    Module M(Ctx, "bisect-det");
    buildSaxpy(M, CodeGenScheme::Simplified13);
    PipelineOptions P = makeDevPipeline();
    P.Instrument.TimePasses = true; // enable recording, no limit
    Out = optimizeDeviceModule(M, P);
  };
  CompileResult A, B;
  Compile(A);
  Compile(B);

  // 1-based, contiguous over the non-required executions, in pre-order.
  unsigned Next = 1;
  for (const PassExecution &E : A.Passes) {
    if (E.Name == LinkDeviceRTLPassName || E.Name == MapInferencePassName ||
        E.Name == OMPLintPassName) {
      EXPECT_EQ(E.BisectIndex, 0u);
      continue;
    }
    EXPECT_EQ(E.BisectIndex, Next++) << E.Name;
  }
  EXPECT_GT(Next, 1u);

  // Identical inputs number identically — the property bisection rests on.
  ASSERT_EQ(A.Passes.size(), B.Passes.size());
  for (size_t I = 0; I != A.Passes.size(); ++I) {
    EXPECT_EQ(A.Passes[I].Name, B.Passes[I].Name);
    EXPECT_EQ(A.Passes[I].BisectIndex, B.Passes[I].BisectIndex);
  }
}

TEST(OptBisect, DriverLocalizesInjectedBadPassAndLimitReproducesIt) {
  PipelineOptions P = makeDevPipeline();
  P.ExtraPasses.push_back({"corruptor", corruptModule});

  BisectModuleFactory Factory = [](IRContext &Ctx) {
    auto M = std::make_unique<Module>(Ctx, "bisect-probe");
    buildSaxpy(*M, CodeGenScheme::Simplified13);
    return M;
  };

  BisectResult BR = runOptBisect(Factory, P);
  ASSERT_TRUE(BR.FoundFailure);
  EXPECT_EQ(BR.PassName, "corruptor");
  EXPECT_GT(BR.FirstBadExecution, 0);
  EXPECT_GT(BR.TotalExecutions, 0u);
  EXPECT_FALSE(BR.LastGood.VerifyFailed);

  // The boundary carries an OMP181 remark naming the culprit.
  bool SawOMP181 = false;
  for (const Remark &R : BR.LastGood.Remarks.remarks())
    if (R.Id == RemarkId::OMP181) {
      SawOMP181 = true;
      EXPECT_NE(R.Message.find("corruptor"), std::string::npos);
    }
  EXPECT_TRUE(SawOMP181);

  // Manual reproduction: -opt-bisect-limit at the boundary re-triggers the
  // failure; one below stays clean — same boundary as the automatic search.
  auto ProbeAt = [&](int64_t Limit) {
    IRContext Ctx;
    std::unique_ptr<Module> M = Factory(Ctx);
    PipelineOptions PP = P;
    PP.Instrument.VerifyEach = true;
    PP.Instrument.OptBisectLimit = Limit;
    return optimizeDeviceModule(*M, PP);
  };
  CompileResult AtBoundary = ProbeAt(BR.FirstBadExecution);
  EXPECT_TRUE(AtBoundary.VerifyFailed);
  EXPECT_EQ(AtBoundary.FirstCorruptPass, "corruptor");
  CompileResult BelowBoundary = ProbeAt(BR.FirstBadExecution - 1);
  EXPECT_FALSE(BelowBoundary.VerifyFailed) << BelowBoundary.VerifyError;
}

TEST(OptBisect, CleanPipelineReportsNoFailure) {
  PipelineOptions P = makeDevPipeline();
  BisectModuleFactory Factory = [](IRContext &Ctx) {
    auto M = std::make_unique<Module>(Ctx, "clean-probe");
    buildSaxpy(*M, CodeGenScheme::Simplified13);
    return M;
  };
  BisectResult BR = runOptBisect(Factory, P);
  EXPECT_FALSE(BR.FoundFailure);
  EXPECT_EQ(BR.FirstBadExecution, -1);
  EXPECT_EQ(BR.Probes, 1u);
  EXPECT_FALSE(BR.LastGood.VerifyFailed);
}

TEST(OptBisect, BisectWorkloadFindsInjectedBadPass) {
  std::unique_ptr<Workload> W = createXSBench(ProblemSize::Small);
  PipelineOptions P = makeDevPipeline();
  P.ExtraPasses.push_back({"corruptor", corruptModule});

  BisectResult BR = bisectWorkload(*W, P);
  ASSERT_TRUE(BR.FoundFailure);
  EXPECT_EQ(BR.PassName, "corruptor");

  // And the clean pipeline passes the differential smoke oracle.
  PipelineOptions Clean = makeDevPipeline();
  BisectResult CleanBR = bisectWorkload(*W, Clean);
  EXPECT_FALSE(CleanBR.FoundFailure);
}

//===----------------------------------------------------------------------===//
// Error / Expected and the converted abort paths
//===----------------------------------------------------------------------===//

TEST(ErrorHandling, ErrorAndExpectedBasics) {
  Error OK = Error::success();
  EXPECT_FALSE(OK);
  EXPECT_TRUE(OK.message().empty());

  Error Bad = Error::failure("it broke");
  EXPECT_TRUE(Bad);
  EXPECT_EQ(Bad.message(), "it broke");

  Expected<int> Val(42);
  ASSERT_TRUE(Val);
  EXPECT_EQ(*Val, 42);
  EXPECT_FALSE(Val.takeError());

  Expected<int> Fail(Error::failure("no value"));
  EXPECT_FALSE(Fail);
  EXPECT_EQ(Fail.message(), "no value");
  Error Taken = Fail.takeError();
  EXPECT_TRUE(Taken);
  EXPECT_EQ(Taken.message(), "no value");
}

TEST(ErrorHandling, ParseCommandLineArgsReportsBadValues) {
  static cl::opt<int64_t> TestNum("recovery-test-num",
                                  "test-only numeric option", 7);

  const char *Good[] = {"prog", "-recovery-test-num=21", "positional"};
  Expected<std::vector<std::string>> R =
      cl::parseCommandLineArgs(3, Good);
  ASSERT_TRUE(R) << R.message();
  EXPECT_EQ(TestNum.getValue(), 21);
  ASSERT_EQ(R->size(), 2u);
  EXPECT_EQ((*R)[1], "positional");

  const char *Bad[] = {"prog", "-recovery-test-num=banana"};
  Expected<std::vector<std::string>> E = cl::parseCommandLineArgs(2, Bad);
  ASSERT_FALSE(E);
  EXPECT_NE(E.message().find("banana"), std::string::npos);
  EXPECT_NE(E.message().find("recovery-test-num"), std::string::npos);
  // The failed parse must not have clobbered the previous value.
  EXPECT_EQ(TestNum.getValue(), 21);
}

TEST(ErrorHandling, CompileReportFileErrorsAreRecoverable) {
  json::Value Doc = json::Value::makeObject();
  Doc.set("k", "v");
  Error E = writeCompileReportFile(
      "/nonexistent-dir-for-ompgpu-tests/report.json", Doc);
  ASSERT_TRUE(E);
  EXPECT_NE(E.message().find("cannot open"), std::string::npos);
}

} // namespace
