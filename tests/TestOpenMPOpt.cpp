//===- tests/TestOpenMPOpt.cpp - OpenMPOpt pass unit tests ------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of the paper's transformations: internalization,
/// HeapToStack, HeapToShared, SPMDzation (guards, grouping, broadcast),
/// the custom state machine rewrite, runtime-call folding, remarks, and
/// assumption handling.
///
//===----------------------------------------------------------------------===//

#include "core/OpenMPModuleInfo.h"
#include "core/OpenMPOpt.h"
#include "frontend/OMPCodeGen.h"
#include "ir/AsmWriter.h"
#include "ir/Verifier.h"
#include "rtl/DeviceRTL.h"
#include "support/raw_ostream.h"
#include "transforms/FunctionAttrs.h"

#include <gtest/gtest.h>

using namespace ompgpu;

namespace {

class OpenMPOptTest : public ::testing::Test {
protected:
  IRContext Ctx;
  Module M{Ctx, "test"};
  OpenMPOptStats Stats;
  RemarkCollector Remarks;

  /// A generic kernel computing one team value shared into a parallel
  /// region (the Fig. 1 pattern), built with the Simplified13 scheme.
  Function *buildFig1Kernel(bool TeamValAddressTaken = true) {
    OMPCodeGen CG(M, {CodeGenScheme::Simplified13, false});
    TargetRegionBuilder TRB(CG, "fig1_kernel",
                            {Ctx.getPtrTy(), Ctx.getInt32Ty()},
                            ExecMode::Generic, 4, 64);
    Argument *Out = TRB.getParam(0);
    Argument *N = TRB.getParam(1);
    TRB.emitDistributeLoop(N, [&](IRBuilder &B, Value *BlockId) {
      Value *TeamVal = TRB.emitLocalVariable(Ctx.getDoubleTy(), "team_val",
                                             TeamValAddressTaken);
      Value *TV = B.createSIToFP(BlockId, Ctx.getDoubleTy());
      B.createStore(TV, TeamVal);
      std::vector<TargetRegionBuilder::Capture> Caps = {
          {TeamVal, true, "team_val"}, {Out, false, "out"}};
      TRB.emitParallelFor(
          B.getInt32(8), Caps,
          [&](IRBuilder &LB, Value *Idx,
              const TargetRegionBuilder::CaptureMap &Map) {
            Value *V = LB.createLoad(Ctx.getDoubleTy(), Map.at(TeamVal));
            Value *P = LB.createGEP(Ctx.getDoubleTy(), Map.at(Out), {Idx});
            LB.createStore(V, P);
          });
    });
    Function *K = TRB.finalize();
    linkDeviceRTL(M);
    return K;
  }

  /// An SPMD kernel whose event body owns an address-taken local handed
  /// to a device helper (the XSBench pattern).
  Function *buildSPMDKernelWithLocal(bool HelperNoEscape) {
    Function *Helper = M.createFunction(
        "helper", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}));
    if (HelperNoEscape)
      Helper->getArg(0)->setNoEscapeAttr();
    IRBuilder HB(Ctx);
    HB.setInsertPoint(Helper->createBlock("entry"));
    HB.createStore(HB.getDouble(1.0), Helper->getArg(0));
    HB.createRetVoid();

    OMPCodeGen CG(M, {CodeGenScheme::Simplified13, false});
    TargetRegionBuilder TRB(CG, "spmd_kernel",
                            {Ctx.getPtrTy(), Ctx.getInt32Ty()},
                            ExecMode::SPMD, 4, 64);
    Argument *Out = TRB.getParam(0);
    Argument *N = TRB.getParam(1);
    Value *Local = nullptr;
    std::vector<TargetRegionBuilder::Capture> Caps = {{Out, false, "out"}};
    TRB.emitDistributeParallelFor(
        N, Caps,
        [&](IRBuilder &LB, Value *Idx,
            const TargetRegionBuilder::CaptureMap &Map) {
          LB.createCall(M.getFunction("helper"), {Local});
          Value *V = LB.createLoad(Ctx.getDoubleTy(), Local);
          LB.createStore(V,
                         LB.createGEP(Ctx.getDoubleTy(), Map.at(Out),
                                      {Idx}));
        },
        64,
        [&](IRBuilder &PB, const TargetRegionBuilder::CaptureMap &) {
          Local = TRB.emitParallelLocalVariable(PB, Ctx.getDoubleTy(),
                                                "xs", true);
        });
    Function *K = TRB.finalize();
    linkDeviceRTL(M);
    return K;
  }

  unsigned countCalls(const Module &Mod, const std::string &Name) {
    unsigned N = 0;
    for (Function *F : Mod.functions())
      for (BasicBlock *BB : *F)
        for (Instruction *I : *BB)
          if (auto *CI = dyn_cast<CallInst>(I))
            if (CI->getCalledFunction() &&
                CI->getCalledFunction()->getName() == Name)
              ++N;
    return N;
  }

  bool hasRemark(RemarkId Id) {
    for (const Remark &R : Remarks.remarks())
      if (R.Id == Id)
        return true;
    return false;
  }
};

//===----------------------------------------------------------------------===//
// Module info analysis
//===----------------------------------------------------------------------===//

TEST_F(OpenMPOptTest, RecognizesKernelAndParallelRegions) {
  buildFig1Kernel();
  OpenMPModuleInfo Info(M);
  ASSERT_EQ(1u, Info.kernels().size());
  const KernelTargetInfo &KI = Info.kernels()[0];
  EXPECT_EQ(ExecMode::Generic, KI.Mode);
  EXPECT_TRUE(KI.UseGenericStateMachine);
  EXPECT_NE(nullptr, KI.InitCall);
  EXPECT_NE(nullptr, KI.UserCodeBB);
  EXPECT_EQ(nullptr, KI.WorkerBB); // runtime state machine, not front-end
  EXPECT_EQ(1u, Info.parallelSites().size());
  EXPECT_EQ(1u, Info.parallelWrappers().size());
  EXPECT_FALSE(Info.mayHaveNestedParallelism());
}

TEST_F(OpenMPOptTest, MainOnlyBlocksExcludeWrapper) {
  Function *K = buildFig1Kernel();
  OpenMPModuleInfo Info(M);
  // The allocation of team_val happens in the distribute body: main-only.
  for (BasicBlock *BB : *K)
    for (Instruction *I : *BB)
      if (auto *CI = dyn_cast<CallInst>(I)) {
        if (isRTFn(CI->getCalledFunction(), RTFn::AllocShared)) {
          EXPECT_TRUE(Info.isExecutedByInitialThreadOnly(*CI));
        }
      }
  // Code in the wrapper is not main-only.
  Function *W = *Info.parallelWrappers().begin();
  EXPECT_FALSE(Info.isFunctionMainThreadOnly(W));
}

//===----------------------------------------------------------------------===//
// HeapToStack / HeapToShared
//===----------------------------------------------------------------------===//

TEST_F(OpenMPOptTest, HeapToSharedForTeamValue) {
  buildFig1Kernel();
  inferFunctionAttrs(M);
  runOpenMPOpt(M, OpenMPOptConfig{}, Stats, Remarks);

  // team_val escapes into the parallel region -> HeapToShared, plus the
  // captured frame.
  EXPECT_EQ(0u, Stats.HeapToStack);
  EXPECT_EQ(2u, Stats.HeapToShared);
  EXPECT_EQ(0u, countCalls(M, "__kmpc_alloc_shared"));
  EXPECT_TRUE(hasRemark(RemarkId::OMP111));
  EXPECT_GE(M.getStaticSharedMemoryBytes(), 8u);
  std::string Err;
  EXPECT_FALSE(verifyModule(M, &Err)) << Err;
}

TEST_F(OpenMPOptTest, HeapToStackForPrivateLocal) {
  buildSPMDKernelWithLocal(/*HelperNoEscape=*/false);
  inferFunctionAttrs(M);
  runOpenMPOpt(M, OpenMPOptConfig{}, Stats, Remarks);

  // The helper only stores through the pointer; inter-procedural escape
  // analysis proves it and the local moves to the stack.
  EXPECT_EQ(1u, Stats.HeapToStack);
  EXPECT_TRUE(hasRemark(RemarkId::OMP110));
  EXPECT_EQ(0u, countCalls(M, "__kmpc_alloc_shared"));
}

TEST_F(OpenMPOptTest, DeglobalizationRespectsDisableFlag) {
  buildFig1Kernel();
  inferFunctionAttrs(M);
  OpenMPOptConfig Cfg;
  Cfg.DisableDeglobalization = true;
  runOpenMPOpt(M, Cfg, Stats, Remarks);
  EXPECT_EQ(0u, Stats.HeapToStack + Stats.HeapToShared);
  EXPECT_GT(countCalls(M, "__kmpc_alloc_shared"), 0u);
}

TEST_F(OpenMPOptTest, EscapingPointerReportsThreadSharing) {
  // A globalized variable allocated inside a parallel region (not by the
  // main thread) whose pointer escapes into an unknown callee: both
  // rewrites fail and the OMP112 remark is emitted (the Fig. 5c
  // scenario).
  Function *Unknown = M.getOrInsertFunction(
      "unknown", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}));
  buildFig1Kernel();
  OpenMPModuleInfo Pre(M);
  Function *W = *Pre.parallelWrappers().begin();
  IRBuilder B(Ctx);
  B.setInsertPoint(W->getEntryBlock()->front());
  Value *P = B.createCall(getOrCreateRTFn(M, RTFn::AllocShared),
                          {B.getInt64(8)}, "lcl");
  B.createCall(Unknown, {P});

  inferFunctionAttrs(M);
  runOpenMPOpt(M, OpenMPOptConfig{}, Stats, Remarks);
  EXPECT_TRUE(hasRemark(RemarkId::OMP112));
  // The injected allocation is still a runtime call.
  EXPECT_GE(countCalls(M, "__kmpc_alloc_shared"), 1u);
}

//===----------------------------------------------------------------------===//
// SPMDzation
//===----------------------------------------------------------------------===//

TEST_F(OpenMPOptTest, SPMDzationFlipsModeAndGuards) {
  Function *K = buildFig1Kernel();
  inferFunctionAttrs(M);
  runOpenMPOpt(M, OpenMPOptConfig{}, Stats, Remarks);

  EXPECT_EQ(1u, Stats.SPMDzedKernels);
  EXPECT_GE(Stats.GuardedRegions, 1u);
  EXPECT_EQ(ExecMode::SPMD, K->getKernelEnvironment().Mode);
  EXPECT_TRUE(hasRemark(RemarkId::OMP120));

  // The init call now carries the SPMD constant.
  OpenMPModuleInfo Info(M);
  const KernelTargetInfo *KI = Info.getKernelInfo(K);
  ASSERT_NE(nullptr, KI);
  EXPECT_EQ(ExecMode::SPMD, KI->Mode);
  EXPECT_FALSE(KI->UseGenericStateMachine);

  // Guard blocks exist.
  bool FoundGuard = false;
  for (BasicBlock *BB : *K)
    if (BB->getName().find("region.guarded") != std::string::npos)
      FoundGuard = true;
  EXPECT_TRUE(FoundGuard);
}

TEST_F(OpenMPOptTest, SPMDzationBlockedByOpaqueSideEffects) {
  // A call to an external function with side effects in the sequential
  // region blocks the conversion (remark OMP121)...
  Function *Ext = M.getOrInsertFunction(
      "mystery", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  OMPCodeGen CG(M, {CodeGenScheme::Simplified13, false});
  TargetRegionBuilder TRB(CG, "blocked_kernel", {Ctx.getInt32Ty()},
                          ExecMode::Generic, 2, 64);
  TRB.emitDistributeLoop(TRB.getParam(0), [&](IRBuilder &B, Value *) {
    B.createCall(Ext, {});
    std::vector<TargetRegionBuilder::Capture> Caps;
    TRB.emitParallelFor(B.getInt32(4), Caps,
                        [&](IRBuilder &, Value *,
                            const TargetRegionBuilder::CaptureMap &) {});
  });
  Function *K = TRB.finalize();
  linkDeviceRTL(M);
  inferFunctionAttrs(M);
  runOpenMPOpt(M, OpenMPOptConfig{}, Stats, Remarks);
  EXPECT_EQ(0u, Stats.SPMDzedKernels);
  EXPECT_TRUE(hasRemark(RemarkId::OMP121));
  EXPECT_EQ(ExecMode::Generic, K->getKernelEnvironment().Mode);
  // ...and the kernel falls back to a custom state machine instead.
  EXPECT_EQ(1u, Stats.CustomStateMachines);
}

TEST_F(OpenMPOptTest, AssumptionUnblocksSPMDzation) {
  // Same as above but the callee carries `ext_spmd_amenable`.
  Function *Ext = M.getOrInsertFunction(
      "mystery", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  Ext->addAssumption("ext_spmd_amenable");
  OMPCodeGen CG(M, {CodeGenScheme::Simplified13, false});
  TargetRegionBuilder TRB(CG, "assumed_kernel", {Ctx.getInt32Ty()},
                          ExecMode::Generic, 2, 64);
  TRB.emitDistributeLoop(TRB.getParam(0), [&](IRBuilder &B, Value *) {
    B.createCall(Ext, {});
    std::vector<TargetRegionBuilder::Capture> Caps;
    TRB.emitParallelFor(B.getInt32(4), Caps,
                        [&](IRBuilder &, Value *,
                            const TargetRegionBuilder::CaptureMap &) {});
  });
  Function *K = TRB.finalize();
  linkDeviceRTL(M);
  inferFunctionAttrs(M);
  runOpenMPOpt(M, OpenMPOptConfig{}, Stats, Remarks);
  EXPECT_EQ(1u, Stats.SPMDzedKernels);
  EXPECT_EQ(ExecMode::SPMD, K->getKernelEnvironment().Mode);
}

TEST_F(OpenMPOptTest, GuardGroupingReducesRegions) {
  // Two independent global stores separated by SPMD-amenable arithmetic
  // (the Fig. 7 example): grouping merges them into one guarded region.
  auto Build = [&](Module &Mod, bool DisableGrouping) -> unsigned {
    OMPCodeGen CG(Mod, {CodeGenScheme::Simplified13, false});
    IRContext &C = Mod.getContext();
    TargetRegionBuilder TRB(CG, "fig7_kernel", {C.getPtrTy()},
                            ExecMode::Generic, 2, 64);
    IRBuilder &B = TRB.getBuilder();
    Argument *A = TRB.getParam(0);
    // A[0] = 1.0; <arith>; A[1] = 2.0; then a parallel region.
    B.createStore(B.getDouble(1.0),
                  B.createGEP(C.getDoubleTy(), A, {B.getInt32(0)}));
    Value *X = B.createFAdd(B.getDouble(3.0), B.getDouble(4.0), "x");
    Value *Y = B.createFMul(X, X, "y");
    (void)Y;
    B.createStore(B.getDouble(2.0),
                  B.createGEP(C.getDoubleTy(), A, {B.getInt32(1)}));
    std::vector<TargetRegionBuilder::Capture> Caps = {{A, false, "a"}};
    TRB.emitParallelFor(B.getInt32(8), Caps,
                        [&](IRBuilder &, Value *,
                            const TargetRegionBuilder::CaptureMap &) {});
    TRB.finalize();
    linkDeviceRTL(Mod);
    inferFunctionAttrs(Mod);
    OpenMPOptConfig Cfg;
    Cfg.DisableGuardGrouping = DisableGrouping;
    OpenMPOptStats S;
    RemarkCollector R;
    runOpenMPOpt(Mod, Cfg, S, R);
    EXPECT_EQ(1u, S.SPMDzedKernels);
    return S.GuardedRegions;
  };

  IRContext C1, C2;
  Module M1(C1, "grouped"), M2(C2, "naive");
  unsigned Grouped = Build(M1, false);
  unsigned Naive = Build(M2, true);
  EXPECT_LT(Grouped, Naive);
  EXPECT_GE(Grouped, 1u); // the stores and frame setup share one region
  EXPECT_GE(Naive, 3u);
}

TEST_F(OpenMPOptTest, BroadcastValueEscapingGuard) {
  // A guarded call result used below the guard must be broadcast through
  // shared memory.
  Function *Compute = M.createFunction(
      "compute", Ctx.getFunctionTy(Ctx.getDoubleTy(), {Ctx.getPtrTy()}));
  IRBuilder CB(Ctx);
  CB.setInsertPoint(Compute->createBlock("entry"));
  CB.createStore(CB.getDouble(7.0), Compute->getArg(0)); // side effect
  CB.createRet(CB.getDouble(7.0));

  OMPCodeGen CG(M, {CodeGenScheme::Simplified13, false});
  TargetRegionBuilder TRB(CG, "bcast_kernel", {Ctx.getPtrTy()},
                          ExecMode::Generic, 2, 64);
  IRBuilder &B = TRB.getBuilder();
  Argument *Out = TRB.getParam(0);
  Value *V = B.createCall(M.getFunction("compute"), {Out}, "team_v");
  // V2 depends on the guarded call's result, so it cannot be hoisted
  // above the guard and V must be broadcast out of the guarded region.
  Value *V2 = B.createFMul(V, B.getDouble(2.0), "team_v2");
  std::vector<TargetRegionBuilder::Capture> Caps = {{V2, false, "v2"},
                                                    {Out, false, "out"}};
  TRB.emitParallelFor(
      B.getInt32(4), Caps,
      [&](IRBuilder &LB, Value *Idx,
          const TargetRegionBuilder::CaptureMap &Map) {
        LB.createStore(Map.at(V2),
                       LB.createGEP(Ctx.getDoubleTy(), Map.at(Out),
                                    {Idx}));
      });
  TRB.finalize();
  linkDeviceRTL(M);
  inferFunctionAttrs(M);
  runOpenMPOpt(M, OpenMPOptConfig{}, Stats, Remarks);
  ASSERT_EQ(1u, Stats.SPMDzedKernels);
  // A broadcast global was created.
  bool FoundBroadcast = false;
  for (GlobalVariable *G : M.globals())
    if (G->getName().find("broadcast") != std::string::npos)
      FoundBroadcast = true;
  EXPECT_TRUE(FoundBroadcast);
}

//===----------------------------------------------------------------------===//
// Custom state machine
//===----------------------------------------------------------------------===//

TEST_F(OpenMPOptTest, CSMRewriteEliminatesFunctionPointers) {
  // A *defined* side-effecting callee keeps all parallel regions known
  // (no fallback needed); SPMDzation is disabled to force the rewrite.
  GlobalVariable *G =
      M.createGlobal(Ctx.getDoubleTy(), AddrSpace::Global, "sink");
  Function *Ext = M.createFunction(
      "mystery", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  {
    IRBuilder EB(Ctx);
    EB.setInsertPoint(Ext->createBlock("entry"));
    Value *GP = EB.createAddrSpaceCast(G, AddrSpace::Generic);
    EB.createStore(EB.getDouble(1.0), GP);
    EB.createRetVoid();
  }
  OMPCodeGen CG(M, {CodeGenScheme::Simplified13, false});
  TargetRegionBuilder TRB(CG, "csm_kernel", {Ctx.getInt32Ty()},
                          ExecMode::Generic, 2, 64);
  TRB.emitDistributeLoop(TRB.getParam(0), [&](IRBuilder &B, Value *) {
    B.createCall(Ext, {});
    std::vector<TargetRegionBuilder::Capture> Caps;
    TRB.emitParallelFor(B.getInt32(4), Caps,
                        [&](IRBuilder &, Value *,
                            const TargetRegionBuilder::CaptureMap &) {});
  });
  Function *K = TRB.finalize();
  linkDeviceRTL(M);
  inferFunctionAttrs(M);

  OpenMPOptConfig Cfg;
  Cfg.DisableSPMDization = true;
  runOpenMPOpt(M, Cfg, Stats, Remarks);
  EXPECT_EQ(1u, Stats.CustomStateMachines);
  EXPECT_TRUE(hasRemark(RemarkId::OMP130));
  EXPECT_FALSE(K->getKernelEnvironment().UseGenericStateMachine);

  // The parallel site now passes an ID global instead of the wrapper.
  OpenMPModuleInfo Info(M);
  ASSERT_EQ(1u, Info.parallelSites().size());
  CallInst *Site = Info.parallelSites()[0];
  EXPECT_FALSE(isa<Function>(Site->getArgOperand(0)));
  EXPECT_TRUE(isa<GlobalVariable>(Site->getArgOperand(0)));

  // The kernel contains the state machine blocks.
  bool FoundSM = false;
  for (BasicBlock *BB : *K)
    if (BB->getName().find("worker_state_machine") != std::string::npos)
      FoundSM = true;
  EXPECT_TRUE(FoundSM);
  std::string Err;
  EXPECT_FALSE(verifyModule(M, &Err)) << Err;
}

TEST_F(OpenMPOptTest, CSMDisableFlagRespected) {
  Function *Ext = M.getOrInsertFunction(
      "mystery", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  (void)Ext;
  buildFig1Kernel();
  inferFunctionAttrs(M);
  OpenMPOptConfig Cfg;
  Cfg.DisableSPMDization = true;
  Cfg.DisableStateMachineRewrite = true;
  runOpenMPOpt(M, Cfg, Stats, Remarks);
  EXPECT_EQ(0u, Stats.CustomStateMachines);
}

//===----------------------------------------------------------------------===//
// Runtime call folding
//===----------------------------------------------------------------------===//

TEST_F(OpenMPOptTest, FoldsExecModeParallelLevelAndLaunchParams) {
  buildSPMDKernelWithLocal(false);
  inferFunctionAttrs(M);
  runOpenMPOpt(M, OpenMPOptConfig{}, Stats, Remarks);

  EXPECT_GT(Stats.FoldedExecMode, 0u);
  EXPECT_GT(Stats.FoldedParallelLevel, 0u);
  EXPECT_GT(Stats.FoldedLaunchParams, 0u);
  EXPECT_EQ(0u, countCalls(M, "__kmpc_is_spmd_exec_mode"));
  EXPECT_EQ(0u, countCalls(M, "__kmpc_parallel_level"));
}

TEST_F(OpenMPOptTest, FoldingDisableFlagRespected) {
  buildSPMDKernelWithLocal(false);
  inferFunctionAttrs(M);
  OpenMPOptConfig Cfg;
  Cfg.DisableFolding = true;
  runOpenMPOpt(M, Cfg, Stats, Remarks);
  EXPECT_EQ(0u, Stats.FoldedExecMode + Stats.FoldedParallelLevel +
                    Stats.FoldedLaunchParams);
  EXPECT_GT(countCalls(M, "__kmpc_is_spmd_exec_mode"), 0u);
}

//===----------------------------------------------------------------------===//
// Internalization
//===----------------------------------------------------------------------===//

TEST_F(OpenMPOptTest, InternalizationClonesExternalFunctions) {
  buildSPMDKernelWithLocal(false);
  inferFunctionAttrs(M);
  runOpenMPOpt(M, OpenMPOptConfig{}, Stats, Remarks);
  EXPECT_GE(Stats.InternalizedFunctions, 1u);
  Function *Clone = M.getFunction("helper.internalized");
  ASSERT_NE(nullptr, Clone);
  EXPECT_TRUE(Clone->hasInternalLinkage());
  // The kernel-side call goes to the clone; the external copy remains.
  EXPECT_NE(nullptr, M.getFunction("helper"));
}

TEST_F(OpenMPOptTest, LinkOnceODRNotInternalized) {
  Function *F = M.createFunction(
      "odr", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  F->setLinkage(Linkage::LinkOnceODR);
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  B.createRetVoid();
  buildFig1Kernel();
  inferFunctionAttrs(M);
  runOpenMPOpt(M, OpenMPOptConfig{}, Stats, Remarks);
  EXPECT_EQ(nullptr, M.getFunction("odr.internalized"));
  EXPECT_TRUE(hasRemark(RemarkId::OMP133));
}

//===----------------------------------------------------------------------===//
// Remark rendering
//===----------------------------------------------------------------------===//

TEST_F(OpenMPOptTest, RemarkTextMatchesPaperFormat) {
  buildFig1Kernel();
  inferFunctionAttrs(M);
  runOpenMPOpt(M, OpenMPOptConfig{}, Stats, Remarks);
  std::string S;
  raw_string_ostream OS(S);
  Remarks.print(OS);
  // Fig. 8 style: "...: remark: ... [OMP111] [-Rpass=openmp-opt]"
  EXPECT_NE(std::string::npos, S.find("[OMP111] [-Rpass=openmp-opt]"));
  EXPECT_NE(std::string::npos, S.find("remark: "));
}

} // namespace
