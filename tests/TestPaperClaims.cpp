//===- tests/TestPaperClaims.cpp - Evaluation claims as regressions ---------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the reproduced evaluation results (Sec. V) as regression tests:
/// the Fig. 9 opportunity counts, the RSBench out-of-memory behaviour,
/// and the Fig. 11 performance orderings. If a change to the cost model
/// or the passes breaks a paper-level claim, these tests catch it.
///
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include <gtest/gtest.h>

using namespace ompgpu;

namespace {

WorkloadRunResult compileOnly(std::unique_ptr<Workload> (*Factory)(
                                  ProblemSize),
                              const PipelineOptions &P) {
  std::unique_ptr<Workload> W = Factory(ProblemSize::Small);
  HarnessOptions HO;
  HO.MaxSimulatedBlocks = 1;
  return runWorkload(*W, P, HO);
}

double measureMs(std::unique_ptr<Workload> (*Factory)(ProblemSize),
                 const PipelineOptions &P, bool CUDA = false,
                 bool *OOM = nullptr) {
  std::unique_ptr<Workload> W = Factory(ProblemSize::Large);
  HarnessOptions HO;
  HO.MaxSimulatedBlocks = 2;
  HO.UseCUDAKernel = CUDA;
  WorkloadRunResult R = runWorkload(*W, P, HO);
  EXPECT_TRUE(R.Stats.ok()) << R.Stats.Trap;
  if (OOM)
    *OOM = R.Stats.OutOfMemory;
  return R.Stats.Milliseconds;
}

//===----------------------------------------------------------------------===//
// Fig. 9: optimization opportunity counts
//===----------------------------------------------------------------------===//

TEST(PaperClaims, Fig9_XSBenchHasThreeHeapToStackVariables) {
  WorkloadRunResult R = compileOnly(createXSBench, makeDevPipeline());
  EXPECT_EQ(3u, R.Compile.Stats.HeapToStack); // macro_xs, micro_xs, seed
  EXPECT_EQ(0u, R.Compile.Stats.HeapToShared);
  EXPECT_EQ(0u, R.Compile.Stats.SPMDzedKernels); // already SPMD
  EXPECT_GT(R.Compile.Stats.FoldedExecMode, 0u);
  EXPECT_GT(R.Compile.Stats.FoldedParallelLevel, 0u);
}

TEST(PaperClaims, Fig9_RSBenchHasSevenHeapToStackVariables) {
  WorkloadRunResult R = compileOnly(createRSBench, makeDevPipeline());
  EXPECT_EQ(7u, R.Compile.Stats.HeapToStack);
  EXPECT_EQ(0u, R.Compile.Stats.HeapToShared);
}

TEST(PaperClaims, Fig9_GenericKernelsAreSPMDzed) {
  WorkloadRunResult SU3 = compileOnly(createSU3Bench, makeDevPipeline());
  EXPECT_EQ(1u, SU3.Compile.Stats.SPMDzedKernels);
  EXPECT_EQ(0u, SU3.Compile.Stats.CustomStateMachines); // obsoleted

  WorkloadRunResult QMC = compileOnly(createMiniQMC, makeDevPipeline());
  EXPECT_EQ(1u, QMC.Compile.Stats.SPMDzedKernels);
}

TEST(PaperClaims, Fig9_MiniQMCDeglobalizesAllTwentyOneVariables) {
  // 18 walker-scope buffers + 3 per-thread accumulators + the captured
  // frames: everything leaves the globalization runtime.
  WorkloadRunResult R = compileOnly(createMiniQMC, makeDevPipeline());
  EXPECT_GE(R.Compile.Stats.HeapToStack +
                R.Compile.Stats.HeapToShared,
            21u);
  EXPECT_GT(R.Compile.Stats.HeapToShared, 0u);
}

TEST(PaperClaims, Fig9_NoMissedOpportunitiesOnTheProxies) {
  // "There were no missed optimization opportunities": no OMP112/OMP113
  // missed-remarks on any proxy under the full pipeline.
  for (auto *Factory : {createXSBench, createRSBench, createSU3Bench,
                        createMiniQMC}) {
    WorkloadRunResult R = compileOnly(Factory, makeDevPipeline());
    for (const Remark &Rem : R.Compile.Remarks.remarks()) {
      EXPECT_NE(RemarkId::OMP112, Rem.Id) << Rem.Message;
      EXPECT_NE(RemarkId::OMP113, Rem.Id) << Rem.Message;
      EXPECT_NE(RemarkId::OMP121, Rem.Id) << Rem.Message;
    }
  }
}

TEST(PaperClaims, Fig9_CSMFiresWhenSPMDzationDisabled) {
  PipelineOptions P = makeDevPipeline(true, true, true, true,
                                      /*SPMDzation=*/false);
  WorkloadRunResult SU3 = compileOnly(createSU3Bench, P);
  EXPECT_EQ(1u, SU3.Compile.Stats.CustomStateMachines);
  EXPECT_EQ(0u, SU3.Compile.Stats.SPMDzedKernels);
}

//===----------------------------------------------------------------------===//
// Fig. 10: resource usage shapes
//===----------------------------------------------------------------------===//

TEST(PaperClaims, Fig10_CUDAUsesFarFewerRegistersThanOpenMP) {
  std::unique_ptr<Workload> W = createXSBench(ProblemSize::Small);
  HarnessOptions CUDA;
  CUDA.MaxSimulatedBlocks = 1;
  CUDA.UseCUDAKernel = true;
  WorkloadRunResult RC = runWorkload(*W, makeCUDAPipeline(), CUDA);

  std::unique_ptr<Workload> W2 = createXSBench(ProblemSize::Small);
  HarnessOptions OMP;
  OMP.MaxSimulatedBlocks = 1;
  WorkloadRunResult RO = runWorkload(*W2, makeLLVM12Pipeline(), OMP);

  ASSERT_TRUE(RC.Stats.ok() && RO.Stats.ok());
  EXPECT_LT(RC.Stats.RegsPerThread * 2, RO.Stats.RegsPerThread);
}

TEST(PaperClaims, Fig10_HeapToSharedShowsUpAsStaticSharedMemory) {
  WorkloadRunResult R = compileOnly(createMiniQMC, makeDevPipeline());
  ASSERT_TRUE(R.Stats.ok()) << R.Stats.Trap;
  EXPECT_GT(R.Stats.StaticSharedBytes, 0u);
}

//===----------------------------------------------------------------------===//
// Fig. 11: performance orderings
//===----------------------------------------------------------------------===//

TEST(PaperClaims, Fig11b_RSBenchNoOptRunsOutOfMemory) {
  bool OOM = false;
  measureMs(createRSBench, makeDevNoOptPipeline(), false, &OOM);
  EXPECT_TRUE(OOM);

  // ...and heap-to-stack resolves it, as in the paper.
  OOM = true;
  measureMs(createRSBench, makeDevPipeline(), false, &OOM);
  EXPECT_FALSE(OOM);
}

TEST(PaperClaims, Fig11c_SPMDzationIsTheStepChangeForSU3) {
  double L12 = measureMs(createSU3Bench, makeLLVM12Pipeline());
  double CSM = measureMs(createSU3Bench,
                         makeDevPipeline(true, true, true, true, false));
  double SPMD = measureMs(createSU3Bench, makeDevPipeline());
  double CUDA = measureMs(createSU3Bench, makeCUDAPipeline(), true);

  // CSM is in the baseline's ballpark; SPMDzation is a multiple; CUDA is
  // the watermark (paper: 1x / ~1x / 10.8x / ~33x).
  EXPECT_GT(L12 / SPMD, 3.0);
  EXPECT_LT(L12 / CSM, 2.0);
  EXPECT_GT(L12 / CUDA, 15.0);
  EXPECT_LT(SPMD, CSM);
  EXPECT_LT(CUDA, SPMD);
}

TEST(PaperClaims, Fig11d_MiniQMCLadderOrdering) {
  double L12 = measureMs(createMiniQMC, makeLLVM12Pipeline());
  double NoOpt = measureMs(createMiniQMC, makeDevNoOptPipeline());
  double H2S2 = measureMs(createMiniQMC,
                          makeDevPipeline(true, true, false, false,
                                          false));
  double Dev = measureMs(createMiniQMC, makeDevPipeline());

  EXPECT_GT(NoOpt, L12); // simplified globalization alone regresses
  EXPECT_LT(H2S2, NoOpt); // HeapToShared recovers
  EXPECT_LT(Dev, L12);    // the full pipeline wins
  EXPECT_LE(Dev, H2S2);
}

TEST(PaperClaims, Fig11a_DevBeatsLLVM12AndCUDAIsTheWatermark) {
  double L12 = measureMs(createXSBench, makeLLVM12Pipeline());
  double Dev = measureMs(createXSBench, makeDevPipeline());
  double CUDA = measureMs(createXSBench, makeCUDAPipeline(), true);
  EXPECT_LT(Dev, L12);
  EXPECT_LT(CUDA, Dev);
  EXPECT_GT(L12 / CUDA, 1.5); // paper: 2.14x
  EXPECT_LT(L12 / CUDA, 4.0);
}

} // namespace
