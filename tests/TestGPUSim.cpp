//===- tests/TestGPUSim.cpp - GPU simulator unit tests ----------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "frontend/OMPRuntime.h"
#include "gpusim/Device.h"
#include "gpusim/ResourceEstimator.h"
#include "gpusim/SimAddress.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "rtl/DeviceRTL.h"

#include <gtest/gtest.h>

using namespace ompgpu;

namespace {

class GPUSimTest : public ::testing::Test {
protected:
  IRContext Ctx;
  Module M{Ctx, "sim"};
  GPUDevice Dev;

  KernelStats launch(Function *K, unsigned Grid, unsigned Block,
                     std::vector<uint64_t> Args) {
    LaunchConfig LC;
    LC.GridDim = Grid;
    LC.BlockDim = Block;
    NativeRuntimeBinding RTL =
        makeOpenMPRuntimeBinding(RuntimeFlavor::Modern, Dev.getMachine());
    return Dev.launchKernel(M, K, LC, Args, RTL);
  }

  Function *makeKernel(const std::string &Name,
                       std::vector<Type *> Params) {
    Function *K = M.createFunction(
        Name, Ctx.getFunctionTy(Ctx.getVoidTy(), Params));
    K->setKernel(true);
    return K;
  }
};

TEST_F(GPUSimTest, AddressEncoding) {
  uint64_t A = makeSimAddr(Seg::Global, 0x1234);
  EXPECT_EQ(Seg::Global, getSimAddrSeg(A));
  EXPECT_EQ(0x1234u, getSimAddrOffset(A));

  uint64_t L = makeLocalSimAddr(17, 0x88);
  EXPECT_EQ(Seg::Local, getSimAddrSeg(L));
  EXPECT_EQ(17u, getLocalSimAddrOwner(L));
  EXPECT_EQ(0x88u, getLocalSimAddrOffset(L));
}

TEST_F(GPUSimTest, HostDeviceMemcpyRoundTrip) {
  std::vector<double> Host = {1.5, -2.5, 3.25};
  uint64_t Addr = Dev.allocateArray(Host);
  std::vector<double> Back = Dev.downloadArray<double>(Addr, 3);
  EXPECT_EQ(Host, Back);
}

TEST_F(GPUSimTest, ThreadIdAndArithmetic) {
  // out[tid] = tid * 3 + block * 1000
  Function *K = makeKernel("k", {Ctx.getPtrTy()});
  IRBuilder B(Ctx);
  B.setInsertPoint(K->createBlock("entry"));
  Value *Tid = B.createCall(getOrCreateRTFn(M, RTFn::HardwareThreadId), {});
  Value *Blk = B.createCall(getOrCreateRTFn(M, RTFn::GetTeamNum), {});
  Value *V = B.createAdd(B.createMul(Tid, B.getInt32(3)),
                         B.createMul(Blk, B.getInt32(1000)));
  Value *BDim =
      B.createCall(getOrCreateRTFn(M, RTFn::HardwareNumThreads), {});
  Value *Pos = B.createAdd(B.createMul(Blk, BDim), Tid);
  B.createStore(V, B.createGEP(Ctx.getInt32Ty(), K->getArg(0), {Pos}));
  B.createRetVoid();

  uint64_t Out = Dev.allocate(2 * 8 * 4);
  KernelStats S = launch(K, 2, 8, {Out});
  ASSERT_TRUE(S.ok()) << S.Trap;
  std::vector<int32_t> H = Dev.downloadArray<int32_t>(Out, 16);
  for (int Blk2 = 0; Blk2 < 2; ++Blk2)
    for (int T = 0; T < 8; ++T)
      EXPECT_EQ(T * 3 + Blk2 * 1000, H[Blk2 * 8 + T]);
  EXPECT_EQ(16u + /*per-thread overhead*/ 0u, 16u);
  EXPECT_GT(S.DynamicInstructions, 0u);
}

TEST_F(GPUSimTest, FloatTypedMemoryAndPrecision) {
  // f32 arithmetic must round to float precision in memory and registers.
  Function *K = makeKernel("kf", {Ctx.getPtrTy()});
  IRBuilder B(Ctx);
  B.setInsertPoint(K->createBlock("entry"));
  Value *X = B.createFAdd(B.getFloat(0.1), B.getFloat(0.2));
  B.createStore(X, K->getArg(0));
  B.createRetVoid();

  uint64_t Out = Dev.allocate(4);
  KernelStats S = launch(K, 1, 1, {Out});
  ASSERT_TRUE(S.ok()) << S.Trap;
  float HostF = 0;
  Dev.memcpyFromDevice(&HostF, Out, 4);
  EXPECT_EQ((float)0.1f + 0.2f, HostF);
}

TEST_F(GPUSimTest, CrossThreadLocalAccessTraps) {
  // The Fig. 3 failure mode: a thread dereferencing another thread's
  // stack variable. Thread 0 publishes &local to global memory; thread 1
  // reads through it and must fault.
  Function *K = makeKernel("bad", {Ctx.getPtrTy()});
  IRBuilder B(Ctx);
  BasicBlock *E = K->createBlock("entry");
  BasicBlock *Pub = K->createBlock("pub");
  BasicBlock *Wait = K->createBlock("wait");
  BasicBlock *Read = K->createBlock("read");
  BasicBlock *X = K->createBlock("exit");
  B.setInsertPoint(E);
  Value *Lcl = B.createAlloca(Ctx.getInt32Ty(), "lcl");
  B.createStore(B.getInt32(42), Lcl);
  Value *Tid = B.createCall(getOrCreateRTFn(M, RTFn::HardwareThreadId), {});
  Value *IsZero = B.createICmpEQ(Tid, B.getInt32(0));
  B.createCondBr(IsZero, Pub, Wait);
  B.setInsertPoint(Pub);
  B.createStore(Lcl, K->getArg(0)); // publish &local
  B.createBr(Wait);
  B.setInsertPoint(Wait);
  B.createCall(getOrCreateRTFn(M, RTFn::BarrierSimpleSPMD), {});
  Value *IsOne = B.createICmpEQ(Tid, B.getInt32(1));
  B.createCondBr(IsOne, Read, X);
  B.setInsertPoint(Read);
  Value *P = B.createLoad(Ctx.getPtrTy(), K->getArg(0));
  B.createLoad(Ctx.getInt32Ty(), P); // cross-thread stack access
  B.createBr(X);
  B.setInsertPoint(X);
  B.createRetVoid();

  uint64_t Slot = Dev.allocate(8);
  KernelStats S = launch(K, 1, 4, {Slot});
  EXPECT_FALSE(S.ok());
  EXPECT_NE(std::string::npos, S.Trap.find("cross-thread"));
}

TEST_F(GPUSimTest, AtomicAccumulation) {
  Function *K = makeKernel("at", {Ctx.getPtrTy()});
  IRBuilder B(Ctx);
  B.setInsertPoint(K->createBlock("entry"));
  B.createAtomicRMW(AtomicRMWOp::Add, K->getArg(0), B.getInt64(1));
  B.createRetVoid();

  uint64_t Out = Dev.allocate(8);
  uint64_t Zero = 0;
  Dev.memcpyToDevice(Out, &Zero, 8);
  KernelStats S = launch(K, 4, 32, {Out});
  ASSERT_TRUE(S.ok()) << S.Trap;
  int64_t Sum = 0;
  Dev.memcpyFromDevice(&Sum, Out, 8);
  EXPECT_EQ(128, Sum);
}

TEST_F(GPUSimTest, BarrierAlignsClocks) {
  // Thread 0 performs extra expensive work before a barrier; afterwards
  // every thread's progress (observable through the block time) reflects
  // the max. A kernel with the barrier must not be faster than without.
  auto Build = [&](const std::string &Name, bool WithBarrier) {
    Function *K = makeKernel(Name, {Ctx.getPtrTy()});
    IRBuilder B(Ctx);
    BasicBlock *E = K->createBlock("entry");
    BasicBlock *Slow = K->createBlock("slow");
    BasicBlock *Join = K->createBlock("join");
    B.setInsertPoint(E);
    Value *Tid =
        B.createCall(getOrCreateRTFn(M, RTFn::HardwareThreadId), {});
    B.createCondBr(B.createICmpEQ(Tid, B.getInt32(0)), Slow, Join);
    B.setInsertPoint(Slow);
    Value *Acc = B.getDouble(1.0);
    for (int I = 0; I < 50; ++I)
      Acc = B.createMath(MathOp::Sqrt, {Acc});
    B.createStore(Acc, K->getArg(0));
    B.createBr(Join);
    B.setInsertPoint(Join);
    if (WithBarrier)
      B.createCall(getOrCreateRTFn(M, RTFn::BarrierSimpleSPMD), {});
    B.createRetVoid();
    return K;
  };
  Function *K1 = Build("nob", false);
  Function *K2 = Build("withb", true);
  uint64_t Out = Dev.allocate(8);
  KernelStats S1 = launch(K1, 1, 32, {Out});
  KernelStats S2 = launch(K2, 1, 32, {Out});
  ASSERT_TRUE(S1.ok() && S2.ok());
  EXPECT_GE(S2.Cycles, S1.Cycles);
}

TEST_F(GPUSimTest, DeadlockDetected) {
  // Only thread 0 reaches the barrier: the scheduler must report it.
  Function *K = makeKernel("dead", {});
  IRBuilder B(Ctx);
  BasicBlock *E = K->createBlock("entry");
  BasicBlock *W = K->createBlock("wait");
  BasicBlock *X = K->createBlock("exit");
  B.setInsertPoint(E);
  Value *Tid = B.createCall(getOrCreateRTFn(M, RTFn::HardwareThreadId), {});
  B.createCondBr(B.createICmpEQ(Tid, B.getInt32(0)), W, X);
  B.setInsertPoint(W);
  B.createCall(getOrCreateRTFn(M, RTFn::BarrierSimpleSPMD), {});
  B.createBr(X);
  B.setInsertPoint(X);
  B.createRetVoid();

  KernelStats S = launch(K, 1, 4, {});
  EXPECT_FALSE(S.ok());
  EXPECT_NE(std::string::npos, S.Trap.find("deadlock"));
}

TEST_F(GPUSimTest, IndirectCallThroughTable) {
  Function *Target = M.createFunction(
      "target42", Ctx.getFunctionTy(Ctx.getInt32Ty(), {}));
  IRBuilder TB(Ctx);
  TB.setInsertPoint(Target->createBlock("entry"));
  TB.createRet(TB.getInt32(42));

  Function *K = makeKernel("ind", {Ctx.getPtrTy()});
  IRBuilder B(Ctx);
  B.setInsertPoint(K->createBlock("entry"));
  Value *Slot = B.createAlloca(Ctx.getPtrTy());
  B.createStore(Target, Slot);
  Value *FP = B.createLoad(Ctx.getPtrTy(), Slot);
  Value *R = B.createIndirectCall(
      Ctx.getFunctionTy(Ctx.getInt32Ty(), {}), FP, {});
  B.createStore(R, K->getArg(0));
  B.createRetVoid();

  uint64_t Out = Dev.allocate(4);
  KernelStats S = launch(K, 1, 1, {Out});
  ASSERT_TRUE(S.ok()) << S.Trap;
  int32_t V = 0;
  Dev.memcpyFromDevice(&V, Out, 4);
  EXPECT_EQ(42, V);
  EXPECT_EQ(1u, S.IndirectCalls);
}

TEST_F(GPUSimTest, SharedGlobalIsPerBlock) {
  // Each block accumulates into its shared counter then writes it out;
  // blocks must not interfere.
  GlobalVariable *G =
      M.createGlobal(Ctx.getInt32Ty(), AddrSpace::Shared, "counter");
  Function *K = makeKernel("shared", {Ctx.getPtrTy()});
  IRBuilder B(Ctx);
  BasicBlock *E = K->createBlock("entry");
  BasicBlock *W = K->createBlock("writeback");
  BasicBlock *X = K->createBlock("exit");
  B.setInsertPoint(E);
  Value *GP = B.createAddrSpaceCast(G, AddrSpace::Generic);
  B.createAtomicRMW(AtomicRMWOp::Add, GP, B.getInt32(1));
  B.createCall(getOrCreateRTFn(M, RTFn::BarrierSimpleSPMD), {});
  Value *Tid = B.createCall(getOrCreateRTFn(M, RTFn::HardwareThreadId), {});
  B.createCondBr(B.createICmpEQ(Tid, B.getInt32(0)), W, X);
  B.setInsertPoint(W);
  Value *Blk = B.createCall(getOrCreateRTFn(M, RTFn::GetTeamNum), {});
  Value *V = B.createLoad(Ctx.getInt32Ty(), GP);
  B.createStore(V, B.createGEP(Ctx.getInt32Ty(), K->getArg(0), {Blk}));
  B.createBr(X);
  B.setInsertPoint(X);
  B.createRetVoid();

  uint64_t Out = Dev.allocate(3 * 4);
  KernelStats S = launch(K, 3, 16, {Out});
  ASSERT_TRUE(S.ok()) << S.Trap;
  std::vector<int32_t> H = Dev.downloadArray<int32_t>(Out, 3);
  EXPECT_EQ((std::vector<int32_t>{16, 16, 16}), H);
  EXPECT_GE(S.StaticSharedBytes, 4u);
}

TEST_F(GPUSimTest, OutOfBoundsGlobalLoadTraps) {
  Function *K = makeKernel("oob", {});
  IRBuilder B(Ctx);
  B.setInsertPoint(K->createBlock("entry"));
  Value *Bad = B.createCast(CastOp::IntToPtr,
                            B.getInt64((int64_t)makeSimAddr(
                                Seg::Global, 0xFFFFFFFF)),
                            Ctx.getPtrTy());
  B.createLoad(Ctx.getInt32Ty(), Bad);
  B.createRetVoid();
  KernelStats S = launch(K, 1, 1, {});
  EXPECT_FALSE(S.ok());
}

TEST_F(GPUSimTest, SampledBlocksExtrapolateWaves) {
  Function *K = makeKernel("waves", {Ctx.getPtrTy()});
  IRBuilder B(Ctx);
  B.setInsertPoint(K->createBlock("entry"));
  Value *Blk = B.createCall(getOrCreateRTFn(M, RTFn::GetTeamNum), {});
  B.createStore(Blk, B.createGEP(Ctx.getInt32Ty(), K->getArg(0), {Blk}));
  B.createRetVoid();

  uint64_t Out = Dev.allocate(4096 * 4);
  LaunchConfig LC;
  LC.GridDim = 4096;
  LC.BlockDim = 128;
  LC.MaxSimulatedBlocks = 4;
  NativeRuntimeBinding RTL =
      makeOpenMPRuntimeBinding(RuntimeFlavor::Modern, Dev.getMachine());
  KernelStats S = Dev.launchKernel(M, K, LC, {Out}, RTL);
  ASSERT_TRUE(S.ok()) << S.Trap;
  EXPECT_EQ(4u, S.SimulatedBlocks);
  EXPECT_GT(S.Waves, 1u);
  EXPECT_GT(S.ConcurrentBlocks, 0u);
}

TEST_F(GPUSimTest, RegisterEstimateReflectsABIOverhead) {
  // A kernel in a module that uses the OpenMP runtime carries the ABI
  // register overhead; a plain kernel does not.
  Function *Plain = makeKernel("plain", {});
  IRBuilder B(Ctx);
  B.setInsertPoint(Plain->createBlock("entry"));
  B.createRetVoid();
  KernelResources R1 =
      estimateKernelResources(M, Plain, Dev.getMachine());

  // Reference target_init so the module counts as an OpenMP image.
  Function *K2 = makeKernel("omp", {});
  B.setInsertPoint(K2->createBlock("entry"));
  B.createCall(getOrCreateRTFn(M, RTFn::TargetInit),
               {B.getInt32(OMP_TGT_EXEC_MODE_SPMD), B.getInt1(false)});
  B.createRetVoid();
  linkDeviceRTL(M);
  KernelResources R2 = estimateKernelResources(M, K2, Dev.getMachine());
  EXPECT_GT(R2.RegsPerThread, R1.RegsPerThread);
}

TEST_F(GPUSimTest, OccupancyLimitedByRegisters) {
  MachineModel MM;
  KernelResources Low, High;
  Low.RegsPerThread = 32;
  High.RegsPerThread = 255;
  unsigned BlocksLow = computeBlocksPerSM(MM, Low, 128, 0);
  unsigned BlocksHigh = computeBlocksPerSM(MM, High, 128, 0);
  EXPECT_GT(BlocksLow, BlocksHigh);
  EXPECT_GE(BlocksHigh, 1u);
}

} // namespace
