//===- tests/TestLint.cpp - OMPLint checker unit tests ----------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
//
// Positive and negative cases for each OMPLint checker category, built on
// hand-written device IR:
//
//   OMP200 barrier-divergence   - barrier under a divergent branch vs. a
//                                 barrier at the reconvergence point
//   OMP201 shared-race          - divergent write to a shared global vs.
//                                 per-thread slices and uniform init
//   OMP202 alloc-free pairing   - leak, API mismatch, size mismatch,
//                                 not-freed-on-every-path vs. a matched pair
//   OMP203 use-after-free       - access after free and double free
//   OMP204 guard-protocol       - malformed Fig. 7 guard and a uniform side
//                                 effect outside a guard vs. a well-formed one
//
//===----------------------------------------------------------------------===//

#include "analysis/OMPLint.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <gtest/gtest.h>

using namespace ompgpu;

namespace {

class LintTest : public ::testing::Test {
protected:
  IRContext Ctx;
  Module M{Ctx, "lint"};
  IRBuilder B{Ctx};

  Function *declareRT(const char *Name, Type *Ret, std::vector<Type *> Ps) {
    return M.getOrInsertFunction(Name, Ctx.getFunctionTy(Ret, std::move(Ps)));
  }
  Function *barrierFn() {
    return declareRT("__kmpc_barrier_simple_spmd", Ctx.getVoidTy(), {});
  }
  Function *tidFn() {
    return declareRT("__kmpc_get_hardware_thread_id_in_block",
                     Ctx.getInt32Ty(), {});
  }
  Function *allocFn() {
    return declareRT("__kmpc_alloc_shared", Ctx.getPtrTy(),
                     {Ctx.getInt64Ty()});
  }
  Function *freeFn() {
    return declareRT("__kmpc_free_shared", Ctx.getVoidTy(),
                     {Ctx.getPtrTy(), Ctx.getInt64Ty()});
  }
  Function *popStackFn() {
    return declareRT("__kmpc_data_sharing_pop_stack", Ctx.getVoidTy(),
                     {Ctx.getPtrTy()});
  }

  Function *makeSPMDKernel(const std::string &Name) {
    Function *K =
        M.createFunction(Name, Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
    K->setKernel();
    K->getKernelEnvironment().Mode = ExecMode::SPMD;
    return K;
  }

  /// SPMD kernel with one pointer parameter 'buf' carrying an explicit
  /// map clause of kind \p Declared; the body reads and/or writes through
  /// it as requested (for the OMP242-244 checkers).
  Function *makeMappedKernel(const std::string &Name, MapKind Declared,
                             bool Read, bool Write) {
    Function *K = M.createFunction(
        Name, Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}));
    K->setKernel();
    K->getKernelEnvironment().Mode = ExecMode::SPMD;
    K->getArg(0)->setName("buf");
    ParamMapping &PM = kernelParamMappingRef(K->getKernelEnvironment(), 0);
    PM.Declared = Declared;
    PM.DeclaredExplicit = true;
    B.setInsertPoint(K->createBlock("entry"));
    if (Read)
      B.createLoad(Ctx.getDoubleTy(), K->getArg(0), "v");
    if (Write)
      B.createStore(B.getDouble(1.0), K->getArg(0));
    B.createRetVoid();
    return K;
  }

  static std::vector<LintFinding> ofKind(const LintResult &R, LintKind K) {
    std::vector<LintFinding> Out;
    for (const LintFinding &F : R.Findings)
      if (F.Kind == K)
        Out.push_back(F);
    return Out;
  }

  /// entry(tid, icmp slt tid 16, condbr) -> {then -> join, join(ret)} with
  /// the barrier either inside the divergent 'then' arm or at the 'join'
  /// reconvergence point.
  void buildDivergentBarrier(bool BarrierAtJoin) {
    Function *F =
        M.createFunction("f", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
    BasicBlock *E = F->createBlock("entry");
    BasicBlock *T = F->createBlock("then");
    BasicBlock *J = F->createBlock("join");
    B.setInsertPoint(E);
    Value *Tid = B.createCall(tidFn(), {}, "tid");
    Value *C = B.createICmpSLT(Tid, B.getInt32(16), "low");
    B.createCondBr(C, T, J);
    B.setInsertPoint(T);
    if (!BarrierAtJoin)
      B.createCall(barrierFn(), {});
    B.createBr(J);
    B.setInsertPoint(J);
    if (BarrierAtJoin)
      B.createCall(barrierFn(), {});
    B.createRetVoid();
  }

  /// SPMD kernel with the Fig. 7 guard shape. \p JoinBarrier toggles the
  /// join block's leading barrier (off = malformed guard); a non-null
  /// \p OutsideStoreTo adds a uniform store after the join barrier, i.e.
  /// outside the guarded region.
  Function *buildGuardKernel(const std::string &Name, GlobalVariable *G,
                             bool JoinBarrier,
                             GlobalVariable *OutsideStoreTo = nullptr) {
    Function *K = makeSPMDKernel(Name);
    BasicBlock *E = K->createBlock("entry");
    BasicBlock *GB = K->createBlock("region.guarded");
    BasicBlock *J = K->createBlock("region.barrier");
    B.setInsertPoint(E);
    B.createCall(barrierFn(), {});
    Value *Tid = B.createCall(tidFn(), {}, "tid");
    Value *IsMain = B.createICmpEQ(Tid, B.getInt32(0), "is_main");
    B.createCondBr(IsMain, GB, J);
    B.setInsertPoint(GB);
    B.createStore(B.getInt32(7), G);
    B.createBr(J);
    B.setInsertPoint(J);
    if (JoinBarrier)
      B.createCall(barrierFn(), {});
    if (OutsideStoreTo)
      B.createStore(B.getInt32(9), OutsideStoreTo);
    B.createRetVoid();
    return K;
  }
};

//===----------------------------------------------------------------------===//
// OMP200: barrier divergence
//===----------------------------------------------------------------------===//

TEST_F(LintTest, BarrierInsideDivergentBranchFlagged) {
  buildDivergentBarrier(/*BarrierAtJoin=*/false);
  LintResult R = runOMPLint(M);
  std::vector<LintFinding> F = ofKind(R, LintKind::BarrierDivergence);
  ASSERT_EQ(1u, F.size());
  EXPECT_EQ("f", F[0].FunctionName);
  EXPECT_NE(std::string::npos, F[0].Message.find("divergent region"));
  EXPECT_FALSE(F[0].Witness.empty());
  EXPECT_NE(std::string::npos, F[0].str().find("OMP200 in 'f'"));
}

TEST_F(LintTest, BarrierAtReconvergencePointClean) {
  // Every thread reaches 'join' regardless of the divergent branch: the
  // barrier post-dominates it.
  buildDivergentBarrier(/*BarrierAtJoin=*/true);
  LintResult R = runOMPLint(M);
  EXPECT_TRUE(R.clean()) << R.summary();
}

TEST_F(LintTest, BarrierDivergenceCheckCanBeDisabled) {
  buildDivergentBarrier(/*BarrierAtJoin=*/false);
  LintOptions Opts;
  Opts.CheckBarrierDivergence = false;
  EXPECT_TRUE(runOMPLint(M, Opts).clean());
  EXPECT_FALSE(runOMPLint(M).clean());
}

//===----------------------------------------------------------------------===//
// OMP201: shared-memory races
//===----------------------------------------------------------------------===//

TEST_F(LintTest, DivergentWriteToSharedGlobalFlagged) {
  GlobalVariable *G =
      M.createGlobal(Ctx.getInt32Ty(), AddrSpace::Shared, "g");
  Function *F = M.createFunction("f", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  B.setInsertPoint(F->createBlock("entry"));
  Value *Tid = B.createCall(tidFn(), {}, "tid");
  B.createStore(Tid, G); // every thread writes its own tid to one slot
  B.createRetVoid();

  LintResult R = runOMPLint(M);
  std::vector<LintFinding> Races = ofKind(R, LintKind::SharedRace);
  ASSERT_EQ(1u, Races.size());
  EXPECT_EQ("g", Races[0].Object);
  EXPECT_NE(std::string::npos,
            Races[0].Message.find("unsynchronized write to shared object"));
}

TEST_F(LintTest, PerThreadSlicesAndUniformInitClean) {
  // A tid-strided slot per thread (disjoint writes) and a uniform value
  // written by every thread to one slot (redundant but benign).
  GlobalVariable *Buf = M.createGlobal(
      Ctx.getArrayTy(Ctx.getInt32Ty(), 64), AddrSpace::Shared, "buf");
  GlobalVariable *Flag =
      M.createGlobal(Ctx.getInt32Ty(), AddrSpace::Shared, "flag");
  Function *F = M.createFunction("f", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  B.setInsertPoint(F->createBlock("entry"));
  Value *Tid = B.createCall(tidFn(), {}, "tid");
  Value *Slot = B.createGEP(Ctx.getInt32Ty(), Buf, {Tid}, "slot");
  B.createStore(Tid, Slot);         // stride 4 >= 4 bytes: disjoint
  B.createStore(B.getInt32(1), Flag); // uniform value, uniform address
  B.createRetVoid();

  LintResult R = runOMPLint(M);
  EXPECT_TRUE(R.clean()) << R.summary();
}

//===----------------------------------------------------------------------===//
// OMP202: globalization alloc/free pairing
//===----------------------------------------------------------------------===//

TEST_F(LintTest, SharedAllocationNeverFreedFlagged) {
  Function *F = M.createFunction("f", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  B.setInsertPoint(F->createBlock("entry"));
  Value *P = B.createCall(allocFn(), {B.getInt64(8)}, "frame");
  B.createStore(B.getDouble(1.0), P);
  B.createRetVoid();

  LintResult R = runOMPLint(M);
  std::vector<LintFinding> F202 = ofKind(R, LintKind::AllocFreePairing);
  ASSERT_EQ(1u, F202.size());
  EXPECT_EQ("frame", F202[0].Object);
  EXPECT_NE(std::string::npos, F202[0].Message.find("is never freed"));
}

TEST_F(LintTest, AllocFreeAPIMismatchFlagged) {
  Function *F = M.createFunction("f", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  B.setInsertPoint(F->createBlock("entry"));
  Value *P = B.createCall(allocFn(), {B.getInt64(8)}, "frame");
  B.createCall(popStackFn(), {P}); // wrong deallocator for alloc_shared
  B.createRetVoid();

  LintResult R = runOMPLint(M);
  std::vector<LintFinding> F202 = ofKind(R, LintKind::AllocFreePairing);
  ASSERT_EQ(1u, F202.size());
  EXPECT_NE(std::string::npos,
            F202[0].Message.find("alloc/free APIs must pair"));
}

TEST_F(LintTest, AllocFreeSizeMismatchFlagged) {
  Function *F = M.createFunction("f", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  B.setInsertPoint(F->createBlock("entry"));
  Value *P = B.createCall(allocFn(), {B.getInt64(8)}, "frame");
  B.createCall(freeFn(), {P, B.getInt64(16)});
  B.createRetVoid();

  LintResult R = runOMPLint(M);
  std::vector<LintFinding> F202 = ofKind(R, LintKind::AllocFreePairing);
  ASSERT_EQ(1u, F202.size());
  EXPECT_NE(std::string::npos, F202[0].Message.find("allocates 8 bytes"));
  EXPECT_NE(std::string::npos, F202[0].Message.find("releases 16 bytes"));
}

TEST_F(LintTest, AllocNotFreedOnEveryPathFlagged) {
  Function *F = M.createFunction(
      "f", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getInt1Ty()}));
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *DoFree = F->createBlock("do_free");
  BasicBlock *X = F->createBlock("exit");
  B.setInsertPoint(E);
  Value *P = B.createCall(allocFn(), {B.getInt64(8)}, "frame");
  B.createCondBr(F->getArg(0), DoFree, X); // the false edge leaks
  B.setInsertPoint(DoFree);
  B.createCall(freeFn(), {P, B.getInt64(8)});
  B.createBr(X);
  B.setInsertPoint(X);
  B.createRetVoid();

  LintResult R = runOMPLint(M);
  std::vector<LintFinding> F202 = ofKind(R, LintKind::AllocFreePairing);
  ASSERT_EQ(1u, F202.size());
  EXPECT_NE(std::string::npos,
            F202[0].Message.find("not freed on every path"));
}

TEST_F(LintTest, MatchedAllocFreeClean) {
  Function *F = M.createFunction("f", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  B.setInsertPoint(F->createBlock("entry"));
  Value *P = B.createCall(allocFn(), {B.getInt64(8)}, "frame");
  B.createStore(B.getDouble(1.0), P);
  B.createCall(freeFn(), {P, B.getInt64(8)});
  B.createRetVoid();

  LintResult R = runOMPLint(M);
  EXPECT_TRUE(R.clean()) << R.summary();
}

//===----------------------------------------------------------------------===//
// OMP203: use-after-free / double free
//===----------------------------------------------------------------------===//

TEST_F(LintTest, UseAfterFreeFlagged) {
  Function *F = M.createFunction("f", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  B.setInsertPoint(F->createBlock("entry"));
  Value *P = B.createCall(allocFn(), {B.getInt64(8)}, "frame");
  B.createCall(freeFn(), {P, B.getInt64(8)});
  B.createLoad(Ctx.getDoubleTy(), P, "stale");
  B.createRetVoid();

  LintResult R = runOMPLint(M);
  std::vector<LintFinding> F203 = ofKind(R, LintKind::UseAfterFree);
  ASSERT_EQ(1u, F203.size());
  EXPECT_NE(std::string::npos,
            F203[0].Message.find("after being freed"));
}

TEST_F(LintTest, DoubleFreeFlagged) {
  Function *F = M.createFunction("f", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  B.setInsertPoint(F->createBlock("entry"));
  Value *P = B.createCall(allocFn(), {B.getInt64(8)}, "frame");
  B.createCall(freeFn(), {P, B.getInt64(8)});
  B.createCall(freeFn(), {P, B.getInt64(8)});
  B.createRetVoid();

  LintResult R = runOMPLint(M);
  std::vector<LintFinding> F203 = ofKind(R, LintKind::UseAfterFree);
  ASSERT_EQ(1u, F203.size());
  EXPECT_NE(std::string::npos, F203[0].Message.find("freed twice"));
}

//===----------------------------------------------------------------------===//
// OMP204: SPMD guard protocol
//===----------------------------------------------------------------------===//

TEST_F(LintTest, MalformedGuardMissingJoinBarrierFlagged) {
  GlobalVariable *G =
      M.createGlobal(Ctx.getInt32Ty(), AddrSpace::Shared, "state");
  buildGuardKernel("k", G, /*JoinBarrier=*/false);

  LintResult R = runOMPLint(M);
  std::vector<LintFinding> F204 = ofKind(R, LintKind::GuardProtocol);
  ASSERT_EQ(1u, F204.size());
  EXPECT_NE(std::string::npos,
            F204[0].Message.find("violates the Fig. 7 barrier protocol"));
  EXPECT_NE(std::string::npos,
            F204[0].Message.find(
                "join block does not begin with a team barrier"));
}

TEST_F(LintTest, UniformStoreOutsideGuardFlagged) {
  GlobalVariable *G =
      M.createGlobal(Ctx.getInt32Ty(), AddrSpace::Shared, "state");
  buildGuardKernel("k", G, /*JoinBarrier=*/true, /*OutsideStoreTo=*/G);

  LintResult R = runOMPLint(M);
  std::vector<LintFinding> F204 = ofKind(R, LintKind::GuardProtocol);
  ASSERT_EQ(1u, F204.size());
  EXPECT_NE(std::string::npos,
            F204[0].Message.find("outside a main-thread guard"));
}

TEST_F(LintTest, WellFormedGuardClean) {
  GlobalVariable *G =
      M.createGlobal(Ctx.getInt32Ty(), AddrSpace::Shared, "state");
  buildGuardKernel("k", G, /*JoinBarrier=*/true);

  LintResult R = runOMPLint(M);
  EXPECT_TRUE(R.clean()) << R.summary();
}

//===----------------------------------------------------------------------===//
// OMP242-244: data-mapping staleness and redundancy
//===----------------------------------------------------------------------===//

TEST_F(LintTest, StaleHostReadFlagged) {
  // map(from: in) on a parameter the kernel reads first: host data never
  // reaches the device (OMP242). The wrong direction also makes the copy
  // back redundant in spirit, but only the staleness is certain.
  Function *K = makeMappedKernel("k", MapKind::From, /*Read=*/true,
                                 /*Write=*/false);
  LintResult R = runOMPLint(M);
  std::vector<LintFinding> F = ofKind(R, LintKind::StaleHostRead);
  ASSERT_EQ(1u, F.size()) << R.summary();
  EXPECT_EQ(K->getName(), F[0].FunctionName);
  EXPECT_NE(std::string::npos, F[0].Message.find("map(from: buf)"));
}

TEST_F(LintTest, StaleDeviceReadFlagged) {
  // map(to: out) on a parameter the kernel writes: the host never sees the
  // device results (OMP243).
  makeMappedKernel("k", MapKind::To, /*Read=*/false, /*Write=*/true);
  LintResult R = runOMPLint(M);
  ASSERT_EQ(1u, ofKind(R, LintKind::StaleDeviceRead).size()) << R.summary();
}

TEST_F(LintTest, RedundantRoundTripFlagged) {
  // map(tofrom:) on a read-only parameter: the copy back is wasted
  // bandwidth (OMP244), but both directions are transfer-correct, so the
  // staleness checkers must stay silent.
  makeMappedKernel("k", MapKind::ToFrom, /*Read=*/true, /*Write=*/false);
  LintResult R = runOMPLint(M);
  ASSERT_EQ(1u, ofKind(R, LintKind::RedundantRoundTrip).size())
      << R.summary();
  EXPECT_TRUE(ofKind(R, LintKind::StaleHostRead).empty());
  EXPECT_TRUE(ofKind(R, LintKind::StaleDeviceRead).empty());
}

TEST_F(LintTest, MatchingExplicitMappingClean) {
  makeMappedKernel("k", MapKind::To, /*Read=*/true, /*Write=*/false);
  LintResult R = runOMPLint(M);
  EXPECT_TRUE(R.clean()) << R.summary();
}

TEST_F(LintTest, ImplicitDefaultMappingIsNotChecked) {
  // Without an explicit clause or an inference run there is nothing to
  // second-guess: the implicit tofrom default is always transfer-correct,
  // and flagging it would drown users in false positives.
  Function *K = M.createFunction(
      "k", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}));
  K->setKernel();
  K->getKernelEnvironment().Mode = ExecMode::SPMD;
  B.setInsertPoint(K->createBlock("entry"));
  B.createLoad(Ctx.getDoubleTy(), K->getArg(0), "v");
  B.createRetVoid();
  LintResult R = runOMPLint(M);
  EXPECT_TRUE(R.clean()) << R.summary();
}

TEST_F(LintTest, DataMappingCheckCanBeDisabled) {
  makeMappedKernel("k", MapKind::From, /*Read=*/true, /*Write=*/false);
  LintOptions O;
  O.CheckDataMapping = false;
  EXPECT_TRUE(runOMPLint(M, O).clean());
}

//===----------------------------------------------------------------------===//
// Finding metadata
//===----------------------------------------------------------------------===//

TEST_F(LintTest, KindNamesAndRemarkNumbers) {
  EXPECT_EQ(200u, lintRemarkNumber(LintKind::BarrierDivergence));
  EXPECT_EQ(201u, lintRemarkNumber(LintKind::SharedRace));
  EXPECT_EQ(202u, lintRemarkNumber(LintKind::AllocFreePairing));
  EXPECT_EQ(203u, lintRemarkNumber(LintKind::UseAfterFree));
  EXPECT_EQ(204u, lintRemarkNumber(LintKind::GuardProtocol));
  EXPECT_EQ(242u, lintRemarkNumber(LintKind::StaleHostRead));
  EXPECT_EQ(243u, lintRemarkNumber(LintKind::StaleDeviceRead));
  EXPECT_EQ(244u, lintRemarkNumber(LintKind::RedundantRoundTrip));
  EXPECT_STREQ("barrier-divergence",
               lintKindName(LintKind::BarrierDivergence));
  EXPECT_STREQ("shared-race", lintKindName(LintKind::SharedRace));
  EXPECT_STREQ("alloc-free-pairing",
               lintKindName(LintKind::AllocFreePairing));
  EXPECT_STREQ("use-after-free", lintKindName(LintKind::UseAfterFree));
  EXPECT_STREQ("guard-protocol", lintKindName(LintKind::GuardProtocol));
  EXPECT_STREQ("stale-host-read", lintKindName(LintKind::StaleHostRead));
  EXPECT_STREQ("stale-device-read",
               lintKindName(LintKind::StaleDeviceRead));
  EXPECT_STREQ("redundant-round-trip",
               lintKindName(LintKind::RedundantRoundTrip));
}

TEST_F(LintTest, SummaryJoinsFindings) {
  LintResult R;
  LintFinding A;
  A.Kind = LintKind::SharedRace;
  A.FunctionName = "k";
  A.Message = "first";
  LintFinding Bf;
  Bf.Kind = LintKind::UseAfterFree;
  Bf.FunctionName = "k";
  Bf.Message = "second";
  R.Findings = {A, Bf};
  EXPECT_FALSE(R.clean());
  EXPECT_EQ("OMP201 in 'k': first; OMP203 in 'k': second", R.summary());
}

} // namespace
