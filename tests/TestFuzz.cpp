//===- tests/TestFuzz.cpp - Differential fuzzing subsystem tests -----------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the differential fuzzing subsystem (docs/fuzzing.md): seeded
/// generator determinism, recipe JSON round-trips, golden-file checks of
/// the generated IR, harness determinism, the cross-preset oracle on clean
/// and sabotaged pipelines, automatic reduction of failing modules, and
/// opt-bisect attribution of an injected miscompile. FuzzSlow.* holds the
/// campaign-scale cases and is labeled fuzz-smoke/slow instead of tier1.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/KernelGenerator.h"
#include "fuzz/Oracle.h"
#include "fuzz/Reduce.h"
#include "ir/AsmWriter.h"
#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/IRContext.h"
#include "ir/Instruction.h"
#include "ir/Module.h"
#include "ir/Type.h"
#include "ir/Verifier.h"
#include "support/Casting.h"
#include "transforms/Cloning.h"
#include "workloads/Harness.h"

#include <gtest/gtest.h>

using namespace ompgpu;

namespace {

/// Emits \p R's kernel into a fresh module under \p Scheme.
struct GeneratedModule {
  IRContext Ctx;
  Module M{Ctx, "fuzz"};
  explicit GeneratedModule(const KernelRecipe &R,
                           CodeGenScheme Scheme = CodeGenScheme::Simplified13) {
    OMPCodeGen CG(M, CodeGenOptions{Scheme, /*CudaMode=*/false});
    generateKernel(CG, R);
  }
};

/// A hand-built recipe with a known-rich kernel: SPMD combined loop with an
/// escaping team local and a guarded live-out value.
static KernelRecipe testRecipe() {
  KernelRecipe R;
  R.Seed = 12345;
  R.SPMD = true;
  R.NumTeams = 2;
  R.NumThreads = 32;
  R.TripCount = 16;
  R.RegionShape = KernelRecipe::Shape::Combined;
  R.NumRegions = 1;
  R.NumChunks = 1;
  R.EscapingTeamLocal = true;
  R.GuardedSideEffect = true;
  R.ExprOps = 2;
  R.ExprSeed = 7;
  return R;
}

/// The behavioral sabotage pass: deletes every floating-point store in the
/// module. Passes the verifier (stores have no uses) but changes observable
/// outputs — exactly the class of miscompile the differential oracle, the
/// reducer, and bisection must catch.
static bool dropDoubleStores(Module &M) {
  bool Changed = false;
  for (Function *F : M.functions())
    for (BasicBlock *BB : F->getBlocks())
      for (Instruction *I : BB->getInstructions()) {
        auto *St = dyn_cast<StoreInst>(I);
        if (St && St->getAccessType()->isFloatingPointTy()) {
          St->eraseFromParent();
          Changed = true;
        }
      }
  return Changed;
}

/// The IR-corrupting sabotage pass (TestRecovery style): an empty block
/// violates the "block lacks a terminator" verifier rule.
static bool corruptKernel(Module &M) {
  M.kernels().front()->createBlock("orphan");
  return true;
}

static PipelineOptions::ExtraPass dropStoresPass() {
  return {"drop-stores", dropDoubleStores};
}

/// The race sabotage pass (OMPLint satellite): hoists a store out of a
/// "region.guarded" main-thread guard into the guard's dispatch block,
/// above the leading barrier. Every thread then performs the store, but the
/// stored value is uniform, so outputs stay bit-identical under the
/// simulator's deterministic schedule — the differential comparisons cannot
/// see the bug. On real hardware it is a race, and it violates the Fig. 7
/// guard protocol the linter enforces (OMP204).
static bool hoistGuardedStore(Module &M) {
  for (Function *F : M.functions())
    for (BasicBlock *BB : F->getBlocks()) {
      if (BB->getName().rfind("region.guarded", 0) != 0)
        continue;
      for (Instruction *I : BB->getInstructions()) {
        auto *St = dyn_cast<StoreInst>(I);
        if (!St)
          continue;
        // Hoisting is only dominance-safe when both operands are defined
        // outside the guarded block (the broadcast stores are not).
        auto DefinedHere = [&](Value *V) {
          auto *DI = dyn_cast<Instruction>(V);
          return DI && DI->getParent() == BB;
        };
        if (DefinedHere(St->getValueOperand()) ||
            DefinedHere(St->getPointerOperand()))
          continue;
        // The dispatch block runs a barrier just before the thread-id
        // check; re-inserting the store above that barrier keeps the guard
        // itself well-formed, so only the escaped store is wrong.
        for (BasicBlock *Pred : BB->predecessors()) {
          Instruction *Barrier = nullptr;
          for (Instruction *PI : *Pred) {
            auto *C = dyn_cast<CallInst>(PI);
            if (C && C->getCalledFunction() &&
                C->getCalledFunction()->getName() ==
                    "__kmpc_barrier_simple_spmd")
              Barrier = C;
          }
          if (!Barrier)
            continue;
          Pred->insertBefore(BB->remove(St).release(), Barrier);
          return true;
        }
      }
    }
  return false;
}

/// Generic-mode recipe whose escaping team local becomes an H2S shared
/// global initialized inside an SPMDzation guard under the dev preset —
/// the shape hoistGuardedStore sabotages.
static KernelRecipe guardedRecipe() {
  KernelRecipe R;
  R.Seed = 4242;
  R.SPMD = false;
  R.NumTeams = 2;
  R.NumThreads = 64;
  R.TripCount = 16;
  R.RegionShape = KernelRecipe::Shape::Combined;
  R.NumRegions = 1;
  R.NumChunks = 1;
  R.EscapingTeamLocal = true;
  R.ExprOps = 2;
  R.ExprSeed = 7;
  return R;
}

//===----------------------------------------------------------------------===//
// Generator determinism and recipe serialization
//===----------------------------------------------------------------------===//

TEST(FuzzGenerator, ByteIdenticalAcrossContexts) {
  for (uint64_t Seed : {1, 2, 5, 7, 9, 13}) {
    KernelRecipe R = KernelRecipe::sample(Seed);
    for (CodeGenScheme Scheme :
         {CodeGenScheme::Simplified13, CodeGenScheme::Legacy12}) {
      GeneratedModule A(R, Scheme), B(R, Scheme);
      EXPECT_EQ(moduleToString(A.M), moduleToString(B.M))
          << "seed " << Seed << " is not deterministic";
    }
  }
}

TEST(FuzzGenerator, SampledModulesAreVerifierClean) {
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    KernelRecipe R = KernelRecipe::sample(Seed);
    for (CodeGenScheme Scheme :
         {CodeGenScheme::Simplified13, CodeGenScheme::Legacy12}) {
      GeneratedModule G(R, Scheme);
      std::string Err;
      EXPECT_FALSE(verifyModule(G.M, &Err))
          << "seed " << Seed << ": " << Err;
    }
  }
}

TEST(FuzzGenerator, RecipeJSONRoundTrip) {
  for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
    KernelRecipe R = KernelRecipe::sample(Seed);
    std::string Text = R.toJSON().str();
    json::Value V;
    std::string Err;
    ASSERT_TRUE(json::parse(Text, V, &Err)) << Err;
    Expected<KernelRecipe> Back = KernelRecipe::fromJSON(V);
    ASSERT_TRUE(static_cast<bool>(Back)) << Back.message();
    EXPECT_EQ(Back->toJSON().str(), Text) << "seed " << Seed;
    EXPECT_EQ(Back->summary(), R.summary());
  }
}

TEST(FuzzGenerator, FromJSONRejectsInconsistentSizes) {
  KernelRecipe R = testRecipe();
  R.RegionShape = KernelRecipe::Shape::DistributeInner;
  R.NumChunks = 3; // TripCount 16 does not divide into 3 chunks.
  Expected<KernelRecipe> Back = KernelRecipe::fromJSON(R.toJSON());
  EXPECT_FALSE(static_cast<bool>(Back));
}

TEST(FuzzGenerator, SampleCoversHazardSpace) {
  bool SawSPMD = false, SawGeneric = false;
  bool SawEsc = false, SawPriv = false, SawWL = false, SawGuard = false;
  bool SawNested = false, SawIndirect = false;
  bool Shapes[3] = {false, false, false};
  for (uint64_t Seed = 1; Seed <= 300; ++Seed) {
    KernelRecipe R = KernelRecipe::sample(Seed);
    (R.SPMD ? SawSPMD : SawGeneric) = true;
    SawEsc |= R.EscapingTeamLocal;
    SawPriv |= R.NonEscapingTeamLocal;
    SawWL |= R.WorkerLocal;
    SawGuard |= R.GuardedSideEffect;
    SawNested |= R.NestedParallel;
    SawIndirect |= R.IndirectParallelCall;
    Shapes[(int)R.RegionShape] = true;
  }
  EXPECT_TRUE(SawSPMD && SawGeneric);
  EXPECT_TRUE(SawEsc && SawPriv && SawWL && SawGuard);
  EXPECT_TRUE(SawNested && SawIndirect);
  EXPECT_TRUE(Shapes[0] && Shapes[1] && Shapes[2]);
}

TEST(FuzzGenerator, HostModelMatchesReferenceRun) {
  for (uint64_t Seed : {1, 2, 7, 9, 23}) {
    KernelRecipe R = KernelRecipe::sample(Seed);
    PipelineOptions P = referenceFuzzPipeline(makeDevPipeline());
    GeneratedModule G(R, P.Scheme);
    ASSERT_FALSE(optimizeDeviceModule(G.M, P).VerifyFailed);
    FuzzRunOutcome Run = runGeneratedKernel(G.M, "fuzz_kernel", R, P);
    ASSERT_TRUE(Run.Stats.ok()) << "seed " << Seed << ": " << Run.Stats.Trap;
    std::vector<double> Host = expectedOutputs(R, makeInputs(R));
    OutputComparison C = compareOutputs(Host, Run.Out, /*RelTol=*/0.0);
    EXPECT_TRUE(C.Match) << "seed " << Seed << ": " << C.message();
  }
}

//===----------------------------------------------------------------------===//
// Golden files: the generator's IR as written by the AsmWriter
//===----------------------------------------------------------------------===//

/// Reconstructs the text `bench/fuzz -fuzz-print-module=<seed>` emits; the
/// golden files were produced with exactly that command (see
/// docs/fuzzing.md for the regeneration recipe).
static std::string printedModule(uint64_t Seed, CodeGenScheme Scheme) {
  KernelRecipe R = KernelRecipe::sample(Seed);
  GeneratedModule G(R, Scheme);
  return "; recipe: " + R.summary() + "\n" + moduleToString(G.M);
}

TEST(FuzzGolden, GeneratedModulesMatchGoldenFiles) {
  for (uint64_t Seed : {2, 5, 7, 9}) {
    for (CodeGenScheme Scheme :
         {CodeGenScheme::Simplified13, CodeGenScheme::Legacy12}) {
      std::string Name =
          "fuzz-seed" + std::to_string(Seed) +
          (Scheme == CodeGenScheme::Legacy12 ? "-legacy12" : "-simplified13") +
          ".ll";
      Expected<std::string> Golden =
          readTextFile(std::string(OMPGPU_TEST_GOLDEN_DIR) + "/" + Name);
      ASSERT_TRUE(static_cast<bool>(Golden)) << Golden.message();
      EXPECT_EQ(*Golden, printedModule(Seed, Scheme))
          << Name << " is stale; regenerate with "
          << "./build/bench/fuzz -fuzz-print-module=" << Seed
          << " -fuzz-print-scheme="
          << (Scheme == CodeGenScheme::Legacy12 ? "legacy12" : "simplified13")
          << " > tests/golden/" << Name;
    }
  }
}

TEST(FuzzGolden, CloneRoundTripsThroughAsmWriter) {
  for (uint64_t Seed : {2, 7}) {
    KernelRecipe R = KernelRecipe::sample(Seed);
    GeneratedModule G(R);
    std::unique_ptr<Module> Clone = cloneModule(G.M);
    EXPECT_EQ(moduleToString(G.M), moduleToString(*Clone));
    EXPECT_EQ(hashModule(G.M), hashModule(*Clone));
  }
}

//===----------------------------------------------------------------------===//
// Harness determinism (same workload + config + seed => identical results)
//===----------------------------------------------------------------------===//

TEST(HarnessDeterminism, ByteIdenticalStatsAndPassSequences) {
  auto RunOnce = [] {
    std::unique_ptr<Workload> W = createXSBench(ProblemSize::Small);
    PipelineOptions P = makeDevPipeline();
    P.Instrument.TrackChanges = true; // populate the pass records
    return runWorkload(*W, P);
  };
  WorkloadRunResult A = RunOnce();
  WorkloadRunResult B = RunOnce();

  ASSERT_TRUE(A.Stats.ok()) << A.Stats.Trap;
  ASSERT_TRUE(A.Checked && A.Correct);

  // KernelStats must agree exactly, counter for counter.
  std::vector<std::pair<std::string, uint64_t>> CA, CB;
  A.Stats.forEachCounter([&](const char *N, uint64_t V) { CA.push_back({N, V}); });
  B.Stats.forEachCounter([&](const char *N, uint64_t V) { CB.push_back({N, V}); });
  EXPECT_EQ(CA, CB);
  EXPECT_EQ(A.Stats.Milliseconds, B.Stats.Milliseconds);
  EXPECT_EQ(A.Stats.RegsPerThread, B.Stats.RegsPerThread);
  EXPECT_EQ(A.Stats.StaticSharedBytes, B.Stats.StaticSharedBytes);
  EXPECT_EQ(A.Stats.DynamicSharedBytes, B.Stats.DynamicSharedBytes);
  EXPECT_EQ(A.Stats.SimulatedBlocks, B.Stats.SimulatedBlocks);
  EXPECT_EQ(A.Correct, B.Correct);

  // The compile-report pass sequence must replay identically (wall times
  // excepted — they are the one nondeterministic field).
  ASSERT_EQ(A.Compile.Passes.size(), B.Compile.Passes.size());
  for (size_t I = 0; I != A.Compile.Passes.size(); ++I) {
    const PassExecution &PA = A.Compile.Passes[I];
    const PassExecution &PB = B.Compile.Passes[I];
    EXPECT_EQ(PA.Name, PB.Name) << "pass " << I;
    EXPECT_EQ(PA.Invocation, PB.Invocation) << "pass " << I;
    EXPECT_EQ(PA.BisectIndex, PB.BisectIndex) << "pass " << I;
    EXPECT_EQ(PA.ReportedChange, PB.ReportedChange) << "pass " << I;
    EXPECT_EQ(PA.IRChanged, PB.IRChanged) << "pass " << I;
  }
}

//===----------------------------------------------------------------------===//
// Cross-preset oracle
//===----------------------------------------------------------------------===//

TEST(FuzzOracle, CleanPipelinePassesAllPresets) {
  for (uint64_t Seed : {1, 2, 7, 9}) {
    FuzzVerdict V = runFuzzOracle(KernelRecipe::sample(Seed));
    EXPECT_TRUE(V.OK) << "seed " << Seed << ": preset '" << V.FailingPreset
                      << "': " << V.Reason;
    EXPECT_EQ(V.Presets.size(), defaultFuzzPresets().size());
    EXPECT_TRUE(V.Remarks.remarks().empty());
  }
}

TEST(FuzzOracle, VerifierCorruptionIsCaughtAndNamed) {
  FuzzOracleOptions O;
  O.ExtraPasses.push_back({"corrupt-kernel", corruptKernel});
  FuzzVerdict V = runFuzzOracle(testRecipe(), O);
  ASSERT_FALSE(V.OK);
  EXPECT_NE(V.Reason.find("corrupt-kernel"), std::string::npos) << V.Reason;
  // Every preset runs the injected pass, so every preset fails and emits
  // an OMP190 remark.
  ASSERT_EQ(V.Remarks.size(), V.Presets.size());
  for (const Remark &R : V.Remarks.remarks()) {
    EXPECT_EQ(R.Id, RemarkId::OMP190);
    EXPECT_TRUE(R.Missed);
  }
  for (const FuzzPresetOutcome &P : V.Presets) {
    EXPECT_FALSE(P.OK);
    EXPECT_TRUE(P.VerifyFailed);
    EXPECT_FALSE(P.ReferenceBroken)
        << "the reference compile must not see the sabotage";
  }
}

TEST(FuzzOracle, BehavioralMiscompileIsCaught) {
  FuzzOracleOptions O;
  O.ExtraPasses.push_back(dropStoresPass());
  FuzzVerdict V = runFuzzOracle(testRecipe(), O);
  ASSERT_FALSE(V.OK);
  EXPECT_NE(V.Reason.find("diverge"), std::string::npos) << V.Reason;
  for (const FuzzPresetOutcome &P : V.Presets) {
    EXPECT_FALSE(P.OK) << P.Preset;
    EXPECT_FALSE(P.VerifyFailed) << "dropping stores is verifier-clean";
    EXPECT_FALSE(P.ReferenceBroken);
  }
}

TEST(FuzzOracle, LintCatchesRaceTheDifferentialRunMisses) {
  FuzzOracleOptions O;
  O.ExtraPasses.push_back({"hoist-guarded-store", hoistGuardedStore});

  // Without the lint the sabotage is invisible: the hoisted store writes a
  // uniform value from every thread, so all presets still produce
  // bit-identical outputs and both differential comparisons pass.
  O.Lint = false;
  FuzzVerdict Blind = runFuzzOracle(guardedRecipe(), O);
  EXPECT_TRUE(Blind.OK) << "preset '" << Blind.FailingPreset
                        << "': " << Blind.Reason;

  O.Lint = true;
  FuzzVerdict V = runFuzzOracle(guardedRecipe(), O);
  ASSERT_FALSE(V.OK) << "lint missed the hoisted guarded store";
  EXPECT_NE(V.Reason.find("lint:"), std::string::npos) << V.Reason;
  EXPECT_NE(V.Reason.find("OMP204"), std::string::npos) << V.Reason;
  for (const FuzzPresetOutcome &P : V.Presets) {
    EXPECT_FALSE(P.VerifyFailed)
        << P.Preset << ": the hoist must be verifier-clean";
    EXPECT_FALSE(P.ReferenceBroken) << P.Preset;
  }
}

/// The data-mapping sabotage pass (OMP242 satellite): declares an explicit
/// map(alloc:) on each kernel's first pointer parameter — the recipe's
/// read-only input buffer. With that clause, host data would never reach
/// the device. The simulator's unified memory only *models* transfers (it
/// never performs them), so all presets still read the real host buffers
/// and the differential comparisons stay bit-identical; only the
/// stale-host-read lint checker, whose access summary runs after the
/// cleanup pipeline has dissolved the parallel-region frames, can see the
/// bug. (The summary cannot pick the victim here: at extra-pass time the
/// input pointer still escapes into its frame and classifies Unknown.)
static bool declareAllocOnInputParam(Module &M) {
  bool Changed = false;
  for (Function *K : M.kernels()) {
    for (unsigned I = 0; I < K->arg_size(); ++I) {
      if (!K->getArg(I)->getType()->isPointerTy())
        continue;
      ParamMapping &PM =
          kernelParamMappingRef(K->getKernelEnvironment(), I);
      PM.Declared = MapKind::Alloc;
      PM.DeclaredExplicit = true;
      Changed = true;
      break;
    }
  }
  return Changed;
}

TEST(FuzzOracle, LintCatchesStaleMappingTheDifferentialRunMisses) {
  FuzzOracleOptions O;
  O.ExtraPasses.push_back({"sabotage-mapping", declareAllocOnInputParam});

  // Blind to the lint, the sabotage is invisible: mappings change modeled
  // transfer accounting, not simulated memory contents.
  O.Lint = false;
  FuzzVerdict Blind = runFuzzOracle(testRecipe(), O);
  EXPECT_TRUE(Blind.OK) << "preset '" << Blind.FailingPreset
                        << "': " << Blind.Reason;

  O.Lint = true;
  FuzzVerdict V = runFuzzOracle(testRecipe(), O);
  ASSERT_FALSE(V.OK) << "lint missed the stale-host-read mapping";
  EXPECT_NE(V.Reason.find("lint:"), std::string::npos) << V.Reason;
  EXPECT_NE(V.Reason.find("OMP242"), std::string::npos) << V.Reason;
  for (const FuzzPresetOutcome &P : V.Presets) {
    EXPECT_FALSE(P.VerifyFailed)
        << P.Preset << ": a metadata-only sabotage must be verifier-clean";
    EXPECT_FALSE(P.ReferenceBroken) << P.Preset;
  }
}

//===----------------------------------------------------------------------===//
// Reduction and attribution
//===----------------------------------------------------------------------===//

TEST(FuzzReduce, DifferentialPredicateSeparatesGoodFromSabotaged) {
  KernelRecipe R = testRecipe();
  PipelineOptions P = makeDevPipeline();
  GeneratedModule G(R, P.Scheme);
  EXPECT_FALSE(makeDifferentialPredicate(R, P)(G.M))
      << "clean pipeline flagged as failing";
  EXPECT_TRUE(makeDifferentialPredicate(R, P, {dropStoresPass()})(G.M))
      << "sabotaged pipeline not flagged";
}

TEST(FuzzReduce, SabotagedCaseIsReducedAndAttributed) {
  KernelRecipe R = testRecipe();
  PipelineOptions P = makeDevPipeline();
  GeneratedModule G(R, P.Scheme);
  ReducePredicate Pred = makeDifferentialPredicate(R, P, {dropStoresPass()});
  ASSERT_TRUE(Pred(G.M));

  ReduceResult RR = reduceFailingModule(G.M, Pred);
  ASSERT_NE(RR.Reduced, nullptr);
  EXPECT_LT(RR.FinalInstructions, RR.OriginalInstructions);
  EXPECT_FALSE(verifyModule(*RR.Reduced));
  EXPECT_TRUE(Pred(*RR.Reduced)) << "reduced module no longer fails";
  ASSERT_EQ(RR.Remarks.size(), 1u);
  EXPECT_EQ(RR.Remarks.remarks().front().Id, RemarkId::OMP191);

  // The kernel and its init/deinit skeleton must survive reduction.
  Function *Kernel = RR.Reduced->getFunction("fuzz_kernel");
  ASSERT_NE(Kernel, nullptr);
  EXPECT_TRUE(Kernel->isKernel());

  // Bisection over the reduced module pins the failure on the sabotage.
  BisectResult BR = attributeFailure(*RR.Reduced, R, P, {dropStoresPass()});
  ASSERT_TRUE(BR.FoundFailure);
  EXPECT_GT(BR.FirstBadExecution, 0);
  EXPECT_EQ(BR.PassName, "drop-stores");
}

TEST(FuzzReduce, ProtectedRuntimeCallsSurviveAggressiveReduction) {
  KernelRecipe R = testRecipe();
  GeneratedModule G(R);
  // An always-failing predicate lets the reducer delete as much as it can;
  // the target_init/deinit skeleton must still be standing afterwards.
  ReduceResult RR =
      reduceFailingModule(G.M, [](const Module &) { return true; });
  ASSERT_NE(RR.Reduced, nullptr);
  EXPECT_FALSE(verifyModule(*RR.Reduced));
  EXPECT_LT(RR.FinalInstructions, RR.OriginalInstructions);

  bool SawInit = false;
  Function *Kernel = RR.Reduced->getFunction("fuzz_kernel");
  ASSERT_NE(Kernel, nullptr);
  for (BasicBlock *BB : Kernel->getBlocks())
    for (Instruction *I : BB->getInstructions()) {
      auto *C = dyn_cast<CallInst>(I);
      if (C && C->getCalledFunction() &&
          C->getCalledFunction()->getName() == "__kmpc_target_init")
        SawInit = true;
    }
  EXPECT_TRUE(SawInit);
}

//===----------------------------------------------------------------------===//
// Corpus persistence
//===----------------------------------------------------------------------===//

TEST(FuzzCorpus, RecipeFileRoundTrip) {
  std::string Path = ::testing::TempDir() + "ompgpu-recipe.json";
  KernelRecipe R = KernelRecipe::sample(77);
  ASSERT_FALSE(saveRecipe(Path, R));
  Expected<KernelRecipe> Back = loadRecipe(Path);
  ASSERT_TRUE(static_cast<bool>(Back)) << Back.message();
  EXPECT_EQ(Back->toJSON().str(), R.toJSON().str());
}

TEST(FuzzCorpus, CorpusSummaryRoundTrip) {
  std::string Dir = ::testing::TempDir() + "ompgpu-corpus";
  ASSERT_FALSE(ensureDirectory(Dir));
  std::vector<CorpusEntry> Entries(2);
  Entries[0].Seed = 1;
  Entries[1].Seed = 2;
  Entries[1].OK = false;
  Entries[1].FailingPreset = "LLVM Dev";
  Entries[1].Reason = "outputs diverge";
  Entries[1].CaseFile = "case-2.json";
  ASSERT_FALSE(saveCorpus(Dir + "/corpus.json", Entries));
  Expected<std::vector<CorpusEntry>> Back = loadCorpus(Dir + "/corpus.json");
  ASSERT_TRUE(static_cast<bool>(Back)) << Back.message();
  ASSERT_EQ(Back->size(), 2u);
  EXPECT_TRUE((*Back)[0].OK);
  EXPECT_FALSE((*Back)[1].OK);
  EXPECT_EQ((*Back)[1].FailingPreset, "LLVM Dev");
  EXPECT_EQ((*Back)[1].CaseFile, "case-2.json");
}

TEST(FuzzCorpus, ReadErrorsAreReportedNotFatal) {
  Expected<std::string> Missing = readTextFile("/nonexistent/ompgpu.txt");
  EXPECT_FALSE(static_cast<bool>(Missing));
  EXPECT_NE(Missing.message().find("nonexistent"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Campaign scale (labeled fuzz-smoke + slow, excluded from tier1)
//===----------------------------------------------------------------------===//

TEST(FuzzSlow, TwoHundredSeedsZeroMismatches) {
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    KernelRecipe R = KernelRecipe::sample(Seed);
    FuzzVerdict V = runFuzzOracle(R);
    ASSERT_TRUE(V.OK) << R.summary() << ": preset '" << V.FailingPreset
                      << "': " << V.Reason;
  }
}

TEST(FuzzSlow, SabotageEndToEndAcrossSeeds) {
  // The whole catch -> reduce -> attribute chain, over several distinct
  // sampled recipes rather than the single hand-built one.
  unsigned Attributed = 0;
  for (uint64_t Seed : {2, 5, 9}) {
    KernelRecipe R = KernelRecipe::sample(Seed);
    PipelineOptions P = makeDevPipeline();
    GeneratedModule G(R, P.Scheme);
    ReducePredicate Pred = makeDifferentialPredicate(R, P, {dropStoresPass()});
    if (!Pred(G.M))
      continue; // sabotage happened to be benign for this recipe
    ReduceResult RR = reduceFailingModule(G.M, Pred);
    ASSERT_TRUE(Pred(*RR.Reduced)) << R.summary();
    BisectResult BR = attributeFailure(*RR.Reduced, R, P, {dropStoresPass()});
    ASSERT_TRUE(BR.FoundFailure) << R.summary();
    if (BR.PassName == "drop-stores")
      ++Attributed;
  }
  EXPECT_GE(Attributed, 2u);
}

} // namespace
