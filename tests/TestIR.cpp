//===- tests/TestIR.cpp - IR core unit tests --------------------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "ir/AsmWriter.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace ompgpu;

namespace {

class IRTest : public ::testing::Test {
protected:
  IRContext Ctx;
  Module M{Ctx, "test"};

  Function *makeFunction(const std::string &Name = "f",
                         Type *Ret = nullptr,
                         std::vector<Type *> Params = {}) {
    return M.createFunction(
        Name, Ctx.getFunctionTy(Ret ? Ret : Ctx.getVoidTy(), Params));
  }
};

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

TEST_F(IRTest, PrimitiveTypeSizes) {
  EXPECT_EQ(0u, Ctx.getVoidTy()->getSizeInBytes());
  EXPECT_EQ(1u, Ctx.getInt1Ty()->getSizeInBytes());
  EXPECT_EQ(1u, Ctx.getInt8Ty()->getSizeInBytes());
  EXPECT_EQ(4u, Ctx.getInt32Ty()->getSizeInBytes());
  EXPECT_EQ(8u, Ctx.getInt64Ty()->getSizeInBytes());
  EXPECT_EQ(4u, Ctx.getFloatTy()->getSizeInBytes());
  EXPECT_EQ(8u, Ctx.getDoubleTy()->getSizeInBytes());
  EXPECT_EQ(8u, Ctx.getPtrTy()->getSizeInBytes());
}

TEST_F(IRTest, TypeUniquing) {
  EXPECT_EQ(Ctx.getPtrTy(), Ctx.getPtrTy(AddrSpace::Generic));
  EXPECT_NE(Ctx.getPtrTy(AddrSpace::Shared),
            Ctx.getPtrTy(AddrSpace::Global));
  EXPECT_EQ(Ctx.getArrayTy(Ctx.getDoubleTy(), 5),
            Ctx.getArrayTy(Ctx.getDoubleTy(), 5));
  EXPECT_NE(Ctx.getArrayTy(Ctx.getDoubleTy(), 5),
            Ctx.getArrayTy(Ctx.getDoubleTy(), 6));
  EXPECT_EQ(Ctx.getStructTy({Ctx.getInt32Ty(), Ctx.getDoubleTy()}),
            Ctx.getStructTy({Ctx.getInt32Ty(), Ctx.getDoubleTy()}));
  EXPECT_EQ(Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}),
            Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}));
}

TEST_F(IRTest, StructLayoutNaturalAlignment) {
  // {i32, double, i8} -> offsets 0, 8, 16; size 24 (align 8).
  StructType *ST = Ctx.getStructTy(
      {Ctx.getInt32Ty(), Ctx.getDoubleTy(), Ctx.getInt8Ty()});
  EXPECT_EQ(0u, ST->getElementOffset(0));
  EXPECT_EQ(8u, ST->getElementOffset(1));
  EXPECT_EQ(16u, ST->getElementOffset(2));
  EXPECT_EQ(24u, ST->getSizeInBytes());
  EXPECT_EQ(8u, ST->getAlignment());
}

TEST_F(IRTest, ArrayTypeSize) {
  ArrayType *AT = Ctx.getArrayTy(Ctx.getDoubleTy(), 7);
  EXPECT_EQ(56u, AT->getSizeInBytes());
  EXPECT_EQ(8u, AT->getAlignment());
  EXPECT_EQ("[7 x double]", AT->getAsString());
}

TEST_F(IRTest, TypePrinting) {
  EXPECT_EQ("i32", Ctx.getInt32Ty()->getAsString());
  EXPECT_EQ("ptr", Ctx.getPtrTy()->getAsString());
  EXPECT_EQ("ptr addrspace(3)",
            Ctx.getPtrTy(AddrSpace::Shared)->getAsString());
  EXPECT_EQ("{i32, double}",
            Ctx.getStructTy({Ctx.getInt32Ty(), Ctx.getDoubleTy()})
                ->getAsString());
}

//===----------------------------------------------------------------------===//
// Constants
//===----------------------------------------------------------------------===//

TEST_F(IRTest, ConstantUniquing) {
  EXPECT_EQ(Ctx.getInt32(42), Ctx.getInt32(42));
  EXPECT_NE(Ctx.getInt32(42), Ctx.getInt32(43));
  EXPECT_NE(Ctx.getInt32(42), Ctx.getInt64(42));
  EXPECT_EQ(Ctx.getDouble(1.5), Ctx.getDouble(1.5));
  EXPECT_EQ(Ctx.getNullPtr(), Ctx.getNullPtr());
}

TEST_F(IRTest, ConstantIntNormalization) {
  // i8 constants are stored sign-extended at their width.
  EXPECT_EQ(Ctx.getInt8(0x180), Ctx.getInt8(-128));
  EXPECT_EQ(-128, Ctx.getInt8(0x180)->getValue());
  EXPECT_EQ(1, Ctx.getInt1(true)->getValue());
}

//===----------------------------------------------------------------------===//
// Use lists and RAUW
//===----------------------------------------------------------------------===//

TEST_F(IRTest, UseListsTrackOperands) {
  Function *F = makeFunction("f", Ctx.getInt32Ty(),
                             {Ctx.getInt32Ty(), Ctx.getInt32Ty()});
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  Value *A0 = F->getArg(0), *A1 = F->getArg(1);
  Value *Add = B.createAdd(A0, A1);
  Value *Mul = B.createMul(Add, A0);
  B.createRet(Mul);

  EXPECT_EQ(2u, A0->getNumUses()); // add + mul
  EXPECT_EQ(1u, A1->getNumUses());
  EXPECT_EQ(1u, Add->getNumUses());
}

TEST_F(IRTest, ReplaceAllUsesWith) {
  Function *F = makeFunction("f", Ctx.getInt32Ty(), {Ctx.getInt32Ty()});
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  Value *A0 = F->getArg(0);
  Value *Add = B.createAdd(A0, B.getInt32(1));
  Value *Mul = B.createMul(Add, Add);
  B.createRet(Mul);

  Add->replaceAllUsesWith(Ctx.getInt32(7));
  EXPECT_EQ(0u, Add->getNumUses());
  auto *MulI = cast<BinOpInst>(Mul);
  EXPECT_EQ(Ctx.getInt32(7), MulI->getLHS());
  EXPECT_EQ(Ctx.getInt32(7), MulI->getRHS());
}

TEST_F(IRTest, EraseFromParentMaintainsUseLists) {
  Function *F = makeFunction();
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  Value *P = B.createAlloca(Ctx.getInt32Ty());
  Instruction *L = B.createLoad(Ctx.getInt32Ty(), P);
  B.createRetVoid();

  EXPECT_EQ(1u, P->getNumUses());
  L->eraseFromParent();
  EXPECT_EQ(0u, P->getNumUses());
}

TEST_F(IRTest, MoveBeforeAcrossBlocks) {
  Function *F = makeFunction();
  BasicBlock *B1 = F->createBlock("b1");
  BasicBlock *B2 = F->createBlock("b2");
  IRBuilder B(Ctx);
  B.setInsertPoint(B1);
  Instruction *A = B.createAlloca(Ctx.getInt32Ty(), "a");
  B.createBr(B2);
  B.setInsertPoint(B2);
  Instruction *Ret = B.createRetVoid();

  A->moveBefore(Ret);
  EXPECT_EQ(B2, A->getParent());
  EXPECT_EQ(A, B2->front());
  EXPECT_EQ(2u, B2->size());
}

//===----------------------------------------------------------------------===//
// CFG structure
//===----------------------------------------------------------------------===//

TEST_F(IRTest, PredecessorsAndSuccessors) {
  Function *F = makeFunction("f", nullptr, {Ctx.getInt1Ty()});
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *T = F->createBlock("then");
  BasicBlock *J = F->createBlock("join");
  IRBuilder B(Ctx);
  B.setInsertPoint(E);
  B.createCondBr(F->getArg(0), T, J);
  B.setInsertPoint(T);
  B.createBr(J);
  B.setInsertPoint(J);
  B.createRetVoid();

  EXPECT_EQ(2u, E->successors().size());
  EXPECT_EQ(0u, E->predecessors().size());
  EXPECT_EQ(2u, J->predecessors().size());
  EXPECT_TRUE(J->hasPredecessor(E));
  EXPECT_TRUE(J->hasPredecessor(T));
  EXPECT_FALSE(T->hasPredecessor(J));
}

TEST_F(IRTest, SplitBeforeMovesTailAndPatchesPhis) {
  Function *F = makeFunction("f", nullptr, {Ctx.getInt1Ty()});
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *L = F->createBlock("loop");
  IRBuilder B(Ctx);
  B.setInsertPoint(E);
  B.createBr(L);
  B.setInsertPoint(L);
  PhiInst *Phi = B.createPhi(Ctx.getInt32Ty(), "iv");
  Phi->addIncoming(B.getInt32(0), E);
  Value *Next = B.createAdd(Phi, B.getInt32(1), "next");
  Instruction *Marker = cast<Instruction>(B.createAdd(Next, Next, "x"));
  B.createCondBr(F->getArg(0), L, L); // artificial back edges
  Phi->addIncoming(Next, L);

  BasicBlock *Tail = L->splitBefore(Marker, "tail");
  // The phi's incoming block for the back edge must now be the tail.
  EXPECT_EQ(Tail, Phi->getIncomingBlock(1));
  // The original block falls through to the tail.
  auto *Br = cast<BrInst>(L->getTerminator());
  EXPECT_FALSE(Br->isConditional());
  EXPECT_EQ(Tail, Br->getSuccessor(0));
  EXPECT_EQ(Marker, Tail->front());
  std::string Err;
  EXPECT_FALSE(verifyFunction(*F, &Err)) << Err;
}

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

TEST_F(IRTest, VerifierAcceptsWellFormedFunction) {
  Function *F = makeFunction("ok", Ctx.getInt32Ty(), {Ctx.getInt32Ty()});
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  B.createRet(B.createAdd(F->getArg(0), B.getInt32(1)));
  std::string Err;
  EXPECT_FALSE(verifyFunction(*F, &Err)) << Err;
}

TEST_F(IRTest, VerifierRejectsMissingTerminator) {
  Function *F = makeFunction("bad");
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  B.createAlloca(Ctx.getInt32Ty());
  std::string Err;
  EXPECT_TRUE(verifyFunction(*F, &Err));
  EXPECT_NE(std::string::npos, Err.find("terminator"));
}

TEST_F(IRTest, VerifierRejectsRetValueInVoidFunction) {
  Function *F = makeFunction("bad");
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  B.createRet(B.getInt32(1));
  std::string Err;
  EXPECT_TRUE(verifyFunction(*F, &Err));
}

TEST_F(IRTest, VerifierRejectsPhiMismatch) {
  Function *F = makeFunction("bad", nullptr, {Ctx.getInt1Ty()});
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *A = F->createBlock("a");
  BasicBlock *J = F->createBlock("join");
  IRBuilder B(Ctx);
  B.setInsertPoint(E);
  B.createCondBr(F->getArg(0), A, J);
  B.setInsertPoint(A);
  B.createBr(J);
  B.setInsertPoint(J);
  PhiInst *Phi = B.createPhi(Ctx.getInt32Ty());
  Phi->addIncoming(B.getInt32(1), A); // missing incoming for E
  B.createRetVoid();
  std::string Err;
  EXPECT_TRUE(verifyFunction(*F, &Err));
  EXPECT_NE(std::string::npos, Err.find("phi"));
}

TEST_F(IRTest, VerifierRejectsCallArgCountMismatch) {
  Function *Callee = makeFunction("callee", nullptr, {Ctx.getInt32Ty()});
  IRBuilder CB(Ctx);
  CB.setInsertPoint(Callee->createBlock("entry"));
  CB.createRetVoid();

  Function *F = makeFunction("caller");
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  // Build a call with the wrong FunctionType on purpose.
  FunctionType *WrongTy = Ctx.getFunctionTy(Ctx.getVoidTy(), {});
  B.createIndirectCall(WrongTy, Callee, {});
  B.createRetVoid();
  std::string Err;
  EXPECT_TRUE(verifyFunction(*F, &Err));
}

//===----------------------------------------------------------------------===//
// GEP offset computation
//===----------------------------------------------------------------------===//

TEST_F(IRTest, GEPAccumulateConstantOffset) {
  Function *F = makeFunction("f", nullptr, {Ctx.getPtrTy()});
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  StructType *ST = Ctx.getStructTy({Ctx.getInt32Ty(), Ctx.getDoubleTy()});
  GEPInst *G = B.createGEP(ST, F->getArg(0),
                           {B.getInt64(2), B.getInt64(1)});
  B.createRetVoid();
  int64_t Off = 0;
  ASSERT_TRUE(G->accumulateConstantOffset(Off));
  EXPECT_EQ(2 * 16 + 8, Off); // two structs of 16, field 1 at +8
}

TEST_F(IRTest, GEPNonConstantOffsetReported) {
  Function *F = makeFunction("f", nullptr,
                             {Ctx.getPtrTy(), Ctx.getInt64Ty()});
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  GEPInst *G = B.createGEP(Ctx.getDoubleTy(), F->getArg(0),
                           {F->getArg(1)});
  B.createRetVoid();
  int64_t Off = 0;
  EXPECT_FALSE(G->accumulateConstantOffset(Off));
}

//===----------------------------------------------------------------------===//
// Module-level structures
//===----------------------------------------------------------------------===//

TEST_F(IRTest, ModuleUniqueNames) {
  Function *F1 = makeFunction("dup");
  Function *F2 = makeFunction("dup");
  EXPECT_NE(F1->getName(), F2->getName());
  EXPECT_EQ(F1, M.getFunction("dup"));
}

TEST_F(IRTest, GetOrInsertFunctionReturnsExisting) {
  FunctionType *FTy = Ctx.getFunctionTy(Ctx.getVoidTy(), {});
  Function *A = M.getOrInsertFunction("rt", FTy);
  Function *B2 = M.getOrInsertFunction("rt", FTy);
  EXPECT_EQ(A, B2);
  EXPECT_TRUE(A->isDeclaration());
}

TEST_F(IRTest, SharedGlobalsAccumulateStaticSharedBytes) {
  M.createGlobal(Ctx.getArrayTy(Ctx.getDoubleTy(), 4), AddrSpace::Shared,
                 "a");
  M.createGlobal(Ctx.getDoubleTy(), AddrSpace::Shared, "b");
  M.createGlobal(Ctx.getDoubleTy(), AddrSpace::Global, "c");
  EXPECT_EQ(40u, M.getStaticSharedMemoryBytes());
}

TEST_F(IRTest, FunctionAddressTaken) {
  Function *Callee = makeFunction("callee");
  IRBuilder CB(Ctx);
  CB.setInsertPoint(Callee->createBlock("entry"));
  CB.createRetVoid();

  Function *F = makeFunction("caller", nullptr, {Ctx.getPtrTy()});
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  B.createCall(Callee, {});
  EXPECT_FALSE(Callee->hasAddressTaken());
  B.createStore(Callee, F->getArg(0));
  EXPECT_TRUE(Callee->hasAddressTaken());
  B.createRetVoid();
}

TEST_F(IRTest, AsmWriterRoundTripContainsStructure) {
  Function *F = makeFunction("pretty", Ctx.getInt32Ty(),
                             {Ctx.getInt32Ty()});
  F->getArg(0)->setName("x");
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  Value *Y = B.createAdd(F->getArg(0), B.getInt32(2), "y");
  B.createRet(Y);

  std::string Text = functionToString(*F);
  EXPECT_NE(std::string::npos, Text.find("define i32 @pretty(i32 %x)"));
  EXPECT_NE(std::string::npos, Text.find("%y = add i32 %x, 2"));
  EXPECT_NE(std::string::npos, Text.find("ret i32 %y"));
}

TEST_F(IRTest, KernelMetadataPrinted) {
  Function *F = makeFunction("kern");
  F->setKernel(true);
  F->getKernelEnvironment().Mode = ExecMode::SPMD;
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  B.createRetVoid();
  EXPECT_NE(std::string::npos,
            functionToString(*F).find("kernel(spmd)"));
}

TEST_F(IRTest, PhiRemoveIncomingBlock) {
  Function *F = makeFunction("f", nullptr, {Ctx.getInt1Ty()});
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *A = F->createBlock("a");
  BasicBlock *J = F->createBlock("join");
  IRBuilder B(Ctx);
  B.setInsertPoint(E);
  B.createCondBr(F->getArg(0), A, J);
  B.setInsertPoint(A);
  B.createBr(J);
  B.setInsertPoint(J);
  PhiInst *Phi = B.createPhi(Ctx.getInt32Ty());
  Phi->addIncoming(B.getInt32(1), A);
  Phi->addIncoming(B.getInt32(2), E);
  B.createRetVoid();

  Phi->removeIncomingBlock(A);
  EXPECT_EQ(1u, Phi->getNumIncoming());
  EXPECT_EQ(E, Phi->getIncomingBlock(0));
  EXPECT_EQ(nullptr, Phi->getIncomingValueForBlock(A));
}

} // namespace
