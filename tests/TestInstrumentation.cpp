//===- tests/TestInstrumentation.cpp - Pass observability tests ------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the pass-pipeline observability layer: PassInstrumentation
/// timing/nesting, IR-hash change detection, VerifyEach attribution of a
/// corrupted module, the JSON facility, and the compile-report round trip
/// (emit -> parse -> field check) against docs/compile-report.md.
///
//===----------------------------------------------------------------------===//

#include "core/Passes.h"
#include "driver/CompileReport.h"
#include "driver/Pipeline.h"
#include "frontend/OMPCodeGen.h"
#include "ir/AsmWriter.h"
#include "ir/Verifier.h"
#include "support/JSON.h"
#include "rtl/DeviceRTL.h"
#include "support/PassInstrumentation.h"
#include "support/Statistic.h"
#include "support/raw_ostream.h"
#include "transforms/FunctionAttrs.h"
#include "transforms/Inliner.h"
#include "transforms/Mem2Reg.h"
#include "transforms/Simplify.h"
#include "transforms/StoreToLoadForwarding.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ompgpu;

namespace {

//===----------------------------------------------------------------------===//
// PassInstrumentation unit tests (IR-agnostic, via callbacks)
//===----------------------------------------------------------------------===//

TEST(PassInstrumentation, DisabledIsPassThrough) {
  PassInstrumentation PI; // all options off
  bool Ran = false;
  bool Changed = PI.runPass("noop", [&] {
    Ran = true;
    return true;
  });
  EXPECT_TRUE(Ran);
  EXPECT_TRUE(Changed);
  EXPECT_TRUE(PI.executions().empty());
}

TEST(PassInstrumentation, HashChangeDetection) {
  // A fake "module": the hash callback fingerprints this counter, so a
  // body that increments it is a mutating pass, one that does not is a
  // no-op — even when the pass misreports its return value.
  uint64_t State = 0;
  PassInstrumentationOptions Opts;
  Opts.TimePasses = true;
  Opts.TrackChanges = true;
  PassInstrumentation PI(Opts, [&] { return State; });

  // Mutating pass that *lies* about not changing anything.
  bool Changed = PI.runPass("mutator", [&] {
    ++State;
    return false;
  });
  EXPECT_TRUE(Changed) << "fingerprint must override the reported verdict";

  // No-op pass that claims it changed the module.
  Changed = PI.runPass("liar-noop", [&] { return true; });
  EXPECT_FALSE(Changed);

  ASSERT_EQ(PI.executions().size(), 2u);
  const PassExecution &Mutator = PI.executions()[0];
  EXPECT_TRUE(Mutator.HashTracked);
  EXPECT_TRUE(Mutator.IRChanged);
  EXPECT_FALSE(Mutator.ReportedChange);
  const PassExecution &Noop = PI.executions()[1];
  EXPECT_FALSE(Noop.IRChanged);
  EXPECT_TRUE(Noop.ReportedChange);
  EXPECT_FALSE(Noop.changed());
}

TEST(PassInstrumentation, InvocationCountsAndNesting) {
  PassInstrumentationOptions Opts;
  Opts.TimePasses = true;
  PassInstrumentation PI(Opts);

  PI.runPass("outer", [&] {
    PI.runPass("inner", [] { return false; });
    PI.runPass("inner", [] { return false; });
    return true;
  });
  PI.runPass("outer", [] { return false; });

  ASSERT_EQ(PI.executions().size(), 4u);
  // Pre-order: outer#0, inner#0, inner#1, outer#1.
  EXPECT_EQ(PI.executions()[0].Name, "outer");
  EXPECT_EQ(PI.executions()[0].Depth, 0u);
  EXPECT_EQ(PI.executions()[1].Name, "inner");
  EXPECT_EQ(PI.executions()[1].Depth, 1u);
  EXPECT_EQ(PI.executions()[2].Invocation, 1u);
  EXPECT_EQ(PI.executions()[3].Name, "outer");
  EXPECT_EQ(PI.executions()[3].Invocation, 1u);

  EXPECT_EQ(PI.invocationCount("outer"), 2u);
  EXPECT_EQ(PI.invocationCount("inner"), 2u);
  // Nested time is included in the parent, so the total counts only
  // depth-0 records.
  double Sum = PI.executions()[0].WallMillis + PI.executions()[3].WallMillis;
  EXPECT_DOUBLE_EQ(PI.totalMillis(), Sum);
}

TEST(PassInstrumentation, VerifyEachAttributesFirstCorruptPass) {
  IRContext Ctx;
  Module M(Ctx, "verify-each");
  Function *F = M.createFunction(
      "f", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  B.createRetVoid();
  ASSERT_FALSE(verifyModule(M));

  PassInstrumentationOptions Opts;
  Opts.VerifyEach = true;
  PassInstrumentation PI(
      Opts, [&M] { return hashModule(M); },
      [&M](std::string *Error) { return verifyModule(M, Error); });

  PI.runPass("benign", [] { return false; });
  // An empty block violates the verifier's "block lacks a terminator"
  // structural rules — exactly the kind of damage VerifyEach exists for.
  PI.runPass("corruptor", [&] {
    F->createBlock("orphan");
    return true;
  });
  PI.runPass("after", [] { return false; });

  EXPECT_EQ(PI.firstCorruptPass(), "corruptor");
  EXPECT_FALSE(PI.verifyError().empty());
  ASSERT_EQ(PI.executions().size(), 3u);
  EXPECT_FALSE(PI.executions()[0].VerifyFailed);
  EXPECT_TRUE(PI.executions()[1].VerifyFailed);
  // The module stays corrupt, so the later pass fails verification too —
  // but attribution sticks with the first offender.
  EXPECT_TRUE(PI.executions()[2].VerifyFailed);
  EXPECT_EQ(PI.firstCorruptPass(), "corruptor");
}

//===----------------------------------------------------------------------===//
// Pipeline-level instrumentation
//===----------------------------------------------------------------------===//

class InstrumentedPipelineTest : public ::testing::Test {
protected:
  IRContext Ctx;
  Module M{Ctx, "instrumented"};

  /// A small SPMD saxpy kernel (the quickstart pattern) so every pipeline
  /// phase has something to chew on.
  void buildKernel() {
    OMPCodeGen CG(M, {CodeGenScheme::Simplified13, false});
    Type *F64 = Ctx.getDoubleTy();
    TargetRegionBuilder TRB(CG, "saxpy",
                            {F64, Ctx.getPtrTy(), Ctx.getInt32Ty()},
                            ExecMode::SPMD, 4, 32);
    Argument *A = TRB.getParam(0);
    Argument *X = TRB.getParam(1);
    Argument *N = TRB.getParam(2);
    std::vector<TargetRegionBuilder::Capture> Caps = {{A, false, "a"},
                                                      {X, false, "x"}};
    TRB.emitDistributeParallelFor(
        N, Caps,
        [&](IRBuilder &B, Value *I,
            const TargetRegionBuilder::CaptureMap &Map) {
          Value *P = B.createGEP(F64, Map.at(X), {I});
          Value *V = B.createLoad(F64, P);
          B.createStore(B.createFMul(Map.at(A), V), P);
        });
    TRB.finalize();
  }
};

TEST_F(InstrumentedPipelineTest, TimingsCoverEveryConfiguredPass) {
  buildKernel();
  PipelineOptions P = makeDevPipeline();
  P.Instrument.TimePasses = true;
  P.Instrument.TrackChanges = true;
  CompileResult CR = optimizeDeviceModule(M, P);
  ASSERT_FALSE(CR.VerifyFailed) << CR.VerifyError;

  auto Count = [&CR](const std::string &Name) {
    return std::count_if(CR.Passes.begin(), CR.Passes.end(),
                         [&](const PassExecution &E) {
                           return E.Name == Name;
                         });
  };

  // Every pass the full Dev pipeline configures must have a record.
  EXPECT_EQ(Count(LinkDeviceRTLPassName), 1);
  EXPECT_EQ(Count(OpenMPOptPassName), 1);
  EXPECT_EQ(Count(FunctionAttrsPassName), 2);
  EXPECT_EQ(Count(passname::Internalize), 1);
  EXPECT_EQ(Count(passname::HeapToStack), 1);
  EXPECT_EQ(Count(passname::HeapToShared), 1);
  EXPECT_EQ(Count(passname::SPMDzation), 1);
  EXPECT_EQ(Count(passname::CustomStateMachine), 1);
  EXPECT_EQ(Count(passname::FoldRuntimeCalls), 1);
  EXPECT_EQ(Count(SimplifyPassName), 3);
  EXPECT_EQ(Count(InlineParallelRegionsPassName), 1);
  EXPECT_EQ(Count(Mem2RegPassName), 1);
  EXPECT_EQ(Count(StoreToLoadForwardingPassName), 1);

  // Timing sanity: non-negative everywhere; the openmp-opt parent's
  // inclusive time dominates the sum of its nested sub-passes; the total
  // is the sum of the top-level records.
  double TopLevel = 0.0, Nested = 0.0, Parent = 0.0;
  for (const PassExecution &E : CR.Passes) {
    EXPECT_GE(E.WallMillis, 0.0);
    if (E.Depth == 0)
      TopLevel += E.WallMillis;
    else
      Nested += E.WallMillis;
    if (E.Name == OpenMPOptPassName)
      Parent = E.WallMillis;
  }
  EXPECT_GE(Parent, Nested * 0.99) // float-tolerant
      << "sub-pass time must be included in the openmp-opt record";
  EXPECT_NEAR(CR.TotalPassMillis, TopLevel, 1e-9);

  // Change detection: linking the runtime and running openmp-opt on this
  // kernel definitely changes IR; the third simplify run (after mem2reg +
  // forwarding already reached a fixed point on a tiny kernel) is where
  // "ran but changed nothing" typically becomes visible. Assert both
  // verdicts occur rather than pinning a specific quiet pass.
  bool SawChanged = false, SawUnchanged = false;
  for (const PassExecution &E : CR.Passes) {
    EXPECT_TRUE(E.HashTracked);
    (E.changed() ? SawChanged : SawUnchanged) = true;
  }
  EXPECT_TRUE(SawChanged);
  EXPECT_TRUE(SawUnchanged);
}

TEST_F(InstrumentedPipelineTest, VerifyEachCleanPipelineStaysClean) {
  buildKernel();
  PipelineOptions P = makeDevPipeline();
  P.Instrument.VerifyEach = true;
  CompileResult CR = optimizeDeviceModule(M, P);
  EXPECT_FALSE(CR.VerifyFailed) << CR.VerifyError;
  EXPECT_TRUE(CR.FirstCorruptPass.empty());
  for (const PassExecution &E : CR.Passes)
    EXPECT_FALSE(E.VerifyFailed) << E.Name;
}

TEST_F(InstrumentedPipelineTest, UninstrumentedPipelineRecordsNothing) {
  buildKernel();
  CompileResult CR = optimizeDeviceModule(M, makeDevPipeline());
  EXPECT_TRUE(CR.Passes.empty());
  EXPECT_EQ(CR.TotalPassMillis, 0.0);
}

//===----------------------------------------------------------------------===//
// JSON facility
//===----------------------------------------------------------------------===//

TEST(JSON, WriteParseRoundTrip) {
  json::Value Doc = json::Value::makeObject();
  Doc.set("int", (int64_t)-42)
      .set("big", (uint64_t)1234567890123ULL)
      .set("dbl", 2.5)
      .set("flag", true)
      .set("none", json::Value())
      .set("text", std::string("quote\" slash\\ newline\n tab\t ctrl\x01"));
  json::Value Arr = json::Value::makeArray();
  Arr.push_back(1);
  Arr.push_back("two");
  json::Value Inner = json::Value::makeObject();
  Inner.set("k", "v");
  Arr.push_back(std::move(Inner));
  Doc.set("arr", std::move(Arr));

  std::string Text = Doc.str();
  json::Value Parsed;
  std::string Error;
  ASSERT_TRUE(json::parse(Text, Parsed, &Error)) << Error;

  EXPECT_EQ(Parsed.at("int").asInt(), -42);
  EXPECT_EQ(Parsed.at("big").asInt(), 1234567890123LL);
  EXPECT_DOUBLE_EQ(Parsed.at("dbl").asDouble(), 2.5);
  EXPECT_TRUE(Parsed.at("flag").asBool());
  EXPECT_TRUE(Parsed.at("none").isNull());
  EXPECT_EQ(Parsed.at("text").asString(),
            "quote\" slash\\ newline\n tab\t ctrl\x01");
  ASSERT_EQ(Parsed.at("arr").size(), 3u);
  EXPECT_EQ(Parsed.at("arr")[1].asString(), "two");
  EXPECT_EQ(Parsed.at("arr")[2].at("k").asString(), "v");
  // Missing keys chain to null instead of crashing.
  EXPECT_TRUE(Parsed.at("missing").at("deeper").isNull());
}

TEST(JSON, ParserRejectsMalformedInput) {
  json::Value V;
  std::string Error;
  EXPECT_FALSE(json::parse("{", V, &Error));
  EXPECT_FALSE(json::parse("[1,]", V, &Error));
  EXPECT_FALSE(json::parse("{\"a\" 1}", V, &Error));
  EXPECT_FALSE(json::parse("\"unterminated", V, &Error));
  EXPECT_FALSE(json::parse("12 34", V, &Error)) << "trailing garbage";
  EXPECT_FALSE(json::parse("nul", V, &Error));
  EXPECT_TRUE(json::parse(" { } ", V, &Error)) << Error;
}

TEST(JSON, ParserRejectsHostileInput) {
  // Table-driven corpus of inputs that used to crash, hang, or silently
  // mis-parse naive recursive-descent parsers.
  struct Case {
    const char *Name;
    std::string Text;
  };
  std::string DeepArrays(100000, '[');
  std::string DeepObjects;
  for (int I = 0; I != 100000; ++I)
    DeepObjects += "{\"k\":";
  const Case Cases[] = {
      {"empty input", ""},
      {"whitespace only", "  \t\n "},
      {"deep array nesting", DeepArrays},
      {"deep object nesting", DeepObjects},
      {"truncated string", "\"abc"},
      {"truncated escape", "\"abc\\"},
      {"bad escape character", "\"\\q\""},
      {"truncated unicode escape", "\"\\u12\""},
      {"bad unicode hex digit", "\"\\uZZZZ\""},
      {"lone high surrogate", "\"\\ud800\""},
      {"bad low surrogate", "\"\\ud800\\u0041\""},
      {"control character in string", std::string("\"a\x01b\"")},
      {"leading plus", "+5"},
      {"minus only", "-"},
      {"bare dot", "."},
      {"double decimal point", "1.2.3"},
      {"exponent without digits", "1e"},
      {"unclosed object", "{\"a\":1"},
      {"missing colon", "{\"a\" 1}"},
      {"trailing comma in object", "{\"a\":1,}"},
      {"trailing comma in array", "[1,]"},
      {"non-string key", "{1:2}"},
      {"trailing garbage", "{} x"},
  };
  for (const Case &C : Cases) {
    json::Value V;
    std::string Error;
    EXPECT_FALSE(json::parse(C.Text, V, &Error)) << C.Name;
    EXPECT_FALSE(Error.empty()) << C.Name;
  }
}

TEST(JSON, ParserAcceptsModerateNestingAndHugeNumbers) {
  json::Value V;
  std::string Error;

  // 100 levels is well within the depth limit; 200 is beyond it.
  std::string Ok = std::string(100, '[') + std::string(100, ']');
  EXPECT_TRUE(json::parse(Ok, V, &Error)) << Error;
  std::string TooDeep = std::string(200, '[') + std::string(200, ']');
  EXPECT_FALSE(json::parse(TooDeep, V, &Error));

  // An integer literal outside int64 range degrades to a double instead of
  // wrapping around or rejecting the document.
  ASSERT_TRUE(json::parse("123456789012345678901234567890", V, &Error))
      << Error;
  EXPECT_TRUE(V.isNumber());
  EXPECT_DOUBLE_EQ(V.asDouble(), 1.2345678901234568e29);
  ASSERT_TRUE(json::parse("-123456789012345678901234567890", V, &Error))
      << Error;
  EXPECT_DOUBLE_EQ(V.asDouble(), -1.2345678901234568e29);

  // A double overflow parses to +-infinity without crashing; the writer
  // emits non-finite doubles as null, so the round trip stays valid JSON.
  ASSERT_TRUE(json::parse("1e999999", V, &Error)) << Error;
  EXPECT_TRUE(V.isNumber());
  EXPECT_EQ(V.str(), "null");
  ASSERT_TRUE(json::parse("-1e999999", V, &Error)) << Error;
  EXPECT_EQ(V.str(), "null");
}

TEST(JSON, UnicodeEscapes) {
  json::Value V;
  std::string Error;
  ASSERT_TRUE(json::parse("\"a\\u00e9\\ud83d\\ude00b\"", V, &Error))
      << Error;
  EXPECT_EQ(V.asString(), "a\xc3\xa9\xf0\x9f\x98\x80"
                          "b");
}

//===----------------------------------------------------------------------===//
// Compile-report round trip
//===----------------------------------------------------------------------===//

TEST_F(InstrumentedPipelineTest, CompileReportRoundTrips) {
  buildKernel();
  StatisticRegistry::get().resetAll();
  PipelineOptions P = makeDevPipeline();
  P.Instrument.TimePasses = true;
  P.Instrument.TrackChanges = true;
  CompileResult CR = optimizeDeviceModule(M, P);
  ASSERT_FALSE(CR.VerifyFailed) << CR.VerifyError;

  KernelStats KS;
  KS.KernelName = "saxpy";
  KS.Milliseconds = 1.25;
  KS.RegsPerThread = 32;
  KS.Barriers = 7;

  json::Value Report = buildCompileReport(P, CR, {KS});
  std::string Text;
  raw_string_ostream OS(Text);
  writeCompileReport(OS, Report);

  json::Value Parsed;
  std::string Error;
  ASSERT_TRUE(json::parse(Text, Parsed, &Error)) << Error;

  // Schema envelope.
  EXPECT_EQ(Parsed.at("schema_version").asInt(),
            (int64_t)CompileReportSchemaVersion);
  EXPECT_EQ(Parsed.at("generator").asString(), "ompgpu");
  EXPECT_EQ(Parsed.at("pipeline").at("name").asString(), P.Name);
  EXPECT_TRUE(
      Parsed.at("pipeline").at("instrumentation").at("time_passes").asBool());
  EXPECT_FALSE(Parsed.at("verify").at("failed").asBool());

  // Per-pass records survive with their timing and change verdicts.
  const json::Value &Passes = Parsed.at("passes").at("executions");
  ASSERT_EQ(Passes.size(), CR.Passes.size());
  for (size_t I = 0; I != Passes.size(); ++I) {
    EXPECT_EQ(Passes[I].at("name").asString(), CR.Passes[I].Name);
    EXPECT_EQ(Passes[I].at("changed").asBool(), CR.Passes[I].changed());
    EXPECT_GE(Passes[I].at("wall_ms").asDouble(), 0.0);
  }
  EXPECT_GE(Parsed.at("passes").at("total_wall_ms").asDouble(), 0.0);

  // Remarks: count and identifier formatting.
  const json::Value &Remarks = Parsed.at("remarks");
  ASSERT_EQ(Remarks.size(), CR.Remarks.size());
  for (size_t I = 0; I != Remarks.size(); ++I) {
    const Remark &R = CR.Remarks.remarks()[I];
    EXPECT_EQ(Remarks[I].at("id").asInt(), (int64_t)R.Id);
    EXPECT_EQ(Remarks[I].at("name").asString(), remarkName(R.Id));
    EXPECT_EQ(Remarks[I].at("missed").asBool(), R.Missed);
  }

  // Statistics: only non-zero counters, all faithfully valued.
  for (const json::Value &S : Parsed.at("statistics").elements()) {
    EXPECT_GT(S.at("value").asInt(), 0);
    EXPECT_FALSE(S.at("name").asString().empty());
  }

  // Kernel stats attachment.
  ASSERT_EQ(Parsed.at("kernels").size(), 1u);
  const json::Value &K = Parsed.at("kernels")[0];
  EXPECT_EQ(K.at("kernel_name").asString(), "saxpy");
  EXPECT_DOUBLE_EQ(K.at("sim_ms").asDouble(), 1.25);
  EXPECT_EQ(K.at("regs_per_thread").asInt(), 32);
  EXPECT_EQ(K.at("barriers").asInt(), 7);
  EXPECT_FALSE(K.at("out_of_memory").asBool());
}

TEST_F(InstrumentedPipelineTest, LintSectionRoundTrips) {
  // Schema v3: the lint section plus the per-execution lint_failed and
  // pipeline run_lint/lint_each flags (docs/compile-report.md).
  PipelineOptions P = makeDevPipeline();
  P.RunLint = true;
  P.Instrument.LintEach = true;

  CompileResult CR;
  CR.LintRan = true;
  LintFinding F;
  F.Kind = LintKind::SharedRace;
  F.FunctionName = "k";
  F.Instruction = "store in block 'entry'";
  F.Object = "g";
  F.Message = "unsynchronized write to shared object 'g'";
  F.Witness = {"entry", "then"};
  CR.LintFindings.push_back(F);
  CR.FirstLintFailPass = "leak-injector";
  CR.FirstLintError = F.str();
  PassExecution PE;
  PE.Name = "leak-injector";
  PE.LintFailed = true;
  CR.Passes.push_back(PE);

  json::Value Report = buildCompileReport(P, CR);
  json::Value Parsed;
  std::string Error;
  ASSERT_TRUE(json::parse(Report.str(), Parsed, &Error)) << Error;

  EXPECT_GE(Parsed.at("schema_version").asInt(), 3);
  EXPECT_TRUE(Parsed.at("pipeline").at("run_lint").asBool());
  EXPECT_TRUE(
      Parsed.at("pipeline").at("instrumentation").at("lint_each").asBool());

  const json::Value &L = Parsed.at("lint");
  EXPECT_TRUE(L.at("ran").asBool());
  EXPECT_EQ(L.at("finding_count").asInt(), 1);
  EXPECT_EQ(L.at("first_lint_fail_pass").asString(), "leak-injector");
  EXPECT_EQ(L.at("first_lint_error").asString(), F.str());
  ASSERT_EQ(L.at("findings").size(), 1u);
  const json::Value &F0 = L.at("findings")[0];
  EXPECT_EQ(F0.at("id").asString(), "OMP201");
  EXPECT_EQ(F0.at("kind").asString(), "shared-race");
  EXPECT_EQ(F0.at("function").asString(), "k");
  EXPECT_EQ(F0.at("object").asString(), "g");
  EXPECT_EQ(F0.at("instruction").asString(), "store in block 'entry'");
  ASSERT_EQ(F0.at("witness").size(), 2u);
  EXPECT_EQ(F0.at("witness")[0].asString(), "entry");
  EXPECT_EQ(F0.at("witness")[1].asString(), "then");

  const json::Value &Passes = Parsed.at("passes").at("executions");
  ASSERT_EQ(Passes.size(), 1u);
  EXPECT_TRUE(Passes[0].at("lint_failed").asBool());
}

TEST_F(InstrumentedPipelineTest, OpenMPOptStatsMatchReport) {
  buildKernel();
  PipelineOptions P = makeDevPipeline();
  P.Instrument.TimePasses = true;
  CompileResult CR = optimizeDeviceModule(M, P);

  json::Value Report = buildCompileReport(P, CR);
  json::Value Parsed;
  std::string Error;
  ASSERT_TRUE(json::parse(Report.str(), Parsed, &Error)) << Error;

  const json::Value &S = Parsed.at("openmp_opt_stats");
  EXPECT_EQ(S.at("internalized_functions").asInt(),
            (int64_t)CR.Stats.InternalizedFunctions);
  EXPECT_EQ(S.at("spmdzed_kernels").asInt(),
            (int64_t)CR.Stats.SPMDzedKernels);
  EXPECT_EQ(S.at("heap_to_shared_bytes").asInt(),
            (int64_t)CR.Stats.HeapToSharedBytes);
  EXPECT_EQ(S.at("folded_exec_mode").asInt(),
            (int64_t)CR.Stats.FoldedExecMode);
}

} // namespace
