//===- tests/TestRTLAndSupport.cpp - Runtime & support tests ----------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the device runtime semantics (executed on the simulator) and
/// of the support library (casting, streams, flags, statistics).
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "frontend/OMPCodeGen.h"
#include "frontend/OMPRuntime.h"
#include "gpusim/Device.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "rtl/DeviceRTL.h"
#include "support/CommandLine.h"
#include "support/Statistic.h"
#include "support/raw_ostream.h"

#include <gtest/gtest.h>

using namespace ompgpu;

namespace {

//===----------------------------------------------------------------------===//
// Device runtime semantics
//===----------------------------------------------------------------------===//

class RTLTest : public ::testing::Test {
protected:
  IRContext Ctx;
  Module M{Ctx, "rtl"};
  GPUDevice Dev;

  KernelStats launch(Function *K, unsigned Grid, unsigned Block,
                     std::vector<uint64_t> Args,
                     RuntimeFlavor Flavor = RuntimeFlavor::Modern) {
    LaunchConfig LC;
    LC.GridDim = Grid;
    LC.BlockDim = Block;
    LC.Flavor = Flavor;
    return Dev.launchKernel(M, K, LC, Args,
                            makeOpenMPRuntimeBinding(Flavor,
                                                     Dev.getMachine()));
  }
};

TEST_F(RTLTest, LinkDeviceRTLIsIdempotent) {
  linkDeviceRTL(M);
  Function *Init = M.getFunction("__kmpc_target_init");
  ASSERT_NE(nullptr, Init);
  EXPECT_FALSE(Init->isDeclaration());
  size_t Blocks = Init->size();
  linkDeviceRTL(M);
  EXPECT_EQ(Blocks, M.getFunction("__kmpc_target_init")->size());
  EXPECT_FALSE(M.getFunction("__kmpc_parallel_51")->isDeclaration());
  EXPECT_FALSE(M.getFunction("__kmpc_target_deinit")->isDeclaration());
}

TEST_F(RTLTest, OMPQueriesInSPMDMode) {
  // In an SPMD kernel: omp_get_thread_num == hw tid, num_threads ==
  // blockDim, team/num_teams from the launch.
  linkDeviceRTL(M);
  Function *K = M.createFunction(
      "q", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}));
  K->setKernel(true);
  IRBuilder B(Ctx);
  B.setInsertPoint(K->createBlock("entry"));
  B.createCall(M.getFunction("__kmpc_target_init"),
               {B.getInt32(OMP_TGT_EXEC_MODE_SPMD), B.getInt1(false)});
  Value *Tid = B.createCall(getOrCreateRTFn(M, RTFn::GetThreadNum), {});
  Value *NT = B.createCall(getOrCreateRTFn(M, RTFn::GetNumThreads), {});
  Value *Team = B.createCall(getOrCreateRTFn(M, RTFn::GetTeamNum), {});
  Value *NTeams = B.createCall(getOrCreateRTFn(M, RTFn::GetNumTeams), {});
  Value *HwTid =
      B.createCall(getOrCreateRTFn(M, RTFn::HardwareThreadId), {});
  Value *Sum = B.createAdd(
      B.createAdd(B.createMul(NT, B.getInt32(1000000)),
                  B.createMul(Team, B.getInt32(10000))),
      B.createAdd(B.createMul(NTeams, B.getInt32(100)), Tid));
  Value *BDim =
      B.createCall(getOrCreateRTFn(M, RTFn::HardwareNumThreads), {});
  Value *Pos = B.createAdd(B.createMul(Team, BDim), HwTid);
  B.createStore(Sum, B.createGEP(Ctx.getInt32Ty(), K->getArg(0), {Pos}));
  B.createRetVoid();

  uint64_t Out = Dev.allocate(2 * 4 * 4);
  KernelStats S = launch(K, 2, 4, {Out});
  ASSERT_TRUE(S.ok()) << S.Trap;
  std::vector<int32_t> H = Dev.downloadArray<int32_t>(Out, 8);
  for (int Team2 = 0; Team2 < 2; ++Team2)
    for (int T = 0; T < 4; ++T)
      EXPECT_EQ(4 * 1000000 + Team2 * 10000 + 2 * 100 + T,
                H[Team2 * 4 + T]);
}

TEST_F(RTLTest, GenericModeQueriesAtTeamScope) {
  // At the sequential (team) scope of a generic kernel:
  // omp_get_thread_num == 0 and omp_get_num_threads == 1.
  linkDeviceRTL(M);
  Function *K = M.createFunction(
      "g", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}));
  K->setKernel(true);
  IRBuilder B(Ctx);
  BasicBlock *E = K->createBlock("entry");
  BasicBlock *User = K->createBlock("user");
  BasicBlock *Exit = K->createBlock("exit");
  B.setInsertPoint(E);
  Value *R = B.createCall(M.getFunction("__kmpc_target_init"),
                          {B.getInt32(OMP_TGT_EXEC_MODE_GENERIC),
                           B.getInt1(true)});
  Value *IsMain = B.createICmpEQ(R, B.getInt32(-1));
  B.createCondBr(IsMain, User, Exit);
  B.setInsertPoint(User);
  Value *Tid = B.createCall(getOrCreateRTFn(M, RTFn::GetThreadNum), {});
  Value *NT = B.createCall(getOrCreateRTFn(M, RTFn::GetNumThreads), {});
  Value *PL = B.createCall(getOrCreateRTFn(M, RTFn::ParallelLevel), {});
  B.createStore(Tid, B.createGEP(Ctx.getInt32Ty(), K->getArg(0),
                                 {B.getInt32(0)}));
  B.createStore(NT, B.createGEP(Ctx.getInt32Ty(), K->getArg(0),
                                {B.getInt32(1)}));
  B.createStore(PL, B.createGEP(Ctx.getInt32Ty(), K->getArg(0),
                                {B.getInt32(2)}));
  B.createCall(M.getFunction("__kmpc_target_deinit"),
               {B.getInt32(OMP_TGT_EXEC_MODE_GENERIC)});
  B.createBr(Exit);
  B.setInsertPoint(Exit);
  B.createRetVoid();

  uint64_t Out = Dev.allocate(12);
  KernelStats S = launch(K, 1, 64, {Out});
  ASSERT_TRUE(S.ok()) << S.Trap;
  std::vector<int32_t> H = Dev.downloadArray<int32_t>(Out, 3);
  EXPECT_EQ(0, H[0]); // omp_get_thread_num at team scope
  EXPECT_EQ(1, H[1]); // omp_get_num_threads outside parallel
  EXPECT_EQ(0, H[2]); // parallel level 0
}

TEST_F(RTLTest, GenericModeNumThreadsClampAtOneWavefront) {
  // In generic mode the main thread's wavefront is reserved for the state
  // machine: a block of exactly one wavefront leaves zero workers, which
  // the runtime clamps to one so parallel regions still make progress.
  // omp_get_num_threads inside the region must observe that clamp
  // directly (not just through golden files of the folded IR).
  PipelineOptions P = makeDevNoOptPipeline();
  OMPCodeGen CG(M, {P.Scheme, false});
  TargetRegionBuilder TRB(CG, "clamp", {Ctx.getPtrTy()},
                          ExecMode::Generic);
  Argument *Out = TRB.getParam(0);
  Out->setName("out");
  Function *NumThreads = getOrCreateRTFn(M, RTFn::GetNumThreads);
  TRB.emitParallel(
      {{Out, false, "out"}},
      [&](IRBuilder &LB, const TargetRegionBuilder::CaptureMap &Map) {
        Value *NT = LB.createCall(NumThreads, {}, "nt");
        LB.createStore(NT, Map.at(Out));
      });
  Function *K = TRB.finalize();
  CompileResult CR = optimizeDeviceModule(M, P);
  ASSERT_FALSE(CR.VerifyFailed) << CR.VerifyError;

  const unsigned Warp = Dev.getMachine().WarpSize;
  uint64_t OutBuf = Dev.allocate(4);

  // Block exactly one wavefront wide: clamped to a single worker.
  KernelStats S1 = launch(K, 1, Warp, {OutBuf});
  ASSERT_TRUE(S1.ok()) << S1.Trap;
  EXPECT_EQ(1, Dev.downloadArray<int32_t>(OutBuf, 1)[0]);

  // Two wavefronts: one full wavefront of workers remains.
  KernelStats S2 = launch(K, 1, 2 * Warp, {OutBuf});
  ASSERT_TRUE(S2.ok()) << S2.Trap;
  EXPECT_EQ((int32_t)Warp, Dev.downloadArray<int32_t>(OutBuf, 1)[0]);
}

TEST_F(RTLTest, AllocSharedLogicalDemandDrivesHeapAccounting) {
  // Many threads each allocating a buffer must register block-level heap
  // demand once the slab is exceeded, even though the cooperative
  // scheduler runs threads one after another.
  linkDeviceRTL(M);
  Function *K = M.createFunction("a", Ctx.getFunctionTy(Ctx.getVoidTy(),
                                                        {}));
  K->setKernel(true);
  IRBuilder B(Ctx);
  B.setInsertPoint(K->createBlock("entry"));
  B.createCall(M.getFunction("__kmpc_target_init"),
               {B.getInt32(OMP_TGT_EXEC_MODE_SPMD), B.getInt1(false)});
  // 1 KiB per thread, 64 threads = 64 KiB >> 16 KiB slab.
  Value *P = B.createCall(getOrCreateRTFn(M, RTFn::AllocShared),
                          {B.getInt64(1024)});
  B.createStore(B.getDouble(1.0), P);
  B.createCall(getOrCreateRTFn(M, RTFn::FreeShared),
               {P, B.getInt64(1024)});
  B.createRetVoid();

  KernelStats S = launch(K, 1, 64, {});
  ASSERT_TRUE(S.ok()) << S.Trap;
  EXPECT_GT(S.HeapFallbackBytes, 0u);
}

TEST_F(RTLTest, LegacyFlavorIsSlower) {
  linkDeviceRTL(M);
  Function *K = M.createFunction("t", Ctx.getFunctionTy(Ctx.getVoidTy(),
                                                        {}));
  K->setKernel(true);
  IRBuilder B(Ctx);
  B.setInsertPoint(K->createBlock("entry"));
  B.createCall(M.getFunction("__kmpc_target_init"),
               {B.getInt32(OMP_TGT_EXEC_MODE_SPMD), B.getInt1(false)});
  Value *Acc = B.getDouble(2.0);
  for (int I = 0; I < 20; ++I)
    Acc = B.createMath(MathOp::Sqrt, {Acc});
  Value *Sink = B.createAlloca(Ctx.getDoubleTy());
  B.createStore(Acc, Sink);
  B.createRetVoid();

  KernelStats Modern = launch(K, 1, 32, {}, RuntimeFlavor::Modern);
  KernelStats Legacy = launch(K, 1, 32, {}, RuntimeFlavor::Legacy);
  ASSERT_TRUE(Modern.ok() && Legacy.ok());
  EXPECT_GT(Legacy.Cycles, Modern.Cycles);
}

//===----------------------------------------------------------------------===//
// Support library
//===----------------------------------------------------------------------===//

TEST(SupportCasting, IsaCastDynCast) {
  IRContext Ctx;
  Value *CI = Ctx.getInt32(5);
  EXPECT_TRUE(isa<ConstantInt>(CI));
  EXPECT_TRUE(isa<Constant>(CI));
  EXPECT_FALSE(isa<ConstantFP>(CI));
  EXPECT_EQ(5, cast<ConstantInt>(CI)->getValue());
  EXPECT_EQ(nullptr, dyn_cast<ConstantFP>(CI));
  EXPECT_NE(nullptr, dyn_cast<Constant>(CI));
  Value *Null = nullptr;
  EXPECT_EQ(nullptr, dyn_cast_or_null<ConstantInt>(Null));
  EXPECT_FALSE(isa_and_nonnull<ConstantInt>(Null));
}

TEST(SupportStream, FormatsValues) {
  std::string S;
  raw_string_ostream OS(S);
  OS << "x=" << 42 << " y=" << -7 << " d=" << 2.5 << " b=" << true << '!';
  EXPECT_EQ("x=42 y=-7 d=2.5 b=true!", S);
  S.clear();
  OS.indent(4) << "z";
  EXPECT_EQ("    z", S);
  EXPECT_EQ("123", toString(123));
}

TEST(SupportStream, FormatBuf) {
  EXPECT_EQ("a= 1 b=2.50", formatBuf("a=%2d b=%.2f", 1, 2.5));
}

TEST(SupportCommandLine, ParsesRegisteredOptions) {
  static cl::opt<bool> TestFlag("test-flag-xyz", "test", false);
  static cl::opt<int64_t> TestNum("test-num-xyz", "test", 7);
  const char *Argv[] = {"prog", "-test-flag-xyz", "--test-num-xyz=42",
                        "positional"};
  std::vector<std::string> Rest = cl::parseCommandLine(4, Argv);
  EXPECT_TRUE((bool)TestFlag);
  EXPECT_EQ(42, (int64_t)TestNum);
  ASSERT_EQ(2u, Rest.size());
  EXPECT_EQ("positional", Rest[1]);
  EXPECT_NE(nullptr, cl::findOption("test-flag-xyz"));
  EXPECT_EQ(nullptr, cl::findOption("no-such-option"));
}

TEST(SupportStatistic, CountsAndResets) {
#define DEBUG_TYPE "test-stats"
  OMPGPU_STATISTIC(TestCounter, "A test counter");
#undef DEBUG_TYPE
  uint64_t Before = TestCounter.getValue();
  ++TestCounter;
  TestCounter += 4;
  EXPECT_EQ(Before + 5, TestCounter.getValue());
  std::string S;
  raw_string_ostream OS(S);
  StatisticRegistry::get().print(OS);
  EXPECT_NE(std::string::npos, S.find("test-stats"));
}

} // namespace
