//===- tests/TestMultiDevice.cpp - DeviceGroup + partitioned CG ------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the multi-device subsystem (docs/multi-device.md): the group
/// spec round-trips and rejects a hostile corpus with typed errors, the
/// host-staged double hop makes a peer-link spec an observable win, the
/// bulk-synchronous makespan model is deterministic, and — the headline
/// property — partitioned CG produces bit-identical residual trajectories
/// and solutions for 1, 2, and 4 devices, for both matrix formats, for a
/// heterogeneous group, and under any completion-order perturbation.
///
//===----------------------------------------------------------------------===//

#include "support/FileSystem.h"
#include "workloads/CGSolver.h"

#include <gtest/gtest.h>

#include <bit>

using namespace ompgpu;

namespace {

std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "ompgpu-mdev-" + Name;
  for (const std::string &F : listDirectoryFiles(Dir))
    (void)removeFile(Dir + "/" + F);
  EXPECT_FALSE(ensureDirectory(Dir));
  return Dir;
}

DeviceGroupSpec v100Group(unsigned N) {
  return homogeneousGroupSpec(*lookupArch("v100"), N);
}

CGOptions smallCG(unsigned Devices) {
  CGOptions O;
  O.Group = v100Group(Devices);
  O.Pipeline = makeDevPipeline();
  O.Rows = 512;
  O.Band = 4;
  O.Cells = 16;
  O.MaxIters = 6;
  O.RelTol = 1e-10;
  return O;
}

//===----------------------------------------------------------------------===//
// Group spec: schema, validation, hostile corpus
//===----------------------------------------------------------------------===//

TEST(DeviceGroupSpecJSON, RoundTripIsByteIdentical) {
  DeviceGroupSpec S = v100Group(2);
  S.HasPeerLink = true;
  S.PeerBytesPerCycle = 40.0;
  S.PeerLatencyCycles = 900;
  std::string Text = deviceGroupSpecToJSON(S).str();
  Expected<DeviceGroupSpec> P = parseDeviceGroupSpecText(Text);
  ASSERT_TRUE((bool)P) << P.message();
  EXPECT_EQ(deviceGroupSpecToJSON(*P).str(), Text);
  EXPECT_EQ(P->size(), 2u);
  EXPECT_TRUE(P->isHomogeneous());
  EXPECT_TRUE(P->HasPeerLink);
}

TEST(DeviceGroupSpecJSON, RegistryNamesAndHeterogeneous) {
  Expected<DeviceGroupSpec> P = parseDeviceGroupSpecText(
      R"({"schema_version": 1, "name": "mixed",
          "devices": ["v100", "mi100"]})");
  ASSERT_TRUE((bool)P) << P.message();
  EXPECT_EQ(P->size(), 2u);
  EXPECT_FALSE(P->isHomogeneous());
  EXPECT_EQ(P->Devices[0].Name, "v100");
  EXPECT_EQ(P->Devices[1].Name, "mi100");
  EXPECT_FALSE(P->HasPeerLink);
}

TEST(DeviceGroupSpecJSON, HostileCorpusYieldsTypedErrors) {
  auto Reject = [](const std::string &Text, const std::string &Needle) {
    Expected<DeviceGroupSpec> P = parseDeviceGroupSpecText(Text);
    ASSERT_FALSE((bool)P) << Text;
    EXPECT_NE(P.message().find(Needle), std::string::npos) << P.message();
  };
  Reject("{", "group spec");
  Reject(R"({"schema_version": 99, "name": "x", "devices": ["v100"]})",
         "schema_version");
  Reject(R"({"name": "x", "devices": ["v100"]})", "schema_version");
  Reject(R"({"schema_version": 1, "name": "x", "devices": []})", "devices");
  Reject(R"({"schema_version": 1, "name": "x", "devices": ["voodoo2"]})",
         "voodoo2");
  Reject(R"({"schema_version": 1, "name": "x", "devices": ["v100"],
             "bogus": 1})",
         "bogus");
  Reject(R"({"schema_version": 1, "name": "x", "devices": ["v100"],
             "peer_link": {"bytes_per_cycle": 40.0}})",
         "latency_cycles");
  Reject(R"({"schema_version": 1, "name": "x", "devices": ["v100"],
             "peer_link": {"bytes_per_cycle": 0.0,
                           "latency_cycles": 10}})",
         "bytes_per_cycle");
}

TEST(DeviceGroupSpecJSON, ValidateRules) {
  DeviceGroupSpec S = v100Group(2);
  S.Name.clear();
  EXPECT_TRUE((bool)S.validate());

  S = v100Group(1);
  S.Devices.clear();
  EXPECT_TRUE((bool)S.validate());

  S = v100Group(1);
  S.Devices.resize(MaxGroupDevices + 1, S.Devices[0]);
  EXPECT_TRUE((bool)S.validate());

  S = v100Group(2);
  S.Devices[1].Machine.HostLinkBytesPerCycle = 0.0;
  Error E = S.validate();
  ASSERT_TRUE((bool)E);
  EXPECT_NE(E.message().find("devices[1]"), std::string::npos)
      << E.message();

  S = v100Group(2);
  S.HasPeerLink = true;
  S.PeerBytesPerCycle = -1.0;
  S.PeerLatencyCycles = 10;
  EXPECT_TRUE((bool)S.validate());
}

TEST(DeviceGroupSpecJSON, ResolveFromDisk) {
  std::string Dir = freshDir("resolve");
  std::string Path = Dir + "/group.json";
  ASSERT_FALSE((bool)writeTextFile(Path,
                                   deviceGroupSpecToJSON(v100Group(2)).str()));
  Expected<DeviceGroupSpec> P = resolveDeviceGroupSpec(Path);
  ASSERT_TRUE((bool)P) << P.message();
  EXPECT_EQ(P->size(), 2u);
  EXPECT_FALSE((bool)resolveDeviceGroupSpec(Dir + "/absent.json"));
  ASSERT_FALSE((bool)writeTextFile(Dir + "/broken.json", "{nope"));
  EXPECT_FALSE((bool)resolveDeviceGroupSpec(Dir + "/broken.json"));
}

//===----------------------------------------------------------------------===//
// Link model: host-staged double hop vs direct peer link
//===----------------------------------------------------------------------===//

TEST(DeviceGroupLinks, PeerLinkBeatsHostStaging) {
  const uint64_t Bytes = 1 << 20;

  DeviceGroup Staged(v100Group(2));
  Staged.chargePeerTransfer(0, 1, Bytes);
  uint64_t StagedCycles = Staged.stats().MakespanCycles;
  EXPECT_EQ(Staged.stats().HostLinkBytes, 2 * Bytes); // out + in
  EXPECT_EQ(Staged.stats().PeerBytes, 0u);

  DeviceGroupSpec WithPeer = v100Group(2);
  WithPeer.HasPeerLink = true;
  WithPeer.PeerBytesPerCycle = 40.0; // NVLink-ish: ~3.5x the host link
  WithPeer.PeerLatencyCycles = 1000;
  DeviceGroup Peer(WithPeer);
  Peer.chargePeerTransfer(0, 1, Bytes);
  uint64_t PeerCycles = Peer.stats().MakespanCycles;
  EXPECT_EQ(Peer.stats().PeerBytes, Bytes);
  EXPECT_EQ(Peer.stats().HostLinkBytes, 0u);

  EXPECT_LT(PeerCycles, StagedCycles);
}

TEST(DeviceGroupLinks, MakespanIsSlowestQueuePerPhase) {
  DeviceGroup G(v100Group(2));
  G.chargeHostTransfer(0, 1000, /*ToDevice=*/true);
  G.chargeHostTransfer(1, 1000, /*ToDevice=*/true);
  const DeviceGroupStats &S = G.stats();
  // Host-link transfers serialize on the shared link: each hop is its own
  // frontier phase, so the makespan is the sum of both hops.
  EXPECT_EQ(S.MakespanCycles, S.HostLinkCycles);
  EXPECT_EQ(S.SumDeviceCycles, S.MakespanCycles);
  EXPECT_EQ(S.Devices[0].BytesToDevice, 1000u);
  EXPECT_EQ(S.Devices[1].BytesToDevice, 1000u);
}

//===----------------------------------------------------------------------===//
// Partitioning
//===----------------------------------------------------------------------===//

TEST(RowPartitionTest, CellAlignedAndExhaustive) {
  RowPartition P = makeRowPartition(1000, 3, 16);
  EXPECT_EQ(P.CellSize, 63u); // ceil(1000 / 16)
  uint32_t Rows = 0;
  unsigned Cells = 0;
  for (const DeviceChunk &C : P.Chunks) {
    EXPECT_EQ(C.RowLo, std::min<uint64_t>((uint64_t)C.CellLo * P.CellSize,
                                          P.N));
    Rows += C.rows();
    Cells += C.cells();
  }
  EXPECT_EQ(Rows, 1000u);
  EXPECT_EQ(Cells, 16u);
  EXPECT_EQ(P.Chunks.front().RowLo, 0u);
  EXPECT_EQ(P.Chunks.back().RowHi, 1000u);

  // More devices than cells: trailing devices hold empty chunks.
  RowPartition Q = makeRowPartition(64, 8, 4);
  EXPECT_EQ(Q.Chunks[7].rows(), 0u);
  EXPECT_EQ(Q.Chunks[0].rows() + Q.Chunks[1].rows() + Q.Chunks[2].rows() +
                Q.Chunks[3].rows(),
            64u);
}

//===----------------------------------------------------------------------===//
// Partitioned CG: the bit-exactness contract
//===----------------------------------------------------------------------===//

TEST(MultiDeviceCG, DeviceCountInvariantResidualsCRS) {
  CGResult Ref = runCG(smallCG(1));
  ASSERT_TRUE(Ref.Trap.empty()) << Ref.Trap;
  ASSERT_GT(Ref.Iterations, 0u);

  for (unsigned D : {2u, 4u}) {
    CGResult R = runCG(smallCG(D));
    ASSERT_TRUE(R.Trap.empty()) << R.Trap;
    EXPECT_EQ(R.Iterations, Ref.Iterations) << D << " devices";
    ASSERT_EQ(R.Residuals.size(), Ref.Residuals.size());
    for (size_t I = 0; I != Ref.Residuals.size(); ++I)
      EXPECT_EQ(std::bit_cast<uint64_t>(R.Residuals[I]),
                std::bit_cast<uint64_t>(Ref.Residuals[I]))
          << D << " devices, iteration " << I;
    ASSERT_EQ(R.X.size(), Ref.X.size());
    EXPECT_EQ(R.resultHash(), Ref.resultHash()) << D << " devices";
  }
}

TEST(MultiDeviceCG, DeviceCountInvariantResidualsELL) {
  CGOptions O = smallCG(1);
  O.Fmt = CGFormat::ELL;
  CGResult Ref = runCG(O);
  ASSERT_TRUE(Ref.Trap.empty()) << Ref.Trap;

  O.Group = v100Group(2);
  CGResult R = runCG(O);
  ASSERT_TRUE(R.Trap.empty()) << R.Trap;
  EXPECT_EQ(R.resultHash(), Ref.resultHash());
}

TEST(MultiDeviceCG, HeterogeneousGroupIsBitExactToo) {
  CGResult Ref = runCG(smallCG(1));
  ASSERT_TRUE(Ref.Trap.empty()) << Ref.Trap;

  CGOptions O = smallCG(2);
  O.Group.Name = "v100-mi100";
  O.Group.Devices[1] = *lookupArch("mi100");
  CGResult R = runCG(O);
  ASSERT_TRUE(R.Trap.empty()) << R.Trap;
  EXPECT_EQ(R.resultHash(), Ref.resultHash());
  // Two architectures, two compiled modules.
  EXPECT_EQ(R.Compiles.size(), 2u);
  EXPECT_NE(R.Compiles[0].ArchName, R.Compiles[1].ArchName);
}

TEST(MultiDeviceCG, CompletionPerturbationNeverChangesResults) {
  CGResult Ref = runCG(smallCG(2));
  ASSERT_TRUE(Ref.Trap.empty()) << Ref.Trap;
  for (uint64_t Seed : {7ull, 1234567ull}) {
    CGOptions O = smallCG(2);
    O.PerturbSeed = Seed;
    CGResult R = runCG(O);
    ASSERT_TRUE(R.Trap.empty()) << R.Trap;
    // The perturbation may move the makespan but never a result bit.
    EXPECT_EQ(R.resultHash(), Ref.resultHash()) << "seed " << Seed;
    EXPECT_GE(R.Stats.MakespanCycles, Ref.Stats.MakespanCycles);
  }
}

TEST(MultiDeviceCG, MoreDevicesThanCellsLeavesIdleDevicesCorrect) {
  CGOptions O = smallCG(1);
  O.Cells = 2;
  CGResult Ref = runCG(O);
  ASSERT_TRUE(Ref.Trap.empty()) << Ref.Trap;

  O.Group = v100Group(4); // devices 2 and 3 own no cells
  CGResult R = runCG(O);
  ASSERT_TRUE(R.Trap.empty()) << R.Trap;
  EXPECT_EQ(R.resultHash(), Ref.resultHash());
  EXPECT_EQ(R.Stats.Devices[3].Launches, 0u);
}

TEST(MultiDeviceCG, RunIsDeterministic) {
  CGResult A = runCG(smallCG(2));
  CGResult B = runCG(smallCG(2));
  ASSERT_TRUE(A.Trap.empty()) << A.Trap;
  EXPECT_EQ(A.resultHash(), B.resultHash());
  EXPECT_EQ(A.Stats.MakespanCycles, B.Stats.MakespanCycles);
  EXPECT_EQ(A.Stats.HostLinkBytes, B.Stats.HostLinkBytes);
}

//===----------------------------------------------------------------------===//
// Group statistics and remarks
//===----------------------------------------------------------------------===//

TEST(MultiDeviceCG, StatsAndRemarksAreCoherent) {
  CGOptions O = smallCG(4);
  O.Rows = 2048;
  O.Band = 8;
  CGResult R = runCG(O);
  ASSERT_TRUE(R.Trap.empty()) << R.Trap;

  const DeviceGroupStats &S = R.Stats;
  ASSERT_EQ(S.Devices.size(), 4u);
  EXPECT_GT(S.MakespanCycles, 0u);
  // Four queues drained in parallel: the critical path is shorter than
  // the single-queue equivalent, but never shorter than 1/4 of it.
  EXPECT_LT(S.MakespanCycles, S.SumDeviceCycles);
  EXPECT_GE(S.MakespanCycles * 4, S.SumDeviceCycles);
  EXPECT_GT(S.SyncPoints, 0u);
  EXPECT_GT(S.HostLinkBytes, 0u);
  EXPECT_GE(S.loadImbalance(), 1.0);
  EXPECT_GT(S.communicationFraction(), 0.0);
  EXPECT_LT(S.communicationFraction(), 1.0);
  for (const DeviceGroupStats::PerDevice &PD : S.Devices) {
    EXPECT_EQ(PD.Arch, "v100");
    EXPECT_GT(PD.Launches, 0u);
    EXPECT_GE(PD.BusyCycles, PD.KernelCycles);
  }

  bool Saw250 = false, Saw251 = false;
  for (const Remark &RM : R.Remarks) {
    Saw250 |= RM.Id == RemarkId::OMP250;
    Saw251 |= RM.Id == RemarkId::OMP251;
  }
  EXPECT_TRUE(Saw250);
  EXPECT_TRUE(Saw251);

  json::Value J = S.toJSON();
  ASSERT_TRUE(J.isObject());
  EXPECT_EQ(J.find("devices")->size(), 4u);
  EXPECT_TRUE(J.find("makespan_cycles")->isNumber());
}

TEST(MultiDeviceCG, MultiDeviceScalesAComputeShape) {
  // The canonical compute-dominated bench shape (cgMatrixShape), capped
  // at one iteration to keep the tier-1 runtime small: per-chunk kernel
  // cycles shrink 4x while the exchange cost stays fixed, so four
  // devices must halve the makespan — the bench/cg CI gate's property.
  Expected<CGOptions> Shape = cgMatrixShape("compute");
  ASSERT_TRUE((bool)Shape) << Shape.message();
  CGOptions O = *Shape;
  O.Group = v100Group(1);
  O.Pipeline = makeDevPipeline();
  O.MaxIters = 1;
  CGResult One = runCG(O);
  ASSERT_TRUE(One.Trap.empty()) << One.Trap;

  O.Group = v100Group(4);
  CGResult Four = runCG(O);
  ASSERT_TRUE(Four.Trap.empty()) << Four.Trap;
  EXPECT_EQ(Four.resultHash(), One.resultHash());
  EXPECT_GT((double)One.Stats.MakespanCycles,
            2.0 * (double)Four.Stats.MakespanCycles);

  EXPECT_FALSE((bool)cgMatrixShape("voodoo"));
}

} // namespace
