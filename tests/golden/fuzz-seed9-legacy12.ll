; recipe: seed=9 generic teams=1x64 trip=8 shape=flat/1 [priv,wl]
; module 'fuzz'
define void @fuzz_kernel(ptr %in, ptr %out, i32 %n) kernel(generic) {
entry:
  %exec_tid = call i32 @__kmpc_target_init(i32 1, i1 0)
  %thread.is_main = icmp eq i32 %exec_tid, -1
  br i1 %thread.is_main, label %user_code.entry, label %worker_state_machine.begin

user_code.entry:
  %team_priv = alloca double
  %n.fp = sitofp i32 %n to double
  %0 = fmul double %n.fp, 0.5
  store double %0, ptr addrspace(5) %team_priv
  %team_priv.val = load double, ptr addrspace(5) %team_priv
  %captured_frame = call ptr @__kmpc_data_sharing_coalesced_push_stack(i64 40, i32 0)
  %frame.trip_count = getelementptr {i32, ptr, ptr, i32, double}, ptr %captured_frame, i64 0, i64 0
  store i32 8, ptr %frame.trip_count
  %frame.in = getelementptr {i32, ptr, ptr, i32, double}, ptr %captured_frame, i64 0, i64 1
  store ptr %in, ptr %frame.in
  %frame.out = getelementptr {i32, ptr, ptr, i32, double}, ptr %captured_frame, i64 0, i64 2
  store ptr %out, ptr %frame.out
  %frame.n = getelementptr {i32, ptr, ptr, i32, double}, ptr %captured_frame, i64 0, i64 3
  store i32 %n, ptr %frame.n
  %frame.team_priv = getelementptr {i32, ptr, ptr, i32, double}, ptr %captured_frame, i64 0, i64 4
  store double %team_priv.val, ptr %frame.team_priv
  %pl = call i32 @__kmpc_parallel_level()
  %nested_parallel = icmp sgt i32 %pl, 0
  br i1 %nested_parallel, label %parallel.then, label %parallel.else

exit:
  ret void

worker_state_machine.begin:
  %work_fn.addr = alloca ptr
  br label %worker.await

parallel.then:
  call void @fuzz_kernel__omp_outlined__0_wrapper(ptr %captured_frame)
  br label %parallel.join

parallel.else:
  call void @__kmpc_parallel_51(ptr @fuzz_kernel__omp_outlined__0_wrapper, ptr %captured_frame, i32 -1)
  br label %parallel.join

parallel.join:
  call void @__kmpc_data_sharing_pop_stack(ptr %captured_frame)
  call void @__kmpc_target_deinit(i32 1)
  br label %exit

worker.await:
  call void @__kmpc_barrier_simple_spmd()
  %is_active = call i1 @__kmpc_kernel_parallel(ptr addrspace(5) %work_fn.addr)
  %work_fn = load ptr, ptr addrspace(5) %work_fn.addr
  %no_more_work = icmp eq ptr %work_fn, null
  br i1 %no_more_work, label %exit, label %worker.active_check

worker.active_check:
  br i1 %is_active, label %worker.check, label %worker.done

worker.done:
  call void @__kmpc_kernel_end_parallel()
  call void @__kmpc_barrier_simple_spmd()
  br label %worker.await

worker.check:
  %is.fuzz_kernel__omp_outlined__0_wrapper = icmp eq ptr %work_fn, @fuzz_kernel__omp_outlined__0_wrapper
  br i1 %is.fuzz_kernel__omp_outlined__0_wrapper, label %worker.exec, label %worker.check.1

worker.exec:
  %work_args = call ptr @__kmpc_kernel_get_args()
  call void @fuzz_kernel__omp_outlined__0_wrapper(ptr %work_args)
  br label %worker.done

worker.check.1:
  %work_args = call ptr @__kmpc_kernel_get_args()
  call void %work_fn(ptr %work_args)
  br label %worker.done
}

declare i32 @__kmpc_target_init(i32 %0, i1 %1) convergent

define internal void @fuzz_kernel__omp_outlined__0_wrapper(ptr %captured_args) {
entry:
  %cap.trip_count.addr = getelementptr {i32, ptr, ptr, i32, double}, ptr %captured_args, i64 0, i64 0
  %cap.trip_count = load i32, ptr %cap.trip_count.addr
  %cap.in.addr = getelementptr {i32, ptr, ptr, i32, double}, ptr %captured_args, i64 0, i64 1
  %cap.in = load ptr, ptr %cap.in.addr
  %cap.out.addr = getelementptr {i32, ptr, ptr, i32, double}, ptr %captured_args, i64 0, i64 2
  %cap.out = load ptr, ptr %cap.out.addr
  %cap.n.addr = getelementptr {i32, ptr, ptr, i32, double}, ptr %captured_args, i64 0, i64 3
  %cap.n = load i32, ptr %cap.n.addr
  %cap.team_priv.addr = getelementptr {i32, ptr, ptr, i32, double}, ptr %captured_args, i64 0, i64 4
  %cap.team_priv = load double, ptr %cap.team_priv.addr
  %worker_local = call ptr @__kmpc_data_sharing_coalesced_push_stack(i64 8, i32 1)
  %em = call i1 @__kmpc_is_spmd_exec_mode()
  br i1 %em, label %omp_tid.then, label %omp_tid.else

omp_tid.then:
  %hw_tid = call i32 @__kmpc_get_hardware_thread_id_in_block()
  br label %omp_tid.join

omp_tid.else:
  %pl = call i32 @__kmpc_parallel_level()
  %in_parallel = icmp sgt i32 %pl, 0
  br i1 %in_parallel, label %omp_tid.gen.then, label %omp_tid.gen.else

omp_tid.join:
  %omp_tid.phi = phi i32 [%hw_tid, label %omp_tid.then], [%omp_tid.gen.phi, label %omp_tid.gen.join]
  %em = call i1 @__kmpc_is_spmd_exec_mode()
  br i1 %em, label %omp_nthreads.then, label %omp_nthreads.else

omp_tid.gen.then:
  %hw_tid = call i32 @__kmpc_get_hardware_thread_id_in_block()
  br label %omp_tid.gen.join

omp_tid.gen.else:
  br label %omp_tid.gen.join

omp_tid.gen.join:
  %omp_tid.gen.phi = phi i32 [%hw_tid, label %omp_tid.gen.then], [0, label %omp_tid.gen.else]
  br label %omp_tid.join

omp_nthreads.then:
  %hw_nthreads = call i32 @__kmpc_get_hardware_num_threads_in_block()
  br label %omp_nthreads.join

omp_nthreads.else:
  %pl = call i32 @__kmpc_parallel_level()
  %in_parallel = icmp sgt i32 %pl, 0
  br i1 %in_parallel, label %omp_nthreads.gen.then, label %omp_nthreads.gen.else

omp_nthreads.join:
  %omp_nthreads.phi = phi i32 [%hw_nthreads, label %omp_nthreads.then], [%omp_nthreads.gen.phi, label %omp_nthreads.gen.join]
  br label %parallel_for.header

omp_nthreads.gen.then:
  %hw_nthreads = call i32 @__kmpc_get_hardware_num_threads_in_block()
  %warpsize = call i32 @__kmpc_get_warp_size()
  %par_nthreads.raw = sub i32 %hw_nthreads, %warpsize
  %has_workers = icmp sgt i32 %par_nthreads.raw, 0
  br i1 %has_workers, label %par_nthreads.then, label %par_nthreads.else

omp_nthreads.gen.else:
  br label %omp_nthreads.gen.join

omp_nthreads.gen.join:
  %omp_nthreads.gen.phi = phi i32 [%par_nthreads.phi, label %par_nthreads.join], [1, label %omp_nthreads.gen.else]
  br label %omp_nthreads.join

par_nthreads.then:
  br label %par_nthreads.join

par_nthreads.else:
  br label %par_nthreads.join

par_nthreads.join:
  %par_nthreads.phi = phi i32 [%par_nthreads.raw, label %par_nthreads.then], [1, label %par_nthreads.else]
  br label %omp_nthreads.gen.join

parallel_for.header:
  %parallel_for.iv = phi i32 [%omp_tid.phi, label %omp_nthreads.join], [%parallel_for.next, label %parallel_for.body]
  %parallel_for.cond = icmp slt i32 %parallel_for.iv, %cap.trip_count
  br i1 %parallel_for.cond, label %parallel_for.body, label %parallel_for.exit

parallel_for.body:
  %in.addr = getelementptr double, ptr %cap.in, i32 %parallel_for.iv
  %x = load double, ptr %in.addr
  %n.fp = sitofp i32 %cap.n to double
  %0 = fsub double %x, -1.75
  %1 = fmul double %0, -1.75
  %2 = fadd double %1, %n.fp
  %3 = fadd double %2, %cap.team_priv
  store double %3, ptr %worker_local
  %worker_local.val = load double, ptr %worker_local
  %4 = fadd double %worker_local.val, 1.5
  %out.addr = getelementptr double, ptr %cap.out, i32 %parallel_for.iv
  store double %4, ptr %out.addr
  %parallel_for.next = add i32 %parallel_for.iv, %omp_nthreads.phi
  br label %parallel_for.header

parallel_for.exit:
  call void @__kmpc_data_sharing_pop_stack(ptr %worker_local)
  ret void
}

declare ptr @__kmpc_data_sharing_coalesced_push_stack(i64 %0, i32 %1) nosync nofree willreturn

declare void @__kmpc_data_sharing_pop_stack(ptr %0) nosync willreturn

declare i32 @__kmpc_parallel_level() readnone nosync nofree willreturn

declare void @__kmpc_parallel_51(ptr %0, ptr %1, i32 %2) convergent

declare i1 @__kmpc_is_spmd_exec_mode() readnone nosync nofree willreturn

declare i32 @__kmpc_get_hardware_thread_id_in_block() readnone nosync nofree willreturn

declare i32 @__kmpc_get_hardware_num_threads_in_block() readnone nosync nofree willreturn

declare i32 @__kmpc_get_warp_size() readnone nosync nofree willreturn

declare void @__kmpc_target_deinit(i32 %0) convergent

declare void @__kmpc_barrier_simple_spmd() nofree willreturn convergent

declare i1 @__kmpc_kernel_parallel(ptr %0) convergent

declare ptr @__kmpc_kernel_get_args() convergent

declare void @__kmpc_kernel_end_parallel() convergent
