; recipe: seed=2 spmd teams=1x32 trip=32 shape=combined/1 [nested]
; module 'fuzz'
define void @fuzz_kernel(ptr %in, ptr %out, i32 %n) kernel(spmd) {
entry:
  %exec_tid = call i32 @__kmpc_target_init(i32 2, i1 0)
  %thread.is_main = icmp eq i32 %exec_tid, -1
  br i1 %thread.is_main, label %user_code.entry, label %exit

user_code.entry:
  %captured_frame = alloca {i32, ptr, ptr, i32}
  %frame.trip_count = getelementptr {i32, ptr, ptr, i32}, ptr addrspace(5) %captured_frame, i64 0, i64 0
  store i32 32, ptr addrspace(5) %frame.trip_count
  %frame.in = getelementptr {i32, ptr, ptr, i32}, ptr addrspace(5) %captured_frame, i64 0, i64 1
  store ptr %in, ptr addrspace(5) %frame.in
  %frame.out = getelementptr {i32, ptr, ptr, i32}, ptr addrspace(5) %captured_frame, i64 0, i64 2
  store ptr %out, ptr addrspace(5) %frame.out
  %frame.n = getelementptr {i32, ptr, ptr, i32}, ptr addrspace(5) %captured_frame, i64 0, i64 3
  store i32 %n, ptr addrspace(5) %frame.n
  %pl = call i32 @__kmpc_parallel_level()
  %nested_parallel = icmp sgt i32 %pl, 0
  br i1 %nested_parallel, label %parallel.then, label %parallel.else

exit:
  ret void

parallel.then:
  call void @fuzz_kernel__omp_outlined__0_wrapper(ptr addrspace(5) %captured_frame)
  br label %parallel.join

parallel.else:
  call void @__kmpc_parallel_51(ptr @fuzz_kernel__omp_outlined__0_wrapper, ptr addrspace(5) %captured_frame, i32 -1)
  br label %parallel.join

parallel.join:
  call void @__kmpc_target_deinit(i32 2)
  br label %exit
}

declare i32 @__kmpc_target_init(i32 %0, i1 %1) convergent

define internal void @fuzz_nested_wrapper(ptr %captured_args) {
entry:
  %0 = getelementptr {ptr, i32, double}, ptr %captured_args, i64 0, i64 0
  %nested.out = load ptr, ptr %0
  %1 = getelementptr {ptr, i32, double}, ptr %captured_args, i64 0, i64 1
  %nested.i = load i32, ptr %1
  %2 = getelementptr {ptr, i32, double}, ptr %captured_args, i64 0, i64 2
  %nested.x = load double, ptr %2
  %nested.elem = getelementptr double, ptr %nested.out, i32 %nested.i
  %nested.cur = load double, ptr %nested.elem
  %3 = fmul double %nested.cur, 2
  %4 = fadd double %3, %nested.x
  store double %4, ptr %nested.elem
  ret void
}

define internal void @fuzz_kernel__omp_outlined__0_wrapper(ptr %captured_args) {
entry:
  %cap.trip_count.addr = getelementptr {i32, ptr, ptr, i32}, ptr %captured_args, i64 0, i64 0
  %cap.trip_count = load i32, ptr %cap.trip_count.addr
  %cap.in.addr = getelementptr {i32, ptr, ptr, i32}, ptr %captured_args, i64 0, i64 1
  %cap.in = load ptr, ptr %cap.in.addr
  %cap.out.addr = getelementptr {i32, ptr, ptr, i32}, ptr %captured_args, i64 0, i64 2
  %cap.out = load ptr, ptr %cap.out.addr
  %cap.n.addr = getelementptr {i32, ptr, ptr, i32}, ptr %captured_args, i64 0, i64 3
  %cap.n = load i32, ptr %cap.n.addr
  %nested_frame = alloca {ptr, i32, double}
  %em = call i1 @__kmpc_is_spmd_exec_mode()
  br i1 %em, label %omp_tid.then, label %omp_tid.else

omp_tid.then:
  %hw_tid = call i32 @__kmpc_get_hardware_thread_id_in_block()
  br label %omp_tid.join

omp_tid.else:
  %pl = call i32 @__kmpc_parallel_level()
  %in_parallel = icmp sgt i32 %pl, 0
  br i1 %in_parallel, label %omp_tid.gen.then, label %omp_tid.gen.else

omp_tid.join:
  %omp_tid.phi = phi i32 [%hw_tid, label %omp_tid.then], [%omp_tid.gen.phi, label %omp_tid.gen.join]
  %em = call i1 @__kmpc_is_spmd_exec_mode()
  br i1 %em, label %omp_nthreads.then, label %omp_nthreads.else

omp_tid.gen.then:
  %hw_tid = call i32 @__kmpc_get_hardware_thread_id_in_block()
  br label %omp_tid.gen.join

omp_tid.gen.else:
  br label %omp_tid.gen.join

omp_tid.gen.join:
  %omp_tid.gen.phi = phi i32 [%hw_tid, label %omp_tid.gen.then], [0, label %omp_tid.gen.else]
  br label %omp_tid.join

omp_nthreads.then:
  %hw_nthreads = call i32 @__kmpc_get_hardware_num_threads_in_block()
  br label %omp_nthreads.join

omp_nthreads.else:
  %pl = call i32 @__kmpc_parallel_level()
  %in_parallel = icmp sgt i32 %pl, 0
  br i1 %in_parallel, label %omp_nthreads.gen.then, label %omp_nthreads.gen.else

omp_nthreads.join:
  %omp_nthreads.phi = phi i32 [%hw_nthreads, label %omp_nthreads.then], [%omp_nthreads.gen.phi, label %omp_nthreads.gen.join]
  %team = call i32 @omp_get_team_num()
  %nteams = call i32 @omp_get_num_teams()
  %team_base = mul i32 %team, %omp_nthreads.phi
  %league_tid = add i32 %team_base, %omp_tid.phi
  %league_size = mul i32 %nteams, %omp_nthreads.phi
  br label %parallel_for.header

omp_nthreads.gen.then:
  %hw_nthreads = call i32 @__kmpc_get_hardware_num_threads_in_block()
  %warpsize = call i32 @__kmpc_get_warp_size()
  %par_nthreads.raw = sub i32 %hw_nthreads, %warpsize
  %has_workers = icmp sgt i32 %par_nthreads.raw, 0
  br i1 %has_workers, label %par_nthreads.then, label %par_nthreads.else

omp_nthreads.gen.else:
  br label %omp_nthreads.gen.join

omp_nthreads.gen.join:
  %omp_nthreads.gen.phi = phi i32 [%par_nthreads.phi, label %par_nthreads.join], [1, label %omp_nthreads.gen.else]
  br label %omp_nthreads.join

par_nthreads.then:
  br label %par_nthreads.join

par_nthreads.else:
  br label %par_nthreads.join

par_nthreads.join:
  %par_nthreads.phi = phi i32 [%par_nthreads.raw, label %par_nthreads.then], [1, label %par_nthreads.else]
  br label %omp_nthreads.gen.join

parallel_for.header:
  %parallel_for.iv = phi i32 [%league_tid, label %omp_nthreads.join], [%parallel_for.next, label %fuzz_nested.join]
  %parallel_for.cond = icmp slt i32 %parallel_for.iv, %cap.trip_count
  br i1 %parallel_for.cond, label %parallel_for.body, label %parallel_for.exit

parallel_for.body:
  %in.addr = getelementptr double, ptr %cap.in, i32 %parallel_for.iv
  %x = load double, ptr %in.addr
  %n.fp = sitofp i32 %cap.n to double
  %0 = fsub double %x, %x
  %1 = fsub double %0, -1
  %2 = fadd double %1, 2
  %out.addr = getelementptr double, ptr %cap.out, i32 %parallel_for.iv
  store double %2, ptr %out.addr
  %nested_frame.out = getelementptr {ptr, i32, double}, ptr addrspace(5) %nested_frame, i64 0, i64 0
  store ptr %cap.out, ptr addrspace(5) %nested_frame.out
  %nested_frame.i = getelementptr {ptr, i32, double}, ptr addrspace(5) %nested_frame, i64 0, i64 1
  store i32 %parallel_for.iv, ptr addrspace(5) %nested_frame.i
  %nested_frame.x = getelementptr {ptr, i32, double}, ptr addrspace(5) %nested_frame, i64 0, i64 2
  store double %x, ptr addrspace(5) %nested_frame.x
  %pl = call i32 @__kmpc_parallel_level()
  %in.parallel = icmp sgt i32 %pl, 0
  br i1 %in.parallel, label %fuzz_nested.then, label %fuzz_nested.else

parallel_for.exit:
  ret void

fuzz_nested.then:
  call void @fuzz_nested_wrapper(ptr addrspace(5) %nested_frame)
  br label %fuzz_nested.join

fuzz_nested.else:
  call void @__kmpc_parallel_51(ptr @fuzz_nested_wrapper, ptr addrspace(5) %nested_frame, i32 -1)
  br label %fuzz_nested.join

fuzz_nested.join:
  %parallel_for.next = add i32 %parallel_for.iv, %league_size
  br label %parallel_for.header
}

declare i32 @__kmpc_parallel_level() readnone nosync nofree willreturn

declare void @__kmpc_parallel_51(ptr %0, ptr %1, i32 %2) convergent

declare i1 @__kmpc_is_spmd_exec_mode() readnone nosync nofree willreturn

declare i32 @__kmpc_get_hardware_thread_id_in_block() readnone nosync nofree willreturn

declare i32 @__kmpc_get_hardware_num_threads_in_block() readnone nosync nofree willreturn

declare i32 @__kmpc_get_warp_size() readnone nosync nofree willreturn

declare i32 @omp_get_team_num() readnone nosync nofree willreturn

declare i32 @omp_get_num_teams() readnone nosync nofree willreturn

declare void @__kmpc_target_deinit(i32 %0) convergent
