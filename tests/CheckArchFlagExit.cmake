# Runs the autotune driver with an unknown -autotune-archs value and
# asserts the documented usage-error exit status 2 (tests/CMakeLists.txt).
execute_process(
  COMMAND ${DRIVER} -autotune-archs=voodoo2 -autotune-out=
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR)
if(NOT RC EQUAL 2)
  message(FATAL_ERROR
    "expected exit 2 for an unknown architecture, got '${RC}'\n${OUT}${ERR}")
endif()
if(NOT ERR MATCHES "voodoo2")
  message(FATAL_ERROR "error message does not name the bad arch:\n${ERR}")
endif()
