//===- tests/TestEndToEnd.cpp - Whole-stack integration tests --------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests: front-end codegen -> device RTL link -> OpenMPOpt ->
/// cleanups -> simulated launch -> result check, across the evaluation's
/// compiler configurations.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "gpusim/Device.h"
#include "ir/AsmWriter.h"
#include "rtl/DeviceRTL.h"

#include <gtest/gtest.h>

using namespace ompgpu;

namespace {

/// Builds a `target teams distribute parallel for` vector-add kernel:
///   c[i] = a[i] + b[i] for i in [0, n)
Function *buildVecAdd(OMPCodeGen &CG, int NumTeams, int NumThreads) {
  IRContext &Ctx = CG.getContext();
  Type *PtrTy = Ctx.getPtrTy();
  Type *I32 = Ctx.getInt32Ty();
  TargetRegionBuilder TRB(CG, "vecadd_kernel", {PtrTy, PtrTy, PtrTy, I32},
                          ExecMode::SPMD, NumTeams, NumThreads);
  Argument *A = TRB.getParam(0);
  Argument *B = TRB.getParam(1);
  Argument *C = TRB.getParam(2);
  Argument *N = TRB.getParam(3);
  A->setName("a");
  B->setName("b");
  C->setName("c");
  N->setName("n");

  std::vector<TargetRegionBuilder::Capture> Caps = {
      {A, false, "a"}, {B, false, "b"}, {C, false, "c"}};
  TRB.emitDistributeParallelFor(
      N, Caps,
      [&](IRBuilder &LB, Value *Idx,
          const TargetRegionBuilder::CaptureMap &Map) {
        Type *F64 = LB.getDoubleTy();
        Value *Ai = LB.createGEP(F64, Map.at(A), {Idx}, "a.i");
        Value *Bi = LB.createGEP(F64, Map.at(B), {Idx}, "b.i");
        Value *Ci = LB.createGEP(F64, Map.at(C), {Idx}, "c.i");
        Value *Av = LB.createLoad(F64, Ai, "a.v");
        Value *Bv = LB.createLoad(F64, Bi, "b.v");
        LB.createStore(LB.createFAdd(Av, Bv, "sum"), Ci);
      });
  return TRB.finalize();
}

/// Runs vecadd under one pipeline configuration and checks the result.
KernelStats runVecAdd(const PipelineOptions &P, unsigned Teams,
                      unsigned Threads, int N) {
  IRContext Ctx;
  Module M(Ctx, "vecadd");
  OMPCodeGen CG(M, {P.Scheme, false});
  Function *Kernel = buildVecAdd(CG, Teams, Threads);

  CompileResult CR = optimizeDeviceModule(M, P);
  EXPECT_FALSE(CR.VerifyFailed)
      << CR.VerifyError << "\n"
      << moduleToString(M);

  GPUDevice Dev;
  std::vector<double> HostA(N), HostB(N);
  for (int I = 0; I < N; ++I) {
    HostA[I] = I * 0.5;
    HostB[I] = 100.0 - I;
  }
  uint64_t DevA = Dev.allocateArray(HostA);
  uint64_t DevB = Dev.allocateArray(HostB);
  uint64_t DevC = Dev.allocate(N * sizeof(double));

  LaunchConfig LC;
  LC.GridDim = Teams;
  LC.BlockDim = Threads;
  LC.Flavor = P.Flavor;
  NativeRuntimeBinding RTL =
      makeOpenMPRuntimeBinding(P.Flavor, Dev.getMachine());
  KernelStats Stats = Dev.launchKernel(
      M, Kernel, LC, {DevA, DevB, DevC, (uint64_t)N}, RTL);
  EXPECT_TRUE(Stats.ok()) << Stats.Trap << "\n" << moduleToString(M);

  std::vector<double> HostC = Dev.downloadArray<double>(DevC, N);
  for (int I = 0; I < N; ++I)
    EXPECT_DOUBLE_EQ(HostA[I] + HostB[I], HostC[I]) << "at index " << I;
  return Stats;
}

TEST(EndToEnd, VecAddDevPipeline) {
  KernelStats S = runVecAdd(makeDevPipeline(), 4, 32, 1000);
  EXPECT_GT(S.Cycles, 0u);
}

TEST(EndToEnd, VecAddDevNoOpt) {
  runVecAdd(makeDevNoOptPipeline(), 4, 32, 1000);
}

TEST(EndToEnd, VecAddLLVM12) {
  runVecAdd(makeLLVM12Pipeline(), 4, 32, 1000);
}

TEST(EndToEnd, VecAddSubsetConfigs) {
  runVecAdd(makeDevPipeline(true, false, false, false, false), 2, 32, 256);
  runVecAdd(makeDevPipeline(true, true, false, false, false), 2, 32, 256);
  runVecAdd(makeDevPipeline(true, true, true, false, false), 2, 32, 256);
  runVecAdd(makeDevPipeline(true, true, true, true, false), 2, 32, 256);
}

/// Generic-mode kernel: a teams-distribute loop whose body computes a
/// per-team value sequentially and shares it with a parallel region
/// (the paper's Fig. 1 pattern).
TEST(EndToEnd, GenericTeamValuePattern) {
  for (bool UseDev : {true, false}) {
    PipelineOptions P = UseDev ? makeDevPipeline() : makeLLVM12Pipeline();
    IRContext Ctx;
    Module M(Ctx, "teamval");
    OMPCodeGen CG(M, {P.Scheme, false});

    Type *PtrTy = Ctx.getPtrTy();
    Type *I32 = Ctx.getInt32Ty();
    Type *F64 = Ctx.getDoubleTy();
    const int NBlocks = 8, NThreads = 64, InnerN = 32;

    TargetRegionBuilder TRB(CG, "teamval_kernel", {PtrTy, I32},
                            ExecMode::Generic, 4, NThreads);
    Argument *Out = TRB.getParam(0);
    Out->setName("out");
    Argument *NB = TRB.getParam(1);
    NB->setName("nblocks");

    TRB.emitDistributeLoop(NB, [&](IRBuilder &B, Value *BlockId) {
      // team_val = block_id * 2.0, computed by the main thread only.
      Value *TeamVal =
          TRB.emitLocalVariable(F64, "team_val", /*AddressTaken=*/true);
      Value *BlockF = B.createSIToFP(BlockId, F64, "block.f");
      Value *TV = B.createFMul(BlockF, B.getDouble(2.0), "tv");
      B.createStore(TV, TeamVal);

      std::vector<TargetRegionBuilder::Capture> Caps = {
          {TeamVal, true, "team_val"}, {Out, false, "out"},
          {BlockId, false, "block_id"}};
      TRB.emitParallelFor(
          B.getInt32(InnerN), Caps,
          [&](IRBuilder &LB, Value *Idx,
              const TargetRegionBuilder::CaptureMap &Map) {
            // out[block*InnerN + i] = team_val + i
            Value *TVv =
                LB.createLoad(F64, Map.at(TeamVal), "team_val.v");
            Value *IdxF = LB.createSIToFP(Idx, F64, "i.f");
            Value *Sum = LB.createFAdd(TVv, IdxF, "val");
            Value *Base = LB.createMul(Map.at(BlockId),
                                       LB.getInt32(InnerN), "base");
            Value *Pos = LB.createAdd(Base, Idx, "pos");
            Value *Ptr = LB.createGEP(F64, Map.at(Out), {Pos}, "out.i");
            LB.createStore(Sum, Ptr);
          });
    });
    Function *Kernel = TRB.finalize();

    CompileResult CR = optimizeDeviceModule(M, P);
    ASSERT_FALSE(CR.VerifyFailed)
        << CR.VerifyError << "\n"
        << moduleToString(M);

    GPUDevice Dev;
    uint64_t DevOut = Dev.allocate(NBlocks * InnerN * sizeof(double));
    LaunchConfig LC;
    LC.GridDim = 4;
    LC.BlockDim = NThreads;
    LC.Flavor = P.Flavor;
    NativeRuntimeBinding RTL =
        makeOpenMPRuntimeBinding(P.Flavor, Dev.getMachine());
    KernelStats Stats = Dev.launchKernel(M, Kernel, LC,
                                         {DevOut, (uint64_t)NBlocks}, RTL);
    ASSERT_TRUE(Stats.ok()) << Stats.Trap << "\n" << moduleToString(M);

    std::vector<double> Host =
        Dev.downloadArray<double>(DevOut, NBlocks * InnerN);
    for (int Blk = 0; Blk < NBlocks; ++Blk)
      for (int I = 0; I < InnerN; ++I)
        EXPECT_DOUBLE_EQ(Blk * 2.0 + I, Host[Blk * InnerN + I])
            << "block " << Blk << " index " << I
            << (UseDev ? " (Dev)" : " (LLVM 12)");
  }
}

} // namespace
