//===- tests/TestMapping.cpp - Data-mapping inference tests -----------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the data-mapping subsystem (docs/data-mapping.md): the
/// inter-procedural MemoryAccessSummary classification, the MapInference
/// stage's inferred map kinds and OMP240/OMP241 remarks, the ArchSpec v2
/// host-link fields with v1 back-compat, gpusim's modeled host<->device
/// transfer accounting, and the end-to-end acceptance check that inferred
/// mappings beat the conservative copy-everything baseline on the
/// transfer-dominated XSBench variant.
///
//===----------------------------------------------------------------------===//

#include "analysis/MapInference.h"
#include "analysis/MemoryAccessSummary.h"
#include "core/Remarks.h"
#include "driver/Pipeline.h"
#include "frontend/OMPCodeGen.h"
#include "gpusim/ArchSpec.h"
#include "gpusim/Device.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "rtl/DeviceRTL.h"
#include "workloads/Harness.h"

#include <gtest/gtest.h>

using namespace ompgpu;

namespace {

class MappingTest : public ::testing::Test {
protected:
  IRContext Ctx;
  Module M{Ctx, "mapping"};
  IRBuilder B{Ctx};

  /// Creates a void function taking \p NumPtrs pointer parameters with an
  /// open entry block (the builder is left positioned inside it).
  Function *makeFn(const std::string &Name, unsigned NumPtrs) {
    std::vector<Type *> Params(NumPtrs, Ctx.getPtrTy());
    Function *F =
        M.createFunction(Name, Ctx.getFunctionTy(Ctx.getVoidTy(), Params));
    B.setInsertPoint(F->createBlock("entry"));
    return F;
  }
};

//===----------------------------------------------------------------------===//
// MemoryAccessSummary: direct access patterns
//===----------------------------------------------------------------------===//

TEST_F(MappingTest, ClassifyDirectAccessPatterns) {
  // f(dead, ro, wf, rw): one argument per class.
  Function *F = makeFn("f", 4);
  Type *F64 = Ctx.getDoubleTy();
  B.createLoad(F64, F->getArg(1), "r");        // ro: load only
  B.createStore(B.getDouble(1.0), F->getArg(2)); // wf: store...
  B.createLoad(F64, F->getArg(2), "after");      // ...dominates this load
  B.createLoad(F64, F->getArg(3), "pre");        // rw: load...
  B.createStore(B.getDouble(2.0), F->getArg(3)); // ...then store
  B.createRetVoid();

  MemoryAccessSummaryAnalysis A(M);
  EXPECT_EQ(PointerAccessClass::Dead, A.argSummary(F, 0).classify());
  EXPECT_EQ(PointerAccessClass::ReadOnly, A.argSummary(F, 1).classify());
  EXPECT_EQ(PointerAccessClass::WriteFirst, A.argSummary(F, 2).classify());
  EXPECT_EQ(PointerAccessClass::ReadWrite, A.argSummary(F, 3).classify());
}

TEST_F(MappingTest, StoreOnNotEveryPathIsNotWriteFirst) {
  // Storing only in one branch arm does not cover the post-join load: the
  // load may observe host data, so the class must degrade to ReadWrite.
  Function *F = M.createFunction(
      "g", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy(), Ctx.getInt1Ty()}));
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *T = F->createBlock("then");
  BasicBlock *J = F->createBlock("join");
  B.setInsertPoint(E);
  B.createCondBr(F->getArg(1), T, J);
  B.setInsertPoint(T);
  B.createStore(B.getDouble(0.0), F->getArg(0));
  B.createBr(J);
  B.setInsertPoint(J);
  B.createLoad(Ctx.getDoubleTy(), F->getArg(0), "v");
  B.createRetVoid();

  MemoryAccessSummaryAnalysis A(M);
  PointerAccessSummary S = A.argSummary(F, 0);
  EXPECT_TRUE(S.MayReadBeforeWrite);
  EXPECT_EQ(PointerAccessClass::ReadWrite, S.classify());
}

TEST_F(MappingTest, EscapingPointerIsUnknown) {
  // Storing the pointer itself into memory defeats the walk.
  Function *F = makeFn("esc", 2);
  B.createStore(F->getArg(0), F->getArg(1));
  B.createRetVoid();

  MemoryAccessSummaryAnalysis A(M);
  EXPECT_TRUE(A.argSummary(F, 0).Unknown);
  EXPECT_EQ(PointerAccessClass::Unknown, A.argSummary(F, 0).classify());
  // The sink argument itself is only stored through: write-first.
  EXPECT_EQ(PointerAccessClass::WriteFirst, A.argSummary(F, 1).classify());
}

//===----------------------------------------------------------------------===//
// MemoryAccessSummary: inter-procedural propagation
//===----------------------------------------------------------------------===//

TEST_F(MappingTest, SummaryPropagatesThroughCalls) {
  Function *Reader = makeFn("reader", 1);
  B.createLoad(Ctx.getDoubleTy(), Reader->getArg(0), "v");
  B.createRetVoid();
  Function *Writer = makeFn("writer", 1);
  B.createStore(B.getDouble(3.0), Writer->getArg(0));
  B.createRetVoid();

  // caller(ro, wf) forwards each argument to the matching helper.
  Function *Caller = makeFn("caller", 2);
  B.createCall(Reader, {Caller->getArg(0)});
  B.createCall(Writer, {Caller->getArg(1)});
  B.createRetVoid();

  MemoryAccessSummaryAnalysis A(M);
  EXPECT_EQ(PointerAccessClass::ReadOnly, A.argSummary(Caller, 0).classify());
  EXPECT_EQ(PointerAccessClass::WriteFirst,
            A.argSummary(Caller, 1).classify());
}

TEST_F(MappingTest, MutuallyRecursiveSCCReachesFixpoint) {
  // even(p) and odd(p) call each other; only odd() writes through the
  // pointer and only even() reads it. The SCC fixpoint must merge both
  // functions' effects into each argument summary — and terminate.
  Function *Even = makeFn("even", 1);
  Function *Odd = makeFn("odd", 1);
  B.setInsertPoint(Even->getBlocks().front());
  B.createLoad(Ctx.getDoubleTy(), Even->getArg(0), "v");
  B.createCall(Odd, {Even->getArg(0)});
  B.createRetVoid();
  B.setInsertPoint(Odd->getBlocks().front());
  B.createStore(B.getDouble(1.0), Odd->getArg(0));
  B.createCall(Even, {Odd->getArg(0)});
  B.createRetVoid();

  MemoryAccessSummaryAnalysis A(M);
  PointerAccessSummary SE = A.argSummary(Even, 0);
  EXPECT_TRUE(SE.MayRead);
  EXPECT_TRUE(SE.MayWrite);
  EXPECT_TRUE(SE.MayReadBeforeWrite); // the load precedes odd's store
  EXPECT_EQ(PointerAccessClass::ReadWrite, SE.classify());
  // In odd() the store dominates the recursive call, but even() reads the
  // pointer afterwards: reads-before-write still reach it via the cycle.
  PointerAccessSummary SO = A.argSummary(Odd, 0);
  EXPECT_TRUE(SO.MayRead);
  EXPECT_TRUE(SO.MayWrite);
  EXPECT_EQ(PointerAccessClass::ReadWrite, SO.classify());
}

TEST_F(MappingTest, PureReadRecursionStaysReadOnly) {
  // A self-recursive pure reader must not degrade below ReadOnly.
  Function *F = makeFn("walk", 1);
  B.createLoad(Ctx.getDoubleTy(), F->getArg(0), "v");
  B.createCall(F, {F->getArg(0)});
  B.createRetVoid();

  MemoryAccessSummaryAnalysis A(M);
  EXPECT_EQ(PointerAccessClass::ReadOnly, A.argSummary(F, 0).classify());
}

//===----------------------------------------------------------------------===//
// MapInference
//===----------------------------------------------------------------------===//

TEST(MapKindTest, MinimalMapKindTable) {
  EXPECT_EQ(MapKind::Alloc, minimalMapKind(PointerAccessClass::Dead));
  EXPECT_EQ(MapKind::To, minimalMapKind(PointerAccessClass::ReadOnly));
  EXPECT_EQ(MapKind::From, minimalMapKind(PointerAccessClass::WriteFirst));
  EXPECT_EQ(MapKind::ToFrom, minimalMapKind(PointerAccessClass::ReadWrite));
  EXPECT_EQ(MapKind::ToFrom, minimalMapKind(PointerAccessClass::Unknown));
  EXPECT_TRUE(mapCopiesToDevice(MapKind::To));
  EXPECT_TRUE(mapCopiesToDevice(MapKind::ToFrom));
  EXPECT_FALSE(mapCopiesToDevice(MapKind::From));
  EXPECT_FALSE(mapCopiesToDevice(MapKind::Alloc));
  EXPECT_TRUE(mapCopiesFromDevice(MapKind::From));
  EXPECT_TRUE(mapCopiesFromDevice(MapKind::ToFrom));
  EXPECT_FALSE(mapCopiesFromDevice(MapKind::To));
  EXPECT_FALSE(mapCopiesFromDevice(MapKind::Alloc));
}

TEST_F(MappingTest, InferenceRecordsKindsAndEmitsRemarks) {
  // k(in, out, esc, n): read-only, write-first, escaping, scalar.
  Function *K = M.createFunction(
      "k", Ctx.getFunctionTy(Ctx.getVoidTy(),
                             {Ctx.getPtrTy(), Ctx.getPtrTy(), Ctx.getPtrTy(),
                              Ctx.getInt32Ty()}));
  K->setKernel(true);
  K->getArg(0)->setName("in");
  K->getArg(1)->setName("out");
  K->getArg(2)->setName("esc");
  K->getArg(3)->setName("n");
  B.setInsertPoint(K->createBlock("entry"));
  Value *V = B.createLoad(Ctx.getDoubleTy(), K->getArg(0), "v");
  B.createStore(V, K->getArg(1));
  // Storing 'in' itself into memory defeats its walk (Unknown fallback);
  // 'esc' is only ever stored through, which stays write-first.
  B.createStore(K->getArg(0), K->getArg(2));
  B.createRetVoid();

  RemarkCollector RC;
  MapInferenceResult R = runMapInference(M, RC);

  ASSERT_EQ(4u, R.Params.size());
  EXPECT_EQ("in", R.Params[0].ParamName);
  EXPECT_TRUE(R.Params[0].IsPointer);
  // 'in' was stored into memory: its walk is defeated -> tofrom fallback.
  EXPECT_EQ(PointerAccessClass::Unknown, R.Params[0].Class);
  EXPECT_EQ(MapKind::ToFrom, R.Params[0].Effective);
  // 'out' is write-first -> map(from:).
  EXPECT_EQ(PointerAccessClass::WriteFirst, R.Params[1].Class);
  EXPECT_EQ(MapKind::From, R.Params[1].Effective);
  // The scalar contributes no mapping decision.
  EXPECT_FALSE(R.Params[3].IsPointer);

  EXPECT_GE(R.MinimalCount, 1u); // at least 'out'
  EXPECT_GE(R.FallbackCount, 1u); // at least 'in'
  unsigned N240 = 0, N241 = 0;
  for (const Remark &Rm : RC.remarks()) {
    N240 += Rm.Id == RemarkId::OMP240;
    N241 += Rm.Id == RemarkId::OMP241;
  }
  EXPECT_EQ(R.MinimalCount, N240);
  EXPECT_EQ(R.FallbackCount, N241);

  // The kernel environment now carries the inferred kinds for the harness.
  const KernelEnvironment &Env = K->getKernelEnvironment();
  EXPECT_TRUE(kernelParamMapping(Env, 1).InferenceRan);
  EXPECT_EQ(MapKind::From, kernelParamMapping(Env, 1).effective());
}

TEST_F(MappingTest, ExplicitDeclarationIsNeverOverridden) {
  Function *K = M.createFunction(
      "k", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}));
  K->setKernel(true);
  K->getArg(0)->setName("buf");
  B.setInsertPoint(K->createBlock("entry"));
  B.createLoad(Ctx.getDoubleTy(), K->getArg(0), "v"); // read-only
  B.createRetVoid();

  // The user wrote map(tofrom: buf): a contract inference must honor.
  ParamMapping &PM = kernelParamMappingRef(K->getKernelEnvironment(), 0);
  PM.Declared = MapKind::ToFrom;
  PM.DeclaredExplicit = true;

  RemarkCollector RC;
  MapInferenceResult R = runMapInference(M, RC);
  ASSERT_EQ(1u, R.Params.size());
  EXPECT_EQ(MapKind::To, R.Params[0].Inferred);
  EXPECT_EQ(MapKind::ToFrom, R.Params[0].Effective);
  EXPECT_EQ(0u, R.MinimalCount); // explicit params emit no OMP240
  EXPECT_EQ(MapKind::ToFrom,
            kernelParamMapping(K->getKernelEnvironment(), 0).effective());
}

TEST(MappingPipeline, MapInferenceRunsInDevicePipeline) {
  // The full pipeline must see through TargetRegionBuilder's outlining:
  // vecadd's inputs become map(to:), the output map(from:).
  IRContext Ctx;
  Module M(Ctx, "vecadd");
  PipelineOptions P = makeDevPipeline();
  OMPCodeGen CG(M, {P.Scheme, false});
  Type *PtrTy = Ctx.getPtrTy();
  TargetRegionBuilder TRB(CG, "vecadd",
                          {PtrTy, PtrTy, PtrTy, Ctx.getInt32Ty()},
                          ExecMode::SPMD, 2, 32);
  Argument *A = TRB.getParam(0);
  Argument *Bp = TRB.getParam(1);
  Argument *C = TRB.getParam(2);
  A->setName("a");
  Bp->setName("b");
  C->setName("c");
  std::vector<TargetRegionBuilder::Capture> Caps = {
      {A, false, "a"}, {Bp, false, "b"}, {C, false, "c"}};
  TRB.emitDistributeParallelFor(
      TRB.getParam(3), Caps,
      [&](IRBuilder &LB, Value *Idx,
          const TargetRegionBuilder::CaptureMap &Map) {
        Type *F64 = LB.getDoubleTy();
        Value *Av = LB.createLoad(F64, LB.createGEP(F64, Map.at(A), {Idx}));
        Value *Bv = LB.createLoad(F64, LB.createGEP(F64, Map.at(Bp), {Idx}));
        LB.createStore(LB.createFAdd(Av, Bv),
                       LB.createGEP(F64, Map.at(C), {Idx}));
      });
  Function *K = TRB.finalize();

  CompileResult CR = optimizeDeviceModule(M, P);
  ASSERT_FALSE(CR.VerifyFailed) << CR.VerifyError;
  ASSERT_TRUE(CR.MapInferenceRan);
  ASSERT_EQ(4u, CR.Mapping.Params.size());
  EXPECT_EQ(MapKind::To, CR.Mapping.Params[0].Effective) << "input a";
  EXPECT_EQ(MapKind::To, CR.Mapping.Params[1].Effective) << "input b";
  EXPECT_EQ(MapKind::From, CR.Mapping.Params[2].Effective) << "output c";
  EXPECT_GE(CR.Mapping.MinimalCount, 3u);

  const KernelEnvironment &Env = K->getKernelEnvironment();
  EXPECT_EQ(MapKind::To, kernelParamMapping(Env, 0).effective());
  EXPECT_EQ(MapKind::From, kernelParamMapping(Env, 2).effective());

  // Disabling the stage leaves the environment untouched.
  IRContext Ctx2;
  Module M2(Ctx2, "vecadd2");
  PipelineOptions P2 = makeDevPipeline();
  P2.RunMapInference = false;
  OMPCodeGen CG2(M2, {P2.Scheme, false});
  TargetRegionBuilder TRB2(CG2, "vecadd", {Ctx2.getPtrTy()}, ExecMode::SPMD,
                           2, 32);
  TRB2.emitDistributeParallelFor(
      TRB2.getBuilder().getInt32(8), {{TRB2.getParam(0), false, "a"}},
      [&](IRBuilder &LB, Value *Idx,
          const TargetRegionBuilder::CaptureMap &Map) {
        LB.createStore(LB.getDouble(1.0),
                       LB.createGEP(LB.getDoubleTy(),
                                    Map.at(TRB2.getParam(0)), {Idx}));
      });
  Function *K2 = TRB2.finalize();
  CompileResult CR2 = optimizeDeviceModule(M2, P2);
  ASSERT_FALSE(CR2.VerifyFailed) << CR2.VerifyError;
  EXPECT_FALSE(CR2.MapInferenceRan);
  EXPECT_FALSE(
      kernelParamMapping(K2->getKernelEnvironment(), 0).InferenceRan);
}

//===----------------------------------------------------------------------===//
// ArchSpec v2: host-link fields
//===----------------------------------------------------------------------===//

TEST(ArchSpecV2, RegistryArchesDifferInHostLink) {
  const MachineModel V100 = lookupArch("v100")->Machine;
  const MachineModel A100 = lookupArch("a100")->Machine;
  const MachineModel MI100 = lookupArch("mi100")->Machine;
  EXPECT_GT(V100.HostLinkBytesPerCycle, 0.0);
  EXPECT_GT(A100.HostLinkBytesPerCycle, V100.HostLinkBytesPerCycle)
      << "A100's NVLink/PCIe4 must outrun V100's PCIe3";
  EXPECT_GT(MI100.HostLinkBytesPerCycle, V100.HostLinkBytesPerCycle);
  EXPECT_GT(V100.HostLinkLatencyCycles, 0u);
}

TEST(ArchSpecV2, V1DocumentParsesWithDefaultHostLink) {
  // A pre-v2 document has no host-link fields; the parser must accept it
  // and fall back to the MachineModel defaults.
  json::Value Doc = archSpecToJSON(*lookupArch("v100"));
  json::Value Machine = json::Value::makeObject();
  for (const auto &[Key, V] : Doc.at("machine").members())
    if (Key != "host_link_bytes_per_cycle" &&
        Key != "host_link_latency_cycles")
      Machine.set(Key, V);
  Doc.set("machine", std::move(Machine));
  Doc.set("schema_version", (uint64_t)1);

  Expected<ArchSpec> A = parseArchSpecText(Doc.str());
  ASSERT_TRUE((bool)A) << A.message();
  MachineModel Default;
  EXPECT_DOUBLE_EQ(Default.HostLinkBytesPerCycle,
                   A->Machine.HostLinkBytesPerCycle);
  EXPECT_EQ(Default.HostLinkLatencyCycles,
            A->Machine.HostLinkLatencyCycles);
}

TEST(ArchSpecV2, V2DocumentRequiresHostLinkFields) {
  json::Value Doc = archSpecToJSON(*lookupArch("v100"));
  ASSERT_EQ((int64_t)ArchSpecSchemaVersion,
            Doc.at("schema_version").asInt());
  json::Value Machine = json::Value::makeObject();
  for (const auto &[Key, V] : Doc.at("machine").members())
    if (Key != "host_link_bytes_per_cycle")
      Machine.set(Key, V);
  Doc.set("machine", std::move(Machine));

  Expected<ArchSpec> A = parseArchSpecText(Doc.str());
  ASSERT_FALSE((bool)A);
  EXPECT_NE(A.message().find("host_link_bytes_per_cycle"),
            std::string::npos)
      << A.message();
}

TEST(ArchSpecV2, ValidateRejectsNonPositiveHostLink) {
  ArchSpec A = *lookupArch("v100");
  A.Machine.HostLinkBytesPerCycle = 0.0;
  Error E = A.validate();
  ASSERT_TRUE((bool)E);
  EXPECT_NE(E.message().find("host_link_bytes_per_cycle"),
            std::string::npos)
      << E.message();
}

//===----------------------------------------------------------------------===//
// Modeled transfers in gpusim
//===----------------------------------------------------------------------===//

TEST(TransferModel, HostTransferCycleArithmetic) {
  MachineModel MM;
  MM.HostLinkBytesPerCycle = 10.0;
  MM.HostLinkLatencyCycles = 100;
  EXPECT_EQ(0u, hostTransferCycles(MM, 0)); // nothing mapped, no latency
  EXPECT_EQ(100u + 1u, hostTransferCycles(MM, 1));
  EXPECT_EQ(100u + 10u, hostTransferCycles(MM, 100));
  EXPECT_EQ(100u + 11u, hostTransferCycles(MM, 101)); // ceil division
}

TEST(TransferModel, DeviceRecordsAllocationBytes) {
  GPUDevice Dev;
  uint64_t A = Dev.allocate(1024);
  uint64_t B = Dev.allocate(64);
  EXPECT_EQ(1024u, Dev.allocationBytes(A));
  EXPECT_EQ(64u, Dev.allocationBytes(B));
  EXPECT_EQ(0u, Dev.allocationBytes(A + 8)); // derived, not a base
}

TEST(TransferModel, LaunchAccountsMappedBuffers) {
  IRContext Ctx;
  Module M(Ctx, "xfer");
  IRBuilder B(Ctx);
  Function *K =
      M.createFunction("k", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  K->setKernel(true);
  B.setInsertPoint(K->createBlock("entry"));
  B.createRetVoid();

  GPUDevice Dev;
  const MachineModel &MM = Dev.getMachine();
  LaunchConfig LC;
  LC.GridDim = 1;
  LC.BlockDim = 32;
  LC.Mappings = {{"in", MapKind::To, 4096},
                 {"out", MapKind::From, 512},
                 {"both", MapKind::ToFrom, 100},
                 {"scratch", MapKind::Alloc, 999999}};
  NativeRuntimeBinding RTL =
      makeOpenMPRuntimeBinding(RuntimeFlavor::Modern, MM);
  KernelStats S = Dev.launchKernel(M, K, LC, {}, RTL);
  ASSERT_TRUE(S.ok()) << S.Trap;

  EXPECT_EQ(4096u + 100u, S.BytesToDevice);
  EXPECT_EQ(512u + 100u, S.BytesFromDevice);
  uint64_t Want = hostTransferCycles(MM, 4096) + hostTransferCycles(MM, 512) +
                  hostTransferCycles(MM, 100) * 2;
  EXPECT_EQ(Want, S.TransferCycles);
  // The copy-everything baseline counts 2x bytes for every buffer,
  // including the alloc-only scratch.
  EXPECT_EQ(2 * (4096u + 512u + 100u + 999999u),
            S.ConservativeTransferBytes);
  EXPECT_EQ(S.Cycles + S.TransferCycles, S.totalCycles());
  EXPECT_GT(S.totalCycles(), S.Cycles);
}

//===----------------------------------------------------------------------===//
// Acceptance: inferred mappings beat copy-everything on XSBenchTransfer
//===----------------------------------------------------------------------===//

TEST(TransferModel, InferredMappingsBeatConservativeOnXSBenchTransfer) {
  PipelineOptions P = makeDevPipeline();
  HarnessOptions HO; // simulate every block: outputs are checked

  HO.ConservativeMappings = true;
  std::unique_ptr<Workload> WC = createXSBenchTransfer(ProblemSize::Small);
  WorkloadRunResult Cons = runWorkload(*WC, P, HO);
  ASSERT_TRUE(Cons.Stats.ok()) << Cons.Stats.Trap;
  ASSERT_TRUE(Cons.Checked);
  EXPECT_TRUE(Cons.Correct);

  HO.ConservativeMappings = false;
  std::unique_ptr<Workload> WI = createXSBenchTransfer(ProblemSize::Small);
  WorkloadRunResult Inf = runWorkload(*WI, P, HO);
  ASSERT_TRUE(Inf.Stats.ok()) << Inf.Stats.Trap;
  ASSERT_TRUE(Inf.Checked);
  EXPECT_TRUE(Inf.Correct);

  // Mapping is a transfer-accounting concern only: kernel cycles and
  // results are identical across the two arms.
  EXPECT_EQ(Cons.Stats.Cycles, Inf.Stats.Cycles);

  uint64_t ConsBytes = Cons.Stats.BytesToDevice + Cons.Stats.BytesFromDevice;
  uint64_t InfBytes = Inf.Stats.BytesToDevice + Inf.Stats.BytesFromDevice;
  ASSERT_GT(ConsBytes, 0u) << "harness attached no mappings";
  EXPECT_LT(InfBytes, ConsBytes)
      << "inferred mappings must shrink moved bytes";
  EXPECT_LT(Inf.Stats.TransferCycles, Cons.Stats.TransferCycles);
  EXPECT_LT(Inf.Stats.totalCycles(), Cons.Stats.totalCycles())
      << "the transfer win must be visible in total simulated time";
  // On the transfer-dominated sizing the win is substantial (roughly the
  // from-direction copy of the big tables), not a rounding artifact.
  EXPECT_LT(InfBytes, ConsBytes * 3 / 4);
}

} // namespace
