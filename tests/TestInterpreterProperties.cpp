//===- tests/TestInterpreterProperties.cpp - Property sweeps ----------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized property tests: every IR operation the proxies rely on
/// must evaluate on the simulator exactly as the host's C++ semantics
/// (two's-complement wraparound, IEEE doubles, float rounding, shift
/// masking) — the bit-exact agreement the workload verification depends
/// on. Also checks pipeline invariants: optimized modules always verify,
/// and compilation is deterministic.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "gpusim/Device.h"
#include "ir/AsmWriter.h"
#include "rtl/DeviceRTL.h"
#include "workloads/Harness.h"

#include <cmath>
#include <cstring>
#include <gtest/gtest.h>

using namespace ompgpu;

namespace {

/// Runs a single-thread kernel computing Op(L, R) on i64 and returns it.
int64_t evalIntOnDevice(BinaryOp Op, int64_t L, int64_t R) {
  IRContext Ctx;
  Module M(Ctx, "prop");
  Function *K = M.createFunction(
      "k", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}));
  K->setKernel(true);
  IRBuilder B(Ctx);
  B.setInsertPoint(K->createBlock("entry"));
  // Route the operands through memory so constant folding cannot fire and
  // the interpreter itself is exercised.
  Value *Slot = B.createAlloca(Ctx.getInt64Ty());
  B.createStore(B.getInt64(L), Slot);
  Value *LV = B.createLoad(Ctx.getInt64Ty(), Slot);
  Value *V = B.createBinOp(Op, LV, B.getInt64(R));
  B.createStore(V, K->getArg(0));
  B.createRetVoid();

  GPUDevice Dev;
  uint64_t Out = Dev.allocate(8);
  LaunchConfig LC;
  LC.GridDim = 1;
  LC.BlockDim = 1;
  KernelStats S = Dev.launchKernel(
      M, K, LC, {Out},
      makeOpenMPRuntimeBinding(RuntimeFlavor::Modern, Dev.getMachine()));
  EXPECT_TRUE(S.ok()) << S.Trap;
  int64_t Result = 0;
  Dev.memcpyFromDevice(&Result, Out, 8);
  return Result;
}

int64_t evalIntOnHost(BinaryOp Op, int64_t L, int64_t R) {
  uint64_t UL = (uint64_t)L, UR = (uint64_t)R;
  switch (Op) {
  case BinaryOp::Add:
    return (int64_t)(UL + UR);
  case BinaryOp::Sub:
    return (int64_t)(UL - UR);
  case BinaryOp::Mul:
    return (int64_t)(UL * UR);
  case BinaryOp::SDiv:
    return L / R;
  case BinaryOp::SRem:
    return L % R;
  case BinaryOp::UDiv:
    return (int64_t)(UL / UR);
  case BinaryOp::URem:
    return (int64_t)(UL % UR);
  case BinaryOp::And:
    return L & R;
  case BinaryOp::Or:
    return L | R;
  case BinaryOp::Xor:
    return L ^ R;
  case BinaryOp::Shl:
    return (int64_t)(UL << (R & 63));
  case BinaryOp::LShr:
    return (int64_t)(UL >> (R & 63));
  case BinaryOp::AShr:
    return L >> (R & 63);
  default:
    ADD_FAILURE() << "unhandled op";
    return 0;
  }
}

struct IntOpCase {
  BinaryOp Op;
  int64_t L, R;
};

class IntOpProperty : public ::testing::TestWithParam<IntOpCase> {};

TEST_P(IntOpProperty, DeviceMatchesHost) {
  IntOpCase C = GetParam();
  EXPECT_EQ(evalIntOnHost(C.Op, C.L, C.R),
            evalIntOnDevice(C.Op, C.L, C.R));
}

std::vector<IntOpCase> makeIntCases() {
  // Sweep every operation over values that probe wraparound, sign edges,
  // and shift masking (the LCG bug class caught during bring-up).
  std::vector<IntOpCase> Cases;
  const int64_t Values[] = {0,  1,  -1, 7,  -13, (int64_t)1 << 62,
                            INT64_MAX, INT64_MIN + 1, 2806196910506780709LL};
  const BinaryOp Ops[] = {BinaryOp::Add,  BinaryOp::Sub, BinaryOp::Mul,
                          BinaryOp::And,  BinaryOp::Or,  BinaryOp::Xor,
                          BinaryOp::Shl,  BinaryOp::LShr, BinaryOp::AShr};
  for (BinaryOp Op : Ops)
    for (int64_t L : Values)
      Cases.push_back({Op, L, 13});
  // Division separately (nonzero divisors only).
  for (int64_t L : Values) {
    Cases.push_back({BinaryOp::SDiv, L, 7});
    Cases.push_back({BinaryOp::SRem, L, 7});
    Cases.push_back({BinaryOp::UDiv, L, 7});
    Cases.push_back({BinaryOp::URem, L, 7});
  }
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, IntOpProperty,
                         ::testing::ValuesIn(makeIntCases()));

//===----------------------------------------------------------------------===//
// Floating point and math
//===----------------------------------------------------------------------===//

double evalMathOnDevice(MathOp Op, double A, double B2) {
  IRContext Ctx;
  Module M(Ctx, "prop");
  Function *K = M.createFunction(
      "k", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}));
  K->setKernel(true);
  IRBuilder B(Ctx);
  B.setInsertPoint(K->createBlock("entry"));
  Value *Slot = B.createAlloca(Ctx.getDoubleTy());
  B.createStore(B.getDouble(A), Slot);
  Value *AV = B.createLoad(Ctx.getDoubleTy(), Slot);
  std::vector<Value *> Args = {AV};
  if (Op == MathOp::Pow || Op == MathOp::FMin || Op == MathOp::FMax)
    Args.push_back(B.getDouble(B2));
  Value *V = B.createMath(Op, Args);
  B.createStore(V, K->getArg(0));
  B.createRetVoid();

  GPUDevice Dev;
  uint64_t Out = Dev.allocate(8);
  LaunchConfig LC;
  LC.GridDim = 1;
  LC.BlockDim = 1;
  KernelStats S = Dev.launchKernel(
      M, K, LC, {Out},
      makeOpenMPRuntimeBinding(RuntimeFlavor::Modern, Dev.getMachine()));
  EXPECT_TRUE(S.ok()) << S.Trap;
  double R = 0;
  Dev.memcpyFromDevice(&R, Out, 8);
  return R;
}

struct MathCase {
  MathOp Op;
  double A, B;
  double (*Host)(double, double);
};

class MathProperty : public ::testing::TestWithParam<MathCase> {};

TEST_P(MathProperty, DeviceMatchesLibm) {
  MathCase C = GetParam();
  EXPECT_DOUBLE_EQ(C.Host(C.A, C.B), evalMathOnDevice(C.Op, C.A, C.B));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MathProperty,
    ::testing::Values(
        MathCase{MathOp::Sqrt, 2.0, 0,
                 [](double A, double) { return std::sqrt(A); }},
        MathCase{MathOp::Sin, 1.25, 0,
                 [](double A, double) { return std::sin(A); }},
        MathCase{MathOp::Cos, -0.5, 0,
                 [](double A, double) { return std::cos(A); }},
        MathCase{MathOp::Exp, 0.75, 0,
                 [](double A, double) { return std::exp(A); }},
        MathCase{MathOp::Log, 9.0, 0,
                 [](double A, double) { return std::log(A); }},
        MathCase{MathOp::Fabs, -3.5, 0,
                 [](double A, double) { return std::fabs(A); }},
        MathCase{MathOp::Floor, 2.75, 0,
                 [](double A, double) { return std::floor(A); }},
        MathCase{MathOp::Pow, 2.0, 10.0,
                 [](double A, double B) { return std::pow(A, B); }},
        MathCase{MathOp::FMin, 2.0, -1.0,
                 [](double A, double B) { return std::fmin(A, B); }},
        MathCase{MathOp::FMax, 2.0, -1.0,
                 [](double A, double B) { return std::fmax(A, B); }}));

//===----------------------------------------------------------------------===//
// Casts
//===----------------------------------------------------------------------===//

TEST(CastProperty, RoundTripsMatchHost) {
  IRContext Ctx;
  Module M(Ctx, "casts");
  Function *K = M.createFunction(
      "k", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}));
  K->setKernel(true);
  IRBuilder B(Ctx);
  B.setInsertPoint(K->createBlock("entry"));
  Value *Slot = B.createAlloca(Ctx.getInt64Ty());
  B.createStore(B.getInt64(-123456789), Slot);
  Value *V = B.createLoad(Ctx.getInt64Ty(), Slot);
  // i64 -> i32 (trunc) -> f64 (sitofp) -> i64 (fptosi)
  Value *T = B.createTrunc(V, Ctx.getInt32Ty());
  Value *D = B.createSIToFP(T, Ctx.getDoubleTy());
  Value *R = B.createCast(CastOp::FPToSI, D, Ctx.getInt64Ty());
  B.createStore(R, K->getArg(0));
  // f64 -> f32 (fptrunc) rounding
  Value *F = B.createFPTrunc(B.getDouble(1.0 / 3.0), Ctx.getFloatTy());
  Value *Out1 = B.createGEP(Ctx.getDoubleTy(), K->getArg(0),
                            {B.getInt32(1)});
  B.createStore(B.createFPExt(F, Ctx.getDoubleTy()), Out1);
  B.createRetVoid();

  GPUDevice Dev;
  uint64_t Out = Dev.allocate(16);
  LaunchConfig LC;
  LC.GridDim = 1;
  LC.BlockDim = 1;
  KernelStats S = Dev.launchKernel(
      M, K, LC, {Out},
      makeOpenMPRuntimeBinding(RuntimeFlavor::Modern, Dev.getMachine()));
  ASSERT_TRUE(S.ok()) << S.Trap;
  int64_t I = 0;
  double D2 = 0;
  Dev.memcpyFromDevice(&I, Out, 8);
  Dev.memcpyFromDevice(&D2, Out + 8, 8);
  EXPECT_EQ((int64_t)(double)(int32_t)-123456789, I);
  EXPECT_EQ((double)(float)(1.0 / 3.0), D2);
}

//===----------------------------------------------------------------------===//
// Pipeline invariants
//===----------------------------------------------------------------------===//

struct PipelineCase {
  const char *Name;
  std::unique_ptr<Workload> (*Factory)(ProblemSize);
};

class PipelineInvariants : public ::testing::TestWithParam<PipelineCase> {
};

TEST_P(PipelineInvariants, OptimizedModulesAlwaysVerify) {
  // Across the whole configuration matrix, the pipeline must leave the
  // IR structurally valid (the harness verifies internally).
  const PipelineCase &C = GetParam();
  for (int H2S = 0; H2S <= 1; ++H2S)
    for (int SPMD = 0; SPMD <= 1; ++SPMD) {
      std::unique_ptr<Workload> W = C.Factory(ProblemSize::Small);
      PipelineOptions P =
          makeDevPipeline(H2S, H2S, true, true, SPMD);
      HarnessOptions HO;
      HO.MaxSimulatedBlocks = 1;
      WorkloadRunResult R = runWorkload(*W, P, HO);
      EXPECT_FALSE(R.Compile.VerifyFailed)
          << C.Name << " h2s=" << H2S << " spmd=" << SPMD << ": "
          << R.Compile.VerifyError;
      EXPECT_TRUE(R.Stats.ok()) << R.Stats.Trap;
    }
}

TEST_P(PipelineInvariants, CompilationIsDeterministic) {
  const PipelineCase &C = GetParam();
  auto Run = [&] {
    std::unique_ptr<Workload> W = C.Factory(ProblemSize::Small);
    HarnessOptions HO;
    HO.MaxSimulatedBlocks = 1;
    return runWorkload(*W, makeDevPipeline(), HO);
  };
  WorkloadRunResult A = Run();
  WorkloadRunResult B = Run();
  EXPECT_EQ(A.Compile.Stats.HeapToStack, B.Compile.Stats.HeapToStack);
  EXPECT_EQ(A.Compile.Stats.HeapToShared, B.Compile.Stats.HeapToShared);
  EXPECT_EQ(A.Compile.Stats.SPMDzedKernels,
            B.Compile.Stats.SPMDzedKernels);
  EXPECT_EQ(A.Compile.Remarks.size(), B.Compile.Remarks.size());
  EXPECT_EQ(A.Stats.Cycles, B.Stats.Cycles);
  EXPECT_EQ(A.Stats.DynamicInstructions, B.Stats.DynamicInstructions);
}

INSTANTIATE_TEST_SUITE_P(
    Proxies, PipelineInvariants,
    ::testing::Values(PipelineCase{"XSBench", createXSBench},
                      PipelineCase{"RSBench", createRSBench},
                      PipelineCase{"SU3Bench", createSU3Bench},
                      PipelineCase{"miniQMC", createMiniQMC}),
    [](const ::testing::TestParamInfo<PipelineCase> &Info) {
      return std::string(Info.param.Name);
    });

} // namespace
