//===- tests/TestProfile.cpp - PGO subsystem unit tests --------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the profile-guided-optimization subsystem (docs/pgo.md): the
/// profile data model (merge, prefix sums), schema-v1 serialization
/// (round trip, hostile inputs), gpusim's deterministic collection, and
/// the three profile consumers in OpenMPOpt (OMP210 cascade ordering,
/// OMP211 shared-memory ranking, OMP212 guard grouping) including the
/// end-to-end A/B cycle improvement on miniQMC.
///
//===----------------------------------------------------------------------===//

#include "driver/CompileReport.h"
#include "driver/Pipeline.h"
#include "frontend/OMPCodeGen.h"
#include "gpusim/Device.h"
#include "profile/Profile.h"
#include "rtl/DeviceRTL.h"
#include "support/JSON.h"
#include "workloads/Harness.h"

#include <gtest/gtest.h>

using namespace ompgpu;

namespace {

bool hasRemark(const CompileResult &CR, RemarkId Id, bool Missed) {
  for (const Remark &R : CR.Remarks.remarks())
    if (R.Id == Id && R.Missed == Missed)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Data model
//===----------------------------------------------------------------------===//

TEST(ProfileModel, AccessorsReturnZeroForUnknownAnchors) {
  ExecutionProfile P;
  EXPECT_TRUE(P.empty());
  EXPECT_EQ(0u, P.dispatches("parallel:missing"));
  EXPECT_EQ(0u, P.barriers("barrier:missing:0"));
  EXPECT_EQ(0u, P.guardEntries("guard:missing:0"));
  EXPECT_EQ(0u, P.touches("alloc:missing:v"));

  P.Barriers["guard:k:0:pre"] = 3;
  P.Barriers["guard:k:0:post"] = 3;
  P.Barriers["guard:k:1:pre"] = 2;
  P.Barriers["guard:kb:0:pre"] = 100; // different kernel, excluded
  P.Barriers["barrier:k:0"] = 7;      // not a guard, excluded
  EXPECT_EQ(8u, ExecutionProfile::sumByPrefix(P.Barriers, "guard:k:"));
  EXPECT_EQ(0u, ExecutionProfile::sumByPrefix(P.Barriers, "guard:z:"));
}

TEST(ProfileModel, MergeCommutesSumsCountsAndMaxesHighWater) {
  ExecutionProfile A;
  A.Dispatches["parallel:w1"] = 5;
  A.Touches["alloc:k:buf"] = 10;
  A.Kernels["k"] = {2, 128};

  ExecutionProfile B;
  B.Dispatches["parallel:w1"] = 3;
  B.Dispatches["parallel:w2"] = 1;
  B.GuardEntries["guard:k:0"] = 4;
  B.Kernels["k"] = {1, 256};
  B.Kernels["k2"] = {1, 64};

  ExecutionProfile AB = A;
  AB.merge(B);
  ExecutionProfile BA = B;
  BA.merge(A);
  EXPECT_EQ(serializeProfile(AB), serializeProfile(BA));

  EXPECT_EQ(8u, AB.dispatches("parallel:w1"));
  EXPECT_EQ(1u, AB.dispatches("parallel:w2"));
  EXPECT_EQ(10u, AB.touches("alloc:k:buf"));
  EXPECT_EQ(3u, AB.Kernels["k"].Launches);
  EXPECT_EQ(256u, AB.Kernels["k"].SharedStackHighWater) << "maxed, not summed";
  EXPECT_EQ(1u, AB.Kernels["k2"].Launches);
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

TEST(ProfileSerialization, RoundTripIsByteIdentical) {
  ExecutionProfile P;
  P.Dispatches["parallel:__omp_outlined__0_wrapper"] = 42;
  P.Barriers["barrier:kernel:0"] = 7;
  P.Barriers["guard:kernel:0:pre"] = 7;
  P.GuardEntries["guard:kernel:0"] = 7;
  P.Touches["alloc:kernel:team_val"] = 1024;
  P.Kernels["kernel"] = {3, 96};

  std::string Text = serializeProfile(P);
  EXPECT_EQ(Text, serializeProfile(P)) << "serialization is deterministic";

  Expected<ExecutionProfile> R = parseProfile(Text);
  ASSERT_TRUE((bool)R) << R.message();
  EXPECT_EQ(Text, serializeProfile(*R));
  EXPECT_EQ(42u, R->dispatches("parallel:__omp_outlined__0_wrapper"));
  EXPECT_EQ(3u, R->Kernels["kernel"].Launches);
  EXPECT_EQ(96u, R->Kernels["kernel"].SharedStackHighWater);
}

TEST(ProfileSerialization, EmptyProfileRoundTrips) {
  ExecutionProfile P;
  Expected<ExecutionProfile> R = parseProfile(serializeProfile(P));
  ASSERT_TRUE((bool)R) << R.message();
  EXPECT_TRUE(R->empty());
  EXPECT_EQ(serializeProfile(P), serializeProfile(*R));
}

TEST(ProfileSerialization, RejectsHostileInput) {
  // Shapes a truncated, corrupted, or adversarial profile file could
  // carry; the JSON layer's own corpus lives in TestInstrumentation.
  struct Case {
    const char *Name;
    std::string Text;
  };
  const Case Cases[] = {
      {"empty input", ""},
      {"malformed JSON", "{\"schema_version\":1,"},
      {"deep nesting attack", std::string(100000, '[')},
      {"not an object", "[1,2,3]"},
      {"missing schema_version", "{}"},
      {"string schema_version", "{\"schema_version\":\"1\"}"},
      {"unsupported schema_version", "{\"schema_version\":999}"},
      {"section is an array",
       "{\"schema_version\":1,\"dispatches\":[]}"},
      {"counter is a string",
       "{\"schema_version\":1,\"dispatches\":{\"parallel:w\":\"5\"}}"},
      {"counter is negative",
       "{\"schema_version\":1,\"dispatches\":{\"parallel:w\":-1}}"},
      {"counter is a double",
       "{\"schema_version\":1,\"dispatches\":{\"parallel:w\":1.5}}"},
      {"missing kernels section",
       "{\"schema_version\":1,\"dispatches\":{},\"barriers\":{},"
       "\"guard_entries\":{},\"touches\":{}}"},
      {"kernel entry not an object",
       "{\"schema_version\":1,\"dispatches\":{},\"barriers\":{},"
       "\"guard_entries\":{},\"touches\":{},\"kernels\":{\"k\":5}}"},
      {"kernel entry missing launches",
       "{\"schema_version\":1,\"dispatches\":{},\"barriers\":{},"
       "\"guard_entries\":{},\"touches\":{},\"kernels\":{\"k\":{}}}"},
  };
  for (const Case &C : Cases) {
    Expected<ExecutionProfile> R = parseProfile(C.Text);
    EXPECT_FALSE((bool)R) << C.Name;
    EXPECT_FALSE(R.message().empty()) << C.Name;
  }
}

//===----------------------------------------------------------------------===//
// Deterministic collection in gpusim
//===----------------------------------------------------------------------===//

TEST(ProfileCollection, RepeatedRunsAreByteIdentical) {
  auto ProfiledRun = [](ProfileCollector &C) {
    // miniQMC stays generic-mode, so dispatches, barriers, and touches
    // all accumulate.
    std::unique_ptr<Workload> W = createMiniQMC(ProblemSize::Small);
    // A binding budget leaves residual globalization, keeping the kernel
    // generic: the custom state machine dispatches the parallel regions.
    PipelineOptions P = makeDevPipeline();
    P.OptConfig.SharedMemoryLimit = 160;
    HarnessOptions HO;
    HO.Profile = &C;
    WorkloadRunResult R = runWorkload(*W, P, HO);
    ASSERT_TRUE(R.Stats.ok()) << R.Stats.Trap;
    ASSERT_TRUE(R.Checked && R.Correct);
  };
  ProfileCollector C1, C2;
  ProfiledRun(C1);
  ProfiledRun(C2);

  std::string T1 = serializeProfile(C1.profile());
  std::string T2 = serializeProfile(C2.profile());
  EXPECT_EQ(T1, T2);

  const ExecutionProfile &P = C1.profile();
  EXPECT_FALSE(P.empty());
  EXPECT_FALSE(P.Dispatches.empty()) << "parallel regions dispatched";
  ASSERT_EQ(1u, P.Kernels.size());
  EXPECT_GE(P.Kernels.begin()->second.Launches, 1u);
}

TEST(ProfileCollection, UnprofiledRunCollectsNothing) {
  // HarnessOptions::Profile left null: gpusim's hooks must stay inert.
  std::unique_ptr<Workload> W = createXSBench(ProblemSize::Small);
  WorkloadRunResult R = runWorkload(*W, makeDevPipeline());
  ASSERT_TRUE(R.Stats.ok()) << R.Stats.Trap;
  EXPECT_TRUE(R.Checked && R.Correct);
}

//===----------------------------------------------------------------------===//
// Consumption: OMP211 ranking + OMP210 ordering, end-to-end A/B
//===----------------------------------------------------------------------===//

/// Compiles and full-grid-simulates one fresh miniQMC under a binding
/// 160-byte shared-memory budget (5 of the 18 walker-scope buffers fit).
WorkloadRunResult runBudgetedMiniQMC(const ExecutionProfile *Prof,
                                     ProfileCollector *Collector) {
  std::unique_ptr<Workload> W = createMiniQMC(ProblemSize::Small);
  PipelineOptions P = makeDevPipeline();
  P.OptConfig.SharedMemoryLimit = 160;
  if (Prof) {
    P.Profile = PipelineOptions::ProfileMode::Use;
    P.OptConfig.Profile = Prof;
  }
  HarnessOptions HO;
  HO.Profile = Collector;
  return runWorkload(*W, P, HO);
}

TEST(ProfileConsumption, BudgetedMiniQMCImprovesWithProfile) {
  // Arm A: discovery-order promotion under the budget.
  WorkloadRunResult A = runBudgetedMiniQMC(nullptr, nullptr);
  ASSERT_TRUE(A.Stats.ok()) << A.Stats.Trap;
  ASSERT_TRUE(A.Checked && A.Correct);
  EXPECT_TRUE(hasRemark(A.Compile, RemarkId::OMP211, /*Missed=*/true))
      << "a binding budget must exclude some allocation";
  EXPECT_EQ(0u, A.Compile.Stats.PGORankedAllocations)
      << "no profile, no ranking";

  // Profile generation on the same compile.
  ProfileCollector C;
  WorkloadRunResult G = runBudgetedMiniQMC(nullptr, &C);
  ASSERT_TRUE(G.Stats.ok() && G.Checked && G.Correct);
  ExecutionProfile Prof = C.takeProfile();
  ASSERT_FALSE(Prof.empty());
  EXPECT_GT(ExecutionProfile::sumByPrefix(Prof.Touches, "alloc:"), 0u)
      << "globalized buffers must accumulate touch counts";

  // Arm B: profiled ranking promotes the hottest buffers instead.
  WorkloadRunResult B = runBudgetedMiniQMC(&Prof, nullptr);
  ASSERT_TRUE(B.Stats.ok()) << B.Stats.Trap;
  ASSERT_TRUE(B.Checked && B.Correct);
  EXPECT_TRUE(hasRemark(B.Compile, RemarkId::OMP211, /*Missed=*/false));
  EXPECT_GT(B.Compile.Stats.PGORankedAllocations, 0u);
  EXPECT_GT(B.Compile.Stats.PGOExcludedAllocations, 0u);

  // The residual globalization keeps the kernel generic, so the custom
  // state machine survives and its cascade gets profile-ordered.
  EXPECT_TRUE(hasRemark(B.Compile, RemarkId::OMP210, /*Missed=*/false));
  EXPECT_GT(B.Compile.Stats.PGOReorderedCascades, 0u);

  EXPECT_LT(B.Stats.Cycles, A.Stats.Cycles)
      << "promoting by touch frequency must beat discovery order";
}

//===----------------------------------------------------------------------===//
// Consumption: OMP212 guard grouping
//===----------------------------------------------------------------------===//

/// The Fig. 7 shape: four interleaved sequential side effects ahead of a
/// parallel region, SPMDzable only with main-thread guards.
Function *buildGuardKernel(Module &M) {
  IRContext &Ctx = M.getContext();
  OMPCodeGen CG(M, {CodeGenScheme::Simplified13, false});
  Type *F64 = Ctx.getDoubleTy();
  TargetRegionBuilder TRB(CG, "guard_kernel",
                          {Ctx.getPtrTy(), Ctx.getInt32Ty()},
                          ExecMode::Generic, 4, 64);
  Argument *A = TRB.getParam(0);
  TRB.emitDistributeLoop(TRB.getParam(1), [&](IRBuilder &B, Value *I) {
    for (int K = 0; K < 4; ++K) {
      Value *V = B.createFMul(B.createSIToFP(I, F64), B.getDouble(1.0 + K));
      Value *Idx = B.createAdd(B.createMul(I, B.getInt32(4)), B.getInt32(K));
      B.createStore(V, B.createGEP(F64, A, {Idx}));
    }
    std::vector<TargetRegionBuilder::Capture> Caps;
    TRB.emitParallelFor(B.getInt32(8), Caps,
                        [&](IRBuilder &, Value *,
                            const TargetRegionBuilder::CaptureMap &) {});
  });
  return TRB.finalize();
}

struct GuardRun {
  CompileResult Compile;
  KernelStats Stats;
};

GuardRun runGuardKernel(const ExecutionProfile *Prof,
                        ProfileCollector *Collector) {
  IRContext Ctx;
  Module M(Ctx, "guards");
  Function *K = buildGuardKernel(M);

  PipelineOptions P = makeDevPipeline();
  if (Prof) {
    P.Profile = PipelineOptions::ProfileMode::Use;
    P.OptConfig.Profile = Prof;
  }
  GuardRun R;
  R.Compile = optimizeDeviceModule(M, P);

  GPUDevice Dev;
  const int Iter = 16;
  uint64_t DA = Dev.allocate((uint64_t)Iter * 4 * 8);
  LaunchConfig LC;
  LC.GridDim = 4;
  LC.BlockDim = 64;
  LC.Profile = Collector;
  NativeRuntimeBinding RTL =
      makeOpenMPRuntimeBinding(P.Flavor, Dev.getMachine());
  R.Stats = Dev.launchKernel(M, K, LC, {DA, (uint64_t)Iter}, RTL);
  return R;
}

TEST(ProfileConsumption, GuardGroupingFollowsDynamicBarrierCounts) {
  // Baseline compile groups by default and emits anchored guards.
  ProfileCollector C;
  GuardRun Gen = runGuardKernel(nullptr, &C);
  ASSERT_TRUE(Gen.Stats.ok()) << Gen.Stats.Trap;
  unsigned GroupedGuards = Gen.Compile.Stats.GuardedRegions;
  ASSERT_GT(GroupedGuards, 0u);

  ExecutionProfile Hot = C.takeProfile();
  EXPECT_GT(
      ExecutionProfile::sumByPrefix(Hot.Barriers, "guard:guard_kernel:"),
      0u)
      << "executed guards must count their pre/post barriers";

  // A profile showing the guards actually run keeps grouping on
  // (performed remark).
  GuardRun UseHot = runGuardKernel(&Hot, nullptr);
  ASSERT_TRUE(UseHot.Stats.ok()) << UseHot.Stats.Trap;
  EXPECT_EQ(GroupedGuards, UseHot.Compile.Stats.GuardedRegions);
  EXPECT_TRUE(hasRemark(UseHot.Compile, RemarkId::OMP212, /*Missed=*/false));
  EXPECT_EQ(1u, UseHot.Compile.Stats.PGOGuardDecisions);

  // A non-empty profile with zero dynamic guard barriers says grouping
  // never pays off here: SPMDzation falls back to naive per-effect guards
  // and reports the missed decision.
  ExecutionProfile Cold;
  Cold.Dispatches["parallel:elsewhere"] = 1;
  GuardRun UseCold = runGuardKernel(&Cold, nullptr);
  ASSERT_TRUE(UseCold.Stats.ok()) << UseCold.Stats.Trap;
  EXPECT_GT(UseCold.Compile.Stats.GuardedRegions, GroupedGuards);
  EXPECT_TRUE(hasRemark(UseCold.Compile, RemarkId::OMP212, /*Missed=*/true));
}

//===----------------------------------------------------------------------===//
// Compile report (schema v4 profile section)
//===----------------------------------------------------------------------===//

TEST(ProfileReport, CompileReportCarriesProfileSection) {
  ExecutionProfile Prof;
  Prof.Touches["alloc:spo_batched_kernel:c"] = 1;

  std::unique_ptr<Workload> W = createMiniQMC(ProblemSize::Small);
  PipelineOptions P = makeDevPipeline();
  P.OptConfig.SharedMemoryLimit = 160;
  P.Profile = PipelineOptions::ProfileMode::Use;
  P.OptConfig.Profile = &Prof;
  HarnessOptions HO;
  HO.MaxSimulatedBlocks = 1;
  WorkloadRunResult R = runWorkload(*W, P, HO);
  ASSERT_TRUE(R.Stats.ok()) << R.Stats.Trap;

  json::Value Report = buildCompileReport(P, R.Compile, {R.Stats});
  EXPECT_EQ(CompileReportSchemaVersion,
            (unsigned)Report.at("schema_version").asInt());
  const json::Value &Sec = Report.at("profile");
  ASSERT_TRUE(Sec.isObject());
  EXPECT_EQ("use", Sec.at("mode").asString());
  EXPECT_TRUE(Sec.at("consumed").asBool());
  EXPECT_EQ(160, Sec.at("shared_memory_limit").asInt());
  EXPECT_GT(Sec.at("ranked_allocations").asInt(), 0);

  // Off mode reports -1 ("unlimited") for the budget and consumed=false.
  WorkloadRunResult Off =
      runWorkload(*createMiniQMC(ProblemSize::Small), makeDevPipeline(), HO);
  json::Value OffReport =
      buildCompileReport(makeDevPipeline(), Off.Compile, {Off.Stats});
  EXPECT_EQ("off", OffReport.at("profile").at("mode").asString());
  EXPECT_FALSE(OffReport.at("profile").at("consumed").asBool());
  EXPECT_EQ(-1, OffReport.at("profile").at("shared_memory_limit").asInt());
}

} // namespace
