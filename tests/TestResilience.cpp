//===- tests/TestResilience.cpp - Fault injection & recovery tests ---------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the resilience layer (docs/resilience.md): the deterministic
/// fault injector (scoped, seeded, schedule-independent), the file-system
/// fault sites (EXDEV fallback, typed ENOSPC), the compile service's
/// retry / degradation / quarantine policy (OMP220-OMP223), concurrent
/// cache-corruption recovery under a multi-worker batch, the gpusim
/// cycle-budget watchdog, and the schema-v6 resilience section of the
/// compile report.
///
//===----------------------------------------------------------------------===//

#include "driver/CompileReport.h"
#include "gpusim/Device.h"
#include "rtl/DeviceRTL.h"
#include "service/CompileService.h"
#include "support/FileSystem.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>

using namespace ompgpu;

namespace {

/// Arms the process-global injector for one test and guarantees it is
/// disarmed (and its event log cleared) on every exit path, so chaos
/// state never leaks into neighbouring tests.
struct InjectorGuard {
  explicit InjectorGuard(const FaultPlan &P) {
    FaultInjector::instance().configure(P);
  }
  ~InjectorGuard() {
    FaultInjector::instance().disarm();
    FaultInjector::instance().resetEvents();
  }
  InjectorGuard(const InjectorGuard &) = delete;
  InjectorGuard &operator=(const InjectorGuard &) = delete;
};

/// Pure probe of one fire decision (decisions are a pure function of the
/// plan and the scope, so probing never perturbs a later run).
bool fireDecision(const FaultPlan &P, const char *Site,
                  const std::string &Scope, unsigned Attempt) {
  InjectorGuard G(P);
  FaultScope Sc(Scope, Attempt);
  return FaultInjector::instance().shouldFire(Site);
}

/// Builds a `target teams distribute parallel for` vector-add kernel with a
/// caller-chosen name (same shape as the TestService.cpp helper).
Function *buildVecAdd(OMPCodeGen &CG, const std::string &Name, int NumTeams,
                      int NumThreads) {
  IRContext &Ctx = CG.getContext();
  Type *PtrTy = Ctx.getPtrTy();
  Type *I32 = Ctx.getInt32Ty();
  TargetRegionBuilder TRB(CG, Name, {PtrTy, PtrTy, PtrTy, I32},
                          ExecMode::SPMD, NumTeams, NumThreads);
  Argument *A = TRB.getParam(0);
  Argument *B = TRB.getParam(1);
  Argument *C = TRB.getParam(2);
  Argument *N = TRB.getParam(3);

  std::vector<TargetRegionBuilder::Capture> Caps = {
      {A, false, "a"}, {B, false, "b"}, {C, false, "c"}};
  TRB.emitDistributeParallelFor(
      N, Caps,
      [&](IRBuilder &LB, Value *Idx,
          const TargetRegionBuilder::CaptureMap &Map) {
        Type *F64 = LB.getDoubleTy();
        Value *Ai = LB.createGEP(F64, Map.at(A), {Idx}, "a.i");
        Value *Bi = LB.createGEP(F64, Map.at(B), {Idx}, "b.i");
        Value *Ci = LB.createGEP(F64, Map.at(C), {Idx}, "c.i");
        Value *Av = LB.createLoad(F64, Ai, "a.v");
        Value *Bv = LB.createLoad(F64, Bi, "b.v");
        LB.createStore(LB.createFAdd(Av, Bv, "sum"), Ci);
      });
  return TRB.finalize();
}

CompileRequest makeVecAddRequest(const std::string &Id,
                                 const PipelineOptions &P,
                                 const std::string &KernelName,
                                 int NumThreads = 64) {
  CompileRequest R;
  R.Id = Id;
  R.Pipeline = P;
  CodeGenScheme Scheme = P.Scheme;
  R.Emit = [Scheme, KernelName, NumThreads](Module &M) {
    OMPCodeGen CG(M, {Scheme, false});
    return buildVecAdd(CG, KernelName, 4, NumThreads)->getName();
  };
  R.Evaluate = [](Module &, const CompileResult &CR,
                  const std::string &EntryKernel) {
    return json::Value::makeObject()
        .set("kernel", EntryKernel)
        .set("remark_count", (uint64_t)CR.Remarks.remarks().size())
        .set("verify_failed", CR.VerifyFailed);
  };
  return R;
}

CompileService makeResilientService(unsigned Workers, ResiliencePolicy Pol,
                                    bool CacheEnabled = true,
                                    std::string Dir = "") {
  CompileService::Options O;
  O.Workers = Workers;
  O.Cache.Enabled = CacheEnabled;
  O.Cache.Dir = std::move(Dir);
  O.Resilience = Pol;
  return CompileService(std::move(O));
}

/// Fresh, empty per-test scratch directory under the gtest temp dir.
std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "ompgpu-res-" + Name;
  for (const std::string &F : listDirectoryFiles(Dir))
    (void)removeFile(Dir + "/" + F);
  EXPECT_FALSE(ensureDirectory(Dir));
  return Dir;
}

/// Timing-free projection of one outcome's resilience handling, used by
/// the determinism comparisons.
std::string resilienceProjection(const CompileOutcome &O) {
  std::string S = O.Id + "|err=" + (O.Error.empty() ? "0" : "1") +
                  "|attempts=" + std::to_string(O.Resilience.Attempts) +
                  "|retries=" + std::to_string(O.Resilience.Retries) +
                  "|rung=" + degradationRungName(O.Resilience.DegradedTo) +
                  "|quarantined=" +
                  (O.Resilience.Quarantined ? "1" : "0") + "|faults=";
  for (const FaultEvent &E : O.Resilience.InjectedFaults)
    S += E.Site + "@" + std::to_string(E.Attempt) + ",";
  return S;
}

//===----------------------------------------------------------------------===//
// Injector and policy units
//===----------------------------------------------------------------------===//

TEST(ResilienceUnit, BackoffIsCappedExponential) {
  ResiliencePolicy P;
  P.BackoffBaseMillis = 1;
  P.BackoffCapMillis = 8;
  EXPECT_EQ(P.backoffMillis(1), 1u);
  EXPECT_EQ(P.backoffMillis(2), 2u);
  EXPECT_EQ(P.backoffMillis(3), 4u);
  EXPECT_EQ(P.backoffMillis(4), 8u);
  EXPECT_EQ(P.backoffMillis(5), 8u);   // capped
  EXPECT_EQ(P.backoffMillis(100), 8u); // shift overflow guarded

  // The default policy is inert and reproduces pre-resilience behavior.
  EXPECT_FALSE(ResiliencePolicy().active());
  ResiliencePolicy Retrying;
  Retrying.MaxAttempts = 3;
  EXPECT_TRUE(Retrying.active());
}

TEST(ResilienceUnit, FaultPlanJSONRoundTrip) {
  FaultPlan P;
  P.Seed = 0xdeadbeef;
  P.RatePercent = 7;
  P.Sites = {faultsite::CacheCorrupt, faultsite::FsRead};

  Expected<FaultPlan> Back = FaultPlan::fromJSON(P.toJSON());
  ASSERT_TRUE((bool)Back) << Back.message();
  EXPECT_EQ(Back->Seed, P.Seed);
  EXPECT_EQ(Back->RatePercent, P.RatePercent);
  EXPECT_EQ(Back->Sites, P.Sites);
  // toJSON(fromJSON(x)) is a fixpoint.
  EXPECT_EQ(Back->toJSON().str(), P.toJSON().str());

  // Validation: rates outside [0,100] and unknown sites are clean errors.
  json::Value BadRate = P.toJSON();
  BadRate.set("rate_percent", (int64_t)101);
  EXPECT_FALSE((bool)FaultPlan::fromJSON(BadRate));
  json::Value BadSite = P.toJSON();
  json::Value Sites = json::Value::makeArray();
  Sites.push_back(json::Value(std::string("cache.corupt"))); // typo
  BadSite.set("sites", std::move(Sites));
  EXPECT_FALSE((bool)FaultPlan::fromJSON(BadSite));
  EXPECT_FALSE((bool)FaultPlan::fromJSON(json::Value(std::string("nope"))));

  // A zero seed or zero rate is a valid but inert plan.
  EXPECT_FALSE(FaultPlan().enabled());
  FaultPlan ZeroRate;
  ZeroRate.Seed = 1;
  ZeroRate.RatePercent = 0;
  EXPECT_FALSE(ZeroRate.enabled());
}

TEST(ResilienceUnit, InjectorFiresOnlyInScopeAndRecordsEvents) {
  FaultInjector &FI = FaultInjector::instance();
  FaultPlan P;
  P.Seed = 7;
  P.RatePercent = 100;
  P.Sites = {faultsite::ServiceEmit};

  {
    // Disarmed: never fires, even inside a scope.
    FaultScope Sc("unit-scope", 1);
    EXPECT_FALSE(FI.shouldFire(faultsite::ServiceEmit));
  }

  InjectorGuard G(P);
  EXPECT_TRUE(FI.armed());
  // No active scope: never fires (triage/reporting code is unperturbed).
  EXPECT_FALSE(FI.shouldFire(faultsite::ServiceEmit));
  {
    FaultScope Sc("unit-scope", 1);
    // Whitelisted site fires at rate 100; a non-listed site never does.
    EXPECT_TRUE(FI.shouldFire(faultsite::ServiceEmit));
    EXPECT_FALSE(FI.shouldFire(faultsite::ServiceCompile));
  }
  EXPECT_EQ(FI.firedCount(), 1u);
  EXPECT_EQ(FI.unattributedCount(), 1u);

  std::vector<FaultEvent> Taken = FI.takeEventsForScope("unit-scope");
  ASSERT_EQ(Taken.size(), 1u);
  EXPECT_EQ(Taken[0].Site, faultsite::ServiceEmit);
  EXPECT_EQ(Taken[0].ScopeKey, "unit-scope");
  EXPECT_EQ(Taken[0].Attempt, 1u);
  EXPECT_TRUE(Taken[0].Attributed);
  // Attribution is what the chaos gate checks: nothing left unclaimed.
  EXPECT_EQ(FI.unattributedCount(), 0u);
}

TEST(ResilienceUnit, FireDecisionsAreDeterministicAndAttemptIndependent) {
  FaultPlan P;
  P.Seed = 123;
  P.RatePercent = 37;

  // Same (plan, site, scope, attempt) always decides the same way, and
  // across 24 attempts a 37% rate both fires and passes at least once —
  // retries genuinely see independent decisions.
  std::vector<bool> First, Second;
  bool AnyTrue = false, AnyFalse = false;
  for (unsigned A = 1; A <= 24; ++A) {
    bool D = fireDecision(P, faultsite::ServiceCompile, "det-scope", A);
    First.push_back(D);
    AnyTrue |= D;
    AnyFalse |= !D;
  }
  for (unsigned A = 1; A <= 24; ++A)
    Second.push_back(fireDecision(P, faultsite::ServiceCompile, "det-scope", A));
  EXPECT_EQ(First, Second);
  EXPECT_TRUE(AnyTrue);
  EXPECT_TRUE(AnyFalse);

  // Different scopes decide independently of each other.
  bool Differs = false;
  for (unsigned A = 1; A <= 24 && !Differs; ++A)
    Differs = First[A - 1] !=
              fireDecision(P, faultsite::ServiceCompile, "other-scope", A);
  EXPECT_TRUE(Differs);
}

TEST(ResilienceUnit, WorkerCountAndCacheDirFlagsAreValidated) {
  // Unset flag = auto (0, the service picks hardware concurrency).
  Expected<unsigned> Auto = parseWorkerCountFlag("test-jobs", 0, false);
  ASSERT_TRUE((bool)Auto);
  EXPECT_EQ(*Auto, 0u);

  Expected<unsigned> Four = parseWorkerCountFlag("test-jobs", 4, true);
  ASSERT_TRUE((bool)Four);
  EXPECT_EQ(*Four, 4u);

  // An explicit zero or negative count is a clean error naming the flag,
  // not a silent sequential fallback.
  Expected<unsigned> Zero = parseWorkerCountFlag("test-jobs", 0, true);
  ASSERT_FALSE((bool)Zero);
  EXPECT_NE(Zero.message().find("-test-jobs"), std::string::npos);
  EXPECT_FALSE((bool)parseWorkerCountFlag("test-jobs", -3, true));
  EXPECT_FALSE((bool)parseWorkerCountFlag("test-jobs", 100000, true));

  EXPECT_FALSE(validateCacheDirFlag("test-cache-dir", ""));
  EXPECT_FALSE(validateCacheDirFlag("test-cache-dir", "relative-name"));
  EXPECT_FALSE(
      validateCacheDirFlag("test-cache-dir", freshDir("flags") + "/sub"));
  Error Missing = validateCacheDirFlag(
      "test-cache-dir", "/nonexistent-ompgpu-parent/nested/cache");
  ASSERT_TRUE((bool)Missing);
  EXPECT_NE(Missing.message().find("-test-cache-dir"), std::string::npos);
  EXPECT_NE(Missing.message().find("does not exist"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// File-system fault sites
//===----------------------------------------------------------------------===//

TEST(ResilienceUnit, ExdevFallbackStillWritesTheFile) {
  std::string Dir = freshDir("exdev");
  std::string Path = Dir + "/artifact.json";

  FaultPlan P;
  P.Seed = 5;
  P.RatePercent = 100;
  P.Sites = {faultsite::FsExdev};
  InjectorGuard G(P);
  FaultScope Sc("unit-exdev", 1);

  // The injected EXDEV forces the copy+fsync+unlink fallback; the write
  // must still succeed with the exact content.
  EXPECT_FALSE(writeTextFile(Path, "exdev-payload"));
  Expected<std::string> Back = readTextFile(Path);
  ASSERT_TRUE((bool)Back) << Back.message();
  EXPECT_EQ(*Back, "exdev-payload");

  std::vector<FaultEvent> Ev =
      FaultInjector::instance().takeEventsForScope("unit-exdev");
  ASSERT_EQ(Ev.size(), 1u);
  EXPECT_EQ(Ev[0].Site, faultsite::FsExdev);
}

TEST(ResilienceUnit, EnospcAndReadFaultsSurfaceAsTypedErrors) {
  std::string Dir = freshDir("enospc");
  std::string Path = Dir + "/full.json";

  {
    FaultPlan P;
    P.Seed = 5;
    P.RatePercent = 100;
    P.Sites = {faultsite::FsEnospc};
    InjectorGuard G(P);
    FaultScope Sc("unit-enospc", 1);
    Error E = writeTextFile(Path, "never lands");
    ASSERT_TRUE((bool)E);
    EXPECT_TRUE(E.isDiskFull()); // typed, so the cache can bypass on it
    EXPECT_FALSE(fileExists(Path));
  }

  ASSERT_FALSE(writeTextFile(Path, "now present"));
  {
    FaultPlan P;
    P.Seed = 5;
    P.RatePercent = 100;
    P.Sites = {faultsite::FsRead};
    InjectorGuard G(P);
    FaultScope Sc("unit-fsread", 1);
    Expected<std::string> R = readTextFile(Path);
    ASSERT_FALSE((bool)R);
    EXPECT_NE(R.message().find("fs.read"), std::string::npos);
  }
  // Outside the scope the file is intact.
  Expected<std::string> R = readTextFile(Path);
  ASSERT_TRUE((bool)R);
  EXPECT_EQ(*R, "now present");
}

//===----------------------------------------------------------------------===//
// Compile-service policy: retry, degrade, quarantine, transient
//===----------------------------------------------------------------------===//

TEST(CompileServiceResilience, RetryRecoversInjectedWorkerFault) {
  // Pick a seed whose decisions are "fire on attempt 1, pass on attempt 2"
  // for this request — decisions are pure, so probing is exact.
  FaultPlan P;
  P.RatePercent = 50;
  P.Sites = {faultsite::ServiceEmit};
  const std::string Id = "retry-one";
  uint64_t Seed = 0;
  for (uint64_t S = 1; S < 256 && !Seed; ++S) {
    P.Seed = S;
    if (fireDecision(P, faultsite::ServiceEmit, Id, 1) &&
        !fireDecision(P, faultsite::ServiceEmit, Id, 2))
      Seed = S;
  }
  ASSERT_NE(Seed, 0u);
  P.Seed = Seed;

  InjectorGuard G(P);
  ResiliencePolicy Pol;
  Pol.MaxAttempts = 3;
  CompileService Svc = makeResilientService(1, Pol);
  std::vector<CompileOutcome> Out =
      Svc.compileBatch({makeVecAddRequest(Id, makeDevPipeline(), "retryone")});
  ASSERT_EQ(Out.size(), 1u);

  EXPECT_TRUE(Out[0].Error.empty()) << Out[0].Error;
  EXPECT_EQ(Out[0].Resilience.Attempts, 2u);
  EXPECT_EQ(Out[0].Resilience.Retries, 1u);
  EXPECT_FALSE(Out[0].Resilience.Quarantined);
  ASSERT_EQ(Out[0].Resilience.InjectedFaults.size(), 1u);
  EXPECT_EQ(Out[0].Resilience.InjectedFaults[0].Site, faultsite::ServiceEmit);
  EXPECT_EQ(Out[0].Resilience.InjectedFaults[0].Attempt, 1u);
  EXPECT_TRUE(Out[0].Resilience.InjectedFaults[0].Attributed);
  EXPECT_EQ(FaultInjector::instance().unattributedCount(), 0u);
  EXPECT_EQ(Svc.lastBatchStats().Retries, 1u);
  EXPECT_EQ(Svc.lastBatchStats().FaultsInjected, 1u);
  EXPECT_EQ(Svc.lastBatchStats().Failed, 0u);

  // A faulted attempt never stores; the clean retry does.
  EXPECT_EQ(Svc.cache().stats().Stores, 1u);
}

TEST(CompileServiceResilience, DegradationLadderAcceptsReducedRung) {
  // An evaluation that only succeeds when the pipeline ran in recovery
  // mode — exactly what the Reduced rung (OMP221) turns on.
  CompileRequest R = makeVecAddRequest("degrade", makeDevPipeline(),
                                       "degraderung");
  R.Evaluate = [](Module &, const CompileResult &CR,
                  const std::string &EntryKernel) {
    if (!CR.RecoveryEnabled)
      throw std::runtime_error("synthetic: needs recovery mode");
    return json::Value::makeObject().set("kernel", EntryKernel);
  };

  ResiliencePolicy Pol;
  Pol.MaxAttempts = 2;
  Pol.DegradePresets = true;
  Pol.QuarantinePoison = true;
  CompileService Svc = makeResilientService(1, Pol);
  std::vector<CompileOutcome> Out = Svc.compileBatch({R});
  ASSERT_EQ(Out.size(), 1u);

  EXPECT_TRUE(Out[0].Error.empty()) << Out[0].Error;
  // 2 requested attempts failed, the single Reduced try succeeded.
  EXPECT_EQ(Out[0].Resilience.Attempts, 3u);
  EXPECT_EQ(Out[0].Resilience.Retries, 2u);
  EXPECT_EQ(Out[0].Resilience.DegradedTo, DegradationRung::Reduced);
  EXPECT_FALSE(Out[0].Resilience.Quarantined);
  const std::vector<std::string> &Remarks = Out[0].Resilience.Remarks;
  EXPECT_NE(std::find(Remarks.begin(), Remarks.end(), "OMP221"),
            Remarks.end());
  const json::Value &RSec = Out[0].report().at("resilience");
  EXPECT_EQ(RSec.at("degraded_to").asString(), "reduced");
  EXPECT_EQ(Svc.lastBatchStats().Degraded, 1u);
  EXPECT_FALSE(Svc.isQuarantined("degrade"));
  // Degraded results are never cached.
  EXPECT_EQ(Svc.cache().stats().Stores, 0u);
}

TEST(CompileServiceResilience, QuarantineShortCircuitsPoisonRequests) {
  FaultPlan P;
  P.Seed = 9;
  P.RatePercent = 100; // every attempt on every rung faults
  P.Sites = {faultsite::ServiceEmit};
  InjectorGuard G(P);

  ResiliencePolicy Pol;
  Pol.MaxAttempts = 2;
  Pol.DegradePresets = true;
  Pol.QuarantinePoison = true;
  CompileService Svc = makeResilientService(1, Pol);
  CompileRequest R = makeVecAddRequest("poison", makeDevPipeline(), "poisoned");

  std::vector<CompileOutcome> First = Svc.compileBatch({R});
  ASSERT_EQ(First.size(), 1u);
  EXPECT_FALSE(First[0].Error.empty());
  // The whole ladder: 2 requested + 1 reduced + 1 reference.
  EXPECT_EQ(First[0].Resilience.Attempts, 4u);
  EXPECT_TRUE(First[0].Resilience.Quarantined);
  EXPECT_EQ(First[0].Resilience.InjectedFaults.size(), 4u);
  EXPECT_TRUE(Svc.isQuarantined("poison"));
  EXPECT_EQ(Svc.lastBatchStats().Quarantined, 1u);
  EXPECT_EQ(Svc.lastBatchStats().Failed, 1u);

  // Resubmission short-circuits without burning attempts (OMP223).
  std::vector<CompileOutcome> Again = Svc.compileBatch({R});
  ASSERT_EQ(Again.size(), 1u);
  EXPECT_NE(Again[0].Error.find("OMP223"), std::string::npos)
      << Again[0].Error;
  EXPECT_EQ(Again[0].Resilience.Attempts, 0u);
  EXPECT_TRUE(Again[0].Resilience.Quarantined);
  EXPECT_TRUE(Again[0].Resilience.InjectedFaults.empty());
  // The failure payload is still structured: summary + resilience.
  EXPECT_TRUE(Again[0].Payload.at("resilience").at("quarantined").asBool());
  EXPECT_EQ(FaultInjector::instance().unattributedCount(), 0u);
}

TEST(CompileServiceResilience, TransientWatchdogTimeoutIsRetriedNotCached) {
  // First evaluation reports a watchdog timeout (transient, OMP220), the
  // retry comes back clean — mirroring a hung simulation that recovers.
  auto Calls = std::make_shared<std::atomic<int>>(0);
  CompileRequest R = makeVecAddRequest("transient", makeDevPipeline(),
                                       "transientwd");
  R.Evaluate = [Calls](Module &, const CompileResult &,
                       const std::string &EntryKernel) {
    bool FirstCall = Calls->fetch_add(1) == 0;
    return json::Value::makeObject()
        .set("kernel", EntryKernel)
        .set("watchdog_timeout", FirstCall);
  };
  R.IsTransient = [](const json::Value &Evaluation) {
    return Evaluation.at("watchdog_timeout").asBool();
  };

  ResiliencePolicy Pol;
  Pol.MaxAttempts = 3;
  CompileService Svc = makeResilientService(1, Pol);
  std::vector<CompileOutcome> Out = Svc.compileBatch({R});
  ASSERT_EQ(Out.size(), 1u);

  EXPECT_TRUE(Out[0].Error.empty()) << Out[0].Error;
  EXPECT_EQ(Out[0].Resilience.Attempts, 2u);
  EXPECT_EQ(Out[0].Resilience.Retries, 1u);
  EXPECT_FALSE(Out[0].evaluation().at("watchdog_timeout").asBool());
  const std::vector<std::string> &Remarks = Out[0].Resilience.Remarks;
  EXPECT_NE(std::find(Remarks.begin(), Remarks.end(), "OMP220"),
            Remarks.end());
  // Only the clean retry was stored; the transient attempt never is.
  EXPECT_EQ(Svc.cache().stats().Stores, 1u);
  std::vector<CompileOutcome> Warm = Svc.compileBatch({R});
  ASSERT_EQ(Warm.size(), 1u);
  EXPECT_TRUE(Warm[0].CacheHit);
  EXPECT_FALSE(Warm[0].evaluation().at("watchdog_timeout").asBool());
}

//===----------------------------------------------------------------------===//
// Concurrency and determinism (TSan targets)
//===----------------------------------------------------------------------===//

TEST(CompileServiceResilience, ConcurrentCacheCorruptionRecoversUnderBatch) {
  std::string Dir = freshDir("chaos-corrupt");
  std::vector<CompileRequest> Reqs;
  for (int I = 0; I < 8; ++I)
    Reqs.push_back(makeVecAddRequest("chaos-" + std::to_string(I),
                                     makeDevPipeline(),
                                     "chaoscorr" + std::to_string(I)));

  // Cold 4-worker batch fills the disk tier.
  CompileService Cold = makeResilientService(4, ResiliencePolicy(), true, Dir);
  std::vector<CompileOutcome> ColdOut = Cold.compileBatch(Reqs);
  ASSERT_EQ(ColdOut.size(), Reqs.size());
  for (const CompileOutcome &O : ColdOut)
    ASSERT_TRUE(O.Error.empty()) << O.Error;

  // Every disk lookup in the warm batch is corrupted, concurrently, on 4
  // workers: each request must delete its entry, recompile, and converge
  // on the cold result — no aborts, no garbage served, no races.
  FaultPlan P;
  P.Seed = 99;
  P.RatePercent = 100;
  P.Sites = {faultsite::CacheCorrupt};
  InjectorGuard G(P);
  CompileService Warm = makeResilientService(4, ResiliencePolicy(), true, Dir);
  std::vector<CompileOutcome> Out = Warm.compileBatch(Reqs);
  ASSERT_EQ(Out.size(), Reqs.size());
  for (size_t I = 0; I < Out.size(); ++I) {
    EXPECT_TRUE(Out[I].Error.empty()) << Out[I].Error;
    EXPECT_FALSE(Out[I].CacheHit);
    EXPECT_EQ(Out[I].resultKey(), ColdOut[I].resultKey()) << "job " << I;
    ASSERT_EQ(Out[I].Resilience.InjectedFaults.size(), 1u) << "job " << I;
    EXPECT_EQ(Out[I].Resilience.InjectedFaults[0].Site,
              faultsite::CacheCorrupt);
  }
  EXPECT_EQ(Warm.cache().stats().CorruptEntries, Reqs.size());
  EXPECT_EQ(Warm.lastBatchStats().FaultsInjected, Reqs.size());
  EXPECT_EQ(FaultInjector::instance().unattributedCount(), 0u);
}

TEST(CompileServiceResilience, ChaosOutcomesAreWorkerCountIndependent) {
  // The injector's pure fire decision is the determinism claim: the same
  // plan over the same requests must produce identical resilience
  // handling on 1 worker and on 4, schedule notwithstanding.
  FaultPlan P;
  P.Seed = 2026;
  P.RatePercent = 30;
  P.Sites = {faultsite::ServiceEmit, faultsite::ServiceCompile};

  std::vector<CompileRequest> Reqs;
  for (int I = 0; I < 6; ++I)
    Reqs.push_back(makeVecAddRequest("det-" + std::to_string(I),
                                     makeDevPipeline(),
                                     "determ" + std::to_string(I)));

  ResiliencePolicy Pol;
  Pol.MaxAttempts = 3;
  Pol.DegradePresets = true;
  Pol.QuarantinePoison = true;

  FaultInjector::instance().configure(P);
  CompileService Seq = makeResilientService(1, Pol);
  std::vector<CompileOutcome> A = Seq.compileBatch(Reqs);
  EXPECT_EQ(FaultInjector::instance().unattributedCount(), 0u);
  unsigned SeqFaults = Seq.lastBatchStats().FaultsInjected;

  FaultInjector::instance().configure(P); // fresh event log, same plan
  CompileService Par = makeResilientService(4, Pol);
  std::vector<CompileOutcome> B = Par.compileBatch(Reqs);
  EXPECT_EQ(FaultInjector::instance().unattributedCount(), 0u);
  FaultInjector::instance().disarm();
  FaultInjector::instance().resetEvents();

  ASSERT_EQ(A.size(), Reqs.size());
  ASSERT_EQ(B.size(), Reqs.size());
  // The plan actually perturbed the batch (30% over 6 jobs x 2 sites).
  EXPECT_GT(SeqFaults, 0u);
  EXPECT_EQ(SeqFaults, Par.lastBatchStats().FaultsInjected);
  for (size_t I = 0; I < Reqs.size(); ++I) {
    EXPECT_EQ(resilienceProjection(A[I]), resilienceProjection(B[I]))
        << "job " << I;
    if (A[I].Error.empty() && B[I].Error.empty()) {
      EXPECT_EQ(A[I].resultKey(), B[I].resultKey()) << "job " << I;
    }
  }
}

//===----------------------------------------------------------------------===//
// gpusim cycle-budget watchdog
//===----------------------------------------------------------------------===//

/// Compiles a vecadd kernel and launches it under \p CycleBudget.
KernelStats launchVecAddWithBudget(uint64_t CycleBudget) {
  IRContext Ctx;
  Module M(Ctx, "watchdog");
  PipelineOptions P = makeDevPipeline();
  OMPCodeGen CG(M, {P.Scheme, false});
  Function *Kernel = buildVecAdd(CG, "watchdog_kernel", 4, 32);
  CompileResult CR = optimizeDeviceModule(M, P);
  EXPECT_FALSE(CR.VerifyFailed) << CR.VerifyError;

  const int N = 1000;
  GPUDevice Dev;
  std::vector<double> Host(N, 1.0);
  uint64_t DevA = Dev.allocateArray(Host);
  uint64_t DevB = Dev.allocateArray(Host);
  uint64_t DevC = Dev.allocate(N * sizeof(double));

  LaunchConfig LC;
  LC.GridDim = 4;
  LC.BlockDim = 32;
  LC.Flavor = P.Flavor;
  LC.CycleBudget = CycleBudget;
  NativeRuntimeBinding RTL =
      makeOpenMPRuntimeBinding(P.Flavor, Dev.getMachine());
  return Dev.launchKernel(M, Kernel, LC, {DevA, DevB, DevC, (uint64_t)N},
                          RTL);
}

TEST(CompileServiceResilience, WatchdogConvertsHangIntoDeterministicTimeout) {
  // A budget far below the kernel's real cost trips the watchdog: a
  // recoverable trap, never a hang — and the same budget traps at the
  // same cycle with the same message on every run.
  KernelStats S1 = launchVecAddWithBudget(64);
  EXPECT_TRUE(S1.WatchdogTimeout);
  EXPECT_EQ(S1.CycleBudget, 64u);
  EXPECT_NE(S1.Trap.find("watchdog: cycle budget 64 exceeded"),
            std::string::npos)
      << S1.Trap;

  KernelStats S2 = launchVecAddWithBudget(64);
  EXPECT_EQ(S1.Trap, S2.Trap);
  EXPECT_EQ(S1.WatchdogTimeout, S2.WatchdogTimeout);

  // A generous budget (FuzzSimCycleBudget, the fuzz campaign default, is
  // far above any real kernel) never fires and is still echoed for
  // report consumers.
  const uint64_t Generous = 100000000;
  KernelStats S3 = launchVecAddWithBudget(Generous);
  EXPECT_TRUE(S3.ok()) << S3.Trap;
  EXPECT_FALSE(S3.WatchdogTimeout);
  EXPECT_EQ(S3.CycleBudget, Generous);
}

//===----------------------------------------------------------------------===//
// Compile-report schema v6
//===----------------------------------------------------------------------===//

TEST(CompileServiceResilience, ReportV6ResilienceSectionRoundTrips) {
  CompileService Svc = makeResilientService(1, ResiliencePolicy());
  std::vector<CompileOutcome> Out = Svc.compileBatch(
      {makeVecAddRequest("v6", makeDevPipeline(), "reportvsix")});
  ASSERT_EQ(Out.size(), 1u);
  ASSERT_TRUE(Out[0].Error.empty()) << Out[0].Error;

  const json::Value &Report = Out[0].report();
  EXPECT_EQ(Report.at("schema_version").asInt(),
            (int64_t)CompileReportSchemaVersion);

  // The service overwrites the inert default with this run's handling,
  // both in the report and as the payload's top-level member.
  const json::Value &RSec = Report.at("resilience");
  ASSERT_TRUE(RSec.isObject());
  EXPECT_TRUE(RSec.at("managed").asBool());
  EXPECT_EQ(RSec.at("attempts").asInt(), 1);
  EXPECT_EQ(RSec.at("retries").asInt(), 0);
  EXPECT_EQ(RSec.at("degraded_to").asString(), "");
  EXPECT_FALSE(RSec.at("quarantined").asBool());
  EXPECT_TRUE(RSec.at("injected_faults").isArray());
  EXPECT_EQ(Out[0].Payload.at("resilience").str(), RSec.str());

  // The *stored* entry keeps the run-independent default, so a warm hit
  // reports its own (fresh) handling, not the storing run's.
  std::optional<json::Value> Entry = Svc.cache().lookup(Out[0].CacheKey);
  ASSERT_TRUE(Entry.has_value());
  EXPECT_FALSE(Entry->at("resilience").at("managed").asBool());

  std::vector<CompileOutcome> Warm = Svc.compileBatch(
      {makeVecAddRequest("v6", makeDevPipeline(), "reportvsix")});
  ASSERT_EQ(Warm.size(), 1u);
  EXPECT_TRUE(Warm[0].CacheHit);
  EXPECT_TRUE(Warm[0].report().at("resilience").at("managed").asBool());

  // Golden round-trip: the payload survives print -> parse -> print.
  std::string Err;
  json::Value Parsed;
  ASSERT_TRUE(json::parse(Out[0].Payload.str(), Parsed, &Err)) << Err;
  EXPECT_EQ(Parsed.str(), Out[0].Payload.str());
  EXPECT_EQ(Parsed.at("report").at("resilience").str(), RSec.str());
}

} // namespace
