//===- tests/TestFrontend.cpp - OpenMP codegen unit tests -------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the Clang-style front-end: the runtime function registry, the
/// structure both lowering schemes emit (Fig. 4b vs. 4c), query
/// lowerings, and the structured control-flow helpers.
///
//===----------------------------------------------------------------------===//

#include "frontend/CGHelpers.h"
#include "frontend/OMPCodeGen.h"
#include "ir/AsmWriter.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace ompgpu;

namespace {

class FrontendTest : public ::testing::Test {
protected:
  IRContext Ctx;
  Module M{Ctx, "fe"};

  unsigned countCalls(Function *F, RTFn Fn) {
    unsigned N = 0;
    for (BasicBlock *BB : *F)
      for (Instruction *I : *BB)
        if (auto *CI = dyn_cast<CallInst>(I))
          if (isRTFn(CI->getCalledFunction(), Fn))
            ++N;
    return N;
  }

  unsigned countCallsInModule(RTFn Fn) {
    unsigned N = 0;
    for (Function *F : M.functions())
      N += countCalls(F, Fn);
    return N;
  }

  void expectValidModule() {
    std::string Err;
    EXPECT_FALSE(verifyModule(M, &Err)) << Err << moduleToString(M);
  }
};

//===----------------------------------------------------------------------===//
// Runtime registry
//===----------------------------------------------------------------------===//

TEST_F(FrontendTest, RuntimeRegistryNamesAndTypes) {
  EXPECT_STREQ("__kmpc_target_init", getRTFnName(RTFn::TargetInit));
  EXPECT_STREQ("__kmpc_alloc_shared", getRTFnName(RTFn::AllocShared));
  EXPECT_STREQ("omp_get_thread_num", getRTFnName(RTFn::GetThreadNum));

  FunctionType *InitTy = getRTFnType(RTFn::TargetInit, Ctx);
  EXPECT_EQ(Ctx.getInt32Ty(), InitTy->getReturnType());
  ASSERT_EQ(2u, InitTy->getNumParams());
  EXPECT_EQ(Ctx.getInt32Ty(), InitTy->getParamType(0));
  EXPECT_EQ(Ctx.getInt1Ty(), InitTy->getParamType(1));

  FunctionType *AllocTy = getRTFnType(RTFn::AllocShared, Ctx);
  EXPECT_TRUE(AllocTy->getReturnType()->isPointerTy());
  ASSERT_EQ(1u, AllocTy->getNumParams());
  EXPECT_EQ(Ctx.getInt64Ty(), AllocTy->getParamType(0));
}

TEST_F(FrontendTest, RuntimeDeclarationsCarryCanonicalAttributes) {
  Function *Tid = getOrCreateRTFn(M, RTFn::HardwareThreadId);
  EXPECT_TRUE(Tid->hasFnAttr(FnAttr::ReadNone));
  EXPECT_TRUE(Tid->hasFnAttr(FnAttr::NoSync));

  Function *Barrier = getOrCreateRTFn(M, RTFn::BarrierSimpleSPMD);
  EXPECT_TRUE(Barrier->hasFnAttr(FnAttr::Convergent));
  EXPECT_FALSE(Barrier->hasFnAttr(FnAttr::NoSync));

  Function *Alloc = getOrCreateRTFn(M, RTFn::AllocShared);
  EXPECT_FALSE(Alloc->hasFnAttr(FnAttr::ReadNone));
  EXPECT_TRUE(Alloc->hasFnAttr(FnAttr::NoSync));
}

TEST_F(FrontendTest, RTFnIdentificationByName) {
  Function *Init = getOrCreateRTFn(M, RTFn::TargetInit);
  EXPECT_TRUE(isRTFn(Init, RTFn::TargetInit));
  EXPECT_FALSE(isRTFn(Init, RTFn::TargetDeinit));
  EXPECT_TRUE(isAnyRTFn(Init));
  Function *User = M.createFunction(
      "user_fn", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  EXPECT_FALSE(isAnyRTFn(User));
}

//===----------------------------------------------------------------------===//
// Kernel skeletons per scheme
//===----------------------------------------------------------------------===//

TEST_F(FrontendTest, SPMDKernelSkeleton) {
  OMPCodeGen CG(M, {CodeGenScheme::Simplified13, false});
  TargetRegionBuilder TRB(CG, "k", {}, ExecMode::SPMD, 4, 64);
  Function *K = TRB.finalize();
  expectValidModule();

  // target_init(SPMD, /*UseGenericStateMachine=*/false).
  auto *Init = dyn_cast<CallInst>(K->getEntryBlock()->front());
  ASSERT_NE(nullptr, Init);
  EXPECT_TRUE(isRTFn(Init->getCalledFunction(), RTFn::TargetInit));
  EXPECT_EQ(OMP_TGT_EXEC_MODE_SPMD,
            cast<ConstantInt>(Init->getArgOperand(0))->getValue());
  EXPECT_EQ(0, cast<ConstantInt>(Init->getArgOperand(1))->getValue());
  EXPECT_EQ(1u, countCalls(K, RTFn::TargetDeinit));
  EXPECT_TRUE(K->isKernel());
  EXPECT_EQ(64, K->getKernelEnvironment().MaxThreads);
  EXPECT_EQ(4, K->getKernelEnvironment().NumTeams);
}

TEST_F(FrontendTest, GenericKernelUsesRuntimeStateMachineInDevScheme) {
  OMPCodeGen CG(M, {CodeGenScheme::Simplified13, false});
  TargetRegionBuilder TRB(CG, "k", {}, ExecMode::Generic, 4, 64);
  Function *K = TRB.finalize();
  auto *Init = dyn_cast<CallInst>(K->getEntryBlock()->front());
  ASSERT_NE(nullptr, Init);
  // UseGenericStateMachine = true: the worker loop lives in the runtime.
  EXPECT_EQ(1, cast<ConstantInt>(Init->getArgOperand(1))->getValue());
  for (BasicBlock *BB : *K)
    EXPECT_EQ(std::string::npos,
              BB->getName().find("worker_state_machine"));
}

TEST_F(FrontendTest, Legacy12GenericKernelEmitsFrontEndStateMachine) {
  OMPCodeGen CG(M, {CodeGenScheme::Legacy12, false});
  TargetRegionBuilder TRB(CG, "k", {}, ExecMode::Generic, 4, 64);
  std::vector<TargetRegionBuilder::Capture> Caps;
  TRB.emitParallelFor(TRB.getBuilder().getInt32(4), Caps,
                      [&](IRBuilder &, Value *,
                          const TargetRegionBuilder::CaptureMap &) {});
  Function *K = TRB.finalize();
  expectValidModule();

  // The front-end state machine exists, with a function-pointer compare
  // cascade and an indirect fallback (the [4] design).
  bool FoundSM = false, FoundIndirect = false, FoundCompare = false;
  for (BasicBlock *BB : *K) {
    if (BB->getName().find("worker") != std::string::npos)
      FoundSM = true;
    for (Instruction *I : *BB) {
      if (auto *CI = dyn_cast<CallInst>(I))
        if (CI->isIndirectCall())
          FoundIndirect = true;
      if (auto *Cmp = dyn_cast<ICmpInst>(I))
        if (isa<Function>(Cmp->getRHS()) || isa<Function>(Cmp->getLHS()))
          FoundCompare = true;
    }
  }
  EXPECT_TRUE(FoundSM);
  EXPECT_TRUE(FoundIndirect);
  EXPECT_TRUE(FoundCompare);
}

//===----------------------------------------------------------------------===//
// Globalization decisions (Fig. 4)
//===----------------------------------------------------------------------===//

TEST_F(FrontendTest, Simplified13GlobalizesPerVariable) {
  OMPCodeGen CG(M, {CodeGenScheme::Simplified13, false});
  TargetRegionBuilder TRB(CG, "k", {}, ExecMode::Generic, 2, 64);
  TRB.emitLocalVariable(Ctx.getDoubleTy(), "a", /*AddressTaken=*/true);
  TRB.emitLocalVariable(Ctx.getDoubleTy(), "b", /*AddressTaken=*/true);
  TRB.emitLocalVariable(Ctx.getDoubleTy(), "c", /*AddressTaken=*/false);
  Function *K = TRB.finalize();
  expectValidModule();
  EXPECT_EQ(2u, countCalls(K, RTFn::AllocShared));
  EXPECT_EQ(2u, countCalls(K, RTFn::FreeShared));
  unsigned Allocas = 0;
  for (BasicBlock *BB : *K)
    for (Instruction *I : *BB)
      Allocas += isa<AllocaInst>(I);
  EXPECT_EQ(1u, Allocas); // only the non-address-taken local
}

TEST_F(FrontendTest, Legacy12SPMDUsesStackForLocals) {
  // The unsound LLVM 12 special case: SPMD-region locals on the stack.
  OMPCodeGen CG(M, {CodeGenScheme::Legacy12, false});
  TargetRegionBuilder TRB(CG, "k", {}, ExecMode::SPMD, 2, 64);
  TRB.emitLocalVariable(Ctx.getDoubleTy(), "a", /*AddressTaken=*/true);
  Function *K = TRB.finalize();
  EXPECT_EQ(0u, countCalls(K, RTFn::AllocShared));
  EXPECT_EQ(0u, countCalls(K, RTFn::CoalescedPushStack));
}

TEST_F(FrontendTest, Legacy12GenericUsesCoalescedPush) {
  OMPCodeGen CG(M, {CodeGenScheme::Legacy12, false});
  TargetRegionBuilder TRB(CG, "k", {}, ExecMode::Generic, 2, 64);
  TRB.emitLocalVariable(Ctx.getDoubleTy(), "a", /*AddressTaken=*/true);
  Function *K = TRB.finalize();
  EXPECT_EQ(1u, countCalls(K, RTFn::CoalescedPushStack));
  EXPECT_EQ(1u, countCalls(K, RTFn::PopStack));
}

TEST_F(FrontendTest, Legacy12GroupAggregatesIntoOnePush) {
  OMPCodeGen CG(M, {CodeGenScheme::Legacy12, false});
  TargetRegionBuilder TRB(CG, "k", {}, ExecMode::Generic, 2, 64);
  std::vector<std::pair<Type *, std::string>> Vars;
  for (int I = 0; I < 18; ++I)
    Vars.push_back({Ctx.getDoubleTy(), "v" + std::to_string(I)});
  std::vector<Value *> Ptrs = TRB.emitLocalVariableGroup(Vars, true);
  Function *K = TRB.finalize();
  EXPECT_EQ(18u, Ptrs.size());
  EXPECT_EQ(1u, countCalls(K, RTFn::CoalescedPushStack)); // aggregated!
}

TEST_F(FrontendTest, Simplified13GroupEmitsOneAllocPerVariable) {
  OMPCodeGen CG(M, {CodeGenScheme::Simplified13, false});
  TargetRegionBuilder TRB(CG, "k", {}, ExecMode::Generic, 2, 64);
  std::vector<std::pair<Type *, std::string>> Vars;
  for (int I = 0; I < 18; ++I)
    Vars.push_back({Ctx.getDoubleTy(), "v" + std::to_string(I)});
  TRB.emitLocalVariableGroup(Vars, true);
  Function *K = TRB.finalize();
  EXPECT_EQ(18u, countCalls(K, RTFn::AllocShared)); // one per variable
}

TEST_F(FrontendTest, CudaModeNeverGlobalizes) {
  OMPCodeGen CG(M, {CodeGenScheme::Simplified13, /*CudaMode=*/true});
  TargetRegionBuilder TRB(CG, "k", {}, ExecMode::Generic, 2, 64);
  TRB.emitLocalVariable(Ctx.getDoubleTy(), "a", true);
  Function *K = TRB.finalize();
  EXPECT_EQ(0u, countCalls(K, RTFn::AllocShared));
}

TEST_F(FrontendTest, DeviceFnLocalLegacyEmitsRuntimeCheckedDispatch) {
  // Fig. 4b: unknown execution context -> is_spmd dispatch between stack
  // and coalesced push.
  OMPCodeGen CG(M, {CodeGenScheme::Legacy12, false});
  Function *F = M.createFunction(
      "devfn", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  std::vector<std::function<void(IRBuilder &)>> Cleanups;
  CG.emitDeviceFnLocal(B, Ctx.getDoubleTy(), "Lcl", true, Cleanups);
  OMPCodeGen::emitCleanups(B, Cleanups);
  B.createRetVoid();
  expectValidModule();
  EXPECT_GE(countCalls(F, RTFn::IsSPMDMode), 2u); // alloc + cleanup checks
  EXPECT_EQ(1u, countCalls(F, RTFn::CoalescedPushStack));
}

//===----------------------------------------------------------------------===//
// Query lowerings and parallel-region plumbing
//===----------------------------------------------------------------------===//

TEST_F(FrontendTest, ThreadNumLoweringEmitsFoldableChecks) {
  OMPCodeGen CG(M, {CodeGenScheme::Simplified13, false});
  Function *F = M.createFunction(
      "q", Ctx.getFunctionTy(Ctx.getInt32Ty(), {}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  Value *Tid = CG.emitThreadNum(B);
  B.createRet(Tid);
  expectValidModule();
  EXPECT_EQ(1u, countCalls(F, RTFn::IsSPMDMode));
  EXPECT_EQ(1u, countCalls(F, RTFn::ParallelLevel));
  EXPECT_GE(countCalls(F, RTFn::HardwareThreadId), 2u);
}

TEST_F(FrontendTest, ParallelForCapturesTripCountAndValues) {
  OMPCodeGen CG(M, {CodeGenScheme::Simplified13, false});
  TargetRegionBuilder TRB(CG, "k", {Ctx.getPtrTy()}, ExecMode::Generic, 2,
                          64);
  Argument *P = TRB.getParam(0);
  std::vector<TargetRegionBuilder::Capture> Caps = {{P, false, "p"}};
  bool SawMappedPtr = false, SawIdx = false;
  TRB.emitParallelFor(
      TRB.getBuilder().getInt32(10), Caps,
      [&](IRBuilder &LB, Value *Idx,
          const TargetRegionBuilder::CaptureMap &Map) {
        SawMappedPtr = Map.count(P) && Map.at(P) != P;
        SawIdx = Idx != nullptr;
        LB.createStore(LB.getDouble(0.0),
                       LB.createGEP(Ctx.getDoubleTy(), Map.at(P), {Idx}));
      });
  TRB.finalize();
  expectValidModule();
  EXPECT_TRUE(SawMappedPtr); // values are remapped inside the wrapper
  EXPECT_TRUE(SawIdx);
  EXPECT_EQ(1u, countCallsInModule(RTFn::Parallel51));
  // The nested-parallelism fallback checks the parallel level.
  EXPECT_GE(countCallsInModule(RTFn::ParallelLevel), 1u);
}

TEST_F(FrontendTest, BarrierLoweringDispatchesOnExecutionMode) {
  OMPCodeGen CG(M, {CodeGenScheme::Simplified13, false});
  Function *F = M.createFunction(
      "b", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  CG.emitBarrier(B);
  B.createRetVoid();
  expectValidModule();
  EXPECT_EQ(1u, countCalls(F, RTFn::IsSPMDMode));
  EXPECT_EQ(1u, countCalls(F, RTFn::BarrierSimpleSPMD));
  EXPECT_EQ(1u, countCalls(F, RTFn::Barrier));
}

//===----------------------------------------------------------------------===//
// Structured control-flow helpers
//===----------------------------------------------------------------------===//

TEST_F(FrontendTest, CountedLoopStructure) {
  Function *F = M.createFunction(
      "loop", Ctx.getFunctionTy(Ctx.getInt32Ty(), {Ctx.getInt32Ty()}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  Value *Acc = B.createAlloca(Ctx.getInt32Ty());
  B.createStore(B.getInt32(0), Acc);
  emitCountedLoop(B, B.getInt32(0), F->getArg(0), B.getInt32(1), "l",
                  [&](IRBuilder &LB, Value *I) {
                    Value *V = LB.createLoad(Ctx.getInt32Ty(), Acc);
                    LB.createStore(LB.createAdd(V, I), Acc);
                  });
  B.createRet(B.createLoad(Ctx.getInt32Ty(), Acc));
  std::string Err;
  EXPECT_FALSE(verifyFunction(*F, &Err)) << Err;
  EXPECT_EQ(4u, F->size()); // entry, header, body, exit
}

TEST_F(FrontendTest, WhileLoopAndSelectViaCFG) {
  Function *F = M.createFunction(
      "w", Ctx.getFunctionTy(Ctx.getInt32Ty(), {Ctx.getInt1Ty()}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  Value *V = emitSelectViaCFG(
      B, F->getArg(0), Ctx.getInt32Ty(), "sel",
      [&](IRBuilder &TB) -> Value * { return TB.getInt32(1); },
      [&](IRBuilder &EB) -> Value * { return EB.getInt32(2); });
  B.createRet(V);
  std::string Err;
  EXPECT_FALSE(verifyFunction(*F, &Err)) << Err;
  EXPECT_TRUE(isa<PhiInst>(V));
}

} // namespace
