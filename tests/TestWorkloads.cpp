//===- tests/TestWorkloads.cpp - Proxy-app correctness tests ---------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs every proxy application under every evaluated compiler
/// configuration (small problem sizes, all blocks simulated) and checks
/// the outputs against the host references. This is the guarantee that
/// the optimizations of Sec. IV preserve semantics on the benchmarks.
///
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include <gtest/gtest.h>

using namespace ompgpu;

namespace {

using FactoryFn = std::unique_ptr<Workload> (*)(ProblemSize);

struct WorkloadCase {
  const char *Name;
  FactoryFn Factory;
  bool HasCUDA;
};

const WorkloadCase Cases[] = {
    {"XSBench", createXSBench, true},
    {"RSBench", createRSBench, true},
    {"SU3Bench", createSU3Bench, true},
    {"miniQMC", createMiniQMC, false},
};

class WorkloadCorrectness
    : public ::testing::TestWithParam<WorkloadCase> {};

void expectCorrect(const WorkloadCase &C, const PipelineOptions &P,
                   bool UseCUDA = false) {
  std::unique_ptr<Workload> W = C.Factory(ProblemSize::Small);
  HarnessOptions HO;
  HO.UseCUDAKernel = UseCUDA;
  WorkloadRunResult R = runWorkload(*W, P, HO);
  ASSERT_TRUE(R.Stats.ok())
      << C.Name << " / " << P.Name << ": " << R.Stats.Trap;
  ASSERT_TRUE(R.Checked) << C.Name << " / " << P.Name;
  EXPECT_TRUE(R.Correct) << C.Name << " / " << P.Name
                         << " produced wrong results";
  EXPECT_FALSE(R.Compile.VerifyFailed) << R.Compile.VerifyError;
}

TEST_P(WorkloadCorrectness, LLVM12) {
  expectCorrect(GetParam(), makeLLVM12Pipeline());
}

TEST_P(WorkloadCorrectness, DevNoOpt) {
  expectCorrect(GetParam(), makeDevNoOptPipeline());
}

TEST_P(WorkloadCorrectness, DevAllOpts) {
  expectCorrect(GetParam(), makeDevPipeline());
}

TEST_P(WorkloadCorrectness, DevHeapToStackOnly) {
  expectCorrect(GetParam(),
                makeDevPipeline(true, false, false, false, false));
}

TEST_P(WorkloadCorrectness, DevH2S2) {
  expectCorrect(GetParam(),
                makeDevPipeline(true, true, false, false, false));
}

TEST_P(WorkloadCorrectness, DevH2S2RTC) {
  expectCorrect(GetParam(),
                makeDevPipeline(true, true, true, false, false));
}

TEST_P(WorkloadCorrectness, DevH2S2RTCCSM) {
  expectCorrect(GetParam(),
                makeDevPipeline(true, true, true, true, false));
}

TEST_P(WorkloadCorrectness, CUDA) {
  const WorkloadCase &C = GetParam();
  if (!C.HasCUDA)
    GTEST_SKIP() << C.Name << " is OpenMP-only";
  expectCorrect(C, makeCUDAPipeline(), /*UseCUDA=*/true);
}

INSTANTIATE_TEST_SUITE_P(
    Proxies, WorkloadCorrectness, ::testing::ValuesIn(Cases),
    [](const ::testing::TestParamInfo<WorkloadCase> &Info) {
      return std::string(Info.param.Name);
    });

} // namespace
