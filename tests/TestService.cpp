//===- tests/TestService.cpp - Compile service & cache tests ---------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the compile service (src/service/): batched compilation is
/// bit-identical to sequential, the cache hits on identical inputs and
/// misses on any pipeline/salt change, per-compile remark and statistic
/// sinks stay isolated under concurrency, corrupt disk entries fall back
/// to recompilation, and the entry cap evicts oldest-first.
///
//===----------------------------------------------------------------------===//

#include "service/CompileService.h"
#include "support/FileSystem.h"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace ompgpu;

namespace {

/// Builds a `target teams distribute parallel for` vector-add kernel with a
/// caller-chosen name, so a batch can contain many distinguishable modules.
Function *buildVecAdd(OMPCodeGen &CG, const std::string &Name, int NumTeams,
                      int NumThreads) {
  IRContext &Ctx = CG.getContext();
  Type *PtrTy = Ctx.getPtrTy();
  Type *I32 = Ctx.getInt32Ty();
  TargetRegionBuilder TRB(CG, Name, {PtrTy, PtrTy, PtrTy, I32},
                          ExecMode::SPMD, NumTeams, NumThreads);
  Argument *A = TRB.getParam(0);
  Argument *B = TRB.getParam(1);
  Argument *C = TRB.getParam(2);
  Argument *N = TRB.getParam(3);

  std::vector<TargetRegionBuilder::Capture> Caps = {
      {A, false, "a"}, {B, false, "b"}, {C, false, "c"}};
  TRB.emitDistributeParallelFor(
      N, Caps,
      [&](IRBuilder &LB, Value *Idx,
          const TargetRegionBuilder::CaptureMap &Map) {
        Type *F64 = LB.getDoubleTy();
        Value *Ai = LB.createGEP(F64, Map.at(A), {Idx}, "a.i");
        Value *Bi = LB.createGEP(F64, Map.at(B), {Idx}, "b.i");
        Value *Ci = LB.createGEP(F64, Map.at(C), {Idx}, "c.i");
        Value *Av = LB.createLoad(F64, Ai, "a.v");
        Value *Bv = LB.createLoad(F64, Bi, "b.v");
        LB.createStore(LB.createFAdd(Av, Bv, "sum"), Ci);
      });
  return TRB.finalize();
}

/// A request that emits a vecadd kernel named \p KernelName under the
/// request's pipeline scheme. The Evaluate callback records the entry
/// kernel and the remark count, exercising the cached-evaluation path.
CompileRequest makeVecAddRequest(const std::string &Id,
                                 const PipelineOptions &P,
                                 const std::string &KernelName,
                                 int NumThreads = 64, uint64_t Salt = 0) {
  CompileRequest R;
  R.Id = Id;
  R.Pipeline = P;
  R.Salt = Salt;
  CodeGenScheme Scheme = P.Scheme;
  R.Emit = [Scheme, KernelName, NumThreads](Module &M) {
    OMPCodeGen CG(M, {Scheme, false});
    return buildVecAdd(CG, KernelName, 4, NumThreads)->getName();
  };
  R.Evaluate = [](Module &, const CompileResult &CR,
                  const std::string &EntryKernel) {
    return json::Value::makeObject()
        .set("kernel", EntryKernel)
        .set("remark_count", (uint64_t)CR.Remarks.remarks().size())
        .set("verify_failed", CR.VerifyFailed);
  };
  return R;
}

/// A memory-only cache-enabled service with \p Workers workers.
CompileService makeService(unsigned Workers, bool CacheEnabled = true,
                           std::string Dir = "", size_t MaxEntries = 4096) {
  CompileService::Options O;
  O.Workers = Workers;
  O.Cache.Enabled = CacheEnabled;
  O.Cache.Dir = std::move(Dir);
  O.Cache.MaxEntries = MaxEntries;
  return CompileService(std::move(O));
}

/// Fresh, empty per-test scratch directory under the gtest temp dir.
std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "ompgpu-svc-" + Name;
  for (const std::string &F : listDirectoryFiles(Dir))
    (void)removeFile(Dir + "/" + F);
  EXPECT_FALSE(ensureDirectory(Dir));
  return Dir;
}

TEST(CompileService, BatchedIsBitIdenticalToSequential) {
  std::vector<CompileRequest> Reqs;
  std::vector<PipelineOptions> Pipelines = {
      makeLLVM12Pipeline(), makeDevNoOptPipeline(), makeDevPipeline()};
  for (int I = 0; I < 9; ++I)
    Reqs.push_back(makeVecAddRequest("job-" + std::to_string(I),
                                     Pipelines[I % Pipelines.size()],
                                     "bident" + std::to_string(I), 32 + I));

  // Cache disabled on both sides: every job really compiles.
  CompileService Seq = makeService(1, /*CacheEnabled=*/false);
  CompileService Par = makeService(4, /*CacheEnabled=*/false);
  std::vector<CompileOutcome> A = Seq.compileBatch(Reqs);
  std::vector<CompileOutcome> B = Par.compileBatch(Reqs);

  ASSERT_EQ(A.size(), Reqs.size());
  ASSERT_EQ(B.size(), Reqs.size());
  for (size_t I = 0; I < Reqs.size(); ++I) {
    // Results come back in request order regardless of worker scheduling.
    EXPECT_EQ(A[I].Id, Reqs[I].Id);
    EXPECT_EQ(B[I].Id, Reqs[I].Id);
    EXPECT_TRUE(A[I].Error.empty()) << A[I].Error;
    EXPECT_TRUE(B[I].Error.empty()) << B[I].Error;
    EXPECT_EQ(A[I].InputIRHash, B[I].InputIRHash);
    EXPECT_EQ(A[I].resultKey(), B[I].resultKey()) << "job " << I;
  }
  EXPECT_EQ(Par.lastBatchStats().Jobs, Reqs.size());
  EXPECT_EQ(Par.lastBatchStats().Failed, 0u);
}

TEST(CompileService, CacheHitsOnIdenticalRequest) {
  CompileService Svc = makeService(1);
  std::vector<CompileRequest> Reqs = {
      makeVecAddRequest("hit", makeDevPipeline(), "cachehit")};

  std::vector<CompileOutcome> Cold = Svc.compileBatch(Reqs);
  ASSERT_EQ(Cold.size(), 1u);
  EXPECT_TRUE(Cold[0].Cacheable);
  EXPECT_FALSE(Cold[0].CacheHit);
  EXPECT_FALSE(Cold[0].CacheKey.empty());

  std::vector<CompileOutcome> Warm = Svc.compileBatch(Reqs);
  ASSERT_EQ(Warm.size(), 1u);
  EXPECT_TRUE(Warm[0].CacheHit);
  EXPECT_EQ(Warm[0].CacheKey, Cold[0].CacheKey);
  // The cached payload is the stored payload: summary and evaluation are
  // bit-identical (the report keeps the storing compile's timings).
  EXPECT_EQ(Warm[0].resultKey(), Cold[0].resultKey());

  CompileCacheStats S = Svc.cache().stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Stores, 1u);
}

TEST(CompileService, CacheMissesOnPipelineOrSaltChange) {
  CompileService Svc = makeService(1);
  // All three share one Id: the request Id names the emitted module and is
  // therefore part of the input IR hash, so keeping it constant isolates
  // the pipeline-fingerprint and salt contributions to the key.
  CompileRequest Dev = makeVecAddRequest("misskey", makeDevPipeline(), "misskey");
  CompileRequest NoOpt =
      makeVecAddRequest("misskey", makeDevNoOptPipeline(), "misskey");
  CompileRequest Salted =
      makeVecAddRequest("misskey", makeDevPipeline(), "misskey", 64,
                        /*Salt=*/0xfeed);

  std::vector<CompileOutcome> Out = Svc.compileBatch({Dev, NoOpt, Salted});
  ASSERT_EQ(Out.size(), 3u);
  // Dev and DevNoOpt share the front-end scheme, so the input IR is the
  // same module — only the pipeline fingerprint separates the keys.
  EXPECT_EQ(Out[0].InputIRHash, Out[1].InputIRHash);
  EXPECT_NE(Out[0].CacheKey, Out[1].CacheKey);
  // Same IR, same pipeline, different salt: still a distinct entry.
  EXPECT_EQ(Out[0].InputIRHash, Out[2].InputIRHash);
  EXPECT_NE(Out[0].CacheKey, Out[2].CacheKey);
  for (const CompileOutcome &O : Out)
    EXPECT_FALSE(O.CacheHit);
  EXPECT_EQ(Svc.cache().stats().Misses, 3u);
}

TEST(CompileService, ExtraPassesAreUncacheable) {
  PipelineOptions P = makeDevPipeline();
  P.ExtraPasses.push_back({"test-noop", [](Module &) { return false; }});

  CompileService Svc = makeService(1);
  std::vector<CompileRequest> Reqs = {
      makeVecAddRequest("extra", P, "uncacheable")};
  std::vector<CompileOutcome> First = Svc.compileBatch(Reqs);
  std::vector<CompileOutcome> Second = Svc.compileBatch(Reqs);
  ASSERT_EQ(First.size(), 1u);
  ASSERT_EQ(Second.size(), 1u);
  EXPECT_FALSE(First[0].Cacheable);
  // An uncacheable request is never served from cache, even on repeat.
  EXPECT_FALSE(Second[0].CacheHit);
  EXPECT_EQ(Svc.cache().stats().Stores, 0u);
  EXPECT_EQ(Svc.cache().stats().Hits, 0u);
}

TEST(CompileService, ConcurrentSinksStayIsolated) {
  // Eight concurrent compiles, each with a unique kernel token. If remark
  // or statistic sinks leaked across workers, some outcome would mention
  // another job's kernel or diverge from its own sequential result.
  std::vector<CompileRequest> Reqs;
  for (int I = 0; I < 8; ++I)
    Reqs.push_back(makeVecAddRequest("iso-" + std::to_string(I),
                                     makeDevPipeline(),
                                     "isotok" + std::to_string(I)));

  CompileService Seq = makeService(1, /*CacheEnabled=*/false);
  CompileService Par = makeService(4, /*CacheEnabled=*/false);
  std::vector<CompileOutcome> A = Seq.compileBatch(Reqs);
  std::vector<CompileOutcome> B = Par.compileBatch(Reqs);
  ASSERT_EQ(B.size(), Reqs.size());

  for (size_t I = 0; I < Reqs.size(); ++I) {
    const std::string Own = "isotok" + std::to_string(I);
    const std::string &EntryKernel =
        B[I].summary().at("entry_kernel").asString();
    EXPECT_NE(EntryKernel.find(Own), std::string::npos) << EntryKernel;

    // No remark attributed to this compile may mention any other job's
    // kernel token.
    const json::Value &Remarks = B[I].report().at("remarks");
    ASSERT_TRUE(Remarks.isArray());
    for (const json::Value &R : Remarks.elements()) {
      std::string Blob = R.at("function").asString() + " " +
                         R.at("message").asString();
      for (size_t J = 0; J < Reqs.size(); ++J) {
        if (J == I)
          continue;
        EXPECT_EQ(Blob.find("isotok" + std::to_string(J)), std::string::npos)
            << "job " << I << " remark mentions job " << J << ": " << Blob;
      }
    }

    // Per-compile statistics and remark text equal the sequential run's.
    EXPECT_EQ(A[I].summary().at("statistics").str(),
              B[I].summary().at("statistics").str());
    EXPECT_EQ(A[I].resultKey(), B[I].resultKey());
  }
}

TEST(CompileService, CorruptDiskEntryFallsBackToRecompile) {
  std::string Dir = freshDir("corrupt");
  std::vector<CompileRequest> Reqs = {
      makeVecAddRequest("corrupt", makeDevPipeline(), "corruptentry")};

  CompileService First = makeService(1, true, Dir);
  std::vector<CompileOutcome> Cold = First.compileBatch(Reqs);
  ASSERT_EQ(Cold.size(), 1u);
  ASSERT_FALSE(Cold[0].CacheHit);
  std::string EntryFile = Dir + "/" + Cold[0].CacheKey + ".json";
  ASSERT_TRUE(fileExists(EntryFile));

  // Truncated garbage where the entry used to be.
  ASSERT_FALSE(writeTextFile(EntryFile, "{\"cache_schema\": 1, \"key\""));

  // A fresh service (empty memory tier) must hit the corrupt file, delete
  // it, count it, and recompile — never abort or serve garbage.
  CompileService Second = makeService(1, true, Dir);
  std::vector<CompileOutcome> Out = Second.compileBatch(Reqs);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_TRUE(Out[0].Error.empty()) << Out[0].Error;
  EXPECT_FALSE(Out[0].CacheHit);
  EXPECT_EQ(Out[0].resultKey(), Cold[0].resultKey());
  EXPECT_EQ(Second.cache().stats().CorruptEntries, 1u);
  // The recompile re-stored a valid entry.
  ASSERT_TRUE(fileExists(EntryFile));

  // Same story for well-formed JSON with the wrong schema version.
  ASSERT_FALSE(writeTextFile(
      EntryFile, "{\"cache_schema\": 999, \"key\": \"x\", \"payload\": {}}"));
  CompileService Third = makeService(1, true, Dir);
  std::vector<CompileOutcome> Again = Third.compileBatch(Reqs);
  ASSERT_EQ(Again.size(), 1u);
  EXPECT_FALSE(Again[0].CacheHit);
  EXPECT_EQ(Third.cache().stats().CorruptEntries, 1u);
  EXPECT_EQ(Again[0].resultKey(), Cold[0].resultKey());
}

TEST(CompileService, DiskCachePersistsAcrossServices) {
  std::string Dir = freshDir("persist");
  std::vector<CompileRequest> Reqs = {
      makeVecAddRequest("persist", makeDevPipeline(), "persistentry")};

  CompileService Writer = makeService(1, true, Dir);
  std::vector<CompileOutcome> Cold = Writer.compileBatch(Reqs);
  ASSERT_EQ(Cold.size(), 1u);
  EXPECT_FALSE(Cold[0].CacheHit);

  // A different service instance — simulating a later process — hits disk.
  CompileService Reader = makeService(1, true, Dir);
  std::vector<CompileOutcome> Warm = Reader.compileBatch(Reqs);
  ASSERT_EQ(Warm.size(), 1u);
  EXPECT_TRUE(Warm[0].CacheHit);
  EXPECT_EQ(Warm[0].resultKey(), Cold[0].resultKey());
  EXPECT_EQ(Reader.cache().stats().Hits, 1u);
}

TEST(CompileService, MemoryEvictionDropsOldestFirst) {
  CompileService Svc = makeService(1, true, "", /*MaxEntries=*/2);
  std::vector<CompileRequest> Reqs;
  for (int I = 0; I < 3; ++I)
    Reqs.push_back(makeVecAddRequest("evict-" + std::to_string(I),
                                     makeDevPipeline(),
                                     "evict" + std::to_string(I)));
  Svc.compileBatch(Reqs);
  EXPECT_GE(Svc.cache().stats().Evictions, 1u);

  // The newest entry must still be resident; the oldest was evicted.
  std::vector<CompileOutcome> Newest = Svc.compileBatch({Reqs[2]});
  EXPECT_TRUE(Newest[0].CacheHit);
  std::vector<CompileOutcome> Oldest = Svc.compileBatch({Reqs[0]});
  EXPECT_FALSE(Oldest[0].CacheHit);
}

TEST(CompileService, DiskEvictionRespectsEntryCap) {
  std::string Dir = freshDir("diskevict");
  CompileService Svc = makeService(1, true, Dir, /*MaxEntries=*/2);
  std::vector<CompileRequest> Reqs;
  for (int I = 0; I < 4; ++I)
    Reqs.push_back(makeVecAddRequest("dev-" + std::to_string(I),
                                     makeDevPipeline(),
                                     "diskevict" + std::to_string(I)));
  Svc.compileBatch(Reqs);
  EXPECT_LE(listDirectoryFiles(Dir).size(), 2u);
}

TEST(CompileService, FailedJobDoesNotTearDownBatch) {
  CompileRequest Bad;
  Bad.Id = "bad";
  Bad.Pipeline = makeDevPipeline();
  Bad.Emit = [](Module &) -> std::string {
    throw std::runtime_error("synthetic emit failure");
  };

  std::vector<CompileRequest> Reqs = {
      makeVecAddRequest("good-0", makeDevPipeline(), "survives0"), Bad,
      makeVecAddRequest("good-1", makeDevPipeline(), "survives1")};

  CompileService Svc = makeService(2);
  std::vector<CompileOutcome> Out = Svc.compileBatch(Reqs);
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_TRUE(Out[0].Error.empty()) << Out[0].Error;
  EXPECT_NE(Out[1].Error.find("synthetic emit failure"), std::string::npos)
      << Out[1].Error;
  EXPECT_TRUE(Out[2].Error.empty()) << Out[2].Error;
  EXPECT_EQ(Svc.lastBatchStats().Failed, 1u);

  // A failed job is never cached: retrying compiles again, no bogus hit.
  std::vector<CompileOutcome> Retry = Svc.compileBatch({Bad});
  ASSERT_EQ(Retry.size(), 1u);
  EXPECT_FALSE(Retry[0].CacheHit);
  EXPECT_FALSE(Retry[0].Error.empty());
}

TEST(CompileService, ReportCarriesCacheSection) {
  CompileService Svc = makeService(1);
  std::vector<CompileOutcome> Out = Svc.compileBatch(
      {makeVecAddRequest("report", makeDevPipeline(), "reportcache")});
  ASSERT_EQ(Out.size(), 1u);
  const json::Value &Cache = Out[0].report().at("cache");
  ASSERT_TRUE(Cache.isObject());
  EXPECT_TRUE(Cache.at("managed").asBool());
  EXPECT_TRUE(Cache.at("cacheable").asBool());
  EXPECT_EQ(Cache.at("key").asString(), Out[0].CacheKey);

  // Outside the service, buildCompileReport marks the compile unmanaged.
  CompileService NoCache = makeService(1, /*CacheEnabled=*/false);
  std::vector<CompileOutcome> Bare = NoCache.compileBatch(
      {makeVecAddRequest("bare", makeDevPipeline(), "reportnocache")});
  ASSERT_EQ(Bare.size(), 1u);
  EXPECT_FALSE(Bare[0].Cacheable);
}

} // namespace
