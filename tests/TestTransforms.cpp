//===- tests/TestTransforms.cpp - Scalar transform unit tests ---------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "transforms/Cloning.h"
#include "transforms/ConstantFold.h"
#include "transforms/FunctionAttrs.h"
#include "transforms/Inliner.h"
#include "transforms/Mem2Reg.h"
#include "transforms/Simplify.h"
#include "transforms/StoreToLoadForwarding.h"

#include <gtest/gtest.h>

using namespace ompgpu;

namespace {

class TransformsTest : public ::testing::Test {
protected:
  IRContext Ctx;
  Module M{Ctx, "test"};

  void expectValid(Function *F) {
    std::string Err;
    EXPECT_FALSE(verifyFunction(*F, &Err)) << Err;
  }

  size_t countInsts(Function *F) {
    size_t N = 0;
    for (BasicBlock *BB : *F)
      N += BB->size();
    return N;
  }
};

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

struct FoldCase {
  BinaryOp Op;
  int64_t L, R, Expect;
};

class BinFoldTest : public ::testing::TestWithParam<FoldCase> {};

TEST_P(BinFoldTest, FoldsIntegerOps) {
  IRContext Ctx;
  Module M(Ctx, "fold");
  Function *F = M.createFunction(
      "f", Ctx.getFunctionTy(Ctx.getInt64Ty(), {}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  FoldCase C = GetParam();
  Value *V = B.createBinOp(C.Op, B.getInt64(C.L), B.getInt64(C.R));
  B.createRet(V);

  Constant *Folded = constantFoldInstruction(cast<Instruction>(V), Ctx);
  ASSERT_NE(nullptr, Folded);
  EXPECT_EQ(C.Expect, cast<ConstantInt>(Folded)->getValue());
}

INSTANTIATE_TEST_SUITE_P(
    IntegerOps, BinFoldTest,
    ::testing::Values(FoldCase{BinaryOp::Add, 7, 5, 12},
                      FoldCase{BinaryOp::Sub, 7, 5, 2},
                      FoldCase{BinaryOp::Mul, -3, 5, -15},
                      FoldCase{BinaryOp::SDiv, -15, 4, -3},
                      FoldCase{BinaryOp::SRem, -15, 4, -3},
                      FoldCase{BinaryOp::UDiv, 15, 4, 3},
                      FoldCase{BinaryOp::And, 12, 10, 8},
                      FoldCase{BinaryOp::Or, 12, 10, 14},
                      FoldCase{BinaryOp::Xor, 12, 10, 6},
                      FoldCase{BinaryOp::Shl, 3, 4, 48},
                      FoldCase{BinaryOp::LShr, 48, 4, 3},
                      FoldCase{BinaryOp::AShr, -16, 2, -4}));

TEST_F(TransformsTest, DivisionByZeroDoesNotFold) {
  Function *F = M.createFunction("f",
                                 Ctx.getFunctionTy(Ctx.getInt32Ty(), {}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  Value *V = B.createSDiv(B.getInt32(1), B.getInt32(0));
  B.createRet(V);
  EXPECT_EQ(nullptr, constantFoldInstruction(cast<Instruction>(V), Ctx));
}

TEST_F(TransformsTest, FoldsComparisonsAndSelects) {
  Function *F = M.createFunction("f",
                                 Ctx.getFunctionTy(Ctx.getInt32Ty(), {}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  Value *C = B.createICmpSLT(B.getInt32(3), B.getInt32(4));
  Value *S = B.createSelect(C, B.getInt32(10), B.getInt32(20));
  B.createRet(S);

  Constant *FC = constantFoldInstruction(cast<Instruction>(C), Ctx);
  ASSERT_NE(nullptr, FC);
  EXPECT_EQ(1, cast<ConstantInt>(FC)->getValue());
  // Fold the condition first, then the select.
  foldConstants(*F);
  auto *Ret = cast<RetInst>(F->getEntryBlock()->getTerminator());
  EXPECT_EQ(Ctx.getInt32(10), Ret->getReturnValue());
}

TEST_F(TransformsTest, FoldsMathAndCasts) {
  Function *F = M.createFunction(
      "f", Ctx.getFunctionTy(Ctx.getDoubleTy(), {}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  Value *S = B.createMath(MathOp::Sqrt, {B.getDouble(16.0)});
  B.createRet(S);
  Constant *FS = constantFoldInstruction(cast<Instruction>(S), Ctx);
  ASSERT_NE(nullptr, FS);
  EXPECT_DOUBLE_EQ(4.0, cast<ConstantFP>(FS)->getValue());

  Function *G = M.createFunction(
      "g", Ctx.getFunctionTy(Ctx.getInt64Ty(), {}));
  B.setInsertPoint(G->createBlock("entry"));
  Value *Z = B.createZExt(Ctx.getConstantInt(Ctx.getInt8Ty(), -1),
                          Ctx.getInt64Ty());
  B.createRet(Z);
  Constant *FZ = constantFoldInstruction(cast<Instruction>(Z), Ctx);
  ASSERT_NE(nullptr, FZ);
  EXPECT_EQ(255, cast<ConstantInt>(FZ)->getValue());
}

//===----------------------------------------------------------------------===//
// Simplification / DCE / CFG
//===----------------------------------------------------------------------===//

TEST_F(TransformsTest, ConstantBranchFoldsAndBlocksMerge) {
  Function *F = M.createFunction(
      "f", Ctx.getFunctionTy(Ctx.getInt32Ty(), {}));
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *T = F->createBlock("then");
  BasicBlock *El = F->createBlock("else");
  IRBuilder B(Ctx);
  B.setInsertPoint(E);
  B.createCondBr(B.getInt1(true), T, El);
  B.setInsertPoint(T);
  B.createRet(B.getInt32(1));
  B.setInsertPoint(El);
  B.createRet(B.getInt32(2));

  EXPECT_TRUE(simplifyFunction(*F));
  expectValid(F);
  // Everything collapses into the entry returning 1.
  EXPECT_EQ(1u, F->size());
  auto *Ret = cast<RetInst>(F->getEntryBlock()->getTerminator());
  EXPECT_EQ(Ctx.getInt32(1), Ret->getReturnValue());
}

TEST_F(TransformsTest, DeadInstructionsRemoved) {
  Function *F = M.createFunction("f", Ctx.getFunctionTy(Ctx.getVoidTy(),
                                                        {}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  Value *Dead = B.createAdd(B.getInt32(1), B.getInt32(2));
  B.createMul(Dead, Dead); // dead chain
  B.createRetVoid();

  EXPECT_TRUE(removeDeadInstructions(*F));
  EXPECT_EQ(1u, countInsts(F)); // just the ret
}

TEST_F(TransformsTest, SideEffectsNotRemoved) {
  Function *F = M.createFunction(
      "f", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  B.createStore(B.getInt32(1), F->getArg(0));
  B.createRetVoid();
  EXPECT_FALSE(removeDeadInstructions(*F));
  EXPECT_EQ(2u, countInsts(F));
}

TEST_F(TransformsTest, UnreachableLoopRemoved) {
  Function *F = M.createFunction("f", Ctx.getFunctionTy(Ctx.getVoidTy(),
                                                        {}));
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *Dead1 = F->createBlock("dead1");
  BasicBlock *Dead2 = F->createBlock("dead2");
  IRBuilder B(Ctx);
  B.setInsertPoint(E);
  B.createRetVoid();
  B.setInsertPoint(Dead1);
  B.createBr(Dead2);
  B.setInsertPoint(Dead2);
  B.createBr(Dead1); // unreachable cycle

  EXPECT_TRUE(simplifyCFG(*F));
  EXPECT_EQ(1u, F->size());
  expectValid(F);
}

//===----------------------------------------------------------------------===//
// Mem2Reg
//===----------------------------------------------------------------------===//

TEST_F(TransformsTest, PromotesScalarAcrossDiamond) {
  Function *F = M.createFunction(
      "f", Ctx.getFunctionTy(Ctx.getInt32Ty(), {Ctx.getInt1Ty()}));
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *T = F->createBlock("then");
  BasicBlock *El = F->createBlock("else");
  BasicBlock *J = F->createBlock("join");
  IRBuilder B(Ctx);
  B.setInsertPoint(E);
  Value *A = B.createAlloca(Ctx.getInt32Ty(), "x");
  B.createStore(B.getInt32(0), A);
  B.createCondBr(F->getArg(0), T, El);
  B.setInsertPoint(T);
  B.createStore(B.getInt32(1), A);
  B.createBr(J);
  B.setInsertPoint(El);
  B.createStore(B.getInt32(2), A);
  B.createBr(J);
  B.setInsertPoint(J);
  Value *L = B.createLoad(Ctx.getInt32Ty(), A);
  B.createRet(L);

  EXPECT_TRUE(promoteAllocasToRegisters(*F));
  expectValid(F);
  // No allocas, loads, or stores remain; a phi merges the values.
  for (BasicBlock *BB : *F)
    for (Instruction *I : *BB) {
      EXPECT_FALSE(isa<AllocaInst>(I));
      EXPECT_FALSE(isa<LoadInst>(I));
      EXPECT_FALSE(isa<StoreInst>(I));
    }
  ASSERT_FALSE(J->phis().empty());
  EXPECT_EQ(2u, J->phis()[0]->getNumIncoming());
}

TEST_F(TransformsTest, PromotesLoopCounter) {
  Function *F = M.createFunction(
      "f", Ctx.getFunctionTy(Ctx.getInt32Ty(), {Ctx.getInt32Ty()}));
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *H = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *X = F->createBlock("exit");
  IRBuilder B(Ctx);
  B.setInsertPoint(E);
  Value *A = B.createAlloca(Ctx.getInt32Ty(), "i");
  B.createStore(B.getInt32(0), A);
  B.createBr(H);
  B.setInsertPoint(H);
  Value *I1 = B.createLoad(Ctx.getInt32Ty(), A, "i.v");
  Value *C = B.createICmpSLT(I1, F->getArg(0));
  B.createCondBr(C, Body, X);
  B.setInsertPoint(Body);
  Value *I2 = B.createLoad(Ctx.getInt32Ty(), A);
  B.createStore(B.createAdd(I2, B.getInt32(1)), A);
  B.createBr(H);
  B.setInsertPoint(X);
  B.createRet(B.createLoad(Ctx.getInt32Ty(), A));

  EXPECT_TRUE(promoteAllocasToRegisters(*F));
  expectValid(F);
  ASSERT_FALSE(H->phis().empty());
}

TEST_F(TransformsTest, AddressTakenAllocaNotPromoted) {
  Function *Callee = M.createFunction(
      "callee", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}));
  Function *F = M.createFunction("f", Ctx.getFunctionTy(Ctx.getVoidTy(),
                                                        {}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  auto *A = B.createAlloca(Ctx.getInt32Ty(), "x");
  B.createCall(Callee, {A});
  B.createRetVoid();
  EXPECT_FALSE(isAllocaPromotable(A));
  EXPECT_FALSE(promoteAllocasToRegisters(*F));
}

//===----------------------------------------------------------------------===//
// Store-to-load forwarding
//===----------------------------------------------------------------------===//

TEST_F(TransformsTest, ForwardsStoreToLoad) {
  Function *F = M.createFunction(
      "f", Ctx.getFunctionTy(Ctx.getInt32Ty(), {Ctx.getPtrTy()}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  B.createStore(B.getInt32(42), F->getArg(0));
  Value *L = B.createLoad(Ctx.getInt32Ty(), F->getArg(0));
  B.createRet(L);

  EXPECT_TRUE(forwardStoresToLoads(*F));
  auto *Ret = cast<RetInst>(F->getEntryBlock()->getTerminator());
  EXPECT_EQ(Ctx.getInt32(42), Ret->getReturnValue());
}

TEST_F(TransformsTest, ForwardingBlockedByInterveningWrite) {
  Function *Ext = M.getOrInsertFunction(
      "ext", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  Function *F = M.createFunction(
      "f", Ctx.getFunctionTy(Ctx.getInt32Ty(), {Ctx.getPtrTy()}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  B.createStore(B.getInt32(42), F->getArg(0));
  B.createCall(Ext, {}); // may write anything
  Value *L = B.createLoad(Ctx.getInt32Ty(), F->getArg(0));
  B.createRet(L);

  EXPECT_FALSE(forwardStoresToLoads(*F));
  EXPECT_TRUE(isa<LoadInst>(
      cast<RetInst>(F->getEntryBlock()->getTerminator())
          ->getReturnValue()));
  (void)L;
}

//===----------------------------------------------------------------------===//
// Function attribute inference
//===----------------------------------------------------------------------===//

TEST_F(TransformsTest, InfersReadNoneBottomUp) {
  Function *Leaf = M.createFunction(
      "leaf", Ctx.getFunctionTy(Ctx.getInt32Ty(), {Ctx.getInt32Ty()}));
  IRBuilder B(Ctx);
  B.setInsertPoint(Leaf->createBlock("entry"));
  B.createRet(B.createAdd(Leaf->getArg(0), B.getInt32(1)));

  Function *Mid = M.createFunction(
      "mid", Ctx.getFunctionTy(Ctx.getInt32Ty(), {Ctx.getInt32Ty()}));
  B.setInsertPoint(Mid->createBlock("entry"));
  B.createRet(B.createCall(Leaf, {Mid->getArg(0)}));

  inferFunctionAttrs(M);
  EXPECT_TRUE(Leaf->hasFnAttr(FnAttr::ReadNone));
  EXPECT_TRUE(Mid->hasFnAttr(FnAttr::ReadNone));
  EXPECT_TRUE(Mid->hasFnAttr(FnAttr::NoSync));
}

TEST_F(TransformsTest, StoreBlocksReadOnly) {
  Function *F = M.createFunction(
      "w", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  B.createStore(B.getInt32(1), F->getArg(0));
  B.createRetVoid();
  inferFunctionAttrs(M);
  EXPECT_FALSE(F->hasFnAttr(FnAttr::ReadNone));
  EXPECT_FALSE(F->hasFnAttr(FnAttr::ReadOnly));
  EXPECT_TRUE(F->hasFnAttr(FnAttr::NoSync));
}

TEST_F(TransformsTest, RecursiveSCCConverges) {
  FunctionType *Ty = Ctx.getFunctionTy(Ctx.getInt32Ty(),
                                       {Ctx.getInt32Ty()});
  Function *A = M.createFunction("a", Ty);
  Function *B2 = M.createFunction("b", Ty);
  IRBuilder B(Ctx);
  B.setInsertPoint(A->createBlock("entry"));
  B.createRet(B.createCall(B2, {A->getArg(0)}));
  B.setInsertPoint(B2->createBlock("entry"));
  B.createRet(B.createCall(A, {B2->getArg(0)}));
  inferFunctionAttrs(M);
  EXPECT_TRUE(A->hasFnAttr(FnAttr::ReadNone));
  EXPECT_TRUE(B2->hasFnAttr(FnAttr::ReadNone));
}

//===----------------------------------------------------------------------===//
// Cloning and inlining
//===----------------------------------------------------------------------===//

TEST_F(TransformsTest, CloneFunctionIsIndependent) {
  Function *F = M.createFunction(
      "orig", Ctx.getFunctionTy(Ctx.getInt32Ty(), {Ctx.getInt32Ty()}));
  F->addAssumption("ext_spmd_amenable");
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  B.createRet(B.createAdd(F->getArg(0), B.getInt32(5)));

  Function *C = cloneFunction(*F, "clone");
  EXPECT_TRUE(C->hasInternalLinkage());
  EXPECT_TRUE(C->hasAssumption("ext_spmd_amenable"));
  expectValid(C);

  // Clone instructions must not reference the original's values.
  for (BasicBlock *BB : *C)
    for (Instruction *I : *BB)
      for (unsigned Op = 0; Op < I->getNumOperands(); ++Op) {
        if (auto *OpArg = dyn_cast<Argument>(I->getOperand(Op))) {
          EXPECT_EQ(C, OpArg->getParent());
        }
      }
}

TEST_F(TransformsTest, InlineFlattensCallAndReturnsValue) {
  Function *Callee = M.createFunction(
      "double_wrapper", Ctx.getFunctionTy(Ctx.getInt32Ty(),
                                          {Ctx.getInt32Ty()}),
      Linkage::Internal);
  IRBuilder B(Ctx);
  B.setInsertPoint(Callee->createBlock("entry"));
  B.createRet(B.createMul(Callee->getArg(0), B.getInt32(2)));

  Function *F = M.createFunction(
      "caller", Ctx.getFunctionTy(Ctx.getInt32Ty(), {Ctx.getInt32Ty()}));
  B.setInsertPoint(F->createBlock("entry"));
  CallInst *CI = B.createCall(Callee, {F->getArg(0)});
  B.createRet(CI);

  EXPECT_TRUE(inlineCallSite(CI));
  expectValid(F);
  simplifyFunction(*F);
  // No calls remain.
  for (BasicBlock *BB : *F)
    for (Instruction *I : *BB)
      EXPECT_FALSE(isa<CallInst>(I));
}

TEST_F(TransformsTest, InlineHoistsAllocasToEntry) {
  Function *Callee = M.createFunction(
      "scratch_wrapper", Ctx.getFunctionTy(Ctx.getVoidTy(), {}),
      Linkage::Internal);
  IRBuilder B(Ctx);
  B.setInsertPoint(Callee->createBlock("entry"));
  Value *A = B.createAlloca(Ctx.getDoubleTy(), "tmp");
  B.createStore(B.getDouble(1.0), A);
  B.createRetVoid();

  // Call inside a loop: the inlined alloca must land in the entry block.
  Function *F = M.createFunction(
      "caller", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getInt32Ty()}));
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *H = F->createBlock("loop");
  BasicBlock *X = F->createBlock("exit");
  B.setInsertPoint(E);
  B.createBr(H);
  B.setInsertPoint(H);
  PhiInst *IV = B.createPhi(Ctx.getInt32Ty(), "i");
  IV->addIncoming(B.getInt32(0), E);
  CallInst *CI = B.createCall(Callee, {});
  Value *Next = B.createAdd(IV, B.getInt32(1));
  IV->addIncoming(Next, H);
  B.createCondBr(B.createICmpSLT(Next, F->getArg(0)), H, X);
  B.setInsertPoint(X);
  B.createRetVoid();

  ASSERT_TRUE(inlineCallSite(CI));
  expectValid(F);
  bool AllocaInEntry = false;
  for (Instruction *I : *F->getEntryBlock())
    if (isa<AllocaInst>(I))
      AllocaInEntry = true;
  EXPECT_TRUE(AllocaInEntry);
}

TEST_F(TransformsTest, InlineParallelRegionsPolicy) {
  // A `_wrapper` internal function is inlined; a plain helper is not.
  Function *Wrapper = M.createFunction(
      "k__omp_outlined__0_wrapper",
      Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}),
      Linkage::Internal);
  IRBuilder B(Ctx);
  B.setInsertPoint(Wrapper->createBlock("entry"));
  B.createStore(B.getDouble(3.0), Wrapper->getArg(0));
  B.createRetVoid();

  Function *Helper = M.createFunction(
      "helper", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}));
  B.setInsertPoint(Helper->createBlock("entry"));
  B.createStore(B.getDouble(4.0), Helper->getArg(0));
  B.createRetVoid();

  Function *F = M.createFunction(
      "caller", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}));
  B.setInsertPoint(F->createBlock("entry"));
  B.createCall(Wrapper, {F->getArg(0)});
  B.createCall(Helper, {F->getArg(0)});
  B.createRetVoid();

  EXPECT_TRUE(inlineParallelRegions(M));
  unsigned Calls = 0;
  for (BasicBlock *BB : *F)
    for (Instruction *I : *BB)
      if (auto *CI = dyn_cast<CallInst>(I)) {
        ++Calls;
        EXPECT_EQ(Helper, CI->getCalledFunction());
      }
  EXPECT_EQ(1u, Calls);
}

} // namespace
