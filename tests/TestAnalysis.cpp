//===- tests/TestAnalysis.cpp - Analysis library unit tests -----------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/CallGraph.h"
#include "analysis/Dominators.h"
#include "analysis/PointerEscape.h"
#include "analysis/RegisterPressure.h"
#include "analysis/ThreadValueAnalysis.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <gtest/gtest.h>

using namespace ompgpu;

namespace {

class AnalysisTest : public ::testing::Test {
protected:
  IRContext Ctx;
  Module M{Ctx, "test"};

  /// entry -> header -> {body -> header, exit}: a canonical loop.
  struct Loop {
    Function *F;
    BasicBlock *Entry, *Header, *Body, *Exit;
  };
  Loop makeLoop() {
    Function *F = M.createFunction(
        "loop", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getInt32Ty()}));
    BasicBlock *E = F->createBlock("entry");
    BasicBlock *H = F->createBlock("header");
    BasicBlock *B = F->createBlock("body");
    BasicBlock *X = F->createBlock("exit");
    IRBuilder IB(Ctx);
    IB.setInsertPoint(E);
    IB.createBr(H);
    IB.setInsertPoint(H);
    PhiInst *IV = IB.createPhi(Ctx.getInt32Ty(), "iv");
    IV->addIncoming(IB.getInt32(0), E);
    Value *Cond = IB.createICmpSLT(IV, F->getArg(0), "cond");
    IB.createCondBr(Cond, B, X);
    IB.setInsertPoint(B);
    Value *Next = IB.createAdd(IV, IB.getInt32(1), "next");
    IV->addIncoming(Next, B);
    IB.createBr(H);
    IB.setInsertPoint(X);
    IB.createRetVoid();
    return {F, E, H, B, X};
  }
};

//===----------------------------------------------------------------------===//
// CFG traversal
//===----------------------------------------------------------------------===//

TEST_F(AnalysisTest, ReversePostOrderStartsAtEntry) {
  Loop L = makeLoop();
  std::vector<BasicBlock *> RPO = reversePostOrder(*L.F);
  ASSERT_EQ(4u, RPO.size());
  EXPECT_EQ(L.Entry, RPO.front());
  // The header must precede both the body and the exit.
  auto Pos = [&](BasicBlock *BB) {
    return std::find(RPO.begin(), RPO.end(), BB) - RPO.begin();
  };
  EXPECT_LT(Pos(L.Header), Pos(L.Body));
  EXPECT_LT(Pos(L.Header), Pos(L.Exit));
}

TEST_F(AnalysisTest, Reachability) {
  Loop L = makeLoop();
  EXPECT_TRUE(isReachableFrom(L.Entry, L.Exit));
  EXPECT_TRUE(isReachableFrom(L.Body, L.Exit));
  EXPECT_FALSE(isReachableFrom(L.Exit, L.Entry));
  EXPECT_TRUE(isReachableFrom(L.Body, L.Body));
}

//===----------------------------------------------------------------------===//
// Dominators
//===----------------------------------------------------------------------===//

TEST_F(AnalysisTest, DominatorTreeOfLoop) {
  Loop L = makeLoop();
  DominatorTree DT(*L.F);
  EXPECT_EQ(nullptr, DT.getIDom(L.Entry));
  EXPECT_EQ(L.Entry, DT.getIDom(L.Header));
  EXPECT_EQ(L.Header, DT.getIDom(L.Body));
  EXPECT_EQ(L.Header, DT.getIDom(L.Exit));
  EXPECT_TRUE(DT.dominates(L.Entry, L.Exit));
  EXPECT_TRUE(DT.dominates(L.Header, L.Body));
  EXPECT_FALSE(DT.dominates(L.Body, L.Exit));
  EXPECT_TRUE(DT.dominates(L.Body, L.Body));
}

TEST_F(AnalysisTest, DiamondDominance) {
  Function *F = M.createFunction(
      "diamond", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getInt1Ty()}));
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *T = F->createBlock("t");
  BasicBlock *El = F->createBlock("e");
  BasicBlock *J = F->createBlock("join");
  IRBuilder B(Ctx);
  B.setInsertPoint(E);
  B.createCondBr(F->getArg(0), T, El);
  B.setInsertPoint(T);
  B.createBr(J);
  B.setInsertPoint(El);
  B.createBr(J);
  B.setInsertPoint(J);
  B.createRetVoid();

  DominatorTree DT(*F);
  EXPECT_EQ(E, DT.getIDom(J));
  EXPECT_FALSE(DT.dominates(T, J));

  PostDominatorTree PDT(*F);
  EXPECT_TRUE(PDT.dominates(J, E));
  EXPECT_TRUE(PDT.dominates(J, T));
  EXPECT_FALSE(PDT.dominates(T, E));
}

TEST_F(AnalysisTest, InstructionLevelDominance) {
  Loop L = makeLoop();
  DominatorTree DT(*L.F);
  Instruction *First = L.Header->front();
  Instruction *Term = L.Header->getTerminator();
  EXPECT_TRUE(DT.dominates(First, Term));
  EXPECT_FALSE(DT.dominates(Term, First));

  PostDominatorTree PDT(*L.F);
  EXPECT_TRUE(PDT.dominates(Term, First));
}

TEST_F(AnalysisTest, PostDominanceWithMultipleExits) {
  Function *F = M.createFunction(
      "twoexits", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getInt1Ty()}));
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *A = F->createBlock("a");
  BasicBlock *B2 = F->createBlock("b");
  IRBuilder B(Ctx);
  B.setInsertPoint(E);
  B.createCondBr(F->getArg(0), A, B2);
  B.setInsertPoint(A);
  B.createRetVoid();
  B.setInsertPoint(B2);
  B.createRetVoid();

  PostDominatorTree PDT(*F);
  // Neither exit post-dominates the entry.
  EXPECT_FALSE(PDT.dominates(A, E));
  EXPECT_FALSE(PDT.dominates(B2, E));
}

//===----------------------------------------------------------------------===//
// Call graph
//===----------------------------------------------------------------------===//

TEST_F(AnalysisTest, CallGraphSCCOrder) {
  FunctionType *VTy = Ctx.getFunctionTy(Ctx.getVoidTy(), {});
  Function *A = M.createFunction("a", VTy);
  Function *B2 = M.createFunction("b", VTy);
  Function *C = M.createFunction("c", VTy);
  IRBuilder B(Ctx);
  // a -> b -> c, c -> b (b,c form an SCC).
  B.setInsertPoint(A->createBlock("entry"));
  B.createCall(B2, {});
  B.createRetVoid();
  B.setInsertPoint(B2->createBlock("entry"));
  B.createCall(C, {});
  B.createRetVoid();
  B.setInsertPoint(C->createBlock("entry"));
  B.createCall(B2, {});
  B.createRetVoid();

  CallGraph CG(M);
  // Bottom-up: the {b,c} SCC must come before {a}.
  const auto &SCCs = CG.sccsBottomUp();
  size_t BCIdx = SCCs.size(), AIdx = SCCs.size();
  for (size_t I = 0; I < SCCs.size(); ++I) {
    if (SCCs[I].size() == 2)
      BCIdx = I;
    if (SCCs[I].size() == 1 && SCCs[I][0] == A)
      AIdx = I;
  }
  ASSERT_LT(BCIdx, SCCs.size());
  ASSERT_LT(AIdx, SCCs.size());
  EXPECT_LT(BCIdx, AIdx);

  EXPECT_EQ(1u, CG.callees(A).size());
  EXPECT_EQ(2u, CG.callSitesOf(B2).size()); // from a and c
  std::set<Function *> R = CG.reachableFrom(A);
  EXPECT_EQ(3u, R.size());
}

TEST_F(AnalysisTest, CallGraphAddressTakenReachability) {
  FunctionType *VTy = Ctx.getFunctionTy(Ctx.getVoidTy(), {});
  Function *Target = M.createFunction("target", VTy);
  IRBuilder B(Ctx);
  B.setInsertPoint(Target->createBlock("entry"));
  B.createRetVoid();

  Function *Caller = M.createFunction(
      "caller", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}));
  B.setInsertPoint(Caller->createBlock("entry"));
  B.createStore(Target, Caller->getArg(0)); // take address
  B.createIndirectCall(VTy, B.createLoad(Ctx.getPtrTy(), Caller->getArg(0)),
                       {});
  B.createRetVoid();

  CallGraph CG(M);
  EXPECT_TRUE(CG.isAddressTaken(Target));
  std::set<Function *> R = CG.reachableFrom(Caller);
  EXPECT_TRUE(R.count(Target)); // via the indirect call
}

TEST_F(AnalysisTest, CallGraphMutuallyRecursiveSCC) {
  // even -> odd -> even: a two-node cycle entered from main. The SCC
  // decomposition must put {even, odd} in one component ordered before
  // {main}, and must not merge main into the cycle.
  FunctionType *VTy = Ctx.getFunctionTy(Ctx.getVoidTy(), {});
  Function *Even = M.createFunction("even", VTy);
  Function *Odd = M.createFunction("odd", VTy);
  Function *Main = M.createFunction("main", VTy);
  IRBuilder B(Ctx);
  B.setInsertPoint(Even->createBlock("entry"));
  B.createCall(Odd, {});
  B.createRetVoid();
  B.setInsertPoint(Odd->createBlock("entry"));
  B.createCall(Even, {});
  B.createRetVoid();
  B.setInsertPoint(Main->createBlock("entry"));
  B.createCall(Even, {});
  B.createRetVoid();

  CallGraph CG(M);
  const auto &SCCs = CG.sccsBottomUp();
  size_t CycleIdx = SCCs.size(), MainIdx = SCCs.size();
  for (size_t I = 0; I < SCCs.size(); ++I) {
    if (SCCs[I].size() == 2) {
      EXPECT_TRUE((SCCs[I][0] == Even && SCCs[I][1] == Odd) ||
                  (SCCs[I][0] == Odd && SCCs[I][1] == Even));
      CycleIdx = I;
    }
    if (SCCs[I].size() == 1 && SCCs[I][0] == Main)
      MainIdx = I;
  }
  ASSERT_LT(CycleIdx, SCCs.size()) << "cycle not recognized as one SCC";
  ASSERT_LT(MainIdx, SCCs.size()) << "main merged into the cycle";
  EXPECT_LT(CycleIdx, MainIdx) << "bottom-up order violated";
  // Reachability crosses the cycle in both directions of the edge set.
  EXPECT_EQ(3u, CG.reachableFrom(Main).size());
  EXPECT_TRUE(CG.reachableFrom(Even).count(Odd));
  EXPECT_TRUE(CG.reachableFrom(Odd).count(Even));
  // But not upward: the cycle cannot reach its caller.
  EXPECT_FALSE(CG.reachableFrom(Even).count(Main));
}

TEST_F(AnalysisTest, EscapeAcrossMutuallyRecursiveSCC) {
  FunctionType *PTy = Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()});
  FunctionType *VTy = Ctx.getFunctionTy(Ctx.getVoidTy(), {});
  IRBuilder B(Ctx);

  // Negative case: ping(p) writes through p and calls pong() WITHOUT
  // forwarding the pointer; pong() re-enters ping with its own local.
  // The {ping, pong} SCC exists in the call graph, but the tracked
  // pointer never travels around the cycle, so it must not escape.
  Function *Ping = M.createFunction("ping", PTy);
  Function *Pong = M.createFunction("pong", VTy);
  B.setInsertPoint(Ping->createBlock("entry"));
  B.createStore(B.getDouble(0.0), Ping->getArg(0));
  B.createCall(Pong, {});
  B.createRetVoid();
  B.setInsertPoint(Pong->createBlock("entry"));
  Value *Local = B.createAlloca(Ctx.getDoubleTy(), "local");
  B.createCall(Ping, {Local});
  B.createRetVoid();

  Function *Root =
      M.createFunction("root", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  B.setInsertPoint(Root->createBlock("entry"));
  Value *A = B.createAlloca(Ctx.getDoubleTy(), "x");
  B.createCall(Ping, {A});
  B.createRetVoid();

  EscapeConfig EC;
  EC.ClassifyCallArg = [](const CallInst &, unsigned) {
    return ArgCaptureKind::InspectCallee;
  };
  EXPECT_FALSE(analyzePointerEscape(A, EC).Escapes);

  // Positive case: the pointer IS forwarded around the cycle, and one arm
  // leaks it to memory. The visited-set memoization must terminate the
  // cyclic walk (each formal argument is entered once) while still
  // reaching — and reporting — the leak inside the recursion.
  Function *FwdA = M.createFunction("fwd_a", PTy);
  Function *FwdB = M.createFunction("fwd_b", PTy);
  B.setInsertPoint(FwdA->createBlock("entry"));
  B.createCall(FwdB, {FwdA->getArg(0)});
  B.createRetVoid();
  B.setInsertPoint(FwdB->createBlock("entry"));
  Value *Slot = B.createAlloca(Ctx.getPtrTy(), "slot");
  B.createStore(FwdB->getArg(0), Slot);
  B.createCall(FwdA, {FwdB->getArg(0)});
  B.createRetVoid();

  Function *Root2 =
      M.createFunction("root2", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  B.setInsertPoint(Root2->createBlock("entry"));
  Value *A2 = B.createAlloca(Ctx.getDoubleTy(), "y");
  B.createCall(FwdA, {A2});
  B.createRetVoid();

  EscapeResult R = analyzePointerEscape(A2, EC);
  EXPECT_TRUE(R.Escapes);
  EXPECT_NE(std::string::npos, R.Reason.find("stored to memory")) << R.Reason;

  // ...and the pure forwarding cycle alone (no leak) terminates cleanly
  // as a non-escape instead of tripping the depth bound.
  Function *LoopA = M.createFunction("loop_a", PTy);
  Function *LoopB = M.createFunction("loop_b", PTy);
  B.setInsertPoint(LoopA->createBlock("entry"));
  B.createCall(LoopB, {LoopA->getArg(0)});
  B.createRetVoid();
  B.setInsertPoint(LoopB->createBlock("entry"));
  B.createCall(LoopA, {LoopB->getArg(0)});
  B.createRetVoid();

  Function *Root3 =
      M.createFunction("root3", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  B.setInsertPoint(Root3->createBlock("entry"));
  Value *A3 = B.createAlloca(Ctx.getDoubleTy(), "z");
  B.createCall(LoopA, {A3});
  B.createRetVoid();
  EXPECT_FALSE(analyzePointerEscape(A3, EC).Escapes);
}

//===----------------------------------------------------------------------===//
// Register pressure
//===----------------------------------------------------------------------===//

TEST_F(AnalysisTest, PressureGrowsWithLiveValues) {
  // Many simultaneously live values -> higher pressure than a chain.
  auto MakeChain = [&](const std::string &Name, bool Simultaneous) {
    Function *F = M.createFunction(
        Name, Ctx.getFunctionTy(Ctx.getInt32Ty(), {Ctx.getInt32Ty()}));
    IRBuilder B(Ctx);
    B.setInsertPoint(F->createBlock("entry"));
    Value *A = F->getArg(0);
    if (Simultaneous) {
      std::vector<Value *> Vals;
      for (int I = 0; I < 16; ++I)
        Vals.push_back(B.createAdd(A, B.getInt32(I)));
      Value *Acc = Vals[0];
      for (int I = 1; I < 16; ++I)
        Acc = B.createAdd(Acc, Vals[I]);
      B.createRet(Acc);
    } else {
      Value *Acc = A;
      for (int I = 0; I < 16; ++I)
        Acc = B.createAdd(Acc, B.getInt32(I));
      B.createRet(Acc);
    }
    return F;
  };
  unsigned Wide = computeMaxRegisterPressure(*MakeChain("wide", true));
  unsigned Narrow = computeMaxRegisterPressure(*MakeChain("narrow", false));
  EXPECT_GT(Wide, Narrow);
  EXPECT_GE(Wide, 16u);
}

TEST_F(AnalysisTest, LivenessAcrossLoop) {
  Loop L = makeLoop();
  Liveness LV(*L.F);
  // The trip count argument is live into the header and the body.
  const Argument *N = L.F->getArg(0);
  EXPECT_TRUE(LV.liveIn(L.Header).count(N));
  EXPECT_TRUE(LV.liveIn(L.Body).count(N));
  EXPECT_FALSE(LV.liveIn(L.Exit).count(N));
}

TEST_F(AnalysisTest, ValueRegisterUnits) {
  Function *F = M.createFunction(
      "units", Ctx.getFunctionTy(Ctx.getVoidTy(),
                                 {Ctx.getInt32Ty(), Ctx.getDoubleTy()}));
  EXPECT_EQ(1u, getValueRegisterUnits(F->getArg(0)));
  EXPECT_EQ(2u, getValueRegisterUnits(F->getArg(1)));
}

//===----------------------------------------------------------------------===//
// Thread value (uniformity/stride) analysis
//===----------------------------------------------------------------------===//

TEST_F(AnalysisTest, ThreadShapesFromThreadId) {
  FunctionType *TidTy = Ctx.getFunctionTy(Ctx.getInt32Ty(), {});
  Function *Tid = M.getOrInsertFunction("get_tid", TidTy);
  Function *F = M.createFunction(
      "k", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}));
  F->setKernel(true);
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  Value *T = B.createCall(Tid, {}, "tid");
  Value *T4 = B.createMul(T, B.getInt32(4), "tid4");
  Value *Sum = B.createAdd(T, T, "sum");
  GEPInst *Gep = B.createGEP(Ctx.getDoubleTy(), F->getArg(0), {T}, "p");
  Value *Ld = B.createLoad(Ctx.getDoubleTy(), Gep, "v");
  B.createRetVoid();

  ThreadValueConfig Cfg;
  Cfg.ThreadIdFunctions = {"get_tid"};
  Cfg.ArgumentShape = ThreadShape::uniform();
  ThreadValueAnalysis TVA(*F, Cfg);

  EXPECT_TRUE(TVA.getShape(T).isLinear());
  EXPECT_EQ(1, TVA.getShape(T).Stride);
  EXPECT_EQ(4, TVA.getShape(T4).Stride);
  EXPECT_EQ(2, TVA.getShape(Sum).Stride);
  // GEP over doubles with a tid index: byte stride 8 (coalesced).
  EXPECT_EQ(8, TVA.getShape(Gep).Stride);
  // Loads of non-uniform addresses are divergent.
  EXPECT_TRUE(TVA.getShape(Ld).isDivergent());
}

TEST_F(AnalysisTest, UniformLoadsStayUniform) {
  Function *F = M.createFunction(
      "k2", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  Value *Ld = B.createLoad(Ctx.getInt32Ty(), F->getArg(0), "n");
  Value *Dep = B.createAdd(Ld, B.getInt32(1), "n1");
  B.createRetVoid();

  ThreadValueConfig Cfg;
  Cfg.ArgumentShape = ThreadShape::uniform();
  ThreadValueAnalysis TVA(*F, Cfg);
  EXPECT_TRUE(TVA.getShape(Ld).isUniform());
  EXPECT_TRUE(TVA.getShape(Dep).isUniform());
}

TEST_F(AnalysisTest, LoopPhiOfUniformValuesIsUniform) {
  Loop L = makeLoop();
  ThreadValueConfig Cfg;
  Cfg.ArgumentShape = ThreadShape::uniform();
  ThreadValueAnalysis TVA(*L.F, Cfg);
  EXPECT_TRUE(TVA.getShape(L.Header->front()).isUniform()); // the phi
}

TEST_F(AnalysisTest, SelectOnDivergentConditionIsDivergent) {
  FunctionType *TidTy = Ctx.getFunctionTy(Ctx.getInt32Ty(), {});
  Function *Tid = M.getOrInsertFunction("get_tid", TidTy);
  Function *F = M.createFunction(
      "k", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getInt32Ty()}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  Value *T = B.createCall(Tid, {}, "tid");
  Value *DivCond = B.createICmpSLT(T, B.getInt32(16), "low");
  Value *UniCond = B.createICmpSLT(F->getArg(0), B.getInt32(16), "small");
  // Data-dependent divergence: the arms are uniform but each thread picks
  // its own, so the select must be divergent.
  Value *DivSel =
      B.createSelect(DivCond, B.getInt32(1), B.getInt32(2), "div_sel");
  // A uniform condition joins the arm shapes instead.
  Value *UniSel =
      B.createSelect(UniCond, B.getInt32(1), B.getInt32(2), "uni_sel");
  Value *T1 = B.createAdd(T, B.getInt32(1), "tid1");
  Value *LinSel = B.createSelect(UniCond, T, T1, "lin_sel");
  B.createRetVoid();

  ThreadValueConfig Cfg;
  Cfg.ThreadIdFunctions = {"get_tid"};
  Cfg.ArgumentShape = ThreadShape::uniform();
  ThreadValueAnalysis TVA(*F, Cfg);
  EXPECT_TRUE(TVA.getShape(DivCond).isDivergent());
  EXPECT_TRUE(TVA.getShape(DivSel).isDivergent());
  EXPECT_TRUE(TVA.getShape(UniSel).isUniform());
  EXPECT_TRUE(TVA.getShape(LinSel).isLinear());
  EXPECT_EQ(1, TVA.getShape(LinSel).Stride);
}

TEST_F(AnalysisTest, PhiJoinsIncomingShapesUnderDivergentControl) {
  FunctionType *TidTy = Ctx.getFunctionTy(Ctx.getInt32Ty(), {});
  Function *Tid = M.getOrInsertFunction("get_tid", TidTy);
  Function *F =
      M.createFunction("k", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *T = F->createBlock("t");
  BasicBlock *El = F->createBlock("e");
  BasicBlock *J = F->createBlock("join");
  IRBuilder B(Ctx);
  B.setInsertPoint(E);
  Value *TidV = B.createCall(Tid, {}, "tid");
  Value *Cond = B.createICmpSLT(TidV, B.getInt32(16), "low");
  B.createCondBr(Cond, T, El);
  B.setInsertPoint(T);
  B.createBr(J);
  B.setInsertPoint(El);
  B.createBr(J);
  B.setInsertPoint(J);
  // The phi transfer joins the *shapes* of the incoming values; it has no
  // control-dependence term, so two uniform constants stay uniform even
  // under a divergent branch. Data-dependent divergence is the select
  // rule's job (above); the lint's CFG checkers handle control divergence
  // via reconvergence reasoning instead of value shapes.
  PhiInst *Consts = B.createPhi(Ctx.getInt32Ty(), "consts");
  Consts->addIncoming(B.getInt32(1), T);
  Consts->addIncoming(B.getInt32(2), El);
  // Joining distinct shapes (linear tid vs. uniform) is divergent.
  PhiInst *Mixed = B.createPhi(Ctx.getInt32Ty(), "mixed");
  Mixed->addIncoming(TidV, T);
  Mixed->addIncoming(B.getInt32(3), El);
  B.createRetVoid();

  ThreadValueConfig Cfg;
  Cfg.ThreadIdFunctions = {"get_tid"};
  ThreadValueAnalysis TVA(*F, Cfg);
  EXPECT_TRUE(TVA.getShape(Consts).isUniform());
  EXPECT_TRUE(TVA.getShape(Mixed).isDivergent());
}

//===----------------------------------------------------------------------===//
// Pointer escape
//===----------------------------------------------------------------------===//

TEST_F(AnalysisTest, LocalUseDoesNotEscape) {
  Function *F = M.createFunction(
      "f", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  Value *A = B.createAlloca(Ctx.getDoubleTy(), "x");
  B.createStore(B.getDouble(1.0), A);
  B.createLoad(Ctx.getDoubleTy(), A);
  B.createRetVoid();

  EscapeConfig EC;
  EXPECT_FALSE(analyzePointerEscape(A, EC).Escapes);
}

TEST_F(AnalysisTest, StoredPointerEscapes) {
  Function *F = M.createFunction(
      "f", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  Value *A = B.createAlloca(Ctx.getDoubleTy(), "x");
  B.createStore(A, F->getArg(0)); // pointer written to memory
  B.createRetVoid();

  EscapeConfig EC;
  EscapeResult R = analyzePointerEscape(A, EC);
  EXPECT_TRUE(R.Escapes);
  EXPECT_NE(std::string::npos, R.Reason.find("stored"));
}

TEST_F(AnalysisTest, EscapeFollowsIntoCalleeAndHonorsNoEscape) {
  Function *Sink = M.createFunction(
      "sink", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}));
  IRBuilder SB(Ctx);
  SB.setInsertPoint(Sink->createBlock("entry"));
  SB.createStore(SB.getDouble(0.0), Sink->getArg(0)); // writes through only
  SB.createRetVoid();

  Function *F = M.createFunction("f", Ctx.getFunctionTy(Ctx.getVoidTy(),
                                                        {}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  Value *A = B.createAlloca(Ctx.getDoubleTy(), "x");
  B.createCall(Sink, {A});
  B.createRetVoid();

  EscapeConfig EC;
  EC.ClassifyCallArg = [](const CallInst &, unsigned) {
    return ArgCaptureKind::InspectCallee;
  };
  EXPECT_FALSE(analyzePointerEscape(A, EC).Escapes);

  // A callee that leaks the pointer makes it escape...
  Function *Leak = M.createFunction(
      "leak", Ctx.getFunctionTy(Ctx.getPtrTy(), {Ctx.getPtrTy()}));
  IRBuilder LB(Ctx);
  LB.setInsertPoint(Leak->createBlock("entry"));
  LB.createRet(Leak->getArg(0));

  Function *G = M.createFunction("g", Ctx.getFunctionTy(Ctx.getVoidTy(),
                                                        {}));
  B.setInsertPoint(G->createBlock("entry"));
  Value *A2 = B.createAlloca(Ctx.getDoubleTy(), "y");
  B.createCall(Leak, {A2});
  B.createRetVoid();
  EXPECT_TRUE(analyzePointerEscape(A2, EC).Escapes);

  // ...unless the user asserts noescape (the OMP113 remark's advice).
  Leak->getArg(0)->setNoEscapeAttr();
  EXPECT_FALSE(analyzePointerEscape(A2, EC).Escapes);
}

TEST_F(AnalysisTest, EscapeWalkMaxDepthBoundary) {
  // A forwarding chain three callees deep; the innermost only writes
  // through the pointer. The walk descends once per call, so the deepest
  // visit runs at depth 3: MaxDepth >= 3 proves no escape, MaxDepth < 3
  // hits the bound and must conservatively report an escape.
  FunctionType *FTy = Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()});
  IRBuilder B(Ctx);
  Function *Sink = M.createFunction("depth3", FTy);
  B.setInsertPoint(Sink->createBlock("entry"));
  B.createStore(B.getDouble(0.0), Sink->getArg(0));
  B.createRetVoid();
  Function *Next = Sink;
  for (const char *Name : {"depth2", "depth1"}) {
    Function *F = M.createFunction(Name, FTy);
    B.setInsertPoint(F->createBlock("entry"));
    B.createCall(Next, {F->getArg(0)});
    B.createRetVoid();
    Next = F;
  }
  Function *Root =
      M.createFunction("root", Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  B.setInsertPoint(Root->createBlock("entry"));
  Value *A = B.createAlloca(Ctx.getDoubleTy(), "x");
  B.createCall(Next, {A});
  B.createRetVoid();

  EscapeConfig EC;
  EC.ClassifyCallArg = [](const CallInst &, unsigned) {
    return ArgCaptureKind::InspectCallee;
  };
  EXPECT_FALSE(analyzePointerEscape(A, EC).Escapes); // default MaxDepth=8
  EC.MaxDepth = 3;
  EXPECT_FALSE(analyzePointerEscape(A, EC).Escapes); // exactly at the bound
  EC.MaxDepth = 2;
  EscapeResult R = analyzePointerEscape(A, EC);
  EXPECT_TRUE(R.Escapes);
  EXPECT_NE(std::string::npos, R.Reason.find("depth limit"));
}

TEST_F(AnalysisTest, EscapeThroughDerivedPointers) {
  Function *F = M.createFunction(
      "f", Ctx.getFunctionTy(Ctx.getPtrTy(), {}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  Value *A = B.createAlloca(Ctx.getArrayTy(Ctx.getDoubleTy(), 4), "buf");
  Value *G = B.createGEP(Ctx.getDoubleTy(), A, {B.getInt32(2)});
  B.createRet(G); // derived pointer returned

  EscapeConfig EC;
  EscapeResult R = analyzePointerEscape(A, EC);
  EXPECT_TRUE(R.Escapes);
  EXPECT_NE(std::string::npos, R.Reason.find("returned"));
}

} // namespace
