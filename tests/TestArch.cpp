//===- tests/TestArch.cpp - Multi-architecture gpusim tests ----------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the named-architecture layer (docs/architectures.md): the
/// ArchSpec JSON schema round-trips byte-identically and rejects a hostile
/// corpus with typed errors, the registry specs validate, applyArch only
/// defaults an untouched shared-memory budget, the compile cache keys on
/// the architecture (a -march switch over a warm cache is a miss with
/// distinct v7 `arch` provenance), the cross-architecture differential
/// matrix is bit-exact across worker counts per arch while cycle counts
/// differ across archs, and the autotuner is byte-deterministic, never
/// worse than the default preset, and reacts to a sabotaged cost table
/// with an OMP231.
///
//===----------------------------------------------------------------------===//

#include "service/Autotune.h"
#include "support/FileSystem.h"
#include "workloads/Harness.h"

#include <gtest/gtest.h>

using namespace ompgpu;

namespace {

/// Fresh, empty per-test scratch directory under the gtest temp dir.
std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "ompgpu-arch-" + Name;
  for (const std::string &F : listDirectoryFiles(Dir))
    (void)removeFile(Dir + "/" + F);
  EXPECT_FALSE(ensureDirectory(Dir));
  return Dir;
}

std::unique_ptr<Workload> makeWorkload(const std::string &Name,
                                       ProblemSize Size) {
  if (Name == "XSBench")
    return createXSBench(Size);
  if (Name == "RSBench")
    return createRSBench(Size);
  if (Name == "SU3Bench")
    return createSU3Bench(Size);
  return createMiniQMC(Size);
}

/// A compile-service request that emits \p WName under \p P and evaluates
/// it by simulating the whole grid with outputs checked — the same shape
/// the autotuner batches, rebuilt here so the differential matrix
/// exercises the public service API.
CompileRequest makeWorkloadRequest(const std::string &WName,
                                   const PipelineOptions &P) {
  auto W = std::make_shared<std::unique_ptr<Workload>>();
  CompileRequest R;
  R.Id = WName + "/" + P.Arch.Name;
  R.Pipeline = P;
  R.Emit = [W, WName, P](Module &M) {
    *W = makeWorkload(WName, ProblemSize::Small);
    Function *K = emitWorkloadModule(**W, M, P);
    return K ? std::string(K->getName()) : std::string();
  };
  R.Evaluate = [W, P](Module &M, const CompileResult &,
                      const std::string &Kernel) {
    Function *K = M.getFunction(Kernel);
    json::Value V = json::Value::makeObject();
    if (!K)
      return V.set("correct", false).set("cycles", (uint64_t)0);
    LaunchCheckResult L = launchAndCheckWorkload(**W, M, K, P, {});
    return V.set("correct", L.Stats.ok() && L.Checked && L.Correct)
        .set("cycles", L.Stats.Cycles);
  };
  return R;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(ArchRegistry, NamesLookupAndValidate) {
  std::vector<std::string> Names = archRegistryNames();
  ASSERT_EQ(Names, (std::vector<std::string>{"v100", "a100", "mi100"}));
  for (const std::string &N : Names) {
    Expected<ArchSpec> A = lookupArch(N);
    ASSERT_TRUE((bool)A) << A.message();
    EXPECT_EQ(A->Name, N);
    EXPECT_FALSE((bool)A->validate());
  }
  Expected<ArchSpec> Bad = lookupArch("p100");
  ASSERT_FALSE((bool)Bad);
  EXPECT_NE(Bad.message().find("p100"), std::string::npos);
  // Every registry name is offered in the error message.
  EXPECT_NE(Bad.message().find("mi100"), std::string::npos);
}

TEST(ArchRegistry, SpecsDiffer) {
  ArchSpec V100 = *lookupArch("v100");
  ArchSpec A100 = *lookupArch("a100");
  ArchSpec MI100 = *lookupArch("mi100");
  EXPECT_EQ(V100.Machine.WarpSize, 32u);
  EXPECT_EQ(A100.Machine.WarpSize, 32u);
  EXPECT_EQ(MI100.Machine.WarpSize, 64u); // CDNA wavefronts
  EXPECT_LT(V100.Machine.NumSMs, A100.Machine.NumSMs);
  EXPECT_LT(V100.Machine.SharedMemPerSMBytes, A100.Machine.SharedMemPerSMBytes);
  // Three genuinely distinct machines: pairwise-distinct fingerprints.
  EXPECT_NE(archFingerprint(V100), archFingerprint(A100));
  EXPECT_NE(archFingerprint(V100), archFingerprint(MI100));
  EXPECT_NE(archFingerprint(A100), archFingerprint(MI100));
}

//===----------------------------------------------------------------------===//
// JSON schema
//===----------------------------------------------------------------------===//

TEST(ArchSpecJSON, RoundTripIsByteIdentical) {
  for (const std::string &N : archRegistryNames()) {
    ArchSpec A = *lookupArch(N);
    std::string Doc = archSpecToJSON(A).str();
    Expected<ArchSpec> B = parseArchSpecText(Doc);
    ASSERT_TRUE((bool)B) << N << ": " << B.message();
    EXPECT_EQ(archSpecToJSON(*B).str(), Doc) << N;
    EXPECT_EQ(archFingerprint(*B), archFingerprint(A)) << N;
  }
}

TEST(ArchSpecJSON, HostileCorpusYieldsTypedErrors) {
  json::Value Good = archSpecToJSON(*lookupArch("v100"));

  // json::Value::at() is const, so nested mutations rewrite the section.
  auto SetMachineField = [](json::Value &D, const char *Key, json::Value V) {
    json::Value M = D.at("machine");
    M.set(Key, std::move(V));
    D.set("machine", std::move(M));
  };
  struct Case {
    const char *Label;
    std::function<void(json::Value &)> Mutate;
    const char *ExpectInError;
  };
  const Case Corpus[] = {
      {"unknown machine field",
       [&](json::Value &D) {
         SetMachineField(D, "tensor_cores", json::Value((uint64_t)640));
       },
       "tensor_cores"},
      {"unknown top-level field",
       [](json::Value &D) { D.set("vendor", "nvidia"); }, "vendor"},
      {"48-wide warp",
       [&](json::Value &D) {
         SetMachineField(D, "warp_size", json::Value((uint64_t)48));
       },
       "warp_size"},
      {"zero SMs",
       [&](json::Value &D) {
         SetMachineField(D, "num_sms", json::Value((uint64_t)0));
       },
       "num_sms"},
      {"string where integer expected",
       [&](json::Value &D) {
         SetMachineField(D, "num_sms", json::Value("eighty"));
       },
       "num_sms"},
      {"future schema version",
       [](json::Value &D) { D.set("schema_version", (uint64_t)99); },
       "schema_version"},
      {"empty name", [](json::Value &D) { D.set("name", ""); }, "name"},
  };
  for (const Case &C : Corpus) {
    json::Value Doc = Good; // deep copy
    C.Mutate(Doc);
    Expected<ArchSpec> A = parseArchSpecText(Doc.str());
    ASSERT_FALSE((bool)A) << C.Label;
    EXPECT_NE(A.message().find(C.ExpectInError), std::string::npos)
        << C.Label << ": " << A.message();
  }

  // Structural rejects that cannot be built by mutating a json::Value.
  EXPECT_FALSE((bool)parseArchSpecText("[]"));
  EXPECT_FALSE((bool)parseArchSpecText("not json at all"));
  // A missing field is named in the error.
  json::Value NoClock = Good;
  json::Value M = json::Value::makeObject();
  for (const auto &[Key, V] : Good.at("machine").members())
    if (Key != "clock_ghz")
      M.set(Key, V);
  NoClock.set("machine", std::move(M));
  Expected<ArchSpec> Missing = parseArchSpecText(NoClock.str());
  ASSERT_FALSE((bool)Missing);
  EXPECT_NE(Missing.message().find("clock_ghz"), std::string::npos)
      << Missing.message();
}

TEST(ArchSpecJSON, ValidateRules) {
  auto Expect = [](std::function<void(ArchSpec &)> Mutate,
                   const std::string &Needle) {
    ArchSpec A = *lookupArch("v100");
    Mutate(A);
    Error E = A.validate();
    ASSERT_TRUE((bool)E) << Needle;
    EXPECT_NE(E.message().find(Needle), std::string::npos) << E.message();
  };
  Expect([](ArchSpec &A) { A.Machine.MaxThreadsPerSM = 2050; },
         "warp_size");
  Expect(
      [](ArchSpec &A) {
        A.Machine.SharedMemPerBlockBytes = A.Machine.SharedMemPerSMBytes + 1;
      },
      "shared_mem_per_block_bytes");
  Expect(
      [](ArchSpec &A) {
        A.Machine.DataSharingSlabBytes = A.Machine.SharedMemPerBlockBytes + 1;
      },
      "data_sharing_slab_bytes");
  Expect([](ArchSpec &A) { A.Machine.RegistersPerSM = 64; },
         "registers_per_sm");
  Expect([](ArchSpec &A) { A.Machine.ClockGHz = 0.0; }, "clock_ghz");
  Expect([](ArchSpec &A) { A.Machine.Costs.BarrierCycles = 0; }, "cost");
  // Hostile host-link parameters: hostTransferCycles divides by the
  // bandwidth and adds the latency on every mapped transfer, so a zero or
  // negative bandwidth and a zero latency must be rejected up front
  // rather than yielding infinite or free transfers.
  Expect([](ArchSpec &A) { A.Machine.HostLinkBytesPerCycle = 0.0; },
         "host_link_bytes_per_cycle");
  Expect([](ArchSpec &A) { A.Machine.HostLinkBytesPerCycle = -11.6; },
         "host_link_bytes_per_cycle");
  Expect([](ArchSpec &A) { A.Machine.HostLinkLatencyCycles = 0; },
         "host_link_latency_cycles");
}

//===----------------------------------------------------------------------===//
// resolveArch (-march= semantics)
//===----------------------------------------------------------------------===//

TEST(ArchResolve, RegistryNameAndJSONPath) {
  Expected<ArchSpec> A = resolveArch("a100");
  ASSERT_TRUE((bool)A);
  EXPECT_EQ(A->Machine.NumSMs, 108u);

  // A *.json value is a spec file: a custom machine needs no rebuild.
  std::string Dir = freshDir("resolve");
  ArchSpec Custom = *lookupArch("mi100");
  Custom.Name = "mi100-liquid";
  Custom.Machine.ClockGHz = 1.8;
  std::string Path = Dir + "/custom.json";
  ASSERT_FALSE((bool)writeTextFile(Path, archSpecToJSON(Custom).str()));
  Expected<ArchSpec> B = resolveArch(Path);
  ASSERT_TRUE((bool)B) << B.message();
  EXPECT_EQ(B->Name, "mi100-liquid");
  EXPECT_EQ(B->Machine.WarpSize, 64u);

  EXPECT_FALSE((bool)resolveArch("voodoo2"));
  EXPECT_FALSE((bool)resolveArch(Dir + "/absent.json"));
  ASSERT_FALSE((bool)writeTextFile(Dir + "/broken.json", "{"));
  EXPECT_FALSE((bool)resolveArch(Dir + "/broken.json"));
}

TEST(ApplyArch, OnlyDefaultsAnUntouchedBudget) {
  ArchSpec MI100 = *lookupArch("mi100");

  PipelineOptions P = makeDevPipeline();
  ASSERT_EQ(P.OptConfig.SharedMemoryLimit, UINT64_MAX);
  applyArch(P, MI100);
  EXPECT_EQ(P.Arch.Name, "mi100");
  EXPECT_EQ(P.OptConfig.WarpSize, 64u);
  EXPECT_EQ(P.OptConfig.SharedMemoryLimit,
            MI100.Machine.SharedMemPerBlockBytes);

  // An explicit budget (e.g. bench/pgo's 160-byte squeeze) survives.
  PipelineOptions Q = makeDevPipeline();
  Q.OptConfig.SharedMemoryLimit = 160;
  applyArch(Q, MI100);
  EXPECT_EQ(Q.OptConfig.SharedMemoryLimit, 160u);
}

//===----------------------------------------------------------------------===//
// Compile-cache keying and v7 report provenance
//===----------------------------------------------------------------------===//

TEST(ArchCache, MarchSwitchOverWarmCacheMisses) {
  std::string Dir = freshDir("march-switch");
  PipelineOptions V100 = makeDevPipeline();
  applyArch(V100, *lookupArch("v100"));
  PipelineOptions MI100 = makeDevPipeline();
  applyArch(MI100, *lookupArch("mi100"));

  CompileService::Options SO;
  SO.Workers = 1;
  SO.Cache.Dir = Dir;
  {
    CompileService Svc(SO);
    std::vector<CompileOutcome> Out =
        Svc.compileBatch({makeWorkloadRequest("SU3Bench", V100)});
    ASSERT_TRUE(Out[0].Error.empty()) << Out[0].Error;
    EXPECT_FALSE(Out[0].CacheHit);
    EXPECT_EQ(Out[0].report().at("arch").at("name").asString(), "v100");
  }
  // Same cache dir, same workload: the v100 compile is warm...
  CompileService Svc(SO);
  std::vector<CompileOutcome> Out = Svc.compileBatch(
      {makeWorkloadRequest("SU3Bench", V100),
       makeWorkloadRequest("SU3Bench", MI100)});
  ASSERT_TRUE(Out[0].Error.empty()) << Out[0].Error;
  ASSERT_TRUE(Out[1].Error.empty()) << Out[1].Error;
  EXPECT_TRUE(Out[0].CacheHit);
  // ...but switching -march is a miss with its own provenance: the arch
  // is cache-key material, so a warm v100 entry can never satisfy it.
  EXPECT_FALSE(Out[1].CacheHit);
  EXPECT_NE(Out[0].CacheKey, Out[1].CacheKey);
  const json::Value &Arch = Out[1].report().at("arch");
  EXPECT_EQ(Arch.at("name").asString(), "mi100");
  EXPECT_EQ(Arch.at("warp_size").asInt(), 64);
  EXPECT_NE(Arch.at("fingerprint").asInt(),
            Out[0].report().at("arch").at("fingerprint").asInt());
}

//===----------------------------------------------------------------------===//
// Cross-architecture differential matrix
//===----------------------------------------------------------------------===//

TEST(ArchDifferential, BitExactPerArchDistinctAcrossArchs) {
  const char *Workloads[] = {"XSBench", "RSBench", "SU3Bench", "miniQMC"};
  std::vector<std::string> ArchNames = archRegistryNames();

  std::vector<CompileRequest> Reqs;
  for (const char *W : Workloads)
    for (const std::string &AN : ArchNames) {
      PipelineOptions P = makeDevPipeline();
      applyArch(P, *lookupArch(AN));
      Reqs.push_back(makeWorkloadRequest(W, P));
    }

  CompileService::Options Par, Seq;
  Par.Workers = 4;
  Seq.Workers = 1;
  Par.Cache.Enabled = Seq.Cache.Enabled = false;
  std::vector<CompileOutcome> A = CompileService(Par).compileBatch(Reqs);
  std::vector<CompileOutcome> B = CompileService(Seq).compileBatch(Reqs);
  ASSERT_EQ(A.size(), Reqs.size());

  for (size_t I = 0; I < Reqs.size(); ++I) {
    ASSERT_TRUE(A[I].Error.empty()) << Reqs[I].Id << ": " << A[I].Error;
    // Per arch, the matrix is bit-exact across worker counts.
    EXPECT_EQ(A[I].resultKey(), B[I].resultKey()) << Reqs[I].Id;
    EXPECT_TRUE(A[I].evaluation().at("correct").asBool()) << Reqs[I].Id;
  }
  // Across archs, the same workload simulates a different cycle count:
  // the machines are genuinely different, not relabeled.
  size_t NArch = ArchNames.size();
  for (size_t W = 0; W < std::size(Workloads); ++W)
    for (size_t I = 0; I < NArch; ++I)
      for (size_t J = I + 1; J < NArch; ++J)
        EXPECT_NE(
            A[W * NArch + I].evaluation().at("cycles").asInt(),
            A[W * NArch + J].evaluation().at("cycles").asInt())
            << Workloads[W] << ": " << ArchNames[I] << " vs " << ArchNames[J];
}

//===----------------------------------------------------------------------===//
// Autotuner
//===----------------------------------------------------------------------===//

TEST(Autotune, ByteDeterministicAndNeverWorseThanDefault) {
  AutotuneOptions O;
  O.Archs = {*lookupArch("v100"), *lookupArch("mi100")};
  O.Workloads = {"SU3Bench", "XSBench"};
  O.Service.Workers = 4;

  AutotuneResult R1 = runAutotune(O);
  EXPECT_EQ(R1.Failures, 0u);
  ASSERT_EQ(R1.Entries.size(), 4u);
  for (const AutotuneEntry &E : R1.Entries) {
    EXPECT_TRUE(E.DefaultCorrect) << E.Workload << "/" << E.Arch;
    // The default preset is itself a candidate, so tuned can never lose.
    EXPECT_LE(E.Cycles, E.DefaultCycles) << E.Workload << "/" << E.Arch;
    EXPECT_EQ(E.CandidatesTried, 6u); // 2 presets x 3 budgets
  }

  // Same options, different worker count: byte-identical tuned.json.
  O.Service.Workers = 1;
  AutotuneResult R2 = runAutotune(O);
  EXPECT_EQ(R1.toJSON().str(), R2.toJSON().str());

  // The artifact round-trips through the writer with a trailing newline.
  std::string Path = freshDir("tuned") + "/tuned.json";
  ASSERT_FALSE((bool)writeTunedFile(Path, R1));
  Expected<std::string> Text = readTextFile(Path);
  ASSERT_TRUE((bool)Text);
  EXPECT_EQ(*Text, R1.toJSON().str() + "\n");
}

TEST(Autotune, UnknownWorkloadIsAMissedOMP230) {
  AutotuneOptions O;
  O.Archs = {*lookupArch("v100")};
  O.Workloads = {"LINPACK"};
  AutotuneResult R = runAutotune(O);
  EXPECT_EQ(R.Entries.size(), 0u);
  EXPECT_EQ(R.Failures, 1u);
  ASSERT_EQ(R.Remarks.size(), 1u);
  EXPECT_EQ(R.Remarks.remarks()[0].Id, RemarkId::OMP230);
  EXPECT_TRUE(R.Remarks.remarks()[0].Missed);
}

TEST(Autotune, SabotagedCostTableMovesSelectionAndEmitsOMP231) {
  // On the stock v100, the default preset wins miniQMC outright.
  AutotuneOptions Stock;
  Stock.Archs = {*lookupArch("v100")};
  Stock.Workloads = {"miniQMC"};
  Stock.SharedLimits = {0};
  AutotuneResult Before = runAutotune(Stock);
  ASSERT_EQ(Before.Entries.size(), 1u);
  EXPECT_FALSE(Before.Entries[0].Improved);
  for (const Remark &R : Before.Remarks.remarks())
    EXPECT_NE(R.Id, RemarkId::OMP231);

  // Sabotage the cost table: shared memory 100x more expensive. The
  // SPMDzation default leans on runtime shared allocations, so the
  // tuned selection must move off it — and say so via OMP231.
  ArchSpec Sab = *lookupArch("v100");
  Sab.Name = "v100-sabotaged";
  Sab.Machine.Costs.SharedMemCycles = 400;
  ASSERT_FALSE((bool)Sab.validate());
  AutotuneOptions O = Stock;
  O.Archs = {Sab};
  AutotuneResult R = runAutotune(O);
  ASSERT_EQ(R.Entries.size(), 1u);
  const AutotuneEntry &E = R.Entries[0];
  EXPECT_TRUE(E.Improved);
  EXPECT_NE(E.Preset, E.DefaultPreset);
  EXPECT_LT(E.Cycles, E.DefaultCycles);
  bool Saw231 = false;
  for (const Remark &Rem : R.Remarks.remarks())
    Saw231 |= Rem.Id == RemarkId::OMP231 && !Rem.Missed;
  EXPECT_TRUE(Saw231);
}

} // namespace
