//===- tests/TestOutputCompare.cpp - Shared comparator tests ---------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the output comparator shared by the workloads'
/// checkOutputs(), the Harness/Bisect differential-smoke oracle, and the
/// fuzzing oracle: bit-exact and tolerance modes, mismatch reporting
/// (first index, expected/actual, counts), and length mismatches.
///
//===----------------------------------------------------------------------===//

#include "support/OutputCompare.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace ompgpu;

TEST(OutputCompare, ExactMatch) {
  std::vector<double> A = {1.0, -2.5, 0.0, 3.75};
  OutputComparison R = compareOutputs(A, A);
  EXPECT_TRUE(R.Match);
  EXPECT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R.Count, 4u);
  EXPECT_EQ(R.Mismatches, 0u);
  EXPECT_EQ(R.message(), "all 4 elements match");
}

TEST(OutputCompare, EmptyBuffersMatch) {
  OutputComparison R = compareOutputs(std::vector<double>{},
                                      std::vector<double>{});
  EXPECT_TRUE(R.Match);
  EXPECT_EQ(R.Count, 0u);
}

TEST(OutputCompare, ReportsFirstMismatchAndCounts) {
  std::vector<double> Expected = {1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> Actual = {1.0, 2.0, 3.5, 4.0, 5.25};
  OutputComparison R = compareOutputs(Expected, Actual);
  EXPECT_FALSE(R.Match);
  EXPECT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(R.FirstIndex, 2u);
  EXPECT_EQ(R.Expected, 3.0);
  EXPECT_EQ(R.Actual, 3.5);
  EXPECT_EQ(R.Mismatches, 2u);
  EXPECT_EQ(R.Count, 5u);
  EXPECT_EQ(R.message(),
            "mismatch at [2]: expected 3, got 3.5 (2 of 5 elements differ)");
}

TEST(OutputCompare, LengthMismatchIsReportedNotAsserted) {
  std::vector<double> Expected = {1.0, 2.0, 3.0};
  std::vector<double> Actual = {1.0, 2.0};
  OutputComparison R = compareOutputs(Expected, Actual);
  EXPECT_FALSE(R.Match);
  EXPECT_TRUE(R.SizeMismatch);
  EXPECT_EQ(R.message(), "buffer length mismatch: expected 3 elements, got 2");
}

TEST(OutputCompare, BitExactDistinguishesSignedZero) {
  std::vector<double> Expected = {0.0};
  std::vector<double> Actual = {-0.0};
  EXPECT_FALSE(compareOutputs(Expected, Actual, /*RelTol=*/0.0).Match);
  // A tolerance treats them as equal (0 - (-0) == 0).
  EXPECT_TRUE(compareOutputs(Expected, Actual, /*RelTol=*/1e-12).Match);
}

TEST(OutputCompare, BitExactTreatsIdenticalNaNsAsEqual) {
  double NaN = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> Expected = {NaN, 1.0};
  std::vector<double> Actual = {NaN, 1.0};
  EXPECT_TRUE(compareOutputs(Expected, Actual, /*RelTol=*/0.0).Match);
  // With a tolerance, NaN != NaN under fabs comparison.
  EXPECT_FALSE(compareOutputs(Expected, Actual, /*RelTol=*/1e-9).Match);
}

TEST(OutputCompare, RelativeToleranceScalesWithMagnitude) {
  // |a - e| <= RelTol * max(1, |e|): absolute near zero, relative above 1.
  std::vector<double> Expected = {0.0, 1.0e6};
  std::vector<double> Actual = {5.0e-10, 1.0e6 + 5.0e-4};
  EXPECT_TRUE(compareOutputs(Expected, Actual, /*RelTol=*/1e-9).Match);

  std::vector<double> TooFar = {5.0e-9, 1.0e6};
  EXPECT_FALSE(compareOutputs(Expected, TooFar, /*RelTol=*/1e-9).Match);
}

TEST(OutputCompare, PointerOverloadMatchesVectorOverload) {
  std::vector<double> Expected = {1.0, 2.0, 3.0};
  std::vector<double> Actual = {1.0, 9.0, 3.0};
  OutputComparison A = compareOutputs(Expected, Actual);
  OutputComparison B =
      compareOutputs(Expected.data(), Actual.data(), Expected.size());
  EXPECT_EQ(A.Match, B.Match);
  EXPECT_EQ(A.FirstIndex, B.FirstIndex);
  EXPECT_EQ(A.Mismatches, B.Mismatches);
  EXPECT_EQ(A.message(), B.message());
}
