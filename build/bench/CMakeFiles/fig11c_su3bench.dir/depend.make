# Empty dependencies file for fig11c_su3bench.
# This may be replaced when dependencies are built.
