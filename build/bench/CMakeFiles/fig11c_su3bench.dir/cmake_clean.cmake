file(REMOVE_RECURSE
  "CMakeFiles/fig11c_su3bench.dir/fig11c_su3bench.cpp.o"
  "CMakeFiles/fig11c_su3bench.dir/fig11c_su3bench.cpp.o.d"
  "fig11c_su3bench"
  "fig11c_su3bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11c_su3bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
