file(REMOVE_RECURSE
  "CMakeFiles/fig11a_xsbench.dir/fig11a_xsbench.cpp.o"
  "CMakeFiles/fig11a_xsbench.dir/fig11a_xsbench.cpp.o.d"
  "fig11a_xsbench"
  "fig11a_xsbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_xsbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
