# Empty compiler generated dependencies file for fig11a_xsbench.
# This may be replaced when dependencies are built.
