
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11a_xsbench.cpp" "bench/CMakeFiles/fig11a_xsbench.dir/fig11a_xsbench.cpp.o" "gcc" "bench/CMakeFiles/fig11a_xsbench.dir/fig11a_xsbench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ompgpu_benchsupport.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ompgpu_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/ompgpu_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ompgpu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/transforms/CMakeFiles/ompgpu_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/ompgpu_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/ompgpu_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/ompgpu_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ompgpu_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ompgpu_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ompgpu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
