file(REMOVE_RECURSE
  "CMakeFiles/fig10_kernel_stats.dir/fig10_kernel_stats.cpp.o"
  "CMakeFiles/fig10_kernel_stats.dir/fig10_kernel_stats.cpp.o.d"
  "fig10_kernel_stats"
  "fig10_kernel_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_kernel_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
