file(REMOVE_RECURSE
  "CMakeFiles/ablation_guard_grouping.dir/ablation_guard_grouping.cpp.o"
  "CMakeFiles/ablation_guard_grouping.dir/ablation_guard_grouping.cpp.o.d"
  "ablation_guard_grouping"
  "ablation_guard_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_guard_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
