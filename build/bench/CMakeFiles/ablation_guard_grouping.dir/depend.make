# Empty dependencies file for ablation_guard_grouping.
# This may be replaced when dependencies are built.
