file(REMOVE_RECURSE
  "CMakeFiles/fig11d_miniqmc.dir/fig11d_miniqmc.cpp.o"
  "CMakeFiles/fig11d_miniqmc.dir/fig11d_miniqmc.cpp.o.d"
  "fig11d_miniqmc"
  "fig11d_miniqmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11d_miniqmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
