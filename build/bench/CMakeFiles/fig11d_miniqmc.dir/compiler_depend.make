# Empty compiler generated dependencies file for fig11d_miniqmc.
# This may be replaced when dependencies are built.
