# Empty dependencies file for ablation_globalization.
# This may be replaced when dependencies are built.
