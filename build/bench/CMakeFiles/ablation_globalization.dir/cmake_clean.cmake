file(REMOVE_RECURSE
  "CMakeFiles/ablation_globalization.dir/ablation_globalization.cpp.o"
  "CMakeFiles/ablation_globalization.dir/ablation_globalization.cpp.o.d"
  "ablation_globalization"
  "ablation_globalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_globalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
