# Empty dependencies file for ompgpu_benchsupport.
# This may be replaced when dependencies are built.
