file(REMOVE_RECURSE
  "CMakeFiles/ompgpu_benchsupport.dir/BenchSupport.cpp.o"
  "CMakeFiles/ompgpu_benchsupport.dir/BenchSupport.cpp.o.d"
  "libompgpu_benchsupport.a"
  "libompgpu_benchsupport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ompgpu_benchsupport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
