file(REMOVE_RECURSE
  "libompgpu_benchsupport.a"
)
