file(REMOVE_RECURSE
  "CMakeFiles/fig09_opportunities.dir/fig09_opportunities.cpp.o"
  "CMakeFiles/fig09_opportunities.dir/fig09_opportunities.cpp.o.d"
  "fig09_opportunities"
  "fig09_opportunities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_opportunities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
