# Empty dependencies file for fig09_opportunities.
# This may be replaced when dependencies are built.
