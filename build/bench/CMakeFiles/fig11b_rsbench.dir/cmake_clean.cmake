file(REMOVE_RECURSE
  "CMakeFiles/fig11b_rsbench.dir/fig11b_rsbench.cpp.o"
  "CMakeFiles/fig11b_rsbench.dir/fig11b_rsbench.cpp.o.d"
  "fig11b_rsbench"
  "fig11b_rsbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_rsbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
