# Empty dependencies file for fig11b_rsbench.
# This may be replaced when dependencies are built.
