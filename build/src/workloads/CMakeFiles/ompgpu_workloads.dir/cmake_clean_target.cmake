file(REMOVE_RECURSE
  "libompgpu_workloads.a"
)
