file(REMOVE_RECURSE
  "CMakeFiles/ompgpu_workloads.dir/Harness.cpp.o"
  "CMakeFiles/ompgpu_workloads.dir/Harness.cpp.o.d"
  "CMakeFiles/ompgpu_workloads.dir/MiniQMC.cpp.o"
  "CMakeFiles/ompgpu_workloads.dir/MiniQMC.cpp.o.d"
  "CMakeFiles/ompgpu_workloads.dir/RSBench.cpp.o"
  "CMakeFiles/ompgpu_workloads.dir/RSBench.cpp.o.d"
  "CMakeFiles/ompgpu_workloads.dir/SU3Bench.cpp.o"
  "CMakeFiles/ompgpu_workloads.dir/SU3Bench.cpp.o.d"
  "CMakeFiles/ompgpu_workloads.dir/XSBench.cpp.o"
  "CMakeFiles/ompgpu_workloads.dir/XSBench.cpp.o.d"
  "libompgpu_workloads.a"
  "libompgpu_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ompgpu_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
