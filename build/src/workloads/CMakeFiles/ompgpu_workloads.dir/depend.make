# Empty dependencies file for ompgpu_workloads.
# This may be replaced when dependencies are built.
