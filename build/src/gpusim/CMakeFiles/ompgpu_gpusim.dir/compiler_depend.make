# Empty compiler generated dependencies file for ompgpu_gpusim.
# This may be replaced when dependencies are built.
