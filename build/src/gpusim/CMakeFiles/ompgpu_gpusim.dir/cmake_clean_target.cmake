file(REMOVE_RECURSE
  "libompgpu_gpusim.a"
)
