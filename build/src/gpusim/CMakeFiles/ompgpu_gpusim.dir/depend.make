# Empty dependencies file for ompgpu_gpusim.
# This may be replaced when dependencies are built.
