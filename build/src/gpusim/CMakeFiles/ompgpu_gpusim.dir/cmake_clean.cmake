file(REMOVE_RECURSE
  "CMakeFiles/ompgpu_gpusim.dir/Device.cpp.o"
  "CMakeFiles/ompgpu_gpusim.dir/Device.cpp.o.d"
  "CMakeFiles/ompgpu_gpusim.dir/ResourceEstimator.cpp.o"
  "CMakeFiles/ompgpu_gpusim.dir/ResourceEstimator.cpp.o.d"
  "libompgpu_gpusim.a"
  "libompgpu_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ompgpu_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
