file(REMOVE_RECURSE
  "CMakeFiles/ompgpu_frontend.dir/CGHelpers.cpp.o"
  "CMakeFiles/ompgpu_frontend.dir/CGHelpers.cpp.o.d"
  "CMakeFiles/ompgpu_frontend.dir/OMPCodeGen.cpp.o"
  "CMakeFiles/ompgpu_frontend.dir/OMPCodeGen.cpp.o.d"
  "CMakeFiles/ompgpu_frontend.dir/OMPRuntime.cpp.o"
  "CMakeFiles/ompgpu_frontend.dir/OMPRuntime.cpp.o.d"
  "libompgpu_frontend.a"
  "libompgpu_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ompgpu_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
