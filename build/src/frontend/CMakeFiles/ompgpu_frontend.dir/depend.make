# Empty dependencies file for ompgpu_frontend.
# This may be replaced when dependencies are built.
