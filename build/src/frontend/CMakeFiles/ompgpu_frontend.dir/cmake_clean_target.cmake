file(REMOVE_RECURSE
  "libompgpu_frontend.a"
)
