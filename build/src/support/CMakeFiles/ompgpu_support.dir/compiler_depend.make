# Empty compiler generated dependencies file for ompgpu_support.
# This may be replaced when dependencies are built.
