file(REMOVE_RECURSE
  "CMakeFiles/ompgpu_support.dir/CommandLine.cpp.o"
  "CMakeFiles/ompgpu_support.dir/CommandLine.cpp.o.d"
  "CMakeFiles/ompgpu_support.dir/ErrorHandling.cpp.o"
  "CMakeFiles/ompgpu_support.dir/ErrorHandling.cpp.o.d"
  "CMakeFiles/ompgpu_support.dir/Statistic.cpp.o"
  "CMakeFiles/ompgpu_support.dir/Statistic.cpp.o.d"
  "CMakeFiles/ompgpu_support.dir/raw_ostream.cpp.o"
  "CMakeFiles/ompgpu_support.dir/raw_ostream.cpp.o.d"
  "libompgpu_support.a"
  "libompgpu_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ompgpu_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
