file(REMOVE_RECURSE
  "libompgpu_support.a"
)
