file(REMOVE_RECURSE
  "CMakeFiles/ompgpu_rtl.dir/DeviceRTL.cpp.o"
  "CMakeFiles/ompgpu_rtl.dir/DeviceRTL.cpp.o.d"
  "libompgpu_rtl.a"
  "libompgpu_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ompgpu_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
