# Empty compiler generated dependencies file for ompgpu_rtl.
# This may be replaced when dependencies are built.
