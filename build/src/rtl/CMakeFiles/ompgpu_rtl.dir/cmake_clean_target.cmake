file(REMOVE_RECURSE
  "libompgpu_rtl.a"
)
