file(REMOVE_RECURSE
  "CMakeFiles/ompgpu_analysis.dir/CFG.cpp.o"
  "CMakeFiles/ompgpu_analysis.dir/CFG.cpp.o.d"
  "CMakeFiles/ompgpu_analysis.dir/CallGraph.cpp.o"
  "CMakeFiles/ompgpu_analysis.dir/CallGraph.cpp.o.d"
  "CMakeFiles/ompgpu_analysis.dir/Dominators.cpp.o"
  "CMakeFiles/ompgpu_analysis.dir/Dominators.cpp.o.d"
  "CMakeFiles/ompgpu_analysis.dir/PointerEscape.cpp.o"
  "CMakeFiles/ompgpu_analysis.dir/PointerEscape.cpp.o.d"
  "CMakeFiles/ompgpu_analysis.dir/RegisterPressure.cpp.o"
  "CMakeFiles/ompgpu_analysis.dir/RegisterPressure.cpp.o.d"
  "CMakeFiles/ompgpu_analysis.dir/ThreadValueAnalysis.cpp.o"
  "CMakeFiles/ompgpu_analysis.dir/ThreadValueAnalysis.cpp.o.d"
  "libompgpu_analysis.a"
  "libompgpu_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ompgpu_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
