# Empty compiler generated dependencies file for ompgpu_analysis.
# This may be replaced when dependencies are built.
