file(REMOVE_RECURSE
  "libompgpu_analysis.a"
)
