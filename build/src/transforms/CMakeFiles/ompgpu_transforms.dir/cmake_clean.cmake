file(REMOVE_RECURSE
  "CMakeFiles/ompgpu_transforms.dir/Cloning.cpp.o"
  "CMakeFiles/ompgpu_transforms.dir/Cloning.cpp.o.d"
  "CMakeFiles/ompgpu_transforms.dir/ConstantFold.cpp.o"
  "CMakeFiles/ompgpu_transforms.dir/ConstantFold.cpp.o.d"
  "CMakeFiles/ompgpu_transforms.dir/FunctionAttrs.cpp.o"
  "CMakeFiles/ompgpu_transforms.dir/FunctionAttrs.cpp.o.d"
  "CMakeFiles/ompgpu_transforms.dir/Inliner.cpp.o"
  "CMakeFiles/ompgpu_transforms.dir/Inliner.cpp.o.d"
  "CMakeFiles/ompgpu_transforms.dir/Mem2Reg.cpp.o"
  "CMakeFiles/ompgpu_transforms.dir/Mem2Reg.cpp.o.d"
  "CMakeFiles/ompgpu_transforms.dir/Simplify.cpp.o"
  "CMakeFiles/ompgpu_transforms.dir/Simplify.cpp.o.d"
  "CMakeFiles/ompgpu_transforms.dir/StoreToLoadForwarding.cpp.o"
  "CMakeFiles/ompgpu_transforms.dir/StoreToLoadForwarding.cpp.o.d"
  "libompgpu_transforms.a"
  "libompgpu_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ompgpu_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
