
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transforms/Cloning.cpp" "src/transforms/CMakeFiles/ompgpu_transforms.dir/Cloning.cpp.o" "gcc" "src/transforms/CMakeFiles/ompgpu_transforms.dir/Cloning.cpp.o.d"
  "/root/repo/src/transforms/ConstantFold.cpp" "src/transforms/CMakeFiles/ompgpu_transforms.dir/ConstantFold.cpp.o" "gcc" "src/transforms/CMakeFiles/ompgpu_transforms.dir/ConstantFold.cpp.o.d"
  "/root/repo/src/transforms/FunctionAttrs.cpp" "src/transforms/CMakeFiles/ompgpu_transforms.dir/FunctionAttrs.cpp.o" "gcc" "src/transforms/CMakeFiles/ompgpu_transforms.dir/FunctionAttrs.cpp.o.d"
  "/root/repo/src/transforms/Inliner.cpp" "src/transforms/CMakeFiles/ompgpu_transforms.dir/Inliner.cpp.o" "gcc" "src/transforms/CMakeFiles/ompgpu_transforms.dir/Inliner.cpp.o.d"
  "/root/repo/src/transforms/Mem2Reg.cpp" "src/transforms/CMakeFiles/ompgpu_transforms.dir/Mem2Reg.cpp.o" "gcc" "src/transforms/CMakeFiles/ompgpu_transforms.dir/Mem2Reg.cpp.o.d"
  "/root/repo/src/transforms/Simplify.cpp" "src/transforms/CMakeFiles/ompgpu_transforms.dir/Simplify.cpp.o" "gcc" "src/transforms/CMakeFiles/ompgpu_transforms.dir/Simplify.cpp.o.d"
  "/root/repo/src/transforms/StoreToLoadForwarding.cpp" "src/transforms/CMakeFiles/ompgpu_transforms.dir/StoreToLoadForwarding.cpp.o" "gcc" "src/transforms/CMakeFiles/ompgpu_transforms.dir/StoreToLoadForwarding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/ompgpu_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ompgpu_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ompgpu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
