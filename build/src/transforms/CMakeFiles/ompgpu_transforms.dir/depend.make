# Empty dependencies file for ompgpu_transforms.
# This may be replaced when dependencies are built.
