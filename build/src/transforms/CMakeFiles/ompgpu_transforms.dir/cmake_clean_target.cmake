file(REMOVE_RECURSE
  "libompgpu_transforms.a"
)
