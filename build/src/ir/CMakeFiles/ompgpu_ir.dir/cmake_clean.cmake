file(REMOVE_RECURSE
  "CMakeFiles/ompgpu_ir.dir/AsmWriter.cpp.o"
  "CMakeFiles/ompgpu_ir.dir/AsmWriter.cpp.o.d"
  "CMakeFiles/ompgpu_ir.dir/BasicBlock.cpp.o"
  "CMakeFiles/ompgpu_ir.dir/BasicBlock.cpp.o.d"
  "CMakeFiles/ompgpu_ir.dir/Function.cpp.o"
  "CMakeFiles/ompgpu_ir.dir/Function.cpp.o.d"
  "CMakeFiles/ompgpu_ir.dir/IRContext.cpp.o"
  "CMakeFiles/ompgpu_ir.dir/IRContext.cpp.o.d"
  "CMakeFiles/ompgpu_ir.dir/Instruction.cpp.o"
  "CMakeFiles/ompgpu_ir.dir/Instruction.cpp.o.d"
  "CMakeFiles/ompgpu_ir.dir/Module.cpp.o"
  "CMakeFiles/ompgpu_ir.dir/Module.cpp.o.d"
  "CMakeFiles/ompgpu_ir.dir/Type.cpp.o"
  "CMakeFiles/ompgpu_ir.dir/Type.cpp.o.d"
  "CMakeFiles/ompgpu_ir.dir/Value.cpp.o"
  "CMakeFiles/ompgpu_ir.dir/Value.cpp.o.d"
  "CMakeFiles/ompgpu_ir.dir/Verifier.cpp.o"
  "CMakeFiles/ompgpu_ir.dir/Verifier.cpp.o.d"
  "libompgpu_ir.a"
  "libompgpu_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ompgpu_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
