file(REMOVE_RECURSE
  "libompgpu_ir.a"
)
