# Empty compiler generated dependencies file for ompgpu_ir.
# This may be replaced when dependencies are built.
