# Empty dependencies file for ompgpu_driver.
# This may be replaced when dependencies are built.
