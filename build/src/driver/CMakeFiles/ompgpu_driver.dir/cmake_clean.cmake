file(REMOVE_RECURSE
  "CMakeFiles/ompgpu_driver.dir/Pipeline.cpp.o"
  "CMakeFiles/ompgpu_driver.dir/Pipeline.cpp.o.d"
  "libompgpu_driver.a"
  "libompgpu_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ompgpu_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
