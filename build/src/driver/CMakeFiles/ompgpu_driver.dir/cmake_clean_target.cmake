file(REMOVE_RECURSE
  "libompgpu_driver.a"
)
