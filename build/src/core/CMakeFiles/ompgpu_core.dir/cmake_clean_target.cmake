file(REMOVE_RECURSE
  "libompgpu_core.a"
)
