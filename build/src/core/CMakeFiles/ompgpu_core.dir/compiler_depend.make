# Empty compiler generated dependencies file for ompgpu_core.
# This may be replaced when dependencies are built.
