file(REMOVE_RECURSE
  "CMakeFiles/ompgpu_core.dir/CustomStateMachine.cpp.o"
  "CMakeFiles/ompgpu_core.dir/CustomStateMachine.cpp.o.d"
  "CMakeFiles/ompgpu_core.dir/FoldRuntimeCalls.cpp.o"
  "CMakeFiles/ompgpu_core.dir/FoldRuntimeCalls.cpp.o.d"
  "CMakeFiles/ompgpu_core.dir/HeapToShared.cpp.o"
  "CMakeFiles/ompgpu_core.dir/HeapToShared.cpp.o.d"
  "CMakeFiles/ompgpu_core.dir/HeapToStack.cpp.o"
  "CMakeFiles/ompgpu_core.dir/HeapToStack.cpp.o.d"
  "CMakeFiles/ompgpu_core.dir/Internalization.cpp.o"
  "CMakeFiles/ompgpu_core.dir/Internalization.cpp.o.d"
  "CMakeFiles/ompgpu_core.dir/OpenMPModuleInfo.cpp.o"
  "CMakeFiles/ompgpu_core.dir/OpenMPModuleInfo.cpp.o.d"
  "CMakeFiles/ompgpu_core.dir/OpenMPOpt.cpp.o"
  "CMakeFiles/ompgpu_core.dir/OpenMPOpt.cpp.o.d"
  "CMakeFiles/ompgpu_core.dir/Remarks.cpp.o"
  "CMakeFiles/ompgpu_core.dir/Remarks.cpp.o.d"
  "CMakeFiles/ompgpu_core.dir/SPMDzation.cpp.o"
  "CMakeFiles/ompgpu_core.dir/SPMDzation.cpp.o.d"
  "libompgpu_core.a"
  "libompgpu_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ompgpu_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
