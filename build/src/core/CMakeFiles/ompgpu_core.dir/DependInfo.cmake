
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/CustomStateMachine.cpp" "src/core/CMakeFiles/ompgpu_core.dir/CustomStateMachine.cpp.o" "gcc" "src/core/CMakeFiles/ompgpu_core.dir/CustomStateMachine.cpp.o.d"
  "/root/repo/src/core/FoldRuntimeCalls.cpp" "src/core/CMakeFiles/ompgpu_core.dir/FoldRuntimeCalls.cpp.o" "gcc" "src/core/CMakeFiles/ompgpu_core.dir/FoldRuntimeCalls.cpp.o.d"
  "/root/repo/src/core/HeapToShared.cpp" "src/core/CMakeFiles/ompgpu_core.dir/HeapToShared.cpp.o" "gcc" "src/core/CMakeFiles/ompgpu_core.dir/HeapToShared.cpp.o.d"
  "/root/repo/src/core/HeapToStack.cpp" "src/core/CMakeFiles/ompgpu_core.dir/HeapToStack.cpp.o" "gcc" "src/core/CMakeFiles/ompgpu_core.dir/HeapToStack.cpp.o.d"
  "/root/repo/src/core/Internalization.cpp" "src/core/CMakeFiles/ompgpu_core.dir/Internalization.cpp.o" "gcc" "src/core/CMakeFiles/ompgpu_core.dir/Internalization.cpp.o.d"
  "/root/repo/src/core/OpenMPModuleInfo.cpp" "src/core/CMakeFiles/ompgpu_core.dir/OpenMPModuleInfo.cpp.o" "gcc" "src/core/CMakeFiles/ompgpu_core.dir/OpenMPModuleInfo.cpp.o.d"
  "/root/repo/src/core/OpenMPOpt.cpp" "src/core/CMakeFiles/ompgpu_core.dir/OpenMPOpt.cpp.o" "gcc" "src/core/CMakeFiles/ompgpu_core.dir/OpenMPOpt.cpp.o.d"
  "/root/repo/src/core/Remarks.cpp" "src/core/CMakeFiles/ompgpu_core.dir/Remarks.cpp.o" "gcc" "src/core/CMakeFiles/ompgpu_core.dir/Remarks.cpp.o.d"
  "/root/repo/src/core/SPMDzation.cpp" "src/core/CMakeFiles/ompgpu_core.dir/SPMDzation.cpp.o" "gcc" "src/core/CMakeFiles/ompgpu_core.dir/SPMDzation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/ompgpu_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/transforms/CMakeFiles/ompgpu_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ompgpu_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ompgpu_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ompgpu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
