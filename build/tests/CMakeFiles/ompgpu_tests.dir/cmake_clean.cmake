file(REMOVE_RECURSE
  "CMakeFiles/ompgpu_tests.dir/TestAnalysis.cpp.o"
  "CMakeFiles/ompgpu_tests.dir/TestAnalysis.cpp.o.d"
  "CMakeFiles/ompgpu_tests.dir/TestEndToEnd.cpp.o"
  "CMakeFiles/ompgpu_tests.dir/TestEndToEnd.cpp.o.d"
  "CMakeFiles/ompgpu_tests.dir/TestFrontend.cpp.o"
  "CMakeFiles/ompgpu_tests.dir/TestFrontend.cpp.o.d"
  "CMakeFiles/ompgpu_tests.dir/TestGPUSim.cpp.o"
  "CMakeFiles/ompgpu_tests.dir/TestGPUSim.cpp.o.d"
  "CMakeFiles/ompgpu_tests.dir/TestIR.cpp.o"
  "CMakeFiles/ompgpu_tests.dir/TestIR.cpp.o.d"
  "CMakeFiles/ompgpu_tests.dir/TestInterpreterProperties.cpp.o"
  "CMakeFiles/ompgpu_tests.dir/TestInterpreterProperties.cpp.o.d"
  "CMakeFiles/ompgpu_tests.dir/TestOpenMPOpt.cpp.o"
  "CMakeFiles/ompgpu_tests.dir/TestOpenMPOpt.cpp.o.d"
  "CMakeFiles/ompgpu_tests.dir/TestPaperClaims.cpp.o"
  "CMakeFiles/ompgpu_tests.dir/TestPaperClaims.cpp.o.d"
  "CMakeFiles/ompgpu_tests.dir/TestRTLAndSupport.cpp.o"
  "CMakeFiles/ompgpu_tests.dir/TestRTLAndSupport.cpp.o.d"
  "CMakeFiles/ompgpu_tests.dir/TestTransforms.cpp.o"
  "CMakeFiles/ompgpu_tests.dir/TestTransforms.cpp.o.d"
  "CMakeFiles/ompgpu_tests.dir/TestWorkloads.cpp.o"
  "CMakeFiles/ompgpu_tests.dir/TestWorkloads.cpp.o.d"
  "ompgpu_tests"
  "ompgpu_tests.pdb"
  "ompgpu_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ompgpu_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
