# Empty dependencies file for ompgpu_tests.
# This may be replaced when dependencies are built.
