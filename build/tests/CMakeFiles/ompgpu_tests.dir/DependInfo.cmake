
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/TestAnalysis.cpp" "tests/CMakeFiles/ompgpu_tests.dir/TestAnalysis.cpp.o" "gcc" "tests/CMakeFiles/ompgpu_tests.dir/TestAnalysis.cpp.o.d"
  "/root/repo/tests/TestEndToEnd.cpp" "tests/CMakeFiles/ompgpu_tests.dir/TestEndToEnd.cpp.o" "gcc" "tests/CMakeFiles/ompgpu_tests.dir/TestEndToEnd.cpp.o.d"
  "/root/repo/tests/TestFrontend.cpp" "tests/CMakeFiles/ompgpu_tests.dir/TestFrontend.cpp.o" "gcc" "tests/CMakeFiles/ompgpu_tests.dir/TestFrontend.cpp.o.d"
  "/root/repo/tests/TestGPUSim.cpp" "tests/CMakeFiles/ompgpu_tests.dir/TestGPUSim.cpp.o" "gcc" "tests/CMakeFiles/ompgpu_tests.dir/TestGPUSim.cpp.o.d"
  "/root/repo/tests/TestIR.cpp" "tests/CMakeFiles/ompgpu_tests.dir/TestIR.cpp.o" "gcc" "tests/CMakeFiles/ompgpu_tests.dir/TestIR.cpp.o.d"
  "/root/repo/tests/TestInterpreterProperties.cpp" "tests/CMakeFiles/ompgpu_tests.dir/TestInterpreterProperties.cpp.o" "gcc" "tests/CMakeFiles/ompgpu_tests.dir/TestInterpreterProperties.cpp.o.d"
  "/root/repo/tests/TestOpenMPOpt.cpp" "tests/CMakeFiles/ompgpu_tests.dir/TestOpenMPOpt.cpp.o" "gcc" "tests/CMakeFiles/ompgpu_tests.dir/TestOpenMPOpt.cpp.o.d"
  "/root/repo/tests/TestPaperClaims.cpp" "tests/CMakeFiles/ompgpu_tests.dir/TestPaperClaims.cpp.o" "gcc" "tests/CMakeFiles/ompgpu_tests.dir/TestPaperClaims.cpp.o.d"
  "/root/repo/tests/TestRTLAndSupport.cpp" "tests/CMakeFiles/ompgpu_tests.dir/TestRTLAndSupport.cpp.o" "gcc" "tests/CMakeFiles/ompgpu_tests.dir/TestRTLAndSupport.cpp.o.d"
  "/root/repo/tests/TestTransforms.cpp" "tests/CMakeFiles/ompgpu_tests.dir/TestTransforms.cpp.o" "gcc" "tests/CMakeFiles/ompgpu_tests.dir/TestTransforms.cpp.o.d"
  "/root/repo/tests/TestWorkloads.cpp" "tests/CMakeFiles/ompgpu_tests.dir/TestWorkloads.cpp.o" "gcc" "tests/CMakeFiles/ompgpu_tests.dir/TestWorkloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/ompgpu_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/ompgpu_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ompgpu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/ompgpu_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/ompgpu_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/ompgpu_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/transforms/CMakeFiles/ompgpu_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ompgpu_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ompgpu_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ompgpu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
