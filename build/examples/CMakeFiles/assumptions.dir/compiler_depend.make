# Empty compiler generated dependencies file for assumptions.
# This may be replaced when dependencies are built.
