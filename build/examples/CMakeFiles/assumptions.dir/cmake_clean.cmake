file(REMOVE_RECURSE
  "CMakeFiles/assumptions.dir/assumptions.cpp.o"
  "CMakeFiles/assumptions.dir/assumptions.cpp.o.d"
  "assumptions"
  "assumptions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assumptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
