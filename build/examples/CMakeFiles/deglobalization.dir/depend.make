# Empty dependencies file for deglobalization.
# This may be replaced when dependencies are built.
