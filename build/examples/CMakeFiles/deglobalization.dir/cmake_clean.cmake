file(REMOVE_RECURSE
  "CMakeFiles/deglobalization.dir/deglobalization.cpp.o"
  "CMakeFiles/deglobalization.dir/deglobalization.cpp.o.d"
  "deglobalization"
  "deglobalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deglobalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
