file(REMOVE_RECURSE
  "CMakeFiles/spmdization.dir/spmdization.cpp.o"
  "CMakeFiles/spmdization.dir/spmdization.cpp.o.d"
  "spmdization"
  "spmdization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmdization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
