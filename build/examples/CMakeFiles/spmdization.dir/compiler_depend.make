# Empty compiler generated dependencies file for spmdization.
# This may be replaced when dependencies are built.
