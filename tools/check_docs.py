#!/usr/bin/env python3
"""Documentation consistency checker (CI `docs` job).

Three checks, all offline and dependency-free:

1. **Intra-repo links** — every relative markdown link in every tracked
   `*.md` file must resolve to an existing file or directory. External
   links (`http://`, `https://`, `mailto:`) and pure `#anchor` links are
   skipped; a `path#anchor` link is checked for the path part only.

2. **Remark codes** — every `OMPnnn` code mentioned anywhere in the docs
   must be a `RemarkId` enumerator in `src/core/Remarks.h`. A doc that
   cites a retired or mistyped code fails the job.

3. **Report-schema fields** — every field documented in a
   `docs/compile-report.md` table (rows of the form ``| `field` | ...``)
   must appear as a string literal in `src/driver/CompileReport.cpp`,
   `src/service/CompileService.cpp` (which fills the report's `cache`
   section), `src/resilience/{Resilience,FaultInjector}.cpp` (which
   fill the `resilience` section), or
   `src/gpusim/DeviceGroup.cpp` / `bench/cg.cpp` (which fill the
   `multi_device` section). Docs can lag behind the code (new
   undocumented fields are a warning at most), but they can never
   describe fields the serializer does not emit.

4. **Arch-spec fields** — the ArchSpec JSON schema documented in
   `docs/architectures.md` must match the serializer field tables in
   `src/gpusim/ArchSpec.cpp`, both ways: every ``"field":`` key in the
   doc's JSON examples must be a field the tables emit, and every
   machine-geometry field the tables emit must appear in the doc (the
   cost table is large and documented collectively, so it is checked
   doc→code only).

5. **Remark coverage** — the reverse of check 2: every `RemarkId`
   enumerator defined in `src/core/Remarks.h` must have a section in
   `docs/remarks.md`. A remark the compiler can emit but the catalog
   does not explain fails the job.

6. **Report sections** — every top-level section key `buildCompileReport`
   sets on the report document (the single `Doc.set("...")` chain in
   `src/driver/CompileReport.cpp`) must be mentioned in
   `docs/compile-report.md`. New sections cannot land undocumented.

Usage: `tools/check_docs.py [repo-root]` (defaults to the parent of the
directory containing this script). Exits non-zero with one line per
problem.
"""

import re
import sys
from pathlib import Path

SKIP_DIRS = {".git", "build", "build-san", "build-tsan", ".claude"}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
FENCE_RE = re.compile(r"^(```|~~~)")
REMARK_RE = re.compile(r"\bOMP(\d{3})\b")
REMARK_DEF_RE = re.compile(r"\bOMP(\d{3})\s*=\s*\d+")
TABLE_FIELD_RE = re.compile(r"^\|\s*`\"?([a-z][a-z0-9_]*)\"?(?:\[\])?`")
STRING_LIT_RE = re.compile(r'"([a-z][a-z0-9_]*)"')


def markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.relative_to(root).parts):
            continue
        yield path


def strip_code(text: str) -> str:
    """Removes fenced blocks and inline code spans: links and remark
    codes inside example output are illustrative, not normative."""
    out, fenced = [], False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            fenced = not fenced
            continue
        if not fenced:
            out.append(CODE_SPAN_RE.sub("``", line))
    return "\n".join(out)


def check_links(root: Path, errors: list):
    for md in markdown_files(root):
        text = strip_code(md.read_text(encoding="utf-8"))
        for target in LINK_RE.findall(text):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme
                continue
            if target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(
                    f"{md.relative_to(root)}: broken link '{target}' "
                    f"(no such file: {path_part})"
                )


def check_remark_codes(root: Path, errors: list):
    remarks_h = root / "src" / "core" / "Remarks.h"
    defined = set(REMARK_DEF_RE.findall(remarks_h.read_text(encoding="utf-8")))
    if not defined:
        errors.append(f"{remarks_h.relative_to(root)}: no RemarkId "
                      "enumerators found — checker out of date?")
        return
    for md in markdown_files(root):
        for lineno, line in enumerate(md.read_text(encoding="utf-8")
                                      .splitlines(), 1):
            for code in REMARK_RE.findall(line):
                if code not in defined:
                    errors.append(
                        f"{md.relative_to(root)}:{lineno}: remark code "
                        f"OMP{code} is not defined in src/core/Remarks.h"
                    )


def check_report_fields(root: Path, errors: list):
    report_md = root / "docs" / "compile-report.md"
    emitted = set()
    for src in (root / "src" / "driver" / "CompileReport.cpp",
                root / "src" / "service" / "CompileService.cpp",
                root / "src" / "resilience" / "Resilience.cpp",
                root / "src" / "resilience" / "FaultInjector.cpp",
                root / "src" / "gpusim" / "DeviceGroup.cpp",
                root / "bench" / "cg.cpp"):
        emitted |= set(STRING_LIT_RE.findall(src.read_text(encoding="utf-8")))
    for lineno, line in enumerate(report_md.read_text(encoding="utf-8")
                                  .splitlines(), 1):
        m = TABLE_FIELD_RE.match(line.strip())
        if not m:
            continue
        field = m.group(1)
        if field not in emitted:
            errors.append(
                f"docs/compile-report.md:{lineno}: documented field "
                f"'{field}' is not emitted by src/driver/CompileReport.cpp"
            )


def check_remarks_documented(root: Path, errors: list):
    """Reverse direction of check_remark_codes: every enumerator in
    Remarks.h must be explained in the docs/remarks.md catalog."""
    remarks_h = root / "src" / "core" / "Remarks.h"
    remarks_md = root / "docs" / "remarks.md"
    defined = set(REMARK_DEF_RE.findall(remarks_h.read_text(encoding="utf-8")))
    documented = set(REMARK_RE.findall(remarks_md.read_text(encoding="utf-8")))
    for code in sorted(defined - documented):
        errors.append(
            f"src/core/Remarks.h: remark OMP{code} is not documented in "
            f"docs/remarks.md"
        )


SET_KEY_RE = re.compile(r'\.set\("([a-z][a-z0-9_]*)"')


def check_report_sections(root: Path, errors: list):
    """Every top-level section buildCompileReport emits must be named in
    docs/compile-report.md. Scoped to the Doc.set(...) chain so nested
    object keys (checked field-by-field by check_report_fields) do not
    dilute the section list."""
    report_cpp = root / "src" / "driver" / "CompileReport.cpp"
    report_md = root / "docs" / "compile-report.md"
    cpp_text = report_cpp.read_text(encoding="utf-8")
    m = re.search(r"json::Value Doc = json::Value::makeObject\(\);"
                  r".*?return Doc;", cpp_text, re.S)
    if not m:
        errors.append(f"{report_cpp.relative_to(root)}: buildCompileReport "
                      "Doc.set chain not found — checker out of date?")
        return
    md_text = report_md.read_text(encoding="utf-8")
    for section in sorted(set(SET_KEY_RE.findall(m.group(0)))):
        if f"`{section}`" not in md_text:
            errors.append(
                f"src/driver/CompileReport.cpp: report section '{section}' "
                f"is not documented in docs/compile-report.md"
            )


JSON_KEY_RE = re.compile(r'"([a-z][a-z0-9_]*)"\s*:')
FIELD_TABLE_ENTRY_RE = re.compile(r'F\("([a-z][a-z0-9_]*)"')


def check_arch_fields(root: Path, errors: list):
    arch_md = root / "docs" / "architectures.md"
    arch_cpp = root / "src" / "gpusim" / "ArchSpec.cpp"
    cpp_text = arch_cpp.read_text(encoding="utf-8")
    emitted = set(FIELD_TABLE_ENTRY_RE.findall(cpp_text))
    # Envelope keys live outside the shared field tables, and the doc's
    # tuned.json example documents the autotuner's serializer.
    emitted |= set(STRING_LIT_RE.findall(cpp_text))
    autotune_cpp = root / "src" / "service" / "Autotune.cpp"
    emitted |= set(STRING_LIT_RE.findall(
        autotune_cpp.read_text(encoding="utf-8")))
    if not FIELD_TABLE_ENTRY_RE.findall(cpp_text):
        errors.append(f"{arch_cpp.relative_to(root)}: no serializer field "
                      "tables found — checker out of date?")
        return

    md_text = arch_md.read_text(encoding="utf-8")
    documented = set(JSON_KEY_RE.findall(md_text))
    for field in sorted(documented - emitted):
        errors.append(
            f"docs/architectures.md: documented spec field '{field}' is "
            f"not emitted by src/gpusim/ArchSpec.cpp"
        )

    # Machine-geometry fields (the forEachMachineField table) must all be
    # documented; the cost table is documented collectively.
    m = re.search(r"forEachMachineField\(MM &M,.*?\n}", cpp_text, re.S)
    if not m:
        errors.append(f"{arch_cpp.relative_to(root)}: forEachMachineField "
                      "table not found — checker out of date?")
        return
    for field in sorted(set(FIELD_TABLE_ENTRY_RE.findall(m.group(0)))):
        if field not in documented:
            errors.append(
                f"src/gpusim/ArchSpec.cpp: machine field '{field}' is not "
                f"documented in docs/architectures.md"
            )


def main(argv):
    root = Path(argv[1]).resolve() if len(argv) > 1 else \
        Path(__file__).resolve().parent.parent
    errors = []
    check_links(root, errors)
    check_remark_codes(root, errors)
    check_report_fields(root, errors)
    check_arch_fields(root, errors)
    check_remarks_documented(root, errors)
    check_report_sections(root, errors)
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    n_md = len(list(markdown_files(root)))
    if errors:
        print(f"check_docs: {len(errors)} problem(s) across {n_md} "
              "markdown files", file=sys.stderr)
        return 1
    print(f"check_docs: OK ({n_md} markdown files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
