//===- bench/BenchFlags.cpp - Shared driver command-line flags -------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "BenchFlags.h"
#include "support/CommandLine.h"
#include "support/raw_ostream.h"

using namespace ompgpu;
using namespace ompgpu::bench;

static cl::opt<std::string> MArch(
    "march",
    "Simulated architecture: a registry name (v100, a100, mi100) or a "
    "path to an ArchSpec *.json file (docs/architectures.md)",
    std::string("v100"));
static cl::opt<std::string> CompileReportPath(
    "compile-report",
    "Write a JSON array with one compile-report per measured "
    "configuration to the given path", std::string());
static cl::opt<std::string> BenchSummaryPath(
    "bench-summary",
    "Write the schema-versioned JSON bench-summary (one row per measured "
    "result) to the given path", std::string());
static cl::opt<std::string> MappingReportPath(
    "mapping-report",
    "Write the data-mapping inference report (per-kernel parameter "
    "classifications and inferred map kinds, docs/data-mapping.md) to the "
    "given path", std::string());

namespace ompgpu {
namespace bench {

static ArchSpec &activeArchStorage() {
  static ArchSpec A; // registry v100 == MachineModel defaults
  return A;
}

bool initActiveArch() {
  Expected<ArchSpec> A = resolveArch(MArch.getValue());
  if (!A) {
    errs() << "error: -march: " << A.message() << '\n';
    return false;
  }
  activeArchStorage() = std::move(*A);
  return true;
}

const ArchSpec &activeArch() { return activeArchStorage(); }

bool archFlagIsDefault() { return MArch.getValue() == "v100"; }

const std::string &compileReportFlagPath() {
  return CompileReportPath.getValue();
}

const std::string &benchSummaryFlagPath() {
  return BenchSummaryPath.getValue();
}

const std::string &mappingReportFlagPath() {
  return MappingReportPath.getValue();
}

} // namespace bench
} // namespace ompgpu
