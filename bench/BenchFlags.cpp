//===- bench/BenchFlags.cpp - Shared driver command-line flags -------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "BenchFlags.h"
#include "support/CommandLine.h"
#include "support/raw_ostream.h"

using namespace ompgpu;
using namespace ompgpu::bench;

static cl::opt<std::string> MArch(
    "march",
    "Simulated architecture: a registry name (v100, a100, mi100) or a "
    "path to an ArchSpec *.json file (docs/architectures.md)",
    std::string("v100"));
static cl::opt<std::string> CompileReportPath(
    "compile-report",
    "Write a JSON array with one compile-report per measured "
    "configuration to the given path", std::string());
static cl::opt<std::string> BenchSummaryPath(
    "bench-summary",
    "Write the schema-versioned JSON bench-summary (one row per measured "
    "result) to the given path", std::string());
static cl::opt<std::string> MappingReportPath(
    "mapping-report",
    "Write the data-mapping inference report (per-kernel parameter "
    "classifications and inferred map kinds, docs/data-mapping.md) to the "
    "given path", std::string());
static cl::opt<int64_t> DevicesFlag(
    "devices",
    "Simulated devices in the group, 1..64 homogeneous copies of -march "
    "(docs/multi-device.md); mutually exclusive with -group-spec",
    (int64_t)1);
static cl::opt<std::string> GroupSpecFlag(
    "group-spec",
    "Path to a device-group *.json spec naming per-device architectures "
    "and an optional peer link (docs/multi-device.md); mutually exclusive "
    "with -devices", std::string());

namespace ompgpu {
namespace bench {

static ArchSpec &activeArchStorage() {
  static ArchSpec A; // registry v100 == MachineModel defaults
  return A;
}

bool initActiveArch() {
  Expected<ArchSpec> A = resolveArch(MArch.getValue());
  if (!A) {
    errs() << "error: -march: " << A.message() << '\n';
    return false;
  }
  activeArchStorage() = std::move(*A);
  return true;
}

const ArchSpec &activeArch() { return activeArchStorage(); }

bool archFlagIsDefault() { return MArch.getValue() == "v100"; }

const std::string &compileReportFlagPath() {
  return CompileReportPath.getValue();
}

const std::string &benchSummaryFlagPath() {
  return BenchSummaryPath.getValue();
}

const std::string &mappingReportFlagPath() {
  return MappingReportPath.getValue();
}

Expected<unsigned> parseDeviceCountFlag(const std::string &Flag,
                                        int64_t Value, bool WasSet) {
  if (!WasSet)
    return 1u;
  if (Value <= 0)
    return Error::failure("-" + Flag + " must be a positive device count "
                          "(got " + std::to_string(Value) + ")");
  if (Value > (int64_t)MaxGroupDevices)
    return Error::failure("-" + Flag + " is implausibly large (got " +
                          std::to_string(Value) + ", max " +
                          std::to_string(MaxGroupDevices) + ")");
  return (unsigned)Value;
}

bool groupSpecFlagIsSet() { return !GroupSpecFlag.getValue().empty(); }

Expected<DeviceGroupSpec> resolveGroupSpecFlag() {
  if (groupSpecFlagIsSet()) {
    if (DevicesFlag.occurred())
      return Error::failure("-group-spec: cannot combine with -devices "
                            "(the spec names the group's devices)");
    Expected<DeviceGroupSpec> S =
        resolveDeviceGroupSpec(GroupSpecFlag.getValue());
    if (!S)
      return Error::failure("-group-spec: " + S.message());
    return S;
  }
  Expected<unsigned> N = parseDeviceCountFlag(
      "devices", DevicesFlag.getValue(), DevicesFlag.occurred());
  if (!N)
    return N.takeError();
  return homogeneousGroupSpec(activeArch(), *N);
}

} // namespace bench
} // namespace ompgpu
