//===- bench/ablation_guard_grouping.cpp - Fig. 7 ablation -----------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation for the side-effect grouping of Sec. IV-B3 (Fig. 7): sweeps
/// the number of interleaved sequential side effects and reports guarded
/// regions and kernel time with naive vs. grouped guarding.
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "rtl/DeviceRTL.h"
#include "support/raw_ostream.h"

#include <benchmark/benchmark.h>

using namespace ompgpu;
using namespace ompgpu::bench;

namespace {

struct Measurement {
  unsigned Guards;
  double Ms;
};

Measurement runOnce(int NumSideEffects, bool DisableGrouping) {
  IRContext Ctx;
  Module M(Ctx, "guards");
  OMPCodeGen CG(M, {CodeGenScheme::Simplified13, false});
  Type *F64 = Ctx.getDoubleTy();
  TargetRegionBuilder TRB(CG, "guard_kernel",
                          {Ctx.getPtrTy(), Ctx.getInt32Ty()},
                          ExecMode::Generic, 8, 64);
  Argument *A = TRB.getParam(0);
  TRB.emitDistributeLoop(TRB.getParam(1), [&](IRBuilder &B, Value *I) {
    // N side effects, each separated by SPMD-amenable arithmetic.
    for (int K = 0; K < NumSideEffects; ++K) {
      Value *V = B.createFMul(B.createSIToFP(I, F64),
                              B.getDouble(1.0 + K));
      Value *Idx = B.createAdd(B.createMul(I, B.getInt32(NumSideEffects)),
                               B.getInt32(K));
      B.createStore(V, B.createGEP(F64, A, {Idx}));
    }
    std::vector<TargetRegionBuilder::Capture> Caps;
    TRB.emitParallelFor(B.getInt32(8), Caps,
                        [&](IRBuilder &, Value *,
                            const TargetRegionBuilder::CaptureMap &) {});
  });
  Function *K = TRB.finalize();

  PipelineOptions P = makeDevPipeline();
  P.OptConfig.DisableGuardGrouping = DisableGrouping;
  CompileResult CR = optimizeDeviceModule(M, P);

  GPUDevice Dev;
  const int Iter = 64;
  uint64_t DA = Dev.allocate((uint64_t)Iter * NumSideEffects * 8);
  LaunchConfig LC;
  LC.GridDim = 8;
  LC.BlockDim = 64;
  NativeRuntimeBinding RTL =
      makeOpenMPRuntimeBinding(P.Flavor, Dev.getMachine());
  KernelStats S = Dev.launchKernel(M, K, LC, {DA, (uint64_t)Iter}, RTL);
  return {CR.Stats.GuardedRegions, S.Milliseconds};
}

void printTable() {
  outs() << "\nAblation: guarded-region grouping (Fig. 7)\n";
  outs() << "-------------------------------------------\n";
  outs() << formatBuf("  %13s %16s %12s %16s %12s %9s\n", "side effects",
                      "naive guards", "naive ms", "grouped guards",
                      "grouped ms", "speedup");
  auto Record = [](int N, const char *Config, const Measurement &M) {
    json::Value Row = json::Value::makeObject();
    Row.set("workload", "guard_kernel")
        .set("config", Config)
        .set("side_effects", (int64_t)N)
        .set("guards", M.Guards)
        .set("sim_kernel_ms", M.Ms);
    recordBenchSummaryRow(std::move(Row));
  };
  for (int N : {1, 2, 4, 8, 16}) {
    Measurement Naive = runOnce(N, true);
    Measurement Grouped = runOnce(N, false);
    Record(N, "naive", Naive);
    Record(N, "grouped", Grouped);
    outs() << formatBuf("  %13d %16u %12.4f %16u %12.4f %8.2fx\n", N,
                        Naive.Guards, Naive.Ms, Grouped.Guards, Grouped.Ms,
                        Naive.Ms / Grouped.Ms);
  }
  outs().flush();
}

void BM_Guards(benchmark::State &State) {
  for (auto _ : State) {
    (void)_;
    Measurement R = runOnce((int)State.range(0), State.range(1) != 0);
    State.counters["guards"] = R.Guards;
    State.counters["sim_ms"] = R.Ms;
  }
}

} // namespace

int main(int Argc, char **Argv) {
  benchmark::RegisterBenchmark("ablation/guards", BM_Guards)
      ->Args({8, 0})
      ->Args({8, 1})
      ->Iterations(1);
  return runBenchmarkMain(Argc, Argv, printTable);
}
