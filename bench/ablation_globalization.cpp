//===- bench/ablation_globalization.cpp - Fig. 4b vs 4c ablation -----------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation for the globalization codegen schemes of Sec. IV-A: the same
/// generic kernel with N address-taken team-scope locals lowered as the
/// LLVM 12 aggregated/coalesced push (Fig. 4b) vs. the paper's one
/// __kmpc_alloc_shared per variable (Fig. 4c), with and without the
/// middle-end rescue (HeapToShared).
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "rtl/DeviceRTL.h"
#include "support/raw_ostream.h"

#include <benchmark/benchmark.h>

using namespace ompgpu;
using namespace ompgpu::bench;

namespace {

double runOnce(int NumVars, CodeGenScheme Scheme, bool RunOpt) {
  IRContext Ctx;
  Module M(Ctx, "glob");
  OMPCodeGen CG(M, {Scheme, false});
  Type *F64 = Ctx.getDoubleTy();
  TargetRegionBuilder TRB(CG, "glob_kernel",
                          {Ctx.getPtrTy(), Ctx.getInt32Ty()},
                          ExecMode::Generic, 8, 64);
  Argument *Out = TRB.getParam(0);
  TRB.emitDistributeLoop(TRB.getParam(1), [&](IRBuilder &B, Value *I) {
    std::vector<std::pair<Type *, std::string>> Vars;
    for (int K = 0; K < NumVars; ++K)
      Vars.push_back({F64, "v" + std::to_string(K)});
    std::vector<std::function<void(IRBuilder &)>> Cleanups;
    std::vector<Value *> Ptrs =
        TRB.emitLocalVariableGroup(Vars, true, &Cleanups);
    Value *IF = B.createSIToFP(I, F64);
    for (int K = 0; K < NumVars; ++K)
      B.createStore(B.createFAdd(IF, B.getDouble(K)), Ptrs[K]);
    std::vector<TargetRegionBuilder::Capture> Caps = {
        {Out, false, "out"}, {I, false, "i"}, {Ptrs[0], true, "v0"}};
    TRB.emitParallelFor(
        B.getInt32(16), Caps,
        [&](IRBuilder &LB, Value *J,
            const TargetRegionBuilder::CaptureMap &Map) {
          Value *V = LB.createLoad(F64, Map.at(Ptrs[0]));
          Value *Idx = LB.createAdd(
              LB.createMul(Map.at(I), LB.getInt32(16)), J);
          LB.createStore(V, LB.createGEP(F64, Map.at(Out), {Idx}));
        });
    OMPCodeGen::emitCleanups(B, Cleanups);
  });
  Function *K = TRB.finalize();

  PipelineOptions P = Scheme == CodeGenScheme::Legacy12
                          ? makeLLVM12Pipeline()
                          : (RunOpt ? makeDevPipeline()
                                    : makeDevNoOptPipeline());
  CompileResult CR = optimizeDeviceModule(M, P);
  (void)CR;

  GPUDevice Dev;
  const int Iter = 64;
  uint64_t DOut = Dev.allocate((uint64_t)Iter * 16 * 8);
  LaunchConfig LC;
  LC.GridDim = 8;
  LC.BlockDim = 64;
  LC.Flavor = P.Flavor;
  NativeRuntimeBinding RTL =
      makeOpenMPRuntimeBinding(P.Flavor, Dev.getMachine());
  KernelStats S = Dev.launchKernel(M, K, LC, {DOut, (uint64_t)Iter}, RTL);
  return S.Milliseconds;
}

void printTable() {
  outs() << "\nAblation: globalization schemes (Fig. 4b vs 4c)\n";
  outs() << "------------------------------------------------\n";
  outs() << formatBuf("  %6s %18s %22s %20s\n", "#vars",
                      "LLVM 12 (Fig. 4b)", "simplified, no opt (4c)",
                      "simplified + h2s2");
  auto Record = [](int N, const char *Config, double Ms) {
    json::Value Row = json::Value::makeObject();
    Row.set("workload", "glob_kernel")
        .set("config", Config)
        .set("num_vars", (int64_t)N)
        .set("sim_kernel_ms", Ms);
    recordBenchSummaryRow(std::move(Row));
  };
  for (int N : {1, 2, 6, 18}) {
    double L12 = runOnce(N, CodeGenScheme::Legacy12, false);
    double NoOpt = runOnce(N, CodeGenScheme::Simplified13, false);
    double Opt = runOnce(N, CodeGenScheme::Simplified13, true);
    Record(N, "LLVM 12 (Fig. 4b)", L12);
    Record(N, "simplified, no opt (4c)", NoOpt);
    Record(N, "simplified + h2s2", Opt);
    outs() << formatBuf("  %6d %15.4f ms %19.4f ms %17.4f ms\n", N, L12,
                        NoOpt, Opt);
  }
  outs() << "  (the paper's miniQMC collapse at 18 variables, and its\n"
            "   recovery through HeapToShared, reproduce here)\n";
  outs().flush();
}

void BM_Globalization(benchmark::State &State) {
  for (auto _ : State) {
    (void)_;
    double Ms = runOnce((int)State.range(0),
                        State.range(1) ? CodeGenScheme::Simplified13
                                       : CodeGenScheme::Legacy12,
                        State.range(2) != 0);
    State.counters["sim_ms"] = Ms;
  }
}

} // namespace

int main(int Argc, char **Argv) {
  benchmark::RegisterBenchmark("ablation/globalization", BM_Globalization)
      ->Args({18, 0, 0})
      ->Args({18, 1, 0})
      ->Args({18, 1, 1})
      ->Iterations(1);
  return runBenchmarkMain(Argc, Argv, printTable);
}
