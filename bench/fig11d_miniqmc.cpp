//===- bench/fig11d_miniqmc.cpp - Fig. 11d: miniQMC relative perf ----------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 11d: miniQMC (check_spo_batched) relative to LLVM 12.
/// Paper shape: simplified codegen alone collapses to ~0.07x (eighteen
/// per-scope runtime allocations vs. one aggregated push), HeapToShared
/// restores parity (~1x), the custom state machine reaches ~1.6x, and
/// SPMDzation ~2.26x. No CUDA watermark (OpenMP-only proxy).
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

using namespace ompgpu;
using namespace ompgpu::bench;

static std::vector<ConfigSpec> configs() {
  return {configLLVM12(), configDevNoOpt(),      configH2S(),
          configH2S2(),   configH2S2RTCCSM(),    configDevFull()};
}

int main(int Argc, char **Argv) {
  registerConfigBenchmarks("fig11d/miniQMC", createMiniQMC, configs());
  return runBenchmarkMain(Argc, Argv, [] {
    std::vector<WorkloadRunResult> Results;
    for (const ConfigSpec &Spec : configs())
      Results.push_back(measure(createMiniQMC, Spec));
    printRelativeSeries(
        "Fig. 11d: miniQMC (check_spo_batched) relative to LLVM 12",
        Results);
  });
}
