//===- bench/fig11a_xsbench.cpp - Fig. 11a: XSBench relative perf ----------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 11a: XSBench kernel performance relative to LLVM 12.
/// Paper shape: simplified codegen alone is ~1.2x, heap-to-stack brings
/// the Dev branch to ~2.1x, within ~98% of the CUDA watermark.
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "support/raw_ostream.h"

using namespace ompgpu;
using namespace ompgpu::bench;

static std::vector<ConfigSpec> configs() {
  return {configLLVM12(), configDevNoOpt(), configH2S(), configH2S2RTC(),
          configCUDA()};
}

/// XSBenchTransfer A/B study (docs/data-mapping.md): the same compiled
/// kernel launched with the conservative copy-everything-tofrom mappings
/// and with the MapInference-derived minimal ones. On the
/// transfer-dominated variant the inferred map(to:) tables / map(from:)
/// output roughly halve the moved bytes, which shows up directly in the
/// modeled total cycles.
static void printTransferStudy() {
  ConfigSpec Spec = configH2S2RTC();
  PipelineOptions P = Spec.Pipeline;
  if (!archFlagIsDefault())
    applyArch(P, activeArch());

  HarnessOptions HO;
  HO.MaxSimulatedBlocks = 4;

  auto RunArm = [&](bool Conservative) {
    std::unique_ptr<Workload> W = createXSBenchTransfer(ProblemSize::Large);
    HO.ConservativeMappings = Conservative;
    WorkloadRunResult R = runWorkload(*W, P, HO);
    json::Value Row = benchSummaryRow(R);
    Row.set("config",
            Spec.Label +
                (Conservative ? " (conservative map)" : " (inferred map)"))
        .set("bytes_to_device", R.Stats.BytesToDevice)
        .set("bytes_from_device", R.Stats.BytesFromDevice)
        .set("transfer_cycles", R.Stats.TransferCycles)
        .set("total_cycles", R.Stats.totalCycles());
    recordBenchSummaryRow(std::move(Row));
    return R;
  };
  WorkloadRunResult Cons = RunArm(/*Conservative=*/true);
  WorkloadRunResult Inf = RunArm(/*Conservative=*/false);

  outs() << "\nXSBenchTransfer: inferred vs conservative data mappings ("
         << Spec.Label << ")\n";
  auto PrintArm = [](const char *Name, const WorkloadRunResult &R) {
    outs() << formatBuf(
        "  %-24s %14llu to-dev B %14llu from-dev B %14llu xfer cy "
        "%16llu total cy\n",
        Name, (unsigned long long)R.Stats.BytesToDevice,
        (unsigned long long)R.Stats.BytesFromDevice,
        (unsigned long long)R.Stats.TransferCycles,
        (unsigned long long)R.Stats.totalCycles());
  };
  PrintArm("conservative (tofrom)", Cons);
  PrintArm("inferred (minimal)", Inf);
  uint64_t ConsBytes = Cons.Stats.BytesToDevice + Cons.Stats.BytesFromDevice;
  uint64_t InfBytes = Inf.Stats.BytesToDevice + Inf.Stats.BytesFromDevice;
  if (ConsBytes > 0 && Cons.Stats.totalCycles() > 0)
    outs() << formatBuf(
        "  inferred mappings move %.1f%% of the bytes and %.1f%% of the "
        "total cycles\n",
        100.0 * (double)InfBytes / (double)ConsBytes,
        100.0 * (double)Inf.Stats.totalCycles() /
            (double)Cons.Stats.totalCycles());
  outs().flush();
}

int main(int Argc, char **Argv) {
  registerConfigBenchmarks("fig11a/XSBench", createXSBench, configs());
  return runBenchmarkMain(Argc, Argv, [] {
    std::vector<WorkloadRunResult> Results;
    for (const ConfigSpec &Spec : configs())
      Results.push_back(measure(createXSBench, Spec));
    printRelativeSeries(
        "Fig. 11a: XSBench (event-based) relative to LLVM 12", Results);
    printTransferStudy();
  });
}
