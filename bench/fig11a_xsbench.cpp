//===- bench/fig11a_xsbench.cpp - Fig. 11a: XSBench relative perf ----------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 11a: XSBench kernel performance relative to LLVM 12.
/// Paper shape: simplified codegen alone is ~1.2x, heap-to-stack brings
/// the Dev branch to ~2.1x, within ~98% of the CUDA watermark.
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

using namespace ompgpu;
using namespace ompgpu::bench;

static std::vector<ConfigSpec> configs() {
  return {configLLVM12(), configDevNoOpt(), configH2S(), configH2S2RTC(),
          configCUDA()};
}

int main(int Argc, char **Argv) {
  registerConfigBenchmarks("fig11a/XSBench", createXSBench, configs());
  return runBenchmarkMain(Argc, Argv, [] {
    std::vector<WorkloadRunResult> Results;
    for (const ConfigSpec &Spec : configs())
      Results.push_back(measure(createXSBench, Spec));
    printRelativeSeries(
        "Fig. 11a: XSBench (event-based) relative to LLVM 12", Results);
  });
}
