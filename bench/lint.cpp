//===- bench/lint.cpp - Standalone device-IR lint driver -------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs OMPLint over the optimized device module of every proxy workload
/// under every pipeline preset of the evaluation ladder, prints a summary,
/// and optionally writes a JSON report. CI runs this to assert the
/// compiler's output upholds the barrier/race invariants the paper's
/// transforms depend on; any finding is a failure (exit 1).
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "analysis/OMPLint.h"
#include "driver/CompileReport.h"
#include "ir/IRContext.h"
#include "ir/Module.h"
#include "support/CommandLine.h"
#include "support/FileSystem.h"
#include "support/JSON.h"
#include "support/raw_ostream.h"
#include "workloads/Harness.h"

using namespace ompgpu;
using namespace ompgpu::bench;

static cl::opt<std::string>
    ReportPath("lint-report",
               "Write a JSON lint report (schema in docs/compile-report.md, "
               "lint section) to the given path",
               "");
static cl::opt<std::string>
    OnlyWorkload("lint-workload",
                 "Lint only the named workload (XSBench, RSBench, SU3Bench, "
                 "miniQMC)",
                 "");
static cl::opt<std::string>
    OnlyConfig("lint-config",
               "Lint only configurations whose label contains this substring",
               "");

namespace {

struct NamedFactory {
  const char *Name;
  std::unique_ptr<Workload> (*Create)(ProblemSize);
};

json::Value findingToJSON(const LintFinding &F) {
  json::Value J = json::Value::makeObject();
  J.set("id", "OMP" + std::to_string(lintRemarkNumber(F.Kind)));
  J.set("kind", lintKindName(F.Kind));
  J.set("function", F.FunctionName);
  J.set("instruction", F.Instruction);
  if (!F.Object.empty())
    J.set("object", F.Object);
  J.set("message", F.Message);
  json::Value Witness = json::Value::makeArray();
  for (const std::string &Block : F.Witness)
    Witness.push_back(Block);
  J.set("witness", std::move(Witness));
  return J;
}

} // namespace

int main(int argc, char **argv) {
  cl::parseCommandLine(argc, argv);

  if (!initActiveArch())
    return 2;
  const NamedFactory Factories[] = {{"XSBench", createXSBench},
                                    {"XSBenchTransfer", createXSBenchTransfer},
                                    {"RSBench", createRSBench},
                                    {"SU3Bench", createSU3Bench},
                                    {"miniQMC", createMiniQMC}};
  std::vector<ConfigSpec> Configs = evaluationConfigs();
  if (!archFlagIsDefault())
    for (ConfigSpec &Spec : Configs)
      applyArch(Spec.Pipeline, activeArch());

  json::Value Report = json::Value::makeObject();
  Report.set("schema_version", 1);
  json::Value Results = json::Value::makeArray();
  // The -mapping-report artifact: one entry per compiled module with the
  // MapInference stage's per-parameter decisions (docs/data-mapping.md);
  // CI uploads it alongside the lint report.
  json::Value MappingResults = json::Value::makeArray();

  unsigned TotalFindings = 0, Compiled = 0, CompileFailures = 0;
  for (const NamedFactory &Factory : Factories) {
    if (!OnlyWorkload.getValue().empty() &&
        OnlyWorkload.getValue() != Factory.Name)
      continue;
    for (const ConfigSpec &Spec : Configs) {
      if (!OnlyConfig.getValue().empty() &&
          Spec.Label.find(OnlyConfig.getValue()) == std::string::npos)
        continue;

      std::unique_ptr<Workload> W = Factory.Create(ProblemSize::Small);
      IRContext Ctx;
      Module M(Ctx, W->getName());
      if (Spec.UseCUDA) {
        if (!W->buildCUDA(M))
          continue; // OpenMP-only workload (miniQMC).
      } else {
        OMPCodeGen CG(M, CodeGenOptions{Spec.Pipeline.Scheme,
                                        /*CudaMode=*/false});
        W->buildOpenMP(CG);
      }

      json::Value Entry = json::Value::makeObject();
      Entry.set("workload", Factory.Name);
      Entry.set("config", Spec.Label);

      CompileResult CR = optimizeDeviceModule(M, Spec.Pipeline);
      ++Compiled;
      if (CR.VerifyFailed) {
        ++CompileFailures;
        Entry.set("compile_error", CR.VerifyError);
        errs() << "lint: " << Factory.Name << " / " << Spec.Label
               << ": compile failed: " << CR.VerifyError << "\n";
        Results.push_back(std::move(Entry));
        continue;
      }

      json::Value MapEntry = json::Value::makeObject();
      MapEntry.set("workload", Factory.Name)
          .set("config", Spec.Label)
          .set("mapping",
               mapInferenceToJSON(CR.MapInferenceRan, CR.Mapping));
      MappingResults.push_back(std::move(MapEntry));

      LintResult LR = runOMPLint(M);
      json::Value Findings = json::Value::makeArray();
      for (const LintFinding &F : LR.Findings)
        Findings.push_back(findingToJSON(F));
      Entry.set("findings", std::move(Findings));
      Results.push_back(std::move(Entry));

      outs() << "lint: " << Factory.Name << " / " << Spec.Label << ": ";
      if (LR.clean()) {
        outs() << "clean\n";
      } else {
        TotalFindings += LR.Findings.size();
        outs() << LR.Findings.size() << " finding(s)\n";
        for (const LintFinding &F : LR.Findings)
          outs() << "  " << F.str() << "\n";
      }
    }
  }

  Report.set("results", std::move(Results));
  Report.set("total_findings", TotalFindings);
  Report.set("compile_failures", CompileFailures);

  if (!ReportPath.getValue().empty()) {
    raw_fd_ostream OS(ReportPath.getValue());
    Report.write(OS);
    OS << "\n";
  }

  if (!mappingReportFlagPath().empty()) {
    json::Value MappingReport = json::Value::makeObject();
    MappingReport.set("schema_version", 1)
        .set("generator", "ompgpu")
        .set("tool", "lint")
        .set("results", std::move(MappingResults));
    if (Error E = writeTextFile(mappingReportFlagPath(),
                                MappingReport.str() + "\n")) {
      errs() << "mapping-report: " << E.message() << "\n";
      return 1;
    }
    outs() << "wrote mapping-report to " << mappingReportFlagPath() << "\n";
  }

  if (Compiled == 0) {
    errs() << "lint: no workload/config matched the filters\n";
    return 2;
  }
  outs() << "lint: " << Compiled << " module(s), " << TotalFindings
         << " finding(s), " << CompileFailures << " compile failure(s)\n";
  return (TotalFindings || CompileFailures) ? 1 : 0;
}
