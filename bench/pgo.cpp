//===- bench/pgo.cpp - Profile-guided optimization A/B driver --------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A/B-compares the device pipeline with and without profile-guided
/// optimization (docs/pgo.md) over the Fig. 11 proxy workloads:
///
///   arm A   compile under a shared-memory budget, no profile; full-grid
///           simulate, record cycles.
///   gen     same compile, run in gpusim's profiling mode twice; assert
///           both profiles serialize byte-identically (determinism) and
///           survive a parse/re-serialize round trip.
///   arm B   recompile with -profile-use feeding the collected profile
///           into OpenMPOpt (OMP210-OMP212); full-grid simulate, record
///           cycles.
///
/// One bench-summary row per workload carries both arms' cycles and the
/// delta; CI consumes it via -bench-summary=<path> and can gate on
/// -pgo-require-improvement.
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "profile/Profile.h"
#include "support/CommandLine.h"
#include "support/raw_ostream.h"
#include "workloads/Harness.h"

using namespace ompgpu;
using namespace ompgpu::bench;

static cl::opt<std::string>
    OnlyWorkload("pgo-workload",
                 "Run only the named workload (XSBench, RSBench, SU3Bench, "
                 "miniQMC)",
                 "");
static cl::opt<int64_t> SharedLimit(
    "pgo-shared-limit",
    "Shared-memory budget in bytes for HeapToShared during both arms; a "
    "binding budget is what makes profiled ranking observable (docs/pgo.md)",
    160);
static cl::opt<std::string>
    ProfileDir("pgo-profile-dir",
               "Also write each workload's collected profile as "
               "<dir>/<workload>.profile.json", "");
static cl::opt<bool> RequireImprovement(
    "pgo-require-improvement",
    "Exit non-zero unless at least one workload's PGO arm beats the "
    "no-PGO arm in simulated cycles (the CI gate)",
    false);

namespace {

struct NamedFactory {
  const char *Name;
  std::unique_ptr<Workload> (*Create)(ProblemSize);
};

struct ArmResult {
  WorkloadRunResult Run;
  bool ok() const {
    return Run.Stats.ok() && Run.Checked && Run.Correct;
  }
};

/// Compiles and full-grid-simulates one fresh instance of the workload.
ArmResult runArm(const NamedFactory &Factory, const PipelineOptions &P,
                 ProfileCollector *Collector) {
  std::unique_ptr<Workload> W = Factory.Create(ProblemSize::Small);
  HarnessOptions HO;
  HO.MaxSimulatedBlocks = 0; // whole grid: outputs are checked
  HO.Profile = Collector;
  ArmResult R;
  R.Run = runWorkload(*W, P, HO);
  return R;
}

} // namespace

int main(int argc, char **argv) {
  cl::parseCommandLine(argc, argv);

  const NamedFactory Factories[] = {{"XSBench", createXSBench},
                                    {"RSBench", createRSBench},
                                    {"SU3Bench", createSU3Bench},
                                    {"miniQMC", createMiniQMC}};

  PipelineOptions Base = configDevFull().Pipeline;
  Base.OptConfig.SharedMemoryLimit = (uint64_t)SharedLimit.getValue();

  outs() << "\nPGO A/B: LLVM Dev 0 with a " << SharedLimit.getValue()
         << "-byte shared-memory budget (docs/pgo.md)\n";
  outs() << "---------------------------------------------------------\n";
  outs() << formatBuf("  %-10s %14s %14s %10s %8s\n", "workload",
                      "no-PGO cycles", "PGO cycles", "delta", "speedup");

  unsigned Failures = 0, Improved = 0, Ran = 0;
  for (const NamedFactory &Factory : Factories) {
    if (!OnlyWorkload.getValue().empty() &&
        OnlyWorkload.getValue() != Factory.Name)
      continue;
    ++Ran;

    // Arm A: budgeted compile, no profile.
    PipelineOptions NoPGO = Base;
    NoPGO.Name += " (no PGO)";
    ArmResult A = runArm(Factory, NoPGO, nullptr);
    if (!A.ok()) {
      errs() << "pgo: " << Factory.Name << ": no-PGO arm failed: "
             << (A.Run.Stats.ok() ? "wrong outputs" : A.Run.Stats.Trap)
             << "\n";
      ++Failures;
      continue;
    }

    // Profile generation: the same compile, simulated twice in profiling
    // mode. Identical runs must produce byte-identical serializations.
    PipelineOptions Gen = Base;
    Gen.Name += " (profile-gen)";
    Gen.Profile = PipelineOptions::ProfileMode::Gen;
    ProfileCollector C1, C2;
    ArmResult G1 = runArm(Factory, Gen, &C1);
    ArmResult G2 = runArm(Factory, Gen, &C2);
    if (!G1.ok() || !G2.ok()) {
      errs() << "pgo: " << Factory.Name << ": profile-gen arm failed\n";
      ++Failures;
      continue;
    }
    ExecutionProfile Prof = C1.takeProfile();
    std::string Text1 = serializeProfile(Prof);
    std::string Text2 = serializeProfile(C2.profile());
    bool Deterministic = Text1 == Text2;
    if (!Deterministic) {
      errs() << "pgo: " << Factory.Name
             << ": profiles of two identical runs differ\n";
      ++Failures;
    }
    if (Prof.empty()) {
      errs() << "pgo: " << Factory.Name << ": collected profile is empty\n";
      ++Failures;
      continue;
    }

    // Round trip: parse the serialized profile and re-serialize.
    Expected<ExecutionProfile> Reparsed = parseProfile(Text1);
    bool RoundTrip = Reparsed && serializeProfile(*Reparsed) == Text1;
    if (!RoundTrip) {
      errs() << "pgo: " << Factory.Name << ": profile round trip failed"
             << (Reparsed ? "" : ": " + Reparsed.message()) << "\n";
      ++Failures;
      continue;
    }

    if (!ProfileDir.getValue().empty()) {
      std::string Path = ProfileDir.getValue() + "/" +
                         std::string(Factory.Name) + ".profile.json";
      if (Error E = writeProfileFile(Path, Prof))
        errs() << "pgo: " << Path << ": " << E.message() << "\n";
    }

    // Arm B: recompile with the profile feeding OpenMPOpt.
    PipelineOptions UsePGO = Base;
    UsePGO.Name += " (PGO)";
    UsePGO.Profile = PipelineOptions::ProfileMode::Use;
    UsePGO.OptConfig.Profile = &Prof;
    ArmResult B = runArm(Factory, UsePGO, nullptr);
    if (!B.ok()) {
      errs() << "pgo: " << Factory.Name << ": PGO arm failed: "
             << (B.Run.Stats.ok() ? "wrong outputs" : B.Run.Stats.Trap)
             << "\n";
      ++Failures;
      continue;
    }

    uint64_t CyclesA = A.Run.Stats.Cycles, CyclesB = B.Run.Stats.Cycles;
    int64_t Delta = (int64_t)CyclesA - (int64_t)CyclesB;
    if (Delta > 0)
      ++Improved;
    outs() << formatBuf("  %-10s %14llu %14llu %+10lld %7.3fx\n",
                        Factory.Name, (unsigned long long)CyclesA,
                        (unsigned long long)CyclesB, (long long)Delta,
                        CyclesB ? (double)CyclesA / (double)CyclesB : 0.0);

    json::Value Row = json::Value::makeObject();
    Row.set("workload", Factory.Name)
        .set("config", "pgo-ab")
        .set("shared_memory_limit", (int64_t)SharedLimit.getValue())
        .set("sim_cycles_no_pgo", CyclesA)
        .set("sim_cycles_pgo", CyclesB)
        .set("cycles_delta", Delta)
        .set("speedup",
             CyclesB ? (double)CyclesA / (double)CyclesB : 0.0)
        .set("profile_deterministic", Deterministic)
        .set("profile_round_trip", RoundTrip)
        .set("correct", A.ok() && B.ok());
    recordBenchSummaryRow(std::move(Row));
  }

  if (Ran == 0) {
    errs() << "pgo: no workload matched -pgo-workload\n";
    return 2;
  }
  outs() << "  " << Improved << " workload(s) improved under PGO, "
         << Failures << " failure(s)\n";
  outs().flush();

  bool WroteSummary = writeBenchSummary("pgo");
  if (Failures || !WroteSummary)
    return 1;
  if (RequireImprovement && Improved == 0) {
    errs() << "pgo: -pgo-require-improvement set but no workload improved\n";
    return 1;
  }
  return 0;
}
