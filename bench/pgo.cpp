//===- bench/pgo.cpp - Profile-guided optimization A/B driver --------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A/B-compares the device pipeline with and without profile-guided
/// optimization (docs/pgo.md) over the Fig. 11 proxy workloads:
///
///   arm A   compile under a shared-memory budget, no profile; full-grid
///           simulate, record cycles.
///   gen     same compile, run in gpusim's profiling mode twice; assert
///           both profiles serialize byte-identically (determinism) and
///           survive a parse/re-serialize round trip.
///   arm B   recompile with -profile-use feeding the collected profile
///           into OpenMPOpt (OMP210-OMP212); full-grid simulate, record
///           cycles.
///
/// One bench-summary row per workload carries both arms' cycles and the
/// delta; CI consumes it via -bench-summary=<path> and can gate on
/// -pgo-require-improvement.
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "ir/Module.h"
#include "profile/Profile.h"
#include "resilience/Resilience.h"
#include "service/CompileService.h"
#include "support/CommandLine.h"
#include "support/raw_ostream.h"
#include "workloads/Harness.h"

#include <map>
#include <memory>

using namespace ompgpu;
using namespace ompgpu::bench;

static cl::opt<std::string>
    OnlyWorkload("pgo-workload",
                 "Run only the named workload (XSBench, RSBench, SU3Bench, "
                 "miniQMC)",
                 "");
static cl::opt<int64_t> SharedLimit(
    "pgo-shared-limit",
    "Shared-memory budget in bytes for HeapToShared during both arms; a "
    "binding budget is what makes profiled ranking observable (docs/pgo.md)",
    160);
static cl::opt<std::string>
    ProfileDir("pgo-profile-dir",
               "Also write each workload's collected profile as "
               "<dir>/<workload>.profile.json", "");
static cl::opt<bool> RequireImprovement(
    "pgo-require-improvement",
    "Exit non-zero unless at least one workload's PGO arm beats the "
    "no-PGO arm in simulated cycles (the CI gate)",
    false);
static cl::opt<int64_t>
    Jobs("pgo-jobs",
         "Compile-service worker threads (0 = hardware concurrency, 1 = "
         "sequential)",
         0);
static cl::opt<std::string>
    CacheDir("pgo-cache-dir",
             "On-disk compile-cache directory shared across runs (empty: "
             "in-memory cache only)",
             "");

namespace {

struct NamedFactory {
  const char *Name;
  std::unique_ptr<Workload> (*Create)(ProblemSize);
};

/// Scratch shared between one arm request's Emit and Evaluate callbacks
/// (both run on the same service worker, in order).
struct ArmState {
  std::unique_ptr<Workload> W;
  ProfileCollector Collector;
  bool CollectProfile = false;
};

/// One arm as a compile-service request: Emit builds the workload module,
/// Evaluate full-grid-simulates it and (for the gen arms) serializes the
/// collected execution profile into the cached evaluation — so a warm
/// cache skips the compile *and* the simulation.
CompileRequest makeArmRequest(const NamedFactory &Factory,
                              const PipelineOptions &P, bool CollectProfile,
                              uint64_t Salt) {
  auto St = std::make_shared<ArmState>();
  St->CollectProfile = CollectProfile;
  CompileRequest Q;
  Q.Id = std::string(Factory.Name) + "/" + P.Name;
  Q.Pipeline = P;
  Q.Salt = Salt;
  Q.Emit = [St, Factory, P](Module &M) {
    St->W = Factory.Create(ProblemSize::Small);
    Function *K = emitWorkloadModule(*St->W, M, P);
    return K ? std::string(K->getName()) : std::string();
  };
  Q.Evaluate = [St, P](Module &M, const CompileResult &CR,
                       const std::string &Kernel) {
    json::Value V = json::Value::makeObject();
    if (CR.VerifyFailed) {
      V.set("ok", false)
          .set("trap", "IR verification failed: " + CR.VerifyError);
      return V;
    }
    Function *K = M.getFunction(Kernel);
    if (!K) {
      V.set("ok", false)
          .set("trap", "kernel '" + Kernel + "' lost during optimization");
      return V;
    }
    HarnessOptions HO;
    HO.MaxSimulatedBlocks = 0; // whole grid: outputs are checked
    HO.Profile = St->CollectProfile ? &St->Collector : nullptr;
    LaunchCheckResult L = launchAndCheckWorkload(*St->W, M, K, P, HO);
    bool OK = L.Stats.ok() && L.Checked && L.Correct;
    V.set("ok", OK)
        .set("checked", L.Checked)
        .set("correct", L.Correct)
        .set("cycles", L.Stats.Cycles)
        .set("trap", L.Stats.ok() ? std::string(L.Stats.Trap)
                                  : (L.Stats.Trap.empty() ? "out of memory"
                                                          : L.Stats.Trap));
    if (St->CollectProfile)
      V.set("profile", serializeProfile(St->Collector.profile()));
    return V;
  };
  return Q;
}

/// One arm's outcome as the driver consumes it.
struct ArmResult {
  bool ServiceError = false;
  std::string Message;
  bool OK = false;
  uint64_t Cycles = 0;
  std::string ProfileText;

  static ArmResult fromOutcome(const CompileOutcome &O) {
    ArmResult R;
    if (!O.Error.empty()) {
      R.ServiceError = true;
      R.Message = O.Error;
      return R;
    }
    const json::Value &E = O.evaluation();
    if (!E.isObject() || !E.find("ok")) {
      R.ServiceError = true;
      R.Message = "malformed evaluation payload";
      return R;
    }
    R.OK = E.at("ok").asBool();
    if (const json::Value *C = E.find("cycles"))
      R.Cycles = (uint64_t)C->asInt();
    if (const json::Value *T = E.find("trap"))
      R.Message = T->asString();
    if (const json::Value *P = E.find("profile"))
      R.ProfileText = P->asString();
    return R;
  }
};

/// Fail fast, naming every failed request: a batch entry that errored
/// must abort the A/B comparison instead of silently skewing it.
static bool anyRequestFailed(const char *Batch,
                             const std::vector<CompileOutcome> &Out) {
  bool Any = false;
  for (const CompileOutcome &O : Out)
    if (!O.Error.empty()) {
      errs() << "pgo: request '" << O.Id << "' failed in " << Batch << ": "
             << O.Error << "\n";
      Any = true;
    }
  return Any;
}

} // namespace

int main(int argc, char **argv) {
  cl::parseCommandLine(argc, argv);

  if (!initActiveArch())
    return 2;
  Expected<unsigned> Workers =
      parseWorkerCountFlag("pgo-jobs", (int64_t)Jobs, Jobs.occurred());
  if (!Workers) {
    errs() << Workers.message() << "\n";
    return 2;
  }
  if (Error E = validateCacheDirFlag("pgo-cache-dir", CacheDir.getValue())) {
    errs() << E.message() << "\n";
    return 2;
  }

  const NamedFactory Factories[] = {{"XSBench", createXSBench},
                                    {"RSBench", createRSBench},
                                    {"SU3Bench", createSU3Bench},
                                    {"miniQMC", createMiniQMC}};

  PipelineOptions Base = configDevFull().Pipeline;
  Base.OptConfig.SharedMemoryLimit = (uint64_t)SharedLimit.getValue();
  // The explicit -pgo-shared-limit budget survives applyArch (only an
  // unlimited budget is defaulted to the arch's capacity).
  if (!archFlagIsDefault())
    applyArch(Base, activeArch());

  outs() << "\nPGO A/B: LLVM Dev 0 with a " << SharedLimit.getValue()
         << "-byte shared-memory budget (docs/pgo.md)\n";
  outs() << "---------------------------------------------------------\n";
  outs() << formatBuf("  %-10s %14s %14s %10s %8s\n", "workload",
                      "no-PGO cycles", "PGO cycles", "delta", "speedup");

  // One compile service for both batches; the cache persists across them
  // (and across processes when -pgo-cache-dir is set).
  CompileService::Options SO;
  SO.Workers = (unsigned)(int64_t)Jobs;
  SO.Cache.Dir = CacheDir.getValue();
  CompileService Svc(SO);

  // Batch 1: per workload, arm A plus two profile-gen runs. The gen runs
  // get distinct salts so they occupy distinct cache entries — otherwise a
  // cache hit would trivially satisfy the profile-determinism check below.
  std::vector<const NamedFactory *> Active;
  for (const NamedFactory &Factory : Factories)
    if (OnlyWorkload.getValue().empty() ||
        OnlyWorkload.getValue() == Factory.Name)
      Active.push_back(&Factory);

  PipelineOptions NoPGO = Base;
  NoPGO.Name += " (no PGO)";
  PipelineOptions Gen = Base;
  Gen.Name += " (profile-gen)";
  Gen.Profile = PipelineOptions::ProfileMode::Gen;

  std::vector<CompileRequest> Batch1;
  for (const NamedFactory *Factory : Active) {
    Batch1.push_back(makeArmRequest(*Factory, NoPGO, false, 0));
    Batch1.push_back(makeArmRequest(*Factory, Gen, true, 1));
    Batch1.push_back(makeArmRequest(*Factory, Gen, true, 2));
  }
  std::vector<CompileOutcome> Out1 = Svc.compileBatch(Batch1);
  BatchStats BS1 = Svc.lastBatchStats();
  if (anyRequestFailed("batch 1 (no-PGO + profile-gen)", Out1))
    return 1;

  // Digest batch 1: profile determinism, parse/re-serialize round trip,
  // profile persistence. Workloads that survive feed arm B; the profiles
  // must outlive batch 2 (arm B's pipeline fingerprint hashes their
  // content, and openmp-opt reads them during the compile).
  struct WorkloadPlan {
    const NamedFactory *Factory = nullptr;
    uint64_t CyclesA = 0;
    bool Deterministic = false;
    bool RoundTrip = false;
  };
  std::map<std::string, ExecutionProfile> Profiles;
  std::vector<WorkloadPlan> Plans;
  unsigned Failures = 0, Improved = 0;
  unsigned Ran = (unsigned)Active.size();
  for (size_t I = 0; I < Active.size(); ++I) {
    const NamedFactory &Factory = *Active[I];
    ArmResult A = ArmResult::fromOutcome(Out1[3 * I]);
    ArmResult G1 = ArmResult::fromOutcome(Out1[3 * I + 1]);
    ArmResult G2 = ArmResult::fromOutcome(Out1[3 * I + 2]);
    if (!A.OK) {
      errs() << "pgo: " << Factory.Name
             << ": no-PGO arm failed: " << (A.Message.empty() ? "wrong outputs"
                                                              : A.Message)
             << "\n";
      ++Failures;
      continue;
    }
    if (!G1.OK || !G2.OK) {
      errs() << "pgo: " << Factory.Name << ": profile-gen arm failed\n";
      ++Failures;
      continue;
    }
    bool Deterministic = G1.ProfileText == G2.ProfileText;
    if (!Deterministic) {
      errs() << "pgo: " << Factory.Name
             << ": profiles of two identical runs differ\n";
      ++Failures;
    }
    Expected<ExecutionProfile> Parsed = parseProfile(G1.ProfileText);
    if (!Parsed || Parsed->empty()) {
      errs() << "pgo: " << Factory.Name << ": collected profile is "
             << (Parsed ? "empty" : ("unparsable: " + Parsed.message()))
             << "\n";
      ++Failures;
      continue;
    }
    bool RoundTrip = serializeProfile(*Parsed) == G1.ProfileText;
    if (!RoundTrip) {
      errs() << "pgo: " << Factory.Name << ": profile round trip failed\n";
      ++Failures;
      continue;
    }

    if (!ProfileDir.getValue().empty()) {
      std::string Path = ProfileDir.getValue() + "/" +
                         std::string(Factory.Name) + ".profile.json";
      if (Error E = writeProfileFile(Path, *Parsed))
        errs() << "pgo: " << Path << ": " << E.message() << "\n";
    }

    Profiles.emplace(Factory.Name, std::move(*Parsed));
    WorkloadPlan Plan;
    Plan.Factory = &Factory;
    Plan.CyclesA = A.Cycles;
    Plan.Deterministic = Deterministic;
    Plan.RoundTrip = RoundTrip;
    Plans.push_back(Plan);
  }

  // Batch 2: arm B — recompile with each workload's profile feeding
  // OpenMPOpt.
  std::vector<CompileRequest> Batch2;
  for (const WorkloadPlan &Plan : Plans) {
    PipelineOptions UsePGO = Base;
    UsePGO.Name += " (PGO)";
    UsePGO.Profile = PipelineOptions::ProfileMode::Use;
    UsePGO.OptConfig.Profile = &Profiles.at(Plan.Factory->Name);
    Batch2.push_back(makeArmRequest(*Plan.Factory, UsePGO, false, 0));
  }
  std::vector<CompileOutcome> Out2 = Svc.compileBatch(Batch2);
  BatchStats BS2 = Svc.lastBatchStats();
  if (anyRequestFailed("batch 2 (PGO)", Out2))
    return 1;

  for (size_t I = 0; I < Plans.size(); ++I) {
    const NamedFactory &Factory = *Plans[I].Factory;
    bool Deterministic = Plans[I].Deterministic;
    bool RoundTrip = Plans[I].RoundTrip;
    ArmResult B = ArmResult::fromOutcome(Out2[I]);
    if (!B.OK) {
      errs() << "pgo: " << Factory.Name << ": PGO arm failed: "
             << (B.Message.empty() ? "wrong outputs" : B.Message) << "\n";
      ++Failures;
      continue;
    }

    uint64_t CyclesA = Plans[I].CyclesA, CyclesB = B.Cycles;
    int64_t Delta = (int64_t)CyclesA - (int64_t)CyclesB;
    if (Delta > 0)
      ++Improved;
    outs() << formatBuf("  %-10s %14llu %14llu %+10lld %7.3fx\n",
                        Factory.Name, (unsigned long long)CyclesA,
                        (unsigned long long)CyclesB, (long long)Delta,
                        CyclesB ? (double)CyclesA / (double)CyclesB : 0.0);

    json::Value Row = json::Value::makeObject();
    Row.set("workload", Factory.Name)
        .set("config", "pgo-ab")
        .set("shared_memory_limit", (int64_t)SharedLimit.getValue())
        .set("sim_cycles_no_pgo", CyclesA)
        .set("sim_cycles_pgo", CyclesB)
        .set("cycles_delta", Delta)
        .set("speedup",
             CyclesB ? (double)CyclesA / (double)CyclesB : 0.0)
        .set("profile_deterministic", Deterministic)
        .set("profile_round_trip", RoundTrip)
        .set("correct", true);
    recordBenchSummaryRow(std::move(Row));
  }

  if (Ran == 0) {
    errs() << "pgo: no workload matched -pgo-workload\n";
    return 2;
  }
  outs() << "  " << Improved << " workload(s) improved under PGO, "
         << Failures << " failure(s)\n";

  // Surface the compile-service counters next to the A/B rows
  // (docs/compile-service.md): CI plots cache effectiveness over time.
  CompileCacheStats CS = Svc.cache().stats();
  outs() << "  compile service: " << (Batch1.size() + Batch2.size())
         << " jobs, " << CS.Hits << " cache hit" << (CS.Hits == 1 ? "" : "s")
         << ", " << CS.Misses << " miss" << (CS.Misses == 1 ? "" : "es")
         << "\n";
  outs().flush();

  json::Value SvcRow = json::Value::makeObject();
  SvcRow.set("workload", "(all)")
      .set("config", "compile-service")
      .set("jobs", (unsigned)(Batch1.size() + Batch2.size()))
      .set("workers", Svc.lastBatchStats().Workers)
      .set("cache_hits", CS.Hits)
      .set("cache_misses", CS.Misses)
      .set("cache_stores", CS.Stores)
      .set("cache_evictions", CS.Evictions)
      .set("cache_corrupt_entries", CS.CorruptEntries)
      .set("cache_disk_errors", CS.DiskErrors)
      .set("cache_disk_bypassed_ops", CS.DiskBypassedOps)
      .set("retries", BS1.Retries + BS2.Retries)
      .set("degraded", BS1.Degraded + BS2.Degraded)
      .set("quarantined", BS1.Quarantined + BS2.Quarantined)
      .set("faults_injected", BS1.FaultsInjected + BS2.FaultsInjected);
  recordBenchSummaryRow(std::move(SvcRow));

  bool WroteSummary = writeBenchSummary("pgo");
  if (Failures || !WroteSummary)
    return 1;
  if (RequireImprovement && Improved == 0) {
    errs() << "pgo: -pgo-require-improvement set but no workload improved\n";
    return 1;
  }
  return 0;
}
