//===- bench/BenchFlags.h - Shared driver command-line flags ----*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line flags every bench/ driver shares: -march and the
/// report-artifact destinations (-compile-report, -bench-summary,
/// -mapping-report). Registered exactly once, in one library
/// (ompgpu_benchflags) that does NOT depend on google-benchmark, so plain
/// drivers (bench/fuzz, bench/autotune) and google-benchmark drivers
/// (everything linking ompgpu_benchsupport) share one flag spelling, one
/// default, and one exit-code convention (a bad -march value is a usage
/// error: exit 2).
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_BENCH_BENCHFLAGS_H
#define OMPGPU_BENCH_BENCHFLAGS_H

#include "gpusim/DeviceGroup.h"

#include <string>

namespace ompgpu {
namespace bench {

/// \name Shared -march flag (docs/architectures.md)
/// Every bench binary accepts -march=<name|path.json> selecting the
/// simulated architecture. Drivers call initActiveArch() right after flag
/// parsing and exit 2 when it returns false (a bad -march value is a usage
/// error); pipelines are then retargeted via applyArch unless the flag is
/// at its "v100" default, which preserves the historical preset behavior
/// (unlimited SharedMemoryLimit) bit for bit.
/// @{
/// Resolves and caches the -march value. Prints the failure and returns
/// false on an unknown name or a bad JSON spec.
bool initActiveArch();
/// The architecture selected by -march (the registry "v100" until
/// initActiveArch succeeds).
const ArchSpec &activeArch();
/// True when -march is at its "v100" default.
bool archFlagIsDefault();
/// @}

/// \name Shared report-artifact destinations
/// Empty string when the flag is unset.
/// @{
/// -compile-report=<path>: JSON array of per-configuration compile
/// reports (docs/compile-report.md).
const std::string &compileReportFlagPath();
/// -bench-summary=<path>: the schema-versioned bench-summary document.
const std::string &benchSummaryFlagPath();
/// -mapping-report=<path>: the data-mapping inference report
/// (docs/data-mapping.md); consumed by bench/lint, uploaded by CI.
const std::string &mappingReportFlagPath();
/// @}

/// \name Shared multi-device flags (docs/multi-device.md)
/// -devices=N and -group-spec=<path.json> select the simulated device
/// group of multi-device drivers (bench/cg). Both are usage-validated: a
/// zero, negative, or implausibly large count and an unreadable or
/// invalid spec file are usage errors (exit 2), with the offending flag
/// named in the message.
/// @{
/// Validates a -devices count: an unset flag (\p WasSet false) yields 1;
/// explicit values must be in [1, MaxGroupDevices].
Expected<unsigned> parseDeviceCountFlag(const std::string &Flag,
                                        int64_t Value, bool WasSet);
/// Builds the effective device group: the -group-spec file when set
/// (mutually exclusive with an explicit -devices — the spec names the
/// group's devices), otherwise -devices homogeneous copies of the active
/// -march architecture. Call after initActiveArch().
Expected<DeviceGroupSpec> resolveGroupSpecFlag();
/// True when -group-spec was given.
bool groupSpecFlagIsSet();
/// @}

} // namespace bench
} // namespace ompgpu

#endif // OMPGPU_BENCH_BENCHFLAGS_H
