//===- bench/BenchFlags.h - Shared driver command-line flags ----*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line flags every bench/ driver shares: -march and the
/// report-artifact destinations (-compile-report, -bench-summary,
/// -mapping-report). Registered exactly once, in one library
/// (ompgpu_benchflags) that does NOT depend on google-benchmark, so plain
/// drivers (bench/fuzz, bench/autotune) and google-benchmark drivers
/// (everything linking ompgpu_benchsupport) share one flag spelling, one
/// default, and one exit-code convention (a bad -march value is a usage
/// error: exit 2).
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_BENCH_BENCHFLAGS_H
#define OMPGPU_BENCH_BENCHFLAGS_H

#include "gpusim/ArchSpec.h"

#include <string>

namespace ompgpu {
namespace bench {

/// \name Shared -march flag (docs/architectures.md)
/// Every bench binary accepts -march=<name|path.json> selecting the
/// simulated architecture. Drivers call initActiveArch() right after flag
/// parsing and exit 2 when it returns false (a bad -march value is a usage
/// error); pipelines are then retargeted via applyArch unless the flag is
/// at its "v100" default, which preserves the historical preset behavior
/// (unlimited SharedMemoryLimit) bit for bit.
/// @{
/// Resolves and caches the -march value. Prints the failure and returns
/// false on an unknown name or a bad JSON spec.
bool initActiveArch();
/// The architecture selected by -march (the registry "v100" until
/// initActiveArch succeeds).
const ArchSpec &activeArch();
/// True when -march is at its "v100" default.
bool archFlagIsDefault();
/// @}

/// \name Shared report-artifact destinations
/// Empty string when the flag is unset.
/// @{
/// -compile-report=<path>: JSON array of per-configuration compile
/// reports (docs/compile-report.md).
const std::string &compileReportFlagPath();
/// -bench-summary=<path>: the schema-versioned bench-summary document.
const std::string &benchSummaryFlagPath();
/// -mapping-report=<path>: the data-mapping inference report
/// (docs/data-mapping.md); consumed by bench/lint, uploaded by CI.
const std::string &mappingReportFlagPath();
/// @}

} // namespace bench
} // namespace ompgpu

#endif // OMPGPU_BENCH_BENCHFLAGS_H
