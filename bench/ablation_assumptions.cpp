//===- bench/ablation_assumptions.cpp - Sec. IV-D assumptions --------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the performance impact of the OpenMP 5.1 `ext_spmd_amenable`
/// assumption (Sec. IV-D): an opaque external call in the sequential
/// region blocks SPMDzation; asserting the assumption unlocks it.
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "gpusim/SimThread.h"
#include "rtl/DeviceRTL.h"
#include "support/raw_ostream.h"

#include <benchmark/benchmark.h>
#include <cstring>

using namespace ompgpu;
using namespace ompgpu::bench;

namespace {

struct Measurement {
  unsigned SPMDzed;
  double Ms;
};

Measurement runOnce(bool WithAssumption) {
  IRContext Ctx;
  Module M(Ctx, "assume");
  OMPCodeGen CG(M, {CodeGenScheme::Simplified13, false});
  Type *F64 = Ctx.getDoubleTy();

  // filter() lives in another translation unit: a pure declaration the
  // analysis cannot inspect. The simulator executes it through a native
  // handler below, standing in for separately compiled device code.
  Function *Filter = M.getOrInsertFunction(
      "filter", Ctx.getFunctionTy(F64, {F64}));
  if (WithAssumption)
    Filter->addAssumption("ext_spmd_amenable");

  TargetRegionBuilder TRB(CG, "assume_kernel",
                          {Ctx.getPtrTy(), Ctx.getInt32Ty()},
                          ExecMode::Generic, 8, 64);
  Argument *Out = TRB.getParam(0);
  TRB.emitDistributeLoop(TRB.getParam(1), [&](IRBuilder &B, Value *I) {
    Value *V = B.createCall(Filter, {B.createSIToFP(I, F64)});
    std::vector<TargetRegionBuilder::Capture> Caps = {
        {Out, false, "out"}, {I, false, "i"}, {V, false, "v"}};
    TRB.emitParallelFor(
        B.getInt32(16), Caps,
        [&](IRBuilder &LB, Value *J,
            const TargetRegionBuilder::CaptureMap &Map) {
          Value *Idx = LB.createAdd(
              LB.createMul(Map.at(I), LB.getInt32(16)), J);
          LB.createStore(Map.at(V), LB.createGEP(F64, Map.at(Out), {Idx}));
        });
  });
  Function *K = TRB.finalize();

  PipelineOptions P = makeDevPipeline();
  CompileResult CR = optimizeDeviceModule(M, P);

  GPUDevice Dev;
  const int Iter = 64;
  uint64_t DOut = Dev.allocate((uint64_t)Iter * 16 * 8);
  LaunchConfig LC;
  LC.GridDim = 8;
  LC.BlockDim = 64;
  NativeRuntimeBinding RTL =
      makeOpenMPRuntimeBinding(P.Flavor, Dev.getMachine());
  RTL.Handlers["filter"] = [](SimThread &, const std::vector<uint64_t>
                                                &Args) {
    double X;
    std::memcpy(&X, &Args[0], sizeof(double));
    double R = X * 0.5;
    uint64_t Bits;
    std::memcpy(&Bits, &R, sizeof(double));
    return NativeResult::value(Bits, 8);
  };
  KernelStats S = Dev.launchKernel(M, K, LC, {DOut, (uint64_t)Iter}, RTL);
  return {CR.Stats.SPMDzedKernels, S.Milliseconds};
}

void printTable() {
  Measurement Without = runOnce(false);
  Measurement With = runOnce(true);
  auto Record = [](const char *Config, const Measurement &M) {
    json::Value Row = json::Value::makeObject();
    Row.set("workload", "assume_kernel")
        .set("config", Config)
        .set("spmdzed_kernels", M.SPMDzed)
        .set("sim_kernel_ms", M.Ms);
    recordBenchSummaryRow(std::move(Row));
  };
  Record("opaque external call", Without);
  Record("with ext_spmd_amenable", With);
  outs() << "\nAblation: ext_spmd_amenable assumption (Sec. IV-D)\n";
  outs() << "---------------------------------------------------\n";
  outs() << formatBuf("  %-28s %10s %10s\n", "configuration", "SPMDzed",
                      "ms");
  outs() << formatBuf("  %-28s %10u %10.4f\n", "opaque external call",
                      Without.SPMDzed, Without.Ms);
  outs() << formatBuf("  %-28s %10u %10.4f\n", "with ext_spmd_amenable",
                      With.SPMDzed, With.Ms);
  outs() << formatBuf("  speedup from the assumption: %.2fx\n",
                      Without.Ms / With.Ms);
  outs().flush();
}

void BM_Assumptions(benchmark::State &State) {
  for (auto _ : State) {
    (void)_;
    Measurement R = runOnce(State.range(0) != 0);
    State.counters["sim_ms"] = R.Ms;
    State.counters["spmdzed"] = R.SPMDzed;
  }
}

} // namespace

int main(int Argc, char **Argv) {
  benchmark::RegisterBenchmark("ablation/assumptions", BM_Assumptions)
      ->Arg(0)
      ->Arg(1)
      ->Iterations(1);
  return runBenchmarkMain(Argc, Argv, printTable);
}
