//===- bench/fig11c_su3bench.cpp - Fig. 11c: SU3Bench relative perf --------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 11c: SU3Bench (version 0, CPU-style) relative to
/// LLVM 12. Paper shape: simplified codegen alone regresses (~0.57x), the
/// custom state machine recovers it, SPMDzation reaches ~10.8x, and the
/// CUDA watermark is ~33x.
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

using namespace ompgpu;
using namespace ompgpu::bench;

static std::vector<ConfigSpec> configs() {
  return {configLLVM12(), configDevNoOpt(), configH2S2RTCCSM(),
          configDevFull(), configCUDA()};
}

int main(int Argc, char **Argv) {
  registerConfigBenchmarks("fig11c/SU3Bench", createSU3Bench, configs());
  return runBenchmarkMain(Argc, Argv, [] {
    std::vector<WorkloadRunResult> Results;
    for (const ConfigSpec &Spec : configs())
      Results.push_back(measure(createSU3Bench, Spec));
    printRelativeSeries(
        "Fig. 11c: SU3Bench (bench_f32_openmp v0) relative to LLVM 12",
        Results);
  });
}
