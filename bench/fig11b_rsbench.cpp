//===- bench/fig11b_rsbench.cpp - Fig. 11b: RSBench relative perf ----------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 11b: RSBench kernel performance relative to LLVM 12.
/// Paper shape: the no-optimization configuration runs out of memory
/// (globalization heap demand); heap-to-stack recovers a ~13x speedup,
/// reaching ~97-98% of the CUDA watermark.
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

using namespace ompgpu;
using namespace ompgpu::bench;

static std::vector<ConfigSpec> configs() {
  return {configLLVM12(), configDevNoOpt(), configH2S(), configH2S2RTC(),
          configCUDA()};
}

int main(int Argc, char **Argv) {
  registerConfigBenchmarks("fig11b/RSBench", createRSBench, configs());
  return runBenchmarkMain(Argc, Argv, [] {
    std::vector<WorkloadRunResult> Results;
    for (const ConfigSpec &Spec : configs())
      Results.push_back(measure(createRSBench, Spec));
    printRelativeSeries(
        "Fig. 11b: RSBench (-s large -m event) relative to LLVM 12",
        Results);
  });
}
