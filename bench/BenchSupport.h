//===- bench/BenchSupport.h - Shared benchmark utilities --------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared infrastructure of the bench/ binaries: the compiler
/// configurations evaluated in Sec. V, a measurement helper, and
/// paper-style table printing. Every bench binary regenerates one table or
/// figure of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_BENCH_BENCHSUPPORT_H
#define OMPGPU_BENCH_BENCHSUPPORT_H

#include "BenchFlags.h"
#include "support/JSON.h"
#include "workloads/Harness.h"

#include <functional>
#include <string>
#include <vector>

namespace ompgpu {
namespace bench {

/// Version of the shared bench-summary JSON schema emitted by every bench
/// binary via -bench-summary=<path> (docs/compile-report.md). Bump on any
/// field rename/removal; additions are backwards compatible.
inline constexpr unsigned BenchSummarySchemaVersion = 1;

/// One measured configuration of Fig. 11.
struct ConfigSpec {
  std::string Label;
  PipelineOptions Pipeline;
  bool UseCUDA = false;
};

/// The evaluation's configuration ladder, honoring the artifact's
/// -openmp-opt-disable-* flags parsed from the command line. The
/// underlying table is driver/Presets' evaluationPresetLadder().
ConfigSpec configLLVM12();
ConfigSpec configDevNoOpt();
ConfigSpec configH2S();
ConfigSpec configH2S2();
ConfigSpec configH2S2RTC();
ConfigSpec configH2S2RTCCSM();
ConfigSpec configDevFull(); ///< h2s2 + RTC + SPMDzation (LLVM Dev 0)
ConfigSpec configCUDA();

/// All ladder configurations in evaluation order (bench/lint iterates the
/// whole ladder).
std::vector<ConfigSpec> evaluationConfigs();

/// Runs \p Factory's workload under \p Spec with sampled blocks (timing
/// runs; outputs unchecked). When the shared -time-passes /
/// -compile-report flags are set the compile runs instrumented: the
/// timing table prints after the run, and the compile-report of every
/// measured configuration is collected for writeCollectedCompileReports.
WorkloadRunResult
measure(const std::function<std::unique_ptr<Workload>(ProblemSize)> &Factory,
        const ConfigSpec &Spec, unsigned SampleBlocks = 4);

/// Writes the JSON array of compile-reports collected by measure() to the
/// -compile-report=<path> destination. No-op (returning true) when the
/// flag is unset or nothing was measured; runBenchmarkMain calls this on
/// exit and turns a false return into a non-zero exit code.
bool writeCollectedCompileReports();

/// \name Shared bench-summary artifact (-bench-summary=<path>)
/// All bench binaries emit machine-readable results through one
/// schema-versioned document: {schema_version, generator, tool, rows:[...]}.
/// measure() records a standard row per measurement automatically; drivers
/// with custom result shapes (fig09, ablations, bench/pgo) append their own
/// rows. runBenchmarkMain writes the document on exit; standalone drivers
/// call writeBenchSummary directly.
/// @{
/// Builds the standard row for one measured run (workload, config,
/// simulated kernel time, resource usage, correctness verdicts).
json::Value benchSummaryRow(const WorkloadRunResult &R);
/// Appends \p Row to the summary under construction.
void recordBenchSummaryRow(json::Value Row);
/// Writes the summary to the -bench-summary destination. No-op (returning
/// true) when the flag is unset or no rows were recorded.
bool writeBenchSummary(const std::string &Tool);
/// @}

/// Prints a Fig. 11-style relative-performance series: one row per
/// configuration with kernel ms and speedup over the first (baseline) row.
/// OOM rows print "OoM" like the paper.
void printRelativeSeries(const std::string &Title,
                         const std::vector<WorkloadRunResult> &Results);

/// Registers one google-benchmark case per configuration; each iteration
/// recompiles and relaunches the workload and reports the simulated kernel
/// time, registers, and shared memory as counters.
void registerConfigBenchmarks(
    const std::string &BenchName,
    const std::function<std::unique_ptr<Workload>(ProblemSize)> &Factory,
    const std::vector<ConfigSpec> &Configs, unsigned SampleBlocks = 4);

/// Prints the paper-style table, then runs the registered benchmarks.
int runBenchmarkMain(int Argc, char **Argv,
                     const std::function<void()> &PrintPaperTable);

} // namespace bench
} // namespace ompgpu

#endif // OMPGPU_BENCH_BENCHSUPPORT_H
