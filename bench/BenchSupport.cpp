//===- bench/BenchSupport.cpp - Shared benchmark utilities -----------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "driver/CompileReport.h"
#include "driver/Presets.h"
#include "support/CommandLine.h"
#include "support/raw_ostream.h"

#include <benchmark/benchmark.h>

#include <cassert>

using namespace ompgpu;
using namespace ompgpu::bench;

// The artifact's experiment-customization flags (Appendix E).
static cl::opt<bool>
    DisableSPMDization("openmp-opt-disable-spmdization",
                       "Disable the SPMDzation optimization", false);
static cl::opt<bool>
    DisableDeglobalization("openmp-opt-disable-deglobalization",
                           "Disable HeapToStack/HeapToShared", false);
static cl::opt<bool> DisableStateMachineRewrite(
    "openmp-opt-disable-state-machine-rewrite",
    "Disable the custom state machine rewrite", false);
static cl::opt<bool>
    DisableFolding("openmp-opt-disable-folding",
                   "Disable OpenMP runtime call folding", false);

// Observability flags shared by all bench binaries (docs/compile-report.md).
static cl::opt<bool> TimePasses(
    "time-passes",
    "Print a per-pass wall-clock timing table after each measurement",
    false);
static cl::opt<bool> RecoverPasses(
    "recover-passes",
    "Roll back and quarantine passes that corrupt the module instead of "
    "failing the compile (docs/compile-report.md, recovery section)",
    false);
static cl::opt<int64_t> OptBisectLimit(
    "opt-bisect-limit",
    "Run only the first N skippable pass executions (-1: no limit); "
    "use to localize a miscompiling pass execution", -1);
/// Compile-reports of every measured configuration, in measurement order.
static json::Value &collectedReports() {
  static json::Value Reports = json::Value::makeArray();
  return Reports;
}

/// Bench-summary rows recorded so far, in measurement order.
static json::Value &summaryRows() {
  static json::Value Rows = json::Value::makeArray();
  return Rows;
}

static void applyArtifactFlags(PipelineOptions &P) {
  if (DisableSPMDization)
    P.OptConfig.DisableSPMDization = true;
  if (DisableDeglobalization)
    P.OptConfig.DisableDeglobalization = true;
  if (DisableStateMachineRewrite)
    P.OptConfig.DisableStateMachineRewrite = true;
  if (DisableFolding)
    P.OptConfig.DisableFolding = true;
}

/// Pulls one configuration out of the canonical ladder (driver/Presets) by
/// its position, applying the artifact's -openmp-opt-disable-* flags to
/// configurations that run openmp-opt.
static ConfigSpec ladderConfig(size_t Index) {
  std::vector<PresetSpec> Ladder = evaluationPresetLadder();
  assert(Index < Ladder.size() && "preset ladder index out of range");
  PresetSpec &P = Ladder[Index];
  ConfigSpec S{P.Label, std::move(P.Pipeline), P.UseCUDA};
  if (S.Pipeline.RunOpenMPOpt)
    applyArtifactFlags(S.Pipeline);
  return S;
}

namespace ompgpu {
namespace bench {

ConfigSpec configLLVM12() { return ladderConfig(0); }
ConfigSpec configDevNoOpt() { return ladderConfig(1); }
ConfigSpec configH2S() { return ladderConfig(2); }
ConfigSpec configH2S2() { return ladderConfig(3); }
ConfigSpec configH2S2RTC() { return ladderConfig(4); }
ConfigSpec configH2S2RTCCSM() { return ladderConfig(5); }
ConfigSpec configDevFull() { return ladderConfig(6); }
ConfigSpec configCUDA() { return ladderConfig(7); }

std::vector<ConfigSpec> evaluationConfigs() {
  std::vector<ConfigSpec> Configs;
  for (size_t I = 0, E = evaluationPresetLadder().size(); I != E; ++I)
    Configs.push_back(ladderConfig(I));
  return Configs;
}

WorkloadRunResult
measure(const std::function<std::unique_ptr<Workload>(ProblemSize)> &Factory,
        const ConfigSpec &Spec, unsigned SampleBlocks) {
  std::unique_ptr<Workload> W = Factory(ProblemSize::Large);
  HarnessOptions HO;
  HO.MaxSimulatedBlocks = SampleBlocks;
  HO.UseCUDAKernel = Spec.UseCUDA;

  bool WantReport = !compileReportFlagPath().empty();
  PipelineOptions P = Spec.Pipeline;
  // A non-default -march retargets the compile and the simulated device.
  // The "v100" default leaves the ladder presets untouched (unlimited
  // SharedMemoryLimit) so historical results stay bit-identical.
  if (!archFlagIsDefault())
    applyArch(P, activeArch());
  if (TimePasses || WantReport) {
    P.Instrument.TimePasses = true;
    P.Instrument.TrackChanges = true;
  }
  if (RecoverPasses)
    P.Instrument.Recover = true;
  if (OptBisectLimit.getValue() >= 0)
    P.Instrument.OptBisectLimit = OptBisectLimit.getValue();

  WorkloadRunResult R = runWorkload(*W, P, HO);

  if (TimePasses) {
    outs() << "\n[" << R.WorkloadName << " / " << Spec.Label << "]\n";
    PassInstrumentation::printTimingReport(outs(), R.Compile.Passes,
                                           R.Compile.FirstCorruptPass,
                                           R.Compile.VerifyError);
  }
  if (WantReport) {
    json::Value Report = buildCompileReport(P, R.Compile, {R.Stats});
    Report.set("workload", R.WorkloadName).set("config", Spec.Label);
    collectedReports().push_back(std::move(Report));
  }
  recordBenchSummaryRow(benchSummaryRow(R));
  return R;
}

json::Value benchSummaryRow(const WorkloadRunResult &R) {
  json::Value Row = json::Value::makeObject();
  Row.set("workload", R.WorkloadName)
      .set("config", R.ConfigName)
      .set("arch", activeArch().Name)
      .set("sim_kernel_ms", R.Stats.Milliseconds)
      .set("sim_cycles", R.Stats.Cycles)
      .set("regs_per_thread", R.Stats.RegsPerThread)
      .set("static_shared_bytes", R.Stats.StaticSharedBytes)
      .set("dynamic_shared_bytes", R.Stats.DynamicSharedBytes)
      .set("blocks_per_sm", R.Stats.BlocksPerSM)
      .set("out_of_memory", R.Stats.OutOfMemory)
      .set("trap", R.Stats.Trap)
      .set("checked", R.Checked)
      .set("correct", R.Correct);
  return Row;
}

void recordBenchSummaryRow(json::Value Row) {
  summaryRows().push_back(std::move(Row));
}

bool writeBenchSummary(const std::string &Tool) {
  if (benchSummaryFlagPath().empty() || summaryRows().empty())
    return true;
  json::Value Doc = json::Value::makeObject();
  Doc.set("schema_version", BenchSummarySchemaVersion)
      .set("generator", "ompgpu")
      .set("tool", Tool)
      .set("rows", summaryRows());
  if (Error E = writeCompileReportFile(benchSummaryFlagPath(), Doc)) {
    errs() << "bench-summary: " << E.message() << '\n';
    return false;
  }
  outs() << "wrote bench-summary (" << summaryRows().size() << " row(s)) to "
         << benchSummaryFlagPath() << '\n';
  return true;
}

bool writeCollectedCompileReports() {
  if (compileReportFlagPath().empty() || collectedReports().empty())
    return true;
  if (Error E = writeCompileReportFile(compileReportFlagPath(),
                                       collectedReports())) {
    errs() << "compile-report: " << E.message() << '\n';
    return false;
  }
  outs() << "wrote " << collectedReports().size()
         << " compile-report(s) to " << compileReportFlagPath() << '\n';
  return true;
}

void printRelativeSeries(const std::string &Title,
                         const std::vector<WorkloadRunResult> &Results) {
  outs() << '\n' << Title << '\n';
  outs() << std::string(Title.size(), '-') << '\n';
  outs() << formatBuf("  %-44s %12s %12s\n", "configuration", "kernel ms",
                      "vs LLVM 12");
  double Base = 0.0;
  for (const WorkloadRunResult &R : Results) {
    if (Base == 0.0 && R.Stats.ok() && !R.Stats.OutOfMemory)
      Base = R.Stats.Milliseconds;
    if (!R.Stats.ok()) {
      outs() << formatBuf("  %-44s %12s %12s\n", R.ConfigName.c_str(),
                          "error", "-");
      continue;
    }
    if (R.Stats.OutOfMemory) {
      outs() << formatBuf("  %-44s %12s %12s\n", R.ConfigName.c_str(),
                          "OoM", "OoM");
      continue;
    }
    double Rel = Base > 0 ? Base / R.Stats.Milliseconds : 0.0;
    outs() << formatBuf("  %-44s %12.3f %11.2fx\n", R.ConfigName.c_str(),
                        R.Stats.Milliseconds, Rel);
  }
  outs().flush();
}

void registerConfigBenchmarks(
    const std::string &BenchName,
    const std::function<std::unique_ptr<Workload>(ProblemSize)> &Factory,
    const std::vector<ConfigSpec> &Configs, unsigned SampleBlocks) {
  for (const ConfigSpec &Spec : Configs) {
    std::string Name = BenchName + "/" + Spec.Label;
    benchmark::RegisterBenchmark(
        Name.c_str(),
        [Factory, Spec, SampleBlocks](benchmark::State &State) {
          WorkloadRunResult R;
          for (auto _ : State) {
            (void)_;
            R = measure(Factory, Spec, SampleBlocks);
          }
          State.counters["sim_kernel_ms"] = R.Stats.Milliseconds;
          State.counters["regs_per_thread"] = R.Stats.RegsPerThread;
          State.counters["smem_bytes"] =
              (double)(R.Stats.StaticSharedBytes +
                       R.Stats.DynamicSharedBytes);
          State.counters["oom"] = R.Stats.OutOfMemory ? 1 : 0;
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

int runBenchmarkMain(int Argc, char **Argv,
                     const std::function<void()> &PrintPaperTable) {
  // Malformed flag values are user input, not program bugs: report them
  // and exit non-zero instead of aborting.
  Expected<std::vector<std::string>> Parsed =
      cl::parseCommandLineArgs(Argc, Argv);
  if (!Parsed) {
    errs() << "error: " << Parsed.message() << '\n'
           << "run with -help-ompgpu for the list of options\n";
    return 1;
  }
  if (!initActiveArch())
    return 2; // usage error, like a malformed flag value
  std::vector<std::string> Rest = std::move(*Parsed);
  std::vector<char *> RestArgv;
  for (std::string &S : Rest)
    RestArgv.push_back(S.data());
  int RestArgc = (int)RestArgv.size();

  PrintPaperTable();

  benchmark::Initialize(&RestArgc, RestArgv.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::string Tool = Argc > 0 ? Argv[0] : "bench";
  size_t Slash = Tool.find_last_of('/');
  if (Slash != std::string::npos)
    Tool = Tool.substr(Slash + 1);
  bool OK = writeCollectedCompileReports();
  OK &= writeBenchSummary(Tool);
  return OK ? 0 : 1;
}

} // namespace bench
} // namespace ompgpu
