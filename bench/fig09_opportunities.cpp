//===- bench/fig09_opportunities.cpp - Fig. 9: opportunity counts ----------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 9: how often each optimization triggered per benchmark
/// kernel, plus the number of remarks emitted. Paper values (our shapes
/// should match in structure; see EXPERIMENTS.md):
///
///           h2s/shared  CSM/SPMD  RTOpt EM/PL  Remarks
///   XSBench     3 / 0      n/a        5 / 1       3
///   RSBench     7 / 0      n/a        5 / 1       7
///   SU3Bench    4 / 0    (1) / 1      2 / 2       5
///   miniQMC     3 / 18   (1) / 1      3 / 2      22
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "support/raw_ostream.h"

#include <benchmark/benchmark.h>

using namespace ompgpu;
using namespace ompgpu::bench;

namespace {

struct Row {
  std::string Name;
  OpenMPOptStats Stats;
  size_t Remarks;
};

Row analyze(const std::string &Name,
            const std::function<std::unique_ptr<Workload>(ProblemSize)>
                &Factory) {
  ConfigSpec Spec = configDevFull();
  std::unique_ptr<Workload> W = Factory(ProblemSize::Small);
  HarnessOptions HO;
  HO.MaxSimulatedBlocks = 1; // compile-focused: one block suffices
  WorkloadRunResult R = runWorkload(*W, Spec.Pipeline, HO);
  json::Value SummaryRow = benchSummaryRow(R);
  SummaryRow.set("heap_to_stack", R.Compile.Stats.HeapToStack)
      .set("heap_to_shared", R.Compile.Stats.HeapToShared)
      .set("spmdzed_kernels", R.Compile.Stats.SPMDzedKernels)
      .set("custom_state_machines", R.Compile.Stats.CustomStateMachines)
      .set("remarks", (uint64_t)R.Compile.Remarks.size());
  recordBenchSummaryRow(std::move(SummaryRow));
  return {Name, R.Compile.Stats, R.Compile.Remarks.size()};
}

void printTable() {
  outs() << "\nFig. 9: optimization opportunities and remarks (LLVM Dev)\n";
  outs() << "----------------------------------------------------------\n";
  outs() << formatBuf("  %-10s %16s %14s %14s %9s\n", "kernel",
                      "h2s / h2shared", "CSM / SPMD", "RTOpt EM/PL",
                      "remarks");
  struct Case {
    const char *Name;
    std::unique_ptr<Workload> (*Factory)(ProblemSize);
  } Cases[] = {{"XSBench", createXSBench},
               {"RSBench", createRSBench},
               {"SU3Bench", createSU3Bench},
               {"miniQMC", createMiniQMC}};
  for (const Case &C : Cases) {
    Row R = analyze(C.Name, C.Factory);
    // The paper writes "(1)" when SPMDzation made the custom state
    // machine obsolete for a kernel that would otherwise have one.
    std::string CSM =
        (R.Stats.CustomStateMachines == 0 && R.Stats.SPMDzedKernels > 0)
            ? "(" + std::to_string(R.Stats.SPMDzedKernels) + ")"
            : std::to_string(R.Stats.CustomStateMachines);
    std::string SPMD = R.Stats.SPMDzedKernels == 0 &&
                               R.Stats.CustomStateMachines == 0
                           ? "n/a"
                           : std::to_string(R.Stats.SPMDzedKernels);
    outs() << formatBuf(
        "  %-10s %7u / %-8llu %6s / %-7s %6u / %-7u %9zu\n", R.Name.c_str(),
        R.Stats.HeapToStack, (unsigned long long)R.Stats.HeapToShared,
        CSM.c_str(), SPMD.c_str(), R.Stats.FoldedExecMode,
        R.Stats.FoldedParallelLevel, R.Remarks);
  }
  outs() << "  (launch-parameter folds are counted separately; see\n"
            "   EXPERIMENTS.md for the paper-vs-measured discussion)\n";
  outs().flush();
}

void BM_CompileDevPipeline(benchmark::State &State,
                           std::unique_ptr<Workload> (*Factory)(
                               ProblemSize)) {
  for (auto _ : State) {
    (void)_;
    Row R = analyze("x", Factory);
    benchmark::DoNotOptimize(R.Remarks);
  }
}

} // namespace

int main(int Argc, char **Argv) {
  benchmark::RegisterBenchmark("fig09/compile/XSBench",
                               BM_CompileDevPipeline, createXSBench);
  benchmark::RegisterBenchmark("fig09/compile/RSBench",
                               BM_CompileDevPipeline, createRSBench);
  benchmark::RegisterBenchmark("fig09/compile/SU3Bench",
                               BM_CompileDevPipeline, createSU3Bench);
  benchmark::RegisterBenchmark("fig09/compile/miniQMC",
                               BM_CompileDevPipeline, createMiniQMC);
  return runBenchmarkMain(Argc, Argv, printTable);
}
