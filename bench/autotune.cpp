//===- bench/autotune.cpp - Arch-aware preset autotuning driver ------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end of the preset autotuner (docs/architectures.md):
/// walks preset x architecture x SharedMemoryLimit over the Fig. 11 proxy
/// workloads through the compile service, prints the per-cell winners, and
/// persists the schema-versioned tuned.json. Deterministic end to end: the
/// same flags produce a byte-identical artifact at any -autotune-jobs
/// value, which is what lets CI diff nightly runs. Exit codes: 2 for bad
/// flag values, 1 for search failures, regressions under
/// -autotune-require-no-regression, or artifact write errors.
///
//===----------------------------------------------------------------------===//

#include "resilience/Resilience.h"
#include "service/Autotune.h"
#include "support/CommandLine.h"
#include "support/raw_ostream.h"

#include <sstream>

using namespace ompgpu;

static cl::opt<std::string> Archs(
    "autotune-archs",
    "Comma-separated architectures to tune for: registry names (v100, "
    "a100, mi100) and/or paths to ArchSpec *.json files (empty: every "
    "registry architecture)",
    "");
static cl::opt<std::string>
    OnlyWorkload("autotune-workload",
                 "Tune only the named workload (XSBench, RSBench, SU3Bench, "
                 "miniQMC)",
                 "");
static cl::opt<std::string> SharedLimits(
    "autotune-shared-limits",
    "Comma-separated HeapToShared budgets in bytes to walk; 0 stands for "
    "the architecture's default capacity (empty: 0,4096,256)",
    "");
static cl::opt<std::string>
    OutPath("autotune-out", "Where to write tuned.json", "tuned.json");
static cl::opt<int64_t> Seed("autotune-seed",
                             "Provenance seed recorded in tuned.json and "
                             "folded into the compile salt",
                             1);
static cl::opt<int64_t>
    Jobs("autotune-jobs",
         "Compile-service worker threads (0 = hardware concurrency, 1 = "
         "sequential)",
         0);
static cl::opt<std::string>
    CacheDir("autotune-cache-dir",
             "On-disk compile-cache directory shared across runs (empty: "
             "in-memory cache only)",
             "");
static cl::opt<bool> RequireNoRegression(
    "autotune-require-no-regression",
    "Exit non-zero when any tuned configuration simulates more cycles "
    "than the default preset (the nightly CI gate)",
    false);

static std::vector<std::string> splitList(const std::string &S) {
  std::vector<std::string> Out;
  std::stringstream SS(S);
  for (std::string Item; std::getline(SS, Item, ',');)
    if (!Item.empty())
      Out.push_back(Item);
  return Out;
}

int main(int argc, char **argv) {
  cl::parseCommandLine(argc, argv);

  AutotuneOptions O;
  for (const std::string &Name : splitList(Archs.getValue())) {
    Expected<ArchSpec> A = resolveArch(Name);
    if (!A) {
      errs() << "error: -autotune-archs: " << A.message() << "\n";
      return 2;
    }
    O.Archs.push_back(std::move(*A));
  }
  if (!OnlyWorkload.getValue().empty())
    O.Workloads.push_back(OnlyWorkload.getValue());
  for (const std::string &Limit : splitList(SharedLimits.getValue())) {
    char *End = nullptr;
    unsigned long long V = std::strtoull(Limit.c_str(), &End, 10);
    if (!End || *End != '\0') {
      errs() << "error: -autotune-shared-limits: '" << Limit
             << "' is not a byte count\n";
      return 2;
    }
    O.SharedLimits.push_back((uint64_t)V);
  }
  if ((int64_t)Seed < 0) {
    errs() << "error: -autotune-seed must be non-negative\n";
    return 2;
  }
  O.Seed = (uint64_t)(int64_t)Seed;
  Expected<unsigned> Workers = parseWorkerCountFlag(
      "autotune-jobs", (int64_t)Jobs, Jobs.occurred());
  if (!Workers) {
    errs() << Workers.message() << "\n";
    return 2;
  }
  if (Error E =
          validateCacheDirFlag("autotune-cache-dir", CacheDir.getValue())) {
    errs() << E.message() << "\n";
    return 2;
  }
  O.Service.Workers = *Workers;
  O.Service.Cache.Dir = CacheDir.getValue();

  AutotuneResult R = runAutotune(O);

  outs() << "\nAutotune: preset x arch x shared-memory grid "
         << "(docs/architectures.md)\n";
  outs() << "-----------------------------------------------------------\n";
  outs() << formatBuf("  %-10s %-7s %-42s %10s %14s %14s\n", "workload",
                      "arch", "preset", "smem", "cycles", "default");
  for (const AutotuneEntry &E : R.Entries)
    outs() << formatBuf("  %-10s %-7s %-42s %10llu %14llu %13llu%s\n",
                        E.Workload.c_str(), E.Arch.c_str(), E.Preset.c_str(),
                        (unsigned long long)E.SharedMemoryLimit,
                        (unsigned long long)E.Cycles,
                        (unsigned long long)E.DefaultCycles,
                        E.Improved ? "*" : " ");
  outs() << "  " << R.Entries.size() << " cell(s) tuned, " << R.Failures
         << " failure(s); * = beats the default preset (OMP231)\n";
  outs() << "  compile service: " << R.Batch.Jobs << " jobs, "
         << R.Batch.CacheHits << " cache hit"
         << (R.Batch.CacheHits == 1 ? "" : "s") << ", " << R.Batch.CacheMisses
         << " miss" << (R.Batch.CacheMisses == 1 ? "" : "es") << "\n";
  R.Remarks.print(outs());
  outs().flush();

  if (!OutPath.getValue().empty()) {
    if (Error E = writeTunedFile(OutPath.getValue(), R)) {
      errs() << "autotune: " << E.message() << "\n";
      return 1;
    }
    outs() << "wrote " << OutPath.getValue() << "\n";
    outs().flush();
  }

  if (R.Failures)
    return 1;
  if (RequireNoRegression) {
    for (const AutotuneEntry &E : R.Entries)
      if (E.DefaultCorrect && E.Cycles > E.DefaultCycles) {
        errs() << "autotune: " << E.Workload << " on " << E.Arch
               << " regressed: tuned " << E.Cycles << " > default "
               << E.DefaultCycles << " cycles\n";
        return 1;
      }
  }
  return 0;
}
