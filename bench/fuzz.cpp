//===- bench/fuzz.cpp - Differential fuzzing driver ------------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Campaign driver for the differential fuzzing subsystem (docs/fuzzing.md):
/// samples seeded recipes, judges each one across every pipeline preset with
/// the cross-preset oracle, and on a mismatch persists the recipe, reduces
/// the failing module, and attributes the failure to a pass execution via
/// opt-bisect. Exits nonzero when any case failed.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/Oracle.h"
#include "fuzz/Reduce.h"
#include "ir/AsmWriter.h"
#include "ir/IRContext.h"
#include "ir/Module.h"
#include "support/CommandLine.h"
#include "support/raw_ostream.h"

using namespace ompgpu;

static cl::opt<int64_t> Seed("fuzz-seed", "First seed of the campaign", 1);
static cl::opt<int64_t> Runs("fuzz-runs", "Number of consecutive seeds", 200);
static cl::opt<std::string>
    CorpusDir("fuzz-corpus-dir",
              "Directory for corpus.json plus failing recipes, modules, and "
              "reduced cases (empty: no persistence)",
              "");
static cl::opt<std::string>
    Replay("fuzz-replay",
           "Replay one recipe JSON file instead of running a campaign", "");
static cl::opt<int64_t>
    PrintSeed("fuzz-print-module",
              "Print the generated module for this seed and exit (0 = off)",
              0);
static cl::opt<std::string>
    PrintScheme("fuzz-print-scheme",
                "Scheme for -fuzz-print-module: simplified13 or legacy12",
                "simplified13");
static cl::opt<int64_t>
    MaxProbes("fuzz-max-probes", "Reduction probe budget per failing case",
              120);
static cl::opt<bool> NoReduce("fuzz-no-reduce",
                              "Skip reduction and attribution of failures",
                              false);

/// Emits the recipe's module under \p Scheme into a fresh context and
/// returns its textual IR.
static std::string generatedModuleText(const KernelRecipe &R,
                                       CodeGenScheme Scheme) {
  IRContext Ctx;
  Module M(Ctx, "fuzz");
  OMPCodeGen CG(M, CodeGenOptions{Scheme, /*CudaMode=*/false});
  generateKernel(CG, R);
  return moduleToString(M);
}

/// Reduces and bisects one failing case; writes artifacts when a corpus
/// directory was given.
static void reduceAndAttribute(const KernelRecipe &R,
                               const std::string &PresetName) {
  const std::vector<PipelineOptions> Presets = defaultFuzzPresets();
  const PipelineOptions *P = nullptr;
  for (const PipelineOptions &Candidate : Presets)
    if (Candidate.Name == PresetName)
      P = &Candidate;
  if (!P) {
    errs() << "  cannot reduce: unknown preset '" << PresetName << "'\n";
    return;
  }

  IRContext Ctx;
  Module M(Ctx, "fuzz");
  OMPCodeGen CG(M, CodeGenOptions{P->Scheme, /*CudaMode=*/false});
  generateKernel(CG, R);

  ReducePredicate Pred = makeDifferentialPredicate(R, *P);
  if (!Pred(M)) {
    errs() << "  failure did not reproduce under the reduction predicate; "
              "skipping reduction\n";
    return;
  }
  ReduceOptions RO;
  RO.MaxProbes = (unsigned)(int64_t)MaxProbes;
  ReduceResult RR = reduceFailingModule(M, Pred, RO);
  errs() << "  reduced " << RR.OriginalInstructions << " -> "
         << RR.FinalInstructions << " instructions (" << RR.Probes
         << " probes)\n";

  BisectResult BR = attributeFailure(*RR.Reduced, R, *P);
  if (BR.FoundFailure && BR.FirstBadExecution > 0)
    errs() << "  attributed to pass execution #" << BR.FirstBadExecution
           << " ('" << BR.PassName << "', invocation " << BR.Invocation
           << ")\n";
  else if (BR.FoundFailure)
    errs() << "  not attributable to a skippable pass (input or required "
              "lowering)\n";
  else
    errs() << "  bisection could not reproduce the failure\n";

  if (!CorpusDir.getValue().empty()) {
    std::string Base =
        CorpusDir.getValue() + "/case-" + std::to_string(R.Seed);
    if (Error E = writeTextFile(Base + ".ll", moduleToString(M)))
      errs() << "  " << E.message() << "\n";
    if (Error E =
            writeTextFile(Base + ".reduced.ll", moduleToString(*RR.Reduced)))
      errs() << "  " << E.message() << "\n";
  }
}

/// Runs the oracle for one recipe; returns the corpus entry and prints and
/// persists any failure.
static CorpusEntry runCase(const KernelRecipe &R) {
  CorpusEntry E;
  E.Seed = R.Seed;
  FuzzVerdict V = runFuzzOracle(R);
  E.OK = V.OK;
  if (V.OK)
    return E;

  E.FailingPreset = V.FailingPreset;
  E.Reason = V.Reason;
  errs() << "FAIL " << R.summary() << "\n  preset '" << V.FailingPreset
         << "': " << V.Reason << "\n";
  if (!CorpusDir.getValue().empty()) {
    E.CaseFile = "case-" + std::to_string(R.Seed) + ".json";
    if (Error Err = saveRecipe(CorpusDir.getValue() + "/" + E.CaseFile, R))
      errs() << "  " << Err.message() << "\n";
  }
  if (!NoReduce)
    reduceAndAttribute(R, V.FailingPreset);
  return E;
}

int main(int argc, char **argv) {
  cl::parseCommandLine(argc, argv);

  if ((int64_t)PrintSeed != 0) {
    CodeGenScheme Scheme = PrintScheme.getValue() == "legacy12"
                               ? CodeGenScheme::Legacy12
                               : CodeGenScheme::Simplified13;
    KernelRecipe R = KernelRecipe::sample((uint64_t)(int64_t)PrintSeed);
    outs() << "; recipe: " << R.summary() << "\n"
           << generatedModuleText(R, Scheme);
    return 0;
  }

  if (!CorpusDir.getValue().empty())
    if (Error E = ensureDirectory(CorpusDir.getValue())) {
      errs() << E.message() << "\n";
      return 2;
    }

  if (!Replay.getValue().empty()) {
    Expected<KernelRecipe> R = loadRecipe(Replay.getValue());
    if (!R) {
      errs() << R.message() << "\n";
      return 2;
    }
    CorpusEntry E = runCase(*R);
    outs() << (E.OK ? "OK " : "FAIL ") << R->summary() << "\n";
    return E.OK ? 0 : 1;
  }

  std::vector<CorpusEntry> Entries;
  unsigned Failures = 0;
  uint64_t First = (uint64_t)(int64_t)Seed;
  uint64_t N = (uint64_t)(int64_t)Runs;
  for (uint64_t S = First; S < First + N; ++S) {
    CorpusEntry E = runCase(KernelRecipe::sample(S));
    if (!E.OK)
      ++Failures;
    Entries.push_back(std::move(E));
  }

  if (!CorpusDir.getValue().empty())
    if (Error E = saveCorpus(CorpusDir.getValue() + "/corpus.json", Entries))
      errs() << E.message() << "\n";

  outs() << "fuzz: " << N << " cases from seed " << First << ", "
         << Failures << " failure" << (Failures == 1 ? "" : "s") << "\n";
  return Failures ? 1 : 0;
}
