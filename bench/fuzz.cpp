//===- bench/fuzz.cpp - Differential fuzzing driver ------------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Campaign driver for the differential fuzzing subsystem (docs/fuzzing.md):
/// samples seeded recipes, judges each one across every pipeline preset with
/// the cross-preset oracle, and on a mismatch persists the recipe, reduces
/// the failing module, and attributes the failure to a pass execution via
/// opt-bisect. Exits nonzero when any case failed.
///
//===----------------------------------------------------------------------===//

#include "BenchFlags.h"
#include "fuzz/Corpus.h"
#include "fuzz/Oracle.h"
#include "fuzz/Reduce.h"
#include "ir/AsmWriter.h"
#include "ir/IRContext.h"
#include "ir/Module.h"
#include "resilience/FaultInjector.h"
#include "service/CompileService.h"
#include "support/CommandLine.h"
#include "support/Hashing.h"
#include "support/raw_ostream.h"

#include <sstream>

using namespace ompgpu;

static cl::opt<int64_t> Seed("fuzz-seed", "First seed of the campaign", 1);
static cl::opt<int64_t> Runs("fuzz-runs", "Number of consecutive seeds", 200);
static cl::opt<std::string>
    CorpusDir("fuzz-corpus-dir",
              "Directory for corpus.json plus failing recipes, modules, and "
              "reduced cases (empty: no persistence)",
              "");
static cl::opt<std::string>
    Replay("fuzz-replay",
           "Replay one recipe JSON file instead of running a campaign", "");
static cl::opt<int64_t>
    PrintSeed("fuzz-print-module",
              "Print the generated module for this seed and exit (0 = off)",
              0);
static cl::opt<std::string>
    PrintScheme("fuzz-print-scheme",
                "Scheme for -fuzz-print-module: simplified13 or legacy12",
                "simplified13");
static cl::opt<int64_t>
    MaxProbes("fuzz-max-probes", "Reduction probe budget per failing case",
              120);
static cl::opt<bool> NoReduce("fuzz-no-reduce",
                              "Skip reduction and attribution of failures",
                              false);
static cl::opt<int64_t>
    Jobs("fuzz-jobs",
         "Compile-service worker threads for the campaign (0 = hardware "
         "concurrency, 1 = sequential)",
         0);
static cl::opt<std::string>
    CacheDir("fuzz-cache-dir",
             "On-disk compile-cache directory, shared across campaigns "
             "(empty: in-memory cache only)",
             "");
static cl::opt<bool> NoCache("fuzz-no-cache",
                             "Disable the compile cache entirely", false);
static cl::opt<std::string> CompileBench(
    "compile-bench",
    "Instead of a campaign, measure the compile workload three ways — "
    "sequential cold, batched cold, batched warm cache — and write the "
    "wall-clock trajectory as BENCH_compile.json to this path",
    "");
static cl::opt<double> RequireSpeedup(
    "compile-bench-require-speedup",
    "With -compile-bench: exit non-zero unless batched-warm beats "
    "sequential-cold by at least this factor (0 = no gate)",
    0.0);
static cl::opt<int64_t>
    FaultSeed("fault-seed",
              "Chaos mode: deterministic fault-injection seed (0 = off). "
              "Enables the resilience policy: 3 attempts, preset "
              "degradation, poison quarantine (docs/resilience.md)",
              0);
static cl::opt<int64_t>
    FaultRate("fault-rate",
              "Chaos mode: per-site fire probability in percent (0-100)", 5);
static cl::opt<std::string>
    FaultSites("fault-sites",
               "Chaos mode: comma-separated fault-site whitelist "
               "(empty = every site; see docs/resilience.md)",
               "");
static cl::opt<std::string>
    FaultReport("fault-report",
                "Chaos mode: write the fault-injection audit (every event, "
                "attribution verdict) as JSON to this path",
                "");
/// The campaign's preset matrix, retargeted to the shared -march flag
/// (bench/BenchFlags) when one was given; presets stay untouched at the
/// "v100" default so historical campaign artifacts remain byte-identical.
static std::vector<PipelineOptions> fuzzPresets() {
  std::vector<PipelineOptions> Presets = defaultFuzzPresets();
  if (!ompgpu::bench::archFlagIsDefault())
    for (PipelineOptions &P : Presets)
      applyArch(P, ompgpu::bench::activeArch());
  return Presets;
}

/// Parses -fault-* into a FaultPlan, or an error for out-of-range rates
/// and unknown site names.
static Expected<FaultPlan> faultPlanFromFlags() {
  json::Value Spec = json::Value::makeObject();
  Spec.set("seed", (uint64_t)(int64_t)FaultSeed)
      .set("rate_percent", (int64_t)FaultRate);
  json::Value Sites = json::Value::makeArray();
  std::stringstream SS(FaultSites.getValue());
  for (std::string Site; std::getline(SS, Site, ',');)
    if (!Site.empty())
      Sites.push_back(json::Value(Site));
  Spec.set("sites", std::move(Sites));
  return FaultPlan::fromJSON(Spec);
}

/// Validates the shared service flags (worker count, cache directory);
/// prints the offending flag and returns false on bad input.
static bool validateServiceFlags() {
  Expected<unsigned> Workers =
      parseWorkerCountFlag("fuzz-jobs", (int64_t)Jobs, Jobs.occurred());
  if (!Workers) {
    errs() << Workers.message() << "\n";
    return false;
  }
  if (Error E = validateCacheDirFlag("fuzz-cache-dir", CacheDir.getValue())) {
    errs() << E.message() << "\n";
    return false;
  }
  return true;
}

/// Emits the recipe's module under \p Scheme into a fresh context and
/// returns its textual IR.
static std::string generatedModuleText(const KernelRecipe &R,
                                       CodeGenScheme Scheme) {
  IRContext Ctx;
  Module M(Ctx, "fuzz");
  OMPCodeGen CG(M, CodeGenOptions{Scheme, /*CudaMode=*/false});
  generateKernel(CG, R);
  return moduleToString(M);
}

/// Reduces and bisects one failing case; writes artifacts when a corpus
/// directory was given.
static void reduceAndAttribute(const KernelRecipe &R,
                               const std::string &PresetName) {
  const std::vector<PipelineOptions> Presets = fuzzPresets();
  const PipelineOptions *P = nullptr;
  for (const PipelineOptions &Candidate : Presets)
    if (Candidate.Name == PresetName)
      P = &Candidate;
  if (!P) {
    errs() << "  cannot reduce: unknown preset '" << PresetName << "'\n";
    return;
  }

  IRContext Ctx;
  Module M(Ctx, "fuzz");
  OMPCodeGen CG(M, CodeGenOptions{P->Scheme, /*CudaMode=*/false});
  generateKernel(CG, R);

  ReducePredicate Pred = makeDifferentialPredicate(R, *P);
  if (!Pred(M)) {
    errs() << "  failure did not reproduce under the reduction predicate; "
              "skipping reduction\n";
    return;
  }
  ReduceOptions RO;
  RO.MaxProbes = (unsigned)(int64_t)MaxProbes;
  ReduceResult RR = reduceFailingModule(M, Pred, RO);
  errs() << "  reduced " << RR.OriginalInstructions << " -> "
         << RR.FinalInstructions << " instructions (" << RR.Probes
         << " probes)\n";

  BisectResult BR = attributeFailure(*RR.Reduced, R, *P);
  if (BR.FoundFailure && BR.FirstBadExecution > 0)
    errs() << "  attributed to pass execution #" << BR.FirstBadExecution
           << " ('" << BR.PassName << "', invocation " << BR.Invocation
           << ")\n";
  else if (BR.FoundFailure)
    errs() << "  not attributable to a skippable pass (input or required "
              "lowering)\n";
  else
    errs() << "  bisection could not reproduce the failure\n";

  if (!CorpusDir.getValue().empty()) {
    std::string Base =
        CorpusDir.getValue() + "/case-" + std::to_string(R.Seed);
    if (Error E = writeTextFile(Base + ".ll", moduleToString(M)))
      errs() << "  " << E.message() << "\n";
    if (Error E =
            writeTextFile(Base + ".reduced.ll", moduleToString(*RR.Reduced)))
      errs() << "  " << E.message() << "\n";
  }
}

/// Runs the oracle for one recipe; returns the corpus entry and prints and
/// persists any failure.
static CorpusEntry runCase(const KernelRecipe &R) {
  CorpusEntry E;
  E.Seed = R.Seed;
  FuzzOracleOptions O;
  O.Presets = fuzzPresets();
  FuzzVerdict V = runFuzzOracle(R, O);
  E.OK = V.OK;
  if (V.OK)
    return E;

  E.FailingPreset = V.FailingPreset;
  E.Reason = V.Reason;
  errs() << "FAIL " << R.summary() << "\n  preset '" << V.FailingPreset
         << "': " << V.Reason << "\n";
  if (!CorpusDir.getValue().empty()) {
    E.CaseFile = "case-" + std::to_string(R.Seed) + ".json";
    if (Error Err = saveRecipe(CorpusDir.getValue() + "/" + E.CaseFile, R))
      errs() << "  " << Err.message() << "\n";
  }
  if (!NoReduce)
    reduceAndAttribute(R, V.FailingPreset);
  return E;
}

/// One (recipe, preset) compile-service job: Emit regenerates the kernel
/// (deterministic), Evaluate judges the compiled preset; the serialized
/// judgment is cached with the compile, so a warm cache skips the compile,
/// both simulations, and the comparison.
static CompileRequest makeCaseRequest(const KernelRecipe &R,
                                      const PipelineOptions &Preset) {
  FuzzOracleOptions O; // Campaign defaults: VerifyEach + lint on.
  CompileRequest Q;
  Q.Id = "seed-" + std::to_string(R.Seed) + "/" + Preset.Name;
  Q.Pipeline = effectiveFuzzPipeline(Preset, O);
  // The recipe also controls inputs and launch geometry, which the kernel
  // IR does not encode; fold its full identity into the cache key.
  Q.Salt = hashBytes(R.toJSON().str());
  Q.Emit = [R, Preset](Module &M) { return emitFuzzKernel(M, R, Preset); };
  Q.Evaluate = [R, Preset](Module &M, const CompileResult &CR,
                           const std::string &Kernel) {
    return fuzzPresetOutcomeToJSON(
        judgeCompiledPreset(R, Preset, M, Kernel, CR));
  };
  // A watchdog cycle-budget timeout (OMP220) is transient: the service
  // retries it under the resilience policy instead of caching it.
  Q.IsTransient = [](const json::Value &Evaluation) {
    return Evaluation.at("watchdog_timeout").asBool();
  };
  return Q;
}

static std::vector<CompileRequest>
makeCampaignRequests(const std::vector<KernelRecipe> &Recipes,
                     const std::vector<PipelineOptions> &Presets) {
  std::vector<CompileRequest> Reqs;
  Reqs.reserve(Recipes.size() * Presets.size());
  for (const KernelRecipe &R : Recipes)
    for (const PipelineOptions &P : Presets)
      Reqs.push_back(makeCaseRequest(R, P));
  return Reqs;
}

/// Folds one batch's outcomes (request order = Recipes x Presets) back
/// into per-case corpus entries, with runFuzzOracle's first-failing-preset
/// semantics.
static std::vector<CorpusEntry>
judgeCampaignOutcomes(const std::vector<KernelRecipe> &Recipes,
                      const std::vector<PipelineOptions> &Presets,
                      const std::vector<CompileOutcome> &Outcomes,
                      bool ChaosMode = false, unsigned *Absorbed = nullptr) {
  std::vector<CorpusEntry> Entries;
  Entries.reserve(Recipes.size());
  for (size_t RI = 0; RI < Recipes.size(); ++RI) {
    CorpusEntry E;
    E.Seed = Recipes[RI].Seed;
    for (size_t PI = 0; PI < Presets.size() && E.OK; ++PI) {
      const CompileOutcome &O = Outcomes[RI * Presets.size() + PI];
      if (!O.Error.empty()) {
        // Chaos mode: a request the policy quarantined after exhausting
        // its budget is a *resolved* chaos verdict (OMP223), not a fuzz
        // finding — the injected faults caused it, not a compiler bug.
        if (ChaosMode && O.Resilience.Quarantined) {
          if (Absorbed)
            ++*Absorbed;
          continue;
        }
        E.OK = false;
        E.FailingPreset = Presets[PI].Name;
        E.Reason = "compile service: " + O.Error;
        break;
      }
      Expected<FuzzPresetOutcome> P =
          fuzzPresetOutcomeFromJSON(O.evaluation());
      if (!P) {
        E.OK = false;
        E.FailingPreset = Presets[PI].Name;
        E.Reason = "compile service: " + P.message();
        break;
      }
      if (!P->OK) {
        E.OK = false;
        E.FailingPreset = P->Preset;
        E.Reason = P->Reason;
      }
    }
    Entries.push_back(std::move(E));
  }
  return Entries;
}

static json::Value phaseRow(const char *Name, const BatchStats &B) {
  json::Value V = B.toJSON();
  V.set("name", Name);
  return V;
}

static void printPhase(const char *Name, const BatchStats &B) {
  outs() << "  " << Name << ": " << B.WallMillis << " ms wall ("
         << B.JobMillis << " ms of jobs, " << B.Workers << " worker"
         << (B.Workers == 1 ? "" : "s") << ", " << B.CacheHits
         << " cache hit" << (B.CacheHits == 1 ? "" : "s") << ")\n";
}

/// Fail fast, naming the failed request: a batched compile entry that
/// errored would otherwise silently skew every phase's timing.
static bool anyRequestFailed(const char *Phase,
                             const std::vector<CompileOutcome> &Out) {
  for (const CompileOutcome &O : Out)
    if (!O.Error.empty()) {
      errs() << "compile-bench: request '" << O.Id << "' failed in the "
             << Phase << " phase: " << O.Error << "\n";
      return true;
    }
  return false;
}

/// -compile-bench: measure the same compile workload three ways and write
/// the wall-clock trajectory (docs/compile-service.md). The three phases
/// must produce bit-identical judgments; the speedup numbers are measured,
/// not asserted.
static int runCompileBench(const std::vector<KernelRecipe> &Recipes,
                           const std::vector<PipelineOptions> &Presets) {
  // Phase 1: sequential cold — one worker, cache off. The baseline every
  // speedup is quoted against.
  CompileService::Options S1;
  S1.Workers = 1;
  S1.Cache.Enabled = false;
  CompileService Seq(S1);
  std::vector<CompileOutcome> O1 =
      Seq.compileBatch(makeCampaignRequests(Recipes, Presets));
  BatchStats B1 = Seq.lastBatchStats();

  // Phases 2 and 3 share one parallel service: batched cold fills the
  // cache, batched warm replays the identical batch against it.
  CompileService::Options S2;
  S2.Workers = (unsigned)(int64_t)Jobs;
  S2.Cache.Enabled = !NoCache;
  S2.Cache.Dir = CacheDir.getValue();
  CompileService Par(S2);
  std::vector<CompileOutcome> O2 =
      Par.compileBatch(makeCampaignRequests(Recipes, Presets));
  BatchStats B2 = Par.lastBatchStats();
  std::vector<CompileOutcome> O3 =
      Par.compileBatch(makeCampaignRequests(Recipes, Presets));
  BatchStats B3 = Par.lastBatchStats();

  if (anyRequestFailed("sequential-cold", O1) ||
      anyRequestFailed("batched-cold", O2) ||
      anyRequestFailed("batched-warm", O3))
    return 1;

  bool Identical = O1.size() == O2.size() && O1.size() == O3.size();
  for (size_t I = 0; Identical && I < O1.size(); ++I)
    Identical = O1[I].resultKey() == O2[I].resultKey() &&
                O1[I].resultKey() == O3[I].resultKey();

  double SpeedupCold = B2.WallMillis > 0 ? B1.WallMillis / B2.WallMillis : 0;
  double SpeedupWarm = B3.WallMillis > 0 ? B1.WallMillis / B3.WallMillis : 0;

  json::Value Phases = json::Value::makeArray();
  Phases.push_back(phaseRow("sequential-cold", B1));
  Phases.push_back(phaseRow("batched-cold", B2));
  Phases.push_back(phaseRow("batched-warm", B3));
  json::Value Doc = json::Value::makeObject();
  Doc.set("schema_version", 1)
      .set("generator", "ompgpu")
      .set("tool", "fuzz-compile-bench")
      .set("cases", (unsigned)Recipes.size())
      .set("presets", (unsigned)Presets.size())
      .set("jobs", (unsigned)(Recipes.size() * Presets.size()))
      .set("workers", B2.Workers)
      .set("phases", std::move(Phases))
      .set("speedup_batched_cold", SpeedupCold)
      .set("speedup_batched_warm", SpeedupWarm)
      .set("bit_identical", Identical);
  if (Error E = writeTextFile(CompileBench.getValue(), Doc.str() + "\n")) {
    errs() << E.message() << "\n";
    return 2;
  }

  outs() << "compile-bench: " << Recipes.size() << " cases x "
         << Presets.size() << " presets (" << Recipes.size() * Presets.size()
         << " jobs)\n";
  printPhase("sequential-cold", B1);
  printPhase("batched-cold", B2);
  printPhase("batched-warm", B3);
  outs() << "  speedup: batched-cold " << SpeedupCold << "x, batched-warm "
         << SpeedupWarm << "x, results "
         << (Identical ? "bit-identical" : "DIVERGED") << "\n";

  if (!Identical) {
    errs() << "compile-bench: batched/cached results diverge from the "
              "sequential baseline\n";
    return 1;
  }
  if ((double)RequireSpeedup > 0 && SpeedupWarm < (double)RequireSpeedup) {
    errs() << "compile-bench: batched-warm speedup " << SpeedupWarm
           << "x below required " << (double)RequireSpeedup << "x\n";
    return 1;
  }
  return 0;
}

/// Writes the chaos audit artifact and enforces the attribution gate:
/// every injected fault must have been consumed by a resilience action.
/// Returns the process exit code contribution (0 = gate passed).
static int finishChaosAudit(const FaultPlan &Plan, unsigned Absorbed) {
  FaultInjector &FI = FaultInjector::instance();
  uint64_t Fired = FI.firedCount();
  uint64_t Unattributed = FI.unattributedCount();

  if (!FaultReport.getValue().empty()) {
    json::Value Events = json::Value::makeArray();
    for (const FaultEvent &E : FI.allEvents())
      Events.push_back(E.toJSON());
    json::Value Doc = json::Value::makeObject();
    Doc.set("schema_version", 1)
        .set("generator", "ompgpu")
        .set("tool", "fuzz-chaos")
        .set("plan", Plan.toJSON())
        .set("fired", Fired)
        .set("unattributed", Unattributed)
        .set("quarantined_requests", Absorbed)
        .set("events", std::move(Events));
    if (Error E = writeTextFile(FaultReport.getValue(), Doc.str() + "\n"))
      errs() << E.message() << "\n";
  }

  outs() << "chaos: " << Fired << " fault" << (Fired == 1 ? "" : "s")
         << " injected, " << Unattributed << " unattributed, " << Absorbed
         << " request" << (Absorbed == 1 ? "" : "s") << " quarantined\n";
  if (Unattributed) {
    errs() << "chaos: " << Unattributed
           << " injected fault(s) were never consumed by a resilience "
              "action — silent fault swallowing\n";
    return 1;
  }
  return 0;
}

int main(int argc, char **argv) {
  cl::parseCommandLine(argc, argv);

  if (!validateServiceFlags())
    return 2;
  if (!ompgpu::bench::initActiveArch())
    return 2; // usage error, same convention as every bench driver
  Expected<FaultPlan> Plan = faultPlanFromFlags();
  if (!Plan) {
    errs() << Plan.message() << "\n";
    return 2;
  }
  const bool ChaosMode = Plan->enabled();
  if (ChaosMode)
    FaultInjector::instance().configure(*Plan);

  if ((int64_t)PrintSeed != 0) {
    CodeGenScheme Scheme = PrintScheme.getValue() == "legacy12"
                               ? CodeGenScheme::Legacy12
                               : CodeGenScheme::Simplified13;
    KernelRecipe R = KernelRecipe::sample((uint64_t)(int64_t)PrintSeed);
    outs() << "; recipe: " << R.summary() << "\n"
           << generatedModuleText(R, Scheme);
    return 0;
  }

  if (!CorpusDir.getValue().empty())
    if (Error E = ensureDirectory(CorpusDir.getValue())) {
      errs() << E.message() << "\n";
      return 2;
    }

  if (!Replay.getValue().empty()) {
    Expected<KernelRecipe> R = loadRecipe(Replay.getValue());
    if (!R) {
      errs() << R.message() << "\n";
      return 2;
    }
    CorpusEntry E = runCase(*R);
    outs() << (E.OK ? "OK " : "FAIL ") << R->summary() << "\n";
    return E.OK ? 0 : 1;
  }

  uint64_t First = (uint64_t)(int64_t)Seed;
  uint64_t N = (uint64_t)(int64_t)Runs;
  std::vector<KernelRecipe> Recipes;
  Recipes.reserve((size_t)N);
  for (uint64_t S = First; S < First + N; ++S)
    Recipes.push_back(KernelRecipe::sample(S));
  const std::vector<PipelineOptions> Presets = fuzzPresets();

  if (!CompileBench.getValue().empty())
    return runCompileBench(Recipes, Presets);

  // The campaign compiles through the service: every (seed, preset) pair
  // is one job, batched across workers and memoized in the compile cache.
  CompileService::Options SO;
  SO.Workers = (unsigned)(int64_t)Jobs;
  SO.Cache.Enabled = !NoCache;
  SO.Cache.Dir = CacheDir.getValue();
  if (ChaosMode) {
    // Chaos campaigns run with the full resilience policy armed: retry,
    // degrade down the preset ladder, quarantine poison requests.
    SO.Resilience.MaxAttempts = 3;
    SO.Resilience.DegradePresets = true;
    SO.Resilience.QuarantinePoison = true;
  }
  CompileService Svc(SO);
  std::vector<CompileOutcome> Outcomes =
      Svc.compileBatch(makeCampaignRequests(Recipes, Presets));
  unsigned ChaosAbsorbed = 0;
  std::vector<CorpusEntry> Entries = judgeCampaignOutcomes(
      Recipes, Presets, Outcomes, ChaosMode, &ChaosAbsorbed);

  // Failure triage (persist recipe, reduce, attribute) stays on the main
  // thread, in seed order.
  unsigned Failures = 0;
  for (size_t I = 0; I < Entries.size(); ++I) {
    CorpusEntry &E = Entries[I];
    if (E.OK)
      continue;
    ++Failures;
    const KernelRecipe &R = Recipes[I];
    errs() << "FAIL " << R.summary() << "\n  preset '" << E.FailingPreset
           << "': " << E.Reason << "\n";
    if (!CorpusDir.getValue().empty()) {
      E.CaseFile = "case-" + std::to_string(R.Seed) + ".json";
      if (Error Err = saveRecipe(CorpusDir.getValue() + "/" + E.CaseFile, R))
        errs() << "  " << Err.message() << "\n";
    }
    if (!NoReduce)
      reduceAndAttribute(R, E.FailingPreset);
  }

  if (!CorpusDir.getValue().empty())
    if (Error E = saveCorpus(CorpusDir.getValue() + "/corpus.json", Entries))
      errs() << E.message() << "\n";

  const BatchStats &BS = Svc.lastBatchStats();
  outs() << "fuzz: " << N << " cases from seed " << First << ", " << Failures
         << " failure" << (Failures == 1 ? "" : "s") << " (" << BS.Workers
         << " worker" << (BS.Workers == 1 ? "" : "s") << ", "
         << BS.CacheHits << " cache hit" << (BS.CacheHits == 1 ? "" : "s")
         << ", " << BS.CacheMisses << " miss"
         << (BS.CacheMisses == 1 ? "" : "es") << ")\n";
  if (BS.Retries || BS.Degraded || BS.Quarantined || BS.FaultsInjected)
    outs() << "  resilience: " << BS.Retries << " retries, " << BS.Degraded
           << " degraded, " << BS.Quarantined << " quarantined, "
           << BS.FaultsInjected << " faults injected\n";

  int ChaosExit = ChaosMode ? finishChaosAudit(*Plan, ChaosAbsorbed) : 0;
  if (Failures)
    return 1;
  return ChaosExit;
}
