//===- bench/cg.cpp - Multi-device CG/SpMV bench driver --------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the partitioned CG workload family over a simulated device
/// group (docs/multi-device.md). Two modes:
///
///   * Default: one solve on the group selected by -devices/-group-spec
///     and -march. Groups larger than one device are verified bit-exact
///     against the 1-device reference (exit 1 on mismatch).
///   * -multidevice-bench=<path>: the CI trajectory — both matrix shapes
///     (compute, transfer) across 1/2/4 homogeneous -march devices,
///     written as BENCH_multidevice.json with makespan speedups and
///     communication fractions; -cg-require-speedup / -cg-require-comm
///     gate the compute-shape speedup and the transfer-shape
///     communication fraction.
///
/// Artifacts: -bench-summary rows per solve (shared BenchSupport schema),
/// -compile-report with one per-architecture report carrying the schema
/// v9 `multi_device` section. Exit codes: 2 for bad flag values, 1 for
/// traps, bit-exactness mismatches, failed gates, or write errors.
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "driver/CompileReport.h"
#include "support/CommandLine.h"
#include "support/FileSystem.h"
#include "support/raw_ostream.h"
#include "workloads/CGSolver.h"

using namespace ompgpu;
using namespace ompgpu::bench;

static cl::opt<std::string> MatrixShape(
    "matrix-shape",
    "Named CG operator shape: compute (kernel-cycle dominated) or "
    "transfer (link-latency dominated)",
    std::string("compute"));
static cl::opt<std::string> CGFormatFlag(
    "cg-format", "Sparse matrix format: crs or ell", std::string("crs"));
static cl::opt<std::string> MultiDeviceBenchPath(
    "multidevice-bench",
    "Run the 1/2/4-device trajectory over both matrix shapes and write "
    "BENCH_multidevice.json to the given path", std::string());
static cl::opt<double> RequireSpeedup(
    "cg-require-speedup",
    "With -multidevice-bench: fail unless the compute shape's 4-device "
    "makespan speedup reaches this factor (0 = no gate)", 0.0);
static cl::opt<double> RequireComm(
    "cg-require-comm",
    "With -multidevice-bench: fail unless the transfer shape's 4-device "
    "communication fraction reaches this value (0 = no gate)", 0.0);
static cl::opt<int64_t> PerturbSeed(
    "cg-perturb",
    "Completion-order perturbation seed (determinism probes; 0 = off)",
    (int64_t)0);

namespace {

/// One solved configuration of the trajectory.
struct SolveRow {
  unsigned Devices = 0;
  CGResult R;
};

CGOptions makeOptions(const CGOptions &Shape, CGFormat Fmt,
                      DeviceGroupSpec Group) {
  CGOptions O = Shape;
  O.Fmt = Fmt;
  O.Group = std::move(Group);
  // runCG re-applies each device's architecture via applyArch, so the
  // preset needs no -march retargeting here.
  O.Pipeline = makeDevPipeline();
  O.PerturbSeed = (uint64_t)(int64_t)PerturbSeed;
  return O;
}

json::Value cgSummaryRow(const std::string &Shape, CGFormat Fmt,
                         unsigned Devices, const CGResult &R,
                         double Speedup) {
  const DeviceGroupStats &St = R.Stats;
  return json::Value::makeObject()
      .set("workload", std::string("cg-") + cgFormatName(Fmt))
      .set("config", Shape)
      .set("devices", (int64_t)Devices)
      .set("iterations", (int64_t)R.Iterations)
      .set("converged", R.Converged)
      .set("makespan_cycles", (int64_t)St.MakespanCycles)
      .set("sum_device_cycles", (int64_t)St.SumDeviceCycles)
      .set("speedup", Speedup)
      .set("communication_fraction", St.communicationFraction())
      .set("load_imbalance", St.loadImbalance())
      .set("host_link_bytes", (int64_t)St.HostLinkBytes)
      .set("peer_bytes", (int64_t)St.PeerBytes);
}

/// Writes the -compile-report artifact: one report per compiled
/// architecture, each carrying the `multi_device` section with the group
/// shape and the solve's DeviceGroupStats.
bool writeCGCompileReports(const CGResult &R, const DeviceGroupSpec &Spec) {
  const std::string &Path = compileReportFlagPath();
  if (Path.empty())
    return true;
  json::Value Docs = json::Value::makeArray();
  for (const CGResult::ArchCompile &AC : R.Compiles) {
    json::Value MD = json::Value::makeObject()
                         .set("managed", true)
                         .set("group", Spec.Name)
                         .set("devices", (int64_t)Spec.Devices.size())
                         .set("peer_link", Spec.HasPeerLink)
                         .set("stats", R.Stats.toJSON());
    Docs.push_back(buildCompileReport(AC.Opts, AC.Compile, {}, nullptr,
                                      &MD));
  }
  if (Error E = writeCompileReportFile(Path, Docs)) {
    errs() << "cg: " << E.message() << "\n";
    return false;
  }
  return true;
}

/// Solves one configuration, printing a one-line summary.
bool solve(const CGOptions &O, const std::string &Label, CGResult &Out) {
  Out = runCG(O);
  if (!Out.Trap.empty()) {
    errs() << "cg: " << Label << ": " << Out.Trap << "\n";
    return false;
  }
  const DeviceGroupStats &St = Out.Stats;
  outs() << formatBuf(
      "  %-22s %2u dev %4u iter  makespan %12llu  comm %5.1f%%  imb %.2f\n",
      Label.c_str(), (unsigned)St.Devices.size(), Out.Iterations,
      (unsigned long long)St.MakespanCycles,
      100.0 * St.communicationFraction(), St.loadImbalance());
  return true;
}

/// The -multidevice-bench trajectory: both shapes x 1/2/4 devices on the
/// active -march architecture.
int runTrajectory(CGFormat Fmt) {
  json::Value Doc = json::Value::makeObject()
                        .set("schema_version", (int64_t)1)
                        .set("generator", "ompgpu")
                        .set("tool", "cg")
                        .set("format", cgFormatName(Fmt))
                        .set("arch", activeArch().Name);
  json::Value Shapes = json::Value::makeArray();
  bool GatePassed = true;
  std::string GateMessage;

  for (const char *ShapeName : {"compute", "transfer"}) {
    Expected<CGOptions> Shape = cgMatrixShape(ShapeName);
    if (!Shape) {
      errs() << "cg: " << Shape.message() << "\n";
      return 1;
    }
    outs() << "shape " << ShapeName << " (rows " << Shape->Rows << ", band "
           << Shape->Band << "):\n";

    std::vector<SolveRow> Rows;
    for (unsigned D : {1u, 2u, 4u}) {
      SolveRow S;
      S.Devices = D;
      CGOptions O = makeOptions(*Shape, Fmt,
                                homogeneousGroupSpec(activeArch(), D));
      if (!solve(O, std::string(ShapeName) + " x" + std::to_string(D), S.R))
        return 1;
      Rows.push_back(std::move(S));
    }

    const SolveRow &Ref = Rows.front();
    json::Value RowsJSON = json::Value::makeArray();
    for (const SolveRow &S : Rows) {
      bool BitExact = S.R.resultHash() == Ref.R.resultHash();
      double Speedup = S.R.Stats.MakespanCycles
                           ? (double)Ref.R.Stats.MakespanCycles /
                                 (double)S.R.Stats.MakespanCycles
                           : 0.0;
      if (!BitExact) {
        errs() << "cg: " << ShapeName << " x" << S.Devices
               << " is not bit-exact with the 1-device reference\n";
        return 1;
      }
      json::Value Row = cgSummaryRow(ShapeName, Fmt, S.Devices, S.R, Speedup);
      Row.set("bit_exact", BitExact);
      recordBenchSummaryRow(Row);
      RowsJSON.push_back(std::move(Row));

      if (S.Devices == 4) {
        if (std::string(ShapeName) == "compute" &&
            RequireSpeedup.getValue() > 0.0 &&
            Speedup < RequireSpeedup.getValue()) {
          GatePassed = false;
          GateMessage = formatBuf(
              "compute-shape 4-device speedup %.2fx below the required "
              "%.2fx", Speedup, RequireSpeedup.getValue());
        }
        if (std::string(ShapeName) == "transfer" &&
            RequireComm.getValue() > 0.0 &&
            S.R.Stats.communicationFraction() < RequireComm.getValue()) {
          GatePassed = false;
          GateMessage = formatBuf(
              "transfer-shape 4-device communication fraction %.2f below "
              "the required %.2f",
              S.R.Stats.communicationFraction(), RequireComm.getValue());
        }
      }
    }
    Shapes.push_back(json::Value::makeObject()
                         .set("shape", ShapeName)
                         .set("rows", (int64_t)Shape->Rows)
                         .set("band", (int64_t)Shape->Band)
                         .set("results", std::move(RowsJSON)));
  }

  Doc.set("shapes", std::move(Shapes));
  if (Error E = writeTextFile(MultiDeviceBenchPath.getValue(),
                              Doc.str() + "\n")) {
    errs() << "cg: " << E.message() << "\n";
    return 1;
  }
  outs() << "wrote " << MultiDeviceBenchPath.getValue() << "\n";
  if (!GatePassed) {
    errs() << "cg: " << GateMessage << "\n";
    return 1;
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  cl::parseCommandLine(argc, argv);
  if (!initActiveArch())
    return 2;

  CGFormat Fmt;
  if (CGFormatFlag.getValue() == "crs") {
    Fmt = CGFormat::CRS;
  } else if (CGFormatFlag.getValue() == "ell") {
    Fmt = CGFormat::ELL;
  } else {
    errs() << "error: -cg-format: unknown format '" << CGFormatFlag.getValue()
           << "' (expected crs or ell)\n";
    return 2;
  }
  Expected<CGOptions> Shape = cgMatrixShape(MatrixShape.getValue());
  if (!Shape) {
    errs() << "error: -matrix-shape: " << Shape.message() << "\n";
    return 2;
  }
  Expected<DeviceGroupSpec> Group = resolveGroupSpecFlag();
  if (!Group) {
    errs() << "error: " << Group.message() << "\n";
    return 2;
  }
  if (PerturbSeed.getValue() < 0) {
    errs() << "error: -cg-perturb must be non-negative\n";
    return 2;
  }

  int Exit = 0;
  if (!MultiDeviceBenchPath.getValue().empty()) {
    Exit = runTrajectory(Fmt);
  } else {
    outs() << "CG (" << cgFormatName(Fmt) << ", " << MatrixShape.getValue()
           << " shape) on group '" << Group->Name << "' ("
           << Group->Devices.size() << " device(s))\n";
    CGResult R;
    if (!solve(makeOptions(*Shape, Fmt, *Group), Group->Name, R)) {
      Exit = 1;
    } else {
      if (Group->Devices.size() > 1) {
        // Bit-exactness gate: the group must reproduce the 1-device
        // reference exactly (same arch as device 0 of the group).
        CGOptions RefO = makeOptions(*Shape, Fmt,
                                     homogeneousGroupSpec(
                                         Group->Devices.front(), 1));
        CGResult Ref;
        if (!solve(RefO, "1-device reference", Ref)) {
          Exit = 1;
        } else if (Ref.resultHash() != R.resultHash()) {
          errs() << "cg: group '" << Group->Name
                 << "' is not bit-exact with the 1-device reference\n";
          Exit = 1;
        } else {
          outs() << "  bit-exact with the 1-device reference (hash "
                 << formatBuf("%016llx",
                              (unsigned long long)R.resultHash())
                 << ")\n";
        }
      }
      recordBenchSummaryRow(cgSummaryRow(MatrixShape.getValue(), Fmt,
                                         (unsigned)Group->Devices.size(), R,
                                         /*Speedup=*/0.0));
      RemarkCollector RC;
      for (const Remark &RM : R.Remarks)
        RC.emit(RM.Id, RM.Missed, RM.FunctionName, RM.Message);
      RC.print(outs());
      if (!writeCGCompileReports(R, *Group))
        Exit = 1;
    }
  }

  if (!writeBenchSummary("cg"))
    Exit = Exit ? Exit : 1;
  outs().flush();
  return Exit;
}
