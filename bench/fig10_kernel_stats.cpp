//===- bench/fig10_kernel_stats.cpp - Fig. 10: kernel statistics -----------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 10: cumulative kernel time, shared-memory usage, and
/// register count per benchmark and compiler build. Paper shape: the CUDA
/// builds use few registers (26-32) and almost no shared memory; the
/// OpenMP builds carry the parallel-region machinery (140-255 registers,
/// KBs of shared memory); deglobalization moves variables from runtime
/// shared-memory allocations into registers.
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "support/raw_ostream.h"

#include <benchmark/benchmark.h>

using namespace ompgpu;
using namespace ompgpu::bench;

namespace {

void printRow(const WorkloadRunResult &R) {
  if (!R.Stats.ok()) {
    outs() << formatBuf("    %-26s %12s\n", R.ConfigName.c_str(), "error");
    return;
  }
  double SMemKB =
      (double)(R.Stats.StaticSharedBytes + R.Stats.DynamicSharedBytes) /
      1024.0;
  outs() << formatBuf("    %-26s %9.3f ms %8.3f KB %6u regs%s\n",
                      R.ConfigName.c_str(), R.Stats.Milliseconds, SMemKB,
                      R.Stats.RegsPerThread,
                      R.Stats.OutOfMemory ? "   [OoM]" : "");
}

void printTable() {
  outs() << "\nFig. 10: kernel time, shared memory, and registers\n";
  outs() << "---------------------------------------------------\n";
  struct Case {
    const char *Name;
    std::unique_ptr<Workload> (*Factory)(ProblemSize);
    bool HasCUDA;
  } Cases[] = {{"RSBench:  rsbench -s large -m event", createRSBench, true},
               {"XSBench:  XSBench -m event", createXSBench, true},
               {"SU3Bench: bench_f32_openmp.exe", createSU3Bench, true},
               {"miniQMC:  check_spo_batched", createMiniQMC, false}};
  for (const Case &C : Cases) {
    outs() << "  " << C.Name << '\n';
    if (C.HasCUDA)
      printRow(measure(C.Factory, configCUDA()));
    printRow(measure(C.Factory, configLLVM12()));
    printRow(measure(C.Factory, configDevFull()));
    outs() << '\n';
  }
  outs().flush();
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<ConfigSpec> Configs = {configCUDA(), configLLVM12(),
                                     configDevFull()};
  registerConfigBenchmarks("fig10/XSBench", createXSBench, Configs);
  registerConfigBenchmarks("fig10/RSBench", createRSBench, Configs);
  registerConfigBenchmarks("fig10/SU3Bench", createSU3Bench, Configs);
  registerConfigBenchmarks(
      "fig10/miniQMC", createMiniQMC,
      {configLLVM12(), configDevFull()});
  return runBenchmarkMain(Argc, Argv, printTable);
}
