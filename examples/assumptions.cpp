//===- examples/assumptions.cpp - OpenMP 5.1 assumptions (Sec. IV-D) -------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shows the actionable-feedback loop of Sec. IV-D: a kernel calling an
/// externally defined routine cannot be SPMDzed (remark OMP121 with
/// advice); adding `#pragma omp begin assumes ext_spmd_amenable` around
/// the declaration unlocks the transformation, exactly as the remark's
/// documentation page suggests.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "support/raw_ostream.h"

using namespace ompgpu;

namespace {

CompileResult build(bool WithAssumption) {
  IRContext Ctx;
  Module M(Ctx, "assume");
  OMPCodeGen CG(M, {CodeGenScheme::Simplified13, false});

  // double filter(double) is defined in another translation unit.
  Function *Filter = M.getOrInsertFunction(
      "filter", Ctx.getFunctionTy(Ctx.getDoubleTy(), {Ctx.getDoubleTy()}));
  if (WithAssumption)
    Filter->addAssumption("ext_spmd_amenable");

  TargetRegionBuilder TRB(CG, "assume_kernel",
                          {Ctx.getPtrTy(), Ctx.getInt32Ty()},
                          ExecMode::Generic, 4, 64);
  Argument *Out = TRB.getParam(0);
  TRB.emitDistributeLoop(TRB.getParam(1), [&](IRBuilder &B, Value *I) {
    Value *V = B.createCall(Filter, {B.createSIToFP(I, Ctx.getDoubleTy())});
    B.createStore(V, B.createGEP(Ctx.getDoubleTy(), Out, {I}));
    std::vector<TargetRegionBuilder::Capture> Caps;
    TRB.emitParallelFor(B.getInt32(8), Caps,
                        [&](IRBuilder &, Value *,
                            const TargetRegionBuilder::CaptureMap &) {});
  });
  TRB.finalize();
  return optimizeDeviceModule(M, makeDevPipeline());
}

} // namespace

int main() {
  outs() << "=== without assumptions ===\n";
  CompileResult Without = build(false);
  Without.Remarks.print(outs());
  outs() << "SPMDzed kernels: " << Without.Stats.SPMDzedKernels << "\n\n";

  outs() << "=== with `#pragma omp begin assumes ext_spmd_amenable` ===\n";
  CompileResult With = build(true);
  With.Remarks.print(outs());
  outs() << "SPMDzed kernels: " << With.Stats.SPMDzedKernels << "\n";

  return (Without.Stats.SPMDzedKernels == 0 &&
          With.Stats.SPMDzedKernels == 1)
             ? 0
             : 1;
}
