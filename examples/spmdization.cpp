//===- examples/spmdization.cpp - Fig. 7 guard grouping walkthrough --------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Sec. IV-B3 / Fig. 7: a generic-mode region with two
/// side-effects in the sequential part, interleaved with SPMD-amenable
/// code. SPMDzation converts the kernel; with grouping the side effects
/// share one guarded region (Fig. 7c), without it each gets its own
/// barriers (Fig. 7b). The simulated kernel times show the difference.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "gpusim/Device.h"
#include "rtl/DeviceRTL.h"
#include "support/raw_ostream.h"

using namespace ompgpu;

namespace {

struct Result {
  unsigned GuardedRegions;
  unsigned SPMDzed;
  double Ms;
};

Result run(bool DisableGrouping, bool DisableSPMDization) {
  IRContext Ctx;
  Module M(Ctx, "fig7");
  OMPCodeGen CG(M, {CodeGenScheme::Simplified13, false});
  Type *F64 = Ctx.getDoubleTy();

  TargetRegionBuilder TRB(CG, "fig7_kernel",
                          {Ctx.getPtrTy(), Ctx.getPtrTy(),
                           Ctx.getInt32Ty()},
                          ExecMode::Generic, 8, 64);
  Argument *A = TRB.getParam(0);
  Argument *B2 = TRB.getParam(1);
  Argument *N = TRB.getParam(2);
  TRB.emitDistributeLoop(N, [&](IRBuilder &B, Value *I) {
    // A[0] = ...;  (guard needed)
    Value *IF = B.createSIToFP(I, F64);
    B.createStore(IF, B.createGEP(F64, A, {I}));
    // < SPMD amenable code >
    Value *T = B.createFMul(IF, B.getDouble(1.5));
    Value *T2 = B.createFAdd(T, B.getDouble(0.25));
    // B[0] = ...;  (guard needed)
    B.createStore(T2, B.createGEP(F64, B2, {I}));
    // #pragma omp parallel
    std::vector<TargetRegionBuilder::Capture> Caps = {{A, false, "a"},
                                                      {I, false, "i"}};
    TRB.emitParallelFor(
        B.getInt32(16), Caps,
        [&](IRBuilder &LB, Value *J,
            const TargetRegionBuilder::CaptureMap &Map) {
          Value *P = LB.createGEP(F64, Map.at(A), {Map.at(I)});
          Value *V = LB.createLoad(F64, P);
          LB.createStore(LB.createFAdd(V, LB.createSIToFP(J, F64)), P);
        });
  });
  Function *K = TRB.finalize();

  PipelineOptions P = makeDevPipeline();
  P.OptConfig.DisableGuardGrouping = DisableGrouping;
  P.OptConfig.DisableSPMDization = DisableSPMDization;
  CompileResult CR = optimizeDeviceModule(M, P);

  GPUDevice Dev;
  const int Len = 256;
  uint64_t DA = Dev.allocate(Len * 8), DB = Dev.allocate(Len * 8);
  LaunchConfig LC;
  LC.GridDim = 8;
  LC.BlockDim = 64;
  NativeRuntimeBinding RTL =
      makeOpenMPRuntimeBinding(P.Flavor, Dev.getMachine());
  KernelStats S = Dev.launchKernel(M, K, LC, {DA, DB, (uint64_t)Len}, RTL);
  if (!S.ok())
    errs() << "trap: " << S.Trap << "\n";
  return {CR.Stats.GuardedRegions, CR.Stats.SPMDzedKernels,
          S.Milliseconds};
}

} // namespace

int main() {
  Result Generic = run(false, /*DisableSPMDization=*/true);
  Result Naive = run(/*DisableGrouping=*/true, false);
  Result Grouped = run(false, false);

  outs() << "Fig. 7 walkthrough (simulated kernel times)\n";
  outs() << formatBuf("  %-34s %10s %8s\n", "configuration",
                      "guards", "ms");
  outs() << formatBuf("  %-34s %10s %8.3f\n",
                      "generic mode (no SPMDzation)", "-", Generic.Ms);
  outs() << formatBuf("  %-34s %10u %8.3f\n",
                      "SPMDzed, naive guards (Fig. 7b)",
                      Naive.GuardedRegions, Naive.Ms);
  outs() << formatBuf("  %-34s %10u %8.3f\n",
                      "SPMDzed, grouped guards (Fig. 7c)",
                      Grouped.GuardedRegions, Grouped.Ms);
  return Grouped.GuardedRegions <= Naive.GuardedRegions ? 0 : 1;
}
