//===- examples/quickstart.cpp - Build, optimize, and run a kernel ---------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: build an OpenMP `target teams distribute parallel for`
/// kernel (a saxpy) against the codegen API, run it through the paper's
/// optimization pipeline (instrumented: per-pass timing + change
/// tracking), launch it on the simulated V100, check the result, and —
/// given an argument — write the JSON compile-report there
/// (docs/compile-report.md documents the schema; CI archives this file).
///
//===----------------------------------------------------------------------===//

#include "driver/CompileReport.h"
#include "driver/Pipeline.h"
#include "gpusim/Device.h"
#include "ir/AsmWriter.h"
#include "rtl/DeviceRTL.h"
#include "support/raw_ostream.h"

using namespace ompgpu;

int main(int argc, char **argv) {
  // 1. A module and the OpenMP front-end (the paper's simplified scheme).
  IRContext Ctx;
  Module M(Ctx, "quickstart");
  OMPCodeGen CG(M, {CodeGenScheme::Simplified13, /*CudaMode=*/false});

  // 2. The kernel:  #pragma omp target teams distribute parallel for
  //                 for (i = 0; i < n; ++i) y[i] = a * x[i] + y[i];
  Type *F64 = Ctx.getDoubleTy();
  TargetRegionBuilder TRB(
      CG, "saxpy",
      {Ctx.getDoubleTy(), Ctx.getPtrTy(), Ctx.getPtrTy(), Ctx.getInt32Ty()},
      ExecMode::SPMD, /*NumTeams=*/8, /*NumThreads=*/64);
  Argument *A = TRB.getParam(0);
  Argument *X = TRB.getParam(1);
  Argument *Y = TRB.getParam(2);
  Argument *N = TRB.getParam(3);
  std::vector<TargetRegionBuilder::Capture> Caps = {
      {A, false, "a"}, {X, false, "x"}, {Y, false, "y"}};
  TRB.emitDistributeParallelFor(
      N, Caps,
      [&](IRBuilder &B, Value *I,
          const TargetRegionBuilder::CaptureMap &Map) {
        Value *Xi = B.createLoad(F64, B.createGEP(F64, Map.at(X), {I}));
        Value *Yp = B.createGEP(F64, Map.at(Y), {I});
        Value *Yi = B.createLoad(F64, Yp);
        B.createStore(B.createFAdd(B.createFMul(Map.at(A), Xi), Yi), Yp);
      });
  Function *Kernel = TRB.finalize();

  // 3. Optimize with the full "LLVM Dev" pipeline, instrumented so every
  //    pass is timed and change-detected, and show remarks + timings.
  PipelineOptions P = makeDevPipeline();
  P.Instrument.TimePasses = true;
  P.Instrument.TrackChanges = true;
  CompileResult CR = optimizeDeviceModule(M, P);
  outs() << "=== optimization remarks ===\n";
  CR.Remarks.print(outs());
  outs() << "\n=== pass timings ===\n";
  PassInstrumentation::printTimingReport(outs(), CR.Passes,
                                         CR.FirstCorruptPass,
                                         CR.VerifyError);
  outs() << "\n=== optimized module ===\n";
  printModule(M, outs());

  // 4. Launch on the simulated GPU.
  const int Len = 1000;
  GPUDevice Dev;
  std::vector<double> HostX(Len), HostY(Len);
  for (int I = 0; I < Len; ++I) {
    HostX[I] = I;
    HostY[I] = 2 * I;
  }
  uint64_t DevX = Dev.allocateArray(HostX);
  uint64_t DevY = Dev.allocateArray(HostY);

  LaunchConfig LC;
  LC.GridDim = 8;
  LC.BlockDim = 64;
  NativeRuntimeBinding RTL =
      makeOpenMPRuntimeBinding(P.Flavor, Dev.getMachine());
  double AVal = 3.0;
  uint64_t ABits;
  std::memcpy(&ABits, &AVal, sizeof(double));
  KernelStats S =
      Dev.launchKernel(M, Kernel, LC, {ABits, DevX, DevY, Len}, RTL);

  // 5. Verify and report.
  std::vector<double> Out = Dev.downloadArray<double>(DevY, Len);
  int Errors = 0;
  for (int I = 0; I < Len; ++I)
    if (Out[I] != 3.0 * I + 2 * I)
      ++Errors;
  outs() << "\n=== launch ===\n";
  outs() << "kernel time: " << S.Milliseconds << " ms ("
         << S.Cycles << " cycles), regs/thread: " << S.RegsPerThread
         << ", errors: " << Errors << "\n";

  // 6. Archive everything as the machine-readable compile-report.
  if (argc > 1) {
    json::Value Report = buildCompileReport(P, CR, {S});
    if (Error E = writeCompileReportFile(argv[1], Report)) {
      errs() << "compile-report: " << E.message() << '\n';
      return 1;
    }
    outs() << "wrote compile-report to " << argv[1] << '\n';
  }
  return Errors == 0 && S.ok() ? 0 : 1;
}
