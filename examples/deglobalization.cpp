//===- examples/deglobalization.cpp - Fig. 4/5/6 walkthrough ---------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's Sec. IV-A walkthrough: a device function with
/// two potentially shared stack variables (Fig. 4a). Depending on the
/// calling context — main thread only (Fig. 5b) vs. parallel (Fig. 5c) —
/// HeapToStack and HeapToShared each fire or report the OMP112/OMP110/
/// OMP111 remarks shown in Fig. 8.
///
//===----------------------------------------------------------------------===//

#include "core/OpenMPOpt.h"
#include "driver/Pipeline.h"
#include "ir/AsmWriter.h"
#include "support/raw_ostream.h"

using namespace ompgpu;

namespace {

/// Builds `combine(float *ArgPtr, double *LclPtr)` from Fig. 5a: Arg is
/// handed to an unknown function, Lcl is only read.
Function *buildCombine(Module &M, bool Escaping) {
  IRContext &Ctx = M.getContext();
  Function *Unknown = M.getOrInsertFunction(
      "unknown", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}));
  Function *F = M.createFunction(
      "combine",
      Ctx.getFunctionTy(Ctx.getDoubleTy(), {Ctx.getPtrTy(), Ctx.getPtrTy()}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  if (Escaping)
    B.createCall(Unknown, {F->getArg(0)}); // Arg escapes
  Value *L = B.createLoad(Ctx.getDoubleTy(), F->getArg(1));
  Value *A = B.createLoad(Ctx.getFloatTy(), F->getArg(0));
  Value *AD = B.createFPExt(A, Ctx.getDoubleTy());
  B.createRet(B.createFAdd(L, AD));
  return F;
}

/// Builds the Fig. 4a device function with the Simplified13 lowering
/// (Fig. 4c): both locals globalized through __kmpc_alloc_shared.
Function *buildDeviceFunction(OMPCodeGen &CG, Function *Combine) {
  Module &M = CG.getModule();
  IRContext &Ctx = M.getContext();
  Function *F = M.createFunction(
      "device_function",
      Ctx.getFunctionTy(Ctx.getDoubleTy(), {Ctx.getFloatTy()}));
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  std::vector<std::function<void(IRBuilder &)>> Cleanups;
  Value *ArgPtr =
      CG.emitDeviceFnLocal(B, Ctx.getFloatTy(), "Arg", true, Cleanups);
  Value *LclPtr =
      CG.emitDeviceFnLocal(B, Ctx.getDoubleTy(), "Lcl", true, Cleanups);
  B.createStore(F->getArg(0), ArgPtr);
  B.createStore(B.getDouble(2.5), LclPtr);
  Value *R = B.createCall(Combine, {ArgPtr, LclPtr});
  OMPCodeGen::emitCleanups(B, Cleanups);
  B.createRet(R);
  return F;
}

void runScenario(const char *Title, bool CallFromParallel) {
  outs() << "\n========== " << Title << " ==========\n";
  IRContext Ctx;
  Module M(Ctx, "deglob");
  OMPCodeGen CG(M, {CodeGenScheme::Simplified13, false});
  Function *Combine = buildCombine(M, /*Escaping=*/true);
  Function *DevFn = buildDeviceFunction(CG, Combine);

  TargetRegionBuilder TRB(CG, "kernel", {Ctx.getPtrTy()},
                          ExecMode::Generic, 2, 64);
  IRBuilder &B = TRB.getBuilder();
  Argument *Out = TRB.getParam(0);
  if (CallFromParallel) {
    // Fig. 5c: device_function entered with many threads per team.
    std::vector<TargetRegionBuilder::Capture> Caps = {{Out, false, "out"}};
    TRB.emitParallelFor(
        B.getInt32(16), Caps,
        [&](IRBuilder &LB, Value *I,
            const TargetRegionBuilder::CaptureMap &Map) {
          Value *V = LB.createCall(DevFn, {LB.getFloat(1.5)});
          LB.createStore(V, LB.createGEP(Ctx.getDoubleTy(), Map.at(Out),
                                         {I}));
        });
  } else {
    // Fig. 5b: device_function entered by the main thread only.
    Value *V = B.createCall(DevFn, {B.getFloat(1.5)});
    B.createStore(V, Out);
    std::vector<TargetRegionBuilder::Capture> Caps;
    TRB.emitParallelFor(B.getInt32(16), Caps,
                        [&](IRBuilder &, Value *,
                            const TargetRegionBuilder::CaptureMap &) {});
  }
  TRB.finalize();

  PipelineOptions P = makeDevPipeline();
  CompileResult CR = optimizeDeviceModule(M, P);
  outs() << "heap-to-stack:  " << CR.Stats.HeapToStack << "\n";
  outs() << "heap-to-shared: " << CR.Stats.HeapToShared << " ("
         << CR.Stats.HeapToSharedBytes << " bytes)\n";
  outs() << "remarks (cf. Fig. 8):\n";
  CR.Remarks.print(outs());
}

} // namespace

int main() {
  // Fig. 6a: single-threaded call site -> Lcl moves to the stack, Arg to
  // static shared memory.
  runScenario("Fig. 5b: one_thread_only()", false);
  // Fig. 6b: parallel call site -> the allocations stay runtime calls and
  // the user is pointed at the problem (OMP112).
  runScenario("Fig. 5c: many_threads()", true);
  return 0;
}
