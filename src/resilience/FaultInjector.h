//===- resilience/FaultInjector.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, deterministic fault injection for chaos testing the compile
/// service and simulation harness (docs/resilience.md). A FaultPlan names a
/// splitmix64 seed, a fire rate, and an optional site whitelist; the
/// process-wide FaultInjector decides, purely as a function of
/// (seed, site, scope key, attempt), whether a given site fires — so the
/// same plan produces the same faults regardless of worker count, thread
/// schedule, or cache state, and a retried attempt (attempt + 1) sees an
/// independent decision.
///
/// Faults fire only inside an active FaultScope (a thread-local RAII
/// ambient the compile service opens around each request attempt). Code
/// outside a scope — triage, reduction, report writing — is never
/// perturbed, and every fired fault is attributable to exactly one
/// (request, attempt) pair, which is what lets the chaos CI gate assert
/// that no injected fault went unhandled.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_RESILIENCE_FAULTINJECTOR_H
#define OMPGPU_RESILIENCE_FAULTINJECTOR_H

#include "support/Error.h"
#include "support/JSON.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ompgpu {

/// The named fault sites. Keep docs/resilience.md's table in sync.
namespace faultsite {
inline constexpr const char *ServiceEmit = "service.emit";
inline constexpr const char *ServiceCompile = "service.compile";
inline constexpr const char *ServiceEvaluate = "service.evaluate";
inline constexpr const char *OracleVerdict = "oracle.verdict";
inline constexpr const char *CacheCorrupt = "cache.corrupt";
inline constexpr const char *FsRead = "fs.read";
inline constexpr const char *FsWrite = "fs.write";
inline constexpr const char *FsEnospc = "fs.enospc";
inline constexpr const char *FsExdev = "fs.exdev";
inline constexpr const char *GpusimHang = "gpusim.hang";
inline constexpr const char *GpusimRunaway = "gpusim.runaway";
} // namespace faultsite

/// Every site the injector knows, for validation and documentation.
std::vector<std::string> allFaultSites();

/// A chaos campaign's configuration, JSON round-trippable like a
/// FuzzRecipe so a failing chaos run can be replayed exactly.
struct FaultPlan {
  /// splitmix64 seed; 0 means the plan is inert (nothing ever fires).
  uint64_t Seed = 0;
  /// Fire probability per site query, in percent (0-100).
  unsigned RatePercent = 5;
  /// Sites allowed to fire; empty = all sites.
  std::vector<std::string> Sites;

  bool enabled() const { return Seed != 0 && RatePercent != 0; }

  json::Value toJSON() const;
  static Expected<FaultPlan> fromJSON(const json::Value &V);
};

/// One fired fault, as recorded by the injector.
struct FaultEvent {
  std::string Site;
  std::string ScopeKey;
  unsigned Attempt = 0;
  /// Set once a resilience policy consumed the event (retry, degradation,
  /// bypass, quarantine). Unattributed events fail the chaos gate.
  bool Attributed = false;

  json::Value toJSON() const;
};

/// Process-wide injector. Disarmed by default: shouldFire is a cheap
/// atomic load returning false, so production paths pay nothing.
class FaultInjector {
public:
  static FaultInjector &instance();

  /// Arms the injector with \p Plan and installs the FileSystem fault hook
  /// (fs.* sites). Clears previously recorded events.
  void configure(const FaultPlan &Plan);
  /// Disarms and uninstalls the FileSystem hook. Recorded events remain
  /// until resetEvents().
  void disarm();
  bool armed() const;
  FaultPlan plan() const;

  /// Decides whether \p Site fires here: armed, site enabled, an active
  /// FaultScope on this thread, and the seeded hash of
  /// (seed, site, scope key, attempt) lands under the rate. A true return
  /// records a FaultEvent.
  bool shouldFire(const char *Site);

  /// Returns (copies of) every not-yet-attributed event recorded for
  /// \p ScopeKey and marks them attributed — so a retry loop calling this
  /// once per attempt sees each event exactly once. The compile service
  /// folds the events into the outcome's resilience section.
  std::vector<FaultEvent> takeEventsForScope(const std::string &ScopeKey);

  /// Every recorded event, sorted by (scope, attempt, site) so chaos
  /// artifacts are deterministic even though recording order is not.
  std::vector<FaultEvent> allEvents() const;
  uint64_t firedCount() const;
  uint64_t unattributedCount() const;
  void resetEvents();

private:
  FaultInjector() = default;
  struct Impl;
  Impl &impl() const;
};

/// Thread-local RAII ambient naming the (request, attempt) on whose behalf
/// this thread is currently working. Deep layers (cache, file system,
/// gpusim, oracle) query the injector without signature changes; without an
/// active scope no fault ever fires.
class FaultScope {
public:
  FaultScope(std::string ScopeKey, unsigned Attempt);
  ~FaultScope();
  FaultScope(const FaultScope &) = delete;
  FaultScope &operator=(const FaultScope &) = delete;

  static bool active();
  static const std::string &scopeKey();
  static unsigned attempt();

private:
  FaultScope *Prev;
  std::string Key;
  unsigned AttemptNo;
  friend class FaultInjector;
};

} // namespace ompgpu

#endif // OMPGPU_RESILIENCE_FAULTINJECTOR_H
