//===- resilience/Resilience.h - Recovery policies ---------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recovery half of the resilience layer (docs/resilience.md): the
/// per-request retry/degradation/quarantine policy the compile service
/// applies (OMP220-OMP223), the serializer of the compile report's
/// `resilience` section (schema v6, docs/compile-report.md), and the
/// validated parsing of service worker-count and cache-directory flag
/// inputs shared by the bench drivers.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_RESILIENCE_RESILIENCE_H
#define OMPGPU_RESILIENCE_RESILIENCE_H

#include "resilience/FaultInjector.h"
#include "support/Error.h"
#include "support/JSON.h"

#include <string>
#include <vector>

namespace ompgpu {

/// How the compile service reacts to failing or transiently-faulty
/// request attempts. The default policy is inert — one attempt, no
/// degradation, no quarantine — which reproduces pre-resilience service
/// behavior exactly.
struct ResiliencePolicy {
  /// Attempts at the requested pipeline before degrading or giving up.
  /// 1 = no retry.
  unsigned MaxAttempts = 1;
  /// Deterministic capped exponential backoff between attempts:
  /// min(Cap, Base << (attempt - 1)) milliseconds.
  unsigned BackoffBaseMillis = 1;
  unsigned BackoffCapMillis = 8;
  /// After the attempt budget is exhausted, retry the request down the
  /// degradation ladder: requested pipeline -> reduced preset (recovery
  /// mode quarantines misbehaving passes, OMP221) -> reference pipeline
  /// (no openmp-opt, no cleanups). Degraded results are never cached.
  bool DegradePresets = false;
  /// After the whole ladder fails, quarantine the request id: later
  /// submissions short-circuit with a quarantined outcome (OMP223)
  /// instead of burning attempts again.
  bool QuarantinePoison = false;

  unsigned backoffMillis(unsigned Attempt) const {
    uint64_t Shift = Attempt > 0 ? Attempt - 1 : 0;
    uint64_t Ms = Shift >= 32 ? BackoffCapMillis
                              : ((uint64_t)BackoffBaseMillis << Shift);
    return (unsigned)(Ms < BackoffCapMillis ? Ms : BackoffCapMillis);
  }

  bool active() const {
    return MaxAttempts > 1 || DegradePresets || QuarantinePoison;
  }
};

/// The degradation ladder's rungs, in order.
enum class DegradationRung : unsigned {
  Requested = 0, ///< the pipeline the caller asked for
  Reduced = 1,   ///< requested + pass recovery/quarantine (OMP221)
  Reference = 2, ///< no openmp-opt, no cleanups — always-safe fallback
};

/// Rung name as reported in `resilience.degraded_to` ("" for Requested).
const char *degradationRungName(DegradationRung R);

/// Everything one request's resilience handling produced, serialized as
/// the `resilience` section of the compile report (schema v6) and the
/// outcome payload.
struct ResilienceSummary {
  /// False for direct (non-service) compiles; the section then carries
  /// only {"managed": false}.
  bool Managed = true;
  unsigned Attempts = 1;
  unsigned Retries = 0;
  DegradationRung DegradedTo = DegradationRung::Requested;
  bool Quarantined = false;
  /// Faults the injector fired on this request's behalf, all attempts.
  std::vector<FaultEvent> InjectedFaults;
  /// Remark names that applied (OMP220-OMP223), deduplicated, in order.
  std::vector<std::string> Remarks;
  /// One human-readable line per policy action, in order.
  std::vector<std::string> Actions;

  void addRemark(const std::string &Name);

  json::Value toJSON() const;
};

/// \name Validated flag inputs (shared by bench/fuzz and bench/pgo)
/// @{

/// Validates a `-*-jobs` worker-count flag value. An unset flag
/// (\p WasSet false) means "auto" and yields 0 (the service picks
/// hardware concurrency); an explicit zero or negative value is a clean
/// Expected error instead of a silent sequential fallback.
Expected<unsigned> parseWorkerCountFlag(const std::string &Flag,
                                        int64_t Value, bool WasSet);

/// Validates a `-*-cache-dir` flag value: empty is fine (in-memory
/// cache); otherwise the parent directory must already exist, so a typo
/// fails up front instead of silently writing nowhere mid-campaign.
Error validateCacheDirFlag(const std::string &Flag, const std::string &Dir);

/// @}

} // namespace ompgpu

#endif // OMPGPU_RESILIENCE_RESILIENCE_H
