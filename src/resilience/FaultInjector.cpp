//===- resilience/FaultInjector.cpp - Deterministic fault injection --------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "resilience/FaultInjector.h"

#include "support/FileSystem.h"
#include "support/Hashing.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <tuple>

using namespace ompgpu;

std::vector<std::string> ompgpu::allFaultSites() {
  return {faultsite::ServiceEmit,   faultsite::ServiceCompile,
          faultsite::ServiceEvaluate, faultsite::OracleVerdict,
          faultsite::CacheCorrupt,  faultsite::FsRead,
          faultsite::FsWrite,       faultsite::FsEnospc,
          faultsite::FsExdev,       faultsite::GpusimHang,
          faultsite::GpusimRunaway};
}

json::Value FaultPlan::toJSON() const {
  json::Value SitesV = json::Value::makeArray();
  for (const std::string &S : Sites)
    SitesV.push_back(json::Value(S));
  json::Value V = json::Value::makeObject();
  V.set("seed", Seed)
      .set("rate_percent", RatePercent)
      .set("sites", std::move(SitesV));
  return V;
}

Expected<FaultPlan> FaultPlan::fromJSON(const json::Value &V) {
  if (!V.isObject() || !V.find("seed"))
    return Error::failure("fault plan JSON: not a plan object");
  FaultPlan P;
  P.Seed = (uint64_t)V.at("seed").asInt();
  if (const json::Value *R = V.find("rate_percent")) {
    int64_t Rate = R->asInt();
    if (Rate < 0 || Rate > 100)
      return Error::failure("fault plan JSON: rate_percent out of [0,100]");
    P.RatePercent = (unsigned)Rate;
  }
  if (const json::Value *S = V.find("sites")) {
    if (!S->isArray())
      return Error::failure("fault plan JSON: sites is not an array");
    std::vector<std::string> Known = allFaultSites();
    for (const json::Value &E : S->elements()) {
      std::string Name = E.asString();
      if (std::find(Known.begin(), Known.end(), Name) == Known.end())
        return Error::failure("fault plan JSON: unknown site '" + Name + "'");
      P.Sites.push_back(std::move(Name));
    }
  }
  return P;
}

json::Value FaultEvent::toJSON() const {
  json::Value V = json::Value::makeObject();
  V.set("site", Site)
      .set("scope", ScopeKey)
      .set("attempt", Attempt)
      .set("attributed", Attributed);
  return V;
}

//===----------------------------------------------------------------------===//
// FaultScope (thread-local ambient)
//===----------------------------------------------------------------------===//

static thread_local FaultScope *CurrentScope = nullptr;

FaultScope::FaultScope(std::string ScopeKey, unsigned Attempt)
    : Prev(CurrentScope), Key(std::move(ScopeKey)), AttemptNo(Attempt) {
  CurrentScope = this;
}

FaultScope::~FaultScope() { CurrentScope = Prev; }

bool FaultScope::active() { return CurrentScope != nullptr; }

const std::string &FaultScope::scopeKey() {
  static const std::string Empty;
  return CurrentScope ? CurrentScope->Key : Empty;
}

unsigned FaultScope::attempt() {
  return CurrentScope ? CurrentScope->AttemptNo : 0;
}

//===----------------------------------------------------------------------===//
// FaultInjector
//===----------------------------------------------------------------------===//

struct FaultInjector::Impl {
  std::atomic<bool> Armed{false};
  mutable std::mutex Mu;
  FaultPlan Plan;
  std::vector<FaultEvent> Events;
};

FaultInjector::Impl &FaultInjector::impl() const {
  static Impl TheImpl;
  return TheImpl;
}

FaultInjector &FaultInjector::instance() {
  static FaultInjector TheInjector;
  return TheInjector;
}

/// The splitmix64 finalizer (same algorithm as fuzz/FuzzRNG.h): fully
/// specified, so fire decisions are identical on every platform.
static uint64_t mix64(uint64_t Z) {
  Z += 0x9e3779b97f4a7c15ULL;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// FileSystem-layer sites, routed through the hook installed by
/// configure() so support/ needs no dependency on this library.
static Error fileSystemFaultHook(const char *Op, const std::string &Path) {
  FaultInjector &FI = FaultInjector::instance();
  if (std::strcmp(Op, "read") == 0 && FI.shouldFire(faultsite::FsRead))
    return Error::failure("injected fault: fs.read on '" + Path + "'");
  if (std::strcmp(Op, "write") == 0) {
    if (FI.shouldFire(faultsite::FsEnospc))
      return Error::diskFull("injected fault: fs.enospc (disk full) on '" +
                             Path + "'");
    if (FI.shouldFire(faultsite::FsWrite))
      return Error::failure("injected fault: fs.write on '" + Path + "'");
  }
  // A non-success return for "exdev" asks writeTextFile to behave as if
  // rename failed with EXDEV, exercising the copy+fsync+unlink fallback.
  if (std::strcmp(Op, "exdev") == 0 && FI.shouldFire(faultsite::FsExdev))
    return Error::failure("injected fault: fs.exdev on '" + Path + "'");
  return Error::success();
}

void FaultInjector::configure(const FaultPlan &Plan) {
  Impl &I = impl();
  {
    std::lock_guard<std::mutex> Lock(I.Mu);
    I.Plan = Plan;
    I.Events.clear();
  }
  I.Armed.store(Plan.enabled(), std::memory_order_release);
  setFileSystemFaultHook(Plan.enabled() ? &fileSystemFaultHook : nullptr);
}

void FaultInjector::disarm() {
  Impl &I = impl();
  I.Armed.store(false, std::memory_order_release);
  setFileSystemFaultHook(nullptr);
}

bool FaultInjector::armed() const {
  return impl().Armed.load(std::memory_order_acquire);
}

FaultPlan FaultInjector::plan() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  return I.Plan;
}

bool FaultInjector::shouldFire(const char *Site) {
  Impl &I = impl();
  if (!I.Armed.load(std::memory_order_acquire))
    return false;
  if (!FaultScope::active())
    return false;

  std::lock_guard<std::mutex> Lock(I.Mu);
  if (!I.Plan.Sites.empty() &&
      std::find(I.Plan.Sites.begin(), I.Plan.Sites.end(), Site) ==
          I.Plan.Sites.end())
    return false;

  // Pure decision: no mutable counters, so the same (plan, site, scope,
  // attempt) fires identically across worker counts and thread schedules.
  uint64_t H = mix64(I.Plan.Seed ^ hashBytes(Site));
  H = mix64(H ^ hashBytes(FaultScope::scopeKey()));
  H = mix64(H ^ FaultScope::attempt());
  if (H % 100 >= I.Plan.RatePercent)
    return false;

  FaultEvent E;
  E.Site = Site;
  E.ScopeKey = FaultScope::scopeKey();
  E.Attempt = FaultScope::attempt();
  I.Events.push_back(std::move(E));
  return true;
}

std::vector<FaultEvent>
FaultInjector::takeEventsForScope(const std::string &ScopeKey) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  std::vector<FaultEvent> Out;
  // Only not-yet-attributed events: a retry loop calls this once per
  // attempt, and re-returning earlier attempts' events would both
  // double-count them and make a clean retry look faulted.
  for (FaultEvent &E : I.Events)
    if (E.ScopeKey == ScopeKey && !E.Attributed) {
      E.Attributed = true;
      Out.push_back(E);
    }
  std::sort(Out.begin(), Out.end(),
            [](const FaultEvent &A, const FaultEvent &B) {
              return std::tie(A.Attempt, A.Site) < std::tie(B.Attempt, B.Site);
            });
  return Out;
}

std::vector<FaultEvent> FaultInjector::allEvents() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  std::vector<FaultEvent> Out = I.Events;
  std::sort(Out.begin(), Out.end(),
            [](const FaultEvent &A, const FaultEvent &B) {
              return std::tie(A.ScopeKey, A.Attempt, A.Site) <
                     std::tie(B.ScopeKey, B.Attempt, B.Site);
            });
  return Out;
}

uint64_t FaultInjector::firedCount() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  return I.Events.size();
}

uint64_t FaultInjector::unattributedCount() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  uint64_t N = 0;
  for (const FaultEvent &E : I.Events)
    if (!E.Attributed)
      ++N;
  return N;
}

void FaultInjector::resetEvents() {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  I.Events.clear();
}
