//===- resilience/Resilience.cpp - Recovery policies -----------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "resilience/Resilience.h"

#include <algorithm>
#include <filesystem>

using namespace ompgpu;

const char *ompgpu::degradationRungName(DegradationRung R) {
  switch (R) {
  case DegradationRung::Requested:
    return "";
  case DegradationRung::Reduced:
    return "reduced";
  case DegradationRung::Reference:
    return "reference";
  }
  return "";
}

void ResilienceSummary::addRemark(const std::string &Name) {
  if (std::find(Remarks.begin(), Remarks.end(), Name) == Remarks.end())
    Remarks.push_back(Name);
}

json::Value ResilienceSummary::toJSON() const {
  json::Value V = json::Value::makeObject();
  if (!Managed) {
    V.set("managed", false);
    return V;
  }
  json::Value Faults = json::Value::makeArray();
  for (const FaultEvent &E : InjectedFaults)
    Faults.push_back(E.toJSON());
  json::Value RemarksV = json::Value::makeArray();
  for (const std::string &R : Remarks)
    RemarksV.push_back(json::Value(R));
  json::Value ActionsV = json::Value::makeArray();
  for (const std::string &A : Actions)
    ActionsV.push_back(json::Value(A));
  V.set("managed", true)
      .set("attempts", Attempts)
      .set("retries", Retries)
      .set("degraded_to", degradationRungName(DegradedTo))
      .set("quarantined", Quarantined)
      .set("injected_faults", std::move(Faults))
      .set("remarks", std::move(RemarksV))
      .set("actions", std::move(ActionsV));
  return V;
}

Expected<unsigned> ompgpu::parseWorkerCountFlag(const std::string &Flag,
                                                int64_t Value, bool WasSet) {
  if (!WasSet)
    return 0u; // auto: the service picks hardware concurrency
  if (Value <= 0)
    return Error::failure("-" + Flag + " must be a positive worker count " +
                          "(got " + std::to_string(Value) +
                          "); omit the flag for hardware concurrency");
  if (Value > 4096)
    return Error::failure("-" + Flag + " is implausibly large (got " +
                          std::to_string(Value) + ", max 4096)");
  return (unsigned)Value;
}

Error ompgpu::validateCacheDirFlag(const std::string &Flag,
                                   const std::string &Dir) {
  if (Dir.empty())
    return Error::success();
  std::filesystem::path P(Dir);
  std::filesystem::path Parent = P.parent_path();
  if (Parent.empty())
    return Error::success(); // relative name in the CWD
  std::error_code EC;
  if (!std::filesystem::is_directory(Parent, EC))
    return Error::failure("-" + Flag + ": parent directory '" +
                          Parent.string() + "' does not exist");
  return Error::success();
}
