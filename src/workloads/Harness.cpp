//===- workloads/Harness.cpp - Build/optimize/launch harness ---------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"
#include "ir/Module.h"
#include "rtl/DeviceRTL.h"

using namespace ompgpu;

Workload::~Workload() = default;

Function *ompgpu::emitWorkloadModule(Workload &W, Module &M,
                                     const PipelineOptions &P,
                                     bool UseCUDAKernel) {
  if (UseCUDAKernel)
    return W.buildCUDA(M);
  OMPCodeGen CG(M, CodeGenOptions{P.Scheme, /*CudaMode=*/false});
  return W.buildOpenMP(CG);
}

LaunchCheckResult ompgpu::launchAndCheckWorkload(Workload &W, Module &M,
                                                 Function *Kernel,
                                                 const PipelineOptions &P,
                                                 const HarnessOptions &Opts) {
  LaunchCheckResult R;
  // The simulated machine comes from the pipeline's architecture, so a
  // -march'd compile is always launched on the device it targeted.
  GPUDevice Dev(P.Arch.Machine);
  std::vector<uint64_t> Args = W.setupInputs(Dev);

  LaunchConfig LC;
  LC.GridDim = W.getGridDim();
  LC.BlockDim = W.getBlockDim();
  LC.Flavor = P.Flavor;
  LC.MaxSimulatedBlocks = Opts.MaxSimulatedBlocks;
  LC.Profile = Opts.Profile;

  // Model the host<->device traffic of the kernel's mapped buffers: every
  // pointer argument that names a device allocation moves its bytes per
  // the parameter's effective map kind (declared, or inferred by the
  // pipeline's MapInference stage; implicit default is tofrom). The
  // ConservativeMappings toggle forces the copy-everything baseline so
  // callers can measure the inferred mapping's win (docs/data-mapping.md).
  if (Kernel) {
    const KernelEnvironment &Env = Kernel->getKernelEnvironment();
    for (unsigned I = 0, E = Kernel->arg_size(); I != E && I < Args.size();
         ++I) {
      Argument *A = Kernel->getArg(I);
      if (!A->getType()->isPointerTy())
        continue;
      uint64_t Bytes = Dev.allocationBytes(Args[I]);
      if (!Bytes)
        continue; // scalar smuggled as pointer, or non-base address
      MappedBuffer B;
      B.Name = A->getName();
      B.Kind = Opts.ConservativeMappings ? MapKind::ToFrom
                                         : kernelParamMapping(Env, I).effective();
      B.Bytes = Bytes;
      LC.Mappings.push_back(std::move(B));
    }
  }

  NativeRuntimeBinding RTL =
      makeOpenMPRuntimeBinding(P.Flavor, Dev.getMachine());
  R.Stats = Dev.launchKernel(M, Kernel, LC, Args, RTL);

  if (R.Stats.ok() && Opts.MaxSimulatedBlocks == 0) {
    R.Checked = true;
    R.Correct = W.checkOutputs(Dev);
  }
  return R;
}

WorkloadRunResult ompgpu::runWorkload(Workload &W, const PipelineOptions &P,
                                      const HarnessOptions &Opts) {
  WorkloadRunResult R;
  R.WorkloadName = W.getName();
  R.ConfigName = P.Name;

  IRContext Ctx;
  Module M(Ctx, W.getName());

  Function *Kernel = emitWorkloadModule(W, M, P, Opts.UseCUDAKernel);
  if (!Kernel) {
    R.Stats.Trap = "workload has no CUDA version";
    return R;
  }

  // The pipeline may replace the module contents wholesale (recovery-mode
  // rollback restores a clone), so the kernel must be re-resolved by name
  // rather than held across the compile.
  std::string KernelName = Kernel->getName();
  R.Compile = optimizeDeviceModule(M, P);
  if (R.Compile.VerifyFailed) {
    R.Stats.Trap = "IR verification failed: " + R.Compile.VerifyError;
    return R;
  }
  Kernel = M.getFunction(KernelName);
  if (!Kernel) {
    R.Stats.Trap = "kernel '" + KernelName + "' lost during optimization";
    return R;
  }

  LaunchCheckResult L = launchAndCheckWorkload(W, M, Kernel, P, Opts);
  R.Stats = L.Stats;
  R.Checked = L.Checked;
  R.Correct = L.Correct;
  return R;
}

BisectResult ompgpu::bisectWorkload(Workload &W, const PipelineOptions &P,
                                    const HarnessOptions &Opts) {
  BisectModuleFactory Factory = [&](IRContext &Ctx) {
    auto M = std::make_unique<Module>(Ctx, W.getName());
    if (Opts.UseCUDAKernel) {
      W.buildCUDA(*M);
    } else {
      OMPCodeGen CG(*M, CodeGenOptions{P.Scheme, /*CudaMode=*/false});
      W.buildOpenMP(CG);
    }
    return M;
  };

  // Differential smoke run: simulate the whole grid and compare outputs
  // against the workload's reference. A probe whose IR verifies but whose
  // kernel traps or produces wrong answers is still a bad probe.
  BisectOracle Oracle = [&](Module &M, const CompileResult &) {
    std::vector<Function *> Kernels = M.kernels();
    if (Kernels.empty())
      return false;

    HarnessOptions SmokeOpts = Opts;
    SmokeOpts.MaxSimulatedBlocks = 0; // whole grid, so outputs are checked
    LaunchCheckResult L =
        launchAndCheckWorkload(W, M, Kernels.front(), P, SmokeOpts);
    return L.Stats.ok() && L.Checked && L.Correct;
  };

  return runOptBisect(Factory, P, Oracle);
}
