//===- workloads/Harness.cpp - Build/optimize/launch harness ---------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"
#include "ir/Module.h"
#include "rtl/DeviceRTL.h"

using namespace ompgpu;

Workload::~Workload() = default;

WorkloadRunResult ompgpu::runWorkload(Workload &W, const PipelineOptions &P,
                                      const HarnessOptions &Opts) {
  WorkloadRunResult R;
  R.WorkloadName = W.getName();
  R.ConfigName = P.Name;

  IRContext Ctx;
  Module M(Ctx, W.getName());

  Function *Kernel = nullptr;
  if (Opts.UseCUDAKernel) {
    Kernel = W.buildCUDA(M);
    if (!Kernel) {
      R.Stats.Trap = "workload has no CUDA version";
      return R;
    }
  } else {
    OMPCodeGen CG(M, CodeGenOptions{P.Scheme, /*CudaMode=*/false});
    Kernel = W.buildOpenMP(CG);
  }

  R.Compile = optimizeDeviceModule(M, P);
  if (R.Compile.VerifyFailed) {
    R.Stats.Trap = "IR verification failed: " + R.Compile.VerifyError;
    return R;
  }

  GPUDevice Dev(Opts.Machine);
  std::vector<uint64_t> Args = W.setupInputs(Dev);

  LaunchConfig LC;
  LC.GridDim = W.getGridDim();
  LC.BlockDim = W.getBlockDim();
  LC.Flavor = P.Flavor;
  LC.MaxSimulatedBlocks = Opts.MaxSimulatedBlocks;

  NativeRuntimeBinding RTL =
      makeOpenMPRuntimeBinding(P.Flavor, Dev.getMachine());
  R.Stats = Dev.launchKernel(M, Kernel, LC, Args, RTL);

  if (R.Stats.ok() && Opts.MaxSimulatedBlocks == 0) {
    R.Checked = true;
    R.Correct = W.checkOutputs(Dev);
  }
  return R;
}
