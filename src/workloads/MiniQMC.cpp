//===- workloads/MiniQMC.cpp - miniQMC proxy kernel ------------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// miniQMC: the batched cubic B-spline single-particle-orbital (SPO)
/// evaluation of QMCPACK (check_spo_batched). Each walker's basis
/// polynomials are computed sequentially by the team's main thread into
/// eighteen address-taken locals (value/gradient/laplacian bases and
/// index/coordinate temporaries — Fig. 9: 3 stack + 18 shared
/// opportunities), then a parallel region evaluates all orbitals. The
/// LLVM 12 front-end aggregated the eighteen into one coalesced push;
/// the paper's scheme emits eighteen __kmpc_alloc_shared calls, which is
/// why "No OpenMP Optimization" collapses to ~0.07x until HeapToShared
/// recovers it (Fig. 11d).
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"
#include "frontend/CGHelpers.h"
#include "support/OutputCompare.h"

#include <array>
#include <cmath>

using namespace ompgpu;

namespace {

constexpr int64_t LCGMul = 2806196910506780709LL;
constexpr int64_t LCGAdd = 1LL;

double hostRn(int64_t &Seed) {
  // Unsigned arithmetic: the LCG multiply wraps (signed overflow is UB).
  Seed = (int64_t)((uint64_t)Seed * (uint64_t)LCGMul + (uint64_t)LCGAdd);
  return (double)((Seed >> 12) & 0xFFFFFFFFLL) / 4294967296.0;
}

struct QMCParams {
  int NWalkers;
  int NOrbitals;
  int NX; ///< spline grid cells per dimension (knots = NX + 3)
  unsigned GridDim;
  unsigned BlockDim;
};

QMCParams getParams(ProblemSize Size) {
  if (Size == ProblemSize::Small)
    return {16, 32, 4, 4, 64};
  return {256, 64, 8, 64, 128};
}

/// Cubic B-spline basis at fractional coordinate t (host version; the
/// device emits the same expression tree for bit-identical results).
void hostBasis(double T, double *A /*4*/, double *DA /*4*/,
               double *D2A /*4*/) {
  double T1 = 1.0 - T;
  A[0] = (T1 * T1 * T1) / 6.0;
  A[1] = (3.0 * T * T * T - 6.0 * T * T + 4.0) / 6.0;
  A[2] = (-3.0 * T * T * T + 3.0 * T * T + 3.0 * T + 1.0) / 6.0;
  A[3] = (T * T * T) / 6.0;
  DA[0] = -(T1 * T1) / 2.0;
  DA[1] = (3.0 * T * T - 4.0 * T) / 2.0;
  DA[2] = (-3.0 * T * T + 2.0 * T + 1.0) / 2.0;
  DA[3] = (T * T) / 2.0;
  D2A[0] = T1;
  D2A[1] = 3.0 * T - 2.0;
  D2A[2] = -3.0 * T + 1.0;
  D2A[3] = T;
}

class MiniQMCWorkload final : public Workload {
  QMCParams P;
  std::vector<double> Coefs; ///< [(NX+3)^3][NOrbitals]
  uint64_t DevCoefs = 0, DevOut = 0;

public:
  explicit MiniQMCWorkload(ProblemSize Size) : P(getParams(Size)) {
    int Knots = P.NX + 3;
    Coefs.resize((size_t)Knots * Knots * Knots * P.NOrbitals);
    int64_t Seed = 20377;
    for (size_t I = 0; I < Coefs.size(); ++I)
      Coefs[I] = hostRn(Seed) - 0.5;
  }

  std::string getName() const override { return "miniQMC"; }
  unsigned getGridDim() const override { return P.GridDim; }
  unsigned getBlockDim() const override { return P.BlockDim; }

  /// Deterministic walker position in [0, 1)^3.
  void walkerPos(int W, double &X, double &Y, double &Z) const {
    int64_t Seed = (int64_t)W * 52837 + 11;
    X = hostRn(Seed);
    Y = hostRn(Seed);
    Z = hostRn(Seed);
  }

  double hostEval(int W, int Orb) const {
    double X, Y, Z;
    walkerPos(W, X, Y, Z);
    int Knots = P.NX + 3;
    double TX = X * P.NX, TY = Y * P.NX, TZ = Z * P.NX;
    int IX = (int)TX, IY = (int)TY, IZ = (int)TZ;
    double A[4], DA[4], D2A[4], B[4], DB[4], D2B[4], C[4], DC[4], D2C[4];
    hostBasis(TX - IX, A, DA, D2A);
    hostBasis(TY - IY, B, DB, D2B);
    hostBasis(TZ - IZ, C, DC, D2C);
    double Val = 0, Grad = 0, Lapl = 0;
    for (int I = 0; I < 4; ++I)
      for (int J = 0; J < 4; ++J)
        for (int K = 0; K < 4; ++K) {
          size_t Idx =
              ((((size_t)(IX + I) * Knots) + (IY + J)) * Knots +
               (IZ + K)) *
                  P.NOrbitals +
              Orb;
          double Cf = Coefs[Idx];
          Val += A[I] * B[J] * C[K] * Cf;
          Grad += DA[I] * B[J] * C[K] * Cf + A[I] * DB[J] * C[K] * Cf +
                  A[I] * B[J] * DC[K] * Cf;
          Lapl += D2A[I] * B[J] * C[K] * Cf + A[I] * D2B[J] * C[K] * Cf +
                  A[I] * B[J] * D2C[K] * Cf;
        }
    return Val + 0.1 * Grad + 0.01 * Lapl;
  }

  //===------------------------------------------------------------------===//
  // Device code
  //===------------------------------------------------------------------===//

  /// void eval_orbital(ptr coefs, i32 orb, i32 ix, i32 iy, i32 iz,
  ///                   ptr a, ptr b, ptr c, ptr da, ptr db, ptr dc,
  ///                   ptr d2a, ptr d2b, ptr d2c,
  ///                   ptr val, ptr grad, ptr lapl)
  Function *buildEvalOrbital(Module &M) {
    IRContext &Ctx = M.getContext();
    Type *F64 = Ctx.getDoubleTy(), *I32 = Ctx.getInt32Ty();
    PointerType *Ptr = Ctx.getPtrTy();
    std::vector<Type *> Params = {Ptr, I32, I32, I32, I32};
    for (int I = 0; I < 12; ++I)
      Params.push_back(Ptr);
    Function *F = M.createFunction(
        "eval_orbital", Ctx.getFunctionTy(Ctx.getVoidTy(), Params),
        Linkage::External);
    const char *Names[] = {"coefs", "orb", "ix", "iy", "iz",
                           "a",     "b",   "c",  "da", "db",
                           "dc",    "d2a", "d2b", "d2c",
                           "val",   "grad", "lapl"};
    for (unsigned I = 0; I < F->arg_size(); ++I) {
      F->getArg(I)->setName(Names[I]);
      if (I >= 5)
        F->getArg(I)->setNoEscapeAttr();
    }

    IRBuilder B(Ctx);
    B.setInsertPoint(F->createBlock("entry"));
    Argument *CoefsA = F->getArg(0), *Orb = F->getArg(1),
             *IX = F->getArg(2), *IY = F->getArg(3), *IZ = F->getArg(4);
    Argument *AP = F->getArg(5), *BP = F->getArg(6), *CP = F->getArg(7);
    Argument *DAP = F->getArg(8), *DBP = F->getArg(9),
             *DCP = F->getArg(10);
    Argument *D2AP = F->getArg(11), *D2BP = F->getArg(12),
             *D2CP = F->getArg(13);
    Argument *ValP = F->getArg(14), *GradP = F->getArg(15),
             *LaplP = F->getArg(16);

    B.createStore(B.getDouble(0.0), ValP);
    B.createStore(B.getDouble(0.0), GradP);
    B.createStore(B.getDouble(0.0), LaplP);

    int Knots = P.NX + 3;
    auto LoadAt = [&](IRBuilder &LB, Value *BasisP, Value *Idx,
                      const char *Name) {
      return LB.createLoad(F64, LB.createGEP(F64, BasisP, {Idx}, Name),
                           Name);
    };

    emitCountedLoop(B, B.getInt32(0), B.getInt32(4), B.getInt32(1), "i",
        [&](IRBuilder &BI, Value *I) {
      Value *AI = LoadAt(BI, AP, I, "a.i");
      Value *DAI = LoadAt(BI, DAP, I, "da.i");
      Value *D2AI = LoadAt(BI, D2AP, I, "d2a.i");
      Value *XI = BI.createAdd(IX, I, "xi");
      emitCountedLoop(BI, BI.getInt32(0), BI.getInt32(4), BI.getInt32(1),
          "j", [&](IRBuilder &BJ, Value *J) {
        Value *BJV = LoadAt(BJ, BP, J, "b.j");
        Value *DBJ = LoadAt(BJ, DBP, J, "db.j");
        Value *D2BJ = LoadAt(BJ, D2BP, J, "d2b.j");
        Value *YJ = BJ.createAdd(IY, J, "yj");
        Value *RowXY = BJ.createAdd(
            BJ.createMul(XI, BJ.getInt32(Knots), "x.k"), YJ, "xy");
        emitCountedLoop(BJ, BJ.getInt32(0), BJ.getInt32(4),
            BJ.getInt32(1), "k", [&](IRBuilder &BK, Value *K) {
          Value *CK = LoadAt(BK, CP, K, "c.k");
          Value *DCK = LoadAt(BK, DCP, K, "dc.k");
          Value *D2CK = LoadAt(BK, D2CP, K, "d2c.k");
          Value *ZK = BK.createAdd(IZ, K, "zk");
          Value *Cell = BK.createAdd(
              BK.createMul(RowXY, BK.getInt32(Knots), "xy.k"), ZK,
              "cell");
          Value *CoefIdx = BK.createAdd(
              BK.createMul(Cell, BK.getInt32(P.NOrbitals), "cell.orb"),
              Orb, "coef.idx");
          Value *Cf = BK.createLoad(
              F64, BK.createGEP(F64, CoefsA, {CoefIdx}, "coef.addr"),
              "coef");

          Value *ABC = BK.createFMul(BK.createFMul(AI, BJV, "ab"), CK,
                                     "abc");
          Value *Old = BK.createLoad(F64, ValP, "val.old");
          BK.createStore(
              BK.createFAdd(Old, BK.createFMul(ABC, Cf, "v"), "val.new"),
              ValP);

          Value *G1 = BK.createFMul(
              BK.createFMul(DAI, BJV, "dab"), CK, "dabc");
          Value *G2 = BK.createFMul(
              BK.createFMul(AI, DBJ, "adb"), CK, "adbc");
          Value *G3 = BK.createFMul(
              BK.createFMul(AI, BJV, "ab2"), DCK, "abdc");
          Value *GSum = BK.createFAdd(BK.createFAdd(G1, G2, "g12"), G3,
                                      "g");
          Value *GOld = BK.createLoad(F64, GradP, "g.old");
          BK.createStore(
              BK.createFAdd(GOld, BK.createFMul(GSum, Cf, "g.c"),
                            "g.new"),
              GradP);

          Value *L1 = BK.createFMul(
              BK.createFMul(D2AI, BJV, "l1a"), CK, "l1");
          Value *L2 = BK.createFMul(
              BK.createFMul(AI, D2BJ, "l2a"), CK, "l2");
          Value *L3 = BK.createFMul(
              BK.createFMul(AI, BJV, "l3a"), D2CK, "l3");
          Value *LSum = BK.createFAdd(BK.createFAdd(L1, L2, "l12"), L3,
                                      "l");
          Value *LOld = BK.createLoad(F64, LaplP, "l.old");
          BK.createStore(
              BK.createFAdd(LOld, BK.createFMul(LSum, Cf, "l.c"),
                            "l.new"),
              LaplP);
        });
      });
    });
    B.createRetVoid();
    return F;
  }

  /// Emits the sequential basis computation into the 18 team-scope
  /// buffers; returns {ix, iy, iz} values.
  std::array<Value *, 3> emitBasisPrep(IRBuilder &B, Value *Walker,
                                       const std::vector<Value *> &Bufs) {
    IRContext &Ctx = B.getContext();
    Type *F64 = Ctx.getDoubleTy(), *I32 = Ctx.getInt32Ty(),
         *I64 = Ctx.getInt64Ty();

    // Walker position via the LCG (three draws).
    Value *W64 = B.createSExt(Walker, I64, "w.64");
    Value *Seed = B.createAdd(
        B.createMul(W64, B.getInt64(52837), "w.m"), B.getInt64(11),
        "seed0");
    auto Draw = [&](Value *SeedIn, Value *&SeedOut, const char *Name) {
      Value *S2 = B.createAdd(
          B.createMul(SeedIn, B.getInt64(LCGMul), "lcg.m"),
          B.getInt64(LCGAdd), "lcg.a");
      SeedOut = S2;
      Value *Bits = B.createAnd(B.createLShr(S2, B.getInt64(12), "sh"),
                                B.getInt64(0xFFFFFFFFLL), "bits");
      return B.createFDiv(
          B.createCast(CastOp::SIToFP, Bits, F64, "f"),
          B.getDouble(4294967296.0), Name);
    };
    Value *S1 = nullptr, *S2 = nullptr, *S3 = nullptr;
    Value *X = Draw(Seed, S1, "x");
    Value *Y = Draw(S1, S2, "y");
    Value *Z = Draw(S2, S3, "z");

    std::array<Value *, 3> IVals;
    Value *Coords[3] = {X, Y, Z};
    for (int D = 0; D < 3; ++D) {
      Value *T = B.createFMul(Coords[D], B.getDouble((double)P.NX), "t");
      Value *IV = B.createCast(CastOp::FPToSI, T, I32, "iv");
      IVals[D] = IV;
      Value *Frac = B.createFSub(
          T, B.createCast(CastOp::SIToFP, IV, F64, "iv.f"), "frac");

      // Basis polynomials (identical expression tree to hostBasis).
      Value *T1 = B.createFSub(B.getDouble(1.0), Frac, "t1");
      Value *TT = B.createFMul(Frac, Frac, "tt");
      Value *TTT = B.createFMul(TT, Frac, "ttt");
      Value *T1T1 = B.createFMul(T1, T1, "t1t1");

      Value *A0 = B.createFDiv(B.createFMul(T1T1, T1, "t1c"),
                               B.getDouble(6.0), "a0");
      Value *A1 = B.createFDiv(
          B.createFAdd(
              B.createFSub(B.createFMul(B.getDouble(3.0), TTT, "3t3"),
                           B.createFMul(B.getDouble(6.0), TT, "6t2"),
                           "d1"),
              B.getDouble(4.0), "n1"),
          B.getDouble(6.0), "a1");
      Value *A2 = B.createFDiv(
          B.createFAdd(
              B.createFAdd(
                  B.createFSub(
                      B.createFMul(B.getDouble(-3.0), TTT, "m3t3"),
                      B.createFMul(B.getDouble(-3.0), TT, "m3t2"), "s"),
                  B.createFMul(B.getDouble(3.0), Frac, "3t"), "s2"),
              B.getDouble(1.0), "n2"),
          B.getDouble(6.0), "a2");
      Value *A3 = B.createFDiv(TTT, B.getDouble(6.0), "a3");

      Value *DA0 = B.createFDiv(
          B.createFSub(B.getDouble(0.0), T1T1, "nt1t1"), B.getDouble(2.0),
          "da0");
      Value *DA1 = B.createFDiv(
          B.createFSub(B.createFMul(B.getDouble(3.0), TT, "3tt"),
                       B.createFMul(B.getDouble(4.0), Frac, "4t"), "d"),
          B.getDouble(2.0), "da1");
      Value *DA2 = B.createFDiv(
          B.createFAdd(
              B.createFAdd(
                  B.createFMul(B.getDouble(-3.0), TT, "m3tt"),
                  B.createFMul(B.getDouble(2.0), Frac, "2t"), "s"),
              B.getDouble(1.0), "n"),
          B.getDouble(2.0), "da2");
      Value *DA3 = B.createFDiv(TT, B.getDouble(2.0), "da3");

      Value *D2A0 = T1;
      Value *D2A1 = B.createFSub(
          B.createFMul(B.getDouble(3.0), Frac, "3t.b"), B.getDouble(2.0),
          "d2a1");
      Value *D2A2 = B.createFAdd(
          B.createFMul(B.getDouble(-3.0), Frac, "m3t"), B.getDouble(1.0),
          "d2a2");
      Value *D2A3 = Frac;

      // Bufs layout: [a, b, c, da, db, dc, d2a, d2b, d2c, ...temps].
      Value *Vals[3][4] = {{A0, A1, A2, A3},
                           {DA0, DA1, DA2, DA3},
                           {D2A0, D2A1, D2A2, D2A3}};
      for (int Kind = 0; Kind < 3; ++Kind) {
        Value *Buf = Bufs[Kind * 3 + D];
        for (int L = 0; L < 4; ++L)
          B.createStore(Vals[Kind][L],
                        B.createGEP(F64, Buf, {B.getInt32(L)}, "basis"));
      }
    }

    // Temp buffers 9..17 model the proxy's coordinate/index scratch.
    for (int TmpI = 9; TmpI < 18; ++TmpI)
      B.createStore(X, B.createGEP(F64, Bufs[TmpI], {B.getInt32(0)},
                                   "tmp"));
    return IVals;
  }

  Function *buildOpenMP(OMPCodeGen &CG) override {
    Module &M = CG.getModule();
    IRContext &Ctx = M.getContext();
    Type *F64 = Ctx.getDoubleTy(), *I32 = Ctx.getInt32Ty();
    PointerType *Ptr = Ctx.getPtrTy();
    Function *Eval = buildEvalOrbital(M);

    TargetRegionBuilder TRB(CG, "spo_batched_kernel",
                            {Ptr /*coefs*/, Ptr /*out*/, I32 /*nwalkers*/},
                            ExecMode::Generic, (int)P.GridDim,
                            (int)P.BlockDim);
    Argument *CoefsA = TRB.getParam(0);
    Argument *OutA = TRB.getParam(1);
    Argument *NW = TRB.getParam(2);
    CoefsA->setName("coefs");
    OutA->setName("out");
    NW->setName("n_walkers");

    TRB.emitDistributeLoop(NW, [&](IRBuilder &B, Value *Walker) {
      // The eighteen address-taken locals of the walker scope.
      std::vector<std::pair<Type *, std::string>> VarDefs;
      const char *BasisNames[] = {"a",  "b",  "c",  "da", "db", "dc",
                                  "d2a", "d2b", "d2c"};
      for (const char *N : BasisNames)
        VarDefs.push_back({Ctx.getArrayTy(F64, 4), N});
      const char *TempNames[] = {"pos",  "frac", "gx",  "gy", "gz",
                                 "l1",   "l2",   "l3",  "tmp"};
      for (const char *N : TempNames)
        VarDefs.push_back({Ctx.getArrayTy(F64, 1), N});

      std::vector<std::function<void(IRBuilder &)>> ScopeCleanups;
      std::vector<Value *> Bufs =
          TRB.emitLocalVariableGroup(VarDefs, /*AddressTaken=*/true,
                                     &ScopeCleanups);

      std::array<Value *, 3> IVals = emitBasisPrep(B, Walker, Bufs);

      std::vector<TargetRegionBuilder::Capture> Caps = {
          {CoefsA, false, "coefs"}, {OutA, false, "out"},
          {Walker, false, "walker"},
          {IVals[0], false, "ix"},  {IVals[1], false, "iy"},
          {IVals[2], false, "iz"}};
      for (unsigned I = 0; I < 9; ++I)
        Caps.push_back({Bufs[I], true, VarDefs[I].second});

      Value *ValP = nullptr, *GradP = nullptr, *LaplP = nullptr;
      TRB.emitParallelFor(
          B.getInt32(P.NOrbitals), Caps,
          [&](IRBuilder &LB, Value *Orb,
              const TargetRegionBuilder::CaptureMap &Map) {
            std::vector<Value *> Args = {Map.at(CoefsA), Orb,
                                         Map.at(IVals[0]),
                                         Map.at(IVals[1]),
                                         Map.at(IVals[2])};
            for (unsigned I = 0; I < 9; ++I)
              Args.push_back(Map.at(Bufs[I]));
            Args.push_back(ValP);
            Args.push_back(GradP);
            Args.push_back(LaplP);
            LB.createCall(Eval, Args);

            Type *F64L = LB.getDoubleTy();
            Value *V = LB.createLoad(F64L, ValP, "val");
            Value *G = LB.createLoad(F64L, GradP, "grad");
            Value *L = LB.createLoad(F64L, LaplP, "lapl");
            Value *R = LB.createFAdd(
                V,
                LB.createFAdd(
                    LB.createFMul(LB.getDouble(0.1), G, "g.s"),
                    LB.createFMul(LB.getDouble(0.01), L, "l.s"), "gl"),
                "res");
            Value *Pos = LB.createAdd(
                LB.createMul(Map.at(Walker), LB.getInt32(P.NOrbitals),
                             "w.base"),
                Orb, "pos");
            LB.createStore(R,
                           LB.createGEP(F64L, Map.at(OutA), {Pos},
                                        "out.i"));
          },
          /*NumThreadsClause=*/-1,
          [&](IRBuilder &PB, const TargetRegionBuilder::CaptureMap &) {
            // The three per-thread address-taken accumulators
            // (Fig. 9: miniQMC heap-to-stack = 3).
            ValP = TRB.emitParallelLocalVariable(PB, F64, "val", true);
            GradP = TRB.emitParallelLocalVariable(PB, F64, "grad", true);
            LaplP = TRB.emitParallelLocalVariable(PB, F64, "lapl", true);
          });

      OMPCodeGen::emitCleanups(B, ScopeCleanups);
    });
    return TRB.finalize();
  }

  Function *buildCUDA(Module &) override {
    // The paper evaluates miniQMC as OpenMP-only (no CUDA watermark in
    // Fig. 11d).
    return nullptr;
  }

  std::vector<uint64_t> setupInputs(GPUDevice &Dev) override {
    DevCoefs = Dev.allocateArray(Coefs);
    DevOut = Dev.allocate((uint64_t)P.NWalkers * P.NOrbitals *
                          sizeof(double));
    return {DevCoefs, DevOut, (uint64_t)P.NWalkers};
  }

  bool checkOutputs(GPUDevice &Dev) override {
    std::vector<double> Out = Dev.downloadArray<double>(
        DevOut, (size_t)P.NWalkers * P.NOrbitals);
    std::vector<double> Expected((size_t)P.NWalkers * P.NOrbitals);
    for (int W = 0; W < P.NWalkers; ++W)
      for (int Orb = 0; Orb < P.NOrbitals; ++Orb)
        Expected[(size_t)W * P.NOrbitals + Orb] = hostEval(W, Orb);
    return compareOutputs(Expected, Out, /*RelTol=*/1e-9).Match;
  }
};

} // namespace

std::unique_ptr<Workload> ompgpu::createMiniQMC(ProblemSize Size) {
  return std::make_unique<MiniQMCWorkload>(Size);
}
