//===- workloads/Workload.h - Proxy application interface ------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common interface of the four ECP proxy-application kernels the paper
/// evaluates (Sec. V-A): XSBench, RSBench, SU3Bench, and miniQMC. Each
/// workload builds its main GPU kernel in the CPU-centric OpenMP style
/// the original developers wrote (plus a CUDA-style comparator), sets up
/// its inputs on the simulated device, and verifies the outputs against a
/// host reference implementation.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_WORKLOADS_WORKLOAD_H
#define OMPGPU_WORKLOADS_WORKLOAD_H

#include "frontend/OMPCodeGen.h"
#include "gpusim/Device.h"

#include <memory>
#include <string>
#include <vector>

namespace ompgpu {

/// Problem size selection, mirroring the proxies' -s flag.
enum class ProblemSize : uint8_t {
  Small, ///< test-suite sizes (every block simulated, outputs checked)
  Large, ///< benchmark sizes (sampled blocks, timing only)
};

/// One proxy application kernel.
class Workload {
public:
  virtual ~Workload();

  virtual std::string getName() const = 0;

  /// Builds the OpenMP version of the main kernel (the proxy's original,
  /// CPU-centric style) under the code-generation scheme in \p CG.
  virtual Function *buildOpenMP(OMPCodeGen &CG) = 0;

  /// Builds a CUDA-style version: a flat SPMD kernel without the OpenMP
  /// runtime, serving as the evaluation's watermark. Returns null for
  /// OpenMP-only workloads (miniQMC in the paper).
  virtual Function *buildCUDA(Module &M) = 0;

  /// Launch geometry of the main kernel.
  virtual unsigned getGridDim() const = 0;
  virtual unsigned getBlockDim() const = 0;

  /// Allocates and uploads inputs; returns the kernel argument values.
  virtual std::vector<uint64_t> setupInputs(GPUDevice &Dev) = 0;

  /// Downloads outputs and verifies them against the host reference.
  /// Only meaningful when every block was simulated.
  virtual bool checkOutputs(GPUDevice &Dev) = 0;
};

/// Factory functions for the four proxies.
std::unique_ptr<Workload> createXSBench(ProblemSize Size);
/// XSBench with inflated cross-section tables and few lookups, so the
/// modeled host<->device transfers dominate the kernel time: the testbed
/// for MapInference's minimal map clauses (docs/data-mapping.md).
std::unique_ptr<Workload> createXSBenchTransfer(ProblemSize Size);
std::unique_ptr<Workload> createRSBench(ProblemSize Size);
std::unique_ptr<Workload> createSU3Bench(ProblemSize Size);
std::unique_ptr<Workload> createMiniQMC(ProblemSize Size);

} // namespace ompgpu

#endif // OMPGPU_WORKLOADS_WORKLOAD_H
