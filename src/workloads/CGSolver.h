//===- workloads/CGSolver.h - Partitioned CG/SpMV family --------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conjugate-gradient workload family partitioned across a DeviceGroup
/// (docs/multi-device.md): CRS and ELL SpMV, axpy/xpay vector updates, a
/// Jacobi (inverse-diagonal) preconditioner, and cell-partitioned dot
/// products, all emitted as SPMD target regions and driven through a
/// bulk-synchronous host loop. The matrix is a banded SPD operator rows
/// are chunked over the group (Partition.h); the search direction is
/// rebuilt each iteration with gatherFullVector and every reduction runs
/// through groupReduceSum, so residual trajectories are bit-identical for
/// 1, 2, or 4 devices — the property tests/TestMultiDevice.cpp pins down
/// and bench/cg gates CI on.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_WORKLOADS_CGSOLVER_H
#define OMPGPU_WORKLOADS_CGSOLVER_H

#include "core/Remarks.h"
#include "driver/Pipeline.h"
#include "workloads/Partition.h"

#include <string>
#include <vector>

namespace ompgpu {

/// Sparse-matrix storage format of the SpMV kernel.
enum class CGFormat : uint8_t {
  CRS, ///< compressed row storage: rowptr/col/val
  ELL, ///< ELLPACK: fixed width, padded col/val, row-major
};

/// Returns "crs" or "ell".
const char *cgFormatName(CGFormat F);

/// One CG configuration: the device group, the compile pipeline, and the
/// matrix/solver shape. Rows and Band pick the banded SPD test operator
/// (half-bandwidth Band: every row couples to its Band neighbors on each
/// side), which moves the workload between compute-dominated and
/// transfer-dominated regimes for the bench trajectories.
struct CGOptions {
  /// Device group to partition across. An empty Devices list means one
  /// device of Pipeline.Arch.
  DeviceGroupSpec Group;
  /// Compile configuration. runCG re-applies each distinct group
  /// architecture via applyArch, compiling one module per fingerprint.
  PipelineOptions Pipeline;
  CGFormat Fmt = CGFormat::CRS;
  uint32_t Rows = 1024;
  uint32_t Band = 8;
  /// Reduction cells: fixed independent of the device count so dot
  /// products combine in one global order (bit-exactness).
  unsigned Cells = 64;
  unsigned MaxIters = 25;
  double RelTol = 1e-8;
  /// Launch shape per device (identical on every device so chunk cycles
  /// shrink as the group grows).
  unsigned GridDim = 8;
  unsigned BlockDim = 64;
  /// Seeds the right-hand side / diagonal variation of the operator.
  uint64_t Seed = 1;
  /// Completion-order perturbation for the determinism tests
  /// (DeviceGroup::setCompletionPerturbation); 0 disables.
  uint64_t PerturbSeed = 0;
};

/// Result of one partitioned CG solve.
struct CGResult {
  bool Converged = false;
  unsigned Iterations = 0;
  double InitialResidual = 0.0;
  double FinalResidual = 0.0;
  /// Residual L2 norm after every iteration — the bit-exactness witness.
  std::vector<double> Residuals;
  /// The assembled solution vector, gathered from all devices.
  std::vector<double> X;
  /// Group execution statistics (makespan, link traffic, imbalance).
  DeviceGroupStats Stats;
  /// Multi-device remarks: OMP250 (partition), OMP251 (reduction
  /// strategy), OMP252 (load-imbalance warning, missed).
  std::vector<Remark> Remarks;

  /// One compiled module per distinct architecture fingerprint.
  struct ArchCompile {
    std::string ArchName;
    PipelineOptions Opts;
    CompileResult Compile;
  };
  std::vector<ArchCompile> Compiles;

  /// Non-empty when the solve aborted (verifier failure, kernel trap).
  std::string Trap;

  /// Order-sensitive hash over iteration count and every residual and
  /// solution bit pattern: two runs agree bitwise iff the hashes agree.
  uint64_t resultHash() const;
};

/// Named bench matrix shapes (-matrix-shape=, docs/multi-device.md):
/// "compute" is a large banded operator whose per-chunk kernel cycles
/// dwarf the exchange cost (the multi-device speedup showcase), and
/// "transfer" is a small operator whose per-iteration link latency
/// dominates the makespan (the communication-fraction showcase). Returns
/// Rows/Band/Cells/MaxIters/RelTol only; callers fill Group/Pipeline/Fmt.
Expected<CGOptions> cgMatrixShape(const std::string &Shape);

/// Runs preconditioned CG on the banded SPD operator partitioned across
/// \p O.Group: compiles the kernel module once per distinct architecture,
/// uploads row chunks, then iterates gather -> SpMV -> dot -> axpy ->
/// preconditioner under the group's bulk-synchronous completion model.
/// Deterministic: the same options produce the same CGResult, and the
/// residual trajectory is independent of the device count and of any
/// completion-order perturbation.
CGResult runCG(const CGOptions &O);

} // namespace ompgpu

#endif // OMPGPU_WORKLOADS_CGSOLVER_H
