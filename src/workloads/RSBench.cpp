//===- workloads/RSBench.cpp - RSBench proxy kernel ------------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RSBench (Tramm et al.): the multipole (windowed resonance) neutron
/// cross-section kernel — the compute-bound alternative to XSBench. Each
/// lookup evaluates complex-arithmetic pole expansions plus trigonometric
/// sigT factors. The event-based OpenMP kernel carries seven address-taken
/// local buffers per event (Fig. 9: seven heap-to-stack opportunities);
/// without deglobalization their per-thread runtime allocations overflow
/// the device heap — the paper's RSBench "OoM" configuration (Fig. 11b).
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"
#include "frontend/CGHelpers.h"
#include "support/OutputCompare.h"

#include <cmath>

using namespace ompgpu;

namespace {

constexpr int64_t LCGMul = 2806196910506780709LL;
constexpr int64_t LCGAdd = 1LL;
constexpr int NumL = 16;      ///< sigT factor orders
constexpr int PolesPerWindow = 4;

double hostRn(int64_t &Seed) {
  // Unsigned arithmetic: the LCG multiply wraps (signed overflow is UB).
  Seed = (int64_t)((uint64_t)Seed * (uint64_t)LCGMul + (uint64_t)LCGAdd);
  return (double)((Seed >> 12) & 0xFFFFFFFFLL) / 4294967296.0;
}

struct RSParams {
  int NNuclides;
  int NWindows;
  int NLookups;
  int NucsPerMat;
  unsigned GridDim;
  unsigned BlockDim;
};

RSParams getParams(ProblemSize Size) {
  if (Size == ProblemSize::Small)
    return {8, 16, 512, 4, 8, 64};
  return {32, 64, 16384, 8, 128, 128};
}

class RSBenchWorkload final : public Workload {
  RSParams P;
  /// Pole data: per (nuclide, window, pole): 6 doubles
  /// (ea_re, ea_im, rt_re, rt_im, ra_re, ra_im).
  std::vector<double> Poles;
  /// Window curve fit: per (nuclide, window): 3 doubles (fitT, fitA, pad).
  std::vector<double> Fits;
  uint64_t DevPoles = 0, DevFits = 0, DevOut = 0;

public:
  explicit RSBenchWorkload(ProblemSize Size) : P(getParams(Size)) {
    buildInputs();
  }

  std::string getName() const override { return "RSBench"; }
  unsigned getGridDim() const override { return P.GridDim; }
  unsigned getBlockDim() const override { return P.BlockDim; }

  void buildInputs() {
    size_t NP = (size_t)P.NNuclides * P.NWindows * PolesPerWindow * 6;
    Poles.resize(NP);
    int64_t Seed = 1234;
    for (size_t I = 0; I < NP; ++I)
      Poles[I] = 0.1 + hostRn(Seed);
    Fits.resize((size_t)P.NNuclides * P.NWindows * 3);
    for (size_t I = 0; I < Fits.size(); ++I)
      Fits[I] = 0.05 + 0.2 * hostRn(Seed);
  }

  //===------------------------------------------------------------------===//
  // Host reference
  //===------------------------------------------------------------------===//

  void hostSigTFactors(double E, double *Factors /*2*NumL*/) const {
    // twophi_l = 2 * (l + 1) * sqrt(E) * 0.3
    double SqE = std::sqrt(E);
    for (int L = 0; L < NumL; ++L) {
      double TwoPhi = 2.0 * (L + 1) * SqE * 0.3;
      Factors[2 * L] = std::cos(TwoPhi);
      Factors[2 * L + 1] = -std::sin(TwoPhi);
    }
  }

  double hostLookup(int I) const {
    int64_t Seed = (int64_t)I * 9241 + 77;
    double E = 0.01 + 0.98 * hostRn(Seed);
    int MatBase = (int)(((uint64_t)Seed >> 9) % P.NNuclides);

    double Factors[2 * NumL];
    double SigT = 0.0, SigA = 0.0;
    for (int J = 0; J < P.NucsPerMat; ++J) {
      int Nuc = (MatBase + J * 5) % P.NNuclides;
      hostSigTFactors(E, Factors);
      int Window = (int)(E * P.NWindows);
      if (Window >= P.NWindows)
        Window = P.NWindows - 1;
      size_t FitBase = ((size_t)Nuc * P.NWindows + Window) * 3;
      double T = Fits[FitBase] * E;
      double A = Fits[FitBase + 1] * E;
      size_t PoleBase =
          ((size_t)Nuc * P.NWindows + Window) * PolesPerWindow * 6;
      for (int Pl = 0; Pl < PolesPerWindow; ++Pl) {
        const double *Po = &Poles[PoleBase + (size_t)Pl * 6];
        // psi = 1 / (ea - sqrt(E))  (complex)
        double Re = Po[0] - std::sqrt(E);
        double Im = Po[1];
        double Den = Re * Re + Im * Im;
        double PsiRe = Re / Den, PsiIm = -Im / Den;
        // cdum = psi / E
        double CRe = PsiRe / E, CIm = PsiIm / E;
        int L = Pl % NumL;
        double FRe = Factors[2 * L], FIm = Factors[2 * L + 1];
        // sigT += Re(rt * cdum * factor)
        double RtRe = Po[2], RtIm = Po[3];
        double M1Re = RtRe * CRe - RtIm * CIm;
        double M1Im = RtRe * CIm + RtIm * CRe;
        T += M1Re * FRe - M1Im * FIm;
        // sigA += Re(ra * cdum)
        double RaRe = Po[4], RaIm = Po[5];
        A += RaRe * CRe - RaIm * CIm;
      }
      SigT += T;
      SigA += A;
    }
    return SigT + SigA;
  }

  //===------------------------------------------------------------------===//
  // Device code
  //===------------------------------------------------------------------===//

  struct DeviceFns {
    Function *SigTFactors;
    Function *CalcSigXS;
  };

  DeviceFns buildDeviceFunctions(Module &M) {
    IRContext &Ctx = M.getContext();
    Type *F64 = Ctx.getDoubleTy(), *I32 = Ctx.getInt32Ty();
    PointerType *Ptr = Ctx.getPtrTy();

    // void calculate_sig_T(double E, ptr factors)
    Function *SigT = M.createFunction(
        "calculate_sig_T", Ctx.getFunctionTy(Ctx.getVoidTy(), {F64, Ptr}),
        Linkage::External);
    {
      IRBuilder B(Ctx);
      B.setInsertPoint(SigT->createBlock("entry"));
      Argument *E = SigT->getArg(0), *Out = SigT->getArg(1);
      E->setName("E");
      Out->setName("factors");
      Out->setNoEscapeAttr();
      Value *SqE = B.createMath(MathOp::Sqrt, {E}, "sqrt.e");
      emitCountedLoop(
          B, B.getInt32(0), B.getInt32(NumL), B.getInt32(1), "sigT",
          [&](IRBuilder &LB, Value *L) {
            Value *L1 = LB.createAdd(L, LB.getInt32(1), "l1");
            Value *L1F = LB.createSIToFP(L1, F64, "l1.f");
            Value *TwoPhi = LB.createFMul(
                LB.createFMul(LB.getDouble(2.0), L1F, "t1"),
                LB.createFMul(SqE, LB.getDouble(0.3), "t2"), "twophi");
            Value *C = LB.createMath(MathOp::Cos, {TwoPhi}, "cos");
            Value *S = LB.createMath(MathOp::Sin, {TwoPhi}, "sin");
            Value *NegS =
                LB.createFSub(LB.getDouble(0.0), S, "neg.sin");
            Value *Idx = LB.createMul(L, LB.getInt32(2), "idx");
            LB.createStore(C, LB.createGEP(F64, Out, {Idx}, "f.re"));
            Value *Idx1 = LB.createAdd(Idx, LB.getInt32(1), "idx1");
            LB.createStore(NegS, LB.createGEP(F64, Out, {Idx1}, "f.im"));
          });
      B.createRetVoid();
    }

    // void calculate_sig_xs(double E, i32 nuc, ptr factors, ptr sig_out,
    //                       ptr poles, ptr fits)
    // sig_out: 2 doubles (sigT, sigA) accumulated into.
    Function *Calc = M.createFunction(
        "calculate_sig_xs",
        Ctx.getFunctionTy(Ctx.getVoidTy(), {F64, I32, Ptr, Ptr, Ptr, Ptr}),
        Linkage::External);
    {
      IRBuilder B(Ctx);
      B.setInsertPoint(Calc->createBlock("entry"));
      Argument *E = Calc->getArg(0), *Nuc = Calc->getArg(1),
               *Factors = Calc->getArg(2), *SigOut = Calc->getArg(3),
               *PolesP = Calc->getArg(4), *FitsP = Calc->getArg(5);
      E->setName("E");
      Nuc->setName("nuc");
      Factors->setName("factors");
      Factors->setNoEscapeAttr();
      SigOut->setName("sig_out");
      SigOut->setNoEscapeAttr();
      PolesP->setName("poles");
      FitsP->setName("fits");

      Value *SqE = B.createMath(MathOp::Sqrt, {E}, "sqrt.e");
      // window = min((int)(E * NWindows), NWindows - 1)
      Value *WF = B.createFMul(E, B.getDouble((double)P.NWindows), "w.f");
      Value *W = B.createCast(CastOp::FPToSI, WF, I32, "w");
      Value *WMax = B.getInt32(P.NWindows - 1);
      Value *Clamped = B.createSelect(
          B.createICmp(ICmpPred::SGE, W, B.getInt32(P.NWindows), "w.over"),
          WMax, W, "window");

      Value *NucW = B.createAdd(
          B.createMul(Nuc, B.getInt32(P.NWindows), "nuc.w"), Clamped,
          "nw");
      Value *FitBase = B.createMul(NucW, B.getInt32(3), "fit.base");
      Value *FitT = B.createLoad(
          F64, B.createGEP(F64, FitsP, {FitBase}, "fitT.addr"), "fitT");
      Value *FitABase = B.createAdd(FitBase, B.getInt32(1), "fitA.idx");
      Value *FitA = B.createLoad(
          F64, B.createGEP(F64, FitsP, {FitABase}, "fitA.addr"), "fitA");

      // Accumulators kept in promotable stack slots.
      Value *TAcc = B.createAlloca(F64, "sigT.acc");
      Value *AAcc = B.createAlloca(F64, "sigA.acc");
      B.createStore(B.createFMul(FitT, E, "fitT.e"), TAcc);
      B.createStore(B.createFMul(FitA, E, "fitA.e"), AAcc);

      Value *PoleBase = B.createMul(
          NucW, B.getInt32(PolesPerWindow * 6), "pole.base");
      emitCountedLoop(
          B, B.getInt32(0), B.getInt32(PolesPerWindow), B.getInt32(1),
          "pole",
          [&](IRBuilder &LB, Value *Pl) {
            Value *Off = LB.createAdd(
                PoleBase, LB.createMul(Pl, LB.getInt32(6), "pl6"),
                "pole.off");
            auto LoadPole = [&](int K, const char *Name) {
              Value *Idx = LB.createAdd(Off, LB.getInt32(K), "idx");
              return LB.createLoad(
                  F64, LB.createGEP(F64, PolesP, {Idx}, "pole.addr"),
                  Name);
            };
            Value *EaRe = LoadPole(0, "ea.re");
            Value *EaIm = LoadPole(1, "ea.im");
            Value *Re = LB.createFSub(EaRe, SqE, "re");
            Value *Den = LB.createFAdd(
                LB.createFMul(Re, Re, "re2"),
                LB.createFMul(EaIm, EaIm, "im2"), "den");
            Value *PsiRe = LB.createFDiv(Re, Den, "psi.re");
            Value *PsiIm = LB.createFDiv(
                LB.createFSub(LB.getDouble(0.0), EaIm, "neg.im"), Den,
                "psi.im");
            Value *CRe = LB.createFDiv(PsiRe, E, "c.re");
            Value *CIm = LB.createFDiv(PsiIm, E, "c.im");

            Value *L = LB.createSRem(Pl, LB.getInt32(NumL), "l");
            Value *LIdx = LB.createMul(L, LB.getInt32(2), "l.idx");
            Value *FRe = LB.createLoad(
                F64, LB.createGEP(F64, Factors, {LIdx}, "f.re.addr"),
                "f.re");
            Value *LIdx1 = LB.createAdd(LIdx, LB.getInt32(1), "l.idx1");
            Value *FIm = LB.createLoad(
                F64, LB.createGEP(F64, Factors, {LIdx1}, "f.im.addr"),
                "f.im");

            Value *RtRe = LoadPole(2, "rt.re");
            Value *RtIm = LoadPole(3, "rt.im");
            Value *M1Re = LB.createFSub(
                LB.createFMul(RtRe, CRe, "a"),
                LB.createFMul(RtIm, CIm, "b"), "m1.re");
            Value *M1Im = LB.createFAdd(
                LB.createFMul(RtRe, CIm, "c"),
                LB.createFMul(RtIm, CRe, "d"), "m1.im");
            Value *TContrib = LB.createFSub(
                LB.createFMul(M1Re, FRe, "e1"),
                LB.createFMul(M1Im, FIm, "e2"), "t.contrib");
            Value *TOld = LB.createLoad(F64, TAcc, "t.old");
            LB.createStore(LB.createFAdd(TOld, TContrib, "t.new"), TAcc);

            Value *RaRe = LoadPole(4, "ra.re");
            Value *RaIm = LoadPole(5, "ra.im");
            Value *AContrib = LB.createFSub(
                LB.createFMul(RaRe, CRe, "f1"),
                LB.createFMul(RaIm, CIm, "f2"), "a.contrib");
            Value *AOld = LB.createLoad(F64, AAcc, "a.old");
            LB.createStore(LB.createFAdd(AOld, AContrib, "a.new"), AAcc);
          });

      // sig_out[0] += sigT; sig_out[1] += sigA
      Value *S0 = B.createGEP(F64, SigOut, {B.getInt32(0)}, "s0");
      Value *S1 = B.createGEP(F64, SigOut, {B.getInt32(1)}, "s1");
      B.createStore(B.createFAdd(B.createLoad(F64, S0, "s0.v"),
                                 B.createLoad(F64, TAcc, "t.fin"),
                                 "s0.new"),
                    S0);
      B.createStore(B.createFAdd(B.createLoad(F64, S1, "s1.v"),
                                 B.createLoad(F64, AAcc, "a.fin"),
                                 "s1.new"),
                    S1);
      B.createRetVoid();
    }

    return {SigT, Calc};
  }

  /// Per-event body shared by the OpenMP and CUDA kernels. The seven
  /// scratch pointers model RSBench's per-event buffers.
  void emitLookupBody(IRBuilder &B, Value *I, const DeviceFns &Fns,
                      Value *SeedP, Value *FactorsP, Value *SigP,
                      Value *Scratch[4], Value *PolesV, Value *FitsV,
                      Value *OutV) {
    IRContext &Ctx = B.getContext();
    Type *F64 = Ctx.getDoubleTy(), *I64 = Ctx.getInt64Ty();

    Value *I64V = B.createSExt(I, I64, "i.64");
    Value *Seed0 = B.createAdd(
        B.createMul(I64V, B.getInt64(9241), "i.mul"), B.getInt64(77),
        "seed0");
    B.createStore(Seed0, SeedP);
    // E = 0.01 + 0.98 * rn(&seed) computed inline (LCG as in XSBench).
    Value *S = B.createLoad(I64, SeedP, "s");
    Value *S2 = B.createAdd(B.createMul(S, B.getInt64(LCGMul), "m"),
                            B.getInt64(LCGAdd), "s2");
    B.createStore(S2, SeedP);
    Value *Bits = B.createAnd(B.createLShr(S2, B.getInt64(12), "sh"),
                              B.getInt64(0xFFFFFFFFLL), "bits");
    Value *R = B.createFDiv(B.createCast(CastOp::SIToFP, Bits, F64, "rf"),
                            B.getDouble(4294967296.0), "r");
    Value *E = B.createFAdd(B.getDouble(0.01),
                            B.createFMul(B.getDouble(0.98), R, "r98"),
                            "E");
    Value *MatBase64 = B.createBinOp(
        BinaryOp::URem, B.createLShr(S2, B.getInt64(9), "s.sh9"),
        B.getInt64(P.NNuclides), "mat.64");
    Value *MatBase = B.createTrunc(MatBase64, Ctx.getInt32Ty(), "mat");

    // Touch the scratch buffers once per event (they model working
    // storage RSBench keeps per lookup).
    for (int K = 0; K < 4; ++K)
      B.createStore(E, Scratch[K]);

    // sig_out = {0, 0}
    Value *S0 = B.createGEP(F64, SigP, {B.getInt32(0)}, "sig0");
    Value *S1 = B.createGEP(F64, SigP, {B.getInt32(1)}, "sig1");
    B.createStore(B.getDouble(0.0), S0);
    B.createStore(B.getDouble(0.0), S1);

    emitCountedLoop(
        B, B.getInt32(0), B.getInt32(P.NucsPerMat), B.getInt32(1),
        "nuc_loop",
        [&](IRBuilder &LB, Value *J) {
          Value *Nuc = LB.createSRem(
              LB.createAdd(MatBase,
                           LB.createMul(J, LB.getInt32(5), "j5"), "nj"),
              LB.getInt32(P.NNuclides), "nuc");
          LB.createCall(Fns.SigTFactors, {E, FactorsP});
          LB.createCall(Fns.CalcSigXS,
                        {E, Nuc, FactorsP, SigP, PolesV, FitsV});
        });

    Value *Sum = B.createFAdd(B.createLoad(F64, S0, "t"),
                              B.createLoad(F64, S1, "a"), "sum");
    B.createStore(Sum, B.createGEP(F64, OutV, {I}, "out.i"));
  }

  Function *buildOpenMP(OMPCodeGen &CG) override {
    Module &M = CG.getModule();
    IRContext &Ctx = M.getContext();
    Type *F64 = Ctx.getDoubleTy(), *I32 = Ctx.getInt32Ty(),
         *I64 = Ctx.getInt64Ty();
    PointerType *Ptr = Ctx.getPtrTy();
    DeviceFns Fns = buildDeviceFunctions(M);

    TargetRegionBuilder TRB(CG, "rs_lookup_kernel",
                            {Ptr /*poles*/, Ptr /*fits*/, Ptr /*out*/,
                             I32 /*n_lookups*/},
                            ExecMode::SPMD, (int)P.GridDim,
                            (int)P.BlockDim);
    Argument *PolesA = TRB.getParam(0);
    Argument *FitsA = TRB.getParam(1);
    Argument *OutA = TRB.getParam(2);
    Argument *NL = TRB.getParam(3);
    PolesA->setName("poles");
    FitsA->setName("fits");
    OutA->setName("out");
    NL->setName("n_lookups");

    std::vector<TargetRegionBuilder::Capture> Caps = {
        {PolesA, false, "poles"}, {FitsA, false, "fits"},
        {OutA, false, "out"}};

    // The seven address-taken per-event buffers (Fig. 9: RSBench h2s=7).
    Value *SeedP = nullptr, *FactorsP = nullptr, *SigP = nullptr;
    Value *Scratch[4] = {nullptr, nullptr, nullptr, nullptr};
    TRB.emitDistributeParallelFor(
        NL, Caps,
        [&](IRBuilder &LB, Value *I,
            const TargetRegionBuilder::CaptureMap &Map) {
          emitLookupBody(LB, I, Fns, SeedP, FactorsP, SigP, Scratch,
                         Map.at(PolesA), Map.at(FitsA), Map.at(OutA));
        },
        (int)P.BlockDim,
        [&](IRBuilder &PB, const TargetRegionBuilder::CaptureMap &) {
          FactorsP = TRB.emitParallelLocalVariable(
              PB, Ctx.getArrayTy(F64, 2 * NumL), "sigTfactors", true);
          SigP = TRB.emitParallelLocalVariable(
              PB, Ctx.getArrayTy(F64, 2), "sig_out", true);
          SeedP = TRB.emitParallelLocalVariable(PB, I64, "seed", true);
          Scratch[0] = TRB.emitParallelLocalVariable(
              PB, Ctx.getArrayTy(F64, 32), "pole_buf", true);
          Scratch[1] = TRB.emitParallelLocalVariable(
              PB, Ctx.getArrayTy(F64, 16), "window_buf", true);
          Scratch[2] = TRB.emitParallelLocalVariable(
              PB, Ctx.getArrayTy(F64, 16), "fit_buf", true);
          Scratch[3] = TRB.emitParallelLocalVariable(
              PB, Ctx.getArrayTy(F64, 8), "xs_vector", true);
        });
    return TRB.finalize();
  }

  Function *buildCUDA(Module &M) override {
    IRContext &Ctx = M.getContext();
    Type *F64 = Ctx.getDoubleTy(), *I32 = Ctx.getInt32Ty(),
         *I64 = Ctx.getInt64Ty();
    PointerType *Ptr = Ctx.getPtrTy();
    DeviceFns Fns = buildDeviceFunctions(M);

    Function *K = M.createFunction(
        "rs_lookup_kernel_cuda",
        Ctx.getFunctionTy(Ctx.getVoidTy(), {Ptr, Ptr, Ptr, I32}),
        Linkage::External);
    K->setKernel(true);
    K->getKernelEnvironment().Mode = ExecMode::SPMD;
    K->getKernelEnvironment().MaxThreads = (int)P.BlockDim;
    K->getKernelEnvironment().NumTeams = (int)P.GridDim;

    IRBuilder B(Ctx);
    B.setInsertPoint(K->createBlock("entry"));
    Value *Tid = B.createCall(getOrCreateRTFn(M, RTFn::HardwareThreadId),
                              {}, "tid");
    Value *BDim = B.createCall(
        getOrCreateRTFn(M, RTFn::HardwareNumThreads), {}, "bdim");
    Value *Blk = B.createCall(getOrCreateRTFn(M, RTFn::GetTeamNum), {},
                              "blk");
    Value *GDim = B.createCall(getOrCreateRTFn(M, RTFn::GetNumTeams), {},
                               "gdim");
    Value *Gid = B.createAdd(B.createMul(Blk, BDim, "base"), Tid, "gid");
    Value *Total = B.createMul(GDim, BDim, "total");

    Value *FactorsP = B.createAlloca(Ctx.getArrayTy(F64, 2 * NumL),
                                     "sigTfactors");
    Value *SigP = B.createAlloca(Ctx.getArrayTy(F64, 2), "sig_out");
    Value *SeedP = B.createAlloca(I64, "seed");
    Value *Scratch[4] = {
        B.createAlloca(Ctx.getArrayTy(F64, 32), "pole_buf"),
        B.createAlloca(Ctx.getArrayTy(F64, 16), "window_buf"),
        B.createAlloca(Ctx.getArrayTy(F64, 16), "fit_buf"),
        B.createAlloca(Ctx.getArrayTy(F64, 8), "xs_vector")};

    emitCountedLoop(
        B, Gid, K->getArg(3), Total, "lookup",
        [&](IRBuilder &LB, Value *I) {
          emitLookupBody(LB, I, Fns, SeedP, FactorsP, SigP, Scratch,
                         K->getArg(0), K->getArg(1), K->getArg(2));
        });
    B.createRetVoid();
    return K;
  }

  std::vector<uint64_t> setupInputs(GPUDevice &Dev) override {
    DevPoles = Dev.allocateArray(Poles);
    DevFits = Dev.allocateArray(Fits);
    DevOut = Dev.allocate((uint64_t)P.NLookups * sizeof(double));
    return {DevPoles, DevFits, DevOut, (uint64_t)P.NLookups};
  }

  bool checkOutputs(GPUDevice &Dev) override {
    std::vector<double> Out =
        Dev.downloadArray<double>(DevOut, P.NLookups);
    std::vector<double> Expected(P.NLookups);
    for (int I = 0; I < P.NLookups; ++I)
      Expected[I] = hostLookup(I);
    return compareOutputs(Expected, Out, /*RelTol=*/1e-9).Match;
  }
};

} // namespace

std::unique_ptr<Workload> ompgpu::createRSBench(ProblemSize Size) {
  return std::make_unique<RSBenchWorkload>(Size);
}
