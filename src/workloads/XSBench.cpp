//===- workloads/XSBench.cpp - XSBench proxy kernel ------------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// XSBench (Tramm et al.): the continuous-energy macroscopic neutron
/// cross-section lookup kernel of OpenMC, event-based mode. Memory bound:
/// every lookup binary-searches per-nuclide energy grids and interpolates
/// five cross sections. The OpenMP version is the proxy's CPU-centric
/// `target teams distribute parallel for` with three address-taken locals
/// per event (the macro/micro XS vectors and the RNG seed) — exactly the
/// variables Fig. 9 reports as heap-to-stack opportunities.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"
#include "frontend/CGHelpers.h"
#include "support/OutputCompare.h"

#include <cmath>

using namespace ompgpu;

namespace {

/// Deterministic 64-bit LCG shared (bit-exactly) by host and device.
constexpr int64_t LCGMul = 2806196910506780709LL;
constexpr int64_t LCGAdd = 1LL;

double hostRn(int64_t &Seed) {
  // Unsigned arithmetic: the LCG multiply wraps (signed overflow is UB).
  Seed = (int64_t)((uint64_t)Seed * (uint64_t)LCGMul + (uint64_t)LCGAdd);
  return (double)((Seed >> 12) & 0xFFFFFFFFLL) / 4294967296.0;
}

struct XSParams {
  int NIsotopes;
  int NGridpoints;
  int NLookups;
  int NumMats;
  int MaxNucs;
  unsigned GridDim;
  unsigned BlockDim;
};

XSParams getParams(ProblemSize Size) {
  if (Size == ProblemSize::Small)
    return {16, 64, 1024, 4, 6, 8, 64};
  return {64, 256, 32768, 4, 16, 128, 128};
}

/// Sizes for the transfer-dominated variant: the per-nuclide energy grids
/// are inflated while the lookup count shrinks, so the host link (not the
/// lookups) dominates the modeled time and the inferred map(to:) for the
/// read-only tables / map(from:) for the output is a measurable win over
/// copy-everything-tofrom (docs/data-mapping.md).
XSParams getTransferParams(ProblemSize Size) {
  if (Size == ProblemSize::Small)
    return {64, 256, 128, 4, 6, 2, 64};
  return {256, 1024, 2048, 4, 16, 16, 128};
}

class XSBenchWorkload final : public Workload {
  XSParams P;
  bool TransferDominated;
  // Host copies of the inputs.
  std::vector<double> Grid; ///< [iso][gridpoint][6]: energy + 5 xs values
  std::vector<int32_t> MatNumNucs;
  std::vector<int32_t> MatNucs;
  std::vector<double> MatConcs;
  // Device addresses (set by setupInputs).
  uint64_t DevGrid = 0, DevMatNumNucs = 0, DevMatNucs = 0, DevMatConcs = 0,
           DevOut = 0;

public:
  explicit XSBenchWorkload(ProblemSize Size, bool TransferDominated = false)
      : P(TransferDominated ? getTransferParams(Size) : getParams(Size)),
        TransferDominated(TransferDominated) {
    buildInputs();
  }

  std::string getName() const override {
    return TransferDominated ? "XSBenchTransfer" : "XSBench";
  }
  unsigned getGridDim() const override { return P.GridDim; }
  unsigned getBlockDim() const override { return P.BlockDim; }

  void buildInputs() {
    Grid.resize((size_t)P.NIsotopes * P.NGridpoints * 6);
    int64_t Seed = 42;
    for (int Iso = 0; Iso < P.NIsotopes; ++Iso)
      for (int G = 0; G < P.NGridpoints; ++G) {
        size_t Base = ((size_t)Iso * P.NGridpoints + G) * 6;
        Grid[Base] = (double)(G + 1) / (P.NGridpoints + 1);
        for (int K = 1; K < 6; ++K)
          Grid[Base + K] = hostRn(Seed);
      }
    MatNumNucs.resize(P.NumMats);
    MatNucs.resize((size_t)P.NumMats * P.MaxNucs);
    MatConcs.resize((size_t)P.NumMats * P.MaxNucs);
    for (int M = 0; M < P.NumMats; ++M) {
      MatNumNucs[M] = 2 + (M * 5) % (P.MaxNucs - 1);
      for (int J = 0; J < MatNumNucs[M]; ++J) {
        MatNucs[M * P.MaxNucs + J] = (M * 7 + J * 3) % P.NIsotopes;
        MatConcs[M * P.MaxNucs + J] = 0.1 + 0.03 * J + 0.05 * M;
      }
    }
  }

  //===------------------------------------------------------------------===//
  // Host reference
  //===------------------------------------------------------------------===//

  void hostLookup(int I, double *MacroXS) const {
    int64_t Seed = (int64_t)I * 4238811 + 1337;
    double E = hostRn(Seed);
    int Mat = (int)(((uint64_t)Seed >> 7) % P.NumMats);
    for (int K = 0; K < 5; ++K)
      MacroXS[K] = 0.0;
    double MicroXS[5];
    for (int J = 0; J < MatNumNucs[Mat]; ++J) {
      int Nuc = MatNucs[Mat * P.MaxNucs + J];
      double Conc = MatConcs[Mat * P.MaxNucs + J];
      hostMicroXS(E, Nuc, MicroXS);
      for (int K = 0; K < 5; ++K)
        MacroXS[K] += MicroXS[K] * Conc;
    }
  }

  void hostMicroXS(double E, int Nuc, double *MicroXS) const {
    const double *G = Grid.data() + (size_t)Nuc * P.NGridpoints * 6;
    int Lo = 0, Hi = P.NGridpoints - 1;
    while (Hi - Lo > 1) {
      int Mid = (Lo + Hi) / 2;
      if (G[Mid * 6] > E)
        Hi = Mid;
      else
        Lo = Mid;
    }
    double ELo = G[Lo * 6], EHi = G[Hi * 6];
    double F = (E - ELo) / (EHi - ELo);
    for (int K = 0; K < 5; ++K)
      MicroXS[K] = G[Lo * 6 + 1 + K] + F * (G[Hi * 6 + 1 + K] -
                                            G[Lo * 6 + 1 + K]);
  }

  //===------------------------------------------------------------------===//
  // Device functions (shared by the OpenMP and CUDA versions)
  //===------------------------------------------------------------------===//

  struct DeviceFns {
    Function *Rn;
    Function *MicroXS;
    Function *MacroXS;
  };

  DeviceFns buildDeviceFunctions(Module &M) {
    IRContext &Ctx = M.getContext();
    Type *F64 = Ctx.getDoubleTy(), *I32 = Ctx.getInt32Ty(),
         *I64 = Ctx.getInt64Ty();
    PointerType *Ptr = Ctx.getPtrTy();

    // double rn(i64* seed): advance the LCG through the seed pointer.
    Function *Rn = M.createFunction(
        "rn", Ctx.getFunctionTy(F64, {Ptr}), Linkage::External);
    {
      IRBuilder B(Ctx);
      B.setInsertPoint(Rn->createBlock("entry"));
      Argument *SeedP = Rn->getArg(0);
      SeedP->setName("seed");
      Value *S = B.createLoad(I64, SeedP, "s");
      Value *S2 = B.createAdd(
          B.createMul(S, B.getInt64(LCGMul), "s.mul"),
          B.getInt64(LCGAdd), "s.next");
      B.createStore(S2, SeedP);
      Value *Bits = B.createAnd(B.createLShr(S2, B.getInt64(12), "s.shr"),
                                B.getInt64(0xFFFFFFFFLL), "s.bits");
      Value *FV = B.createCast(CastOp::SIToFP, Bits, F64, "s.f");
      B.createRet(B.createFDiv(FV, B.getDouble(4294967296.0), "rn"));
    }

    // void calculate_micro_xs(double E, i32 nuc, ptr micro,
    //                         ptr grid, i32 n_gridpoints)
    Function *Micro = M.createFunction(
        "calculate_micro_xs",
        Ctx.getFunctionTy(Ctx.getVoidTy(), {F64, I32, Ptr, Ptr, I32}),
        Linkage::External);
    {
      IRBuilder B(Ctx);
      B.setInsertPoint(Micro->createBlock("entry"));
      Argument *E = Micro->getArg(0), *Nuc = Micro->getArg(1),
               *Out = Micro->getArg(2), *GridP = Micro->getArg(3),
               *NG = Micro->getArg(4);
      E->setName("E");
      Nuc->setName("nuc");
      Out->setName("micro_xs");
      Out->setNoEscapeAttr(); // the callee only writes through it
      GridP->setName("grid");
      NG->setName("n_gridpoints");

      Value *Base = B.createMul(Nuc, NG, "grid.base");
      Value *LoA = B.createAlloca(I32, "lo.addr");
      Value *HiA = B.createAlloca(I32, "hi.addr");
      B.createStore(B.getInt32(0), LoA);
      B.createStore(B.createSub(NG, B.getInt32(1), "ng.m1"), HiA);

      emitWhileLoop(
          B, "bsearch",
          [&](IRBuilder &CB) -> Value * {
            Value *Lo = CB.createLoad(I32, LoA, "lo");
            Value *Hi = CB.createLoad(I32, HiA, "hi");
            return CB.createICmp(ICmpPred::SGT,
                                 CB.createSub(Hi, Lo, "span"),
                                 CB.getInt32(1), "continue");
          },
          [&](IRBuilder &LB) {
            Value *Lo = LB.createLoad(I32, LoA, "lo");
            Value *Hi = LB.createLoad(I32, HiA, "hi");
            Value *Mid = LB.createSDiv(LB.createAdd(Lo, Hi, "sum"),
                                       LB.getInt32(2), "mid");
            Value *Row = LB.createAdd(Base, Mid, "row");
            Value *Idx = LB.createMul(Row, LB.getInt32(6), "idx");
            Value *EP = LB.createGEP(F64, GridP, {Idx}, "e.addr");
            Value *EMid = LB.createLoad(F64, EP, "e.mid");
            Value *IsAbove =
                LB.createFCmp(FCmpPred::OGT, EMid, E, "above");
            emitIfThenElse(
                LB, IsAbove, "bisect",
                [&](IRBuilder &TB) { TB.createStore(Mid, HiA); },
                [&](IRBuilder &EB) { EB.createStore(Mid, LoA); });
          });

      Value *Lo = B.createLoad(I32, LoA, "lo.final");
      Value *Hi = B.createLoad(I32, HiA, "hi.final");
      auto RowIdx = [&](Value *Row, int K) {
        Value *R = B.createAdd(Base, Row, "r");
        Value *I6 = B.createMul(R, B.getInt32(6), "r6");
        return B.createAdd(I6, B.getInt32(K), "r6k");
      };
      Value *ELo = B.createLoad(
          F64, B.createGEP(F64, GridP, {RowIdx(Lo, 0)}, "elo.addr"),
          "e.lo");
      Value *EHi = B.createLoad(
          F64, B.createGEP(F64, GridP, {RowIdx(Hi, 0)}, "ehi.addr"),
          "e.hi");
      Value *F = B.createFDiv(B.createFSub(E, ELo, "de"),
                              B.createFSub(EHi, ELo, "span"), "f");
      for (int K = 0; K < 5; ++K) {
        Value *XLo = B.createLoad(
            F64, B.createGEP(F64, GridP, {RowIdx(Lo, K + 1)}, "xlo.addr"),
            "x.lo");
        Value *XHi = B.createLoad(
            F64, B.createGEP(F64, GridP, {RowIdx(Hi, K + 1)}, "xhi.addr"),
            "x.hi");
        Value *Interp = B.createFAdd(
            XLo,
            B.createFMul(F, B.createFSub(XHi, XLo, "dx"), "fdx"), "xs");
        B.createStore(Interp,
                      B.createGEP(F64, Out, {B.getInt32(K)}, "out.k"));
      }
      B.createRetVoid();
    }

    // void calculate_macro_xs(double E, i32 mat, ptr macro, ptr micro,
    //     ptr grid, i32 n_gridpoints, ptr mat_num_nucs, ptr mat_nucs,
    //     ptr mat_concs, i32 max_nucs)
    Function *Macro = M.createFunction(
        "calculate_macro_xs",
        Ctx.getFunctionTy(Ctx.getVoidTy(),
                          {F64, I32, Ptr, Ptr, Ptr, I32, Ptr, Ptr, Ptr,
                           I32}),
        Linkage::External);
    {
      IRBuilder B(Ctx);
      B.setInsertPoint(Macro->createBlock("entry"));
      Argument *E = Macro->getArg(0), *Mat = Macro->getArg(1),
               *MacroP = Macro->getArg(2), *MicroP = Macro->getArg(3),
               *GridP = Macro->getArg(4), *NG = Macro->getArg(5),
               *NumNucsP = Macro->getArg(6), *NucsP = Macro->getArg(7),
               *ConcsP = Macro->getArg(8), *MaxNucs = Macro->getArg(9);
      E->setName("E");
      Mat->setName("mat");
      MacroP->setName("macro_xs");
      MacroP->setNoEscapeAttr();
      MicroP->setName("micro_xs");
      MicroP->setNoEscapeAttr();
      GridP->setName("grid");
      NG->setName("n_gridpoints");
      NumNucsP->setName("mat_num_nucs");
      NucsP->setName("mat_nucs");
      ConcsP->setName("mat_concs");
      MaxNucs->setName("max_nucs");

      for (int K = 0; K < 5; ++K)
        B.createStore(B.getDouble(0.0),
                      B.createGEP(F64, MacroP, {B.getInt32(K)}, "m.k"));

      Value *NumNucs = B.createLoad(
          I32, B.createGEP(I32, NumNucsP, {Mat}, "nn.addr"), "num_nucs");
      Value *MatBase = B.createMul(Mat, MaxNucs, "mat.base");
      emitCountedLoop(
          B, B.getInt32(0), NumNucs, B.getInt32(1), "nuc_loop",
          [&](IRBuilder &LB, Value *J) {
            Value *Slot = LB.createAdd(MatBase, J, "slot");
            Value *Nuc = LB.createLoad(
                I32, LB.createGEP(I32, NucsP, {Slot}, "nuc.addr"), "nuc");
            Value *Conc = LB.createLoad(
                F64, LB.createGEP(F64, ConcsP, {Slot}, "conc.addr"),
                "conc");
            LB.createCall(Micro, {E, Nuc, MicroP, GridP, NG});
            for (int K = 0; K < 5; ++K) {
              Value *MK = LB.createGEP(F64, MacroP, {LB.getInt32(K)},
                                       "m.k");
              Value *MicK = LB.createLoad(
                  F64,
                  LB.createGEP(F64, MicroP, {LB.getInt32(K)}, "u.k"),
                  "micro.k");
              Value *Acc = LB.createLoad(F64, MK, "macro.k");
              LB.createStore(
                  LB.createFAdd(Acc,
                                LB.createFMul(MicK, Conc, "scaled"),
                                "acc"),
                  MK);
            }
          });
      B.createRetVoid();
    }

    return {Rn, Micro, Macro};
  }

  /// Emits one lookup: seed/energy/material selection, the macroscopic
  /// lookup, and the verification store.
  void emitLookupBody(IRBuilder &B, Value *I, const DeviceFns &Fns,
                      Value *SeedP, Value *MacroP, Value *MicroP,
                      Value *GridV, Value *NumNucsV, Value *NucsV,
                      Value *ConcsV, Value *OutV) {
    IRContext &Ctx = B.getContext();
    Type *F64 = Ctx.getDoubleTy(), *I64 = Ctx.getInt64Ty();

    Value *I64V = B.createSExt(I, I64, "i.64");
    Value *Seed0 = B.createAdd(
        B.createMul(I64V, B.getInt64(4238811), "i.mul"),
        B.getInt64(1337), "seed0");
    B.createStore(Seed0, SeedP);
    Value *E = B.createCall(Fns.Rn, {SeedP}, "energy");
    Value *SeedAfter = B.createLoad(I64, SeedP, "seed1");
    Value *MatU = B.createBinOp(
        BinaryOp::URem,
        B.createLShr(SeedAfter, B.getInt64(7), "seed.shift"),
        B.getInt64(P.NumMats), "mat.64");
    Value *Mat = B.createTrunc(MatU, Ctx.getInt32Ty(), "mat");

    B.createCall(Fns.MacroXS,
                 {E, Mat, MacroP, MicroP, GridV, B.getInt32(P.NGridpoints),
                  NumNucsV, NucsV, ConcsV, B.getInt32(P.MaxNucs)});

    Value *Sum = B.getDouble(0.0);
    for (int K = 0; K < 5; ++K)
      Sum = B.createFAdd(
          Sum,
          B.createLoad(F64,
                       B.createGEP(F64, MacroP, {B.getInt32(K)}, "m.k"),
                       "macro.k"),
          "sum");
    B.createStore(Sum, B.createGEP(F64, OutV, {I}, "out.i"));
  }

  Function *buildOpenMP(OMPCodeGen &CG) override {
    Module &M = CG.getModule();
    IRContext &Ctx = M.getContext();
    Type *F64 = Ctx.getDoubleTy(), *I32 = Ctx.getInt32Ty(),
         *I64 = Ctx.getInt64Ty();
    PointerType *Ptr = Ctx.getPtrTy();
    DeviceFns Fns = buildDeviceFunctions(M);

    TargetRegionBuilder TRB(
        CG, "xs_lookup_kernel",
        {Ptr /*grid*/, Ptr /*num_nucs*/, Ptr /*nucs*/, Ptr /*concs*/,
         Ptr /*out*/, I32 /*n_lookups*/},
        ExecMode::SPMD, (int)P.GridDim, (int)P.BlockDim);
    Argument *GridA = TRB.getParam(0);
    Argument *NumNucsA = TRB.getParam(1);
    Argument *NucsA = TRB.getParam(2);
    Argument *ConcsA = TRB.getParam(3);
    Argument *OutA = TRB.getParam(4);
    Argument *NL = TRB.getParam(5);
    GridA->setName("grid");
    NumNucsA->setName("mat_num_nucs");
    NucsA->setName("mat_nucs");
    ConcsA->setName("mat_concs");
    OutA->setName("out");
    NL->setName("n_lookups");

    std::vector<TargetRegionBuilder::Capture> Caps = {
        {GridA, false, "grid"},       {NumNucsA, false, "num_nucs"},
        {NucsA, false, "nucs"},       {ConcsA, false, "concs"},
        {OutA, false, "out"}};

    // The three address-taken event-local variables (Fig. 9: XSBench has
    // three heap-to-stack opportunities).
    Value *MacroP = nullptr, *MicroP = nullptr, *SeedP = nullptr;
    TRB.emitDistributeParallelFor(
        NL, Caps,
        [&](IRBuilder &LB, Value *I,
            const TargetRegionBuilder::CaptureMap &Map) {
          emitLookupBody(LB, I, Fns, SeedP, MacroP, MicroP, Map.at(GridA),
                         Map.at(NumNucsA), Map.at(NucsA), Map.at(ConcsA),
                         Map.at(OutA));
        },
        /*NumThreadsClause=*/(int)P.BlockDim,
        [&](IRBuilder &PB, const TargetRegionBuilder::CaptureMap &) {
          MacroP = TRB.emitParallelLocalVariable(
              PB, Ctx.getArrayTy(F64, 5), "macro_xs", true);
          MicroP = TRB.emitParallelLocalVariable(
              PB, Ctx.getArrayTy(F64, 5), "micro_xs", true);
          SeedP = TRB.emitParallelLocalVariable(PB, I64, "seed", true);
        });
    return TRB.finalize();
  }

  Function *buildCUDA(Module &M) override {
    IRContext &Ctx = M.getContext();
    Type *F64 = Ctx.getDoubleTy(), *I32 = Ctx.getInt32Ty(),
         *I64 = Ctx.getInt64Ty();
    PointerType *Ptr = Ctx.getPtrTy();
    DeviceFns Fns = buildDeviceFunctions(M);

    Function *K = M.createFunction(
        "xs_lookup_kernel_cuda",
        Ctx.getFunctionTy(Ctx.getVoidTy(),
                          {Ptr, Ptr, Ptr, Ptr, Ptr, I32}),
        Linkage::External);
    K->setKernel(true);
    K->getKernelEnvironment().Mode = ExecMode::SPMD;
    K->getKernelEnvironment().MaxThreads = (int)P.BlockDim;
    K->getKernelEnvironment().NumTeams = (int)P.GridDim;

    IRBuilder B(Ctx);
    B.setInsertPoint(K->createBlock("entry"));
    Function *HwTid = getOrCreateRTFn(M, RTFn::HardwareThreadId);
    Function *HwNum = getOrCreateRTFn(M, RTFn::HardwareNumThreads);
    Function *TeamNum = getOrCreateRTFn(M, RTFn::GetTeamNum);
    Function *NumTeams = getOrCreateRTFn(M, RTFn::GetNumTeams);

    Value *Tid = B.createCall(HwTid, {}, "tid");
    Value *BDim = B.createCall(HwNum, {}, "bdim");
    Value *Blk = B.createCall(TeamNum, {}, "blk");
    Value *GDim = B.createCall(NumTeams, {}, "gdim");
    Value *Gid = B.createAdd(B.createMul(Blk, BDim, "base"), Tid, "gid");
    Value *Total = B.createMul(GDim, BDim, "total");

    Value *MacroP = B.createAlloca(Ctx.getArrayTy(F64, 5), "macro_xs");
    Value *MicroP = B.createAlloca(Ctx.getArrayTy(F64, 5), "micro_xs");
    Value *SeedP = B.createAlloca(I64, "seed");

    emitCountedLoop(
        B, Gid, K->getArg(5), Total, "lookup",
        [&](IRBuilder &LB, Value *I) {
          emitLookupBody(LB, I, Fns, SeedP, MacroP, MicroP, K->getArg(0),
                         K->getArg(1), K->getArg(2), K->getArg(3),
                         K->getArg(4));
        });
    B.createRetVoid();
    return K;
  }

  std::vector<uint64_t> setupInputs(GPUDevice &Dev) override {
    DevGrid = Dev.allocateArray(Grid);
    DevMatNumNucs = Dev.allocateArray(MatNumNucs);
    DevMatNucs = Dev.allocateArray(MatNucs);
    DevMatConcs = Dev.allocateArray(MatConcs);
    DevOut = Dev.allocate((uint64_t)P.NLookups * sizeof(double));
    return {DevGrid, DevMatNumNucs, DevMatNucs, DevMatConcs, DevOut,
            (uint64_t)P.NLookups};
  }

  bool checkOutputs(GPUDevice &Dev) override {
    std::vector<double> Out =
        Dev.downloadArray<double>(DevOut, P.NLookups);
    std::vector<double> Expected(P.NLookups);
    for (int I = 0; I < P.NLookups; ++I) {
      double Macro[5];
      hostLookup(I, Macro);
      Expected[I] = Macro[0] + Macro[1] + Macro[2] + Macro[3] + Macro[4];
    }
    return compareOutputs(Expected, Out, /*RelTol=*/1e-9).Match;
  }
};

} // namespace

std::unique_ptr<Workload> ompgpu::createXSBench(ProblemSize Size) {
  return std::make_unique<XSBenchWorkload>(Size);
}

std::unique_ptr<Workload> ompgpu::createXSBenchTransfer(ProblemSize Size) {
  return std::make_unique<XSBenchWorkload>(Size, /*TransferDominated=*/true);
}
