//===- workloads/Partition.cpp - Multi-device row partitioning -------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Partition.h"

#include <algorithm>
#include <cassert>

using namespace ompgpu;

RowPartition ompgpu::makeRowPartition(uint32_t N, unsigned Devices,
                                      unsigned Cells) {
  assert(Devices > 0 && Cells > 0 && "partition needs devices and cells");
  RowPartition P;
  P.N = N;
  P.Cells = Cells;
  P.CellSize = Cells ? (N + Cells - 1) / Cells : 0;
  if (P.CellSize == 0)
    P.CellSize = 1; // N == 0: keep row math well-defined

  unsigned Base = Cells / Devices, Rem = Cells % Devices;
  unsigned Cell = 0;
  for (unsigned I = 0; I != Devices; ++I) {
    DeviceChunk C;
    C.CellLo = Cell;
    Cell += Base + (I < Rem ? 1 : 0);
    C.CellHi = Cell;
    C.RowLo = std::min<uint64_t>((uint64_t)C.CellLo * P.CellSize, N);
    C.RowHi = std::min<uint64_t>((uint64_t)C.CellHi * P.CellSize, N);
    P.Chunks.push_back(C);
  }
  return P;
}

void ompgpu::gatherFullVector(DeviceGroup &G, const RowPartition &P,
                              const std::vector<uint64_t> &FullVecAddrs,
                              std::vector<double> &Scratch) {
  unsigned D = G.size();
  assert(FullVecAddrs.size() == D && P.Chunks.size() == D &&
         "one full-vector address per device");
  if (D <= 1)
    return;
  Scratch.resize(P.N);

  // Collect every owned chunk into the host scratch vector.
  for (unsigned S = 0; S != D; ++S) {
    const DeviceChunk &C = P.Chunks[S];
    if (!C.rows())
      continue;
    G.device(S).memcpyFromDevice(Scratch.data() + C.RowLo,
                                 FullVecAddrs[S] + (uint64_t)C.RowLo * 8,
                                 (uint64_t)C.rows() * 8);
  }

  // Scatter the missing ranges into every destination. A device with no
  // rows launches no kernels and never reads the vector, so it is not a
  // gather destination.
  for (unsigned Dst = 0; Dst != D; ++Dst) {
    if (!P.Chunks[Dst].rows())
      continue;
    for (unsigned S = 0; S != D; ++S) {
      if (S == Dst)
        continue;
      const DeviceChunk &C = P.Chunks[S];
      if (!C.rows())
        continue;
      G.device(Dst).memcpyToDevice(FullVecAddrs[Dst] + (uint64_t)C.RowLo * 8,
                                   Scratch.data() + C.RowLo,
                                   (uint64_t)C.rows() * 8);
    }
  }

  // Charge the exchange. With a direct peer link every (src, dst) pair is
  // one transfer on the peer fabric; host-staged pays one download per
  // source chunk plus one upload per missing range per destination — the
  // double hop that makes a peer-link spec an observable win.
  if (G.spec().HasPeerLink) {
    for (unsigned S = 0; S != D; ++S) {
      uint64_t Bytes = (uint64_t)P.Chunks[S].rows() * 8;
      if (!Bytes)
        continue;
      for (unsigned Dst = 0; Dst != D; ++Dst)
        if (Dst != S && P.Chunks[Dst].rows())
          G.chargePeerTransfer(S, Dst, Bytes);
    }
  } else {
    for (unsigned S = 0; S != D; ++S) {
      uint64_t Bytes = (uint64_t)P.Chunks[S].rows() * 8;
      if (Bytes)
        G.chargeHostTransfer(S, Bytes, /*ToDevice=*/false);
    }
    for (unsigned Dst = 0; Dst != D; ++Dst) {
      if (!P.Chunks[Dst].rows())
        continue;
      for (unsigned S = 0; S != D; ++S) {
        uint64_t Bytes = (uint64_t)P.Chunks[S].rows() * 8;
        if (S != Dst && Bytes)
          G.chargeHostTransfer(Dst, Bytes, /*ToDevice=*/true);
      }
    }
  }
}

double ompgpu::groupReduceSum(DeviceGroup &G, const RowPartition &P,
                              const std::vector<uint64_t> &PartialAddrs) {
  unsigned D = G.size();
  assert(PartialAddrs.size() == D && P.Chunks.size() == D &&
         "one partials address per device");

  // Download each device's owned cells. The host combine below walks the
  // cells in ascending global order, so the sum is bitwise identical for
  // any device count over the same cell partials.
  std::vector<double> Partials(P.Cells, 0.0);
  for (unsigned I = 0; I != D; ++I) {
    const DeviceChunk &C = P.Chunks[I];
    if (!C.cells())
      continue;
    G.device(I).memcpyFromDevice(Partials.data() + C.CellLo,
                                 PartialAddrs[I] + (uint64_t)C.CellLo * 8,
                                 (uint64_t)C.cells() * 8);
    G.chargeHostTransfer(I, (uint64_t)C.cells() * 8, /*ToDevice=*/false);
  }

  double Sum = 0.0;
  for (unsigned C = 0; C != P.Cells; ++C)
    Sum += Partials[C];
  return Sum;
}
