//===- workloads/SU3Bench.cpp - SU3Bench proxy kernel ----------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SU3Bench: the SU(3) complex 3x3 matrix-matrix multiply from MILC
/// lattice QCD. The evaluated "version 0" is the native CPU-style OpenMP
/// port: `target teams distribute` over lattice sites with a *tiny*
/// `parallel for` (the nine matrix elements) per site — the pathological
/// generic-mode pattern whose state-machine overhead SPMDzation removes
/// (Fig. 11c: 10.8x from SPMDzation; CUDA is ~33x the LLVM 12 baseline).
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"
#include "frontend/CGHelpers.h"
#include "support/OutputCompare.h"

#include <cmath>

using namespace ompgpu;

namespace {

struct SU3Params {
  int NSites;
  unsigned GridDim;
  unsigned BlockDim;
};

constexpr int LinksPerSite = 4;
constexpr int ElemsPerSite = LinksPerSite * 9;

SU3Params getParams(ProblemSize Size) {
  if (Size == ProblemSize::Small)
    return {32, 8, 64};
  return {4096, 128, 128};
}

class SU3BenchWorkload final : public Workload {
  SU3Params P;
  std::vector<double> A; ///< per site: 4 links x 9 complex (re/im)
  std::vector<double> B; ///< one global 3x3 complex matrix
  uint64_t DevA = 0, DevB = 0, DevC = 0;

public:
  explicit SU3BenchWorkload(ProblemSize Size) : P(getParams(Size)) {
    A.resize((size_t)P.NSites * LinksPerSite * 18);
    for (size_t I = 0; I < A.size(); ++I)
      A[I] = 0.25 + 0.001 * (double)((I * 2654435761u) % 997);
    B.resize(18);
    for (size_t I = 0; I < B.size(); ++I)
      B[I] = 0.5 + 0.01 * (double)I;
  }

  std::string getName() const override { return "SU3Bench"; }
  unsigned getGridDim() const override { return P.GridDim; }
  unsigned getBlockDim() const override { return P.BlockDim; }

  /// Host reference: C[site][link] = A[site][link] * B (complex 3x3).
  void hostSite(int Site, double *C72) const {
    for (int L = 0; L < LinksPerSite; ++L) {
      const double *As = A.data() + ((size_t)Site * LinksPerSite + L) * 18;
      double *Cs = C72 + (size_t)L * 18;
      for (int J = 0; J < 3; ++J)
        for (int K = 0; K < 3; ++K) {
          double Re = 0, Im = 0;
          for (int M = 0; M < 3; ++M) {
            double ARe = As[(J * 3 + M) * 2],
                   AIm = As[(J * 3 + M) * 2 + 1];
            double BRe = B[(M * 3 + K) * 2], BIm = B[(M * 3 + K) * 2 + 1];
            Re += ARe * BRe - AIm * BIm;
            Im += ARe * BIm + AIm * BRe;
          }
          Cs[(J * 3 + K) * 2] = Re;
          Cs[(J * 3 + K) * 2 + 1] = Im;
        }
    }
  }

  /// device: void su3_dot(ptr a_row, ptr b, i32 k, ptr out2)
  /// out2 = sum_m a_row[m] * b[m][k] (complex dot product).
  Function *buildDotFn(Module &M) {
    IRContext &Ctx = M.getContext();
    Type *F64 = Ctx.getDoubleTy(), *I32 = Ctx.getInt32Ty();
    PointerType *Ptr = Ctx.getPtrTy();
    Function *Dot = M.createFunction(
        "su3_dot", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ptr, Ptr, I32, Ptr}),
        Linkage::External);
    IRBuilder B2(Ctx);
    B2.setInsertPoint(Dot->createBlock("entry"));
    Argument *ARow = Dot->getArg(0), *BM = Dot->getArg(1),
             *K = Dot->getArg(2), *Out = Dot->getArg(3);
    ARow->setName("a_row");
    BM->setName("b");
    K->setName("k");
    Out->setName("out");
    Out->setNoEscapeAttr();

    Value *Re = B2.getDouble(0.0), *Im = B2.getDouble(0.0);
    for (int MIdx = 0; MIdx < 3; ++MIdx) {
      Value *AReP = B2.createGEP(F64, ARow, {B2.getInt32(MIdx * 2)}, "a.re");
      Value *AImP =
          B2.createGEP(F64, ARow, {B2.getInt32(MIdx * 2 + 1)}, "a.im");
      Value *ARe = B2.createLoad(F64, AReP, "a.re.v");
      Value *AIm = B2.createLoad(F64, AImP, "a.im.v");
      // b[(m*3 + k)*2]
      Value *BIdx = B2.createMul(
          B2.createAdd(B2.getInt32(MIdx * 3), K, "m3k"), B2.getInt32(2),
          "b.idx");
      Value *BRe = B2.createLoad(
          F64, B2.createGEP(F64, BM, {BIdx}, "b.re.addr"), "b.re");
      Value *BIdx1 = B2.createAdd(BIdx, B2.getInt32(1), "b.idx1");
      Value *BIm = B2.createLoad(
          F64, B2.createGEP(F64, BM, {BIdx1}, "b.im.addr"), "b.im");
      Re = B2.createFAdd(
          Re,
          B2.createFSub(B2.createFMul(ARe, BRe, "rr"),
                        B2.createFMul(AIm, BIm, "ii"), "re.c"),
          "re");
      Im = B2.createFAdd(
          Im,
          B2.createFAdd(B2.createFMul(ARe, BIm, "ri"),
                        B2.createFMul(AIm, BRe, "ir"), "im.c"),
          "im");
    }
    B2.createStore(Re, B2.createGEP(F64, Out, {B2.getInt32(0)}, "o.re"));
    B2.createStore(Im, B2.createGEP(F64, Out, {B2.getInt32(1)}, "o.im"));
    B2.createRetVoid();
    return Dot;
  }

  Function *buildOpenMP(OMPCodeGen &CG) override {
    Module &M = CG.getModule();
    IRContext &Ctx = M.getContext();
    Type *F64 = Ctx.getDoubleTy(), *I32 = Ctx.getInt32Ty();
    PointerType *Ptr = Ctx.getPtrTy();
    Function *Dot = buildDotFn(M);

    // Version 0: teams distribute over sites, parallel for over the nine
    // elements of each 3x3 result.
    TargetRegionBuilder TRB(CG, "su3_mm_kernel",
                            {Ptr /*a*/, Ptr /*b*/, Ptr /*c*/,
                             I32 /*n_sites*/},
                            ExecMode::Generic, (int)P.GridDim,
                            (int)P.BlockDim);
    Argument *AV = TRB.getParam(0);
    Argument *BV = TRB.getParam(1);
    Argument *CV = TRB.getParam(2);
    Argument *NS = TRB.getParam(3);
    AV->setName("a");
    BV->setName("b");
    CV->setName("c");
    NS->setName("n_sites");

    TRB.emitDistributeLoop(NS, [&](IRBuilder &B, Value *Site) {
      std::vector<TargetRegionBuilder::Capture> Caps = {
          {AV, false, "a"},
          {BV, false, "b"},
          {CV, false, "c"},
          {Site, false, "site"}};
      Value *DotOut = nullptr;
      TRB.emitParallelFor(
          B.getInt32(ElemsPerSite), Caps,
          [&](IRBuilder &LB, Value *El,
              const TargetRegionBuilder::CaptureMap &Map) {
            Value *Link = LB.createSDiv(El, LB.getInt32(9), "link");
            Value *El9 = LB.createSRem(El, LB.getInt32(9), "el9");
            Value *J = LB.createSDiv(El9, LB.getInt32(3), "j");
            Value *K = LB.createSRem(El9, LB.getInt32(3), "k");
            Value *SiteV = Map.at(Site);
            // a_row = &a[(site*4 + link)*18 + j*6]
            Value *MatIdx = LB.createAdd(
                LB.createMul(SiteV, LB.getInt32(LinksPerSite), "s4"),
                Link, "mat");
            Value *MatBase =
                LB.createMul(MatIdx, LB.getInt32(18), "mat.base");
            Value *RowOff = LB.createAdd(
                MatBase, LB.createMul(J, LB.getInt32(6), "j6"), "row");
            Value *ARow =
                LB.createGEP(F64, Map.at(AV), {RowOff}, "a.row");
            LB.createCall(Dot, {ARow, Map.at(BV), K, DotOut});
            // c[(site*4 + link)*18 + (j*3+k)*2] = dot
            Value *El2 = LB.createMul(El9, LB.getInt32(2), "el2");
            Value *COff = LB.createAdd(MatBase, El2, "c.off");
            Value *CRe = LB.createGEP(F64, Map.at(CV), {COff}, "c.re");
            Value *COff1 = LB.createAdd(COff, LB.getInt32(1), "c.off1");
            Value *CIm = LB.createGEP(F64, Map.at(CV), {COff1}, "c.im");
            Value *DRe = LB.createLoad(
                F64, LB.createGEP(F64, DotOut, {LB.getInt32(0)}, "d0"),
                "d.re");
            Value *DIm = LB.createLoad(
                F64, LB.createGEP(F64, DotOut, {LB.getInt32(1)}, "d1"),
                "d.im");
            LB.createStore(DRe, CRe);
            LB.createStore(DIm, CIm);
          },
          /*NumThreadsClause=*/-1,
          [&](IRBuilder &PB, const TargetRegionBuilder::CaptureMap &) {
            // Per-thread complex accumulator handed to su3_dot by
            // address — the globalized local of this benchmark.
            DotOut = TRB.emitParallelLocalVariable(
                PB, Ctx.getArrayTy(F64, 2), "dot_out", true);
          });
    });
    return TRB.finalize();
  }

  Function *buildCUDA(Module &M) override {
    IRContext &Ctx = M.getContext();
    Type *F64 = Ctx.getDoubleTy(), *I32 = Ctx.getInt32Ty();
    PointerType *Ptr = Ctx.getPtrTy();
    Function *Dot = buildDotFn(M);

    Function *K = M.createFunction(
        "su3_mm_kernel_cuda",
        Ctx.getFunctionTy(Ctx.getVoidTy(), {Ptr, Ptr, Ptr, I32}),
        Linkage::External);
    K->setKernel(true);
    K->getKernelEnvironment().Mode = ExecMode::SPMD;
    K->getKernelEnvironment().MaxThreads = (int)P.BlockDim;
    K->getKernelEnvironment().NumTeams = (int)P.GridDim;

    IRBuilder B(Ctx);
    B.setInsertPoint(K->createBlock("entry"));
    Value *Tid = B.createCall(getOrCreateRTFn(M, RTFn::HardwareThreadId),
                              {}, "tid");
    Value *BDim = B.createCall(
        getOrCreateRTFn(M, RTFn::HardwareNumThreads), {}, "bdim");
    Value *Blk = B.createCall(getOrCreateRTFn(M, RTFn::GetTeamNum), {},
                              "blk");
    Value *GDim = B.createCall(getOrCreateRTFn(M, RTFn::GetNumTeams), {},
                               "gdim");
    Value *Gid = B.createAdd(B.createMul(Blk, BDim, "base"), Tid, "gid");
    Value *Total = B.createMul(GDim, BDim, "total");
    Value *DotOut = B.createAlloca(Ctx.getArrayTy(F64, 2), "dot_out");

    // One thread per (site, link, element).
    Value *NElems =
        B.createMul(K->getArg(3), B.getInt32(ElemsPerSite), "total.elems");
    emitCountedLoop(
        B, Gid, NElems, Total, "elem",
        [&](IRBuilder &LB, Value *Flat) {
          Value *Mat = LB.createSDiv(Flat, LB.getInt32(9), "mat");
          Value *El = LB.createSRem(Flat, LB.getInt32(9), "el");
          Value *J = LB.createSDiv(El, LB.getInt32(3), "j");
          Value *KIdx = LB.createSRem(El, LB.getInt32(3), "k");
          Value *MatBase =
              LB.createMul(Mat, LB.getInt32(18), "mat.base");
          Value *RowOff = LB.createAdd(
              MatBase, LB.createMul(J, LB.getInt32(6), "j6"), "row");
          Value *ARow = LB.createGEP(F64, K->getArg(0), {RowOff}, "a.row");
          LB.createCall(Dot, {ARow, K->getArg(1), KIdx, DotOut});
          Value *El2 = LB.createMul(El, LB.getInt32(2), "el2");
          Value *COff = LB.createAdd(MatBase, El2, "c.off");
          Value *DRe = LB.createLoad(
              F64, LB.createGEP(F64, DotOut, {LB.getInt32(0)}, "d0"),
              "d.re");
          Value *DIm = LB.createLoad(
              F64, LB.createGEP(F64, DotOut, {LB.getInt32(1)}, "d1"),
              "d.im");
          LB.createStore(DRe,
                         LB.createGEP(F64, K->getArg(2), {COff}, "c.re"));
          Value *COff1 = LB.createAdd(COff, LB.getInt32(1), "c.off1");
          LB.createStore(DIm,
                         LB.createGEP(F64, K->getArg(2), {COff1},
                                      "c.im"));
        });
    B.createRetVoid();
    return K;
  }

  std::vector<uint64_t> setupInputs(GPUDevice &Dev) override {
    DevA = Dev.allocateArray(A);
    DevB = Dev.allocateArray(B);
    DevC = Dev.allocate((uint64_t)P.NSites * LinksPerSite * 18 *
                        sizeof(double));
    return {DevA, DevB, DevC, (uint64_t)P.NSites};
  }

  bool checkOutputs(GPUDevice &Dev) override {
    std::vector<double> C = Dev.downloadArray<double>(
        DevC, (size_t)P.NSites * LinksPerSite * 18);
    std::vector<double> Expected((size_t)P.NSites * LinksPerSite * 18);
    for (int Site = 0; Site < P.NSites; ++Site)
      hostSite(Site, &Expected[(size_t)Site * LinksPerSite * 18]);
    return compareOutputs(Expected, C, /*RelTol=*/1e-9).Match;
  }
};

} // namespace

std::unique_ptr<Workload> ompgpu::createSU3Bench(ProblemSize Size) {
  return std::make_unique<SU3BenchWorkload>(Size);
}
