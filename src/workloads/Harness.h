//===- workloads/Harness.h - Build/optimize/launch harness ------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives one workload through one compiler configuration: front-end
/// codegen, device pipeline, simulated launch, and output verification —
/// the measurement loop behind Fig. 9, Fig. 10 and Fig. 11.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_WORKLOADS_HARNESS_H
#define OMPGPU_WORKLOADS_HARNESS_H

#include "driver/Bisect.h"
#include "driver/Pipeline.h"
#include "gpusim/KernelStats.h"
#include "workloads/Workload.h"

namespace ompgpu {

class ProfileCollector;

/// Result of one workload x configuration measurement.
struct WorkloadRunResult {
  std::string WorkloadName;
  std::string ConfigName;
  KernelStats Stats;
  CompileResult Compile;
  bool Checked = false; ///< outputs verified (all blocks simulated)
  bool Correct = false;
};

/// Options for one run.
struct HarnessOptions {
  /// 0 simulates every block (enables output checking).
  unsigned MaxSimulatedBlocks = 0;
  /// Use the CUDA-style kernel instead of the OpenMP one.
  bool UseCUDAKernel = false;
  /// When set, the launch runs in gpusim's profiling mode and accumulates
  /// execution counters into this collector (-profile-gen, docs/pgo.md).
  ProfileCollector *Profile = nullptr;
  /// Ignore the kernel's declared/inferred ParamMappings and map every
  /// pointer argument tofrom (the copy-everything baseline). Used to
  /// measure the modeled-transfer win of MapInference
  /// (docs/data-mapping.md).
  bool ConservativeMappings = false;
};

/// Result of one simulated launch + reference check of a compiled kernel.
struct LaunchCheckResult {
  KernelStats Stats;
  bool Checked = false; ///< outputs verified (all blocks simulated)
  bool Correct = false;
};

/// Emits \p W's kernel into \p M — CUDA-style when \p UseCUDAKernel,
/// otherwise OpenMP lowering under \p P's front-end scheme — and returns
/// it (null when the workload has no CUDA version). Deterministic for a
/// given workload and scheme, which makes workload compiles cacheable by
/// IR hash; shared by runWorkload and the compile-service wiring of the
/// bench drivers (docs/compile-service.md).
Function *emitWorkloadModule(Workload &W, Module &M,
                             const PipelineOptions &P,
                             bool UseCUDAKernel = false);

/// Launches the already-compiled \p Kernel of \p M on a fresh device with
/// \p W's inputs and grid, then verifies the outputs against the
/// workload's reference when the whole grid was simulated. This is the
/// shared tail of runWorkload and of the differential-smoke oracles
/// (bisectWorkload, the fuzzing subsystem).
LaunchCheckResult launchAndCheckWorkload(Workload &W, Module &M,
                                         Function *Kernel,
                                         const PipelineOptions &P,
                                         const HarnessOptions &Opts =
                                             HarnessOptions());

/// Builds, optimizes, launches, and (optionally) checks \p W under \p P.
WorkloadRunResult runWorkload(Workload &W, const PipelineOptions &P,
                              const HarnessOptions &Opts = HarnessOptions());

/// Bisects the pipeline \p P over workload \p W: each probe rebuilds the
/// workload from scratch, compiles it under a trial -opt-bisect-limit, and
/// judges it with a gpusim differential smoke run (simulate the full grid,
/// check outputs against the workload's reference). Localizes the first
/// pass execution that breaks either the verifier or the workload's
/// observable behavior.
BisectResult bisectWorkload(Workload &W, const PipelineOptions &P,
                            const HarnessOptions &Opts = HarnessOptions());

} // namespace ompgpu

#endif // OMPGPU_WORKLOADS_HARNESS_H
