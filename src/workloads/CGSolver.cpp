//===- workloads/CGSolver.cpp - Partitioned CG/SpMV family -----------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "workloads/CGSolver.h"
#include "frontend/CGHelpers.h"
#include "frontend/OMPCodeGen.h"
#include "ir/Module.h"
#include "rtl/DeviceRTL.h"
#include "support/Hashing.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <map>

using namespace ompgpu;

const char *ompgpu::cgFormatName(CGFormat F) {
  return F == CGFormat::CRS ? "crs" : "ell";
}

Expected<CGOptions> ompgpu::cgMatrixShape(const std::string &Shape) {
  CGOptions O;
  if (Shape == "compute") {
    // Wide band, many rows: per-chunk SpMV cycles dwarf the per-iteration
    // exchange, so the group makespan scales with the device count.
    O.Rows = 16384;
    O.Band = 64;
    O.Cells = 64;
    O.MaxIters = 3;
    O.RelTol = 1e-12;
    return O;
  }
  if (Shape == "transfer") {
    // Tiny operator: the fixed host-link latency of the gather and the
    // reductions dominates the makespan (communication fraction > 1/2).
    O.Rows = 256;
    O.Band = 2;
    O.Cells = 16;
    O.MaxIters = 10;
    O.RelTol = 1e-12;
    return O;
  }
  return Error::failure("unknown matrix shape '" + Shape +
                        "' (expected compute or transfer)");
}

namespace {

//===----------------------------------------------------------------------===//
// Banded SPD operator
//===----------------------------------------------------------------------===//

// The test operator is defined pointwise by pure functions of the global
// (row, col) pair, so chunk assembly on any device produces bitwise the
// same entries as a 1-device assembly — the foundation of the
// bit-exactness guarantee.

/// Symmetric off-diagonal entry at global (R, C), R != C.
double offDiagValue(uint32_t R, uint32_t C, uint64_t Seed) {
  uint32_t Lo = std::min(R, C), Hi = std::max(R, C);
  uint64_t H = hashCombine(hashCombine(Seed, Lo), Hi);
  // In [-1, -1/8]; exact binary fractions keep the operator reproducible
  // across compilers.
  return -1.0 / (double)(1 + (unsigned)(H % 8));
}

/// Diagonal entry at global row \p R: strict diagonal dominance (sum of
/// off-diagonal magnitudes plus a positive, row-varying slack) makes the
/// operator SPD, so CG converges monotonically.
double diagValue(uint32_t R, uint32_t N, uint32_t Band, uint64_t Seed) {
  uint32_t CLo = R >= Band ? R - Band : 0;
  uint32_t CHi = std::min<uint64_t>((uint64_t)R + Band, N - 1);
  double Sum = 0.0;
  for (uint32_t C = CLo; C <= CHi; ++C)
    if (C != R)
      Sum += -offDiagValue(R, C, Seed);
  return Sum + 1.5 + 0.0625 * (double)(hashCombine(Seed ^ 0x9e37, R) % 16);
}

/// Right-hand side at global row \p R (exact binary fractions).
double rhsValue(uint32_t R, uint64_t Seed) {
  return 1.0 + 0.0625 * (double)(hashCombine(Seed ^ 0x51ed, R) % 32);
}

/// One device's assembled share of the operator.
struct ChunkData {
  // CRS (rowptr rebased to the chunk, col indices global).
  std::vector<int32_t> RowPtr, Col;
  std::vector<double> Val;
  // ELL (row-major, global width, zero padding).
  std::vector<int32_t> EllCol;
  std::vector<double> EllVal;
  std::vector<double> InvDiag, Rhs;
};

ChunkData assembleChunk(const CGOptions &O, const DeviceChunk &C,
                        uint32_t EllWidth) {
  ChunkData CD;
  uint32_t Rows = C.rows();
  CD.RowPtr.reserve(Rows + 1);
  CD.RowPtr.push_back(0);
  CD.InvDiag.reserve(Rows);
  CD.Rhs.reserve(Rows);
  if (O.Fmt == CGFormat::ELL) {
    CD.EllCol.assign((size_t)Rows * EllWidth, 0);
    CD.EllVal.assign((size_t)Rows * EllWidth, 0.0);
  }
  for (uint32_t RL = 0; RL != Rows; ++RL) {
    uint32_t R = C.RowLo + RL;
    uint32_t CLo = R >= O.Band ? R - O.Band : 0;
    uint32_t CHi = std::min<uint64_t>((uint64_t)R + O.Band, O.Rows - 1);
    uint32_t J = 0;
    for (uint32_t Col = CLo; Col <= CHi; ++Col, ++J) {
      double V = Col == R ? diagValue(R, O.Rows, O.Band, O.Seed)
                          : offDiagValue(R, Col, O.Seed);
      if (O.Fmt == CGFormat::CRS) {
        CD.Col.push_back((int32_t)Col);
        CD.Val.push_back(V);
      } else {
        CD.EllCol[(size_t)RL * EllWidth + J] = (int32_t)Col;
        CD.EllVal[(size_t)RL * EllWidth + J] = V;
      }
    }
    CD.RowPtr.push_back(CD.RowPtr.back() + (int32_t)(CHi - CLo + 1));
    CD.InvDiag.push_back(1.0 / diagValue(R, O.Rows, O.Band, O.Seed));
    CD.Rhs.push_back(rhsValue(R, O.Seed));
  }
  return CD;
}

//===----------------------------------------------------------------------===//
// Kernel emission
//===----------------------------------------------------------------------===//

struct CGKernelNames {
  static constexpr const char *SpmvCrs = "cg_spmv_crs";
  static constexpr const char *SpmvEll = "cg_spmv_ell";
  static constexpr const char *Axpy = "cg_axpy";
  static constexpr const char *Xpay = "cg_xpay";
  static constexpr const char *Jacobi = "cg_jacobi";
  static constexpr const char *Dot = "cg_dot";
};

using Capture = TargetRegionBuilder::Capture;
using CaptureMap = TargetRegionBuilder::CaptureMap;

/// y[r] = sum over the row's nonzeros of val[k] * x[col[k]] — CRS layout,
/// one sequential row per league thread (rows are the parallel dimension,
/// exactly like the reference CG implementations' row loop).
void buildSpmvCrs(OMPCodeGen &CG, unsigned BlockDim) {
  Module &M = CG.getModule();
  IRContext &Ctx = M.getContext();
  Type *F64 = Ctx.getDoubleTy(), *I32 = Ctx.getInt32Ty();
  PointerType *Ptr = Ctx.getPtrTy();

  TargetRegionBuilder TRB(CG, CGKernelNames::SpmvCrs,
                          {Ptr, Ptr, Ptr, Ptr, Ptr, I32}, ExecMode::SPMD,
                          /*NumTeams=*/-1, (int)BlockDim);
  Argument *RowPtr = TRB.getParam(0), *Col = TRB.getParam(1),
           *Val = TRB.getParam(2), *X = TRB.getParam(3),
           *Y = TRB.getParam(4), *NRows = TRB.getParam(5);
  RowPtr->setName("rowptr");
  Col->setName("col");
  Val->setName("val");
  X->setName("x");
  Y->setName("y");
  Y->setNoEscapeAttr();
  NRows->setName("nrows");
  TRB.setParamMapKind(0, MapKind::To);
  TRB.setParamMapKind(1, MapKind::To);
  TRB.setParamMapKind(2, MapKind::To);
  TRB.setParamMapKind(3, MapKind::To);
  TRB.setParamMapKind(4, MapKind::From);

  Value *SumP = nullptr;
  TRB.emitDistributeParallelFor(
      NRows, {{RowPtr, false, "rowptr"}, {Col, false, "col"},
              {Val, false, "val"}, {X, false, "x"}, {Y, false, "y"}},
      [&](IRBuilder &B, Value *R, const CaptureMap &Map) {
        Value *RpLo = B.createLoad(
            I32, B.createGEP(I32, Map.at(RowPtr), {R}, "rp.lo.addr"),
            "rp.lo");
        Value *R1 = B.createAdd(R, B.getInt32(1), "r1");
        Value *RpHi = B.createLoad(
            I32, B.createGEP(I32, Map.at(RowPtr), {R1}, "rp.hi.addr"),
            "rp.hi");
        B.createStore(B.getDouble(0.0), SumP);
        emitCountedLoop(
            B, RpLo, RpHi, B.getInt32(1), "nz",
            [&](IRBuilder &LB, Value *K) {
              Value *Cv = LB.createLoad(
                  I32, LB.createGEP(I32, Map.at(Col), {K}, "c.addr"), "c");
              Value *Vv = LB.createLoad(
                  F64, LB.createGEP(F64, Map.at(Val), {K}, "v.addr"), "v");
              Value *Xv = LB.createLoad(
                  F64, LB.createGEP(F64, Map.at(X), {Cv}, "x.addr"), "xv");
              Value *S = LB.createLoad(F64, SumP, "s");
              LB.createStore(
                  LB.createFAdd(S, LB.createFMul(Vv, Xv, "vx"), "s.next"),
                  SumP);
            });
        Value *S = B.createLoad(F64, SumP, "row.sum");
        B.createStore(S, B.createGEP(F64, Map.at(Y), {R}, "y.addr"));
      },
      (int)BlockDim,
      [&](IRBuilder &PB, const CaptureMap &) {
        SumP = TRB.emitParallelLocalVariable(PB, F64, "sum", false);
      });
  TRB.finalize();
}

/// ELL SpMV: fixed global width, row-major, zero padding. The width is
/// computed over ALL rows (not just the chunk), so the padded arithmetic
/// per row is identical under any chunking.
void buildSpmvEll(OMPCodeGen &CG, unsigned BlockDim) {
  Module &M = CG.getModule();
  IRContext &Ctx = M.getContext();
  Type *F64 = Ctx.getDoubleTy(), *I32 = Ctx.getInt32Ty();
  PointerType *Ptr = Ctx.getPtrTy();

  TargetRegionBuilder TRB(CG, CGKernelNames::SpmvEll,
                          {Ptr, Ptr, Ptr, Ptr, I32, I32}, ExecMode::SPMD,
                          /*NumTeams=*/-1, (int)BlockDim);
  Argument *Col = TRB.getParam(0), *Val = TRB.getParam(1),
           *X = TRB.getParam(2), *Y = TRB.getParam(3),
           *NRows = TRB.getParam(4), *Width = TRB.getParam(5);
  Col->setName("col");
  Val->setName("val");
  X->setName("x");
  Y->setName("y");
  Y->setNoEscapeAttr();
  NRows->setName("nrows");
  Width->setName("ell_width");
  TRB.setParamMapKind(0, MapKind::To);
  TRB.setParamMapKind(1, MapKind::To);
  TRB.setParamMapKind(2, MapKind::To);
  TRB.setParamMapKind(3, MapKind::From);

  Value *SumP = nullptr;
  TRB.emitDistributeParallelFor(
      NRows, {{Col, false, "col"}, {Val, false, "val"}, {X, false, "x"},
              {Y, false, "y"}, {Width, false, "width"}},
      [&](IRBuilder &B, Value *R, const CaptureMap &Map) {
        Value *W = Map.at(Width);
        Value *Base = B.createMul(R, W, "row.base");
        B.createStore(B.getDouble(0.0), SumP);
        emitCountedLoop(
            B, B.getInt32(0), W, B.getInt32(1), "ell",
            [&](IRBuilder &LB, Value *J) {
              Value *K = LB.createAdd(Base, J, "k");
              Value *Cv = LB.createLoad(
                  I32, LB.createGEP(I32, Map.at(Col), {K}, "c.addr"), "c");
              Value *Vv = LB.createLoad(
                  F64, LB.createGEP(F64, Map.at(Val), {K}, "v.addr"), "v");
              Value *Xv = LB.createLoad(
                  F64, LB.createGEP(F64, Map.at(X), {Cv}, "x.addr"), "xv");
              Value *S = LB.createLoad(F64, SumP, "s");
              LB.createStore(
                  LB.createFAdd(S, LB.createFMul(Vv, Xv, "vx"), "s.next"),
                  SumP);
            });
        Value *S = B.createLoad(F64, SumP, "row.sum");
        B.createStore(S, B.createGEP(F64, Map.at(Y), {R}, "y.addr"));
      },
      (int)BlockDim,
      [&](IRBuilder &PB, const CaptureMap &) {
        SumP = TRB.emitParallelLocalVariable(PB, F64, "sum", false);
      });
  TRB.finalize();
}

/// y[i] += a * x[i].
void buildAxpy(OMPCodeGen &CG, unsigned BlockDim) {
  Module &M = CG.getModule();
  IRContext &Ctx = M.getContext();
  Type *F64 = Ctx.getDoubleTy(), *I32 = Ctx.getInt32Ty();
  PointerType *Ptr = Ctx.getPtrTy();

  TargetRegionBuilder TRB(CG, CGKernelNames::Axpy, {Ptr, Ptr, F64, I32},
                          ExecMode::SPMD, /*NumTeams=*/-1, (int)BlockDim);
  Argument *Y = TRB.getParam(0), *X = TRB.getParam(1),
           *A = TRB.getParam(2), *N = TRB.getParam(3);
  Y->setName("y");
  Y->setNoEscapeAttr();
  X->setName("x");
  A->setName("a");
  N->setName("n");
  TRB.setParamMapKind(0, MapKind::ToFrom);
  TRB.setParamMapKind(1, MapKind::To);

  TRB.emitDistributeParallelFor(
      N, {{Y, false, "y"}, {X, false, "x"}, {A, false, "a"}},
      [&](IRBuilder &B, Value *I, const CaptureMap &Map) {
        Value *Yp = B.createGEP(F64, Map.at(Y), {I}, "y.addr");
        Value *Xv = B.createLoad(
            F64, B.createGEP(F64, Map.at(X), {I}, "x.addr"), "xv");
        Value *Yv = B.createLoad(F64, Yp, "yv");
        B.createStore(
            B.createFAdd(Yv, B.createFMul(Map.at(A), Xv, "ax"), "sum"), Yp);
      },
      (int)BlockDim);
  TRB.finalize();
}

/// y[i] = x[i] + a * y[i] (the CG search-direction update).
void buildXpay(OMPCodeGen &CG, unsigned BlockDim) {
  Module &M = CG.getModule();
  IRContext &Ctx = M.getContext();
  Type *F64 = Ctx.getDoubleTy(), *I32 = Ctx.getInt32Ty();
  PointerType *Ptr = Ctx.getPtrTy();

  TargetRegionBuilder TRB(CG, CGKernelNames::Xpay, {Ptr, Ptr, F64, I32},
                          ExecMode::SPMD, /*NumTeams=*/-1, (int)BlockDim);
  Argument *Y = TRB.getParam(0), *X = TRB.getParam(1),
           *A = TRB.getParam(2), *N = TRB.getParam(3);
  Y->setName("y");
  Y->setNoEscapeAttr();
  X->setName("x");
  A->setName("a");
  N->setName("n");
  TRB.setParamMapKind(0, MapKind::ToFrom);
  TRB.setParamMapKind(1, MapKind::To);

  TRB.emitDistributeParallelFor(
      N, {{Y, false, "y"}, {X, false, "x"}, {A, false, "a"}},
      [&](IRBuilder &B, Value *I, const CaptureMap &Map) {
        Value *Yp = B.createGEP(F64, Map.at(Y), {I}, "y.addr");
        Value *Xv = B.createLoad(
            F64, B.createGEP(F64, Map.at(X), {I}, "x.addr"), "xv");
        Value *Yv = B.createLoad(F64, Yp, "yv");
        B.createStore(
            B.createFAdd(Xv, B.createFMul(Map.at(A), Yv, "ay"), "sum"), Yp);
      },
      (int)BlockDim);
  TRB.finalize();
}

/// z[i] = invdiag[i] * r[i] (Jacobi preconditioner application).
void buildJacobi(OMPCodeGen &CG, unsigned BlockDim) {
  Module &M = CG.getModule();
  IRContext &Ctx = M.getContext();
  Type *F64 = Ctx.getDoubleTy(), *I32 = Ctx.getInt32Ty();
  PointerType *Ptr = Ctx.getPtrTy();

  TargetRegionBuilder TRB(CG, CGKernelNames::Jacobi, {Ptr, Ptr, Ptr, I32},
                          ExecMode::SPMD, /*NumTeams=*/-1, (int)BlockDim);
  Argument *Z = TRB.getParam(0), *R = TRB.getParam(1),
           *InvDiag = TRB.getParam(2), *N = TRB.getParam(3);
  Z->setName("z");
  Z->setNoEscapeAttr();
  R->setName("r");
  InvDiag->setName("invdiag");
  N->setName("n");
  TRB.setParamMapKind(0, MapKind::From);
  TRB.setParamMapKind(1, MapKind::To);
  TRB.setParamMapKind(2, MapKind::To);

  TRB.emitDistributeParallelFor(
      N, {{Z, false, "z"}, {R, false, "r"}, {InvDiag, false, "invdiag"}},
      [&](IRBuilder &B, Value *I, const CaptureMap &Map) {
        Value *Rv = B.createLoad(
            F64, B.createGEP(F64, Map.at(R), {I}, "r.addr"), "rv");
        Value *Dv = B.createLoad(
            F64, B.createGEP(F64, Map.at(InvDiag), {I}, "d.addr"), "dv");
        B.createStore(B.createFMul(Dv, Rv, "dr"),
                      B.createGEP(F64, Map.at(Z), {I}, "z.addr"));
      },
      (int)BlockDim);
  TRB.finalize();
}

/// partials[c] = sum over cell c's rows of a[i] * b[i]. Cells are the
/// parallel dimension; each cell is summed sequentially in ascending row
/// order so the per-cell partial is a pure function of the cell contents
/// — the host then combines cells in global order (OMP251).
void buildDot(OMPCodeGen &CG, unsigned BlockDim) {
  Module &M = CG.getModule();
  IRContext &Ctx = M.getContext();
  Type *F64 = Ctx.getDoubleTy(), *I32 = Ctx.getInt32Ty();
  PointerType *Ptr = Ctx.getPtrTy();

  TargetRegionBuilder TRB(CG, CGKernelNames::Dot,
                          {Ptr, Ptr, Ptr, I32, I32, I32}, ExecMode::SPMD,
                          /*NumTeams=*/-1, (int)BlockDim);
  Argument *A = TRB.getParam(0), *B_ = TRB.getParam(1),
           *Partials = TRB.getParam(2), *NCells = TRB.getParam(3),
           *CellSize = TRB.getParam(4), *NLocal = TRB.getParam(5);
  A->setName("a");
  B_->setName("b");
  Partials->setName("partials");
  Partials->setNoEscapeAttr();
  NCells->setName("ncells");
  CellSize->setName("cell_size");
  NLocal->setName("nlocal");
  TRB.setParamMapKind(0, MapKind::To);
  TRB.setParamMapKind(1, MapKind::To);
  TRB.setParamMapKind(2, MapKind::From);

  Value *SumP = nullptr;
  TRB.emitDistributeParallelFor(
      NCells,
      {{A, false, "a"}, {B_, false, "b"}, {Partials, false, "partials"},
       {CellSize, false, "cell_size"}, {NLocal, false, "nlocal"}},
      [&](IRBuilder &B, Value *C, const CaptureMap &Map) {
        Value *Lo = B.createMul(C, Map.at(CellSize), "lo");
        Value *HiRaw = B.createAdd(Lo, Map.at(CellSize), "hi.raw");
        Value *Clamp = B.createICmpSLT(HiRaw, Map.at(NLocal), "clamp");
        Value *Hi = B.createSelect(Clamp, HiRaw, Map.at(NLocal), "hi");
        B.createStore(B.getDouble(0.0), SumP);
        emitCountedLoop(
            B, Lo, Hi, B.getInt32(1), "dot",
            [&](IRBuilder &LB, Value *I) {
              Value *Av = LB.createLoad(
                  F64, LB.createGEP(F64, Map.at(A), {I}, "a.addr"), "av");
              Value *Bv = LB.createLoad(
                  F64, LB.createGEP(F64, Map.at(B_), {I}, "b.addr"), "bv");
              Value *S = LB.createLoad(F64, SumP, "s");
              LB.createStore(
                  LB.createFAdd(S, LB.createFMul(Av, Bv, "ab"), "s.next"),
                  SumP);
            });
        Value *S = B.createLoad(F64, SumP, "cell.sum");
        B.createStore(S, B.createGEP(F64, Map.at(Partials), {C}, "p.addr"));
      },
      (int)BlockDim,
      [&](IRBuilder &PB, const CaptureMap &) {
        SumP = TRB.emitParallelLocalVariable(PB, F64, "sum", false);
      });
  TRB.finalize();
}

/// One compiled module serving every device of a given architecture
/// fingerprint. The context owns all IR; kernels are re-resolved by name
/// after the pipeline runs (recovery-mode rollback may swap the bodies).
struct CompiledModule {
  std::unique_ptr<IRContext> Ctx;
  std::unique_ptr<Module> M;
  Function *Spmv = nullptr;
  Function *Axpy = nullptr;
  Function *Xpay = nullptr;
  Function *Jacobi = nullptr;
  Function *Dot = nullptr;
};

/// Per-device launch state.
struct DeviceState {
  DeviceChunk Chunk;
  CompiledModule *Mod = nullptr;
  NativeRuntimeBinding RTL;
  // Device addresses (0 when the chunk is empty).
  uint64_t RowPtrA = 0, ColA = 0, ValA = 0;
  uint64_t InvDiagA = 0, XA = 0, RA = 0, ZA = 0, QA = 0;
  uint64_t PA = 0;       ///< full-length search direction
  uint64_t PartialsA = 0; ///< full Cells-length partial sums
  uint64_t InputBytes = 0; ///< operator + rhs upload volume
  bool FirstLaunch = true;
};

} // namespace

uint64_t CGResult::resultHash() const {
  uint64_t H = hashCombine(0x9e3779b97f4a7c15ull, Iterations);
  H = hashCombine(H, Converged ? 1 : 0);
  for (double R : Residuals)
    H = hashCombine(H, std::bit_cast<uint64_t>(R));
  for (double V : X)
    H = hashCombine(H, std::bit_cast<uint64_t>(V));
  return H;
}

CGResult ompgpu::runCG(const CGOptions &O) {
  CGResult Res;
  DeviceGroupSpec Spec = O.Group;
  if (Spec.Devices.empty())
    Spec = homogeneousGroupSpec(O.Pipeline.Arch, 1);
  if (Error E = Spec.validate()) {
    Res.Trap = E.message();
    return Res;
  }
  if (O.Rows == 0 || O.Cells == 0 || O.GridDim == 0 || O.BlockDim == 0) {
    Res.Trap = "cg: rows, cells, and launch shape must be positive";
    return Res;
  }

  DeviceGroup G(Spec);
  if (O.PerturbSeed)
    G.setCompletionPerturbation(O.PerturbSeed);
  unsigned D = G.size();
  RowPartition Part = makeRowPartition(O.Rows, D, O.Cells);
  uint32_t EllWidth = (uint32_t)std::min<uint64_t>(2ull * O.Band + 1, O.Rows);

  // Compile one module per distinct architecture fingerprint; every
  // device of that architecture launches from the shared module.
  std::map<uint64_t, size_t> FingerprintMod;
  std::vector<std::unique_ptr<CompiledModule>> Modules;
  std::vector<DeviceState> Dev(D);
  for (unsigned I = 0; I != D; ++I) {
    const ArchSpec &A = Spec.Devices[I];
    uint64_t FP = archFingerprint(A);
    auto It = FingerprintMod.find(FP);
    if (It == FingerprintMod.end()) {
      auto CM = std::make_unique<CompiledModule>();
      CM->Ctx = std::make_unique<IRContext>();
      CM->M = std::make_unique<Module>(
          *CM->Ctx, std::string("cg_") + cgFormatName(O.Fmt) + "_" + A.Name);

      PipelineOptions PO = O.Pipeline;
      applyArch(PO, A);
      {
        OMPCodeGen CG(*CM->M, CodeGenOptions{PO.Scheme, /*CudaMode=*/false});
        if (O.Fmt == CGFormat::CRS)
          buildSpmvCrs(CG, O.BlockDim);
        else
          buildSpmvEll(CG, O.BlockDim);
        buildAxpy(CG, O.BlockDim);
        buildXpay(CG, O.BlockDim);
        buildJacobi(CG, O.BlockDim);
        buildDot(CG, O.BlockDim);
      }

      CompileResult CR = optimizeDeviceModule(*CM->M, PO);
      bool Verified = !CR.VerifyFailed;
      std::string VerifyError = CR.VerifyError;
      Res.Compiles.push_back({A.Name, PO, std::move(CR)});
      if (!Verified) {
        Res.Trap = "cg: IR verification failed on " + A.Name + ": " +
                   VerifyError;
        return Res;
      }
      const char *SpmvName = O.Fmt == CGFormat::CRS ? CGKernelNames::SpmvCrs
                                                    : CGKernelNames::SpmvEll;
      CM->Spmv = CM->M->getFunction(SpmvName);
      CM->Axpy = CM->M->getFunction(CGKernelNames::Axpy);
      CM->Xpay = CM->M->getFunction(CGKernelNames::Xpay);
      CM->Jacobi = CM->M->getFunction(CGKernelNames::Jacobi);
      CM->Dot = CM->M->getFunction(CGKernelNames::Dot);
      if (!CM->Spmv || !CM->Axpy || !CM->Xpay || !CM->Jacobi || !CM->Dot) {
        Res.Trap = "cg: kernel lost during optimization on " + A.Name;
        return Res;
      }
      It = FingerprintMod.emplace(FP, Modules.size()).first;
      Modules.push_back(std::move(CM));
    }
    Dev[I].Mod = Modules[It->second].get();
    Dev[I].Chunk = Part.Chunks[I];
    Dev[I].RTL =
        makeOpenMPRuntimeBinding(O.Pipeline.Flavor, G.device(I).getMachine());
  }

  // Upload every device's chunk: operator, inverse diagonal, rhs (the
  // initial residual, since x0 = 0), zeroed x/q/z, the full-length search
  // direction, and the full-length cell partials.
  for (unsigned I = 0; I != D; ++I) {
    DeviceState &S = Dev[I];
    uint32_t Rows = S.Chunk.rows();
    if (!Rows)
      continue;
    GPUDevice &GD = G.device(I);
    ChunkData CD = assembleChunk(O, S.Chunk, EllWidth);
    if (O.Fmt == CGFormat::CRS) {
      S.RowPtrA = GD.allocateArray(CD.RowPtr);
      S.ColA = GD.allocateArray(CD.Col);
      S.ValA = GD.allocateArray(CD.Val);
      S.InputBytes = CD.RowPtr.size() * 4 + CD.Col.size() * 4 +
                     CD.Val.size() * 8;
    } else {
      S.ColA = GD.allocateArray(CD.EllCol);
      S.ValA = GD.allocateArray(CD.EllVal);
      S.InputBytes = CD.EllCol.size() * 4 + CD.EllVal.size() * 8;
    }
    S.InvDiagA = GD.allocateArray(CD.InvDiag);
    S.RA = GD.allocateArray(CD.Rhs);
    S.InputBytes += CD.InvDiag.size() * 8 + CD.Rhs.size() * 8;
    std::vector<double> Zero(Rows, 0.0);
    S.XA = GD.allocateArray(Zero);
    S.QA = GD.allocateArray(Zero);
    S.ZA = GD.allocateArray(Zero);
    std::vector<double> FullZero(O.Rows, 0.0);
    S.PA = GD.allocateArray(FullZero);
    std::vector<double> CellZero(Part.Cells, 0.0);
    S.PartialsA = GD.allocateArray(CellZero);
  }

  // Launch helper: every kernel runs the same per-device grid, so chunk
  // cycles shrink as the group grows. The first launch on each device
  // carries the input-upload mapping (MapKind::To), charging the chunk
  // transfer through the launch's communication cycles.
  auto Launch = [&](unsigned I, Function *K,
                    const std::vector<uint64_t> &Args) -> bool {
    DeviceState &S = Dev[I];
    LaunchConfig LC;
    LC.GridDim = O.GridDim;
    LC.BlockDim = O.BlockDim;
    LC.Flavor = O.Pipeline.Flavor;
    if (S.FirstLaunch) {
      S.FirstLaunch = false;
      LC.Mappings.push_back({"cg_inputs", MapKind::To, S.InputBytes});
    }
    KernelStats KS = G.launch(I, *S.Mod->M, K, LC, Args, S.RTL);
    if (!KS.Trap.empty()) {
      Res.Trap = "cg: device " + std::to_string(I) + ": " + KS.Trap;
      return false;
    }
    return true;
  };
  auto Bits = [](double V) { return std::bit_cast<uint64_t>(V); };

  std::vector<uint64_t> PAddrs(D), PartialAddrs(D);
  for (unsigned I = 0; I != D; ++I) {
    PAddrs[I] = Dev[I].PA;
    PartialAddrs[I] = Dev[I].PartialsA;
  }
  std::vector<double> Scratch;

  // z = M^-1 r ; p = z ; rho = r . z
  for (unsigned I = 0; I != D; ++I) {
    DeviceState &S = Dev[I];
    if (!S.Chunk.rows())
      continue;
    if (!Launch(I, S.Mod->Jacobi,
                {S.ZA, S.RA, S.InvDiagA, S.Chunk.rows()}))
      return Res;
    if (!Launch(I, S.Mod->Xpay,
                {S.PA + (uint64_t)S.Chunk.RowLo * 8, S.ZA, Bits(0.0),
                 S.Chunk.rows()}))
      return Res;
    if (!Launch(I, S.Mod->Dot,
                {S.RA, S.ZA, S.PartialsA + (uint64_t)S.Chunk.CellLo * 8,
                 S.Chunk.cells(), Part.CellSize, S.Chunk.rows()}))
      return Res;
  }
  double Rho = groupReduceSum(G, Part, PartialAddrs);
  Res.InitialResidual = std::sqrt(Rho);

  double RelStop = O.RelTol * Res.InitialResidual;
  for (unsigned Iter = 0; Iter != O.MaxIters && Rho > 0.0; ++Iter) {
    // Rebuild the full search direction on every device (halo exchange),
    // then q = A p on each chunk.
    gatherFullVector(G, Part, PAddrs, Scratch);
    for (unsigned I = 0; I != D; ++I) {
      DeviceState &S = Dev[I];
      if (!S.Chunk.rows())
        continue;
      bool Ok =
          O.Fmt == CGFormat::CRS
              ? Launch(I, S.Mod->Spmv,
                       {S.RowPtrA, S.ColA, S.ValA, S.PA, S.QA,
                        S.Chunk.rows()})
              : Launch(I, S.Mod->Spmv,
                       {S.ColA, S.ValA, S.PA, S.QA, S.Chunk.rows(),
                        EllWidth});
      if (!Ok)
        return Res;
      if (!Launch(I, S.Mod->Dot,
                  {S.PA + (uint64_t)S.Chunk.RowLo * 8, S.QA,
                   S.PartialsA + (uint64_t)S.Chunk.CellLo * 8,
                   S.Chunk.cells(), Part.CellSize, S.Chunk.rows()}))
        return Res;
    }
    double PQ = groupReduceSum(G, Part, PartialAddrs);
    if (PQ == 0.0) {
      Res.Trap = "cg: breakdown, p.Ap == 0";
      return Res;
    }
    double Alpha = Rho / PQ;

    // x += alpha p ; r -= alpha q ; z = M^-1 r ; rho' = r . z
    for (unsigned I = 0; I != D; ++I) {
      DeviceState &S = Dev[I];
      if (!S.Chunk.rows())
        continue;
      if (!Launch(I, S.Mod->Axpy,
                  {S.XA, S.PA + (uint64_t)S.Chunk.RowLo * 8, Bits(Alpha),
                   S.Chunk.rows()}))
        return Res;
      if (!Launch(I, S.Mod->Axpy,
                  {S.RA, S.QA, Bits(-Alpha), S.Chunk.rows()}))
        return Res;
      if (!Launch(I, S.Mod->Jacobi,
                  {S.ZA, S.RA, S.InvDiagA, S.Chunk.rows()}))
        return Res;
      if (!Launch(I, S.Mod->Dot,
                  {S.RA, S.ZA, S.PartialsA + (uint64_t)S.Chunk.CellLo * 8,
                   S.Chunk.cells(), Part.CellSize, S.Chunk.rows()}))
        return Res;
    }
    double RhoNext = groupReduceSum(G, Part, PartialAddrs);
    double Resid = std::sqrt(RhoNext);
    Res.Residuals.push_back(Resid);
    Res.Iterations = Iter + 1;
    if (Resid <= RelStop) {
      Res.Converged = true;
      Rho = RhoNext;
      break;
    }

    // p = z + beta p (own chunk only; the next gather completes it).
    double Beta = RhoNext / Rho;
    Rho = RhoNext;
    for (unsigned I = 0; I != D; ++I) {
      DeviceState &S = Dev[I];
      if (!S.Chunk.rows())
        continue;
      if (!Launch(I, S.Mod->Xpay,
                  {S.PA + (uint64_t)S.Chunk.RowLo * 8, S.ZA, Bits(Beta),
                   S.Chunk.rows()}))
        return Res;
    }
  }
  Res.FinalResidual =
      Res.Residuals.empty() ? Res.InitialResidual : Res.Residuals.back();

  // Assemble the solution on the host (charged like any other download).
  Res.X.assign(O.Rows, 0.0);
  for (unsigned I = 0; I != D; ++I) {
    DeviceState &S = Dev[I];
    if (!S.Chunk.rows())
      continue;
    G.device(I).memcpyFromDevice(Res.X.data() + S.Chunk.RowLo, S.XA,
                                 (uint64_t)S.Chunk.rows() * 8);
    G.chargeHostTransfer(I, (uint64_t)S.Chunk.rows() * 8,
                         /*ToDevice=*/false);
  }
  Res.Stats = G.stats();

  Res.Remarks.push_back(
      {RemarkId::OMP250, /*Missed=*/false, "cg",
       "partitioned " + std::to_string(O.Rows) + " rows across " +
           std::to_string(D) + " device(s) of group '" + Spec.Name + "' (" +
           std::to_string(Part.Cells) + " reduction cells)"});
  Res.Remarks.push_back(
      {RemarkId::OMP251, /*Missed=*/false, "cg",
       "cross-device reduction: deterministic fixed-order combine over " +
           std::to_string(Part.Cells) + " cells (device-count invariant)"});
  double Imbalance = Res.Stats.loadImbalance();
  if (D > 1 && Imbalance > 1.25) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.2f", Imbalance);
    Res.Remarks.push_back(
        {RemarkId::OMP252, /*Missed=*/true, "cg",
         std::string("load imbalance ") + Buf +
             "x: the slowest device dominates the group makespan"});
  }
  return Res;
}
