//===- workloads/Partition.h - Multi-device row partitioning ----*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Row-chunked work distribution across a DeviceGroup plus the two
/// cross-device primitives the CG family is built from: a halo/gather
/// exchange that rebuilds a full vector on every device (host-staged or
/// peer-link, docs/multi-device.md) and a deterministic fixed-order
/// reduction over per-cell partial sums. Chunks are aligned to reduction
/// cells so the dot-product combine order — and therefore every residual
/// bit — is independent of the device count.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_WORKLOADS_PARTITION_H
#define OMPGPU_WORKLOADS_PARTITION_H

#include "gpusim/DeviceGroup.h"

#include <cstdint>
#include <vector>

namespace ompgpu {

/// One device's contiguous share of the rows and of the reduction cells.
/// Empty chunks (RowLo == RowHi) are legal: a group larger than the cell
/// count leaves trailing devices idle rather than failing.
struct DeviceChunk {
  uint32_t RowLo = 0; ///< first owned row (inclusive)
  uint32_t RowHi = 0; ///< one past the last owned row
  unsigned CellLo = 0; ///< first owned reduction cell (inclusive)
  unsigned CellHi = 0; ///< one past the last owned reduction cell

  uint32_t rows() const { return RowHi - RowLo; }
  unsigned cells() const { return CellHi - CellLo; }
};

/// A cell-aligned 1-D row partition of [0, N) across a device group.
struct RowPartition {
  uint32_t N = 0;        ///< total rows
  unsigned Cells = 0;    ///< reduction cells (fixed, device-count free)
  uint32_t CellSize = 0; ///< rows per cell, ceil(N / Cells)
  std::vector<DeviceChunk> Chunks; ///< one entry per device
};

/// Splits [0, N) into \p Cells fixed reduction cells and deals the cells
/// contiguously across \p Devices (remainder cells go to the leading
/// devices). Row bounds are the cell bounds clamped to N, so every chunk
/// starts and ends on a cell boundary and per-cell partial sums are
/// bitwise independent of how many devices share the work.
RowPartition makeRowPartition(uint32_t N, unsigned Devices, unsigned Cells);

/// Halo/gather exchange (the matvecGatherXViaHost pattern): every device
/// holds a full length-N vector at FullVecAddrs[i] but has only written
/// its own chunk; afterwards every device holds the complete vector.
/// Data always moves through \p Scratch (resized to N); the *charge* is
/// the group's link model — host-staged (one download per source chunk,
/// one upload per missing range per destination) or, when the spec
/// declares a peer link, one direct transfer per (src, dst) pair.
/// A 1-device group is a no-op.
void gatherFullVector(DeviceGroup &G, const RowPartition &P,
                      const std::vector<uint64_t> &FullVecAddrs,
                      std::vector<double> &Scratch);

/// Deterministic fixed-order cross-device reduction: device i holds the
/// per-cell partial sums of its own cells inside a full Cells-length
/// array at PartialAddrs[i]; downloads each device's owned cells (charged
/// on the host link) and combines them in ascending global cell order.
/// The combine order never depends on the device count or completion
/// timing, which is what makes multi-device CG bit-exact (OMP251).
double groupReduceSum(DeviceGroup &G, const RowPartition &P,
                      const std::vector<uint64_t> &PartialAddrs);

} // namespace ompgpu

#endif // OMPGPU_WORKLOADS_PARTITION_H
