//===- rtl/DeviceRTL.cpp - OpenMP device runtime for the simulator ---------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "rtl/DeviceRTL.h"
#include "frontend/OMPRuntime.h"
#include "gpusim/SimThread.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <map>

using namespace ompgpu;

namespace {

/// Names of simulator-internal primitives used by the RTL IR bodies.
constexpr const char *InitBlockStateFn = "__kmpc_init_block_state";
constexpr const char *SetWorkFn = "__kmpc_set_work";
constexpr const char *ClearWorkFn = "__kmpc_clear_work";
constexpr const char *PushParallelLevelFn = "__kmpc_push_parallel_level";
constexpr const char *PopParallelLevelFn = "__kmpc_pop_parallel_level";

/// Per-block OpenMP runtime state.
class OMPBlockState : public RTLBlockStateBase {
public:
  int32_t ExecMode = 0; ///< OMP_TGT_EXEC_MODE_* value of the running kernel
  bool Initialized = false;

  /// Current parallel region hand-off (generic mode).
  uint64_t WorkFn = 0;
  uint64_t WorkArgs = 0;
  unsigned ActiveWorkers = 0;

  /// Per-thread dynamic parallel level.
  std::map<unsigned, int32_t> Levels;

  /// Allocation records of the globalization runtime.
  struct AllocRecord {
    bool OnHeap;
    uint64_t Bytes;
  };
  std::map<uint64_t, AllocRecord> Allocs;

  /// Logical footprint model: the simulator runs threads cooperatively,
  /// but on the GPU every thread's globalization allocations are live
  /// concurrently. Per-thread peaks are summed to derive the block's true
  /// demand, which drives the slab/heap placement cost and the
  /// out-of-memory check (the RSBench case of Fig. 11b).
  std::map<unsigned, uint64_t> ThreadAllocCur;
  std::map<unsigned, uint64_t> ThreadAllocPeak;
  uint64_t DemandSum = 0;
  uint64_t HeapAccounted = 0;

  /// Updates the demand model; returns true if the block's logical demand
  /// now exceeds the shared-memory slab (heap-fallback pricing).
  bool noteAlloc(SimThread &T, uint64_t Bytes) {
    unsigned Tid = T.getThreadId();
    uint64_t &Cur = ThreadAllocCur[Tid];
    uint64_t &Peak = ThreadAllocPeak[Tid];
    Cur += Bytes;
    if (Cur > Peak) {
      DemandSum += Cur - Peak;
      Peak = Cur;
    }
    uint64_t Slab = T.getDataSharingSlabBytes();
    if (DemandSum > Slab && DemandSum - Slab > HeapAccounted) {
      // Pure accounting: surface the heap demand to the OOM model.
      T.heapAlloc(DemandSum - Slab - HeapAccounted);
      HeapAccounted = DemandSum - Slab;
    }
    return DemandSum > Slab;
  }

  void noteFree(SimThread &T, uint64_t Bytes) {
    uint64_t &Cur = ThreadAllocCur[T.getThreadId()];
    Cur -= std::min(Cur, Bytes);
  }

  int32_t levelOf(unsigned Tid) const {
    auto It = Levels.find(Tid);
    return It == Levels.end() ? 0 : It->second;
  }
};

OMPBlockState &getState(SimThread &T) {
  return static_cast<OMPBlockState &>(T.getRTLState());
}

bool isSPMD(SimThread &T) {
  return getState(T).ExecMode == OMP_TGT_EXEC_MODE_SPMD;
}

/// The number of threads participating in a generic-mode parallel region:
/// the main thread's warp is reserved (it waits in __kmpc_parallel_51).
unsigned genericWorkerCount(SimThread &T) {
  unsigned BlockDim = T.getBlockDim();
  unsigned Warp = T.getWarpSize();
  return BlockDim > Warp ? BlockDim - Warp : 1;
}

} // namespace

NativeRuntimeBinding
ompgpu::makeOpenMPRuntimeBinding(RuntimeFlavor Flavor,
                                 const MachineModel &Machine) {
  NativeRuntimeBinding B;
  B.MakeBlockState = [] { return std::make_unique<OMPBlockState>(); };

  const CostParams C = Machine.Costs;
  const bool Legacy = Flavor == RuntimeFlavor::Legacy;
  const unsigned Query =
      C.RTQueryCycles + (Legacy ? C.LegacyRTQueryExtraCycles : 0);

  auto &H = B.Handlers;

  // --- Queries -----------------------------------------------------------
  H["__kmpc_is_spmd_exec_mode"] = [Query](SimThread &T, auto &) {
    return NativeResult::value(isSPMD(T), Query);
  };
  H["__kmpc_parallel_level"] = [Query](SimThread &T, auto &) {
    return NativeResult::value(getState(T).levelOf(T.getThreadId()), Query);
  };
  H["__kmpc_is_generic_main_thread"] = [Query](SimThread &T, auto &) {
    unsigned Main = isSPMD(T) ? 0 : T.getBlockDim() - 1;
    return NativeResult::value(T.getThreadId() == Main, Query);
  };
  H["__kmpc_get_hardware_thread_id_in_block"] = [Query](SimThread &T,
                                                        auto &) {
    return NativeResult::value(T.getThreadId(), Query);
  };
  H["__kmpc_get_hardware_num_threads_in_block"] = [Query](SimThread &T,
                                                          auto &) {
    return NativeResult::value(T.getBlockDim(), Query);
  };
  H["__kmpc_get_warp_size"] = [Query](SimThread &T, auto &) {
    return NativeResult::value(T.getWarpSize(), Query);
  };
  H["omp_get_thread_num"] = [Query](SimThread &T, auto &) {
    OMPBlockState &S = getState(T);
    int64_t V = 0;
    if (isSPMD(T) || S.levelOf(T.getThreadId()) > 0)
      V = T.getThreadId();
    return NativeResult::value((uint64_t)V, Query);
  };
  H["omp_get_num_threads"] = [Query](SimThread &T, auto &) {
    OMPBlockState &S = getState(T);
    int64_t V = 1;
    if (isSPMD(T))
      V = T.getBlockDim();
    else if (S.levelOf(T.getThreadId()) > 0)
      V = S.ActiveWorkers;
    return NativeResult::value((uint64_t)V, Query);
  };
  H["omp_get_team_num"] = [Query](SimThread &T, auto &) {
    return NativeResult::value(T.getBlockId(), Query);
  };
  H["omp_get_num_teams"] = [Query](SimThread &T, auto &) {
    return NativeResult::value(T.getGridDim(), Query);
  };

  // --- Synchronization ---------------------------------------------------
  H["__kmpc_barrier_simple_spmd"] = [](SimThread &T, auto &) {
    return NativeResult::barrier(/*Id=*/0, T.getBlockDim());
  };
  H["__kmpc_barrier"] = [](SimThread &T, auto &) {
    OMPBlockState &S = getState(T);
    if (isSPMD(T))
      return NativeResult::barrier(0, T.getBlockDim());
    unsigned Count = S.ActiveWorkers ? S.ActiveWorkers
                                     : genericWorkerCount(T);
    return NativeResult::barrier(1, Count);
  };

  // --- Globalization (Sec. IV-A) -----------------------------------------
  H["__kmpc_alloc_shared"] = [C](SimThread &T, const auto &Args) {
    OMPBlockState &S = getState(T);
    uint64_t Bytes = Args[0];
    bool OverSlab = S.noteAlloc(T, Bytes);
    unsigned Cycles = OverSlab ? C.AllocSharedHeapFallbackCycles
                               : C.AllocSharedCycles;
    uint64_t Addr = T.sharedStackAlloc(Bytes);
    if (Addr) {
      S.Allocs[Addr] = {false, Bytes};
      // Per-variable runtime allocations are packed per thread, not
      // interleaved: accesses from a parallel region conflict on the
      // shared-memory banks (the "missing coalescing" of Fig. 11d).
      T.setSharedRegionCost(Addr, Bytes, C.SharedMemCycles * 4);
      return NativeResult::value(Addr, Cycles);
    }
    Addr = T.heapAlloc(Bytes);
    S.Allocs[Addr] = {true, Bytes};
    return NativeResult::value(Addr, Cycles);
  };
  H["__kmpc_free_shared"] = [C](SimThread &T, const auto &Args) {
    OMPBlockState &S = getState(T);
    auto It = S.Allocs.find(Args[0]);
    if (It == S.Allocs.end())
      return NativeResult::trap("__kmpc_free_shared of unknown pointer");
    S.noteFree(T, It->second.Bytes);
    if (It->second.OnHeap) {
      T.heapFree(It->second.Bytes);
    } else {
      T.clearSharedRegionCost(Args[0]);
      T.sharedStackFree(It->second.Bytes);
    }
    S.Allocs.erase(It);
    return NativeResult::voidValue(C.FreeSharedCycles);
  };
  H["__kmpc_data_sharing_coalesced_push_stack"] = [C](SimThread &T,
                                                      const auto &Args) {
    OMPBlockState &S = getState(T);
    uint64_t Bytes = Args[0];
    // The legacy runtime aggregates pushes warp-wide (SoA layout); the
    // amortized cost is charged to lane 0 only.
    unsigned Cycles = (T.getThreadId() % T.getWarpSize() == 0)
                          ? C.CoalescedPushCycles
                          : C.CoalescedPushCycles / 8;
    S.noteAlloc(T, Bytes);
    uint64_t Addr = T.sharedStackAlloc(Bytes);
    if (Addr) {
      S.Allocs[Addr] = {false, Bytes};
      return NativeResult::value(Addr, Cycles);
    }
    Addr = T.heapAlloc(Bytes);
    S.Allocs[Addr] = {true, Bytes};
    return NativeResult::value(Addr, Cycles + C.AllocSharedCycles);
  };
  H["__kmpc_data_sharing_pop_stack"] = [C](SimThread &T, const auto &Args) {
    OMPBlockState &S = getState(T);
    auto It = S.Allocs.find(Args[0]);
    if (It == S.Allocs.end())
      return NativeResult::trap(
          "__kmpc_data_sharing_pop_stack of unknown pointer");
    S.noteFree(T, It->second.Bytes);
    if (It->second.OnHeap)
      T.heapFree(It->second.Bytes);
    else
      T.sharedStackFree(It->second.Bytes);
    S.Allocs.erase(It);
    return NativeResult::voidValue(C.PopStackCycles);
  };

  // --- Kernel/parallel-region management primitives ----------------------
  H[InitBlockStateFn] = [C, Legacy](SimThread &T, const auto &Args) {
    OMPBlockState &S = getState(T);
    if (!S.Initialized) {
      S.Initialized = true;
      S.ExecMode = (int32_t)Args[0];
    }
    unsigned Cycles =
        Legacy ? C.LegacyTargetInitCycles : C.TargetInitCycles;
    return NativeResult::voidValue(Cycles);
  };
  H[SetWorkFn] = [C, Legacy](SimThread &T, const auto &Args) {
    OMPBlockState &S = getState(T);
    S.WorkFn = Args[0];
    S.WorkArgs = Args[1];
    int32_t Requested = (int32_t)Args[2];
    unsigned MaxWorkers = genericWorkerCount(T);
    S.ActiveWorkers = Requested > 0
                          ? std::min<unsigned>(Requested, MaxWorkers)
                          : MaxWorkers;
    unsigned Cycles =
        C.SetWorkCycles + (Legacy ? C.LegacyParallelExtraCycles : 0);
    return NativeResult::voidValue(Cycles);
  };
  H[ClearWorkFn] = [C](SimThread &T, const auto &) {
    getState(T).WorkFn = 0;
    return NativeResult::voidValue(C.SetWorkCycles);
  };
  H["__kmpc_kernel_parallel"] = [C](SimThread &T, const auto &Args) {
    OMPBlockState &S = getState(T);
    uint64_t WorkFn = S.WorkFn;
    if (!T.writeMemory(Args[0], &WorkFn, 8))
      return NativeResult::trap("__kmpc_kernel_parallel: bad out-pointer");
    bool Active = WorkFn != 0 && T.getThreadId() < S.ActiveWorkers;
    if (Active)
      S.Levels[T.getThreadId()] = 1;
    // A real work-descriptor handoff costs far more than the bookkeeping:
    // the protocol synchronizes and republishes runtime state per region.
    unsigned Cycles = C.KernelParallelCycles +
                      (WorkFn ? C.GenericHandoffCycles : 0);
    return NativeResult::value(Active, Cycles);
  };
  H["__kmpc_kernel_get_args"] = [C](SimThread &T, const auto &) {
    return NativeResult::value(getState(T).WorkArgs,
                               C.KernelParallelCycles);
  };
  H["__kmpc_kernel_end_parallel"] = [C](SimThread &T, const auto &) {
    getState(T).Levels[T.getThreadId()] = 0;
    return NativeResult::voidValue(C.KernelParallelCycles);
  };
  H[PushParallelLevelFn] = [](SimThread &T, const auto &) {
    OMPBlockState &S = getState(T);
    ++S.Levels[T.getThreadId()];
    return NativeResult::voidValue(1);
  };
  H[PopParallelLevelFn] = [](SimThread &T, const auto &) {
    OMPBlockState &S = getState(T);
    --S.Levels[T.getThreadId()];
    return NativeResult::voidValue(1);
  };

  return B;
}

//===----------------------------------------------------------------------===//
// RTL IR bodies
//===----------------------------------------------------------------------===//

namespace {

Function *getPrimitive(Module &M, const char *Name, FunctionType *FTy) {
  return M.getOrInsertFunction(Name, FTy);
}

/// define i32 @__kmpc_target_init(i32 %mode, i1 %use_generic_sm)
void buildTargetInit(Module &M) {
  IRContext &Ctx = M.getContext();
  Function *F = getOrCreateRTFn(M, RTFn::TargetInit);
  if (!F->isDeclaration())
    return;
  F->removeFnAttr(FnAttr::Convergent); // body carries its own semantics

  Argument *Mode = F->getArg(0);
  Mode->setName("mode");
  Argument *UseSM = F->getArg(1);
  UseSM->setName("use_generic_state_machine");

  Function *InitState = getPrimitive(
      M, InitBlockStateFn,
      Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getInt32Ty()}));
  Function *HwTid = getOrCreateRTFn(M, RTFn::HardwareThreadId);
  Function *HwNum = getOrCreateRTFn(M, RTFn::HardwareNumThreads);
  Function *Barrier = getOrCreateRTFn(M, RTFn::BarrierSimpleSPMD);
  Function *KernelPar = getOrCreateRTFn(M, RTFn::KernelParallel);
  Function *GetArgs = getOrCreateRTFn(M, RTFn::KernelGetArgs);
  Function *EndPar = getOrCreateRTFn(M, RTFn::KernelEndParallel);

  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *SPMDBB = F->createBlock("spmd");
  BasicBlock *Generic = F->createBlock("generic");
  BasicBlock *RetMain = F->createBlock("ret_main");
  BasicBlock *Worker = F->createBlock("worker");
  BasicBlock *RetTid = F->createBlock("ret_tid");
  BasicBlock *SMBegin = F->createBlock("sm.begin");
  BasicBlock *Await = F->createBlock("sm.await");
  BasicBlock *ActiveCheck = F->createBlock("sm.active_check");
  BasicBlock *Exec = F->createBlock("sm.exec");
  BasicBlock *Done = F->createBlock("sm.done");

  IRBuilder B(Ctx);
  B.setInsertPoint(Entry);
  B.createCall(InitState, {Mode});
  Value *Tid = B.createCall(HwTid, {}, "tid");
  Value *SPMDBit = B.createAnd(
      Mode, Ctx.getInt32(OMP_TGT_EXEC_MODE_SPMD), "spmd_bit");
  Value *IsSPMD = B.createICmpNE(SPMDBit, Ctx.getInt32(0), "is_spmd");
  B.createCondBr(IsSPMD, SPMDBB, Generic);

  B.setInsertPoint(SPMDBB);
  B.createRet(Ctx.getInt32(-1));

  B.setInsertPoint(Generic);
  Value *NThreads = B.createCall(HwNum, {}, "nthreads");
  Value *MainTid = B.createSub(NThreads, Ctx.getInt32(1), "main_tid");
  Value *IsMain = B.createICmpEQ(Tid, MainTid, "is_main");
  B.createCondBr(IsMain, RetMain, Worker);

  B.setInsertPoint(RetMain);
  B.createRet(Ctx.getInt32(-1));

  B.setInsertPoint(Worker);
  B.createCondBr(UseSM, SMBegin, RetTid);

  B.setInsertPoint(RetTid);
  B.createRet(Tid);

  // The runtime's generic-mode state machine: the indirect call below is
  // the cost the custom state machine rewrite (Sec. IV-B2) and SPMDzation
  // (Sec. IV-B3) eliminate.
  B.setInsertPoint(SMBegin);
  Value *WorkFnAddr = B.createAlloca(Ctx.getPtrTy(), "work_fn.addr");
  B.createBr(Await);

  B.setInsertPoint(Await);
  B.createCall(Barrier, {});
  Value *IsActive = B.createCall(KernelPar, {WorkFnAddr}, "is_active");
  Value *WorkFn = B.createLoad(Ctx.getPtrTy(), WorkFnAddr, "work_fn");
  Value *NoWork = B.createICmpEQ(WorkFn, Ctx.getNullPtr(AddrSpace::Generic),
                                 "no_more_work");
  B.createCondBr(NoWork, RetTid, ActiveCheck);

  B.setInsertPoint(ActiveCheck);
  B.createCondBr(IsActive, Exec, Done);

  B.setInsertPoint(Exec);
  Value *Args = B.createCall(GetArgs, {}, "work_args");
  B.createIndirectCall(getParallelWrapperType(Ctx), WorkFn, {Args});
  B.createBr(Done);

  B.setInsertPoint(Done);
  B.createCall(EndPar, {});
  B.createCall(Barrier, {});
  B.createBr(Await);
}

/// define void @__kmpc_target_deinit(i32 %mode)
void buildTargetDeinit(Module &M) {
  IRContext &Ctx = M.getContext();
  Function *F = getOrCreateRTFn(M, RTFn::TargetDeinit);
  if (!F->isDeclaration())
    return;
  F->removeFnAttr(FnAttr::Convergent);

  Argument *Mode = F->getArg(0);
  Mode->setName("mode");
  Function *SetWork = getPrimitive(
      M, SetWorkFn,
      Ctx.getFunctionTy(Ctx.getVoidTy(),
                        {Ctx.getPtrTy(), Ctx.getPtrTy(), Ctx.getInt32Ty()}));
  Function *Barrier = getOrCreateRTFn(M, RTFn::BarrierSimpleSPMD);

  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *SPMDBB = F->createBlock("spmd");
  BasicBlock *Generic = F->createBlock("generic");

  IRBuilder B(Ctx);
  B.setInsertPoint(Entry);
  Value *SPMDBit = B.createAnd(
      Mode, Ctx.getInt32(OMP_TGT_EXEC_MODE_SPMD), "spmd_bit");
  Value *IsSPMD = B.createICmpNE(SPMDBit, Ctx.getInt32(0), "is_spmd");
  B.createCondBr(IsSPMD, SPMDBB, Generic);

  B.setInsertPoint(SPMDBB);
  B.createRetVoid();

  // Generic mode: only the main thread reaches the deinit; signal the
  // workers to exit their state machine.
  B.setInsertPoint(Generic);
  Value *Null = Ctx.getNullPtr(AddrSpace::Generic);
  B.createCall(SetWork, {Null, Null, Ctx.getInt32(0)});
  B.createCall(Barrier, {});
  B.createRetVoid();
}

/// define void @__kmpc_parallel_51(ptr %fn, ptr %args, i32 %num_threads)
void buildParallel51(Module &M) {
  IRContext &Ctx = M.getContext();
  Function *F = getOrCreateRTFn(M, RTFn::Parallel51);
  if (!F->isDeclaration())
    return;
  F->removeFnAttr(FnAttr::Convergent);

  Argument *Fn = F->getArg(0);
  Fn->setName("fn");
  Argument *ArgsP = F->getArg(1);
  ArgsP->setName("args");
  Argument *NumThreads = F->getArg(2);
  NumThreads->setName("num_threads");

  Function *IsSPMDFn = getOrCreateRTFn(M, RTFn::IsSPMDMode);
  Function *SetWork = getPrimitive(
      M, SetWorkFn,
      Ctx.getFunctionTy(Ctx.getVoidTy(),
                        {Ctx.getPtrTy(), Ctx.getPtrTy(), Ctx.getInt32Ty()}));
  Function *ClearWork = getPrimitive(
      M, ClearWorkFn, Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  Function *PushLevel = getPrimitive(
      M, PushParallelLevelFn, Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  Function *PopLevel = getPrimitive(
      M, PopParallelLevelFn, Ctx.getFunctionTy(Ctx.getVoidTy(), {}));
  Function *Barrier = getOrCreateRTFn(M, RTFn::BarrierSimpleSPMD);

  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *SPMDBB = F->createBlock("spmd");
  BasicBlock *Generic = F->createBlock("generic");

  IRBuilder B(Ctx);
  B.setInsertPoint(Entry);
  Value *IsSPMD = B.createCall(IsSPMDFn, {}, "is_spmd");
  B.createCondBr(IsSPMD, SPMDBB, Generic);

  // SPMD: every thread executes the parallel region directly.
  B.setInsertPoint(SPMDBB);
  B.createCall(PushLevel, {});
  B.createIndirectCall(getParallelWrapperType(Ctx), Fn, {ArgsP});
  B.createCall(PopLevel, {});
  B.createRetVoid();

  // Generic: hand the region to the workers and wait for completion.
  B.setInsertPoint(Generic);
  B.createCall(SetWork, {Fn, ArgsP, NumThreads});
  B.createCall(Barrier, {}); // release the workers
  B.createCall(Barrier, {}); // join
  B.createCall(ClearWork, {});
  B.createRetVoid();
}

} // namespace

void ompgpu::linkDeviceRTL(Module &M) {
  buildTargetInit(M);
  buildTargetDeinit(M);
  buildParallel51(M);
}
