//===- rtl/DeviceRTL.h - OpenMP device runtime for the simulator -*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The OpenMP device runtime, playing the role of libomptarget's DeviceRTL:
/// - IR definitions for __kmpc_target_init / __kmpc_target_deinit /
///   __kmpc_parallel_51 are linked into each device module
///   (linkDeviceRTL), including the generic-mode worker state machine with
///   its indirect call — the overhead the paper's custom state machine
///   rewrite and SPMDzation remove.
/// - Low-level primitives (thread ids, barriers, the data-sharing stack
///   behind __kmpc_alloc_shared, work-descriptor hand-off) are native
///   handlers bound into the simulator.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_RTL_DEVICERTL_H
#define OMPGPU_RTL_DEVICERTL_H

#include "gpusim/Device.h"

namespace ompgpu {

class Module;

/// Links IR definitions of the structured runtime entry points into \p M.
/// Idempotent: functions that already have bodies are left alone.
void linkDeviceRTL(Module &M);

/// Stable pipeline name of linkDeviceRTL (pass instrumentation).
inline constexpr const char LinkDeviceRTLPassName[] = "link-device-rtl";

/// Returns the native runtime binding for simulated launches. \p Flavor
/// selects the cost profile: Legacy models the LLVM 12 "full" runtime.
NativeRuntimeBinding makeOpenMPRuntimeBinding(RuntimeFlavor Flavor,
                                              const MachineModel &Machine);

} // namespace ompgpu

#endif // OMPGPU_RTL_DEVICERTL_H
