//===- frontend/OMPCodeGen.h - OpenMP device code generation ---*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Clang-style OpenMP device code generation against the ompgpu IR. Two
/// lowering schemes are provided, matching the paper's comparison:
///
/// - Legacy12 ("LLVM 12", Fig. 4b): locals of SPMD regions stay on the
///   stack (the unsound optimization removed by the paper), generic-region
///   locals use warp-coalesced data-sharing stack pushes, and generic
///   kernels get a front-end state machine with function-pointer
///   if-cascades.
/// - Simplified13 (the paper, Fig. 4c): every potentially shared local is
///   globalized individually via __kmpc_alloc_shared, and generic kernels
///   rely on the runtime's generic state machine, leaving all optimization
///   to the middle end (OpenMPOpt).
///
/// Workload kernels are written against this API — it plays the role of
/// Clang's OpenMP codegen + OpenMPIRBuilder, which is the representation
/// the paper's pass actually consumes.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_FRONTEND_OMPCODEGEN_H
#define OMPGPU_FRONTEND_OMPCODEGEN_H

#include "frontend/CGHelpers.h"
#include "frontend/OMPRuntime.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace ompgpu {

/// Which front-end lowering to emit.
enum class CodeGenScheme : uint8_t {
  Legacy12,     ///< LLVM 12 behaviour (baseline of the evaluation).
  Simplified13, ///< The paper's simplified scheme (LLVM 13 / "Dev").
};

/// Front-end options.
struct CodeGenOptions {
  CodeGenScheme Scheme = CodeGenScheme::Simplified13;
  /// -fopenmp-cuda-mode: never globalize. Unsound in general (Fig. 3) but
  /// offered for comparison.
  bool CudaMode = false;
};

/// Shared front-end state for one device module.
class OMPCodeGen {
  Module &M;
  CodeGenOptions Opts;
  unsigned OutlinedCounter = 0;
  /// Uniquing state for the profile anchors attached at codegen time
  /// (docs/pgo.md): "alloc:<function>:<var>" collision counters and the
  /// per-function barrier numbering. Codegen is deterministic, so the
  /// -profile-gen and -profile-use compiles assign identical anchors.
  std::map<std::string, unsigned> UsedAllocAnchors;
  std::map<std::string, unsigned> BarrierCounters;

public:
  explicit OMPCodeGen(Module &M, CodeGenOptions Opts = CodeGenOptions());

  Module &getModule() const { return M; }
  IRContext &getContext() const { return M.getContext(); }
  const CodeGenOptions &getOptions() const { return Opts; }

  /// Declares/finds the given runtime function.
  Function *getRTFn(RTFn Fn) const;

  /// Returns a fresh name for an outlined parallel region of \p Kernel.
  std::string nextOutlinedName(const std::string &KernelName);

  /// \name Profile anchors (src/profile, docs/pgo.md)
  /// @{
  /// Attaches the unique "alloc:<function>:<var>" anchor to the inserted
  /// globalization call \p Alloc (__kmpc_alloc_shared or a coalesced
  /// data-sharing push).
  void attachAllocAnchor(CallInst *Alloc, const std::string &VarName);
  /// Returns the next "barrier:<function>:<n>" anchor of \p FunctionName.
  /// Both arms of one logical source barrier share one anchor.
  std::string nextBarrierAnchor(const std::string &FunctionName);
  /// @}

  /// \name Query lowerings (Sec. IV-C fold targets)
  /// The emitted patterns branch on __kmpc_is_spmd_exec_mode and
  /// __kmpc_parallel_level so that runtime-call folding can specialize
  /// them once the kernel's execution mode / parallel level are known.
  /// @{
  Value *emitThreadNum(IRBuilder &B);
  Value *emitNumThreads(IRBuilder &B);
  Value *emitTeamNum(IRBuilder &B);
  Value *emitNumTeams(IRBuilder &B);
  void emitBarrier(IRBuilder &B);
  /// @}

  /// Emits a device-function local variable under the current scheme with
  /// an *unknown* execution context (Fig. 4a/4b/4c): Legacy12 produces the
  /// runtime-checked stack-vs-coalesced structure, Simplified13 a plain
  /// __kmpc_alloc_shared. Returns the variable pointer and appends the
  /// cleanup (free/pop) actions to \p Cleanups, to be emitted before the
  /// function returns via emitCleanups().
  Value *emitDeviceFnLocal(IRBuilder &B, Type *Ty, const std::string &Name,
                           bool AddressTaken,
                           std::vector<std::function<void(IRBuilder &)>>
                               &Cleanups);

  /// Emits the recorded cleanup actions in reverse order.
  static void
  emitCleanups(IRBuilder &B,
               std::vector<std::function<void(IRBuilder &)>> &Cleanups);
};

/// Builds one `target` region (GPU kernel) with its outlined parallel
/// regions. Usage:
///
/// \code
///   TargetRegionBuilder TRB(CG, "kernel", {PtrTy, Int32Ty},
///                           ExecMode::SPMD, {/*teams*/128, /*thr*/128});
///   ... TRB.getBuilder(), TRB.emitParallelFor(...) ...
///   Function *K = TRB.finalize();
/// \endcode
class TargetRegionBuilder {
public:
  /// A variable captured into a parallel region.
  struct Capture {
    Value *Val;       ///< Value at the call site (pointer if ByRef).
    bool ByRef;       ///< Shared through its address vs copied by value.
    std::string Name; ///< For readable IR.
  };

  /// Maps call-site captured values to their in-wrapper equivalents.
  using CaptureMap = std::map<Value *, Value *>;

  /// Body callback for parallel loops: (builder, loop index, captures).
  using LoopBodyFn =
      std::function<void(IRBuilder &, Value *, const CaptureMap &)>;
  /// Body callback for bare parallel regions: (builder, captures).
  using RegionBodyFn = std::function<void(IRBuilder &, const CaptureMap &)>;
  /// Optional wrapper prologue: runs once per parallel-region invocation,
  /// before the loop — the place where C locals declared in the region
  /// body live (Clang hoists them to the outlined function entry). Values
  /// created here are visible to the body callback via C++ closure.
  using PrologueFn = std::function<void(IRBuilder &, const CaptureMap &)>;

  TargetRegionBuilder(OMPCodeGen &CG, const std::string &Name,
                      const std::vector<Type *> &ParamTypes,
                      ExecMode SyntacticMode, int NumTeams = -1,
                      int NumThreads = -1);

  Function *getKernel() const { return Kernel; }
  Argument *getParam(unsigned Idx) const { return Kernel->getArg(Idx); }
  IRBuilder &getBuilder() { return B; }
  IRContext &getContext() const { return CG.getContext(); }
  OMPCodeGen &getCodeGen() const { return CG; }

  /// Declares an explicit `map` clause for kernel parameter \p Idx — the
  /// analogue of writing `map(to: ...)` on the target construct. Explicit
  /// declarations are honored verbatim by the harness and are never
  /// overridden by the MapInference stage (docs/data-mapping.md).
  void setParamMapKind(unsigned Idx, MapKind K) {
    ParamMapping &PM =
        kernelParamMappingRef(Kernel->getKernelEnvironment(), Idx);
    PM.Declared = K;
    PM.DeclaredExplicit = true;
  }

  /// Emits a local variable in the target region (team scope). If
  /// \p AddressTaken, the variable is globalized per the active scheme
  /// (Sec. IV-A); cleanup is emitted automatically by finalize().
  Value *emitLocalVariable(Type *Ty, const std::string &Name,
                           bool AddressTaken);

  /// Emits a group of local variables declared in one lexical scope.
  /// The Legacy12 scheme aggregates the globalized ones into a single
  /// coalesced data-sharing push (as Clang 12 "combine[d] all globalized
  /// locals in a structure type and allocate[d] them all at once"); the
  /// Simplified13 scheme emits one __kmpc_alloc_shared per variable
  /// (Fig. 4c). Cleanups are registered with the team scope.
  /// When \p Cleanups is non-null the free/pop actions are appended there
  /// (for per-iteration scopes, released via OMPCodeGen::emitCleanups);
  /// otherwise they run at finalize().
  std::vector<Value *> emitLocalVariableGroup(
      const std::vector<std::pair<Type *, std::string>> &Vars,
      bool AddressTaken,
      std::vector<std::function<void(IRBuilder &)>> *Cleanups = nullptr);

  /// `teams distribute`: block-strided loop over [0, TripCount).
  void emitDistributeLoop(Value *TripCount,
                          const std::function<void(IRBuilder &, Value *)>
                              &Body);

  /// `parallel for` with a static,1 schedule: outlines the body into a
  /// wrapper invoked through __kmpc_parallel_51, with the nested-parallel
  /// sequential fallback guarded by a __kmpc_parallel_level check.
  /// \p TripCount is captured automatically.
  void emitParallelFor(Value *TripCount, std::vector<Capture> Captures,
                       const LoopBodyFn &Body, int NumThreadsClause = -1,
                       const PrologueFn &Prologue = PrologueFn());

  /// `distribute parallel for` (combined): the loop is strided over all
  /// threads of the league (teams x threads).
  void emitDistributeParallelFor(Value *TripCount,
                                 std::vector<Capture> Captures,
                                 const LoopBodyFn &Body,
                                 int NumThreadsClause = -1,
                                 const PrologueFn &Prologue = PrologueFn());

  /// Bare `parallel` region.
  void emitParallel(std::vector<Capture> Captures, const RegionBodyFn &Body,
                    int NumThreadsClause = -1);

  /// Emits a local variable inside the currently built parallel wrapper.
  /// Call only from within a body callback.
  Value *emitParallelLocalVariable(IRBuilder &BodyB, Type *Ty,
                                   const std::string &Name,
                                   bool AddressTaken);

  /// Closes the region: frees globalized locals, emits the legacy worker
  /// state machine (Legacy12 generic kernels), target_deinit, and ret.
  /// Returns the kernel function.
  Function *finalize();

private:
  OMPCodeGen &CG;
  Function *Kernel;
  IRBuilder B;
  ExecMode Mode;
  BasicBlock *WorkerEntryBB = nullptr; ///< Legacy12 generic state machine.
  BasicBlock *ExitBB = nullptr;
  bool Finalized = false;
  /// Cleanups for team-scope globalized variables (reverse order).
  std::vector<std::function<void(IRBuilder &)>> TeamCleanups;
  /// Cleanups for the wrapper currently being built.
  std::vector<std::function<void(IRBuilder &)>> *ActiveParallelCleanups =
      nullptr;
  /// Outlined wrapper functions, for the legacy state machine cascade.
  std::vector<Function *> Wrappers;

  /// Shared lowering for all parallel flavours.
  void emitParallelCommon(Value *TripCount, bool DistributeOverLeague,
                          std::vector<Capture> Captures,
                          const LoopBodyFn &LoopBody,
                          const RegionBodyFn &RegionBody,
                          int NumThreadsClause,
                          const PrologueFn &Prologue = PrologueFn());

  /// Allocates storage for a (possibly shared) variable at team scope.
  Value *emitTeamScopeAlloc(Type *Ty, const std::string &Name,
                            bool PotentiallyShared);
};

} // namespace ompgpu

#endif // OMPGPU_FRONTEND_OMPCODEGEN_H
