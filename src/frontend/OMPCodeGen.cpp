//===- frontend/OMPCodeGen.cpp - OpenMP device code generation -------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "frontend/OMPCodeGen.h"
#include "support/ErrorHandling.h"

using namespace ompgpu;

OMPCodeGen::OMPCodeGen(Module &M, CodeGenOptions Opts) : M(M), Opts(Opts) {}

Function *OMPCodeGen::getRTFn(RTFn Fn) const {
  return getOrCreateRTFn(M, Fn);
}

std::string OMPCodeGen::nextOutlinedName(const std::string &KernelName) {
  return KernelName + "__omp_outlined__" + std::to_string(OutlinedCounter++);
}

void OMPCodeGen::attachAllocAnchor(CallInst *Alloc,
                                   const std::string &VarName) {
  std::string Anchor =
      "alloc:" + Alloc->getFunction()->getName() + ":" + VarName;
  unsigned &Count = UsedAllocAnchors[Anchor];
  if (Count++)
    Anchor += "." + std::to_string(Count - 1);
  Alloc->setAnchor(std::move(Anchor));
}

std::string OMPCodeGen::nextBarrierAnchor(const std::string &FunctionName) {
  return "barrier:" + FunctionName + ":" +
         std::to_string(BarrierCounters[FunctionName]++);
}

//===----------------------------------------------------------------------===//
// Query lowerings (runtime-call folding targets, Sec. IV-C)
//===----------------------------------------------------------------------===//

Value *OMPCodeGen::emitThreadNum(IRBuilder &B) {
  IRContext &Ctx = getContext();
  Value *IsSPMD = B.createCall(getRTFn(RTFn::IsSPMDMode), {}, "em");
  return emitSelectViaCFG(
      B, IsSPMD, Ctx.getInt32Ty(), "omp_tid",
      [&](IRBuilder &TB) -> Value * {
        return TB.createCall(getRTFn(RTFn::HardwareThreadId), {}, "hw_tid");
      },
      [&](IRBuilder &EB) -> Value * {
        Value *PL = EB.createCall(getRTFn(RTFn::ParallelLevel), {}, "pl");
        Value *InPar = EB.createICmp(ICmpPred::SGT, PL, EB.getInt32(0),
                                     "in_parallel");
        return emitSelectViaCFG(
            EB, InPar, Ctx.getInt32Ty(), "omp_tid.gen",
            [&](IRBuilder &TB2) -> Value * {
              return TB2.createCall(getRTFn(RTFn::HardwareThreadId), {},
                                    "hw_tid");
            },
            [&](IRBuilder &EB2) -> Value * {
              (void)EB2;
              return Ctx.getInt32(0);
            });
      });
}

Value *OMPCodeGen::emitNumThreads(IRBuilder &B) {
  IRContext &Ctx = getContext();
  Value *IsSPMD = B.createCall(getRTFn(RTFn::IsSPMDMode), {}, "em");
  return emitSelectViaCFG(
      B, IsSPMD, Ctx.getInt32Ty(), "omp_nthreads",
      [&](IRBuilder &TB) -> Value * {
        return TB.createCall(getRTFn(RTFn::HardwareNumThreads), {},
                             "hw_nthreads");
      },
      [&](IRBuilder &EB) -> Value * {
        Value *PL = EB.createCall(getRTFn(RTFn::ParallelLevel), {}, "pl");
        Value *InPar = EB.createICmp(ICmpPred::SGT, PL, EB.getInt32(0),
                                     "in_parallel");
        return emitSelectViaCFG(
            EB, InPar, Ctx.getInt32Ty(), "omp_nthreads.gen",
            [&](IRBuilder &TB2) -> Value * {
              // Generic mode reserves the main thread's warp. Clamp to one
              // worker when the block is no wider than a warp (a 64-wide
              // wavefront can swallow a whole 64-thread block) — the
              // runtime's worker accounting clamps identically, and an
              // unclamped zero here becomes a zero-stride worksharing
              // loop.
              Value *HW = TB2.createCall(getRTFn(RTFn::HardwareNumThreads),
                                         {}, "hw_nthreads");
              Value *WS =
                  TB2.createCall(getRTFn(RTFn::WarpSize), {}, "warpsize");
              Value *Raw = TB2.createSub(HW, WS, "par_nthreads.raw");
              Value *HasWorkers = TB2.createICmp(
                  ICmpPred::SGT, Raw, TB2.getInt32(0), "has_workers");
              return emitSelectViaCFG(
                  TB2, HasWorkers, Ctx.getInt32Ty(), "par_nthreads",
                  [&](IRBuilder &TB3) -> Value * {
                    (void)TB3;
                    return Raw;
                  },
                  [&](IRBuilder &EB3) -> Value * {
                    return EB3.getInt32(1);
                  });
            },
            [&](IRBuilder &EB2) -> Value * {
              (void)EB2;
              return Ctx.getInt32(1);
            });
      });
}

Value *OMPCodeGen::emitTeamNum(IRBuilder &B) {
  return B.createCall(getRTFn(RTFn::GetTeamNum), {}, "team");
}

Value *OMPCodeGen::emitNumTeams(IRBuilder &B) {
  return B.createCall(getRTFn(RTFn::GetNumTeams), {}, "nteams");
}

void OMPCodeGen::emitBarrier(IRBuilder &B) {
  // Both arms of the runtime dispatch are one logical source barrier, so
  // they share a single profile anchor (only one arm ever executes).
  std::string Anchor =
      nextBarrierAnchor(B.getInsertBlock()->getParent()->getName());
  Value *IsSPMD = B.createCall(getRTFn(RTFn::IsSPMDMode), {}, "em");
  emitIfThenElse(
      B, IsSPMD, "omp_barrier",
      [&](IRBuilder &TB) {
        TB.createCall(getRTFn(RTFn::BarrierSimpleSPMD), {})
            ->setAnchor(Anchor);
      },
      [&](IRBuilder &EB) {
        EB.createCall(getRTFn(RTFn::Barrier), {})->setAnchor(Anchor);
      });
}

//===----------------------------------------------------------------------===//
// Device-function locals (Fig. 4)
//===----------------------------------------------------------------------===//

Value *OMPCodeGen::emitDeviceFnLocal(
    IRBuilder &B, Type *Ty, const std::string &Name, bool AddressTaken,
    std::vector<std::function<void(IRBuilder &)>> &Cleanups) {
  IRContext &Ctx = getContext();
  if (!AddressTaken || Opts.CudaMode)
    return B.createAlloca(Ty, Name);

  uint64_t Size = Ty->getSizeInBytes();
  if (Opts.Scheme == CodeGenScheme::Simplified13) {
    // Fig. 4c: one runtime allocation per variable, no special cases.
    CallInst *Ptr = B.createCall(getRTFn(RTFn::AllocShared),
                                 {Ctx.getInt64(Size)}, Name);
    attachAllocAnchor(Ptr, Name);
    Function *Free = getRTFn(RTFn::FreeShared);
    Cleanups.push_back([Ptr, Size, Free](IRBuilder &CB) {
      CB.createCall(Free, {(Value *)Ptr, CB.getInt64(Size)});
    });
    return Ptr;
  }

  // Fig. 4b: runtime dispatch between stack memory (SPMD) and the
  // warp-coalesced data sharing stack (generic).
  Value *IsSPMD = B.createCall(getRTFn(RTFn::IsSPMDMode), {}, "em");
  Value *Ptr = emitSelectViaCFG(
      B, IsSPMD, Ctx.getPtrTy(), Name,
      [&](IRBuilder &TB) -> Value * {
        Value *A = TB.createAlloca(Ty, Name + ".stack");
        return TB.createAddrSpaceCast(A, AddrSpace::Generic,
                                      Name + ".cast");
      },
      [&](IRBuilder &EB) -> Value * {
        CallInst *Push = EB.createCall(getRTFn(RTFn::CoalescedPushStack),
                                       {EB.getInt64(Size), EB.getInt32(0)},
                                       Name + ".glob");
        attachAllocAnchor(Push, Name);
        return Push;
      });
  Function *IsSPMDFn = getRTFn(RTFn::IsSPMDMode);
  Function *Pop = getRTFn(RTFn::PopStack);
  Cleanups.push_back([Ptr, IsSPMDFn, Pop](IRBuilder &CB) {
    Value *EM = CB.createCall(IsSPMDFn, {}, "em");
    Value *NotSPMD = CB.createXor(EM, CB.getInt1(true), "not_em");
    emitIfThen(CB, NotSPMD, "pop",
               [&](IRBuilder &TB) { TB.createCall(Pop, {Ptr}); });
  });
  return Ptr;
}

void OMPCodeGen::emitCleanups(
    IRBuilder &B, std::vector<std::function<void(IRBuilder &)>> &Cleanups) {
  for (auto It = Cleanups.rbegin(), E = Cleanups.rend(); It != E; ++It)
    (*It)(B);
  Cleanups.clear();
}

//===----------------------------------------------------------------------===//
// TargetRegionBuilder
//===----------------------------------------------------------------------===//

TargetRegionBuilder::TargetRegionBuilder(OMPCodeGen &CG,
                                         const std::string &Name,
                                         const std::vector<Type *> &Params,
                                         ExecMode SyntacticMode,
                                         int NumTeams, int NumThreads)
    : CG(CG), B(CG.getContext()), Mode(SyntacticMode) {
  Module &M = CG.getModule();
  IRContext &Ctx = CG.getContext();

  FunctionType *KTy = Ctx.getFunctionTy(Ctx.getVoidTy(), Params);
  Kernel = M.createFunction(Name, KTy, Linkage::External);
  Kernel->setKernel(true);
  KernelEnvironment &Env = Kernel->getKernelEnvironment();
  Env.Mode = SyntacticMode;
  Env.MaxThreads = NumThreads;
  Env.NumTeams = NumTeams;

  bool UseGenericSM =
      SyntacticMode == ExecMode::Generic &&
      CG.getOptions().Scheme == CodeGenScheme::Simplified13;
  Env.UseGenericStateMachine = UseGenericSM;

  BasicBlock *Entry = Kernel->createBlock("entry");
  BasicBlock *UserCode = Kernel->createBlock("user_code.entry");
  ExitBB = Kernel->createBlock("exit");

  B.setInsertPoint(Entry);
  int32_t ModeFlag = SyntacticMode == ExecMode::SPMD
                         ? OMP_TGT_EXEC_MODE_SPMD
                         : OMP_TGT_EXEC_MODE_GENERIC;
  Value *ExecTid = B.createCall(
      CG.getRTFn(RTFn::TargetInit),
      {Ctx.getInt32(ModeFlag), Ctx.getInt1(UseGenericSM)}, "exec_tid");
  Value *IsMain =
      B.createICmpEQ(ExecTid, Ctx.getInt32(-1), "thread.is_main");

  if (SyntacticMode == ExecMode::Generic &&
      CG.getOptions().Scheme == CodeGenScheme::Legacy12) {
    // Legacy12 emits a front-end worker state machine (finalize()).
    WorkerEntryBB = Kernel->createBlock("worker_state_machine.begin");
    B.createCondBr(IsMain, UserCode, WorkerEntryBB);
  } else {
    B.createCondBr(IsMain, UserCode, ExitBB);
  }

  IRBuilder ExitB(Ctx);
  ExitB.setInsertPoint(ExitBB);
  ExitB.createRetVoid();

  B.setInsertPoint(UserCode);
}

Value *TargetRegionBuilder::emitTeamScopeAlloc(Type *Ty,
                                               const std::string &Name,
                                               bool PotentiallyShared) {
  IRContext &Ctx = getContext();
  const CodeGenOptions &Opts = CG.getOptions();
  if (!PotentiallyShared || Opts.CudaMode)
    return B.createAlloca(Ty, Name);

  uint64_t Size = Ty->getSizeInBytes();
  if (Opts.Scheme == CodeGenScheme::Simplified13) {
    CallInst *Ptr = B.createCall(CG.getRTFn(RTFn::AllocShared),
                                 {Ctx.getInt64(Size)}, Name);
    CG.attachAllocAnchor(Ptr, Name);
    Function *Free = CG.getRTFn(RTFn::FreeShared);
    TeamCleanups.push_back([Ptr, Size, Free](IRBuilder &CB) {
      CB.createCall(Free, {(Value *)Ptr, CB.getInt64(Size)});
    });
    return Ptr;
  }

  // Legacy12: SPMD regions used plain stack memory (the unsound special
  // case removed by the paper); generic regions use the coalesced stack.
  if (Mode == ExecMode::SPMD)
    return B.createAlloca(Ty, Name);
  CallInst *Ptr = B.createCall(
      CG.getRTFn(RTFn::CoalescedPushStack),
      {Ctx.getInt64(Size), Ctx.getInt32(0)}, Name);
  CG.attachAllocAnchor(Ptr, Name);
  Function *Pop = CG.getRTFn(RTFn::PopStack);
  TeamCleanups.push_back(
      [Ptr, Pop](IRBuilder &CB) { CB.createCall(Pop, {Ptr}); });
  return Ptr;
}

Value *TargetRegionBuilder::emitLocalVariable(Type *Ty,
                                              const std::string &Name,
                                              bool AddressTaken) {
  return emitTeamScopeAlloc(Ty, Name, AddressTaken);
}

std::vector<Value *> TargetRegionBuilder::emitLocalVariableGroup(
    const std::vector<std::pair<Type *, std::string>> &Vars,
    bool AddressTaken,
    std::vector<std::function<void(IRBuilder &)>> *Cleanups) {
  IRContext &Ctx = getContext();
  const CodeGenOptions &Opts = CG.getOptions();
  std::vector<std::function<void(IRBuilder &)>> &CleanupList =
      Cleanups ? *Cleanups : TeamCleanups;
  std::vector<Value *> Ptrs;

  bool Aggregate = AddressTaken && !Opts.CudaMode &&
                   Opts.Scheme == CodeGenScheme::Legacy12 &&
                   Mode == ExecMode::Generic;
  if (!Aggregate) {
    for (const auto &[Ty, Name] : Vars) {
      if (!AddressTaken || Opts.CudaMode ||
          (Opts.Scheme == CodeGenScheme::Legacy12 &&
           Mode == ExecMode::SPMD)) {
        Ptrs.push_back(B.createAlloca(Ty, Name));
        continue;
      }
      if (Opts.Scheme == CodeGenScheme::Simplified13) {
        uint64_t Size = Ty->getSizeInBytes();
        CallInst *Ptr = B.createCall(CG.getRTFn(RTFn::AllocShared),
                                     {Ctx.getInt64(Size)}, Name);
        CG.attachAllocAnchor(Ptr, Name);
        Function *Free = CG.getRTFn(RTFn::FreeShared);
        CleanupList.push_back([Ptr, Size, Free](IRBuilder &CB) {
          CB.createCall(Free, {(Value *)Ptr, CB.getInt64(Size)});
        });
        Ptrs.push_back(Ptr);
        continue;
      }
      // Legacy12 SPMD handled above; Legacy12 generic is the aggregate
      // path; reaching here means an unexpected combination.
      Ptrs.push_back(B.createAlloca(Ty, Name));
    }
    return Ptrs;
  }

  // Legacy12: one combined push, variables addressed as struct fields.
  std::vector<Type *> FieldTypes;
  for (const auto &[Ty, Name] : Vars)
    FieldTypes.push_back(Ty);
  StructType *Combined = Ctx.getStructTy(FieldTypes);
  CallInst *Base = B.createCall(
      CG.getRTFn(RTFn::CoalescedPushStack),
      {Ctx.getInt64(Combined->getSizeInBytes()), Ctx.getInt32(0)},
      "combined_globals");
  CG.attachAllocAnchor(Base, "combined_globals");
  for (unsigned I = 0, E = Vars.size(); I != E; ++I)
    Ptrs.push_back(B.createGEP(Combined, Base,
                               {Ctx.getInt64(0), Ctx.getInt64(I)},
                               Vars[I].second));
  Function *Pop = CG.getRTFn(RTFn::PopStack);
  CleanupList.push_back(
      [Base, Pop](IRBuilder &CB) { CB.createCall(Pop, {Base}); });
  return Ptrs;
}

Value *TargetRegionBuilder::emitParallelLocalVariable(
    IRBuilder &BodyB, Type *Ty, const std::string &Name,
    bool AddressTaken) {
  assert(ActiveParallelCleanups &&
         "emitParallelLocalVariable outside a parallel body");
  IRContext &Ctx = getContext();
  const CodeGenOptions &Opts = CG.getOptions();
  if (!AddressTaken || Opts.CudaMode)
    return BodyB.createAlloca(Ty, Name);

  uint64_t Size = Ty->getSizeInBytes();
  if (Opts.Scheme == CodeGenScheme::Simplified13) {
    CallInst *Ptr = BodyB.createCall(CG.getRTFn(RTFn::AllocShared),
                                     {Ctx.getInt64(Size)}, Name);
    CG.attachAllocAnchor(Ptr, Name);
    Function *Free = CG.getRTFn(RTFn::FreeShared);
    ActiveParallelCleanups->push_back([Ptr, Size, Free](IRBuilder &CB) {
      CB.createCall(Free, {(Value *)Ptr, CB.getInt64(Size)});
    });
    return Ptr;
  }

  if (Mode == ExecMode::SPMD)
    return BodyB.createAlloca(Ty, Name);
  // Legacy12 in an active (generic) parallel region: warp-coalesced push.
  CallInst *Ptr = BodyB.createCall(
      CG.getRTFn(RTFn::CoalescedPushStack),
      {Ctx.getInt64(Size), Ctx.getInt32(1)}, Name);
  CG.attachAllocAnchor(Ptr, Name);
  Function *Pop = CG.getRTFn(RTFn::PopStack);
  ActiveParallelCleanups->push_back(
      [Ptr, Pop](IRBuilder &CB) { CB.createCall(Pop, {Ptr}); });
  return Ptr;
}

void TargetRegionBuilder::emitDistributeLoop(
    Value *TripCount,
    const std::function<void(IRBuilder &, Value *)> &Body) {
  Value *Team = CG.emitTeamNum(B);
  Value *NTeams = CG.emitNumTeams(B);
  emitCountedLoop(B, Team, TripCount, NTeams, "distribute", Body);
}

void TargetRegionBuilder::emitParallelFor(Value *TripCount,
                                          std::vector<Capture> Captures,
                                          const LoopBodyFn &Body,
                                          int NumThreadsClause,
                                          const PrologueFn &Prologue) {
  emitParallelCommon(TripCount, /*DistributeOverLeague=*/false,
                     std::move(Captures), Body, nullptr, NumThreadsClause,
                     Prologue);
}

void TargetRegionBuilder::emitDistributeParallelFor(
    Value *TripCount, std::vector<Capture> Captures, const LoopBodyFn &Body,
    int NumThreadsClause, const PrologueFn &Prologue) {
  emitParallelCommon(TripCount, /*DistributeOverLeague=*/true,
                     std::move(Captures), Body, nullptr, NumThreadsClause,
                     Prologue);
}

void TargetRegionBuilder::emitParallel(std::vector<Capture> Captures,
                                       const RegionBodyFn &Body,
                                       int NumThreadsClause) {
  emitParallelCommon(nullptr, /*DistributeOverLeague=*/false, std::move(
                         Captures),
                     nullptr, Body, NumThreadsClause);
}

void TargetRegionBuilder::emitParallelCommon(
    Value *TripCount, bool DistributeOverLeague,
    std::vector<Capture> Captures, const LoopBodyFn &LoopBody,
    const RegionBodyFn &RegionBody, int NumThreadsClause,
    const PrologueFn &Prologue) {
  IRContext &Ctx = getContext();
  Module &M = CG.getModule();
  const CodeGenOptions &Opts = CG.getOptions();

  if (TripCount)
    Captures.insert(Captures.begin(),
                    Capture{TripCount, /*ByRef=*/false, "trip_count"});

  // Outlined wrapper: void(ptr CapturedArgs).
  Function *Wrapper =
      M.createFunction(CG.nextOutlinedName(Kernel->getName()) + "_wrapper",
                       getParallelWrapperType(Ctx), Linkage::Internal);
  Wrappers.push_back(Wrapper);

  // Captured-variables frame type.
  std::vector<Type *> FieldTypes;
  for (const Capture &C : Captures)
    FieldTypes.push_back(C.ByRef ? (Type *)Ctx.getPtrTy()
                                 : C.Val->getType());
  StructType *FrameTy = Ctx.getStructTy(FieldTypes);

  // Call-site frame allocation. SPMD regions build a private frame on the
  // stack; generic regions must share it with the workers.
  Value *FramePtr = nullptr;
  std::function<void(IRBuilder &)> FrameCleanup;
  if (!Captures.empty()) {
    if (Mode == ExecMode::SPMD || Opts.CudaMode) {
      FramePtr = B.createAlloca(FrameTy, "captured_frame");
    } else if (Opts.Scheme == CodeGenScheme::Simplified13) {
      CallInst *Frame = B.createCall(
          CG.getRTFn(RTFn::AllocShared),
          {Ctx.getInt64(FrameTy->getSizeInBytes())}, "captured_frame");
      CG.attachAllocAnchor(Frame, "captured_frame");
      FramePtr = Frame;
      Function *Free = CG.getRTFn(RTFn::FreeShared);
      uint64_t Size = FrameTy->getSizeInBytes();
      FrameCleanup = [FramePtr, Size, Free](IRBuilder &CB) {
        CB.createCall(Free, {FramePtr, CB.getInt64(Size)});
      };
    } else {
      CallInst *Frame = B.createCall(
          CG.getRTFn(RTFn::CoalescedPushStack),
          {Ctx.getInt64(FrameTy->getSizeInBytes()), Ctx.getInt32(0)},
          "captured_frame");
      CG.attachAllocAnchor(Frame, "captured_frame");
      FramePtr = Frame;
      Function *Pop = CG.getRTFn(RTFn::PopStack);
      FrameCleanup = [FramePtr, Pop](IRBuilder &CB) {
        CB.createCall(Pop, {FramePtr});
      };
    }
    for (unsigned I = 0, E = Captures.size(); I != E; ++I) {
      Value *FieldPtr = B.createGEP(
          FrameTy, FramePtr, {Ctx.getInt64(0), Ctx.getInt64(I)},
          "frame." + Captures[I].Name);
      B.createStore(Captures[I].Val, FieldPtr);
    }
  }
  Value *FrameArg =
      FramePtr ? FramePtr : (Value *)Ctx.getNullPtr(AddrSpace::Generic);

  // Nested-parallelism sequential fallback, guarded by the parallel level
  // (removed by runtime-call folding when the level is known, Sec. IV-C).
  Value *PL = B.createCall(CG.getRTFn(RTFn::ParallelLevel), {}, "pl");
  Value *Nested =
      B.createICmp(ICmpPred::SGT, PL, Ctx.getInt32(0), "nested_parallel");
  emitIfThenElse(
      B, Nested, "parallel",
      [&](IRBuilder &TB) {
        // Sequentialized nested parallel region.
        TB.createCall(Wrapper, {FrameArg});
      },
      [&](IRBuilder &EB) {
        EB.createCall(CG.getRTFn(RTFn::Parallel51),
                      {Wrapper, FrameArg, Ctx.getInt32(NumThreadsClause)})
            ->setAnchor("parallel:" + Wrapper->getName());
      });

  if (FrameCleanup)
    FrameCleanup(B);

  // Wrapper body.
  IRBuilder WB(Ctx);
  BasicBlock *WEntry = Wrapper->createBlock("entry");
  WB.setInsertPoint(WEntry);
  Argument *ArgsParam = Wrapper->getArg(0);
  ArgsParam->setName("captured_args");

  CaptureMap Map;
  Value *WrapperTrip = nullptr;
  for (unsigned I = 0, E = Captures.size(); I != E; ++I) {
    Value *FieldPtr =
        WB.createGEP(FrameTy, ArgsParam, {Ctx.getInt64(0), Ctx.getInt64(I)},
                     "cap." + Captures[I].Name + ".addr");
    Value *Loaded = WB.createLoad(FieldTypes[I], FieldPtr,
                                  "cap." + Captures[I].Name);
    Map[Captures[I].Val] = Loaded;
    if (TripCount && I == 0)
      WrapperTrip = Loaded;
  }

  std::vector<std::function<void(IRBuilder &)>> ParallelCleanups;
  auto *SavedCleanups = ActiveParallelCleanups;
  ActiveParallelCleanups = &ParallelCleanups;

  if (Prologue)
    Prologue(WB, Map);

  if (LoopBody) {
    Value *Tid = CG.emitThreadNum(WB);
    Value *NThreads = CG.emitNumThreads(WB);
    Value *Lo = Tid;
    Value *Stride = NThreads;
    if (DistributeOverLeague) {
      Value *Team = CG.emitTeamNum(WB);
      Value *NTeams = CG.emitNumTeams(WB);
      Lo = WB.createAdd(WB.createMul(Team, NThreads, "team_base"), Tid,
                        "league_tid");
      Stride = WB.createMul(NTeams, NThreads, "league_size");
    }
    emitCountedLoop(WB, Lo, WrapperTrip, Stride, "parallel_for",
                    [&](IRBuilder &LB, Value *Idx) { LoopBody(LB, Idx,
                                                             Map); });
  } else {
    RegionBody(WB, Map);
  }

  OMPCodeGen::emitCleanups(WB, ParallelCleanups);
  ActiveParallelCleanups = SavedCleanups;
  WB.createRetVoid();
}

Function *TargetRegionBuilder::finalize() {
  assert(!Finalized && "finalize() called twice");
  Finalized = true;
  IRContext &Ctx = getContext();

  OMPCodeGen::emitCleanups(B, TeamCleanups);
  int32_t ModeFlag = Mode == ExecMode::SPMD ? OMP_TGT_EXEC_MODE_SPMD
                                            : OMP_TGT_EXEC_MODE_GENERIC;
  B.createCall(CG.getRTFn(RTFn::TargetDeinit), {Ctx.getInt32(ModeFlag)});
  B.createBr(ExitBB);

  if (WorkerEntryBB) {
    // Legacy12 front-end state machine with function-pointer if-cascade
    // and indirect fallback (Sec. IV-B, [4]). Taking the wrappers'
    // addresses here is what inflates register counts (PR46450).
    IRBuilder WB(Ctx);
    WB.setInsertPoint(WorkerEntryBB);
    Value *WorkFnAddr = WB.createAlloca(Ctx.getPtrTy(), "work_fn.addr");

    BasicBlock *Await = Kernel->createBlock("worker.await");
    BasicBlock *ActiveCheck = Kernel->createBlock("worker.active_check");
    BasicBlock *Done = Kernel->createBlock("worker.done");
    WB.createBr(Await);

    WB.setInsertPoint(Await);
    WB.createCall(CG.getRTFn(RTFn::BarrierSimpleSPMD), {})
        ->setAnchor(CG.nextBarrierAnchor(Kernel->getName()));
    Value *IsActive = WB.createCall(CG.getRTFn(RTFn::KernelParallel),
                                    {WorkFnAddr}, "is_active");
    Value *WorkFn =
        WB.createLoad(Ctx.getPtrTy(), WorkFnAddr, "work_fn");
    Value *IsDone = WB.createICmpEQ(
        WorkFn, Ctx.getNullPtr(AddrSpace::Generic), "no_more_work");
    WB.createCondBr(IsDone, ExitBB, ActiveCheck);

    WB.setInsertPoint(ActiveCheck);
    BasicBlock *FirstCheck = Kernel->createBlock("worker.check");
    WB.createCondBr(IsActive, FirstCheck, Done);

    WB.setInsertPoint(FirstCheck);
    for (Function *W : Wrappers) {
      Value *IsThis = WB.createICmpEQ(WorkFn, W, "is." + W->getName());
      BasicBlock *Exec = Kernel->createBlock("worker.exec");
      BasicBlock *Next = Kernel->createBlock("worker.check");
      WB.createCondBr(IsThis, Exec, Next);
      WB.setInsertPoint(Exec);
      Value *Args =
          WB.createCall(CG.getRTFn(RTFn::KernelGetArgs), {}, "work_args");
      WB.createCall(W, {Args});
      WB.createBr(Done);
      WB.setInsertPoint(Next);
    }
    // Indirect fallback: parallel regions from other translation units.
    Value *Args =
        WB.createCall(CG.getRTFn(RTFn::KernelGetArgs), {}, "work_args");
    WB.createIndirectCall(getParallelWrapperType(Ctx), WorkFn, {Args});
    WB.createBr(Done);

    WB.setInsertPoint(Done);
    WB.createCall(CG.getRTFn(RTFn::KernelEndParallel), {});
    WB.createCall(CG.getRTFn(RTFn::BarrierSimpleSPMD), {})
        ->setAnchor(CG.nextBarrierAnchor(Kernel->getName()));
    WB.createBr(Await);
  }

  return Kernel;
}
