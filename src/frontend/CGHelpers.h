//===- frontend/CGHelpers.h - Structured control-flow helpers ---*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small structured codegen helpers (loops, conditionals) shared by the
/// OpenMP front-end and the workload kernels.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_FRONTEND_CGHELPERS_H
#define OMPGPU_FRONTEND_CGHELPERS_H

#include "ir/IRBuilder.h"

#include <functional>
#include <string>

namespace ompgpu {

/// Emits `for (i = Lo; i < Hi; i += Step) Body(i)`. The builder must be
/// positioned in a block with no terminator; on return it is positioned in
/// the loop exit block. All values are of the same integer type.
void emitCountedLoop(IRBuilder &B, Value *Lo, Value *Hi, Value *Step,
                     const std::string &Name,
                     const std::function<void(IRBuilder &, Value *)> &Body);

/// Emits `while (CondGen()) BodyGen()`. CondGen is emitted in a fresh
/// header block and must return an i1; the builder ends up in the exit
/// block.
void emitWhileLoop(IRBuilder &B, const std::string &Name,
                   const std::function<Value *(IRBuilder &)> &CondGen,
                   const std::function<void(IRBuilder &)> &BodyGen);

/// Emits `if (Cond) Then()`. The builder ends up in the join block.
void emitIfThen(IRBuilder &B, Value *Cond, const std::string &Name,
                const std::function<void(IRBuilder &)> &Then);

/// Emits `if (Cond) Then() else Else()`. The builder ends up in the join
/// block. Returns nothing; use phis via the callbacks if values are needed.
void emitIfThenElse(IRBuilder &B, Value *Cond, const std::string &Name,
                    const std::function<void(IRBuilder &)> &Then,
                    const std::function<void(IRBuilder &)> &Else);

/// Emits `Cond ? Then() : Else()` producing a value of \p Ty via a phi.
Value *emitSelectViaCFG(IRBuilder &B, Value *Cond, Type *Ty,
                        const std::string &Name,
                        const std::function<Value *(IRBuilder &)> &Then,
                        const std::function<Value *(IRBuilder &)> &Else);

} // namespace ompgpu

#endif // OMPGPU_FRONTEND_CGHELPERS_H
