//===- frontend/OMPRuntime.h - Device runtime declarations ------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declarations and classification of OpenMP device runtime functions
/// (see OMPRuntime.def). The front-end emits calls to these; the OpenMPOpt
/// pass recognizes them by identity; the GPU simulator binds them to
/// native implementations.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_FRONTEND_OMPRUNTIME_H
#define OMPGPU_FRONTEND_OMPRUNTIME_H

#include <cstdint>
#include <string>

namespace ompgpu {

class Function;
class FunctionType;
class IRContext;
class Module;

/// Execution mode flag values passed to __kmpc_target_init/deinit.
enum OMPTgtExecMode : int32_t {
  OMP_TGT_EXEC_MODE_GENERIC = 1,
  OMP_TGT_EXEC_MODE_SPMD = 2,
};

/// Enumerates the known device runtime functions.
enum class RTFn : uint8_t {
#define OMP_RTL(Enum, ...) Enum,
#include "frontend/OMPRuntime.def"
  NumFunctions,
};

/// Returns the runtime function's linkage name.
const char *getRTFnName(RTFn Fn);

/// Returns the runtime function's type.
FunctionType *getRTFnType(RTFn Fn, IRContext &Ctx);

/// Declares (or finds) the runtime function in \p M with its canonical
/// attributes applied.
Function *getOrCreateRTFn(Module &M, RTFn Fn);

/// Returns true if \p F is the declaration of \p Fn.
bool isRTFn(const Function *F, RTFn Fn);

/// Returns true if \p F is any known runtime function.
bool isAnyRTFn(const Function *F);

/// The wrapper function type for parallel regions: void(ptr CapturedArgs).
FunctionType *getParallelWrapperType(IRContext &Ctx);

} // namespace ompgpu

#endif // OMPGPU_FRONTEND_OMPRUNTIME_H
