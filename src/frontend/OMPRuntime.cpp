//===- frontend/OMPRuntime.cpp - Device runtime declarations ---------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "frontend/OMPRuntime.h"
#include "ir/IRContext.h"
#include "ir/Module.h"
#include "support/ErrorHandling.h"

using namespace ompgpu;

const char *ompgpu::getRTFnName(RTFn Fn) {
  switch (Fn) {
#define OMP_RTL(Enum, Name, ...)                                              \
  case RTFn::Enum:                                                            \
    return Name;
#include "frontend/OMPRuntime.def"
  case RTFn::NumFunctions:
    break;
  }
  ompgpu_unreachable("invalid runtime function");
}

namespace {

Type *getTypeByToken(IRContext &Ctx, const std::string &Token) {
  if (Token == "Void")
    return Ctx.getVoidTy();
  if (Token == "Int1")
    return Ctx.getInt1Ty();
  if (Token == "Int32")
    return Ctx.getInt32Ty();
  if (Token == "Int64")
    return Ctx.getInt64Ty();
  if (Token == "Ptr")
    return Ctx.getPtrTy();
  ompgpu_unreachable("unknown type token in OMPRuntime.def");
}

} // namespace

FunctionType *ompgpu::getRTFnType(RTFn Fn, IRContext &Ctx) {
  switch (Fn) {
#define OMP_RTL(Enum, Name, Ret, ...)                                         \
  case RTFn::Enum: {                                                          \
    std::vector<Type *> Params;                                               \
    std::string All = #__VA_ARGS__;                                           \
    std::string Cur;                                                          \
    for (char C : All) {                                                      \
      if (C == ',' || C == ' ') {                                             \
        if (!Cur.empty())                                                     \
          Params.push_back(getTypeByToken(Ctx, Cur));                         \
        Cur.clear();                                                          \
      } else {                                                                \
        Cur += C;                                                             \
      }                                                                       \
    }                                                                         \
    if (!Cur.empty())                                                         \
      Params.push_back(getTypeByToken(Ctx, Cur));                             \
    return Ctx.getFunctionTy(getTypeByToken(Ctx, #Ret), std::move(Params));   \
  }
#include "frontend/OMPRuntime.def"
  case RTFn::NumFunctions:
    break;
  }
  ompgpu_unreachable("invalid runtime function");
}

Function *ompgpu::getOrCreateRTFn(Module &M, RTFn Fn) {
  IRContext &Ctx = M.getContext();
  Function *F = M.getOrInsertFunction(getRTFnName(Fn), getRTFnType(Fn, Ctx));

  // Canonical attributes: these encode the OpenMP semantics the analyses
  // rely on (which runtime calls synchronize, allocate, or merely query).
  switch (Fn) {
  case RTFn::IsSPMDMode:
  case RTFn::ParallelLevel:
  case RTFn::IsGenericMainThread:
  case RTFn::HardwareThreadId:
  case RTFn::HardwareNumThreads:
  case RTFn::WarpSize:
  case RTFn::GetThreadNum:
  case RTFn::GetNumThreads:
  case RTFn::GetTeamNum:
  case RTFn::GetNumTeams:
    F->addFnAttr(FnAttr::ReadNone);
    F->addFnAttr(FnAttr::NoSync);
    F->addFnAttr(FnAttr::NoFree);
    F->addFnAttr(FnAttr::WillReturn);
    break;
  case RTFn::AllocShared:
  case RTFn::CoalescedPushStack:
    F->addFnAttr(FnAttr::NoSync);
    F->addFnAttr(FnAttr::NoFree);
    F->addFnAttr(FnAttr::WillReturn);
    break;
  case RTFn::FreeShared:
  case RTFn::PopStack:
    F->addFnAttr(FnAttr::NoSync);
    F->addFnAttr(FnAttr::WillReturn);
    break;
  case RTFn::Barrier:
  case RTFn::BarrierSimpleSPMD:
    F->addFnAttr(FnAttr::Convergent);
    F->addFnAttr(FnAttr::NoFree);
    F->addFnAttr(FnAttr::WillReturn);
    break;
  case RTFn::TargetInit:
  case RTFn::TargetDeinit:
  case RTFn::Parallel51:
  case RTFn::KernelParallel:
  case RTFn::KernelGetArgs:
  case RTFn::KernelEndParallel:
    F->addFnAttr(FnAttr::Convergent);
    break;
  case RTFn::NumFunctions:
    ompgpu_unreachable("invalid runtime function");
  }
  return F;
}

bool ompgpu::isRTFn(const Function *F, RTFn Fn) {
  // Runtime functions may have IR bodies (the linked device RTL), so the
  // identification is by name, as the paper's pass identifies the
  // "known LLVM/OpenMP runtime functions" emitted by the front-end.
  return F && F->getName() == getRTFnName(Fn);
}

bool ompgpu::isAnyRTFn(const Function *F) {
  if (!F)
    return false;
#define OMP_RTL(Enum, Name, ...)                                              \
  if (F->getName() == Name)                                                   \
    return true;
#include "frontend/OMPRuntime.def"
  return false;
}

FunctionType *ompgpu::getParallelWrapperType(IRContext &Ctx) {
  return Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()});
}
