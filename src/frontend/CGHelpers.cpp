//===- frontend/CGHelpers.cpp - Structured control-flow helpers ------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "frontend/CGHelpers.h"

using namespace ompgpu;

void ompgpu::emitCountedLoop(
    IRBuilder &B, Value *Lo, Value *Hi, Value *Step, const std::string &Name,
    const std::function<void(IRBuilder &, Value *)> &Body) {
  Function *F = B.getInsertBlock()->getParent();
  BasicBlock *Preheader = B.getInsertBlock();
  BasicBlock *Header = F->createBlock(Name + ".header");
  BasicBlock *BodyBB = F->createBlock(Name + ".body");
  BasicBlock *Exit = F->createBlock(Name + ".exit");

  B.createBr(Header);

  B.setInsertPoint(Header);
  PhiInst *IV = B.createPhi(Lo->getType(), Name + ".iv");
  IV->addIncoming(Lo, Preheader);
  Value *Cond = B.createICmpSLT(IV, Hi, Name + ".cond");
  B.createCondBr(Cond, BodyBB, Exit);

  B.setInsertPoint(BodyBB);
  Body(B, IV);
  // The body may have moved the builder to a new block; latch from there.
  Value *Next = B.createAdd(IV, Step, Name + ".next");
  BasicBlock *Latch = B.getInsertBlock();
  B.createBr(Header);
  IV->addIncoming(Next, Latch);

  B.setInsertPoint(Exit);
}

void ompgpu::emitWhileLoop(
    IRBuilder &B, const std::string &Name,
    const std::function<Value *(IRBuilder &)> &CondGen,
    const std::function<void(IRBuilder &)> &BodyGen) {
  Function *F = B.getInsertBlock()->getParent();
  BasicBlock *Header = F->createBlock(Name + ".header");
  BasicBlock *Body = F->createBlock(Name + ".body");
  BasicBlock *Exit = F->createBlock(Name + ".exit");

  B.createBr(Header);
  B.setInsertPoint(Header);
  Value *Cond = CondGen(B);
  B.createCondBr(Cond, Body, Exit);

  B.setInsertPoint(Body);
  BodyGen(B);
  B.createBr(Header);

  B.setInsertPoint(Exit);
}

void ompgpu::emitIfThen(IRBuilder &B, Value *Cond, const std::string &Name,
                        const std::function<void(IRBuilder &)> &Then) {
  Function *F = B.getInsertBlock()->getParent();
  BasicBlock *ThenBB = F->createBlock(Name + ".then");
  BasicBlock *Join = F->createBlock(Name + ".join");
  B.createCondBr(Cond, ThenBB, Join);
  B.setInsertPoint(ThenBB);
  Then(B);
  B.createBr(Join);
  B.setInsertPoint(Join);
}

void ompgpu::emitIfThenElse(IRBuilder &B, Value *Cond,
                            const std::string &Name,
                            const std::function<void(IRBuilder &)> &Then,
                            const std::function<void(IRBuilder &)> &Else) {
  Function *F = B.getInsertBlock()->getParent();
  BasicBlock *ThenBB = F->createBlock(Name + ".then");
  BasicBlock *ElseBB = F->createBlock(Name + ".else");
  BasicBlock *Join = F->createBlock(Name + ".join");
  B.createCondBr(Cond, ThenBB, ElseBB);
  B.setInsertPoint(ThenBB);
  Then(B);
  B.createBr(Join);
  B.setInsertPoint(ElseBB);
  Else(B);
  B.createBr(Join);
  B.setInsertPoint(Join);
}

Value *ompgpu::emitSelectViaCFG(
    IRBuilder &B, Value *Cond, Type *Ty, const std::string &Name,
    const std::function<Value *(IRBuilder &)> &Then,
    const std::function<Value *(IRBuilder &)> &Else) {
  Function *F = B.getInsertBlock()->getParent();
  BasicBlock *ThenBB = F->createBlock(Name + ".then");
  BasicBlock *ElseBB = F->createBlock(Name + ".else");
  BasicBlock *Join = F->createBlock(Name + ".join");
  B.createCondBr(Cond, ThenBB, ElseBB);

  B.setInsertPoint(ThenBB);
  Value *TV = Then(B);
  BasicBlock *ThenEnd = B.getInsertBlock();
  B.createBr(Join);

  B.setInsertPoint(ElseBB);
  Value *EV = Else(B);
  BasicBlock *ElseEnd = B.getInsertBlock();
  B.createBr(Join);

  B.setInsertPoint(Join);
  PhiInst *Phi = B.createPhi(Ty, Name + ".phi");
  Phi->addIncoming(TV, ThenEnd);
  Phi->addIncoming(EV, ElseEnd);
  return Phi;
}
