//===- support/FileSystem.cpp - Atomic file I/O helpers -------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "support/FileSystem.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <system_error>
#if !defined(_WIN32)
#include <unistd.h>
#endif

using namespace ompgpu;

static std::atomic<FileSystemFaultHook> FaultHook{nullptr};

void ompgpu::setFileSystemFaultHook(FileSystemFaultHook Hook) {
  FaultHook.store(Hook, std::memory_order_release);
}

/// Queries the installed fault hook; success when none is installed.
static Error faultFor(const char *Op, const std::string &Path) {
  if (FileSystemFaultHook Hook = FaultHook.load(std::memory_order_acquire))
    return Hook(Op, Path);
  return Error::success();
}

/// A temp-file name unique across the processes and threads that may write
/// next to each other (parallel service workers, concurrent CI jobs).
static std::string tempSiblingPath(const std::string &Path) {
  static std::atomic<uint64_t> Counter{0};
  uint64_t N = Counter.fetch_add(1, std::memory_order_relaxed);
  uintmax_t Pid =
#if defined(_WIN32)
      0;
#else
      (uintmax_t)::getpid();
#endif
  return Path + ".tmp." + std::to_string(Pid) + "." + std::to_string(N);
}

/// Writes \p Text to \p Dst directly (no temp), fsyncing before close so
/// the bytes are durable. The EXDEV fallback: rename cannot cross file
/// systems, so the temp file's content is copied to the destination
/// instead — crash-consistent, though a concurrent reader may observe the
/// partially-written file.
static Error copyAndSync(const std::string &Dst, const std::string &Text) {
  std::FILE *F = std::fopen(Dst.c_str(), "wb");
  if (!F)
    return Error::failure("cannot open '" + Dst + "' for writing");
  errno = 0;
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  bool SyncOK = std::fflush(F) == 0;
#if !defined(_WIN32)
  SyncOK = SyncOK && ::fsync(::fileno(F)) == 0;
#endif
  bool NoSpace = errno == ENOSPC;
  bool CloseOK = std::fclose(F) == 0;
  if (Written != Text.size() || !SyncOK || !CloseOK) {
    if (NoSpace)
      return Error::diskFull("disk full writing '" + Dst + "'");
    return Error::failure("short write to '" + Dst + "'");
  }
  return Error::success();
}

Error ompgpu::writeTextFile(const std::string &Path, const std::string &Text) {
  if (Error E = faultFor("write", Path))
    return E;
  const std::string Tmp = tempSiblingPath(Path);
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return Error::failure("cannot open '" + Tmp + "' for writing");
  errno = 0;
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  bool NoSpace = Written != Text.size() && errno == ENOSPC;
  bool CloseOK = std::fclose(F) == 0;
  if (Written != Text.size() || !CloseOK) {
    std::remove(Tmp.c_str());
    if (NoSpace)
      return Error::diskFull("disk full writing '" + Tmp + "'");
    return Error::failure("short write to '" + Tmp + "'");
  }
  std::error_code EC;
  if (faultFor("exdev", Path))
    EC = std::make_error_code(std::errc::cross_device_link);
  else
    std::filesystem::rename(Tmp, Path, EC);
  if (EC == std::errc::cross_device_link) {
    // EXDEV: temp and destination straddle file systems (overlay/bind
    // mounts). Fall back to copy + fsync + unlink instead of dropping the
    // artifact on the floor.
    Error CopyErr = copyAndSync(Path, Text);
    std::remove(Tmp.c_str());
    return CopyErr;
  }
  if (EC) {
    std::remove(Tmp.c_str());
    if (EC == std::errc::no_space_on_device)
      return Error::diskFull("disk full renaming '" + Tmp + "' to '" + Path +
                             "'");
    return Error::failure("cannot rename '" + Tmp + "' to '" + Path +
                          "': " + EC.message());
  }
  return Error::success();
}

Expected<std::string> ompgpu::readTextFile(const std::string &Path) {
  if (Error E = faultFor("read", Path))
    return E;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Error::failure("cannot open '" + Path + "' for reading");
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  bool ReadOK = std::ferror(F) == 0;
  std::fclose(F);
  if (!ReadOK)
    return Error::failure("read error on '" + Path + "'");
  return Text;
}

Error ompgpu::ensureDirectory(const std::string &Path) {
  std::error_code EC;
  std::filesystem::create_directories(Path, EC);
  if (EC)
    return Error::failure("cannot create directory '" + Path +
                          "': " + EC.message());
  return Error::success();
}

Error ompgpu::removeFile(const std::string &Path) {
  std::error_code EC;
  std::filesystem::remove(Path, EC);
  if (EC)
    return Error::failure("cannot remove '" + Path + "': " + EC.message());
  return Error::success();
}

bool ompgpu::fileExists(const std::string &Path) {
  std::error_code EC;
  return std::filesystem::is_regular_file(Path, EC);
}

std::vector<std::string> ompgpu::listDirectoryFiles(const std::string &Dir) {
  std::vector<std::string> Names;
  std::error_code EC;
  std::filesystem::directory_iterator It(Dir, EC), End;
  if (EC)
    return Names;
  for (; It != End; It.increment(EC)) {
    if (EC)
      break;
    std::error_code TypeEC;
    if (It->is_regular_file(TypeEC) && !TypeEC)
      Names.push_back(It->path().filename().string());
  }
  std::sort(Names.begin(), Names.end());
  return Names;
}
