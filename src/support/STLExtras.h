//===- support/STLExtras.h - Small STL helpers ------------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A handful of llvm/ADT/STLExtras.h-style conveniences used across the
/// project.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_SUPPORT_STLEXTRAS_H
#define OMPGPU_SUPPORT_STLEXTRAS_H

#include <algorithm>
#include <iterator>
#include <utility>

namespace ompgpu {

/// Range-based wrapper for std::find: true if \p Range contains \p Element.
template <typename R, typename E> bool is_contained(R &&Range, const E &El) {
  return std::find(std::begin(Range), std::end(Range), El) != std::end(Range);
}

/// Range-based any_of.
template <typename R, typename Pred> bool any_of(R &&Range, Pred P) {
  return std::any_of(std::begin(Range), std::end(Range), P);
}

/// Range-based all_of.
template <typename R, typename Pred> bool all_of(R &&Range, Pred P) {
  return std::all_of(std::begin(Range), std::end(Range), P);
}

/// Range-based none_of.
template <typename R, typename Pred> bool none_of(R &&Range, Pred P) {
  return std::none_of(std::begin(Range), std::end(Range), P);
}

/// Range-based count_if.
template <typename R, typename Pred> auto count_if(R &&Range, Pred P) {
  return std::count_if(std::begin(Range), std::end(Range), P);
}

/// Range-based find_if returning an iterator.
template <typename R, typename Pred> auto find_if(R &&Range, Pred P) {
  return std::find_if(std::begin(Range), std::end(Range), P);
}

/// Erases all elements matching the predicate from a vector-like container.
template <typename C, typename Pred> void erase_if(C &Container, Pred P) {
  Container.erase(
      std::remove_if(Container.begin(), Container.end(), P),
      Container.end());
}

/// Erases the first occurrence of \p El from a vector-like container.
template <typename C, typename E>
void erase_value(C &Container, const E &El) {
  auto It = std::find(Container.begin(), Container.end(), El);
  if (It != Container.end())
    Container.erase(It);
}

} // namespace ompgpu

#endif // OMPGPU_SUPPORT_STLEXTRAS_H
