//===- support/OutputCompare.h - Shared output comparator -------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One element-wise buffer comparator shared by every place that judges a
/// simulated kernel against a reference: the workloads' checkOutputs()
/// implementations, the Harness/Bisect differential-smoke oracle, and the
/// fuzzing subsystem's cross-preset oracle. Centralizing it means every
/// caller reports mismatches the same way (first failing index, expected
/// vs. actual, total count) instead of a bare bool.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_SUPPORT_OUTPUTCOMPARE_H
#define OMPGPU_SUPPORT_OUTPUTCOMPARE_H

#include <cstddef>
#include <string>
#include <vector>

namespace ompgpu {

/// Result of comparing a computed buffer against its reference.
struct OutputComparison {
  bool Match = true;       ///< All elements within tolerance.
  size_t Count = 0;        ///< Elements compared.
  size_t Mismatches = 0;   ///< Elements outside tolerance.
  size_t FirstIndex = 0;   ///< Index of the first mismatch (if any).
  double Expected = 0.0;   ///< Reference value at FirstIndex.
  double Actual = 0.0;     ///< Computed value at FirstIndex.
  bool SizeMismatch = false; ///< The buffers had different lengths.

  explicit operator bool() const { return Match; }

  /// Human-readable one-line report, e.g.
  /// "mismatch at [3]: expected 1.5, got 2.25 (4 of 100 elements differ)".
  std::string message() const;
};

/// Compares \p Actual against \p Expected element-wise. With \p RelTol == 0
/// the comparison is bit-exact (distinguishes NaN payloads and signed
/// zeros); otherwise an element passes when
///   |actual - expected| <= RelTol * max(1, |expected|)
/// which is the tolerance idiom the figure-11 workloads always used.
OutputComparison compareOutputs(const double *Expected, const double *Actual,
                                size_t N, double RelTol = 0.0);

/// Vector convenience overload; a length difference is reported as a
/// mismatch rather than asserted.
OutputComparison compareOutputs(const std::vector<double> &Expected,
                                const std::vector<double> &Actual,
                                double RelTol = 0.0);

} // namespace ompgpu

#endif // OMPGPU_SUPPORT_OUTPUTCOMPARE_H
