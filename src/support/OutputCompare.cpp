//===- support/OutputCompare.cpp - Shared output comparator ----------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "support/OutputCompare.h"

#include <cmath>
#include <cstring>
#include <sstream>

using namespace ompgpu;

std::string OutputComparison::message() const {
  std::ostringstream OS;
  if (SizeMismatch) {
    OS << "buffer length mismatch: expected " << Count << " elements, got "
       << Mismatches;
    return OS.str();
  }
  if (Match) {
    OS << "all " << Count << " elements match";
    return OS.str();
  }
  OS << "mismatch at [" << FirstIndex << "]: expected " << Expected
     << ", got " << Actual << " (" << Mismatches << " of " << Count
     << " elements differ)";
  return OS.str();
}

OutputComparison ompgpu::compareOutputs(const double *Expected,
                                        const double *Actual, size_t N,
                                        double RelTol) {
  OutputComparison R;
  R.Count = N;
  for (size_t I = 0; I != N; ++I) {
    bool Ok;
    if (RelTol == 0.0) {
      // Bit-exact: NaNs compare equal to themselves and +0 != -0, which is
      // what a differential oracle wants.
      Ok = std::memcmp(&Expected[I], &Actual[I], sizeof(double)) == 0;
    } else {
      Ok = std::fabs(Actual[I] - Expected[I]) <=
           RelTol * std::max(1.0, std::fabs(Expected[I]));
    }
    if (!Ok) {
      if (R.Match) {
        R.Match = false;
        R.FirstIndex = I;
        R.Expected = Expected[I];
        R.Actual = Actual[I];
      }
      ++R.Mismatches;
    }
  }
  return R;
}

OutputComparison ompgpu::compareOutputs(const std::vector<double> &Expected,
                                        const std::vector<double> &Actual,
                                        double RelTol) {
  if (Expected.size() != Actual.size()) {
    OutputComparison R;
    R.Match = false;
    R.SizeMismatch = true;
    R.Count = Expected.size();
    R.Mismatches = Actual.size();
    return R;
  }
  return compareOutputs(Expected.data(), Actual.data(), Expected.size(),
                        RelTol);
}
