//===- support/Error.h - Recoverable error handling -------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recoverable error propagation in the spirit of llvm::Error /
/// llvm::Expected: failures caused by bad *input* (unreadable files,
/// malformed flag values, broken JSON) are returned to the caller instead
/// of aborting the process, so long-running drivers and bench binaries can
/// report the message and keep going or exit cleanly. reportFatalError
/// (support/ErrorHandling.h) remains for internal invariant violations.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_SUPPORT_ERROR_H
#define OMPGPU_SUPPORT_ERROR_H

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace ompgpu {

/// Coarse failure classification, for the few failures callers react to
/// structurally rather than by message. DiskFull (ENOSPC) lets the
/// compile cache distinguish "this disk is out of space, bypass it" from
/// a generic write problem.
enum class ErrorKind : uint8_t {
  Generic,
  DiskFull, ///< ENOSPC / no_space_on_device from the file system.
};

/// A success-or-message result. Converts to true when it carries an error,
/// mirroring llvm::Error:
///
///   if (Error E = writeCompileReportFile(Path, Report)) {
///     errs() << E.message() << '\n';
///     return 1;
///   }
class Error {
  std::string Msg; ///< Empty means success.
  ErrorKind Kind = ErrorKind::Generic;

public:
  /// Default state is success.
  Error() = default;

  static Error success() { return Error(); }

  /// Creates a failure carrying \p Message (must be non-empty).
  static Error failure(std::string Message,
                       ErrorKind Kind = ErrorKind::Generic) {
    assert(!Message.empty() && "failure needs a message");
    Error E;
    E.Msg = std::move(Message);
    E.Kind = Kind;
    return E;
  }

  /// Creates a typed disk-full (ENOSPC) failure.
  static Error diskFull(std::string Message) {
    return failure(std::move(Message), ErrorKind::DiskFull);
  }

  /// True when this is an error.
  explicit operator bool() const { return !Msg.empty(); }

  /// The failure message ("" on success).
  const std::string &message() const { return Msg; }

  /// The failure classification (Generic on success).
  ErrorKind kind() const { return Kind; }
  bool isDiskFull() const { return (bool)*this && Kind == ErrorKind::DiskFull; }
};

/// A value-or-error result, mirroring llvm::Expected<T>:
///
///   Expected<std::vector<std::string>> Rest = cl::parseCommandLineArgs(...);
///   if (!Rest) { errs() << Rest.message() << '\n'; return 1; }
///   use(*Rest);
template <typename T> class Expected {
  std::optional<T> Val;
  std::string Msg;

public:
  Expected(T V) : Val(std::move(V)) {}
  Expected(Error E) : Msg(E.message()) {
    assert(E && "constructing Expected from a success Error");
  }

  /// True when a value is present.
  explicit operator bool() const { return Val.has_value(); }

  T &get() {
    assert(Val && "get() on an errorful Expected");
    return *Val;
  }
  const T &get() const {
    assert(Val && "get() on an errorful Expected");
    return *Val;
  }
  T &operator*() { return get(); }
  const T &operator*() const { return get(); }
  T *operator->() { return &get(); }
  const T *operator->() const { return &get(); }

  /// The failure message ("" when a value is present).
  const std::string &message() const { return Msg; }

  /// Extracts the failure as an Error (success() when a value is present).
  Error takeError() const {
    return Val ? Error::success() : Error::failure(Msg);
  }
};

} // namespace ompgpu

#endif // OMPGPU_SUPPORT_ERROR_H
