//===- support/PassInstrumentation.h - Pass execution hooks -----*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pass-pipeline instrumentation modeled on LLVM's PassInstrumentation /
/// -time-passes / -print-changed: every pass execution is wall-clock
/// timed, change-detected via a cheap IR fingerprint, and optionally
/// verified (VerifyEach), attributing the first corrupt pass by name.
/// The layer is IR-agnostic — the driver supplies hash and verify
/// callbacks — so support/ stays at the bottom of the dependency stack.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_SUPPORT_PASSINSTRUMENTATION_H
#define OMPGPU_SUPPORT_PASSINSTRUMENTATION_H

#include "support/PassTimer.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ompgpu {

class raw_ostream;

/// What the instrumentation collects. All flags default to off: an
/// un-instrumented pipeline pays a single branch per pass.
struct PassInstrumentationOptions {
  /// Record per-pass wall-clock time and invocation counts.
  bool TimePasses = false;
  /// Fingerprint the IR before/after each pass so "ran but changed
  /// nothing" is visible even when the pass misreports its return value.
  bool TrackChanges = false;
  /// Run the verifier after every pass; the first failure names the
  /// offending pass.
  bool VerifyEach = false;

  bool any() const { return TimePasses || TrackChanges || VerifyEach; }
};

/// One recorded pass execution, in pre-order (a nested sub-pass appears
/// after its parent's entry, with Depth = parent + 1).
struct PassExecution {
  /// Stable pass name (the *PassName constants next to each pass).
  std::string Name;
  /// Nesting depth: 0 for pipeline-level passes, 1 for sub-passes run
  /// inside another pass (e.g. openmp-opt's internalize).
  unsigned Depth = 0;
  /// 0-based invocation index of this Name (simplify runs three times).
  unsigned Invocation = 0;
  /// Wall-clock time including nested sub-passes.
  double WallMillis = 0.0;
  /// What the pass itself returned.
  bool ReportedChange = false;
  /// Whether IR fingerprints were taken for this execution.
  bool HashTracked = false;
  /// Fingerprint mismatch before/after (meaningful when HashTracked).
  bool IRChanged = false;
  /// VerifyEach found the module corrupt after this pass.
  bool VerifyFailed = false;

  /// Best available change verdict: the fingerprint when tracked, the
  /// pass's own report otherwise.
  bool changed() const { return HashTracked ? IRChanged : ReportedChange; }
};

/// Wraps pass executions, recording PassExecution entries according to the
/// configured options. Nesting is tracked automatically: a runPass call
/// made from within another runPass body records Depth + 1.
class PassInstrumentation {
public:
  /// Fingerprints the current IR state (driver-supplied).
  using HashFn = std::function<uint64_t()>;
  /// Verifies the current IR state; returns true and fills the string on
  /// corruption, mirroring ompgpu::verifyModule.
  using VerifyFn = std::function<bool(std::string *)>;

  PassInstrumentation() = default;
  PassInstrumentation(PassInstrumentationOptions Opts, HashFn Hash = nullptr,
                      VerifyFn Verify = nullptr)
      : Opts(Opts), Hash(std::move(Hash)), Verify(std::move(Verify)) {}

  /// True when any collection is configured; runPass short-circuits to a
  /// plain call otherwise.
  bool enabled() const { return Opts.any(); }

  const PassInstrumentationOptions &options() const { return Opts; }

  /// Runs \p Body under the configured instrumentation and returns its
  /// changed-verdict (fingerprint-corrected when tracking is on).
  bool runPass(const std::string &Name, const std::function<bool()> &Body);

  /// All recorded executions, pre-order.
  const std::vector<PassExecution> &executions() const { return Executions; }

  /// Name of the first pass after which verification failed ("" if none).
  const std::string &firstCorruptPass() const { return FirstCorruptPass; }
  /// Verifier message of that first failure.
  const std::string &verifyError() const { return VerifyError; }

  /// Sum of top-level (Depth == 0) pass times; nested time is already
  /// included in the parents.
  double totalMillis() const;

  /// How many times a pass of \p Name ran.
  unsigned invocationCount(const std::string &Name) const;

  /// Prints a -time-passes style table: total, per-pass time sorted
  /// descending, invocation counts, and change verdicts.
  void printTimingReport(raw_ostream &OS) const;

  /// Same table over an externally stored record list (e.g. the pass
  /// records a CompileResult carries after the pipeline returned).
  static void printTimingReport(raw_ostream &OS,
                                const std::vector<PassExecution> &Executions,
                                const std::string &FirstCorruptPass = "",
                                const std::string &VerifyError = "");

  void clear();

private:
  PassInstrumentationOptions Opts;
  HashFn Hash;
  VerifyFn Verify;

  std::vector<PassExecution> Executions;
  std::string FirstCorruptPass;
  std::string VerifyError;
  unsigned CurrentDepth = 0;
};

} // namespace ompgpu

#endif // OMPGPU_SUPPORT_PASSINSTRUMENTATION_H
