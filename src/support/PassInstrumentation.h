//===- support/PassInstrumentation.h - Pass execution hooks -----*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pass-pipeline instrumentation modeled on LLVM's PassInstrumentation /
/// -time-passes / -print-changed / -opt-bisect-limit: every pass execution
/// is wall-clock timed, change-detected via a cheap IR fingerprint, and
/// optionally verified (VerifyEach), attributing the first corrupt pass by
/// name. Recovery mode makes the pipeline survive a misbehaving pass: the
/// IR is snapshotted before each pass, and a pass that corrupts the module,
/// trips reportFatalError, or throws is rolled back and quarantined for
/// the remainder of the pipeline. The layer is IR-agnostic — the driver
/// supplies hash, verify, and snapshot callbacks — so support/ stays at the
/// bottom of the dependency stack.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_SUPPORT_PASSINSTRUMENTATION_H
#define OMPGPU_SUPPORT_PASSINSTRUMENTATION_H

#include "support/PassTimer.h"

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

namespace ompgpu {

class raw_ostream;

/// What the instrumentation collects. All flags default to off: an
/// un-instrumented pipeline pays a single branch per pass.
struct PassInstrumentationOptions {
  /// Record per-pass wall-clock time and invocation counts.
  bool TimePasses = false;
  /// Fingerprint the IR before/after each pass so "ran but changed
  /// nothing" is visible even when the pass misreports its return value.
  bool TrackChanges = false;
  /// Run the verifier after every pass; the first failure names the
  /// offending pass.
  bool VerifyEach = false;
  /// Run the lint callback after every pass (after verification, on
  /// structurally sound IR only); the first finding names the offending
  /// pass. Under Recover a linting pass is rolled back and quarantined
  /// exactly like one that failed verification.
  bool LintEach = false;
  /// Recovery mode: snapshot the IR before each pass; a pass that fails
  /// verification, trips reportFatalError, or throws is rolled back and
  /// quarantined (skipped for the remainder of the pipeline). The pipeline
  /// always terminates with the IR the last healthy pass produced.
  /// Requires the snapshot callbacks; verification uses the verify
  /// callback even when VerifyEach is off.
  bool Recover = false;
  /// -opt-bisect-limit=N: only the first N skippable pass executions run;
  /// the rest are skipped and recorded as such. -1 means no limit. Used by
  /// the automatic bisection driver (driver/Bisect.h) to localize the
  /// first bad pass execution.
  int64_t OptBisectLimit = -1;

  bool any() const {
    return TimePasses || TrackChanges || VerifyEach || LintEach || Recover ||
           OptBisectLimit >= 0;
  }
};

/// One recorded pass execution, in pre-order (a nested sub-pass appears
/// after its parent's entry, with Depth = parent + 1).
struct PassExecution {
  /// Stable pass name (the *PassName constants next to each pass).
  std::string Name;
  /// Nesting depth: 0 for pipeline-level passes, 1 for sub-passes run
  /// inside another pass (e.g. openmp-opt's internalize).
  unsigned Depth = 0;
  /// 0-based invocation index of this Name (simplify runs three times).
  unsigned Invocation = 0;
  /// 1-based index in the -opt-bisect-limit numbering: counts every
  /// skippable execution that actually ran. 0 for required or skipped
  /// executions.
  unsigned BisectIndex = 0;
  /// Wall-clock time including nested sub-passes.
  double WallMillis = 0.0;
  /// What the pass itself returned.
  bool ReportedChange = false;
  /// Whether IR fingerprints were taken for this execution.
  bool HashTracked = false;
  /// Fingerprint mismatch before/after (meaningful when HashTracked).
  bool IRChanged = false;
  /// VerifyEach found the module corrupt after this pass.
  bool VerifyFailed = false;
  /// LintEach found lint violations after this pass.
  bool LintFailed = false;
  /// The execution never ran: the pass is quarantined or past the
  /// opt-bisect limit. SkipReason says which.
  bool Skipped = false;
  /// "quarantined" or "opt-bisect" when Skipped.
  std::string SkipReason;
  /// Recovery mode undid this execution (snapshot restored, pass
  /// quarantined); the matching PassRecoveryEvent carries the cause.
  bool RolledBack = false;

  /// Best available change verdict: the fingerprint when tracked, the
  /// pass's own report otherwise. Skipped or rolled-back executions never
  /// changed anything.
  bool changed() const {
    if (Skipped || RolledBack)
      return false;
    return HashTracked ? IRChanged : ReportedChange;
  }
};

/// One recovery-mode rollback: which pass execution failed, how, and why.
struct PassRecoveryEvent {
  std::string PassName;
  unsigned Invocation = 0;
  /// "verify-fail", "lint-fail", "fatal-error", or "exception".
  std::string Kind;
  /// Verifier or exception message.
  std::string Message;
};

/// Wraps pass executions, recording PassExecution entries according to the
/// configured options. Nesting is tracked automatically: a runPass call
/// made from within another runPass body records Depth + 1.
class PassInstrumentation {
public:
  /// Fingerprints the current IR state (driver-supplied).
  using HashFn = std::function<uint64_t()>;
  /// Verifies the current IR state; returns true and fills the string on
  /// corruption, mirroring ompgpu::verifyModule.
  using VerifyFn = std::function<bool(std::string *)>;
  /// Lints the current IR state; returns true and fills the string with a
  /// findings summary when the lint is not clean (same polarity as
  /// VerifyFn). Driver-supplied, typically wrapping runOMPLint.
  using LintFn = std::function<bool(std::string *)>;
  /// Pushes a snapshot of the current IR state onto the driver-held stack.
  using SnapshotFn = std::function<void()>;
  /// Pops the most recent snapshot; restores the IR from it when the
  /// argument is true, discards it otherwise.
  using RollbackFn = std::function<void(bool Restore)>;

  PassInstrumentation() = default;
  PassInstrumentation(PassInstrumentationOptions Opts, HashFn Hash = nullptr,
                      VerifyFn Verify = nullptr)
      : Opts(Opts), Hash(std::move(Hash)), Verify(std::move(Verify)) {}

  /// Installs the snapshot stack recovery mode rolls back through. Without
  /// both callbacks, Recover is inert (passes run unprotected).
  void setRecoveryCallbacks(SnapshotFn Push, RollbackFn Pop) {
    PushSnapshot = std::move(Push);
    PopSnapshot = std::move(Pop);
  }

  /// Installs the lint callback LintEach runs; without it, LintEach is
  /// inert.
  void setLintCallback(LintFn L) { Lint = std::move(L); }

  /// True when any collection is configured; runPass short-circuits to a
  /// plain call otherwise.
  bool enabled() const { return Opts.any(); }

  const PassInstrumentationOptions &options() const { return Opts; }

  /// Runs \p Body under the configured instrumentation and returns its
  /// changed-verdict (fingerprint-corrected when tracking is on). A
  /// \p Required pass always runs: it is never quarantined, never counted
  /// against the opt-bisect limit (lowering steps like linking the device
  /// runtime are not optimizations the pipeline can skip).
  bool runPass(const std::string &Name, const std::function<bool()> &Body,
               bool Required = false);

  /// All recorded executions, pre-order.
  const std::vector<PassExecution> &executions() const { return Executions; }

  /// Name of the first pass after which verification failed ("" if none).
  const std::string &firstCorruptPass() const { return FirstCorruptPass; }
  /// Verifier message of that first failure.
  const std::string &verifyError() const { return VerifyError; }

  /// Name of the first pass after which LintEach reported findings ("" if
  /// none). Stays empty under recovery: the offending pass was rolled
  /// back, so no lint violation survived into the final module.
  const std::string &firstLintFailPass() const { return FirstLintFailPass; }
  /// Findings summary of that first lint failure.
  const std::string &lintError() const { return LintError; }

  /// \name Recovery state
  /// @{
  /// Every rollback, in pipeline order.
  const std::vector<PassRecoveryEvent> &recoveries() const {
    return Recoveries;
  }
  /// Names of passes quarantined so far (sorted).
  std::vector<std::string> quarantinedPasses() const {
    return {Quarantined.begin(), Quarantined.end()};
  }
  bool isQuarantined(const std::string &Name) const {
    return Quarantined.count(Name) != 0;
  }
  /// True when the most recent runPass ended in a rollback — callers
  /// holding analysis results (pointers into the restored IR) must
  /// recompute them before the next pass.
  bool lastPassRolledBack() const { return LastPassRolledBack; }
  /// Number of skippable executions that ran (the opt-bisect numbering's
  /// upper bound; skipped executions are not counted).
  unsigned bisectExecutions() const { return BisectCounter; }
  /// @}

  /// Sum of top-level (Depth == 0) pass times; nested time is already
  /// included in the parents.
  double totalMillis() const;

  /// How many times a pass of \p Name ran.
  unsigned invocationCount(const std::string &Name) const;

  /// Prints a -time-passes style table: total, per-pass time sorted
  /// descending, invocation counts, and change verdicts.
  void printTimingReport(raw_ostream &OS) const;

  /// Same table over an externally stored record list (e.g. the pass
  /// records a CompileResult carries after the pipeline returned).
  static void printTimingReport(raw_ostream &OS,
                                const std::vector<PassExecution> &Executions,
                                const std::string &FirstCorruptPass = "",
                                const std::string &VerifyError = "");

  void clear();

private:
  PassInstrumentationOptions Opts;
  HashFn Hash;
  VerifyFn Verify;
  LintFn Lint;
  SnapshotFn PushSnapshot;
  RollbackFn PopSnapshot;

  std::vector<PassExecution> Executions;
  std::vector<PassRecoveryEvent> Recoveries;
  std::set<std::string> Quarantined;
  std::string FirstCorruptPass;
  std::string VerifyError;
  std::string FirstLintFailPass;
  std::string LintError;
  unsigned CurrentDepth = 0;
  unsigned BisectCounter = 0;
  bool LastPassRolledBack = false;
};

} // namespace ompgpu

#endif // OMPGPU_SUPPORT_PASSINSTRUMENTATION_H
