//===- support/CommandLine.h - Minimal flag registry ------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small llvm::cl-inspired flag facility so benchmarks and examples can
/// accept the artifact's flags, e.g. -openmp-opt-disable-spmdization.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_SUPPORT_COMMANDLINE_H
#define OMPGPU_SUPPORT_COMMANDLINE_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace ompgpu {
namespace cl {

/// Base class of all registered options.
class OptionBase {
  std::string Name;
  std::string Desc;
  bool Seen = false;

public:
  OptionBase(std::string Name, std::string Desc);
  virtual ~OptionBase();

  const std::string &getName() const { return Name; }
  const std::string &getDesc() const { return Desc; }

  /// Parses the textual \p Value; returns false on malformed input.
  virtual bool parse(const std::string &Value) = 0;
  /// True when the option is a flag that may appear without "=value".
  virtual bool isBoolean() const { return false; }

  /// True when the option appeared explicitly on the command line, which
  /// lets validation distinguish an explicit "-jobs=0" (reject) from the
  /// unset default 0 (auto).
  bool occurred() const { return Seen; }
  void markOccurred() { Seen = true; }
};

/// A typed command line option with a default value.
template <typename T> class opt : public OptionBase {
  T Value;

public:
  opt(std::string Name, std::string Desc, T Default)
      : OptionBase(std::move(Name), std::move(Desc)), Value(Default) {}

  operator T() const { return Value; }
  const T &getValue() const { return Value; }
  void setValue(T V) { Value = std::move(V); }

  bool parse(const std::string &Text) override;
  bool isBoolean() const override { return std::is_same_v<T, bool>; }
};

/// Parses argv for registered "-name", "--name", "-name=value" options.
/// Unrecognized arguments are returned for the caller (e.g. gbench) to
/// consume. "-help-ompgpu" prints all registered options. A malformed
/// value for a registered option is a recoverable failure: the caller
/// decides whether to print usage, exit, or ignore.
Expected<std::vector<std::string>> parseCommandLineArgs(int Argc,
                                                        const char *const *Argv);

/// Legacy convenience wrapper over parseCommandLineArgs that prints the
/// error and exits(1) on a malformed value.
std::vector<std::string> parseCommandLine(int Argc, const char *const *Argv);

/// Resets nothing but gives tests access to set options programmatically.
OptionBase *findOption(const std::string &Name);

} // namespace cl
} // namespace ompgpu

#endif // OMPGPU_SUPPORT_COMMANDLINE_H
