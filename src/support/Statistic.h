//===- support/Statistic.h - Named statistic counters -----------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named counters in the spirit of llvm/ADT/Statistic.h, used by the
/// optimization passes to report how often each transformation fired
/// (this is the data behind the paper's Fig. 9).
///
/// The counters are process-global and safe to increment from concurrent
/// compiles (the compile service runs pipelines on a worker pool): the
/// value is a relaxed atomic, and registration is mutex-guarded. For
/// per-compile attribution a thread may additionally open a
/// StatisticScope; every increment made on that thread while the scope is
/// innermost is recorded into the scope as a delta, so one compile's
/// counters can be reported without tearing the global totals apart
/// (docs/compile-service.md, "thread-safety contract").
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_SUPPORT_STATISTIC_H
#define OMPGPU_SUPPORT_STATISTIC_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ompgpu {

class raw_ostream;
class StatisticScope;

/// A named monotonically increasing counter registered in a global registry.
class Statistic {
  std::string DebugType;
  std::string Name;
  std::string Desc;
  std::atomic<uint64_t> Value{0};

  void add(uint64_t V);

public:
  Statistic(std::string DebugType, std::string Name, std::string Desc);

  const std::string &getDebugType() const { return DebugType; }
  const std::string &getName() const { return Name; }
  const std::string &getDesc() const { return Desc; }
  uint64_t getValue() const { return Value.load(std::memory_order_relaxed); }

  Statistic &operator++() {
    add(1);
    return *this;
  }
  Statistic &operator+=(uint64_t V) {
    add(V);
    return *this;
  }
  void reset() { Value.store(0, std::memory_order_relaxed); }
};

/// RAII capture of every Statistic increment made on the current thread
/// while this scope is the innermost one. optimizeDeviceModule opens a
/// scope around each pipeline run, so a compile's counters are attributed
/// to its own CompileResult even when other compiles increment the same
/// global counters concurrently on other threads. Scopes nest: an inner
/// scope shadows the outer one for its lifetime (increments land in the
/// innermost scope only).
class StatisticScope {
public:
  StatisticScope();
  ~StatisticScope();
  StatisticScope(const StatisticScope &) = delete;
  StatisticScope &operator=(const StatisticScope &) = delete;

  /// The deltas recorded while this scope was innermost, keyed by counter.
  const std::map<const Statistic *, uint64_t> &deltas() const {
    return Deltas;
  }

private:
  friend class Statistic;
  /// The innermost scope active on the current thread (null when none).
  static StatisticScope *&current();

  StatisticScope *Enclosing;
  std::map<const Statistic *, uint64_t> Deltas;
};

/// Global registry over all Statistic instances.
class StatisticRegistry {
public:
  static StatisticRegistry &get();

  void add(Statistic *S) {
    std::lock_guard<std::mutex> Lock(Mu);
    Stats.push_back(S);
  }

  /// Resets every registered counter to zero. Call between independent
  /// compilations to get per-run numbers.
  void resetAll();

  /// Prints all non-zero counters in "value name - desc" form.
  void print(raw_ostream &OS) const;

  /// Snapshot of the registered counters, in registration order. Counters
  /// are never unregistered, so the pointers stay valid for the process
  /// lifetime.
  std::vector<Statistic *> stats() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Stats;
  }

private:
  mutable std::mutex Mu;
  std::vector<Statistic *> Stats;
};

} // namespace ompgpu

/// Declares a file-local statistic counter, LLVM STATISTIC-style.
#define OMPGPU_STATISTIC(VarName, Desc)                                       \
  static ::ompgpu::Statistic VarName(DEBUG_TYPE, #VarName, Desc)

#endif // OMPGPU_SUPPORT_STATISTIC_H
