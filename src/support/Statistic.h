//===- support/Statistic.h - Named statistic counters -----------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named counters in the spirit of llvm/ADT/Statistic.h, used by the
/// optimization passes to report how often each transformation fired
/// (this is the data behind the paper's Fig. 9).
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_SUPPORT_STATISTIC_H
#define OMPGPU_SUPPORT_STATISTIC_H

#include <cstdint>
#include <string>
#include <vector>

namespace ompgpu {

class raw_ostream;

/// A named monotonically increasing counter registered in a global registry.
class Statistic {
  std::string DebugType;
  std::string Name;
  std::string Desc;
  uint64_t Value = 0;

public:
  Statistic(std::string DebugType, std::string Name, std::string Desc);

  const std::string &getDebugType() const { return DebugType; }
  const std::string &getName() const { return Name; }
  const std::string &getDesc() const { return Desc; }
  uint64_t getValue() const { return Value; }

  Statistic &operator++() {
    ++Value;
    return *this;
  }
  Statistic &operator+=(uint64_t V) {
    Value += V;
    return *this;
  }
  void reset() { Value = 0; }
};

/// Global registry over all Statistic instances.
class StatisticRegistry {
public:
  static StatisticRegistry &get();

  void add(Statistic *S) { Stats.push_back(S); }

  /// Resets every registered counter to zero. Call between independent
  /// compilations to get per-run numbers.
  void resetAll();

  /// Prints all non-zero counters in "value name - desc" form.
  void print(raw_ostream &OS) const;

  const std::vector<Statistic *> &stats() const { return Stats; }

private:
  std::vector<Statistic *> Stats;
};

} // namespace ompgpu

/// Declares a file-local statistic counter, LLVM STATISTIC-style.
#define OMPGPU_STATISTIC(VarName, Desc)                                       \
  static ::ompgpu::Statistic VarName(DEBUG_TYPE, #VarName, Desc)

#endif // OMPGPU_SUPPORT_STATISTIC_H
