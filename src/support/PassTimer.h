//===- support/PassTimer.h - Wall-clock pass timing -------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small wall-clock timer in the spirit of llvm/Support/Timer.h, used by
/// the pass instrumentation to attribute compile time to individual passes
/// (the -time-passes facility the paper's artifact relies on).
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_SUPPORT_PASSTIMER_H
#define OMPGPU_SUPPORT_PASSTIMER_H

#include <chrono>

namespace ompgpu {

/// Accumulating wall-clock timer. start()/stop() may be called repeatedly;
/// millis() reports the total across all completed segments plus the
/// currently running one.
class PassTimer {
  using Clock = std::chrono::steady_clock;

  Clock::time_point Begin;
  double AccumulatedMillis = 0.0;
  bool Running = false;

  static double elapsedMillis(Clock::time_point From) {
    return std::chrono::duration<double, std::milli>(Clock::now() - From)
        .count();
  }

public:
  void start() {
    if (Running)
      return;
    Begin = Clock::now();
    Running = true;
  }

  void stop() {
    if (!Running)
      return;
    AccumulatedMillis += elapsedMillis(Begin);
    Running = false;
  }

  bool isRunning() const { return Running; }

  /// Total accumulated wall time in milliseconds.
  double millis() const {
    return AccumulatedMillis + (Running ? elapsedMillis(Begin) : 0.0);
  }

  void reset() {
    AccumulatedMillis = 0.0;
    Running = false;
  }
};

} // namespace ompgpu

#endif // OMPGPU_SUPPORT_PASSTIMER_H
