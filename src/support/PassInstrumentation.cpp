//===- support/PassInstrumentation.cpp - Pass execution hooks --------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "support/PassInstrumentation.h"
#include "support/ErrorHandling.h"
#include "support/raw_ostream.h"

#include <algorithm>
#include <map>

using namespace ompgpu;

bool PassInstrumentation::runPass(const std::string &Name,
                                  const std::function<bool()> &Body,
                                  bool Required) {
  if (!enabled())
    return Body();

  // Reserve the record up front so entries stay in pre-order even when the
  // body runs nested passes.
  size_t Index = Executions.size();
  {
    PassExecution Rec;
    Rec.Name = Name;
    Rec.Depth = CurrentDepth;
    Rec.Invocation = invocationCount(Name);
    Executions.push_back(std::move(Rec));
  }
  LastPassRolledBack = false;

  // A quarantined pass already corrupted the module once this pipeline;
  // every later invocation is skipped. Required passes are never
  // quarantined so they need no check.
  if (!Required && Quarantined.count(Name)) {
    Executions[Index].Skipped = true;
    Executions[Index].SkipReason = "quarantined";
    return false;
  }

  // -opt-bisect-limit=N: only the first N skippable executions run.
  // Required lowering steps do not consume an index, matching LLVM's
  // OptBisect semantics.
  if (!Required && Opts.OptBisectLimit >= 0 &&
      BisectCounter >= static_cast<uint64_t>(Opts.OptBisectLimit)) {
    Executions[Index].Skipped = true;
    Executions[Index].SkipReason = "opt-bisect";
    return false;
  }
  if (!Required)
    Executions[Index].BisectIndex = ++BisectCounter;

  uint64_t Before = 0;
  bool Tracked = Opts.TrackChanges && Hash != nullptr;
  if (Tracked)
    Before = Hash();

  // Recovery needs both a snapshot to roll back to and a verifier to
  // decide whether to; without either the pass runs unprotected.
  bool Protected =
      Opts.Recover && PushSnapshot && PopSnapshot && Verify != nullptr;
  if (Protected)
    PushSnapshot();

  bool Reported = false;
  bool BodyFailed = false;
  std::string FailKind, FailMsg;
  PassTimer Timer;
  Timer.start();
  ++CurrentDepth;
  if (Protected) {
    try {
      // Turn reportFatalError from an abort into a catchable exception for
      // the duration of the pass body.
      FatalErrorRecoveryScope Scope;
      Reported = Body();
    } catch (const RecoverableFatalError &E) {
      BodyFailed = true;
      FailKind = "fatal-error";
      FailMsg = E.what();
    } catch (const std::exception &E) {
      BodyFailed = true;
      FailKind = "exception";
      FailMsg = E.what();
    }
  } else {
    Reported = Body();
  }
  --CurrentDepth;
  Timer.stop();

  PassExecution &Rec = Executions[Index];
  Rec.WallMillis = Timer.millis();
  Rec.ReportedChange = Reported;
  Rec.HashTracked = Tracked;

  // Decide whether this execution survives: a thrown body never does; an
  // execution that leaves the module corrupt doesn't either. Recovery
  // verifies even when VerifyEach is off — rollback is pointless if
  // corruption goes undetected.
  if (Protected && !BodyFailed) {
    std::string Error;
    if (Verify(&Error)) {
      BodyFailed = true;
      FailKind = "verify-fail";
      FailMsg = Error;
      Rec.VerifyFailed = true;
    }
  } else if (Opts.VerifyEach && Verify && !BodyFailed) {
    std::string Error;
    if (Verify(&Error)) {
      Rec.VerifyFailed = true;
      // A nested sub-pass is verified before its parent finishes, so the
      // innermost corrupting pass wins the attribution.
      if (FirstCorruptPass.empty()) {
        FirstCorruptPass = Name;
        VerifyError = Error;
      }
    }
  }

  // The lint runs after a clean verify only: structurally corrupt IR
  // would drown it in noise and its verdict would be meaningless.
  if (Opts.LintEach && Lint && !BodyFailed && !Rec.VerifyFailed) {
    std::string Error;
    if (Lint(&Error)) {
      Rec.LintFailed = true;
      if (Protected) {
        BodyFailed = true;
        FailKind = "lint-fail";
        FailMsg = Error;
      } else if (FirstLintFailPass.empty()) {
        FirstLintFailPass = Name;
        LintError = Error;
      }
    }
  }

  if (Protected) {
    // Pop the snapshot either way: restore on failure, discard on success.
    // Restoring also undoes whatever nested sub-passes committed, which is
    // the correct containment for a parent that corrupted the module
    // around healthy children.
    PopSnapshot(BodyFailed);
    if (BodyFailed) {
      Rec.RolledBack = true;
      Rec.VerifyFailed = FailKind == "verify-fail";
      if (!Required)
        Quarantined.insert(Name);
      PassRecoveryEvent Ev;
      Ev.PassName = Name;
      Ev.Invocation = Rec.Invocation;
      Ev.Kind = FailKind;
      Ev.Message = FailMsg;
      Recoveries.push_back(std::move(Ev));
      LastPassRolledBack = true;
      // The module is back to its pre-pass state; no fingerprint change,
      // and firstCorruptPass() stays empty because no corruption survived.
      return false;
    }
  }

  if (Tracked)
    Rec.IRChanged = Hash() != Before;
  return Rec.changed();
}

double PassInstrumentation::totalMillis() const {
  double Total = 0.0;
  for (const PassExecution &Rec : Executions)
    if (Rec.Depth == 0)
      Total += Rec.WallMillis;
  return Total;
}

unsigned PassInstrumentation::invocationCount(const std::string &Name) const {
  unsigned N = 0;
  for (const PassExecution &Rec : Executions)
    if (Rec.Name == Name)
      ++N;
  return N;
}

void PassInstrumentation::printTimingReport(raw_ostream &OS) const {
  printTimingReport(OS, Executions, FirstCorruptPass, VerifyError);
}

void PassInstrumentation::printTimingReport(
    raw_ostream &OS, const std::vector<PassExecution> &Executions,
    const std::string &FirstCorruptPass, const std::string &VerifyError) {
  // Aggregate per pass name, reporting inclusive wall time (nested
  // sub-pass time is also inside the parent) — the table mirrors
  // -time-passes' wall-time column.
  struct Row {
    double Millis = 0.0;
    unsigned Runs = 0;
    unsigned Changed = 0;
    unsigned Skipped = 0;
  };
  std::map<std::string, Row> Rows;
  double Total = 0.0;
  for (const PassExecution &Rec : Executions) {
    Row &R = Rows[Rec.Name];
    R.Millis += Rec.WallMillis;
    if (Rec.Skipped)
      ++R.Skipped;
    else
      ++R.Runs;
    if (Rec.changed())
      ++R.Changed;
    if (Rec.Depth == 0)
      Total += Rec.WallMillis;
  }

  std::vector<std::pair<std::string, Row>> Sorted(Rows.begin(), Rows.end());
  std::sort(Sorted.begin(), Sorted.end(), [](const auto &A, const auto &B) {
    return A.second.Millis > B.second.Millis;
  });

  OS << formatBuf("===-- Pass execution timing report --===\n");
  OS << formatBuf("  Total wall time: %.4f ms (%zu pass executions)\n",
                  Total, Executions.size());
  OS << formatBuf("  %10s  %5s  %8s  %s\n", "wall ms", "runs", "changed",
                  "pass");
  for (const auto &[Name, R] : Sorted) {
    OS << formatBuf("  %10.4f  %5u  %5u/%-2u  %s", R.Millis, R.Runs,
                    R.Changed, R.Runs, Name.c_str());
    if (R.Skipped)
      OS << formatBuf("  (%u skipped)", R.Skipped);
    OS << '\n';
  }
  if (!FirstCorruptPass.empty())
    OS << "  VERIFY FAILED after pass '" << FirstCorruptPass
       << "': " << VerifyError << '\n';
}

void PassInstrumentation::clear() {
  Executions.clear();
  Recoveries.clear();
  Quarantined.clear();
  FirstCorruptPass.clear();
  VerifyError.clear();
  FirstLintFailPass.clear();
  LintError.clear();
  CurrentDepth = 0;
  BisectCounter = 0;
  LastPassRolledBack = false;
}
