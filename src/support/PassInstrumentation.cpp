//===- support/PassInstrumentation.cpp - Pass execution hooks --------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "support/PassInstrumentation.h"
#include "support/raw_ostream.h"

#include <algorithm>
#include <map>

using namespace ompgpu;

bool PassInstrumentation::runPass(const std::string &Name,
                                  const std::function<bool()> &Body) {
  if (!enabled())
    return Body();

  // Reserve the record up front so entries stay in pre-order even when the
  // body runs nested passes.
  size_t Index = Executions.size();
  {
    PassExecution Rec;
    Rec.Name = Name;
    Rec.Depth = CurrentDepth;
    Rec.Invocation = invocationCount(Name);
    Executions.push_back(std::move(Rec));
  }

  uint64_t Before = 0;
  bool Tracked = Opts.TrackChanges && Hash != nullptr;
  if (Tracked)
    Before = Hash();

  PassTimer Timer;
  Timer.start();
  ++CurrentDepth;
  bool Reported = Body();
  --CurrentDepth;
  Timer.stop();

  PassExecution &Rec = Executions[Index];
  Rec.WallMillis = Timer.millis();
  Rec.ReportedChange = Reported;
  Rec.HashTracked = Tracked;
  if (Tracked)
    Rec.IRChanged = Hash() != Before;

  if (Opts.VerifyEach && Verify) {
    std::string Error;
    if (Verify(&Error)) {
      Rec.VerifyFailed = true;
      // A nested sub-pass is verified before its parent finishes, so the
      // innermost corrupting pass wins the attribution.
      if (FirstCorruptPass.empty()) {
        FirstCorruptPass = Name;
        VerifyError = Error;
      }
    }
  }

  return Rec.changed();
}

double PassInstrumentation::totalMillis() const {
  double Total = 0.0;
  for (const PassExecution &Rec : Executions)
    if (Rec.Depth == 0)
      Total += Rec.WallMillis;
  return Total;
}

unsigned PassInstrumentation::invocationCount(const std::string &Name) const {
  unsigned N = 0;
  for (const PassExecution &Rec : Executions)
    if (Rec.Name == Name)
      ++N;
  return N;
}

void PassInstrumentation::printTimingReport(raw_ostream &OS) const {
  printTimingReport(OS, Executions, FirstCorruptPass, VerifyError);
}

void PassInstrumentation::printTimingReport(
    raw_ostream &OS, const std::vector<PassExecution> &Executions,
    const std::string &FirstCorruptPass, const std::string &VerifyError) {
  // Aggregate per pass name, reporting inclusive wall time (nested
  // sub-pass time is also inside the parent) — the table mirrors
  // -time-passes' wall-time column.
  struct Row {
    double Millis = 0.0;
    unsigned Runs = 0;
    unsigned Changed = 0;
  };
  std::map<std::string, Row> Rows;
  double Total = 0.0;
  for (const PassExecution &Rec : Executions) {
    Row &R = Rows[Rec.Name];
    R.Millis += Rec.WallMillis;
    ++R.Runs;
    if (Rec.changed())
      ++R.Changed;
    if (Rec.Depth == 0)
      Total += Rec.WallMillis;
  }

  std::vector<std::pair<std::string, Row>> Sorted(Rows.begin(), Rows.end());
  std::sort(Sorted.begin(), Sorted.end(), [](const auto &A, const auto &B) {
    return A.second.Millis > B.second.Millis;
  });

  OS << formatBuf("===-- Pass execution timing report --===\n");
  OS << formatBuf("  Total wall time: %.4f ms (%zu pass executions)\n",
                  Total, Executions.size());
  OS << formatBuf("  %10s  %5s  %8s  %s\n", "wall ms", "runs", "changed",
                  "pass");
  for (const auto &[Name, R] : Sorted)
    OS << formatBuf("  %10.4f  %5u  %5u/%-2u  %s\n", R.Millis, R.Runs,
                    R.Changed, R.Runs, Name.c_str());
  if (!FirstCorruptPass.empty())
    OS << "  VERIFY FAILED after pass '" << FirstCorruptPass
       << "': " << VerifyError << '\n';
}

void PassInstrumentation::clear() {
  Executions.clear();
  FirstCorruptPass.clear();
  VerifyError.clear();
  CurrentDepth = 0;
}
