//===- support/JSON.cpp - Minimal JSON value, writer, parser ---------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "support/JSON.h"
#include "support/raw_ostream.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

using namespace ompgpu;
using namespace ompgpu::json;

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

Value &Value::set(std::string Key, Value V) {
  for (Member &M : Members)
    if (M.first == Key) {
      M.second = std::move(V);
      return *this;
    }
  Members.emplace_back(std::move(Key), std::move(V));
  return *this;
}

const Value *Value::find(std::string_view Key) const {
  for (const Member &M : Members)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

const Value &Value::at(std::string_view Key) const {
  static const Value Null;
  const Value *V = find(Key);
  return V ? *V : Null;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

void json::writeEscaped(raw_ostream &OS, std::string_view S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\b':
      OS << "\\b";
      break;
    case '\f':
      OS << "\\f";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\r':
      OS << "\\r";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if ((unsigned char)C < 0x20)
        OS << formatBuf("\\u%04x", C);
      else
        OS << C;
    }
  }
  OS << '"';
}

void Value::write(raw_ostream &OS, unsigned IndentLevel) const {
  switch (K) {
  case Kind::Null:
    OS << "null";
    return;
  case Kind::Boolean:
    OS << (Bool ? "true" : "false");
    return;
  case Kind::Integer:
    OS << Int;
    return;
  case Kind::Double:
    if (std::isfinite(Dbl))
      OS << formatBuf("%.6g", Dbl);
    else
      OS << "null"; // JSON has no Inf/NaN
    return;
  case Kind::String:
    writeEscaped(OS, Str);
    return;
  case Kind::Array: {
    if (Elements.empty()) {
      OS << "[]";
      return;
    }
    OS << "[\n";
    for (size_t I = 0; I != Elements.size(); ++I) {
      OS.indent(2 * (IndentLevel + 1));
      Elements[I].write(OS, IndentLevel + 1);
      OS << (I + 1 == Elements.size() ? "\n" : ",\n");
    }
    OS.indent(2 * IndentLevel);
    OS << ']';
    return;
  }
  case Kind::Object: {
    if (Members.empty()) {
      OS << "{}";
      return;
    }
    OS << "{\n";
    for (size_t I = 0; I != Members.size(); ++I) {
      OS.indent(2 * (IndentLevel + 1));
      writeEscaped(OS, Members[I].first);
      OS << ": ";
      Members[I].second.write(OS, IndentLevel + 1);
      OS << (I + 1 == Members.size() ? "\n" : ",\n");
    }
    OS.indent(2 * IndentLevel);
    OS << '}';
    return;
  }
  }
}

std::string Value::str() const {
  std::string S;
  raw_string_ostream OS(S);
  write(OS);
  return S;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

class Parser {
  std::string_view Text;
  size_t Pos = 0;
  std::string Error;
  /// Current container nesting depth. Malicious input like ten thousand
  /// '['s would otherwise recurse the parser off the stack.
  unsigned Depth = 0;
  static constexpr unsigned MaxDepth = 128;

public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  const std::string &error() const { return Error; }

  bool parseDocument(Value &Out) {
    skipWhitespace();
    if (!parseValue(Out))
      return false;
    skipWhitespace();
    if (Pos != Text.size())
      return fail("trailing characters after JSON value");
    return true;
  }

private:
  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWhitespace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeKeyword(std::string_view KW) {
    if (Text.substr(Pos, KW.size()) == KW) {
      Pos += KW.size();
      return true;
    }
    return false;
  }

  bool parseValue(Value &Out) {
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case 'n':
      if (!consumeKeyword("null"))
        return fail("invalid keyword");
      Out = Value();
      return true;
    case 't':
      if (!consumeKeyword("true"))
        return fail("invalid keyword");
      Out = Value(true);
      return true;
    case 'f':
      if (!consumeKeyword("false"))
        return fail("invalid keyword");
      Out = Value(false);
      return true;
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Value(std::move(S));
      return true;
    }
    case '[':
      return parseArray(Out);
    case '{':
      return parseObject(Out);
    default:
      return parseNumber(Out);
    }
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return fail("expected '\"'");
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos];
      if ((unsigned char)C < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out += C;
        ++Pos;
        continue;
      }
      ++Pos; // backslash
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        unsigned Code;
        if (!parseHex4(Code))
          return false;
        // Surrogate pair for characters outside the BMP.
        if (Code >= 0xD800 && Code <= 0xDBFF) {
          if (!consume('\\') || !consume('u'))
            return fail("unpaired UTF-16 surrogate");
          unsigned Low;
          if (!parseHex4(Low))
            return false;
          if (Low < 0xDC00 || Low > 0xDFFF)
            return fail("invalid UTF-16 low surrogate");
          Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
        }
        appendUTF8(Out, Code);
        break;
      }
      default:
        return fail("invalid escape character");
      }
    }
    if (!consume('"'))
      return fail("unterminated string");
    return true;
  }

  bool parseHex4(unsigned &Out) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I != 4; ++I) {
      char C = Text[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= (unsigned)(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= (unsigned)(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= (unsigned)(C - 'A' + 10);
      else
        return fail("invalid hex digit in \\u escape");
    }
    return true;
  }

  static void appendUTF8(std::string &Out, unsigned Code) {
    if (Code < 0x80) {
      Out += (char)Code;
    } else if (Code < 0x800) {
      Out += (char)(0xC0 | (Code >> 6));
      Out += (char)(0x80 | (Code & 0x3F));
    } else if (Code < 0x10000) {
      Out += (char)(0xE0 | (Code >> 12));
      Out += (char)(0x80 | ((Code >> 6) & 0x3F));
      Out += (char)(0x80 | (Code & 0x3F));
    } else {
      Out += (char)(0xF0 | (Code >> 18));
      Out += (char)(0x80 | ((Code >> 12) & 0x3F));
      Out += (char)(0x80 | ((Code >> 6) & 0x3F));
      Out += (char)(0x80 | (Code & 0x3F));
    }
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    // JSON forbids a leading '+' (strtod/strtoll would accept it).
    if (Pos < Text.size() && Text[Pos] == '+')
      return fail("invalid number");
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    bool IsDouble = false;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C >= '0' && C <= '9') {
        ++Pos;
      } else if (C == '.' || C == 'e' || C == 'E' || C == '+' || C == '-') {
        IsDouble = true;
        ++Pos;
      } else {
        break;
      }
    }
    if (Pos == Start || (Text[Start] == '-' && Pos == Start + 1))
      return fail("invalid number");
    std::string Num(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    if (!IsDouble) {
      errno = 0;
      long long I = std::strtoll(Num.c_str(), &End, 10);
      if (End != Num.c_str() + Num.size())
        return fail("invalid number");
      if (errno != ERANGE) {
        Out = Value((int64_t)I);
        return true;
      }
      // An integer literal outside int64 range degrades to a double (the
      // usual lenient-parser behavior) rather than saturating silently or
      // rejecting the document.
      IsDouble = true;
    }
    errno = 0;
    double D = std::strtod(Num.c_str(), &End);
    if (End != Num.c_str() + Num.size())
      return fail("invalid number");
    // ERANGE overflow yields +-HUGE_VAL and underflow a denormal/zero;
    // both are finite-state outcomes the value model handles (the writer
    // emits non-finite doubles as null), so they are not errors.
    Out = Value(D);
    return true;
  }

  bool parseArray(Value &Out) {
    if (Depth >= MaxDepth)
      return fail("nesting depth exceeds limit");
    ++Depth;
    bool OK = parseArrayBody(Out);
    --Depth;
    return OK;
  }

  bool parseArrayBody(Value &Out) {
    consume('[');
    Out = Value::makeArray();
    skipWhitespace();
    if (consume(']'))
      return true;
    while (true) {
      Value Element;
      skipWhitespace();
      if (!parseValue(Element))
        return false;
      Out.push_back(std::move(Element));
      skipWhitespace();
      if (consume(']'))
        return true;
      if (!consume(','))
        return fail("expected ',' or ']' in array");
    }
  }

  bool parseObject(Value &Out) {
    if (Depth >= MaxDepth)
      return fail("nesting depth exceeds limit");
    ++Depth;
    bool OK = parseObjectBody(Out);
    --Depth;
    return OK;
  }

  bool parseObjectBody(Value &Out) {
    consume('{');
    Out = Value::makeObject();
    skipWhitespace();
    if (consume('}'))
      return true;
    while (true) {
      skipWhitespace();
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWhitespace();
      if (!consume(':'))
        return fail("expected ':' after object key");
      Value Member;
      skipWhitespace();
      if (!parseValue(Member))
        return false;
      Out.set(std::move(Key), std::move(Member));
      skipWhitespace();
      if (consume('}'))
        return true;
      if (!consume(','))
        return fail("expected ',' or '}' in object");
    }
  }
};

} // namespace

bool json::parse(std::string_view Text, Value &Out, std::string *Error) {
  Parser P(Text);
  if (P.parseDocument(Out))
    return true;
  if (Error)
    *Error = P.error();
  return false;
}
