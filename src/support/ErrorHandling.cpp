//===- support/ErrorHandling.cpp - Fatal errors and unreachable ----------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "support/ErrorHandling.h"
#include "support/raw_ostream.h"

#include <cstdlib>

using namespace ompgpu;

void ompgpu::reportFatalError(std::string_view Msg) {
  errs() << "fatal error: " << Msg << '\n';
  errs().flush();
  std::abort();
}

void ompgpu::unreachableInternal(const char *Msg, const char *File,
                                 unsigned Line) {
  errs() << "UNREACHABLE executed";
  if (File)
    errs() << " at " << File << ':' << Line;
  errs() << "!";
  if (Msg)
    errs() << ' ' << Msg;
  errs() << '\n';
  errs().flush();
  std::abort();
}
