//===- support/ErrorHandling.cpp - Fatal errors and unreachable ----------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "support/ErrorHandling.h"
#include "support/raw_ostream.h"

#include <cstdlib>

using namespace ompgpu;

/// Depth of nested FatalErrorRecoveryScopes on this thread.
static thread_local unsigned RecoveryScopeDepth = 0;

FatalErrorRecoveryScope::FatalErrorRecoveryScope() { ++RecoveryScopeDepth; }

FatalErrorRecoveryScope::~FatalErrorRecoveryScope() { --RecoveryScopeDepth; }

bool FatalErrorRecoveryScope::active() { return RecoveryScopeDepth != 0; }

void ompgpu::reportFatalError(std::string_view Msg) {
  if (FatalErrorRecoveryScope::active())
    throw RecoverableFatalError(std::string(Msg));
  errs() << "fatal error: " << Msg << '\n';
  errs().flush();
  std::abort();
}

void ompgpu::unreachableInternal(const char *Msg, const char *File,
                                 unsigned Line) {
  errs() << "UNREACHABLE executed";
  if (File)
    errs() << " at " << File << ':' << Line;
  errs() << "!";
  if (Msg)
    errs() << ' ' << Msg;
  errs() << '\n';
  errs().flush();
  std::abort();
}
