//===- support/raw_ostream.cpp - Lightweight output streams --------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "support/raw_ostream.h"

#include <cinttypes>
#include <cstdarg>

using namespace ompgpu;

raw_ostream::~raw_ostream() = default;

raw_ostream &raw_ostream::operator<<(int64_t N) {
  char Buf[24];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRId64, N);
  write(Buf, Len);
  return *this;
}

raw_ostream &raw_ostream::operator<<(uint64_t N) {
  char Buf[24];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRIu64, N);
  write(Buf, Len);
  return *this;
}

raw_ostream &raw_ostream::operator<<(double D) {
  char Buf[40];
  int Len = std::snprintf(Buf, sizeof(Buf), "%g", D);
  write(Buf, Len);
  return *this;
}

raw_ostream &raw_ostream::operator<<(const void *P) {
  char Buf[24];
  int Len = std::snprintf(Buf, sizeof(Buf), "%p", P);
  write(Buf, Len);
  return *this;
}

raw_ostream &raw_ostream::indent(unsigned NumSpaces) {
  static const char Spaces[] = "                                ";
  while (NumSpaces > 0) {
    unsigned Chunk = NumSpaces < 32 ? NumSpaces : 32;
    write(Spaces, Chunk);
    NumSpaces -= Chunk;
  }
  return *this;
}

raw_fd_ostream::raw_fd_ostream(const std::string &Path)
    : FD(std::fopen(Path.c_str(), "w")), ShouldClose(true) {
  if (!FD) {
    FD = stderr;
    ShouldClose = false;
  }
}

raw_fd_ostream::~raw_fd_ostream() {
  std::fflush(FD);
  if (ShouldClose)
    std::fclose(FD);
}

raw_ostream &ompgpu::outs() {
  static raw_fd_ostream S(stdout);
  return S;
}

raw_ostream &ompgpu::errs() {
  static raw_fd_ostream S(stderr);
  return S;
}

raw_ostream &ompgpu::nulls() {
  static raw_null_ostream S;
  return S;
}

std::string ompgpu::formatBuf(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  char Buf[512];
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  return std::string(Buf);
}
