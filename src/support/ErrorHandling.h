//===- support/ErrorHandling.h - Fatal errors and unreachable ---*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal error reporting and the ompgpu_unreachable macro, mirroring
/// llvm::report_fatal_error and llvm_unreachable.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_SUPPORT_ERRORHANDLING_H
#define OMPGPU_SUPPORT_ERRORHANDLING_H

#include <stdexcept>
#include <string_view>

namespace ompgpu {

/// Prints \p Msg to stderr and aborts — unless a FatalErrorRecoveryScope is
/// active on this thread, in which case a RecoverableFatalError carrying
/// the message is thrown instead so the enclosing recovery harness (the
/// pass-rollback machinery of PassInstrumentation) can contain the damage.
[[noreturn]] void reportFatalError(std::string_view Msg);

/// Thrown by reportFatalError while a FatalErrorRecoveryScope is active.
class RecoverableFatalError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// RAII scope that turns reportFatalError on this thread from an abort into
/// a RecoverableFatalError throw. Scopes nest; recovery stays active until
/// the outermost scope is destroyed. Used by PassInstrumentation's recovery
/// mode to survive a misbehaving pass tripping a fatal error mid-pipeline.
class FatalErrorRecoveryScope {
public:
  FatalErrorRecoveryScope();
  ~FatalErrorRecoveryScope();
  FatalErrorRecoveryScope(const FatalErrorRecoveryScope &) = delete;
  FatalErrorRecoveryScope &operator=(const FatalErrorRecoveryScope &) =
      delete;

  /// True while any scope is alive on this thread.
  static bool active();
};

/// Internal implementation of ompgpu_unreachable.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace ompgpu

/// Marks a point in code that should never be reached. Prints the message,
/// file and line, then aborts.
#define ompgpu_unreachable(msg)                                               \
  ::ompgpu::unreachableInternal(msg, __FILE__, __LINE__)

#endif // OMPGPU_SUPPORT_ERRORHANDLING_H
