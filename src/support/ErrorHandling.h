//===- support/ErrorHandling.h - Fatal errors and unreachable ---*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal error reporting and the ompgpu_unreachable macro, mirroring
/// llvm::report_fatal_error and llvm_unreachable.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_SUPPORT_ERRORHANDLING_H
#define OMPGPU_SUPPORT_ERRORHANDLING_H

#include <string_view>

namespace ompgpu {

/// Prints \p Msg to stderr and aborts. Used for unrecoverable conditions
/// triggered by invalid input rather than internal logic errors.
[[noreturn]] void reportFatalError(std::string_view Msg);

/// Internal implementation of ompgpu_unreachable.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace ompgpu

/// Marks a point in code that should never be reached. Prints the message,
/// file and line, then aborts.
#define ompgpu_unreachable(msg)                                               \
  ::ompgpu::unreachableInternal(msg, __FILE__, __LINE__)

#endif // OMPGPU_SUPPORT_ERRORHANDLING_H
