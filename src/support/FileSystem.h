//===- support/FileSystem.h - Atomic file I/O helpers -----------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small file-system layer shared by every JSON-artifact writer (compile
/// reports, fuzz corpus, execution profiles, compile-cache entries).
/// writeTextFile is atomic: the bytes go to a unique sibling temp file
/// which is renamed over the destination only after a verified full write,
/// so an interrupted run (nightly job killed mid-write, full disk) can
/// never leave a truncated artifact that poisons the next run — readers
/// observe either the old file or the complete new one.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_SUPPORT_FILESYSTEM_H
#define OMPGPU_SUPPORT_FILESYSTEM_H

#include "support/Error.h"

#include <string>
#include <vector>

namespace ompgpu {

/// Atomically replaces \p Path with \p Text (write temp + rename). Returns
/// a failure Error (never aborts) on open/write/rename problems; the
/// destination is left untouched on failure.
Error writeTextFile(const std::string &Path, const std::string &Text);

/// Reads the whole file into a string.
Expected<std::string> readTextFile(const std::string &Path);

/// Creates \p Path (and parents) if needed.
Error ensureDirectory(const std::string &Path);

/// Removes \p Path if it exists; missing files are not an error.
Error removeFile(const std::string &Path);

/// True when \p Path names an existing regular file.
bool fileExists(const std::string &Path);

/// Names (not paths) of the regular files directly inside \p Dir, sorted.
/// Missing or unreadable directories yield an empty list.
std::vector<std::string> listDirectoryFiles(const std::string &Dir);

} // namespace ompgpu

#endif // OMPGPU_SUPPORT_FILESYSTEM_H
