//===- support/FileSystem.h - Atomic file I/O helpers -----------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small file-system layer shared by every JSON-artifact writer (compile
/// reports, fuzz corpus, execution profiles, compile-cache entries).
/// writeTextFile is atomic: the bytes go to a unique sibling temp file
/// which is renamed over the destination only after a verified full write,
/// so an interrupted run (nightly job killed mid-write, full disk) can
/// never leave a truncated artifact that poisons the next run — readers
/// observe either the old file or the complete new one.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_SUPPORT_FILESYSTEM_H
#define OMPGPU_SUPPORT_FILESYSTEM_H

#include "support/Error.h"

#include <string>
#include <vector>

namespace ompgpu {

/// Atomically replaces \p Path with \p Text (write temp + rename). Returns
/// a failure Error (never aborts) on open/write/rename problems; the
/// destination is left untouched on failure. Disk-full conditions (ENOSPC)
/// come back as a typed Error (Error::isDiskFull). When the final rename
/// fails with EXDEV (temp and destination on different file systems, e.g.
/// under overlay mounts), the write falls back to copy + fsync + unlink —
/// still crash-consistent, just not atomic against concurrent readers.
Error writeTextFile(const std::string &Path, const std::string &Text);

/// Reads the whole file into a string.
Expected<std::string> readTextFile(const std::string &Path);

/// Creates \p Path (and parents) if needed.
Error ensureDirectory(const std::string &Path);

/// Removes \p Path if it exists; missing files are not an error.
Error removeFile(const std::string &Path);

/// True when \p Path names an existing regular file.
bool fileExists(const std::string &Path);

/// Names (not paths) of the regular files directly inside \p Dir, sorted.
/// Missing or unreadable directories yield an empty list.
std::vector<std::string> listDirectoryFiles(const std::string &Dir);

/// \name Fault-injection hook (src/resilience)
/// The resilience layer's fault injector installs a hook here so chaos
/// campaigns can simulate disk failures without support/ depending on the
/// injector. \p Op is "read", "write", or "exdev"; a non-success return
/// from "read"/"write" is surfaced as that operation's failure, and a
/// non-success return from "exdev" makes writeTextFile take its
/// cross-device rename fallback path. Null (the default) disables the
/// hook entirely.
/// @{
using FileSystemFaultHook = Error (*)(const char *Op,
                                      const std::string &Path);
void setFileSystemFaultHook(FileSystemFaultHook Hook);
/// @}

} // namespace ompgpu

#endif // OMPGPU_SUPPORT_FILESYSTEM_H
