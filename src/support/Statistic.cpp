//===- support/Statistic.cpp - Named statistic counters ------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "support/Statistic.h"
#include "support/raw_ostream.h"

using namespace ompgpu;

Statistic::Statistic(std::string DebugType, std::string Name, std::string Desc)
    : DebugType(std::move(DebugType)), Name(std::move(Name)),
      Desc(std::move(Desc)) {
  StatisticRegistry::get().add(this);
}

StatisticRegistry &StatisticRegistry::get() {
  static StatisticRegistry Registry;
  return Registry;
}

void StatisticRegistry::resetAll() {
  for (Statistic *S : Stats)
    S->reset();
}

void StatisticRegistry::print(raw_ostream &OS) const {
  for (const Statistic *S : Stats)
    if (S->getValue() != 0)
      OS << S->getValue() << " " << S->getDebugType() << " - " << S->getDesc()
         << '\n';
}
