//===- support/Statistic.cpp - Named statistic counters ------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "support/Statistic.h"
#include "support/raw_ostream.h"

using namespace ompgpu;

Statistic::Statistic(std::string DebugType, std::string Name, std::string Desc)
    : DebugType(std::move(DebugType)), Name(std::move(Name)),
      Desc(std::move(Desc)) {
  StatisticRegistry::get().add(this);
}

void Statistic::add(uint64_t V) {
  Value.fetch_add(V, std::memory_order_relaxed);
  if (StatisticScope *S = StatisticScope::current())
    S->Deltas[this] += V;
}

StatisticScope *&StatisticScope::current() {
  static thread_local StatisticScope *Current = nullptr;
  return Current;
}

StatisticScope::StatisticScope() : Enclosing(current()) { current() = this; }

StatisticScope::~StatisticScope() { current() = Enclosing; }

StatisticRegistry &StatisticRegistry::get() {
  static StatisticRegistry Registry;
  return Registry;
}

void StatisticRegistry::resetAll() {
  for (Statistic *S : stats())
    S->reset();
}

void StatisticRegistry::print(raw_ostream &OS) const {
  for (const Statistic *S : stats())
    if (S->getValue() != 0)
      OS << S->getValue() << " " << S->getDebugType() << " - " << S->getDesc()
         << '\n';
}
