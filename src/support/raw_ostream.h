//===- support/raw_ostream.h - Lightweight output streams -------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small raw_ostream in the spirit of llvm/Support/raw_ostream.h. The
/// project forbids <iostream> in library code; all printing goes through
/// these streams.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_SUPPORT_RAW_OSTREAM_H
#define OMPGPU_SUPPORT_RAW_OSTREAM_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace ompgpu {

/// Abstract base class for a forward-only character output stream.
class raw_ostream {
public:
  virtual ~raw_ostream();

  raw_ostream &operator<<(char C) {
    write(&C, 1);
    return *this;
  }
  raw_ostream &operator<<(const char *Str) {
    return *this << std::string_view(Str);
  }
  raw_ostream &operator<<(std::string_view Str) {
    write(Str.data(), Str.size());
    return *this;
  }
  raw_ostream &operator<<(const std::string &Str) {
    write(Str.data(), Str.size());
    return *this;
  }
  raw_ostream &operator<<(bool B) { return *this << (B ? "true" : "false"); }
  raw_ostream &operator<<(int32_t N) { return *this << (int64_t)N; }
  raw_ostream &operator<<(uint32_t N) { return *this << (uint64_t)N; }
  raw_ostream &operator<<(int64_t N);
  raw_ostream &operator<<(uint64_t N);
  raw_ostream &operator<<(double D);
  raw_ostream &operator<<(const void *P);
#ifdef __SIZEOF_INT128__
  raw_ostream &operator<<(unsigned long long N) { return *this << (uint64_t)N; }
  raw_ostream &operator<<(long long N) { return *this << (int64_t)N; }
#endif

  /// Emits \p NumSpaces spaces, useful for structured printing.
  raw_ostream &indent(unsigned NumSpaces);

  /// Writes raw bytes to the underlying sink.
  virtual void write(const char *Ptr, size_t Size) = 0;

  /// Flushes buffered output if the sink buffers.
  virtual void flush() {}
};

/// Stream that appends to a caller-owned std::string.
class raw_string_ostream : public raw_ostream {
  std::string &Buffer;

public:
  explicit raw_string_ostream(std::string &Buffer) : Buffer(Buffer) {}

  void write(const char *Ptr, size_t Size) override {
    Buffer.append(Ptr, Size);
  }

  /// Returns the accumulated contents.
  const std::string &str() const { return Buffer; }
};

/// Stream writing to a C FILE handle (stdout/stderr or an opened file).
class raw_fd_ostream : public raw_ostream {
  std::FILE *FD;
  bool ShouldClose;

public:
  explicit raw_fd_ostream(std::FILE *FD, bool ShouldClose = false)
      : FD(FD), ShouldClose(ShouldClose) {}
  /// Opens \p Path for writing; falls back to stderr on failure.
  explicit raw_fd_ostream(const std::string &Path);
  ~raw_fd_ostream() override;

  void write(const char *Ptr, size_t Size) override {
    std::fwrite(Ptr, 1, Size, FD);
  }
  void flush() override { std::fflush(FD); }
};

/// Stream that discards all output.
class raw_null_ostream : public raw_ostream {
public:
  void write(const char *, size_t) override {}
};

/// Returns the standard output stream.
raw_ostream &outs();
/// Returns the standard error stream.
raw_ostream &errs();
/// Returns a stream that discards output.
raw_ostream &nulls();

/// Formats a value to a std::string via raw_ostream.
template <typename T> std::string toString(const T &Val) {
  std::string S;
  raw_string_ostream OS(S);
  OS << Val;
  return S;
}

/// printf-style formatting into a std::string (for numeric tables).
std::string formatBuf(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace ompgpu

#endif // OMPGPU_SUPPORT_RAW_OSTREAM_H
