//===- support/Casting.h - isa/cast/dyn_cast templates ----------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled opt-in RTTI in the LLVM style: isa<>, cast<>, dyn_cast<>.
/// A class participates by providing a static `classof(const Base *)`.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_SUPPORT_CASTING_H
#define OMPGPU_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace ompgpu {

/// Returns true if \p Val is an instance of To (or a subclass thereof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

template <typename To, typename From>
  requires(!std::is_pointer_v<From>)
bool isa(const From &Val) {
  return To::classof(&Val);
}

/// Returns true if \p Val is non-null and an instance of To.
template <typename To, typename From> bool isa_and_nonnull(const From *Val) {
  return Val && To::classof(Val);
}

/// Checked cast: asserts that the dynamic type matches.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

template <typename To, typename From> To &cast(From &Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To &>(Val);
}

template <typename To, typename From> const To &cast(const From &Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To &>(Val);
}

/// Checking cast: returns null if the dynamic type does not match.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast<> but tolerates a null input.
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return (Val && isa<To>(Val)) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return (Val && isa<To>(Val)) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace ompgpu

#endif // OMPGPU_SUPPORT_CASTING_H
