//===- support/Hashing.h - Stable byte hashing ------------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FNV-1a hashing over byte ranges. Used by the pass instrumentation to
/// fingerprint IR before/after a pass (-print-changed style change
/// detection): stable across runs, unlike std::hash.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_SUPPORT_HASHING_H
#define OMPGPU_SUPPORT_HASHING_H

#include <cstdint>
#include <string_view>

namespace ompgpu {

/// 64-bit FNV-1a over \p Bytes.
inline uint64_t hashBytes(std::string_view Bytes) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return H;
}

/// Mixes \p Value into an existing hash \p Seed.
inline uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  Seed ^= Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
  return Seed;
}

} // namespace ompgpu

#endif // OMPGPU_SUPPORT_HASHING_H
