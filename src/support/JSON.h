//===- support/JSON.h - Minimal JSON value, writer, parser ------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JSON facility in the spirit of llvm/Support/JSON.h: a value
/// model, a deterministic pretty-printing writer, and a strict
/// recursive-descent parser. Backs the schema-versioned compile-report
/// (docs/compile-report.md) consumed by the bench tooling and CI.
/// Object members preserve insertion order so emitted reports are stable
/// and diffable.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_SUPPORT_JSON_H
#define OMPGPU_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ompgpu {

class raw_ostream;

namespace json {

/// One JSON value of any kind. Arrays and objects own their children.
class Value {
public:
  enum class Kind {
    Null,
    Boolean,
    Integer, ///< written without a decimal point
    Double,
    String,
    Array,
    Object,
  };

  using Member = std::pair<std::string, Value>;

  Value() = default;
  Value(std::nullptr_t) {}
  Value(bool B) : K(Kind::Boolean), Bool(B) {}
  Value(int64_t I) : K(Kind::Integer), Int(I) {}
  Value(uint64_t I) : K(Kind::Integer), Int((int64_t)I) {}
  Value(int I) : K(Kind::Integer), Int(I) {}
  Value(unsigned I) : K(Kind::Integer), Int(I) {}
  Value(double D) : K(Kind::Double), Dbl(D) {}
  Value(std::string S) : K(Kind::String), Str(std::move(S)) {}
  Value(const char *S) : K(Kind::String), Str(S) {}

  static Value makeArray() {
    Value V;
    V.K = Kind::Array;
    return V;
  }
  static Value makeObject() {
    Value V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Boolean; }
  bool isNumber() const { return K == Kind::Integer || K == Kind::Double; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return Bool; }
  int64_t asInt() const { return K == Kind::Double ? (int64_t)Dbl : Int; }
  double asDouble() const { return K == Kind::Integer ? (double)Int : Dbl; }
  const std::string &asString() const { return Str; }

  /// \name Array accessors (valid only for Kind::Array)
  /// @{
  void push_back(Value V) { Elements.push_back(std::move(V)); }
  size_t size() const {
    return K == Kind::Array ? Elements.size() : Members.size();
  }
  bool empty() const { return size() == 0; }
  const Value &operator[](size_t I) const { return Elements[I]; }
  const std::vector<Value> &elements() const { return Elements; }
  /// @}

  /// \name Object accessors (valid only for Kind::Object)
  /// @{
  /// Appends or replaces member \p Key; returns *this for chaining.
  Value &set(std::string Key, Value V);
  /// Returns the member named \p Key, or null when absent.
  const Value *find(std::string_view Key) const;
  /// Member lookup that returns a shared Null value when absent, so field
  /// checks can chain without null tests.
  const Value &at(std::string_view Key) const;
  const std::vector<Member> &members() const { return Members; }
  /// @}

  /// Pretty-prints with two-space indentation and ordered members.
  void write(raw_ostream &OS, unsigned IndentLevel = 0) const;
  std::string str() const;

private:
  Kind K = Kind::Null;
  bool Bool = false;
  int64_t Int = 0;
  double Dbl = 0.0;
  std::string Str;
  std::vector<Value> Elements;
  std::vector<Member> Members;
};

/// Writes \p S with JSON escaping (quotes included).
void writeEscaped(raw_ostream &OS, std::string_view S);

/// Parses \p Text into \p Out. Returns false and fills \p Error (with a
/// byte offset) on malformed input; trailing garbage is an error.
bool parse(std::string_view Text, Value &Out, std::string *Error = nullptr);

} // namespace json
} // namespace ompgpu

#endif // OMPGPU_SUPPORT_JSON_H
