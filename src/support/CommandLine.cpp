//===- support/CommandLine.cpp - Minimal flag registry -------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"
#include "support/raw_ostream.h"

#include <cstdlib>
#include <utility>

using namespace ompgpu;
using namespace ompgpu::cl;

static std::vector<OptionBase *> &getRegistry() {
  static std::vector<OptionBase *> Registry;
  return Registry;
}

OptionBase::OptionBase(std::string Name, std::string Desc)
    : Name(std::move(Name)), Desc(std::move(Desc)) {
  getRegistry().push_back(this);
}

OptionBase::~OptionBase() = default;

namespace ompgpu {
namespace cl {

template <> bool opt<bool>::parse(const std::string &Text) {
  if (Text.empty() || Text == "true" || Text == "1") {
    Value = true;
    return true;
  }
  if (Text == "false" || Text == "0") {
    Value = false;
    return true;
  }
  return false;
}

template <> bool opt<int64_t>::parse(const std::string &Text) {
  char *End = nullptr;
  long long V = std::strtoll(Text.c_str(), &End, 10);
  if (End == Text.c_str() || *End != '\0')
    return false;
  Value = V;
  return true;
}

template <> bool opt<double>::parse(const std::string &Text) {
  char *End = nullptr;
  double V = std::strtod(Text.c_str(), &End);
  if (End == Text.c_str() || *End != '\0')
    return false;
  Value = V;
  return true;
}

template <> bool opt<std::string>::parse(const std::string &Text) {
  Value = Text;
  return true;
}

} // namespace cl
} // namespace ompgpu

OptionBase *cl::findOption(const std::string &Name) {
  for (OptionBase *O : getRegistry())
    if (O->getName() == Name)
      return O;
  return nullptr;
}

Expected<std::vector<std::string>>
cl::parseCommandLineArgs(int Argc, const char *const *Argv) {
  std::vector<std::string> Rest;
  if (Argc > 0)
    Rest.push_back(Argv[0]);
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.size() < 2 || Arg[0] != '-') {
      Rest.push_back(Arg);
      continue;
    }
    std::string Body = Arg.substr(Arg[1] == '-' ? 2 : 1);
    if (Body == "help-ompgpu") {
      outs() << "ompgpu options:\n";
      for (OptionBase *O : getRegistry())
        outs() << "  -" << O->getName() << "  " << O->getDesc() << '\n';
      std::exit(0);
    }
    std::string Value;
    if (size_t Eq = Body.find('='); Eq != std::string::npos) {
      Value = Body.substr(Eq + 1);
      Body = Body.substr(0, Eq);
    }
    OptionBase *O = findOption(Body);
    if (!O) {
      Rest.push_back(Arg);
      continue;
    }
    if (!O->parse(Value))
      return Error::failure("invalid value '" + Value + "' for option -" +
                            Body);
    O->markOccurred();
  }
  return Rest;
}

std::vector<std::string> cl::parseCommandLine(int Argc,
                                              const char *const *Argv) {
  Expected<std::vector<std::string>> Rest = parseCommandLineArgs(Argc, Argv);
  if (!Rest) {
    errs() << "error: " << Rest.message() << '\n';
    std::exit(1);
  }
  return std::move(*Rest);
}
