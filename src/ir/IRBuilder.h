//===- ir/IRBuilder.h - Convenience IR construction -------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRBuilder inserts newly created instructions at a configurable insertion
/// point, in the style of llvm::IRBuilder. Both the OpenMP front-end and
/// the optimization passes construct IR through this class.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_IR_IRBUILDER_H
#define OMPGPU_IR_IRBUILDER_H

#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/IRContext.h"
#include "ir/Instruction.h"

namespace ompgpu {

/// Creates instructions at an insertion point within a basic block.
class IRBuilder {
  IRContext &Ctx;
  BasicBlock *BB = nullptr;
  /// When non-null, new instructions are inserted before this instruction;
  /// otherwise they are appended to the block.
  Instruction *InsertBefore = nullptr;

public:
  explicit IRBuilder(IRContext &Ctx) : Ctx(Ctx) {}
  explicit IRBuilder(BasicBlock *BB)
      : Ctx(BB->getParent()->getContext()), BB(BB) {}

  IRContext &getContext() const { return Ctx; }

  /// \name Insertion point management
  /// @{
  void setInsertPoint(BasicBlock *TheBB) {
    BB = TheBB;
    InsertBefore = nullptr;
  }
  void setInsertPoint(Instruction *I) {
    BB = I->getParent();
    InsertBefore = I;
  }
  BasicBlock *getInsertBlock() const { return BB; }
  /// @}

  /// Inserts \p I at the current insertion point and returns it.
  template <typename InstT> InstT *insert(InstT *I, std::string Name = "") {
    assert(BB && "no insertion point set");
    if (!Name.empty())
      I->setName(std::move(Name));
    if (InsertBefore)
      BB->insertBefore(I, InsertBefore);
    else
      BB->push_back(I);
    return I;
  }

  /// \name Constants
  /// @{
  ConstantInt *getInt1(bool V) { return Ctx.getInt1(V); }
  ConstantInt *getInt32(int64_t V) { return Ctx.getInt32(V); }
  ConstantInt *getInt64(int64_t V) { return Ctx.getInt64(V); }
  ConstantFP *getFloat(double V) { return Ctx.getFloat(V); }
  ConstantFP *getDouble(double V) { return Ctx.getDouble(V); }
  Type *getInt32Ty() { return Ctx.getInt32Ty(); }
  Type *getInt64Ty() { return Ctx.getInt64Ty(); }
  Type *getFloatTy() { return Ctx.getFloatTy(); }
  Type *getDoubleTy() { return Ctx.getDoubleTy(); }
  Type *getVoidTy() { return Ctx.getVoidTy(); }
  PointerType *getPtrTy(AddrSpace AS = AddrSpace::Generic) {
    return Ctx.getPtrTy(AS);
  }
  /// @}

  /// \name Memory
  /// @{
  AllocaInst *createAlloca(Type *Ty, std::string Name = "") {
    return insert(new AllocaInst(Ctx, Ty), std::move(Name));
  }
  LoadInst *createLoad(Type *Ty, Value *Ptr, std::string Name = "") {
    return insert(new LoadInst(Ty, Ptr), std::move(Name));
  }
  StoreInst *createStore(Value *Val, Value *Ptr) {
    return insert(new StoreInst(Ctx, Val, Ptr));
  }
  GEPInst *createGEP(Type *ElemTy, Value *Ptr, std::vector<Value *> Idx,
                     std::string Name = "") {
    return insert(new GEPInst(Ctx, ElemTy, Ptr, std::move(Idx)),
                  std::move(Name));
  }
  AtomicRMWInst *createAtomicRMW(AtomicRMWOp Op, Value *Ptr, Value *Val,
                                 std::string Name = "") {
    return insert(new AtomicRMWInst(Op, Ptr, Val), std::move(Name));
  }
  /// @}

  /// \name Arithmetic
  /// @{
  BinOpInst *createBinOp(BinaryOp Op, Value *L, Value *R,
                         std::string Name = "") {
    return insert(new BinOpInst(Op, L, R), std::move(Name));
  }
  BinOpInst *createAdd(Value *L, Value *R, std::string Name = "") {
    return createBinOp(BinaryOp::Add, L, R, std::move(Name));
  }
  BinOpInst *createSub(Value *L, Value *R, std::string Name = "") {
    return createBinOp(BinaryOp::Sub, L, R, std::move(Name));
  }
  BinOpInst *createMul(Value *L, Value *R, std::string Name = "") {
    return createBinOp(BinaryOp::Mul, L, R, std::move(Name));
  }
  BinOpInst *createSDiv(Value *L, Value *R, std::string Name = "") {
    return createBinOp(BinaryOp::SDiv, L, R, std::move(Name));
  }
  BinOpInst *createSRem(Value *L, Value *R, std::string Name = "") {
    return createBinOp(BinaryOp::SRem, L, R, std::move(Name));
  }
  BinOpInst *createAnd(Value *L, Value *R, std::string Name = "") {
    return createBinOp(BinaryOp::And, L, R, std::move(Name));
  }
  BinOpInst *createOr(Value *L, Value *R, std::string Name = "") {
    return createBinOp(BinaryOp::Or, L, R, std::move(Name));
  }
  BinOpInst *createXor(Value *L, Value *R, std::string Name = "") {
    return createBinOp(BinaryOp::Xor, L, R, std::move(Name));
  }
  BinOpInst *createShl(Value *L, Value *R, std::string Name = "") {
    return createBinOp(BinaryOp::Shl, L, R, std::move(Name));
  }
  BinOpInst *createLShr(Value *L, Value *R, std::string Name = "") {
    return createBinOp(BinaryOp::LShr, L, R, std::move(Name));
  }
  BinOpInst *createFAdd(Value *L, Value *R, std::string Name = "") {
    return createBinOp(BinaryOp::FAdd, L, R, std::move(Name));
  }
  BinOpInst *createFSub(Value *L, Value *R, std::string Name = "") {
    return createBinOp(BinaryOp::FSub, L, R, std::move(Name));
  }
  BinOpInst *createFMul(Value *L, Value *R, std::string Name = "") {
    return createBinOp(BinaryOp::FMul, L, R, std::move(Name));
  }
  BinOpInst *createFDiv(Value *L, Value *R, std::string Name = "") {
    return createBinOp(BinaryOp::FDiv, L, R, std::move(Name));
  }
  /// @}

  /// \name Comparisons and conversions
  /// @{
  ICmpInst *createICmp(ICmpPred P, Value *L, Value *R,
                       std::string Name = "") {
    return insert(new ICmpInst(Ctx, P, L, R), std::move(Name));
  }
  ICmpInst *createICmpEQ(Value *L, Value *R, std::string Name = "") {
    return createICmp(ICmpPred::EQ, L, R, std::move(Name));
  }
  ICmpInst *createICmpNE(Value *L, Value *R, std::string Name = "") {
    return createICmp(ICmpPred::NE, L, R, std::move(Name));
  }
  ICmpInst *createICmpSLT(Value *L, Value *R, std::string Name = "") {
    return createICmp(ICmpPred::SLT, L, R, std::move(Name));
  }
  ICmpInst *createICmpSGE(Value *L, Value *R, std::string Name = "") {
    return createICmp(ICmpPred::SGE, L, R, std::move(Name));
  }
  FCmpInst *createFCmp(FCmpPred P, Value *L, Value *R,
                       std::string Name = "") {
    return insert(new FCmpInst(Ctx, P, L, R), std::move(Name));
  }
  CastInst *createCast(CastOp Op, Value *Src, Type *DestTy,
                       std::string Name = "") {
    return insert(new CastInst(Op, Src, DestTy), std::move(Name));
  }
  CastInst *createZExt(Value *Src, Type *DestTy, std::string Name = "") {
    return createCast(CastOp::ZExt, Src, DestTy, std::move(Name));
  }
  CastInst *createSExt(Value *Src, Type *DestTy, std::string Name = "") {
    return createCast(CastOp::SExt, Src, DestTy, std::move(Name));
  }
  CastInst *createTrunc(Value *Src, Type *DestTy, std::string Name = "") {
    return createCast(CastOp::Trunc, Src, DestTy, std::move(Name));
  }
  CastInst *createSIToFP(Value *Src, Type *DestTy, std::string Name = "") {
    return createCast(CastOp::SIToFP, Src, DestTy, std::move(Name));
  }
  CastInst *createFPExt(Value *Src, Type *DestTy, std::string Name = "") {
    return createCast(CastOp::FPExt, Src, DestTy, std::move(Name));
  }
  CastInst *createFPTrunc(Value *Src, Type *DestTy, std::string Name = "") {
    return createCast(CastOp::FPTrunc, Src, DestTy, std::move(Name));
  }
  CastInst *createAddrSpaceCast(Value *Src, AddrSpace AS,
                                std::string Name = "") {
    return createCast(CastOp::AddrSpaceCast, Src, Ctx.getPtrTy(AS),
                      std::move(Name));
  }
  /// @}

  /// \name Misc values
  /// @{
  SelectInst *createSelect(Value *C, Value *T, Value *F,
                           std::string Name = "") {
    return insert(new SelectInst(C, T, F), std::move(Name));
  }
  MathInst *createMath(MathOp Op, std::vector<Value *> Args,
                       std::string Name = "") {
    return insert(new MathInst(Op, std::move(Args)), std::move(Name));
  }
  PhiInst *createPhi(Type *Ty, std::string Name = "") {
    return insert(new PhiInst(Ty), std::move(Name));
  }
  CallInst *createCall(Function *Callee, std::vector<Value *> Args,
                       std::string Name = "") {
    return insert(new CallInst(Callee, std::move(Args)), std::move(Name));
  }
  CallInst *createIndirectCall(FunctionType *FTy, Value *Callee,
                               std::vector<Value *> Args,
                               std::string Name = "") {
    return insert(new CallInst(FTy, Callee, std::move(Args)),
                  std::move(Name));
  }
  /// @}

  /// \name Terminators
  /// @{
  RetInst *createRetVoid() { return insert(new RetInst(Ctx, nullptr)); }
  RetInst *createRet(Value *V) { return insert(new RetInst(Ctx, V)); }
  BrInst *createBr(BasicBlock *Dest) { return insert(new BrInst(Ctx, Dest)); }
  BrInst *createCondBr(Value *Cond, BasicBlock *T, BasicBlock *F) {
    return insert(new BrInst(Ctx, Cond, T, F));
  }
  UnreachableInst *createUnreachable() {
    return insert(new UnreachableInst(Ctx));
  }
  /// @}
};

} // namespace ompgpu

#endif // OMPGPU_IR_IRBUILDER_H
