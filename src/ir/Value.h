//===- ir/Value.h - SSA value and user base classes -------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value is the base of everything that can be an operand: constants,
/// arguments, instructions, globals, and basic blocks. User adds an operand
/// list with automatic use-list maintenance, enabling
/// replaceAllUsesWith-style rewrites which the inter-procedural
/// optimizations rely on heavily.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_IR_VALUE_H
#define OMPGPU_IR_VALUE_H

#include "support/Casting.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace ompgpu {

class Type;
class User;
class raw_ostream;

/// Discriminator for the whole Value hierarchy. Instruction opcodes are
/// part of this enum (as in LLVM), delimited by InstBegin/InstEnd.
enum class ValueKind : uint8_t {
  Argument,
  BasicBlock,
  // Constants.
  ConstantInt,
  ConstantFP,
  ConstantPointerNull,
  UndefValue,
  GlobalVariable,
  Function,
  // Instructions.
  InstBegin,
  // Memory.
  Alloca,
  Load,
  Store,
  GEP,
  AtomicRMW,
  // Arithmetic and logic.
  BinOp,
  ICmp,
  FCmp,
  Cast,
  Select,
  Math,
  // Control and misc.
  Phi,
  Call,
  Ret,
  Br,
  Unreachable,
  InstEnd,
};

/// Base class of all SSA values. Tracks the users that reference this value
/// so rewrites can update them.
class Value {
  ValueKind Kind;
  Type *Ty;
  std::string Name;
  /// Users referencing this value; contains one entry per operand use, so a
  /// user appears once per operand that references this value.
  std::vector<User *> Users;

  friend class User;
  void addUser(User *U) { Users.push_back(U); }
  void removeUser(User *U);

protected:
  Value(ValueKind Kind, Type *Ty) : Kind(Kind), Ty(Ty) {}
  /// Copying (used by Instruction::clone) duplicates kind and type but not
  /// the name or use list.
  Value(const Value &O) : Kind(O.Kind), Ty(O.Ty) {}

public:
  Value &operator=(const Value &) = delete;
  virtual ~Value();

  ValueKind getValueKind() const { return Kind; }
  Type *getType() const { return Ty; }

  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }
  bool hasName() const { return !Name.empty(); }

  /// All users (one entry per referencing operand).
  const std::vector<User *> &users() const { return Users; }
  bool hasUses() const { return !Users.empty(); }
  unsigned getNumUses() const { return Users.size(); }

  /// Rewrites every use of this value to use \p New instead.
  void replaceAllUsesWith(Value *New);

  /// Prints a short inline representation (for diagnostics).
  void printAsOperand(raw_ostream &OS) const;

  static bool classof(const Value *) { return true; }
};

/// A value that references other values through an operand list.
class User : public Value {
  std::vector<Value *> Operands;

  std::vector<Value *> &getOperandList() { return Operands; }

protected:
  User(ValueKind Kind, Type *Ty) : Value(Kind, Ty) {}
  /// Copying registers this user on every operand's use list.
  User(const User &O) : Value(O) {
    for (Value *V : O.Operands)
      addOperand(V);
  }

  /// Appends an operand, updating \p V's use list.
  void addOperand(Value *V) {
    assert(V && "cannot add a null operand");
    Operands.push_back(V);
    V->addUser(this);
  }

public:
  ~User() override { dropAllOperands(); }

  unsigned getNumOperands() const { return Operands.size(); }
  Value *getOperand(unsigned Idx) const {
    assert(Idx < Operands.size() && "operand index out of range");
    return Operands[Idx];
  }
  const std::vector<Value *> &operands() const { return Operands; }

  /// Replaces operand \p Idx, maintaining use lists on both values.
  void setOperand(unsigned Idx, Value *V);

  /// Removes operand \p Idx entirely (shifting later operands down).
  void removeOperand(unsigned Idx);

  /// Replaces every occurrence of \p Old in the operand list with \p New.
  void replaceUsesOfWith(Value *Old, Value *New);

  /// Removes all operands (used on destruction and when detaching).
  void dropAllOperands();

  static bool classof(const Value *V) {
    ValueKind K = V->getValueKind();
    return K != ValueKind::Argument && K != ValueKind::BasicBlock;
  }
};

/// A formal parameter of a Function.
class Argument : public Value {
  class Function *Parent;
  unsigned ArgNo;
  bool NoEscape = false;

public:
  Argument(Type *Ty, class Function *Parent, unsigned ArgNo)
      : Value(ValueKind::Argument, Ty), Parent(Parent), ArgNo(ArgNo) {}

  class Function *getParent() const { return Parent; }
  unsigned getArgNo() const { return ArgNo; }

  /// The C/C++ __attribute__((noescape)) the paper suggests users add via
  /// remarks feedback: the callee does not capture the pointer.
  bool hasNoEscapeAttr() const { return NoEscape; }
  void setNoEscapeAttr(bool V = true) { NoEscape = V; }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Argument;
  }
};

} // namespace ompgpu

#endif // OMPGPU_IR_VALUE_H
