//===- ir/AsmWriter.h - Textual IR printing ---------------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints modules and functions in an LLVM-like textual syntax, used by
/// tests, examples, and debugging.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_IR_ASMWRITER_H
#define OMPGPU_IR_ASMWRITER_H

#include <cstdint>
#include <string>

namespace ompgpu {

class Function;
class Module;
class raw_ostream;

/// Prints \p M in textual form.
void printModule(const Module &M, raw_ostream &OS);
/// Prints \p F in textual form.
void printFunction(const Function &F, raw_ostream &OS);

/// Returns the textual form of \p M.
std::string moduleToString(const Module &M);
/// Returns the textual form of \p F.
std::string functionToString(const Function &F);

/// Fingerprints \p M for -print-changed style change detection: a stable
/// FNV-1a hash of the textual form, so any observable IR difference
/// (instructions, names, attributes, globals) changes the hash.
uint64_t hashModule(const Module &M);

} // namespace ompgpu

#endif // OMPGPU_IR_ASMWRITER_H
