//===- ir/AsmWriter.cpp - Textual IR printing ------------------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "ir/AsmWriter.h"
#include "ir/Module.h"
#include "support/ErrorHandling.h"
#include "support/raw_ostream.h"

#include <map>

using namespace ompgpu;

namespace {

/// Assigns %N slot numbers to unnamed values within one function.
class SlotTracker {
  std::map<const Value *, unsigned> Slots;
  unsigned Next = 0;

public:
  explicit SlotTracker(const Function &F) {
    for (const Argument *A : F.args())
      if (!A->hasName())
        Slots[A] = Next++;
    for (const BasicBlock *BB : F) {
      if (!BB->hasName())
        Slots[BB] = Next++;
      for (const Instruction *I : *BB)
        if (!I->getType()->isVoidTy() && !I->hasName())
          Slots[I] = Next++;
    }
  }

  std::string getLocalName(const Value *V) const {
    if (V->hasName())
      return "%" + V->getName();
    auto It = Slots.find(V);
    if (It == Slots.end())
      return "%<badref>";
    return "%" + std::to_string(It->second);
  }
};

const char *getBinaryOpName(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "add";
  case BinaryOp::Sub:
    return "sub";
  case BinaryOp::Mul:
    return "mul";
  case BinaryOp::SDiv:
    return "sdiv";
  case BinaryOp::UDiv:
    return "udiv";
  case BinaryOp::SRem:
    return "srem";
  case BinaryOp::URem:
    return "urem";
  case BinaryOp::And:
    return "and";
  case BinaryOp::Or:
    return "or";
  case BinaryOp::Xor:
    return "xor";
  case BinaryOp::Shl:
    return "shl";
  case BinaryOp::LShr:
    return "lshr";
  case BinaryOp::AShr:
    return "ashr";
  case BinaryOp::FAdd:
    return "fadd";
  case BinaryOp::FSub:
    return "fsub";
  case BinaryOp::FMul:
    return "fmul";
  case BinaryOp::FDiv:
    return "fdiv";
  }
  ompgpu_unreachable("covered switch");
}

const char *getICmpPredName(ICmpPred P) {
  switch (P) {
  case ICmpPred::EQ:
    return "eq";
  case ICmpPred::NE:
    return "ne";
  case ICmpPred::SLT:
    return "slt";
  case ICmpPred::SLE:
    return "sle";
  case ICmpPred::SGT:
    return "sgt";
  case ICmpPred::SGE:
    return "sge";
  case ICmpPred::ULT:
    return "ult";
  case ICmpPred::ULE:
    return "ule";
  case ICmpPred::UGT:
    return "ugt";
  case ICmpPred::UGE:
    return "uge";
  }
  ompgpu_unreachable("covered switch");
}

const char *getFCmpPredName(FCmpPred P) {
  switch (P) {
  case FCmpPred::OEQ:
    return "oeq";
  case FCmpPred::ONE:
    return "one";
  case FCmpPred::OLT:
    return "olt";
  case FCmpPred::OLE:
    return "ole";
  case FCmpPred::OGT:
    return "ogt";
  case FCmpPred::OGE:
    return "oge";
  }
  ompgpu_unreachable("covered switch");
}

const char *getCastOpName(CastOp Op) {
  switch (Op) {
  case CastOp::Trunc:
    return "trunc";
  case CastOp::ZExt:
    return "zext";
  case CastOp::SExt:
    return "sext";
  case CastOp::FPToSI:
    return "fptosi";
  case CastOp::SIToFP:
    return "sitofp";
  case CastOp::UIToFP:
    return "uitofp";
  case CastOp::FPTrunc:
    return "fptrunc";
  case CastOp::FPExt:
    return "fpext";
  case CastOp::PtrToInt:
    return "ptrtoint";
  case CastOp::IntToPtr:
    return "inttoptr";
  case CastOp::AddrSpaceCast:
    return "addrspacecast";
  }
  ompgpu_unreachable("covered switch");
}

const char *getMathOpName(MathOp Op) {
  switch (Op) {
  case MathOp::Sqrt:
    return "sqrt";
  case MathOp::Sin:
    return "sin";
  case MathOp::Cos:
    return "cos";
  case MathOp::Exp:
    return "exp";
  case MathOp::Log:
    return "log";
  case MathOp::Fabs:
    return "fabs";
  case MathOp::Floor:
    return "floor";
  case MathOp::Pow:
    return "pow";
  case MathOp::FMin:
    return "fmin";
  case MathOp::FMax:
    return "fmax";
  }
  ompgpu_unreachable("covered switch");
}

const char *getAtomicRMWOpName(AtomicRMWOp Op) {
  switch (Op) {
  case AtomicRMWOp::Xchg:
    return "xchg";
  case AtomicRMWOp::Add:
    return "add";
  case AtomicRMWOp::FAdd:
    return "fadd";
  case AtomicRMWOp::Max:
    return "max";
  case AtomicRMWOp::Min:
    return "min";
  }
  ompgpu_unreachable("covered switch");
}

/// Printer for one function with its slot tracker.
class FunctionPrinter {
  const Function &F;
  SlotTracker Slots;
  raw_ostream &OS;

public:
  FunctionPrinter(const Function &F, raw_ostream &OS)
      : F(F), Slots(F), OS(OS) {}

  void printOperand(const Value *V, bool WithType = true) {
    if (WithType && !isa<BasicBlock>(V)) {
      V->getType()->print(OS);
      OS << ' ';
    }
    if (const auto *CI = dyn_cast<ConstantInt>(V)) {
      OS << CI->getValue();
      return;
    }
    if (const auto *CF = dyn_cast<ConstantFP>(V)) {
      OS << formatBuf("%g", CF->getValue());
      return;
    }
    if (isa<ConstantPointerNull>(V)) {
      OS << "null";
      return;
    }
    if (isa<UndefValue>(V)) {
      OS << "undef";
      return;
    }
    if (isa<GlobalValue>(V)) {
      OS << '@' << V->getName();
      return;
    }
    if (const auto *BB = dyn_cast<BasicBlock>(V)) {
      OS << "label %" << (BB->hasName() ? BB->getName()
                                        : Slots.getLocalName(BB).substr(1));
      return;
    }
    OS << Slots.getLocalName(V);
  }

  void printInstruction(const Instruction *I) {
    OS << "  ";
    if (!I->getType()->isVoidTy()) {
      OS << Slots.getLocalName(I) << " = ";
    }
    switch (I->getOpcode()) {
    case ValueKind::Alloca: {
      const auto *AI = cast<AllocaInst>(I);
      OS << "alloca ";
      AI->getAllocatedType()->print(OS);
      break;
    }
    case ValueKind::Load: {
      const auto *LI = cast<LoadInst>(I);
      OS << "load ";
      LI->getType()->print(OS);
      OS << ", ";
      printOperand(LI->getPointerOperand());
      break;
    }
    case ValueKind::Store: {
      const auto *SI = cast<StoreInst>(I);
      OS << "store ";
      printOperand(SI->getValueOperand());
      OS << ", ";
      printOperand(SI->getPointerOperand());
      break;
    }
    case ValueKind::GEP: {
      const auto *GEP = cast<GEPInst>(I);
      OS << "getelementptr ";
      GEP->getSourceElementType()->print(OS);
      OS << ", ";
      printOperand(GEP->getPointerOperand());
      for (unsigned Idx = 0, E = GEP->getNumIndices(); Idx != E; ++Idx) {
        OS << ", ";
        printOperand(GEP->getIndex(Idx));
      }
      break;
    }
    case ValueKind::AtomicRMW: {
      const auto *AI = cast<AtomicRMWInst>(I);
      OS << "atomicrmw " << getAtomicRMWOpName(AI->getOperation()) << ' ';
      printOperand(AI->getPointerOperand());
      OS << ", ";
      printOperand(AI->getValOperand());
      break;
    }
    case ValueKind::BinOp: {
      const auto *BO = cast<BinOpInst>(I);
      OS << getBinaryOpName(BO->getBinaryOp()) << ' ';
      printOperand(BO->getLHS());
      OS << ", ";
      printOperand(BO->getRHS(), /*WithType=*/false);
      break;
    }
    case ValueKind::ICmp: {
      const auto *C = cast<ICmpInst>(I);
      OS << "icmp " << getICmpPredName(C->getPredicate()) << ' ';
      printOperand(C->getLHS());
      OS << ", ";
      printOperand(C->getRHS(), /*WithType=*/false);
      break;
    }
    case ValueKind::FCmp: {
      const auto *C = cast<FCmpInst>(I);
      OS << "fcmp " << getFCmpPredName(C->getPredicate()) << ' ';
      printOperand(C->getLHS());
      OS << ", ";
      printOperand(C->getRHS(), /*WithType=*/false);
      break;
    }
    case ValueKind::Cast: {
      const auto *C = cast<CastInst>(I);
      OS << getCastOpName(C->getCastOp()) << ' ';
      printOperand(C->getSrc());
      OS << " to ";
      C->getType()->print(OS);
      break;
    }
    case ValueKind::Select: {
      const auto *S = cast<SelectInst>(I);
      OS << "select ";
      printOperand(S->getCondition());
      OS << ", ";
      printOperand(S->getTrueValue());
      OS << ", ";
      printOperand(S->getFalseValue());
      break;
    }
    case ValueKind::Math: {
      const auto *M = cast<MathInst>(I);
      OS << "math." << getMathOpName(M->getMathOp()) << ' ';
      for (unsigned Idx = 0, E = M->getNumOperands(); Idx != E; ++Idx) {
        if (Idx)
          OS << ", ";
        printOperand(M->getOperand(Idx));
      }
      break;
    }
    case ValueKind::Phi: {
      const auto *P = cast<PhiInst>(I);
      OS << "phi ";
      P->getType()->print(OS);
      for (unsigned Idx = 0, E = P->getNumIncoming(); Idx != E; ++Idx) {
        OS << (Idx ? ", [" : " [");
        printOperand(P->getIncomingValue(Idx), /*WithType=*/false);
        OS << ", ";
        printOperand(P->getIncomingBlock(Idx), /*WithType=*/false);
        OS << ']';
      }
      break;
    }
    case ValueKind::Call: {
      const auto *CI = cast<CallInst>(I);
      OS << "call ";
      CI->getType()->print(OS);
      OS << ' ';
      printOperand(CI->getCalledOperand(), /*WithType=*/false);
      OS << '(';
      for (unsigned Idx = 0, E = CI->arg_size(); Idx != E; ++Idx) {
        if (Idx)
          OS << ", ";
        printOperand(CI->getArgOperand(Idx));
      }
      OS << ')';
      break;
    }
    case ValueKind::Ret: {
      const auto *R = cast<RetInst>(I);
      OS << "ret";
      if (Value *V = R->getReturnValue()) {
        OS << ' ';
        printOperand(V);
      } else {
        OS << " void";
      }
      break;
    }
    case ValueKind::Br: {
      const auto *B = cast<BrInst>(I);
      OS << "br ";
      if (B->isConditional()) {
        printOperand(B->getCondition());
        OS << ", ";
        printOperand(B->getSuccessor(0), /*WithType=*/false);
        OS << ", ";
        printOperand(B->getSuccessor(1), /*WithType=*/false);
      } else {
        printOperand(B->getSuccessor(0), /*WithType=*/false);
      }
      break;
    }
    case ValueKind::Unreachable:
      OS << "unreachable";
      break;
    default:
      ompgpu_unreachable("unhandled instruction kind");
    }
    OS << '\n';
  }

  void print() {
    OS << (F.isDeclaration() ? "declare " : "define ");
    if (F.hasInternalLinkage())
      OS << "internal ";
    F.getReturnType()->print(OS);
    OS << " @" << F.getName() << '(';
    for (unsigned I = 0, E = F.arg_size(); I != E; ++I) {
      if (I)
        OS << ", ";
      const Argument *A = F.getArg(I);
      A->getType()->print(OS);
      if (A->hasNoEscapeAttr())
        OS << " noescape";
      OS << ' ' << Slots.getLocalName(A);
    }
    OS << ')';
    for (FnAttr Attr : F.attrs()) {
      switch (Attr) {
      case FnAttr::ReadNone:
        OS << " readnone";
        break;
      case FnAttr::ReadOnly:
        OS << " readonly";
        break;
      case FnAttr::NoSync:
        OS << " nosync";
        break;
      case FnAttr::NoFree:
        OS << " nofree";
        break;
      case FnAttr::WillReturn:
        OS << " willreturn";
        break;
      case FnAttr::Convergent:
        OS << " convergent";
        break;
      case FnAttr::NoInline:
        OS << " noinline";
        break;
      }
    }
    for (const std::string &A : F.assumptions())
      OS << " \"omp.assume=" << A << '"';
    if (F.isKernel()) {
      const KernelEnvironment &Env = F.getKernelEnvironment();
      OS << " kernel("
         << (Env.Mode == ExecMode::SPMD ? "spmd" : "generic") << ')';
    }
    if (F.isDeclaration()) {
      OS << '\n';
      return;
    }
    OS << " {\n";
    bool FirstBlock = true;
    for (const BasicBlock *BB : F) {
      if (!FirstBlock)
        OS << '\n';
      FirstBlock = false;
      OS << (BB->hasName() ? BB->getName()
                           : Slots.getLocalName(BB).substr(1))
         << ":\n";
      for (const Instruction *I : *BB)
        printInstruction(I);
    }
    OS << "}\n";
  }
};

} // namespace

void ompgpu::printFunction(const Function &F, raw_ostream &OS) {
  FunctionPrinter(F, OS).print();
}

void ompgpu::printModule(const Module &M, raw_ostream &OS) {
  OS << "; module '" << M.getName() << "'\n";
  for (const GlobalVariable *G : M.globals()) {
    OS << '@' << G->getName() << " = ";
    if (G->hasInternalLinkage())
      OS << "internal ";
    OS << "global ";
    G->getValueType()->print(OS);
    if (G->getAddressSpace() != AddrSpace::Generic)
      OS << ", addrspace(" << (unsigned)G->getAddressSpace() << ')';
    OS << '\n';
  }
  if (!M.globals().empty())
    OS << '\n';
  bool First = true;
  for (const Function *F : M.functions()) {
    if (!First)
      OS << '\n';
    First = false;
    printFunction(*F, OS);
  }
}

std::string ompgpu::moduleToString(const Module &M) {
  std::string S;
  raw_string_ostream OS(S);
  printModule(M, OS);
  return S;
}

std::string ompgpu::functionToString(const Function &F) {
  std::string S;
  raw_string_ostream OS(S);
  printFunction(F, OS);
  return S;
}

namespace {
/// Stream that hashes written bytes instead of storing them, so module
/// fingerprinting does not materialize the whole printout.
class hashing_ostream : public raw_ostream {
  uint64_t Hash = 0xcbf29ce484222325ULL; // FNV-1a offset basis

public:
  void write(const char *Ptr, size_t Size) override {
    for (size_t I = 0; I != Size; ++I) {
      Hash ^= (unsigned char)Ptr[I];
      Hash *= 0x100000001b3ULL;
    }
  }
  uint64_t hash() const { return Hash; }
};
} // namespace

uint64_t ompgpu::hashModule(const Module &M) {
  hashing_ostream OS;
  printModule(M, OS);
  return OS.hash();
}
