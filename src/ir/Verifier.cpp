//===- ir/Verifier.cpp - IR structural validity checks ---------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "ir/Module.h"
#include "support/STLExtras.h"
#include "support/raw_ostream.h"

#include <set>

using namespace ompgpu;

namespace {

/// Stateful verifier for one function.
class Verifier {
  const Function &F;
  std::string Error;
  bool Broken = false;

  void check(bool Cond, const std::string &Msg) {
    if (Broken || Cond)
      return;
    Broken = true;
    Error = "in function '" + F.getName() + "': " + Msg;
  }

public:
  explicit Verifier(const Function &F) : F(F) {}

  const std::string &getError() const { return Error; }

  bool verify() {
    if (F.isDeclaration())
      return false;

    std::set<const BasicBlock *> FnBlocks;
    for (const BasicBlock *BB : F)
      FnBlocks.insert(BB);

    for (const BasicBlock *BB : F) {
      verifyBlock(*BB, FnBlocks);
      if (Broken)
        return true;
    }

    // The entry block must not have predecessors (no branch targets it).
    check(F.getEntryBlock()->predecessors().empty(),
          "entry block has predecessors");
    return Broken;
  }

private:
  void verifyBlock(const BasicBlock &BB,
                   const std::set<const BasicBlock *> &FnBlocks) {
    check(!BB.empty(), "block '" + BB.getName() + "' is empty");
    if (Broken)
      return;

    const Instruction *Term = BB.getTerminator();
    check(Term != nullptr,
          "block '" + BB.getName() + "' lacks a terminator");
    if (Broken)
      return;

    bool SeenNonPhi = false;
    for (const Instruction *I : BB) {
      check(I->getParent() == &BB, "instruction parent link broken");
      check(!I->isTerminator() || I == Term,
            "terminator in the middle of block '" + BB.getName() + "'");
      if (isa<PhiInst>(I))
        check(!SeenNonPhi,
              "phi after non-phi instruction in block '" + BB.getName() +
                  "'");
      else
        SeenNonPhi = true;
      verifyInstruction(*I, FnBlocks);
      if (Broken)
        return;
    }

    // Phi incoming blocks must exactly cover the predecessors.
    std::vector<BasicBlock *> Preds = BB.predecessors();
    for (const PhiInst *Phi : BB.phis()) {
      check(Phi->getNumIncoming() == Preds.size(),
            "phi incoming count does not match predecessors in block '" +
                BB.getName() + "'");
      for (unsigned I = 0, E = Phi->getNumIncoming(); I != E; ++I)
        check(is_contained(Preds, Phi->getIncomingBlock(I)),
              "phi references non-predecessor block in block '" +
                  BB.getName() + "'");
    }
  }

  void verifyInstruction(const Instruction &I,
                         const std::set<const BasicBlock *> &FnBlocks) {
    for (unsigned OpIdx = 0, E = I.getNumOperands(); OpIdx != E; ++OpIdx) {
      const Value *Op = I.getOperand(OpIdx);
      // Operand use lists must reference this instruction.
      check(is_contained(Op->users(), &I),
            "use list does not contain user (operand " +
                std::to_string(OpIdx) + " of " + I.getOpcodeName() + ")");
      if (const auto *OpInst = dyn_cast<Instruction>(Op))
        check(OpInst->getFunction() == &F,
              "operand instruction belongs to another function");
      if (const auto *OpBB = dyn_cast<BasicBlock>(Op))
        check(FnBlocks.count(OpBB),
              "operand block belongs to another function");
      if (const auto *OpArg = dyn_cast<Argument>(Op))
        check(OpArg->getParent() == &F,
              "operand argument belongs to another function");
    }

    if (const auto *CI = dyn_cast<CallInst>(&I)) {
      const FunctionType *FTy = CI->getCallFunctionType();
      check(CI->arg_size() == FTy->getNumParams(),
            "call argument count mismatch");
      for (unsigned A = 0, E = CI->arg_size(); A != E && !Broken; ++A) {
        Type *Expected = FTy->getParamType(A);
        Type *Actual = CI->getArgOperand(A)->getType();
        // Pointers are compatible across address spaces at call edges; the
        // simulator resolves generic pointers dynamically.
        bool BothPtr = Expected->isPointerTy() && Actual->isPointerTy();
        check(Expected == Actual || BothPtr, "call argument type mismatch");
      }
      if (const Function *Callee = CI->getCalledFunction())
        check(Callee->getFunctionType() == FTy,
              "direct call function type mismatch");
    }

    if (const auto *SI = dyn_cast<StoreInst>(&I))
      check(SI->getValueOperand()->getType()->isFirstClassTy(),
            "store of a non-first-class value");

    if (const auto *RI = dyn_cast<RetInst>(&I)) {
      Type *RetTy = F.getReturnType();
      if (RetTy->isVoidTy())
        check(RI->getReturnValue() == nullptr,
              "ret with value in void function");
      else {
        check(RI->getReturnValue() != nullptr,
              "ret without value in non-void function");
        if (!Broken && RI->getReturnValue()) {
          Type *Actual = RI->getReturnValue()->getType();
          bool BothPtr = RetTy->isPointerTy() && Actual->isPointerTy();
          check(Actual == RetTy || BothPtr, "ret value type mismatch");
        }
      }
    }
  }
};

} // namespace

bool ompgpu::verifyFunction(const Function &F, std::string *ErrorMessage) {
  Verifier V(F);
  bool Broken = V.verify();
  if (Broken && ErrorMessage)
    *ErrorMessage = V.getError();
  return Broken;
}

bool ompgpu::verifyModule(const Module &M, std::string *ErrorMessage) {
  for (const Function *F : M.functions())
    if (verifyFunction(*F, ErrorMessage))
      return true;
  return false;
}
