//===- ir/Value.cpp - SSA value and user base classes ---------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "ir/Value.h"
#include "ir/Constant.h"
#include "ir/Instruction.h"
#include "support/raw_ostream.h"

#include <algorithm>

using namespace ompgpu;

Value::~Value() {
  assert(Users.empty() && "deleting a value that still has uses");
}

void Value::removeUser(User *U) {
  auto It = std::find(Users.begin(), Users.end(), U);
  assert(It != Users.end() && "user not found in use list");
  Users.erase(It);
}

void Value::replaceAllUsesWith(Value *New) {
  assert(New != this && "RAUW with self");
  // Copy: replaceUsesOfWith mutates our user list.
  std::vector<User *> Snapshot = Users;
  for (User *U : Snapshot)
    U->replaceUsesOfWith(this, New);
  assert(Users.empty() && "uses remained after RAUW");
}

void Value::printAsOperand(raw_ostream &OS) const {
  if (const auto *CI = dyn_cast<ConstantInt>(this)) {
    OS << CI->getValue();
    return;
  }
  if (const auto *CF = dyn_cast<ConstantFP>(this)) {
    OS << CF->getValue();
    return;
  }
  if (isa<ConstantPointerNull>(this)) {
    OS << "null";
    return;
  }
  if (isa<UndefValue>(this)) {
    OS << "undef";
    return;
  }
  if (isa<GlobalValue>(this)) {
    OS << '@' << getName();
    return;
  }
  OS << '%' << (hasName() ? getName() : std::string("<anon>"));
}

void User::setOperand(unsigned Idx, Value *V) {
  assert(Idx < getNumOperands() && "operand index out of range");
  assert(V && "cannot set a null operand");
  Value *Old = getOperand(Idx);
  if (Old == V)
    return;
  Old->removeUser(this);
  getOperandList()[Idx] = V;
  V->addUser(this);
}

void User::removeOperand(unsigned Idx) {
  assert(Idx < getNumOperands() && "operand index out of range");
  getOperand(Idx)->removeUser(this);
  getOperandList().erase(getOperandList().begin() + Idx);
}

void User::replaceUsesOfWith(Value *Old, Value *New) {
  for (unsigned I = 0, E = getNumOperands(); I != E; ++I)
    if (getOperand(I) == Old)
      setOperand(I, New);
}

void User::dropAllOperands() {
  for (unsigned I = 0, E = getNumOperands(); I != E; ++I)
    getOperand(I)->removeUser(this);
  getOperandList().clear();
}
