//===- ir/MapKind.h - Host<->device data-mapping kinds ----------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OpenMP `map` clause kinds for kernel parameters. Declared mappings come
/// from the front end (TargetRegionBuilder::setParamMapKind, the analogue of
/// an explicit `map(to: ...)` clause); inferred mappings are produced by the
/// MapInference pipeline stage (docs/data-mapping.md) from the
/// MemoryAccessSummary classification of each kernel-captured pointer. The
/// harness turns the effective kind into simulated host<->device transfers
/// (gpusim LaunchConfig::Mappings).
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_IR_MAPKIND_H
#define OMPGPU_IR_MAPKIND_H

#include <cstdint>

namespace ompgpu {

/// The four directions a mapped buffer can take across the host<->device
/// link, mirroring the OpenMP map-type modifiers.
enum class MapKind : uint8_t {
  Alloc,  ///< Device allocation only; no copy either way.
  To,     ///< Copy host -> device at kernel entry.
  From,   ///< Copy device -> host at kernel exit.
  ToFrom, ///< Both directions (the conservative default).
};

/// Stable lower-case spelling ("alloc"/"to"/"from"/"tofrom") used in
/// remarks, reports, and serialized mappings.
inline const char *mapKindName(MapKind K) {
  switch (K) {
  case MapKind::Alloc:
    return "alloc";
  case MapKind::To:
    return "to";
  case MapKind::From:
    return "from";
  case MapKind::ToFrom:
    return "tofrom";
  }
  return "tofrom";
}

/// True if \p K copies host memory to the device at kernel entry.
inline bool mapCopiesToDevice(MapKind K) {
  return K == MapKind::To || K == MapKind::ToFrom;
}

/// True if \p K copies device memory back to the host at kernel exit.
inline bool mapCopiesFromDevice(MapKind K) {
  return K == MapKind::From || K == MapKind::ToFrom;
}

} // namespace ompgpu

#endif // OMPGPU_IR_MAPKIND_H
