//===- ir/Constant.h - Constants and global variables -----------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constant values (uniqued by IRContext) and global objects. The
/// HeapToShared transformation materializes GlobalVariables in the Shared
/// address space; linkage drives the internalization optimization.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_IR_CONSTANT_H
#define OMPGPU_IR_CONSTANT_H

#include "ir/Type.h"
#include "ir/Value.h"

namespace ompgpu {

class Module;

/// Base class of all constants.
class Constant : public Value {
protected:
  Constant(ValueKind Kind, Type *Ty) : Value(Kind, Ty) {}

public:
  static bool classof(const Value *V) {
    ValueKind K = V->getValueKind();
    return K >= ValueKind::ConstantInt && K <= ValueKind::Function;
  }
};

/// An integer constant of a specific integer type.
class ConstantInt : public Constant {
  int64_t Val;

  friend class IRContext;
  ConstantInt(Type *Ty, int64_t Val) : Constant(ValueKind::ConstantInt, Ty),
                                       Val(Val) {}

public:
  int64_t getValue() const { return Val; }
  uint64_t getZExtValue() const { return static_cast<uint64_t>(Val); }
  bool isZero() const { return Val == 0; }
  bool isOne() const { return Val == 1; }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::ConstantInt;
  }
};

/// A floating point constant (float or double).
class ConstantFP : public Constant {
  double Val;

  friend class IRContext;
  ConstantFP(Type *Ty, double Val) : Constant(ValueKind::ConstantFP, Ty),
                                     Val(Val) {}

public:
  double getValue() const { return Val; }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::ConstantFP;
  }
};

/// The null pointer constant of a given address space.
class ConstantPointerNull : public Constant {
  friend class IRContext;
  explicit ConstantPointerNull(PointerType *Ty)
      : Constant(ValueKind::ConstantPointerNull, Ty) {}

public:
  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::ConstantPointerNull;
  }
};

/// An undefined value of a given type.
class UndefValue : public Constant {
  friend class IRContext;
  explicit UndefValue(Type *Ty) : Constant(ValueKind::UndefValue, Ty) {}

public:
  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::UndefValue;
  }
};

/// Symbol linkage. The paper's internalization duplicates External
/// functions into Internal clones so the inter-procedural analyses see all
/// call sites; LinkOnceODR models linkage kinds that cannot be duplicated.
enum class Linkage : uint8_t {
  External,    ///< Visible to (and callable from) other translation units.
  Internal,    ///< Local to this module.
  LinkOnceODR, ///< Mergeable duplicate; internalization must not clone it.
};

/// Common base of GlobalVariable and Function: a named module-level object.
class GlobalValue : public Constant {
  Module *Parent = nullptr;
  Linkage TheLinkage = Linkage::External;

protected:
  GlobalValue(ValueKind Kind, Type *Ty) : Constant(Kind, Ty) {}

public:
  Module *getParent() const { return Parent; }
  void setParent(Module *M) { Parent = M; }

  Linkage getLinkage() const { return TheLinkage; }
  void setLinkage(Linkage L) { TheLinkage = L; }
  bool hasInternalLinkage() const { return TheLinkage == Linkage::Internal; }
  bool hasExternalLinkage() const { return TheLinkage == Linkage::External; }

  static bool classof(const Value *V) {
    ValueKind K = V->getValueKind();
    return K == ValueKind::GlobalVariable || K == ValueKind::Function;
  }
};

/// A module-level variable in some address space. Shared-memory globals
/// created by HeapToShared live in AddrSpace::Shared and contribute to the
/// kernel's static shared memory footprint (Fig. 10 "SMem" column).
class GlobalVariable : public GlobalValue {
  Type *ValueType;
  AddrSpace AS;
  Constant *Initializer; ///< May be null (zero-initialized).
  /// Stable profile anchor (docs/pgo.md). HeapToShared transfers the anchor
  /// of the __kmpc_alloc_shared call it replaces onto the shared-memory
  /// global it creates, so `-profile-gen` runs of the optimized module can
  /// still attribute memory touches to the original allocation site.
  std::string Anchor;

public:
  GlobalVariable(IRContext &Ctx, Type *ValueType, AddrSpace AS,
                 std::string Name, Constant *Initializer = nullptr);

  Type *getValueType() const { return ValueType; }
  AddrSpace getAddressSpace() const { return AS; }
  Constant *getInitializer() const { return Initializer; }
  uint64_t getAllocSizeInBytes() const { return ValueType->getSizeInBytes(); }

  const std::string &getAnchor() const { return Anchor; }
  void setAnchor(std::string A) { Anchor = std::move(A); }
  bool hasAnchor() const { return !Anchor.empty(); }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::GlobalVariable;
  }
};

} // namespace ompgpu

#endif // OMPGPU_IR_CONSTANT_H
