//===- ir/Function.cpp - Function, attributes, kernel metadata ------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRContext.h"
#include "support/ErrorHandling.h"

using namespace ompgpu;

Function::Function(IRContext &Ctx, FunctionType *FTy, std::string Name)
    : GlobalValue(ValueKind::Function, Ctx.getPtrTy(AddrSpace::Generic)),
      Ctx(Ctx), FTy(FTy) {
  setName(std::move(Name));
  for (unsigned I = 0, E = FTy->getNumParams(); I != E; ++I)
    Args.emplace_back(new Argument(FTy->getParamType(I), this, I));
}

Function::~Function() {
  // Cross-block and cross-instruction references must be dropped before any
  // instruction is destroyed, otherwise use-list asserts fire.
  for (auto &BB : Blocks)
    for (Instruction *I : *BB)
      I->dropAllOperands();
  Blocks.clear();
}

std::vector<Argument *> Function::args() const {
  std::vector<Argument *> Result;
  Result.reserve(Args.size());
  for (const auto &A : Args)
    Result.push_back(A.get());
  return Result;
}

BasicBlock *Function::createBlock(std::string Name) {
  // Uniquify block names within the function for readable printing.
  std::string Unique = Name;
  unsigned Suffix = 0;
  auto NameTaken = [&](const std::string &N) {
    for (const auto &BB : Blocks)
      if (BB->getName() == N)
        return true;
    return false;
  };
  while (NameTaken(Unique))
    Unique = Name + "." + std::to_string(++Suffix);

  auto *BB = new BasicBlock(Ctx, std::move(Unique));
  BB->setParent(this);
  Blocks.emplace_back(BB);
  return BB;
}

void Function::eraseBlock(BasicBlock *BB) {
  assert(!BB->hasUses() && "erasing a block that still has uses");
  for (size_t I = 0, E = Blocks.size(); I != E; ++I) {
    if (Blocks[I].get() != BB)
      continue;
    for (Instruction *Inst : *BB)
      Inst->dropAllOperands();
    Blocks.erase(Blocks.begin() + I);
    return;
  }
  ompgpu_unreachable("block not found in function");
}

std::vector<BasicBlock *> Function::getBlocks() const {
  std::vector<BasicBlock *> Result;
  Result.reserve(Blocks.size());
  for (const auto &BB : Blocks)
    Result.push_back(BB.get());
  return Result;
}

bool Function::hasAddressTaken() const {
  for (User *U : users()) {
    auto *CI = dyn_cast<CallInst>(U);
    // Used by a store, GEP, phi, select, ... -> address taken.
    if (!CI)
      return true;
    // A call may use this function both as the callee and as an argument;
    // check every operand slot.
    for (unsigned I = 0, E = CI->getNumOperands(); I != E; ++I)
      if (CI->getOperand(I) == this && I != 0)
        return true;
  }
  return false;
}
