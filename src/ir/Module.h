//===- ir/Module.h - Top-level IR container ---------------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Module owns functions and global variables — one GPU translation unit.
/// The OpenMPOpt pass runs over a Module; kernels are functions marked as
/// such with a KernelEnvironment.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_IR_MODULE_H
#define OMPGPU_IR_MODULE_H

#include "ir/Function.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ompgpu {

class IRContext;

/// One translation unit of device code.
class Module {
  IRContext &Ctx;
  std::string Name;
  std::vector<std::unique_ptr<Function>> Functions;
  std::vector<std::unique_ptr<GlobalVariable>> Globals;

public:
  Module(IRContext &Ctx, std::string Name);
  ~Module();
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  IRContext &getContext() const { return Ctx; }
  const std::string &getName() const { return Name; }

  /// \name Functions
  /// @{
  /// Returns the function named \p Name, or null.
  Function *getFunction(const std::string &Name) const;
  /// Returns an existing function or creates a declaration with \p FTy.
  Function *getOrInsertFunction(const std::string &Name, FunctionType *FTy);
  /// Creates a new function; the name is made unique if taken.
  Function *createFunction(const std::string &Name, FunctionType *FTy,
                           Linkage L = Linkage::External);
  /// Removes and deletes \p F, which must have no remaining uses.
  void eraseFunction(Function *F);
  /// Snapshot of all functions (definitions and declarations).
  std::vector<Function *> functions() const;
  /// All functions marked as kernels.
  std::vector<Function *> kernels() const;
  /// @}

  /// \name Globals
  /// @{
  GlobalVariable *getGlobal(const std::string &Name) const;
  /// Creates a module-level variable; the name is made unique if taken.
  GlobalVariable *createGlobal(Type *ValueType, AddrSpace AS,
                               const std::string &Name,
                               Constant *Init = nullptr);
  std::vector<GlobalVariable *> globals() const;
  /// Total bytes of statically allocated shared memory (Fig. 10 SMem).
  uint64_t getStaticSharedMemoryBytes() const;
  /// @}

  /// Returns a name not currently used by any function or global.
  std::string makeUniqueName(const std::string &Base) const;

  /// \name Whole-module replacement (snapshot restore)
  /// @{
  /// Removes and deletes every function and global, dropping cross-function
  /// references first. Leaves the module valid but empty. Any outside
  /// pointer into the old contents dangles afterwards.
  void clear();
  /// Moves every function and global out of \p Src into this module,
  /// reparenting them; \p Src is left empty. Both modules must share one
  /// IRContext. Together with clear() and cloneModule this implements the
  /// per-pass rollback of recoverable compilation: snapshot = cloneModule,
  /// restore = clear() + takeContentsFrom(snapshot).
  void takeContentsFrom(Module &Src);
  /// @}

private:
  bool isNameTaken(const std::string &N) const;
};

} // namespace ompgpu

#endif // OMPGPU_IR_MODULE_H
