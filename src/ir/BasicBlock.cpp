//===- ir/BasicBlock.cpp - Basic block container ---------------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/IRContext.h"
#include "support/ErrorHandling.h"
#include "support/STLExtras.h"

#include <algorithm>

using namespace ompgpu;

BasicBlock::BasicBlock(IRContext &Ctx, std::string Name)
    : Value(ValueKind::BasicBlock, Ctx.getVoidTy()) {
  setName(std::move(Name));
}

BasicBlock::~BasicBlock() {
  // Destroy instructions from the back so most defs die after their users;
  // drop remaining operand references first to avoid ordering issues.
  for (auto &I : Insts)
    I->dropAllOperands();
  while (!Insts.empty())
    Insts.pop_back();
}

Instruction *BasicBlock::getTerminator() const {
  if (Insts.empty())
    return nullptr;
  Instruction *Last = Insts.back().get();
  return Last->isTerminator() ? Last : nullptr;
}

std::vector<Instruction *> BasicBlock::getInstructions() const {
  std::vector<Instruction *> Result;
  Result.reserve(Insts.size());
  for (const auto &I : Insts)
    Result.push_back(I.get());
  return Result;
}

Instruction *BasicBlock::push_back(Instruction *I) {
  assert(!I->getParent() && "instruction already belongs to a block");
  I->setParent(this);
  Insts.emplace_back(I);
  return I;
}

Instruction *BasicBlock::insertBefore(Instruction *I, Instruction *Before) {
  assert(!I->getParent() && "instruction already belongs to a block");
  size_t Idx = indexOf(Before);
  I->setParent(this);
  Insts.emplace(Insts.begin() + Idx, I);
  return I;
}

std::unique_ptr<Instruction> BasicBlock::remove(Instruction *I) {
  size_t Idx = indexOf(I);
  std::unique_ptr<Instruction> Owned = std::move(Insts[Idx]);
  Insts.erase(Insts.begin() + Idx);
  Owned->setParent(nullptr);
  return Owned;
}

BasicBlock *BasicBlock::splitBefore(Instruction *I,
                                    const std::string &Name) {
  assert(I->getParent() == this && "split point not in this block");
  assert(getTerminator() && "splitting an unterminated block");
  Function *F = getParent();
  BasicBlock *Tail = F->createBlock(Name);

  // Move I and everything after it (terminator included).
  std::vector<Instruction *> ToMove;
  bool Found = false;
  for (Instruction *Cur : *this) {
    if (Cur == I)
      Found = true;
    if (Found)
      ToMove.push_back(Cur);
  }
  for (Instruction *Cur : ToMove) {
    std::unique_ptr<Instruction> Owned = remove(Cur);
    Tail->push_back(Owned.release());
  }

  // Successor phis referred to this block; they must now name the tail.
  if (auto *Term = dyn_cast_or_null<BrInst>(Tail->getTerminator()))
    for (unsigned S = 0, E = Term->getNumSuccessors(); S != E; ++S)
      for (PhiInst *Phi : Term->getSuccessor(S)->phis())
        for (unsigned Idx = 0, PE = Phi->getNumIncoming(); Idx != PE; ++Idx)
          if (Phi->getIncomingBlock(Idx) == this)
            Phi->setOperand(2 * Idx + 1, Tail);

  IRContext &Ctx = F->getContext();
  push_back(new BrInst(Ctx, Tail));
  return Tail;
}

size_t BasicBlock::indexOf(const Instruction *I) const {
  for (size_t Idx = 0, E = Insts.size(); Idx != E; ++Idx)
    if (Insts[Idx].get() == I)
      return Idx;
  ompgpu_unreachable("instruction not found in block");
}

std::vector<PhiInst *> BasicBlock::phis() const {
  std::vector<PhiInst *> Result;
  for (const auto &I : Insts) {
    auto *Phi = dyn_cast<PhiInst>(I.get());
    if (!Phi)
      break;
    Result.push_back(Phi);
  }
  return Result;
}

std::vector<BasicBlock *> BasicBlock::predecessors() const {
  std::vector<BasicBlock *> Preds;
  for (User *U : users()) {
    auto *Br = dyn_cast<BrInst>(U);
    if (!Br || !Br->getParent())
      continue;
    // A conditional branch may reference this block twice; deduplicate.
    if (!is_contained(Preds, Br->getParent()))
      Preds.push_back(Br->getParent());
  }
  return Preds;
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  std::vector<BasicBlock *> Succs;
  if (auto *Br = dyn_cast_or_null<BrInst>(getTerminator()))
    for (unsigned I = 0, E = Br->getNumSuccessors(); I != E; ++I)
      Succs.push_back(Br->getSuccessor(I));
  return Succs;
}

bool BasicBlock::hasPredecessor(const BasicBlock *Pred) const {
  for (User *U : users())
    if (auto *Br = dyn_cast<BrInst>(U))
      if (Br->getParent() == Pred)
        return true;
  return false;
}
