//===- ir/Type.h - SSA IR type system ---------------------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type system of the ompgpu SSA IR. Types are uniqued and owned by an
/// IRContext. Pointers are opaque (as in modern LLVM) and carry only an
/// address space; memory instructions carry their accessed element type.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_IR_TYPE_H
#define OMPGPU_IR_TYPE_H

#include "support/Casting.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ompgpu {

class IRContext;
class raw_ostream;

/// GPU address spaces, mirroring the NVPTX numbering the paper's
/// implementation uses.
enum class AddrSpace : unsigned {
  Generic = 0, ///< Generic pointers; resolved dynamically by the simulator.
  Global = 1,  ///< Device global memory, visible to all teams.
  Shared = 3,  ///< Per-team shared memory (CUDA __shared__).
  Local = 5,   ///< Per-thread local memory (stack).
};

/// Base class of all IR types. Uniqued per IRContext; compare by pointer.
class Type {
public:
  enum class Kind : uint8_t {
    Void,
    Int1,
    Int8,
    Int32,
    Int64,
    Float,
    Double,
    Pointer,
    Array,
    Struct,
    Function,
  };

private:
  Kind TheKind;
  friend class IRContext;

protected:
  explicit Type(Kind K) : TheKind(K) {}

public:
  Type(const Type &) = delete;
  Type &operator=(const Type &) = delete;
  virtual ~Type() = default;

  Kind getKind() const { return TheKind; }

  bool isVoidTy() const { return TheKind == Kind::Void; }
  bool isInt1Ty() const { return TheKind == Kind::Int1; }
  bool isIntegerTy() const {
    return TheKind == Kind::Int1 || TheKind == Kind::Int8 ||
           TheKind == Kind::Int32 || TheKind == Kind::Int64;
  }
  bool isFloatingPointTy() const {
    return TheKind == Kind::Float || TheKind == Kind::Double;
  }
  bool isPointerTy() const { return TheKind == Kind::Pointer; }
  bool isArrayTy() const { return TheKind == Kind::Array; }
  bool isStructTy() const { return TheKind == Kind::Struct; }
  bool isFunctionTy() const { return TheKind == Kind::Function; }
  /// True for types a Value may have (i.e. first-class types).
  bool isFirstClassTy() const {
    return !isVoidTy() && !isFunctionTy();
  }

  /// Returns the integer bit width; only valid on integer types.
  unsigned getIntegerBitWidth() const;

  /// Returns the store size in bytes (0 for void/function types).
  uint64_t getSizeInBytes() const;

  /// Returns the ABI alignment in bytes.
  uint64_t getAlignment() const;

  /// Prints the type in LLVM-like syntax.
  void print(raw_ostream &OS) const;
  std::string getAsString() const;
};

/// An opaque pointer type qualified by an address space.
class PointerType : public Type {
  AddrSpace AS;

  friend class IRContext;
  explicit PointerType(AddrSpace AS) : Type(Kind::Pointer), AS(AS) {}

public:
  AddrSpace getAddressSpace() const { return AS; }

  static bool classof(const Type *T) { return T->getKind() == Kind::Pointer; }
};

/// A statically sized array type.
class ArrayType : public Type {
  Type *ElementType;
  uint64_t NumElements;

  friend class IRContext;
  ArrayType(Type *ElementType, uint64_t NumElements)
      : Type(Kind::Array), ElementType(ElementType),
        NumElements(NumElements) {}

public:
  Type *getElementType() const { return ElementType; }
  uint64_t getNumElements() const { return NumElements; }

  static bool classof(const Type *T) { return T->getKind() == Kind::Array; }
};

/// A literal struct type with naturally aligned, non-packed layout.
class StructType : public Type {
  std::vector<Type *> Elements;

  friend class IRContext;
  explicit StructType(std::vector<Type *> Elements)
      : Type(Kind::Struct), Elements(std::move(Elements)) {}

public:
  const std::vector<Type *> &elements() const { return Elements; }
  unsigned getNumElements() const { return Elements.size(); }
  Type *getElementType(unsigned Idx) const { return Elements[Idx]; }

  /// Returns the byte offset of field \p Idx under natural alignment.
  uint64_t getElementOffset(unsigned Idx) const;

  static bool classof(const Type *T) { return T->getKind() == Kind::Struct; }
};

/// A function type: return type plus parameter types (no varargs).
class FunctionType : public Type {
  Type *ReturnType;
  std::vector<Type *> ParamTypes;

  friend class IRContext;
  FunctionType(Type *ReturnType, std::vector<Type *> ParamTypes)
      : Type(Kind::Function), ReturnType(ReturnType),
        ParamTypes(std::move(ParamTypes)) {}

public:
  Type *getReturnType() const { return ReturnType; }
  const std::vector<Type *> &params() const { return ParamTypes; }
  unsigned getNumParams() const { return ParamTypes.size(); }
  Type *getParamType(unsigned Idx) const { return ParamTypes[Idx]; }

  static bool classof(const Type *T) { return T->getKind() == Kind::Function; }
};

} // namespace ompgpu

#endif // OMPGPU_IR_TYPE_H
