//===- ir/Verifier.h - IR structural validity checks ------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural IR verification run after the front-end and after every
/// transformation pass in the test pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_IR_VERIFIER_H
#define OMPGPU_IR_VERIFIER_H

#include <string>

namespace ompgpu {

class Function;
class Module;

/// Checks structural validity of \p F. Returns true and fills
/// \p ErrorMessage on the first violation found; returns false if valid.
bool verifyFunction(const Function &F, std::string *ErrorMessage = nullptr);

/// Checks every function in \p M. Returns true on the first violation.
bool verifyModule(const Module &M, std::string *ErrorMessage = nullptr);

} // namespace ompgpu

#endif // OMPGPU_IR_VERIFIER_H
