//===- ir/Type.cpp - SSA IR type system -----------------------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "ir/Type.h"
#include "support/ErrorHandling.h"
#include "support/raw_ostream.h"

using namespace ompgpu;

unsigned Type::getIntegerBitWidth() const {
  switch (TheKind) {
  case Kind::Int1:
    return 1;
  case Kind::Int8:
    return 8;
  case Kind::Int32:
    return 32;
  case Kind::Int64:
    return 64;
  default:
    ompgpu_unreachable("not an integer type");
  }
}

uint64_t Type::getSizeInBytes() const {
  switch (TheKind) {
  case Kind::Void:
  case Kind::Function:
    return 0;
  case Kind::Int1:
  case Kind::Int8:
    return 1;
  case Kind::Int32:
  case Kind::Float:
    return 4;
  case Kind::Int64:
  case Kind::Double:
  case Kind::Pointer:
    return 8;
  case Kind::Array: {
    const auto *AT = cast<ArrayType>(this);
    return AT->getElementType()->getSizeInBytes() * AT->getNumElements();
  }
  case Kind::Struct: {
    const auto *ST = cast<StructType>(this);
    if (ST->getNumElements() == 0)
      return 0;
    uint64_t End = ST->getElementOffset(ST->getNumElements() - 1) +
                   ST->getElementType(ST->getNumElements() - 1)
                       ->getSizeInBytes();
    uint64_t Align = ST->getAlignment();
    return (End + Align - 1) / Align * Align;
  }
  }
  ompgpu_unreachable("covered switch");
}

uint64_t Type::getAlignment() const {
  switch (TheKind) {
  case Kind::Void:
  case Kind::Function:
    return 1;
  case Kind::Array:
    return cast<ArrayType>(this)->getElementType()->getAlignment();
  case Kind::Struct: {
    uint64_t Align = 1;
    for (Type *El : cast<StructType>(this)->elements())
      if (El->getAlignment() > Align)
        Align = El->getAlignment();
    return Align;
  }
  default:
    return getSizeInBytes();
  }
}

uint64_t StructType::getElementOffset(unsigned Idx) const {
  assert(Idx < Elements.size() && "field index out of range");
  uint64_t Offset = 0;
  for (unsigned I = 0; I <= Idx; ++I) {
    uint64_t Align = Elements[I]->getAlignment();
    Offset = (Offset + Align - 1) / Align * Align;
    if (I == Idx)
      return Offset;
    Offset += Elements[I]->getSizeInBytes();
  }
  return Offset;
}

void Type::print(raw_ostream &OS) const {
  switch (TheKind) {
  case Kind::Void:
    OS << "void";
    return;
  case Kind::Int1:
    OS << "i1";
    return;
  case Kind::Int8:
    OS << "i8";
    return;
  case Kind::Int32:
    OS << "i32";
    return;
  case Kind::Int64:
    OS << "i64";
    return;
  case Kind::Float:
    OS << "float";
    return;
  case Kind::Double:
    OS << "double";
    return;
  case Kind::Pointer: {
    const auto *PT = cast<PointerType>(this);
    OS << "ptr";
    if (PT->getAddressSpace() != AddrSpace::Generic)
      OS << " addrspace(" << (unsigned)PT->getAddressSpace() << ")";
    return;
  }
  case Kind::Array: {
    const auto *AT = cast<ArrayType>(this);
    OS << "[" << AT->getNumElements() << " x ";
    AT->getElementType()->print(OS);
    OS << "]";
    return;
  }
  case Kind::Struct: {
    const auto *ST = cast<StructType>(this);
    OS << "{";
    bool First = true;
    for (Type *El : ST->elements()) {
      if (!First)
        OS << ", ";
      First = false;
      El->print(OS);
    }
    OS << "}";
    return;
  }
  case Kind::Function: {
    const auto *FT = cast<FunctionType>(this);
    FT->getReturnType()->print(OS);
    OS << " (";
    bool First = true;
    for (Type *P : FT->params()) {
      if (!First)
        OS << ", ";
      First = false;
      P->print(OS);
    }
    OS << ")";
    return;
  }
  }
  ompgpu_unreachable("covered switch");
}

std::string Type::getAsString() const {
  std::string S;
  raw_string_ostream OS(S);
  print(OS);
  return S;
}
