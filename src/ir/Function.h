//===- ir/Function.h - Function, attributes, kernel metadata ----*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function definitions and declarations, function attributes, OpenMP 5.1
/// assumptions, and the per-kernel execution environment the OpenMPOpt pass
/// reads and rewrites (execution mode, state machine selection, launch
/// bounds).
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_IR_FUNCTION_H
#define OMPGPU_IR_FUNCTION_H

#include "ir/BasicBlock.h"
#include "ir/Constant.h"
#include "ir/MapKind.h"

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace ompgpu {

class IRContext;
class Module;

/// Boolean function attributes, a subset of LLVM's.
enum class FnAttr : uint8_t {
  ReadNone,   ///< Accesses no memory (pure).
  ReadOnly,   ///< Does not write memory.
  NoSync,     ///< Performs no synchronization (no barriers/atomics).
  NoFree,     ///< Does not free memory.
  WillReturn, ///< Always returns (no infinite loops/aborts).
  Convergent, ///< May not be moved across control flow (barriers).
  NoInline,   ///< Must not be inlined.
};

/// OpenMP kernel execution modes (Sec. II / IV-B of the paper).
enum class ExecMode : uint8_t {
  Generic, ///< Main thread executes; workers wait in a state machine.
  SPMD,    ///< All threads execute from kernel launch.
};

/// Host<->device mapping of one kernel parameter (docs/data-mapping.md).
/// `Declared` is the front-end map clause (explicit only when the workload
/// author wrote one via TargetRegionBuilder::setParamMapKind); `Inferred` is
/// filled in by the MapInference pipeline stage from the parameter's
/// MemoryAccessSummary classification. An explicit declaration is a user
/// contract and is never overridden by inference.
struct ParamMapping {
  MapKind Declared = MapKind::ToFrom;
  bool DeclaredExplicit = false;
  MapKind Inferred = MapKind::ToFrom;
  bool InferenceRan = false;

  /// The mapping the harness should honor: an explicit clause wins, then
  /// the inferred minimal kind, then the conservative tofrom default.
  MapKind effective() const {
    if (DeclaredExplicit)
      return Declared;
    return InferenceRan ? Inferred : Declared;
  }
};

/// Per-kernel configuration, mirroring the device runtime's kernel
/// environment. OpenMPOpt's SPMDzation flips Mode; the custom state machine
/// rewrite clears UseGenericStateMachine; launch bounds feed runtime call
/// folding (Sec. IV-C "Launch Parameters").
struct KernelEnvironment {
  ExecMode Mode = ExecMode::Generic;
  bool UseGenericStateMachine = true;
  bool MayUseNestedParallelism = true;
  /// Threads per team from a thread_limit/num_threads clause; -1 unknown.
  int MaxThreads = -1;
  /// Teams in the league from a num_teams clause; -1 unknown.
  int NumTeams = -1;
  /// Data mapping of each kernel parameter, indexed by argument number.
  /// Empty (or short) until a clause is declared or MapInference runs;
  /// missing entries mean the conservative tofrom default. Copied wholesale
  /// by cloning, so mappings survive recovery snapshots.
  std::vector<ParamMapping> ParamMappings;
};

/// Returns kernel \p K's mapping of parameter \p Idx, defaulting to an
/// implicit tofrom when none was declared or inferred.
inline ParamMapping kernelParamMapping(const KernelEnvironment &Env,
                                       unsigned Idx) {
  if (Idx < Env.ParamMappings.size())
    return Env.ParamMappings[Idx];
  return ParamMapping();
}

/// Mutable access to kernel parameter \p Idx's mapping, growing the table
/// (with implicit tofrom defaults) as needed.
inline ParamMapping &kernelParamMappingRef(KernelEnvironment &Env,
                                           unsigned Idx) {
  if (Idx >= Env.ParamMappings.size())
    Env.ParamMappings.resize(Idx + 1);
  return Env.ParamMappings[Idx];
}

/// A function definition (with blocks) or declaration (without).
class Function : public GlobalValue {
  IRContext &Ctx;
  FunctionType *FTy;
  std::vector<std::unique_ptr<Argument>> Args;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  std::set<FnAttr> Attrs;
  /// OpenMP 5.1 assumptions attached via `#pragma omp assumes`, e.g.
  /// "ext_spmd_amenable" (Sec. IV-D).
  std::set<std::string> Assumptions;
  bool IsKernel = false;
  KernelEnvironment KernelEnv;

public:
  Function(IRContext &Ctx, FunctionType *FTy, std::string Name);
  ~Function() override;

  IRContext &getContext() const { return Ctx; }
  FunctionType *getFunctionType() const { return FTy; }
  Type *getReturnType() const { return FTy->getReturnType(); }

  /// \name Arguments
  /// @{
  unsigned arg_size() const { return Args.size(); }
  Argument *getArg(unsigned I) const { return Args[I].get(); }
  std::vector<Argument *> args() const;
  /// @}

  /// \name Blocks
  /// @{
  bool isDeclaration() const { return Blocks.empty(); }
  bool empty() const { return Blocks.empty(); }
  size_t size() const { return Blocks.size(); }
  BasicBlock *getEntryBlock() const {
    assert(!Blocks.empty() && "declaration has no entry block");
    return Blocks.front().get();
  }
  /// Creates and appends a new block named \p Name.
  BasicBlock *createBlock(std::string Name);
  /// Detaches and deletes \p BB, which must have no remaining uses.
  void eraseBlock(BasicBlock *BB);
  /// Returns a snapshot of the block list, entry first.
  std::vector<BasicBlock *> getBlocks() const;

  class block_iterator {
    const std::unique_ptr<BasicBlock> *It;

  public:
    explicit block_iterator(const std::unique_ptr<BasicBlock> *It) : It(It) {}
    BasicBlock *operator*() const { return It->get(); }
    block_iterator &operator++() {
      ++It;
      return *this;
    }
    bool operator!=(const block_iterator &O) const { return It != O.It; }
  };
  block_iterator begin() const { return block_iterator(Blocks.data()); }
  block_iterator end() const {
    return block_iterator(Blocks.data() + Blocks.size());
  }
  /// @}

  /// \name Attributes and assumptions
  /// @{
  bool hasFnAttr(FnAttr A) const { return Attrs.count(A); }
  void addFnAttr(FnAttr A) { Attrs.insert(A); }
  void removeFnAttr(FnAttr A) { Attrs.erase(A); }
  const std::set<FnAttr> &attrs() const { return Attrs; }

  bool hasAssumption(const std::string &A) const {
    return Assumptions.count(A);
  }
  void addAssumption(std::string A) { Assumptions.insert(std::move(A)); }
  const std::set<std::string> &assumptions() const { return Assumptions; }

  /// True if the function's address is taken anywhere (i.e. it has a use
  /// that is not the callee operand of a direct call).
  bool hasAddressTaken() const;
  /// @}

  /// \name Kernel metadata
  /// @{
  bool isKernel() const { return IsKernel; }
  void setKernel(bool V = true) { IsKernel = V; }
  KernelEnvironment &getKernelEnvironment() { return KernelEnv; }
  const KernelEnvironment &getKernelEnvironment() const { return KernelEnv; }
  /// @}

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Function;
  }
};

} // namespace ompgpu

#endif // OMPGPU_IR_FUNCTION_H
