//===- ir/IRContext.h - Type and constant uniquing context ------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRContext owns and uniques all types and constants of one IR universe,
/// playing the role of llvm::LLVMContext.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_IR_IRCONTEXT_H
#define OMPGPU_IR_IRCONTEXT_H

#include "ir/Type.h"

#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace ompgpu {

class ConstantInt;
class ConstantFP;
class ConstantPointerNull;
class UndefValue;

/// Owns uniqued types and constants. Every Module is created against a
/// context; IR entities from different contexts must not be mixed.
///
/// Interning is thread-safe: every uniquing getter takes the context lock,
/// so concurrent compiles (the compile service's worker pool) may share
/// one context or intern into separate contexts without data races.
/// Mutating the *modules* of one context from two threads is still the
/// caller's problem — the service gives each in-flight compile its own
/// context and module (docs/compile-service.md).
class IRContext {
public:
  IRContext();
  ~IRContext();
  IRContext(const IRContext &) = delete;
  IRContext &operator=(const IRContext &) = delete;

  /// \name Primitive types
  /// @{
  Type *getVoidTy() { return &VoidTy; }
  Type *getInt1Ty() { return &Int1Ty; }
  Type *getInt8Ty() { return &Int8Ty; }
  Type *getInt32Ty() { return &Int32Ty; }
  Type *getInt64Ty() { return &Int64Ty; }
  Type *getFloatTy() { return &FloatTy; }
  Type *getDoubleTy() { return &DoubleTy; }
  /// @}

  /// Returns the uniqued pointer type for \p AS.
  PointerType *getPtrTy(AddrSpace AS = AddrSpace::Generic);
  /// Returns the uniqued array type.
  ArrayType *getArrayTy(Type *Element, uint64_t NumElements);
  /// Returns the uniqued literal struct type.
  StructType *getStructTy(std::vector<Type *> Elements);
  /// Returns the uniqued function type.
  FunctionType *getFunctionTy(Type *Ret, std::vector<Type *> Params);

  /// \name Constants
  /// @{
  ConstantInt *getInt1(bool V);
  ConstantInt *getInt8(int64_t V);
  ConstantInt *getInt32(int64_t V);
  ConstantInt *getInt64(int64_t V);
  ConstantInt *getConstantInt(Type *Ty, int64_t V);
  ConstantFP *getConstantFP(Type *Ty, double V);
  ConstantFP *getFloat(double V);
  ConstantFP *getDouble(double V);
  ConstantPointerNull *getNullPtr(AddrSpace AS = AddrSpace::Generic);
  UndefValue *getUndef(Type *Ty);
  /// @}

private:
  /// Guards every interning map below. Recursive because uniquing
  /// constants re-enters type uniquing (getNullPtr -> getPtrTy).
  mutable std::recursive_mutex Mu;

  Type VoidTy{Type::Kind::Void};
  Type Int1Ty{Type::Kind::Int1};
  Type Int8Ty{Type::Kind::Int8};
  Type Int32Ty{Type::Kind::Int32};
  Type Int64Ty{Type::Kind::Int64};
  Type FloatTy{Type::Kind::Float};
  Type DoubleTy{Type::Kind::Double};

  std::map<unsigned, std::unique_ptr<PointerType>> PointerTypes;
  std::vector<std::unique_ptr<Type>> OwnedTypes;
  std::map<std::pair<Type *, int64_t>, std::unique_ptr<ConstantInt>> IntConsts;
  std::map<std::pair<Type *, double>, std::unique_ptr<ConstantFP>> FPConsts;
  std::map<unsigned, std::unique_ptr<ConstantPointerNull>> NullPtrs;
  std::map<Type *, std::unique_ptr<UndefValue>> Undefs;
};

} // namespace ompgpu

#endif // OMPGPU_IR_IRCONTEXT_H
