//===- ir/BasicBlock.h - Basic block container -------------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BasicBlock owns an ordered list of instructions ending in a terminator.
/// Blocks are Values (usable as branch/phi operands) so CFG rewrites go
/// through the regular use-list machinery.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_IR_BASICBLOCK_H
#define OMPGPU_IR_BASICBLOCK_H

#include "ir/Instruction.h"
#include "ir/Value.h"

#include <memory>
#include <vector>

namespace ompgpu {

class Function;
class IRContext;

/// A maximal straight-line sequence of instructions with a terminator.
class BasicBlock : public Value {
  Function *Parent = nullptr;
  std::vector<std::unique_ptr<Instruction>> Insts;

public:
  BasicBlock(IRContext &Ctx, std::string Name);
  ~BasicBlock() override;

  Function *getParent() const { return Parent; }
  void setParent(Function *F) { Parent = F; }

  /// \name Instruction list access
  /// @{
  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }
  Instruction *front() const { return Insts.front().get(); }
  Instruction *back() const { return Insts.back().get(); }

  /// Returns the terminator, or null if the block is not yet terminated.
  Instruction *getTerminator() const;

  /// Returns a snapshot vector of the instructions; safe to iterate while
  /// mutating the block.
  std::vector<Instruction *> getInstructions() const;

  /// Lightweight iteration over raw instruction pointers.
  class iterator {
    const std::unique_ptr<Instruction> *It;

  public:
    explicit iterator(const std::unique_ptr<Instruction> *It) : It(It) {}
    Instruction *operator*() const { return It->get(); }
    iterator &operator++() {
      ++It;
      return *this;
    }
    bool operator!=(const iterator &O) const { return It != O.It; }
    bool operator==(const iterator &O) const { return It == O.It; }
  };
  iterator begin() const { return iterator(Insts.data()); }
  iterator end() const { return iterator(Insts.data() + Insts.size()); }
  /// @}

  /// \name Mutation
  /// @{
  /// Appends \p I to the end of the block, taking ownership.
  Instruction *push_back(Instruction *I);
  /// Inserts \p I immediately before \p Before (which must be in this
  /// block), taking ownership.
  Instruction *insertBefore(Instruction *I, Instruction *Before);
  /// Detaches \p I (must be in this block) and returns ownership.
  std::unique_ptr<Instruction> remove(Instruction *I);
  /// Splits this block before \p I: all instructions from \p I onwards
  /// (including the terminator) move to a new block named \p Name, this
  /// block gets an unconditional branch to it, and phi nodes in the old
  /// successors are retargeted. Returns the new block.
  BasicBlock *splitBefore(Instruction *I, const std::string &Name);
  /// Returns the index of \p I within this block; asserts if absent.
  size_t indexOf(const Instruction *I) const;
  /// @}

  /// Returns the phi nodes leading this block.
  std::vector<PhiInst *> phis() const;

  /// Computes the predecessor blocks by scanning this block's users.
  std::vector<BasicBlock *> predecessors() const;
  /// Returns the successors of the terminator (empty if none).
  std::vector<BasicBlock *> successors() const;
  /// True if \p Pred is a predecessor of this block.
  bool hasPredecessor(const BasicBlock *Pred) const;

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::BasicBlock;
  }
};

} // namespace ompgpu

#endif // OMPGPU_IR_BASICBLOCK_H
