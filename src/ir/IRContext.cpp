//===- ir/IRContext.cpp - Type and constant uniquing context --------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRContext.h"
#include "ir/Constant.h"
#include "support/ErrorHandling.h"

using namespace ompgpu;

IRContext::IRContext() = default;
IRContext::~IRContext() = default;

PointerType *IRContext::getPtrTy(AddrSpace AS) {
  std::lock_guard<std::recursive_mutex> Lock(Mu);

  auto &Slot = PointerTypes[(unsigned)AS];
  if (!Slot)
    Slot.reset(new PointerType(AS));
  return Slot.get();
}

ArrayType *IRContext::getArrayTy(Type *Element, uint64_t NumElements) {
  std::lock_guard<std::recursive_mutex> Lock(Mu);

  for (auto &T : OwnedTypes)
    if (auto *AT = dyn_cast<ArrayType>(T.get()))
      if (AT->getElementType() == Element &&
          AT->getNumElements() == NumElements)
        return AT;
  auto *AT = new ArrayType(Element, NumElements);
  OwnedTypes.emplace_back(AT);
  return AT;
}

StructType *IRContext::getStructTy(std::vector<Type *> Elements) {
  std::lock_guard<std::recursive_mutex> Lock(Mu);

  for (auto &T : OwnedTypes)
    if (auto *ST = dyn_cast<StructType>(T.get()))
      if (ST->elements() == Elements)
        return ST;
  auto *ST = new StructType(std::move(Elements));
  OwnedTypes.emplace_back(ST);
  return ST;
}

FunctionType *IRContext::getFunctionTy(Type *Ret, std::vector<Type *> Params) {
  std::lock_guard<std::recursive_mutex> Lock(Mu);

  for (auto &T : OwnedTypes)
    if (auto *FT = dyn_cast<FunctionType>(T.get()))
      if (FT->getReturnType() == Ret && FT->params() == Params)
        return FT;
  auto *FT = new FunctionType(Ret, std::move(Params));
  OwnedTypes.emplace_back(FT);
  return FT;
}

ConstantInt *IRContext::getConstantInt(Type *Ty, int64_t V) {
  std::lock_guard<std::recursive_mutex> Lock(Mu);
  assert(Ty->isIntegerTy() && "integer constant requires an integer type");
  // Normalize to the type's width so equal constants unique properly.
  switch (Ty->getKind()) {
  case Type::Kind::Int1:
    V = V & 1;
    break;
  case Type::Kind::Int8:
    V = static_cast<int8_t>(V);
    break;
  case Type::Kind::Int32:
    V = static_cast<int32_t>(V);
    break;
  default:
    break;
  }
  auto &Slot = IntConsts[{Ty, V}];
  if (!Slot)
    Slot.reset(new ConstantInt(Ty, V));
  return Slot.get();
}

ConstantInt *IRContext::getInt1(bool V) {
  return getConstantInt(getInt1Ty(), V);
}
ConstantInt *IRContext::getInt8(int64_t V) {
  return getConstantInt(getInt8Ty(), V);
}
ConstantInt *IRContext::getInt32(int64_t V) {
  return getConstantInt(getInt32Ty(), V);
}
ConstantInt *IRContext::getInt64(int64_t V) {
  return getConstantInt(getInt64Ty(), V);
}

ConstantFP *IRContext::getConstantFP(Type *Ty, double V) {
  std::lock_guard<std::recursive_mutex> Lock(Mu);
  assert(Ty->isFloatingPointTy() && "fp constant requires a float type");
  if (Ty->getKind() == Type::Kind::Float)
    V = static_cast<float>(V);
  auto &Slot = FPConsts[{Ty, V}];
  if (!Slot)
    Slot.reset(new ConstantFP(Ty, V));
  return Slot.get();
}

ConstantFP *IRContext::getFloat(double V) {
  return getConstantFP(getFloatTy(), V);
}
ConstantFP *IRContext::getDouble(double V) {
  return getConstantFP(getDoubleTy(), V);
}

ConstantPointerNull *IRContext::getNullPtr(AddrSpace AS) {
  std::lock_guard<std::recursive_mutex> Lock(Mu);

  auto &Slot = NullPtrs[(unsigned)AS];
  if (!Slot)
    Slot.reset(new ConstantPointerNull(getPtrTy(AS)));
  return Slot.get();
}

UndefValue *IRContext::getUndef(Type *Ty) {
  std::lock_guard<std::recursive_mutex> Lock(Mu);

  auto &Slot = Undefs[Ty];
  if (!Slot)
    Slot.reset(new UndefValue(Ty));
  return Slot.get();
}
