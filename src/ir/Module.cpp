//===- ir/Module.cpp - Top-level IR container ------------------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"
#include "ir/IRContext.h"
#include "support/ErrorHandling.h"

using namespace ompgpu;

Module::Module(IRContext &Ctx, std::string Name)
    : Ctx(Ctx), Name(std::move(Name)) {}

Module::~Module() { clear(); }

void Module::clear() {
  // Cross-function references (calls, address-taken uses, global accesses)
  // must be dropped before any function or global is destroyed.
  for (auto &F : Functions)
    for (BasicBlock *BB : *F)
      for (Instruction *I : *BB)
        I->dropAllOperands();
  Functions.clear();
  Globals.clear();
}

void Module::takeContentsFrom(Module &Src) {
  assert(&Src.Ctx == &Ctx && "modules must share one IRContext");
  for (auto &F : Src.Functions) {
    F->setParent(this);
    Functions.push_back(std::move(F));
  }
  for (auto &G : Src.Globals) {
    G->setParent(this);
    Globals.push_back(std::move(G));
  }
  Src.Functions.clear();
  Src.Globals.clear();
}

GlobalVariable::GlobalVariable(IRContext &Ctx, Type *ValueType, AddrSpace AS,
                               std::string Name, Constant *Initializer)
    : GlobalValue(ValueKind::GlobalVariable, Ctx.getPtrTy(AS)),
      ValueType(ValueType), AS(AS), Initializer(Initializer) {
  setName(std::move(Name));
}

Function *Module::getFunction(const std::string &FnName) const {
  for (const auto &F : Functions)
    if (F->getName() == FnName)
      return F.get();
  return nullptr;
}

Function *Module::getOrInsertFunction(const std::string &FnName,
                                      FunctionType *FTy) {
  if (Function *F = getFunction(FnName)) {
    assert(F->getFunctionType() == FTy &&
           "getOrInsertFunction type mismatch");
    return F;
  }
  auto *F = new Function(Ctx, FTy, FnName);
  F->setParent(this);
  Functions.emplace_back(F);
  return F;
}

Function *Module::createFunction(const std::string &FnName, FunctionType *FTy,
                                 Linkage L) {
  auto *F = new Function(Ctx, FTy, makeUniqueName(FnName));
  F->setParent(this);
  F->setLinkage(L);
  Functions.emplace_back(F);
  return F;
}

void Module::eraseFunction(Function *F) {
  assert(!F->hasUses() && "erasing a function that still has uses");
  for (size_t I = 0, E = Functions.size(); I != E; ++I) {
    if (Functions[I].get() != F)
      continue;
    Functions.erase(Functions.begin() + I);
    return;
  }
  ompgpu_unreachable("function not found in module");
}

std::vector<Function *> Module::functions() const {
  std::vector<Function *> Result;
  Result.reserve(Functions.size());
  for (const auto &F : Functions)
    Result.push_back(F.get());
  return Result;
}

std::vector<Function *> Module::kernels() const {
  std::vector<Function *> Result;
  for (const auto &F : Functions)
    if (F->isKernel())
      Result.push_back(F.get());
  return Result;
}

GlobalVariable *Module::getGlobal(const std::string &GName) const {
  for (const auto &G : Globals)
    if (G->getName() == GName)
      return G.get();
  return nullptr;
}

GlobalVariable *Module::createGlobal(Type *ValueType, AddrSpace AS,
                                     const std::string &GName,
                                     Constant *Init) {
  auto *G = new GlobalVariable(Ctx, ValueType, AS, makeUniqueName(GName),
                               Init);
  G->setParent(this);
  Globals.emplace_back(G);
  return G;
}

std::vector<GlobalVariable *> Module::globals() const {
  std::vector<GlobalVariable *> Result;
  Result.reserve(Globals.size());
  for (const auto &G : Globals)
    Result.push_back(G.get());
  return Result;
}

uint64_t Module::getStaticSharedMemoryBytes() const {
  uint64_t Bytes = 0;
  for (const auto &G : Globals)
    if (G->getAddressSpace() == AddrSpace::Shared)
      Bytes += G->getAllocSizeInBytes();
  return Bytes;
}

bool Module::isNameTaken(const std::string &N) const {
  return getFunction(N) || getGlobal(N);
}

std::string Module::makeUniqueName(const std::string &Base) const {
  if (!isNameTaken(Base))
    return Base;
  unsigned Suffix = 0;
  std::string Candidate;
  do {
    Candidate = Base + "." + std::to_string(++Suffix);
  } while (isNameTaken(Candidate));
  return Candidate;
}
