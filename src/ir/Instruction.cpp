//===- ir/Instruction.cpp - Instruction class hierarchy -------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "ir/Instruction.h"
#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/IRContext.h"
#include "support/ErrorHandling.h"

using namespace ompgpu;

const char *Instruction::getOpcodeName() const {
  switch (getOpcode()) {
  case ValueKind::Alloca:
    return "alloca";
  case ValueKind::Load:
    return "load";
  case ValueKind::Store:
    return "store";
  case ValueKind::GEP:
    return "getelementptr";
  case ValueKind::AtomicRMW:
    return "atomicrmw";
  case ValueKind::BinOp:
    return "binop";
  case ValueKind::ICmp:
    return "icmp";
  case ValueKind::FCmp:
    return "fcmp";
  case ValueKind::Cast:
    return "cast";
  case ValueKind::Select:
    return "select";
  case ValueKind::Math:
    return "math";
  case ValueKind::Phi:
    return "phi";
  case ValueKind::Call:
    return "call";
  case ValueKind::Ret:
    return "ret";
  case ValueKind::Br:
    return "br";
  case ValueKind::Unreachable:
    return "unreachable";
  default:
    ompgpu_unreachable("not an instruction kind");
  }
}

Function *Instruction::getFunction() const {
  return Parent ? Parent->getParent() : nullptr;
}

bool Instruction::mayWriteToMemory() const {
  switch (getOpcode()) {
  case ValueKind::Store:
  case ValueKind::AtomicRMW:
    return true;
  case ValueKind::Call: {
    const auto *CI = cast<CallInst>(this);
    const Function *Callee = CI->getCalledFunction();
    if (!Callee)
      return true;
    return !Callee->hasFnAttr(FnAttr::ReadNone) &&
           !Callee->hasFnAttr(FnAttr::ReadOnly);
  }
  default:
    return false;
  }
}

bool Instruction::mayReadFromMemory() const {
  switch (getOpcode()) {
  case ValueKind::Load:
  case ValueKind::AtomicRMW:
    return true;
  case ValueKind::Call: {
    const auto *CI = cast<CallInst>(this);
    const Function *Callee = CI->getCalledFunction();
    if (!Callee)
      return true;
    return !Callee->hasFnAttr(FnAttr::ReadNone);
  }
  default:
    return false;
  }
}

bool Instruction::mayHaveSideEffects() const {
  if (mayWriteToMemory())
    return true;
  if (const auto *CI = dyn_cast<CallInst>(this)) {
    const Function *Callee = CI->getCalledFunction();
    if (!Callee)
      return true;
    if (Callee->hasFnAttr(FnAttr::Convergent))
      return true;
  }
  return false;
}

void Instruction::eraseFromParent() {
  assert(Parent && "instruction is not in a block");
  assert(!hasUses() && "erasing an instruction that still has uses");
  Parent->remove(this); // unique_ptr destroyed here
}

std::unique_ptr<Instruction> Instruction::removeFromParent() {
  assert(Parent && "instruction is not in a block");
  return Parent->remove(this);
}

void Instruction::moveBefore(Instruction *Other) {
  assert(Other->getParent() && "destination is not in a block");
  std::unique_ptr<Instruction> Self = removeFromParent();
  Instruction *Raw = Self.release();
  Other->getParent()->insertBefore(Raw, Other);
}

//===----------------------------------------------------------------------===//
// Constructors and clone()
//===----------------------------------------------------------------------===//

AllocaInst::AllocaInst(IRContext &Ctx, Type *AllocatedType)
    : Instruction(ValueKind::Alloca, Ctx.getPtrTy(AddrSpace::Local)),
      AllocatedType(AllocatedType) {}

Instruction *AllocaInst::clone() const { return new AllocaInst(*this); }

LoadInst::LoadInst(Type *AccessTy, Value *Ptr)
    : Instruction(ValueKind::Load, AccessTy) {
  assert(Ptr->getType()->isPointerTy() && "load pointer operand must be ptr");
  addOperand(Ptr);
}

Instruction *LoadInst::clone() const { return new LoadInst(*this); }

StoreInst::StoreInst(IRContext &Ctx, Value *Val, Value *Ptr)
    : Instruction(ValueKind::Store, Ctx.getVoidTy()) {
  assert(Ptr->getType()->isPointerTy() && "store pointer operand must be ptr");
  addOperand(Val);
  addOperand(Ptr);
}

Instruction *StoreInst::clone() const { return new StoreInst(*this); }

GEPInst::GEPInst(IRContext &Ctx, Type *SourceElementType, Value *Ptr,
                 std::vector<Value *> Indices)
    : Instruction(ValueKind::GEP,
                  Ctx.getPtrTy(cast<PointerType>(Ptr->getType())
                                   ->getAddressSpace())),
      SourceElementType(SourceElementType) {
  addOperand(Ptr);
  for (Value *Idx : Indices) {
    assert(Idx->getType()->isIntegerTy() && "GEP index must be integer");
    addOperand(Idx);
  }
}

bool GEPInst::accumulateConstantOffset(int64_t &Offset) const {
  int64_t Acc = 0;
  Type *CurTy = SourceElementType;
  for (unsigned I = 0, E = getNumIndices(); I != E; ++I) {
    const auto *CI = dyn_cast<ConstantInt>(getIndex(I));
    if (!CI)
      return false;
    int64_t Idx = CI->getValue();
    if (I == 0) {
      Acc += Idx * (int64_t)CurTy->getSizeInBytes();
      continue;
    }
    if (auto *AT = dyn_cast<ArrayType>(CurTy)) {
      CurTy = AT->getElementType();
      Acc += Idx * (int64_t)CurTy->getSizeInBytes();
      continue;
    }
    if (auto *ST = dyn_cast<StructType>(CurTy)) {
      Acc += (int64_t)ST->getElementOffset(Idx);
      CurTy = ST->getElementType(Idx);
      continue;
    }
    return false;
  }
  Offset = Acc;
  return true;
}

Instruction *GEPInst::clone() const { return new GEPInst(*this); }

AtomicRMWInst::AtomicRMWInst(AtomicRMWOp Op, Value *Ptr, Value *Val)
    : Instruction(ValueKind::AtomicRMW, Val->getType()), Op(Op) {
  assert(Ptr->getType()->isPointerTy() && "atomicrmw pointer must be ptr");
  addOperand(Ptr);
  addOperand(Val);
}

Instruction *AtomicRMWInst::clone() const {
  return new AtomicRMWInst(*this);
}

BinOpInst::BinOpInst(BinaryOp Op, Value *LHS, Value *RHS)
    : Instruction(ValueKind::BinOp, LHS->getType()), Op(Op) {
  assert(LHS->getType() == RHS->getType() &&
         "binary operands must have matching types");
  addOperand(LHS);
  addOperand(RHS);
}

Instruction *BinOpInst::clone() const { return new BinOpInst(*this); }

ICmpInst::ICmpInst(IRContext &Ctx, ICmpPred Pred, Value *LHS, Value *RHS)
    : Instruction(ValueKind::ICmp, Ctx.getInt1Ty()), Pred(Pred) {
  assert(LHS->getType() == RHS->getType() &&
         "icmp operands must have matching types");
  addOperand(LHS);
  addOperand(RHS);
}

Instruction *ICmpInst::clone() const { return new ICmpInst(*this); }

FCmpInst::FCmpInst(IRContext &Ctx, FCmpPred Pred, Value *LHS, Value *RHS)
    : Instruction(ValueKind::FCmp, Ctx.getInt1Ty()), Pred(Pred) {
  assert(LHS->getType() == RHS->getType() &&
         "fcmp operands must have matching types");
  addOperand(LHS);
  addOperand(RHS);
}

Instruction *FCmpInst::clone() const { return new FCmpInst(*this); }

CastInst::CastInst(CastOp Op, Value *Src, Type *DestTy)
    : Instruction(ValueKind::Cast, DestTy), Op(Op) {
  addOperand(Src);
}

Instruction *CastInst::clone() const { return new CastInst(*this); }

SelectInst::SelectInst(Value *Cond, Value *TrueV, Value *FalseV)
    : Instruction(ValueKind::Select, TrueV->getType()) {
  assert(Cond->getType()->isInt1Ty() && "select condition must be i1");
  assert(TrueV->getType() == FalseV->getType() &&
         "select arms must have matching types");
  addOperand(Cond);
  addOperand(TrueV);
  addOperand(FalseV);
}

Instruction *SelectInst::clone() const { return new SelectInst(*this); }

MathInst::MathInst(MathOp Op, std::vector<Value *> Args)
    : Instruction(ValueKind::Math, Args.front()->getType()), Op(Op) {
  for (Value *A : Args)
    addOperand(A);
}

Instruction *MathInst::clone() const { return new MathInst(*this); }

void PhiInst::addIncoming(Value *V, BasicBlock *BB) {
  assert(V->getType() == getType() && "phi incoming type mismatch");
  addOperand(V);
  addOperand(BB);
}

BasicBlock *PhiInst::getIncomingBlock(unsigned I) const {
  return cast<BasicBlock>(getOperand(2 * I + 1));
}

Value *PhiInst::getIncomingValueForBlock(const BasicBlock *BB) const {
  for (unsigned I = 0, E = getNumIncoming(); I != E; ++I)
    if (getIncomingBlock(I) == BB)
      return getIncomingValue(I);
  return nullptr;
}

void PhiInst::removeIncomingBlock(const BasicBlock *BB) {
  for (unsigned I = 0; I < getNumIncoming();) {
    if (getIncomingBlock(I) == BB) {
      removeOperand(2 * I + 1);
      removeOperand(2 * I);
      continue;
    }
    ++I;
  }
}

Instruction *PhiInst::clone() const { return new PhiInst(*this); }

CallInst::CallInst(FunctionType *FTy, Value *Callee,
                   std::vector<Value *> Args)
    : Instruction(ValueKind::Call, FTy->getReturnType()), FTy(FTy) {
  assert(Args.size() == FTy->getNumParams() &&
         "call argument count mismatch");
  addOperand(Callee);
  for (Value *A : Args)
    addOperand(A);
}

CallInst::CallInst(Function *Callee, std::vector<Value *> Args)
    : CallInst(Callee->getFunctionType(), Callee, std::move(Args)) {}

Function *CallInst::getCalledFunction() const {
  return dyn_cast<Function>(getCalledOperand());
}

Instruction *CallInst::clone() const { return new CallInst(*this); }

RetInst::RetInst(IRContext &Ctx, Value *RetVal)
    : Instruction(ValueKind::Ret, Ctx.getVoidTy()) {
  if (RetVal)
    addOperand(RetVal);
}

Instruction *RetInst::clone() const { return new RetInst(*this); }

BrInst::BrInst(IRContext &Ctx, BasicBlock *Dest)
    : Instruction(ValueKind::Br, Ctx.getVoidTy()) {
  addOperand(Dest);
}

BrInst::BrInst(IRContext &Ctx, Value *Cond, BasicBlock *TrueBB,
               BasicBlock *FalseBB)
    : Instruction(ValueKind::Br, Ctx.getVoidTy()) {
  assert(Cond->getType()->isInt1Ty() && "branch condition must be i1");
  addOperand(Cond);
  addOperand(TrueBB);
  addOperand(FalseBB);
}

BasicBlock *BrInst::getSuccessor(unsigned I) const {
  assert(I < getNumSuccessors() && "successor index out of range");
  return cast<BasicBlock>(getOperand(isConditional() ? I + 1 : 0));
}

void BrInst::setSuccessor(unsigned I, BasicBlock *BB) {
  assert(I < getNumSuccessors() && "successor index out of range");
  setOperand(isConditional() ? I + 1 : 0, BB);
}

Instruction *BrInst::clone() const { return new BrInst(*this); }

UnreachableInst::UnreachableInst(IRContext &Ctx)
    : Instruction(ValueKind::Unreachable, Ctx.getVoidTy()) {}

Instruction *UnreachableInst::clone() const {
  return new UnreachableInst(*this);
}
