//===- ir/Instruction.h - Instruction class hierarchy -----------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// All instruction classes of the ompgpu SSA IR. The set mirrors the subset
/// of LLVM-IR the paper's optimizations operate on: memory instructions
/// with explicit address spaces, calls (direct and indirect), control flow,
/// phis, and scalar arithmetic, plus a Math instruction standing in for
/// libdevice intrinsics.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_IR_INSTRUCTION_H
#define OMPGPU_IR_INSTRUCTION_H

#include "ir/Constant.h"
#include "ir/Type.h"
#include "ir/Value.h"

#include <memory>

namespace ompgpu {

class BasicBlock;
class Function;

/// Base class of all instructions. The opcode is the ValueKind.
class Instruction : public User {
  BasicBlock *Parent = nullptr;
  /// Stable profile anchor (docs/pgo.md). Attached at codegen time to the
  /// instructions the profiler counts (parallel dispatches, barriers,
  /// globalization allocs, SPMDzation guards); survives cloning and
  /// optimization so `-profile-gen` counters can be matched back to the
  /// same sites on the `-profile-use` compile. Empty for everything else;
  /// never printed by the AsmWriter (golden files stay stable).
  std::string Anchor;

protected:
  Instruction(ValueKind Kind, Type *Ty) : User(Kind, Ty) {}
  /// Copies for clone(): the copy starts detached from any block but keeps
  /// the profile anchor (a clone counts against the same profile site).
  Instruction(const Instruction &O)
      : User(O), Parent(nullptr), Anchor(O.Anchor) {}

public:
  ValueKind getOpcode() const { return getValueKind(); }
  const char *getOpcodeName() const;

  /// \name Profile anchors (src/profile, docs/pgo.md)
  /// @{
  const std::string &getAnchor() const { return Anchor; }
  void setAnchor(std::string A) { Anchor = std::move(A); }
  bool hasAnchor() const { return !Anchor.empty(); }
  /// @}

  BasicBlock *getParent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }
  /// Returns the function containing this instruction, or null if detached.
  Function *getFunction() const;

  bool isTerminator() const {
    ValueKind K = getOpcode();
    return K == ValueKind::Ret || K == ValueKind::Br ||
           K == ValueKind::Unreachable;
  }

  /// Conservatively true if this instruction may write memory. For calls
  /// the callee's attributes are consulted.
  bool mayWriteToMemory() const;
  /// Conservatively true if this instruction may read memory.
  bool mayReadFromMemory() const;
  /// True if the instruction reads or writes memory.
  bool mayReadOrWriteMemory() const {
    return mayReadFromMemory() || mayWriteToMemory();
  }
  /// Conservatively true if the instruction has effects beyond producing
  /// its value (memory writes, control effects, unknown calls).
  bool mayHaveSideEffects() const;

  /// Unlinks this instruction from its parent block and deletes it. The
  /// instruction must have no remaining uses.
  void eraseFromParent();
  /// Unlinks this instruction from its parent block without deleting it;
  /// returns ownership to the caller.
  std::unique_ptr<Instruction> removeFromParent();
  /// Moves this instruction immediately before \p Other (possibly across
  /// blocks). Used by the SPMDzation side-effect grouping (Fig. 7).
  void moveBefore(Instruction *Other);

  /// Creates a detached copy of this instruction referencing the same
  /// operands. Used by the function cloner during internalization.
  virtual Instruction *clone() const = 0;

  static bool classof(const Value *V) {
    ValueKind K = V->getValueKind();
    return K > ValueKind::InstBegin && K < ValueKind::InstEnd;
  }
};

//===----------------------------------------------------------------------===//
// Memory instructions
//===----------------------------------------------------------------------===//

/// Stack allocation in the thread-local address space. HeapToStack rewrites
/// __kmpc_alloc_shared calls into these.
class AllocaInst : public Instruction {
  Type *AllocatedType;

public:
  AllocaInst(IRContext &Ctx, Type *AllocatedType);

  Type *getAllocatedType() const { return AllocatedType; }
  uint64_t getAllocSizeInBytes() const {
    return AllocatedType->getSizeInBytes();
  }

  Instruction *clone() const override;

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Alloca;
  }
};

/// Typed load through a pointer operand.
class LoadInst : public Instruction {
public:
  LoadInst(Type *AccessTy, Value *Ptr);

  Value *getPointerOperand() const { return getOperand(0); }
  Type *getAccessType() const { return getType(); }

  Instruction *clone() const override;

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Load;
  }
};

/// Typed store of a value through a pointer operand.
class StoreInst : public Instruction {
public:
  StoreInst(IRContext &Ctx, Value *Val, Value *Ptr);

  Value *getValueOperand() const { return getOperand(0); }
  Value *getPointerOperand() const { return getOperand(1); }
  Type *getAccessType() const { return getValueOperand()->getType(); }

  Instruction *clone() const override;

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Store;
  }
};

/// Address arithmetic with LLVM getelementptr semantics over a source
/// element type: the first index scales by the element size; later indices
/// step into arrays and (with constant indices) struct fields.
class GEPInst : public Instruction {
  Type *SourceElementType;

public:
  GEPInst(IRContext &Ctx, Type *SourceElementType, Value *Ptr,
          std::vector<Value *> Indices);

  Type *getSourceElementType() const { return SourceElementType; }
  Value *getPointerOperand() const { return getOperand(0); }
  unsigned getNumIndices() const { return getNumOperands() - 1; }
  Value *getIndex(unsigned I) const { return getOperand(I + 1); }

  /// Returns true and sets \p Offset if all indices are constants.
  bool accumulateConstantOffset(int64_t &Offset) const;

  Instruction *clone() const override;

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::GEP;
  }
};

/// Atomic read-modify-write operations.
enum class AtomicRMWOp : uint8_t { Xchg, Add, FAdd, Max, Min };

/// Atomic read-modify-write on a pointer; yields the previous value.
class AtomicRMWInst : public Instruction {
  AtomicRMWOp Op;

public:
  AtomicRMWInst(AtomicRMWOp Op, Value *Ptr, Value *Val);

  AtomicRMWOp getOperation() const { return Op; }
  Value *getPointerOperand() const { return getOperand(0); }
  Value *getValOperand() const { return getOperand(1); }
  Type *getAccessType() const { return getType(); }

  Instruction *clone() const override;

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::AtomicRMW;
  }
};

//===----------------------------------------------------------------------===//
// Arithmetic, comparison, conversion
//===----------------------------------------------------------------------===//

/// Binary arithmetic/logical opcodes.
enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  SDiv,
  UDiv,
  SRem,
  URem,
  And,
  Or,
  Xor,
  Shl,
  LShr,
  AShr,
  FAdd,
  FSub,
  FMul,
  FDiv,
};

/// A two-operand arithmetic or logical instruction.
class BinOpInst : public Instruction {
  BinaryOp Op;

public:
  BinOpInst(BinaryOp Op, Value *LHS, Value *RHS);

  BinaryOp getBinaryOp() const { return Op; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }
  bool isFloatOp() const { return Op >= BinaryOp::FAdd; }

  Instruction *clone() const override;

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::BinOp;
  }
};

/// Integer comparison predicates.
enum class ICmpPred : uint8_t { EQ, NE, SLT, SLE, SGT, SGE, ULT, ULE, UGT,
                                UGE };
/// Floating comparison predicates (ordered only).
enum class FCmpPred : uint8_t { OEQ, ONE, OLT, OLE, OGT, OGE };

/// Integer/pointer comparison yielding i1.
class ICmpInst : public Instruction {
  ICmpPred Pred;

public:
  ICmpInst(IRContext &Ctx, ICmpPred Pred, Value *LHS, Value *RHS);

  ICmpPred getPredicate() const { return Pred; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  Instruction *clone() const override;

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::ICmp;
  }
};

/// Floating-point comparison yielding i1.
class FCmpInst : public Instruction {
  FCmpPred Pred;

public:
  FCmpInst(IRContext &Ctx, FCmpPred Pred, Value *LHS, Value *RHS);

  FCmpPred getPredicate() const { return Pred; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  Instruction *clone() const override;

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::FCmp;
  }
};

/// Conversion opcodes.
enum class CastOp : uint8_t {
  Trunc,
  ZExt,
  SExt,
  FPToSI,
  SIToFP,
  UIToFP,
  FPTrunc,
  FPExt,
  PtrToInt,
  IntToPtr,
  AddrSpaceCast,
};

/// A type conversion instruction.
class CastInst : public Instruction {
  CastOp Op;

public:
  CastInst(CastOp Op, Value *Src, Type *DestTy);

  CastOp getCastOp() const { return Op; }
  Value *getSrc() const { return getOperand(0); }

  Instruction *clone() const override;

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Cast;
  }
};

/// Ternary select: cond ? tval : fval.
class SelectInst : public Instruction {
public:
  SelectInst(Value *Cond, Value *TrueV, Value *FalseV);

  Value *getCondition() const { return getOperand(0); }
  Value *getTrueValue() const { return getOperand(1); }
  Value *getFalseValue() const { return getOperand(2); }

  Instruction *clone() const override;

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Select;
  }
};

/// Math operations standing in for libdevice/libm intrinsics.
enum class MathOp : uint8_t {
  Sqrt,
  Sin,
  Cos,
  Exp,
  Log,
  Fabs,
  Floor,
  Pow,
  FMin,
  FMax,
};

/// A (side-effect free) math intrinsic call.
class MathInst : public Instruction {
  MathOp Op;

public:
  MathInst(MathOp Op, std::vector<Value *> Args);

  MathOp getMathOp() const { return Op; }

  Instruction *clone() const override;

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Math;
  }
};

//===----------------------------------------------------------------------===//
// Control flow and calls
//===----------------------------------------------------------------------===//

/// SSA phi node. Incoming values and blocks are interleaved operands:
/// [V0, BB0, V1, BB1, ...].
class PhiInst : public Instruction {
public:
  explicit PhiInst(Type *Ty) : Instruction(ValueKind::Phi, Ty) {}

  void addIncoming(Value *V, BasicBlock *BB);
  unsigned getNumIncoming() const { return getNumOperands() / 2; }
  Value *getIncomingValue(unsigned I) const { return getOperand(2 * I); }
  BasicBlock *getIncomingBlock(unsigned I) const;
  /// Returns the incoming value for \p BB, or null if absent.
  Value *getIncomingValueForBlock(const BasicBlock *BB) const;
  void setIncomingValue(unsigned I, Value *V) { setOperand(2 * I, V); }
  /// Removes the incoming entry for \p BB if present.
  void removeIncomingBlock(const BasicBlock *BB);

  Instruction *clone() const override;

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Phi;
  }
};

/// Function call, direct or indirect. Operand 0 is the callee; the
/// remaining operands are the arguments. The callee's FunctionType is
/// stored explicitly so indirect calls are fully typed.
class CallInst : public Instruction {
  FunctionType *FTy;

public:
  CallInst(FunctionType *FTy, Value *Callee, std::vector<Value *> Args);
  /// Direct-call convenience: takes the type from the callee.
  CallInst(Function *Callee, std::vector<Value *> Args);

  FunctionType *getCallFunctionType() const { return FTy; }
  Value *getCalledOperand() const { return getOperand(0); }
  /// Returns the statically known callee, or null for indirect calls.
  Function *getCalledFunction() const;
  bool isIndirectCall() const { return getCalledFunction() == nullptr; }

  unsigned arg_size() const { return getNumOperands() - 1; }
  Value *getArgOperand(unsigned I) const { return getOperand(I + 1); }
  void setArgOperand(unsigned I, Value *V) { setOperand(I + 1, V); }
  void setCalledOperand(Value *V) { setOperand(0, V); }

  Instruction *clone() const override;

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Call;
  }
};

/// Function return with an optional value.
class RetInst : public Instruction {
public:
  RetInst(IRContext &Ctx, Value *RetVal /*may be null*/);

  Value *getReturnValue() const {
    return getNumOperands() ? getOperand(0) : nullptr;
  }

  Instruction *clone() const override;

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Ret;
  }
};

/// Conditional or unconditional branch. Successor blocks are operands so
/// that block-level RAUW keeps the CFG consistent.
class BrInst : public Instruction {
public:
  /// Unconditional branch.
  BrInst(IRContext &Ctx, BasicBlock *Dest);
  /// Conditional branch.
  BrInst(IRContext &Ctx, Value *Cond, BasicBlock *TrueBB,
         BasicBlock *FalseBB);

  bool isConditional() const { return getNumOperands() == 3; }
  Value *getCondition() const {
    assert(isConditional() && "not a conditional branch");
    return getOperand(0);
  }
  unsigned getNumSuccessors() const { return isConditional() ? 2 : 1; }
  BasicBlock *getSuccessor(unsigned I) const;
  void setSuccessor(unsigned I, BasicBlock *BB);

  Instruction *clone() const override;

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Br;
  }
};

/// Marks unreachable code.
class UnreachableInst : public Instruction {
public:
  explicit UnreachableInst(IRContext &Ctx);

  Instruction *clone() const override;

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Unreachable;
  }
};

} // namespace ompgpu

#endif // OMPGPU_IR_INSTRUCTION_H
